module eunomia

go 1.24
