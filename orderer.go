package eunomia

import (
	"fmt"
	"sync"
	"time"

	internal "eunomia/internal/eunomia"
	"eunomia/internal/hlc"
	"eunomia/internal/types"
)

// StableOp is one operation emitted by an Orderer once stable: no
// operation with a smaller timestamp will ever be emitted after it.
type StableOp struct {
	// Partition is the stream the operation arrived on.
	Partition int
	// Timestamp is the hybrid logical timestamp assigned at Submit.
	Timestamp Timestamp
	// Data is the opaque payload passed to Submit.
	Data []byte
}

// OrdererConfig parameterises a standalone Eunomia ordering service.
type OrdererConfig struct {
	// Partitions is the number of input streams. Every stream must
	// submit or stay attached (heartbeats are automatic) for stability
	// to progress.
	Partitions int
	// Replicas is the fault-tolerance factor (default 1).
	Replicas int
	// StabilizationInterval is θ (default 1 ms).
	StabilizationInterval time.Duration
	// BatchInterval is the per-stream propagation period (default 1 ms).
	BatchInterval time.Duration
	// Tree selects the pending-set structure (default red-black).
	Tree TreeKind
	// OnStable receives stable operations in timestamp order. Required.
	OnStable func(ops []StableOp)
}

// Orderer is the standalone Eunomia service: it ingests timestamped
// operations from P concurrent partition streams and emits them totally
// ordered, consistently with causality, without ever synchronizing in the
// submitter's critical path. It is the building block the paper proposes
// as a drop-in replacement for datacenter sequencers.
//
// Usage:
//
//	ord, _ := eunomia.NewOrderer(eunomia.OrdererConfig{
//	    Partitions: 4,
//	    OnStable:   func(ops []eunomia.StableOp) { ... },
//	})
//	h := ord.Partition(0)
//	ts := h.Submit(dep, []byte("op"))   // dep: largest Timestamp observed
//	...
//	ord.Close()
type Orderer struct {
	cfg     OrdererConfig
	cluster *internal.Cluster
	handles []*PartitionHandle
}

// NewOrderer builds and starts an ordering service.
func NewOrderer(cfg OrdererConfig) (*Orderer, error) {
	if cfg.Partitions <= 0 {
		return nil, fmt.Errorf("eunomia: OrdererConfig.Partitions must be positive, got %d", cfg.Partitions)
	}
	if cfg.OnStable == nil {
		return nil, fmt.Errorf("eunomia: OrdererConfig.OnStable is required")
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	onStable := cfg.OnStable
	ship := func(_ types.ReplicaID, ops []*types.Update) {
		out := make([]StableOp, len(ops))
		for i, u := range ops {
			out[i] = StableOp{Partition: int(u.Partition), Timestamp: u.TS, Data: u.Value}
		}
		onStable(out)
	}
	o := &Orderer{cfg: cfg}
	o.cluster = internal.NewCluster(cfg.Replicas, internal.Config{
		Partitions:     cfg.Partitions,
		StableInterval: cfg.StabilizationInterval,
		Tree:           cfg.Tree,
	}, ship)
	o.handles = make([]*PartitionHandle, cfg.Partitions)
	for i := range o.handles {
		clock := hlc.NewClock(nil)
		o.handles[i] = &PartitionHandle{
			partition: i,
			clock:     clock,
			client: internal.NewClient(internal.ClientConfig{
				Partition:     types.PartitionID(i),
				BatchInterval: cfg.BatchInterval,
			}, internal.ClusterConns(o.cluster), clock),
		}
	}
	return o, nil
}

// Partition returns the submission handle for stream i.
func (o *Orderer) Partition(i int) *PartitionHandle { return o.handles[i] }

// CrashReplica stops replica r, exercising the §3.3 failover path.
func (o *Orderer) CrashReplica(r int) { o.cluster.Replica(types.ReplicaID(r)).Stop() }

// Close flushes every stream, waits for the last submitted timestamp to
// become stable — so every submitted operation has been emitted through
// OnStable — and stops the service. The drain is deterministic: closing
// the clients flushes their buffers, a final heartbeat at the global
// maximum timestamp advances every partition watermark past every
// submission (safe, because no handle will ever issue again), and Close
// then waits for the acting leader's stable time to cover it.
func (o *Orderer) Close() {
	var maxTS Timestamp
	for _, h := range o.handles {
		h.client.Close()
		if ts := h.clock.Last(); ts > maxTS {
			maxTS = ts
		}
	}
	if maxTS > 0 {
		for _, r := range o.cluster.Replicas() {
			for p := 0; p < o.cfg.Partitions; p++ {
				if err := r.Heartbeat(types.PartitionID(p), maxTS); err != nil {
					break // crashed replica; the survivors drain
				}
			}
		}
		// The drain needs at least one stabilization round after the
		// final heartbeat; scale the bound with θ so large intervals
		// still drain instead of hitting an absolute cutoff first.
		wait := 10 * o.stabilization()
		if wait < 5*time.Second {
			wait = 5 * time.Second
		}
		deadline := time.Now().Add(wait)
		poll := o.stabilization() / 4
		if poll <= 0 {
			poll = 250 * time.Microsecond
		}
		for time.Now().Before(deadline) {
			l := o.cluster.Leader()
			if l == nil {
				break // every replica crashed; nothing will drain
			}
			if st := l.Stats(); st.StableTime >= maxTS && st.Pending == 0 {
				break
			}
			time.Sleep(poll)
		}
	}
	// Stop waits for each replica's current stabilization round, so a
	// ship in progress completes before Close returns.
	o.cluster.Stop()
}

func (o *Orderer) stabilization() time.Duration {
	if o.cfg.StabilizationInterval > 0 {
		return o.cfg.StabilizationInterval
	}
	return time.Millisecond
}

// PartitionHandle is one input stream of an Orderer. Submissions on one
// handle are serialized by the handle itself (matching the paper's
// assumption that updates within a partition are serialized by the native
// update protocol).
type PartitionHandle struct {
	partition int
	clock     *hlc.Clock
	client    *internal.Client

	mu  sync.Mutex
	seq uint64
}

// Submit tags data with a hybrid timestamp strictly greater than dep and
// than every timestamp previously issued by this handle, enqueues it for
// ordering, and returns the timestamp. It never blocks on the ordering
// service (only on backpressure if the service is saturated).
//
// To capture causality across handles, pass as dep the largest Timestamp
// the submitting actor has observed (the paper's client clock).
func (h *PartitionHandle) Submit(dep Timestamp, data []byte) Timestamp {
	h.mu.Lock()
	ts := h.clock.Tick(dep)
	h.seq++
	u := &types.Update{
		Partition: types.PartitionID(h.partition),
		Seq:       h.seq,
		TS:        ts,
		Value:     data,
	}
	h.mu.Unlock()
	h.client.Add(u)
	return ts
}

// Timestamp returns the largest timestamp issued by this handle.
func (h *PartitionHandle) Timestamp() Timestamp { return h.clock.Last() }
