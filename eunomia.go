// Package eunomia is a from-scratch Go implementation of "Unobtrusive
// Deferred Update Stabilization for Efficient Geo-Replication"
// (Gunawardhana, Bravo & Rodrigues, USENIX ATC 2017).
//
// The paper's contribution is Eunomia, a per-datacenter service that
// totally orders all local updates consistently with causality — in the
// background, off the client's critical path — so that geo-replication can
// enjoy the trivial dependency checking of sequencer-based designs without
// paying their synchronous round trip, and without the expensive global
// stabilization procedures of GentleRain or Cure.
//
// Two entry points are exposed:
//
//   - Cluster: a complete causally consistent geo-replicated key-value
//     store (the paper's EunomiaKV) running M simulated datacenters in one
//     process, with configurable WAN latencies, Eunomia fault tolerance,
//     and causal client sessions. See NewCluster.
//
//   - Orderer: the standalone Eunomia ordering service, for embedding the
//     paper's site stabilization into other systems: feed it timestamped
//     operations from any number of partition streams and receive them
//     back totally ordered, in causal order. See NewOrderer.
//
// The internal packages additionally implement every baseline the paper
// evaluates against (synchronous and chain-replicated sequencers,
// GentleRain, Cure, eventual consistency) and a benchmark harness that
// regenerates every figure of the evaluation; see DESIGN.md and
// EXPERIMENTS.md.
package eunomia

import (
	"errors"
	"fmt"
	"time"

	"eunomia/internal/eunomia"
	"eunomia/internal/geostore"
	"eunomia/internal/hlc"
	"eunomia/internal/simnet"
	"eunomia/internal/types"
)

// Timestamp is a hybrid logical timestamp: 48 bits of physical
// microseconds and 16 bits of logical counter packed into a uint64, whose
// natural order is the hybrid-clock order.
type Timestamp = hlc.Timestamp

// Config parameterises a Cluster. The zero value reproduces the paper's
// deployment: 3 datacenters × 8 partitions, one Eunomia replica each,
// 1 ms batching/stabilization, Virginia-Oregon-Ireland WAN latencies,
// vector metadata and data/metadata separation.
type Config struct {
	// Datacenters is M, the number of geo-locations (default 3).
	Datacenters int
	// Partitions is N, the number of logical partitions per datacenter
	// (default 8).
	Partitions int
	// OrderingReplicas replicates each datacenter's Eunomia service for
	// fault tolerance (default 1, the non-replicated Algorithm 3
	// service; the paper evaluates up to 3).
	OrderingReplicas int

	// RTT maps datacenter pairs {i,j} (i<j) to emulated round-trip
	// times. Nil uses the paper's 80/80/160 ms setup, scaled by
	// RTTScale.
	RTT map[[2]int]time.Duration
	// RTTScale scales the default RTT matrix; 0 means 1.0 (full paper
	// latencies). Ignored when RTT is set.
	RTTScale float64

	// BatchInterval is the partition→Eunomia propagation period and
	// heartbeat period Δ (default 1 ms).
	BatchInterval time.Duration
	// StabilizationInterval is Eunomia's θ (default 1 ms).
	StabilizationInterval time.Duration
	// ReceiverInterval is the remote-update dependency check period ρ
	// (default 1 ms).
	ReceiverInterval time.Duration

	// ScalarMetadata compresses client causal histories to one scalar
	// instead of a vector with an entry per datacenter — the §4 ablation
	// trading visibility latency for metadata size.
	ScalarMetadata bool
	// DisableDataSeparation routes full update payloads through Eunomia
	// instead of shipping them partition-to-partition (§5 ablation).
	DisableDataSeparation bool

	// OnRemoteVisible, optional, is invoked each time a remote update
	// becomes visible at a datacenter, with the latency between payload
	// arrival and visibility — the paper's remote update visibility
	// metric (network travel factored out).
	OnRemoteVisible func(dest int, originDC int, latency time.Duration)
}

func (c Config) delay() simnet.DelayFunc {
	if c.RTT != nil {
		m := make(map[[2]types.DCID]time.Duration, len(c.RTT))
		for k, v := range c.RTT {
			a, b := types.DCID(k[0]), types.DCID(k[1])
			if a > b {
				a, b = b, a
			}
			m[[2]types.DCID{a, b}] = v
		}
		return simnet.LatencyMatrix(m, 0)
	}
	scale := c.RTTScale
	if scale == 0 {
		scale = 1
	}
	return simnet.LatencyMatrix(simnet.PaperRTTs(scale), 0)
}

// Cluster is a running EunomiaKV deployment: a causally consistent
// geo-replicated key-value store whose update stabilization is performed
// by per-datacenter Eunomia services.
type Cluster struct {
	cfg Config
	st  *geostore.Store
}

// NewCluster builds and starts a cluster.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.Datacenters < 0 || cfg.Partitions < 0 || cfg.OrderingReplicas < 0 {
		return nil, errors.New("eunomia: negative sizes in Config")
	}
	gcfg := geostore.Config{
		DCs:            cfg.Datacenters,
		Partitions:     cfg.Partitions,
		Replicas:       cfg.OrderingReplicas,
		Delay:          cfg.delay(),
		BatchInterval:  cfg.BatchInterval,
		StableInterval: cfg.StabilizationInterval,
		CheckInterval:  cfg.ReceiverInterval,
		NoSeparation:   cfg.DisableDataSeparation,
		ScalarMeta:     cfg.ScalarMetadata,
	}
	if cfg.OnRemoteVisible != nil {
		cb := cfg.OnRemoteVisible
		gcfg.OnVisible = func(dest types.DCID, u *types.Update, arrived time.Time) {
			cb(int(dest), int(u.Origin), time.Since(arrived))
		}
	}
	return &Cluster{cfg: cfg, st: geostore.NewStore(gcfg)}, nil
}

// Client opens a causal session homed at datacenter dc. Sessions are
// cheap; open one per logical user or actor so that causal dependencies
// are tracked at the right granularity.
func (c *Cluster) Client(dc int) (*Client, error) {
	if dc < 0 || dc >= c.datacenters() {
		return nil, fmt.Errorf("eunomia: datacenter %d out of range [0,%d)", dc, c.datacenters())
	}
	return &Client{inner: c.st.NewClient(types.DCID(dc))}, nil
}

func (c *Cluster) datacenters() int {
	if c.cfg.Datacenters <= 0 {
		return 3
	}
	return c.cfg.Datacenters
}

// CrashOrderingReplica stops Eunomia replica r at datacenter dc,
// simulating a process failure; surviving replicas take over per §3.3.
func (c *Cluster) CrashOrderingReplica(dc, r int) {
	c.st.CrashEunomiaReplica(types.DCID(dc), types.ReplicaID(r))
}

// SetPartitionStraggler makes partition p of datacenter dc communicate
// with its local Eunomia service only every interval — the Figure 7
// straggler injection. Restore with the cluster's BatchInterval.
func (c *Cluster) SetPartitionStraggler(dc, p int, interval time.Duration) {
	c.st.SetPartitionInterval(types.DCID(dc), types.PartitionID(p), interval)
}

// WaitQuiescent blocks until all in-flight replication has drained, or
// the timeout elapses.
func (c *Cluster) WaitQuiescent(timeout time.Duration) error {
	return c.st.WaitQuiescent(timeout)
}

// Convergent verifies that every datacenter stores identical versions,
// returning a description of the first divergence found.
func (c *Cluster) Convergent() error { return c.st.Convergent() }

// Close shuts the cluster down.
func (c *Cluster) Close() { c.st.Close() }

// Internal exposes the underlying deployment to the benchmark harness in
// this module. It is not part of the supported API.
func (c *Cluster) Internal() *geostore.Store { return c.st }

// Client is a causal session against one datacenter of a Cluster. A
// session observes its own writes at its home datacenter and never
// observes states that violate causality at any datacenter.
type Client struct {
	inner *geostore.Client
}

// Read returns the value of key visible at the session's datacenter (nil
// if the key has never been written) and folds the version's causal
// metadata into the session.
func (cl *Client) Read(key string) ([]byte, error) {
	v, err := cl.inner.Read(types.Key(key))
	return v, err
}

// Update writes value under key at the session's datacenter. The write is
// immediately visible locally and propagates to every other datacenter in
// an order consistent with causality.
func (cl *Client) Update(key string, value []byte) error {
	return cl.inner.Update(types.Key(key), value)
}

// TreeKind selects the ordering service's pending-set data structure.
type TreeKind = eunomia.TreeKind

// Pending-set implementations (§6): the red-black tree is the paper's
// choice; the AVL tree is retained for the ablation benchmark.
const (
	RedBlackTree TreeKind = eunomia.RedBlack
	AVLTree      TreeKind = eunomia.AVL
)
