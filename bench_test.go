package eunomia

// Macro-benchmarks: one per figure of the paper's evaluation, wrapping the
// drivers in internal/harness. Each iteration runs a shortened experiment
// and reports the figure's headline quantities as custom metrics; full
// paper-scale runs go through cmd/eunomia-bench.
//
// The ablation benches at the bottom measure the design choices DESIGN.md
// calls out: red-black vs AVL pending set (§6), batching interval (§5),
// scalar vs vector metadata (§4), data/metadata separation (§5).

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"eunomia/internal/fabric"
	"eunomia/internal/harness"
	"eunomia/internal/types"
	"eunomia/internal/workload"
)

// metricName turns a free-form label into a valid ReportMetric unit
// (testing forbids whitespace in units).
func metricName(label, suffix string) string {
	return strings.ReplaceAll(label, " ", "-") + suffix
}

func benchOptions() harness.Options {
	return harness.Options{
		Duration:     500 * time.Millisecond,
		Warmup:       250 * time.Millisecond,
		WorkersPerDC: 4,
		Partitions:   4,
		RTTScale:     0.25,
	}
}

func benchService() harness.ServiceOptions {
	return harness.ServiceOptions{
		Duration: 400 * time.Millisecond,
		Warmup:   150 * time.Millisecond,
	}
}

// BenchmarkFig1_TradeoffSweep reports the sequencer's throughput penalty
// and GentleRain/Cure visibility at one stabilization interval.
func BenchmarkFig1_TradeoffSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.Fig1(benchOptions(), []time.Duration{10 * time.Millisecond})
		for _, p := range res.Points {
			switch p.System {
			case harness.SSeq:
				b.ReportMetric(p.PenaltyPct, "sseq-penalty-%")
			case harness.ASeq:
				b.ReportMetric(p.PenaltyPct, "aseq-penalty-%")
			case harness.GentleRain:
				b.ReportMetric(float64(p.VisP90.Milliseconds()), "gentlerain-p90-ms")
			case harness.Cure:
				b.ReportMetric(float64(p.VisP90.Milliseconds()), "cure-p90-ms")
			}
		}
	}
}

// BenchmarkFig2_ServiceThroughput reports the saturated service rates and
// the headline Eunomia/sequencer ratio (paper: 7.7×).
func BenchmarkFig2_ServiceThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.Fig2(benchService(), []int{30, 60})
		b.ReportMetric(res.Ratio, "eunomia/sequencer-ratio")
		for _, p := range res.Points {
			if p.Partitions == 60 {
				b.ReportMetric(p.Throughput, p.Service+"-ops/s")
			}
		}
	}
}

// BenchmarkFig3_FaultToleranceOverhead reports normalized throughput of
// the replicated configurations.
func BenchmarkFig3_FaultToleranceOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.Fig3(benchService(), 30)
		for _, p := range res.Points {
			b.ReportMetric(p.Normalized, metricName(p.Config, "-normalized"))
		}
	}
}

// BenchmarkFig4_FailureImpact reports whether each configuration survives
// the two-crash schedule (fraction of steady-state throughput retained at
// the end of the run).
func BenchmarkFig4_FailureImpact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.Fig4(harness.Fig4Options{
			Total:      3 * time.Second,
			Crash1:     time.Second,
			Crash2:     2 * time.Second,
			Bucket:     250 * time.Millisecond,
			Partitions: 8,
		})
		for _, s := range res.Series {
			if len(s.Normalized) == 0 {
				continue
			}
			b.ReportMetric(s.Normalized[len(s.Normalized)-1], metricName(s.Config, "-final"))
		}
	}
}

// BenchmarkFig5_GeoThroughput reports EunomiaKV's throughput relative to
// eventual consistency for the 90:10 uniform workload (paper: −4.7% on
// average across workloads).
func BenchmarkFig5_GeoThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.Fig5(benchOptions(),
			[]workload.Mix{{ReadPct: 90}},
			[]workload.KeyDist{workload.Uniform{N: workload.DefaultKeys}})
		for _, c := range res.Cells {
			if c.System == harness.Eventual {
				b.ReportMetric(c.Throughput, "eventual-ops/s")
			}
			if c.System == harness.EunomiaKV {
				b.ReportMetric(c.Throughput, "eunomiakv-ops/s")
				b.ReportMetric((c.VsEventual-1)*100, "eunomiakv-vs-eventual-%")
			}
		}
	}
}

// BenchmarkFig6_VisibilityCDF reports the p90 remote update visibility
// latency per system for the dc0→dc1 pair.
func BenchmarkFig6_VisibilityCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.Fig6(benchOptions())
		for _, c := range res.Curves {
			if c.Origin == types.DCID(0) && c.Dest == types.DCID(1) {
				b.ReportMetric(float64(c.P90.Microseconds())/1000, string(c.System)+"-p90-ms")
			}
		}
	}
}

// BenchmarkFig7_Stragglers reports the peak mean visibility delay during
// the straggling act for a 100ms straggle interval (expected ≈ interval/2
// above baseline).
func BenchmarkFig7_Stragglers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.Fig7(harness.Fig7Options{
			Options:   benchOptions(),
			Phase:     time.Second,
			Bucket:    250 * time.Millisecond,
			Intervals: []time.Duration{100 * time.Millisecond},
		})
		peak := 0.0
		for _, v := range res.Series[0].VisibilityMs {
			if v == v && v > peak { // skip NaN
				peak = v
			}
		}
		b.ReportMetric(peak, "peak-visibility-ms")
	}
}

// BenchmarkFabricPipelinedTCP compares the pipelined, windowed-ack wire
// protocol against the original one-request-one-response protocol over a
// real TCP connection on loopback, on the default zero-reflection wire
// codec. BenchmarkFabricPipelinedTCPGob is the same run on the gob
// ablation; the CI bench job runs both, so BENCH_ci.json carries the
// codec comparison end-to-end.
func BenchmarkFabricPipelinedTCP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.PipelineBench(harness.PipelineBenchOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.PipelinedPerSec, "pipelined-msgs/s")
		b.ReportMetric(res.RequestResponsePerSec, "reqresp-msgs/s")
		b.ReportMetric(res.Speedup, "pipeline-speedup-x")
	}
}

// BenchmarkFabricPipelinedTCPGob is the -codec gob ablation of
// BenchmarkFabricPipelinedTCP: identical protocol, reflection-based
// frames.
func BenchmarkFabricPipelinedTCPGob(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.PipelineBench(harness.PipelineBenchOptions{Codec: fabric.CodecGob})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.PipelinedPerSec, "pipelined-msgs/s")
		b.ReportMetric(res.RequestResponsePerSec, "reqresp-msgs/s")
		b.ReportMetric(res.Speedup, "pipeline-speedup-x")
	}
}

// BenchmarkWireCodec measures the zero-reflection wire codec against the
// gob ablation on the hot-path message shapes (metadata batch, windowed
// release, receiver ship): encode+decode round trips per second, bytes
// per message, allocations per round trip. The acceptance bar is ≥3×
// throughput on BatchMsg and ReleaseMsg.
func BenchmarkWireCodec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.CodecBench(harness.CodecBenchOptions{})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Points {
			b.ReportMetric(p.WirePerSec, p.Message+"-wire-encdec/s")
			b.ReportMetric(p.GobPerSec, p.Message+"-gob-encdec/s")
			b.ReportMetric(p.Speedup, p.Message+"-speedup-x")
			b.ReportMetric(float64(p.WireBytes), p.Message+"-wire-B")
			b.ReportMetric(float64(p.GobBytes), p.Message+"-gob-B")
			b.ReportMetric(p.WireAllocs, p.Message+"-wire-allocs/op")
			b.ReportMetric(p.GobAllocs, p.Message+"-gob-allocs/op")
		}
	}
}

// BenchmarkFabricWindowedRelease compares the windowed receiver→partition
// release stream against the original blocking round-trip release in a
// split-role datacenter with a 1ms link delay.
func BenchmarkFabricWindowedRelease(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.ReleaseBench(harness.ReleaseBenchOptions{Updates: 150})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.WindowedPerSec, "windowed-applies/s")
		b.ReportMetric(res.BlockingPerSec, "blocking-applies/s")
		b.ReportMetric(res.Speedup, "release-speedup-x")
	}
}

// BenchmarkRecoveryRejoin compares a crashed partition-role node's
// durable rejoin (WAL replay + release-stream resume at the durable
// watermark) against the volatile alternative, a full re-replication of
// the dataset from the origin datacenter. The recovery numbers land in
// BENCH_ci.json via the CI bench job.
func BenchmarkRecoveryRejoin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RecoveryBench(harness.RecoveryBenchOptions{Updates: 1000, Partitions: 2})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.RejoinSecs*1e3, "rejoin-ms")
		b.ReportMetric(res.ResyncSecs*1e3, "resync-ms")
		b.ReportMetric(res.Speedup, "rejoin-speedup-x")
	}
}

// BenchmarkSnapshotBootstrap compares the three ways a partition-role
// node comes up with the dataset: pulling a compressed pinned snapshot
// from a live peer (the new bootstrap path), a full resync (the origin
// re-replicates every update over the WAN — the only option a
// from-scratch replica had before), and a local replay (the data dir
// survived; RecoveryBench's rejoin). The acceptance bar is snapshot-ship
// ≥5× faster than full resync at the largest dataset. Archived in
// BENCH_ci.json by the CI bench job.
func BenchmarkSnapshotBootstrap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.BootstrapBench(harness.BootstrapBenchOptions{
			Updates: 10000, Partitions: 2, StoreBackend: "disk",
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ShipSecs*1e3, "ship-ms")
		b.ReportMetric(res.ResyncSecs*1e3, "resync-ms")
		b.ReportMetric(res.ReplaySecs*1e3, "replay-ms")
		b.ReportMetric(res.ShipVsResync, "ship-vs-resync-x")
		b.ReportMetric(float64(res.ShipBytes), "ship-wire-B")
		b.ReportMetric(float64(res.ShipChunks), "ship-chunks")
	}
}

// BenchmarkDurableSaturation is the group-commit headline: end-to-end
// client update throughput at fixed durability. "always" and "group" give
// the identical durable-on-return guarantee; the ratio between them is
// what fsync coalescing buys. Archived in BENCH_ci.json by the CI bench
// job.
func BenchmarkDurableSaturation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.SaturationBench(harness.SaturationBenchOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.VolatileOps, "volatile-ops/s")
		b.ReportMetric(res.FlushOps, "flush-ops/s")
		b.ReportMetric(res.AlwaysOps, "always-ops/s")
		b.ReportMetric(res.GroupOps, "group-ops/s")
		b.ReportMetric(res.GroupVsAlways, "group-vs-always-x")
	}
}

// BenchmarkOpenLoopLoad is the front-door latency smoke: the open-loop
// generator drives dc0's frontend over the fabric at a fixed offered rate
// and reports coordinated-omission-safe operation-latency percentiles
// (measured from each op's scheduled arrival, so stalls land in the tail
// instead of thinning the load). Archived in BENCH_ci.json by the CI
// bench job; a nonzero backlog marks the percentiles as a lower bound.
func BenchmarkOpenLoopLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.LoadBench(harness.LoadBenchOptions{
			Rate:     2000,
			Duration: 500 * time.Millisecond,
			Warmup:   200 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Throughput, "ops/s")
		b.ReportMetric(float64(res.P50.Microseconds())/1e3, "p50-ms")
		b.ReportMetric(float64(res.P99.Microseconds())/1e3, "p99-ms")
		b.ReportMetric(float64(res.P999.Microseconds())/1e3, "p999-ms")
		b.ReportMetric(float64(res.ServiceP99.Microseconds())/1e3, "service-p99-ms")
		b.ReportMetric(float64(res.Backlog), "backlog-ops")
	}
}

// BenchmarkAblationTreeChoice re-checks §6's claim that the red-black tree
// beats an AVL tree for Eunomia's insert/extract workload.
func BenchmarkAblationTreeChoice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.AblationTree(benchService(), 30)
		b.ReportMetric(res.RedBlack, "redblack-ops/s")
		b.ReportMetric(res.AVL, "avl-ops/s")
	}
}

// BenchmarkAblationBatching sweeps the partition→Eunomia batching interval
// (§5: batching stretches Eunomia's capacity without blocking clients).
func BenchmarkAblationBatching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := harness.AblationBatching(benchService(), 30,
			[]time.Duration{time.Millisecond, 5 * time.Millisecond})
		for _, p := range pts {
			b.ReportMetric(p.Throughput, p.Interval.String()+"-ops/s")
		}
	}
}

// BenchmarkAblationScalarVsVector quantifies §4's metadata tradeoff: the
// scalar compresses metadata but inflates the dc0→dc1 visibility latency
// toward the farthest-datacenter bound.
func BenchmarkAblationScalarVsVector(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.AblationScalarVsVector(benchOptions())
		b.ReportMetric(float64(res.VectorVisP90.Microseconds())/1000, "vector-p90-ms")
		b.ReportMetric(float64(res.ScalarVisP90.Microseconds())/1000, "scalar-p90-ms")
	}
}

// BenchmarkAblationPropagationTree measures §5's fan-in optimization: a
// tree of aggregators cuts the message rate the Eunomia replica must
// absorb at large partition counts.
func BenchmarkAblationPropagationTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.AblationPropagationTree(benchService(), 30, 10)
		b.ReportMetric(res.DirectBatches, "direct-msgs/s")
		b.ReportMetric(res.TreeBatches, "tree-msgs/s")
	}
}

// BenchmarkAggregatorTree measures the propagation tree as deployed on
// the fabric (fabric.Aggregator merging MultiBatchMsg frames): orderer
// ingress messages per ordered operation across tree depths — flat,
// one-level, two-level — with each tree's fan-in ratio
// (BatchesIn/BatchesOut) and flush latency. The acceptance bar is an
// ingress reduction of at least the topology's fan-in factor versus flat.
func BenchmarkAggregatorTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.AggregatorBench(harness.AggregatorBenchOptions{
			ServiceOptions: harness.ServiceOptions{
				Duration:         400 * time.Millisecond,
				Warmup:           150 * time.Millisecond,
				PerPartitionRate: 8000,
			},
			Partitions: 32,
			FanIn:      4,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Points {
			prefix := fmt.Sprintf("depth%d", p.Depth)
			b.ReportMetric(p.IngressPerOp, prefix+"-ingress-msgs/op")
			b.ReportMetric(p.Throughput, prefix+"-ordered-ops/s")
			if p.Depth > 0 {
				b.ReportMetric(p.ReductionVsFlat, prefix+"-ingress-reduction-x")
				b.ReportMetric(p.FanInRatio, prefix+"-fanin-ratio")
				b.ReportMetric(float64(p.FlushP99.Microseconds()), prefix+"-flush-p99-us")
			}
		}
	}
}

// BenchmarkAblationDataMetadataSeparation measures §5's separation toggle.
// In-process, payloads are pointers, so separation costs bookkeeping
// rather than saving bytes — the inversion DESIGN.md documents.
func BenchmarkAblationDataMetadataSeparation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.AblationDataSeparation(benchOptions())
		b.ReportMetric(res.SeparatedThr, "separated-ops/s")
		b.ReportMetric(res.CombinedThr, "combined-ops/s")
	}
}

// BenchmarkWANMatrix runs the emulated-WAN scenario matrix: all five
// systems × off/snappy/zstd as one TCP process per datacenter behind the
// default asymmetric 3-DC topology (latency, jitter, loss, bandwidth)
// with skewed per-datacenter clocks. Bytes-on-wire per operation and
// remote-visibility latency percentiles per cell land in BENCH_ci.json
// via the CI bench job — the visibility curves of §7 with the network
// bill attached.
func BenchmarkWANMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.WANBench(harness.WANBenchOptions{
			Duration: 400 * time.Millisecond,
			Warmup:   150 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range res.Cells {
			label := metricName(strings.ToLower(string(c.System)), "-"+c.Scheme.String())
			b.ReportMetric(c.BytesPerOp, label+"-wire-B/op")
			b.ReportMetric(c.Ratio, label+"-compress-ratio")
			b.ReportMetric(float64(c.VisP50.Microseconds())/1000, label+"-vis-p50-ms")
			b.ReportMetric(float64(c.VisP90.Microseconds())/1000, label+"-vis-p90-ms")
			b.ReportMetric(float64(c.VisP99.Microseconds())/1000, label+"-vis-p99-ms")
		}
	}
}

// BenchmarkWANTreeBytes is the compression acceptance measurement: the
// MultiBatchMsg-heavy aggregator-tree hop over TCP per compression
// scheme. The bar is a ≥2× bytes-on-wire reduction for zstd versus the
// uncompressed wire codec; snappy sits in between at lower CPU.
func BenchmarkWANTreeBytes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.WANTreeBytes(harness.WANTreeOptions{
			ServiceOptions: harness.ServiceOptions{
				Duration: 400 * time.Millisecond,
				Warmup:   150 * time.Millisecond,
			},
			Partitions: 16,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Points {
			prefix := "tree-" + p.Scheme.String()
			b.ReportMetric(p.BytesPerOp, prefix+"-wire-B/op")
			b.ReportMetric(p.Ratio, prefix+"-compress-ratio")
			b.ReportMetric(p.ReductionVsOff, prefix+"-reduction-vs-off-x")
		}
	}
}
