// Command eunomia-bench regenerates the figures of "Unobtrusive Deferred
// Update Stabilization for Efficient Geo-Replication" (USENIX ATC 2017)
// against this repository's implementation, printing one markdown table
// per figure.
//
// Usage:
//
//	eunomia-bench [flags] fig1|fig2|fig3|fig4|fig5|fig6|fig7|wan|ablations|all
//
// Durations default to quick, laptop-scale runs; raise -duration (and
// -phase for fig7, -total for fig4) for longer, lower-variance runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"eunomia/internal/harness"
	"eunomia/internal/types"
)

func main() {
	var (
		duration   = flag.Duration("duration", 2*time.Second, "measured window per data point")
		warmup     = flag.Duration("warmup", 500*time.Millisecond, "warmup before each measured window")
		workers    = flag.Int("workers", 8, "closed-loop clients per datacenter")
		partitions = flag.Int("partitions", 8, "partitions per datacenter")
		dcs        = flag.Int("dcs", 3, "datacenters")
		rttScale   = flag.Float64("rtt-scale", 1.0, "scale factor on the paper's 80/80/160ms RTT matrix")
		svcDur     = flag.Duration("svc-duration", time.Second, "measured window for service-saturation points (figs 2-3)")
		total      = flag.Duration("total", 12*time.Second, "fig4 total runtime")
		phase      = flag.Duration("phase", 4*time.Second, "fig7 phase length")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: eunomia-bench [flags] fig1|fig2|fig3|fig4|fig5|fig6|fig7|wan|ablations|all")
		os.Exit(2)
	}

	opts := harness.Options{
		Duration:     *duration,
		Warmup:       *warmup,
		WorkersPerDC: *workers,
		DCs:          *dcs,
		Partitions:   *partitions,
		RTTScale:     *rttScale,
	}
	svcOpts := harness.ServiceOptions{Duration: *svcDur}

	for _, cmd := range flag.Args() {
		switch strings.ToLower(cmd) {
		case "fig1":
			fig1(opts)
		case "fig2":
			fig2(svcOpts)
		case "fig3":
			fig3(svcOpts)
		case "fig4":
			fig4(harness.Fig4Options{Total: *total})
		case "fig5":
			fig5(opts)
		case "fig6":
			fig6(opts)
		case "fig7":
			fig7(harness.Fig7Options{Options: opts, Phase: *phase})
		case "wan":
			wanMatrix(opts)
		case "ablations":
			ablations(opts, svcOpts)
		case "all":
			fig1(opts)
			fig2(svcOpts)
			fig3(svcOpts)
			fig4(harness.Fig4Options{Total: *total})
			fig5(opts)
			fig6(opts)
			fig7(harness.Fig7Options{Options: opts, Phase: *phase})
			ablations(opts, svcOpts)
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", cmd)
			os.Exit(2)
		}
	}
}

func header(title string) {
	fmt.Printf("\n## %s\n\n", title)
}

func fig1(opts harness.Options) {
	header("Figure 1 — visibility latency vs throughput tradeoff (90:10, uniform)")
	res := harness.Fig1(opts, nil)
	fmt.Printf("Eventual-consistency baseline: %.0f ops/s\n\n", res.Baseline)
	fmt.Println("| system | interval | throughput (ops/s) | penalty vs eventual | visibility p90 dc0→dc1 |")
	fmt.Println("|---|---|---|---|---|")
	for _, p := range res.Points {
		iv := "—"
		if p.Interval > 0 {
			iv = p.Interval.String()
		}
		fmt.Printf("| %s | %s | %.0f | %.1f%% | %s |\n",
			p.System, iv, p.Throughput, p.PenaltyPct, p.VisP90.Round(time.Millisecond))
	}
}

func fig2(opts harness.ServiceOptions) {
	header("Figure 2 — service saturation: Eunomia vs sequencer")
	res := harness.Fig2(opts, nil)
	fmt.Println("| service | partitions | throughput (ops/s) |")
	fmt.Println("|---|---|---|")
	for _, p := range res.Points {
		fmt.Printf("| %s | %d | %.0f |\n", p.Service, p.Partitions, p.Throughput)
	}
	fmt.Printf("\nmax(Eunomia)/max(Sequencer) = **%.1f×** (paper: 7.7×)\n", res.Ratio)
}

func fig3(opts harness.ServiceOptions) {
	header("Figure 3 — fault-tolerance overhead")
	res := harness.Fig3(opts, 60)
	fmt.Println("| configuration | throughput (ops/s) | normalized |")
	fmt.Println("|---|---|---|")
	for _, p := range res.Points {
		fmt.Printf("| %s | %.0f | %.2f |\n", p.Config, p.Throughput, p.Normalized)
	}
}

func fig4(o harness.Fig4Options) {
	header("Figure 4 — impact of Eunomia replica failures")
	res := harness.Fig4(o)
	fmt.Printf("crash replica 0 at %v, replica 1 at %v, buckets of %v\n\n",
		res.Options.Crash1, res.Options.Crash2, res.Options.Bucket)
	fmt.Print("| t (bucket) |")
	for _, s := range res.Series {
		fmt.Printf(" %s |", s.Config)
	}
	fmt.Println()
	fmt.Print("|---|")
	for range res.Series {
		fmt.Print("---|")
	}
	fmt.Println()
	maxLen := 0
	for _, s := range res.Series {
		if len(s.Normalized) > maxLen {
			maxLen = len(s.Normalized)
		}
	}
	for i := 0; i < maxLen; i++ {
		fmt.Printf("| %d |", i)
		for _, s := range res.Series {
			if i < len(s.Normalized) {
				fmt.Printf(" %.2f |", s.Normalized[i])
			} else {
				fmt.Print(" |")
			}
		}
		fmt.Println()
	}
}

func fig5(opts harness.Options) {
	header("Figure 5 — geo-replicated throughput")
	res := harness.Fig5(opts, nil, nil)
	fmt.Println("| workload | dist | Eventual | EunomiaKV | GentleRain | Cure | EunomiaKV vs eventual |")
	fmt.Println("|---|---|---|---|---|---|---|")
	type key struct {
		mix  string
		dist string
	}
	rows := map[key]map[harness.SystemKind]harness.Fig5Cell{}
	var order []key
	for _, c := range res.Cells {
		k := key{c.Mix.String(), c.Dist}
		if rows[k] == nil {
			rows[k] = map[harness.SystemKind]harness.Fig5Cell{}
			order = append(order, k)
		}
		rows[k][c.System] = c
	}
	for _, k := range order {
		r := rows[k]
		fmt.Printf("| %s | %s | %.0f | %.0f | %.0f | %.0f | %.1f%% |\n",
			k.mix, k.dist,
			r[harness.Eventual].Throughput, r[harness.EunomiaKV].Throughput,
			r[harness.GentleRain].Throughput, r[harness.Cure].Throughput,
			(r[harness.EunomiaKV].VsEventual-1)*100)
	}
}

func fig6(opts harness.Options) {
	header("Figure 6 — remote update visibility latency (network factored out)")
	res := harness.Fig6(opts)
	fmt.Println("| system | pair | n | p50 | p90 | p95 | p99 |")
	fmt.Println("|---|---|---|---|---|---|---|")
	for _, c := range res.Curves {
		fmt.Printf("| %s | dc%d→dc%d | %d | %s | %s | %s | %s |\n",
			c.System, c.Origin, c.Dest, c.Count,
			c.P50.Round(time.Millisecond), c.P90.Round(time.Millisecond),
			c.P95.Round(time.Millisecond), c.P99.Round(time.Millisecond))
	}
	// CDF detail for the dc0→dc1 pair, decimated.
	fmt.Println("\nCDF (dc0→dc1), fraction visible within X ms:")
	fmt.Println("| system | 1ms | 5ms | 15ms | 45ms | 80ms | 120ms |")
	fmt.Println("|---|---|---|---|---|---|---|")
	marks := []time.Duration{time.Millisecond, 5 * time.Millisecond, 15 * time.Millisecond,
		45 * time.Millisecond, 80 * time.Millisecond, 120 * time.Millisecond}
	for _, c := range res.Curves {
		if c.Origin != types.DCID(0) || c.Dest != types.DCID(1) {
			continue
		}
		fmt.Printf("| %s |", c.System)
		for _, mark := range marks {
			frac := 0.0
			for _, pt := range c.CDF {
				if time.Duration(pt.Value) <= mark {
					frac = pt.Fraction
				}
			}
			fmt.Printf(" %.2f |", frac)
		}
		fmt.Println()
	}
}

func fig7(o harness.Fig7Options) {
	header("Figure 7 — straggler impact on visibility (dc2-origin updates at dc1)")
	res := harness.Fig7(o)
	intervals := make([]string, len(res.Series))
	for i, s := range res.Series {
		intervals[i] = s.Interval.String()
	}
	sort.Strings(intervals)
	fmt.Printf("phases of %v: healthy / straggler / healed; buckets of %v\n\n",
		res.Options.Phase, res.Options.Bucket)
	fmt.Print("| bucket |")
	for _, s := range res.Series {
		fmt.Printf(" straggle %s (ms) |", s.Interval)
	}
	fmt.Println()
	fmt.Print("|---|")
	for range res.Series {
		fmt.Print("---|")
	}
	fmt.Println()
	maxLen := 0
	for _, s := range res.Series {
		if len(s.VisibilityMs) > maxLen {
			maxLen = len(s.VisibilityMs)
		}
	}
	for i := 0; i < maxLen; i++ {
		fmt.Printf("| %d |", i)
		for _, s := range res.Series {
			if i < len(s.VisibilityMs) {
				fmt.Printf(" %.1f |", s.VisibilityMs[i])
			} else {
				fmt.Print(" |")
			}
		}
		fmt.Println()
	}
}

func ablations(opts harness.Options, svcOpts harness.ServiceOptions) {
	header("Ablations")
	tree := harness.AblationTree(svcOpts, 60)
	fmt.Printf("pending-set structure (§6): red-black %.0f ops/s vs AVL %.0f ops/s (%.1f%% difference)\n\n",
		tree.RedBlack, tree.AVL, (tree.RedBlack-tree.AVL)/tree.AVL*100)

	fmt.Println("| batching interval | Eunomia throughput (ops/s) |")
	fmt.Println("|---|---|")
	for _, p := range harness.AblationBatching(svcOpts, 60, nil) {
		fmt.Printf("| %s | %.0f |\n", p.Interval, p.Throughput)
	}

	meta := harness.AblationScalarVsVector(opts)
	fmt.Printf("\nmetadata (§4): vector p90 %s @ %.0f ops/s vs scalar p90 %s @ %.0f ops/s (dc0→dc1)\n",
		meta.VectorVisP90.Round(time.Millisecond), meta.VectorThr,
		meta.ScalarVisP90.Round(time.Millisecond), meta.ScalarThr)

	sep := harness.AblationDataSeparation(opts)
	fmt.Printf("data/metadata separation (§5): separated %.0f ops/s (p90 %s) vs combined %.0f ops/s (p90 %s)\n",
		sep.SeparatedThr, sep.SeparatedP90.Round(time.Millisecond),
		sep.CombinedThr, sep.CombinedP90.Round(time.Millisecond))

	fan := harness.AblationPropagationTree(svcOpts, 60, 15)
	fmt.Printf("propagation tree (§5): direct %.0f msgs/s at the replica (%.0f ops/s) vs 15-way tree %.0f msgs/s (%.0f ops/s)\n",
		fan.DirectBatches, fan.DirectThroughput, fan.TreeBatches, fan.TreeThroughput)
}

// wanMatrix renders the emulated-WAN scenario matrix — every system ×
// compression scheme as one TCP process per datacenter behind the default
// shaped topology — followed by the aggregator-tree bytes comparison.
func wanMatrix(opts harness.Options) {
	header("Emulated WAN — bytes on wire and visibility per system × compression")
	res, err := harness.WANBench(harness.WANBenchOptions{
		Duration:     opts.Duration,
		Warmup:       opts.Warmup,
		DCs:          opts.DCs,
		Partitions:   opts.Partitions,
		WorkersPerDC: opts.WorkersPerDC,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "wan matrix: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("topology: %s\n\n", res.Topology)
	fmt.Println("| system | compression | ops/s | wire B/op | ratio | vis p50 | vis p90 | vis p99 |")
	fmt.Println("|---|---|---|---|---|---|---|---|")
	for _, c := range res.Cells {
		fmt.Printf("| %s | %s | %.0f | %.0f | %.2f | %s | %s | %s |\n",
			c.System, c.Scheme, c.Throughput, c.BytesPerOp, c.Ratio,
			c.VisP50.Round(time.Millisecond), c.VisP90.Round(time.Millisecond),
			c.VisP99.Round(time.Millisecond))
	}

	header("Emulated WAN — aggregator-tree bytes on wire per compression scheme")
	tree, err := harness.WANTreeBytes(harness.WANTreeOptions{
		ServiceOptions: harness.ServiceOptions{Duration: opts.Duration, Warmup: opts.Warmup},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "wan tree: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("| compression | ordered ops | wire B/op | ratio | reduction vs off |")
	fmt.Println("|---|---|---|---|---|")
	for _, p := range tree.Points {
		fmt.Printf("| %s | %d | %.0f | %.2f | %.1f× |\n",
			p.Scheme, p.Ops, p.BytesPerOp, p.Ratio, p.ReductionVsOff)
	}
}
