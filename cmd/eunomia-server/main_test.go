package main

import (
	"bytes"
	"fmt"
	"net"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// freePort reserves a loopback port and returns "127.0.0.1:port". The
// listener is closed before use; the tiny reuse race is acceptable for a
// test.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return addr
}

// buildServer compiles the server binary once per test run.
func buildServer(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "eunomia-server")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// runTwoProcessDemo launches a two-process datacenter pair — one process
// per datacenter, each hosting every role of the given mode — drives a
// causally chained workload in the writer process, and has the watcher
// process verify visibility (and, where promised, causal order) before
// exiting. confirm is the mode's expected watcher verdict line.
func runTwoProcessDemo(t *testing.T, bin, mode, confirm string, pairs int) {
	t.Helper()
	addr0, addr1 := freePort(t), freePort(t)
	common := []string{"-mode", mode, "-dcs", "2", "-partitions", "2", "-replicas", "1", "-stats-interval", "1h"}

	writer := exec.Command(bin, append([]string{
		"-role", "dc", "-dc", "0", "-listen", addr0,
		"-route", "dc1=" + addr1,
		"-demo", fmt.Sprintf("write:%d", pairs),
	}, common...)...)
	var writerOut bytes.Buffer
	writer.Stdout = &writerOut
	writer.Stderr = &writerOut
	if err := writer.Start(); err != nil {
		t.Fatal(err)
	}
	var stopOnce sync.Once
	// The exec pipe goroutine writes into writerOut until the process
	// exits; always stop the writer before reading its buffer.
	stopWriter := func() {
		stopOnce.Do(func() {
			_ = writer.Process.Kill()
			_ = writer.Wait()
		})
	}
	defer stopWriter()

	watcher := exec.Command(bin, append([]string{
		"-role", "dc", "-dc", "1", "-listen", addr1,
		"-route", "dc0=" + addr0,
		"-demo", fmt.Sprintf("watch:%d", pairs),
	}, common...)...)
	var watcherOut bytes.Buffer
	watcher.Stdout = &watcherOut
	watcher.Stderr = &watcherOut
	if err := watcher.Start(); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- watcher.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			stopWriter()
			t.Fatalf("watcher failed: %v\nwatcher output:\n%s\nwriter output:\n%s",
				err, watcherOut.String(), writerOut.String())
		}
	case <-time.After(150 * time.Second):
		_ = watcher.Process.Kill()
		<-done
		stopWriter()
		t.Fatalf("watcher did not finish\nwatcher output:\n%s\nwriter output:\n%s",
			watcherOut.String(), writerOut.String())
	}
	stopWriter()
	if !strings.Contains(watcherOut.String(), fmt.Sprintf("%s (%d pairs)", confirm, pairs)) {
		t.Fatalf("watcher did not print %q:\n%s", confirm, watcherOut.String())
	}
	if !strings.Contains(writerOut.String(), fmt.Sprintf("wrote %d causal data/flag pairs", pairs)) {
		t.Fatalf("writer did not confirm workload:\n%s", writerOut.String())
	}
}

// TestTwoProcessDatacenterOverTCP is the end-to-end acceptance check for
// the CLI across the whole comparison matrix: for every -mode, a
// two-process deployment (one OS process per datacenter) must replicate a
// causally chained workload over real TCP.
func TestTwoProcessDatacenterOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-process demo in -short mode")
	}
	bin := buildServer(t)
	for mode, confirm := range map[string]string{
		"eunomia":    "causal chain OK",
		"sequencer":  "causal chain OK",
		"globalstab": "causal chain OK",
		"cure":       "causal chain OK",
		// Eventual consistency promises visibility only; the watcher must
		// not claim to have verified an order.
		"eventual": "visibility OK",
	} {
		t.Run(mode, func(t *testing.T) {
			runTwoProcessDemo(t, bin, mode, confirm, 12)
		})
	}
}

// TestThreeProcessSequencerOverTCP splits dc0 of the sequencer baseline
// by role: the number service runs alone in one process, the partition
// group in another, so every update's sequence number is assigned over a
// real TCP round trip; dc1 watches the causal chain from a third process.
func TestThreeProcessSequencerOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-process demo in -short mode")
	}
	bin := buildServer(t)
	seqAddr, addr0, addr1 := freePort(t), freePort(t), freePort(t)
	common := []string{"-mode", "sequencer", "-dcs", "2", "-partitions", "2", "-stats-interval", "1h"}

	procs := []*exec.Cmd{
		exec.Command(bin, append([]string{
			"-role", "sequencer", "-dc", "0", "-listen", seqAddr,
		}, common...)...),
		exec.Command(bin, append([]string{
			"-role", "partitions", "-dc", "0", "-listen", addr0,
			"-route", "dc0:sequencer=" + seqAddr,
			"-route", "dc1=" + addr1,
			"-demo", "write:8",
		}, common...)...),
	}
	watcher := exec.Command(bin, append([]string{
		"-role", "dc", "-dc", "1", "-listen", addr1,
		// Role-scoped route: in sequencer mode this must cover dc0's
		// receiver (hosted by the partition-group process), or shipping
		// to dc0 would be silently dropped.
		"-route", "dc0:partitions=" + addr0,
		"-demo", "watch:8",
	}, common...)...)

	var outs []*bytes.Buffer
	for _, p := range append(procs, watcher) {
		var buf bytes.Buffer
		p.Stdout = &buf
		p.Stderr = &buf
		outs = append(outs, &buf)
	}
	var killOnce sync.Once
	killAll := func() {
		killOnce.Do(func() {
			for _, p := range procs {
				if p.Process == nil {
					continue // never started
				}
				_ = p.Process.Kill()
				_ = p.Wait()
			}
		})
	}
	defer killAll()
	// dump stops every process first so the exec pipe goroutines are done
	// writing into the buffers before we read them.
	dump := func() string {
		killAll()
		var sb strings.Builder
		for i, buf := range outs {
			fmt.Fprintf(&sb, "--- process %d ---\n%s\n", i, buf.String())
		}
		return sb.String()
	}
	for _, p := range procs {
		if err := p.Start(); err != nil {
			t.Fatal(err)
		}
	}
	if err := watcher.Start(); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- watcher.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("watcher failed: %v\n%s", err, dump())
		}
	case <-time.After(150 * time.Second):
		_ = watcher.Process.Kill()
		<-done
		t.Fatalf("watcher did not finish\n%s", dump())
	}
	if !strings.Contains(outs[len(outs)-1].String(), "causal chain OK (8 pairs)") {
		t.Fatalf("watcher did not confirm causal order:\n%s", dump())
	}
}
