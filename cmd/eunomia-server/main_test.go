package main

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// freePort reserves a loopback port and returns "127.0.0.1:port". The
// listener is closed before use; the tiny reuse race is acceptable for a
// test.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return addr
}

// buildServer compiles the server binary once per test run.
func buildServer(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "eunomia-server")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// runTwoProcessDemo launches a two-process datacenter pair — one process
// per datacenter, each hosting every role of the given mode — drives a
// causally chained workload in the writer process, and has the watcher
// process verify visibility (and, where promised, causal order) before
// exiting. confirm is the mode's expected watcher verdict line; extra
// flags (e.g. the -codec ablation) apply to both processes.
func runTwoProcessDemo(t *testing.T, bin, mode, confirm string, pairs int, extra ...string) {
	t.Helper()
	addr0, addr1 := freePort(t), freePort(t)
	common := append([]string{"-mode", mode, "-dcs", "2", "-partitions", "2", "-replicas", "1", "-stats-interval", "1h"}, extra...)

	writer := exec.Command(bin, append([]string{
		"-role", "dc", "-dc", "0", "-listen", addr0,
		"-route", "dc1=" + addr1,
		"-demo", fmt.Sprintf("write:%d", pairs),
	}, common...)...)
	var writerOut bytes.Buffer
	writer.Stdout = &writerOut
	writer.Stderr = &writerOut
	if err := writer.Start(); err != nil {
		t.Fatal(err)
	}
	var stopOnce sync.Once
	// The exec pipe goroutine writes into writerOut until the process
	// exits; always stop the writer before reading its buffer.
	stopWriter := func() {
		stopOnce.Do(func() {
			_ = writer.Process.Kill()
			_ = writer.Wait()
		})
	}
	defer stopWriter()

	watcher := exec.Command(bin, append([]string{
		"-role", "dc", "-dc", "1", "-listen", addr1,
		"-route", "dc0=" + addr0,
		"-demo", fmt.Sprintf("watch:%d", pairs),
	}, common...)...)
	var watcherOut bytes.Buffer
	watcher.Stdout = &watcherOut
	watcher.Stderr = &watcherOut
	if err := watcher.Start(); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- watcher.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			stopWriter()
			t.Fatalf("watcher failed: %v\nwatcher output:\n%s\nwriter output:\n%s",
				err, watcherOut.String(), writerOut.String())
		}
	case <-time.After(150 * time.Second):
		_ = watcher.Process.Kill()
		<-done
		stopWriter()
		t.Fatalf("watcher did not finish\nwatcher output:\n%s\nwriter output:\n%s",
			watcherOut.String(), writerOut.String())
	}
	stopWriter()
	if !strings.Contains(watcherOut.String(), fmt.Sprintf("%s (%d pairs)", confirm, pairs)) {
		t.Fatalf("watcher did not print %q:\n%s", confirm, watcherOut.String())
	}
	if !strings.Contains(writerOut.String(), fmt.Sprintf("wrote %d causal data/flag pairs", pairs)) {
		t.Fatalf("writer did not confirm workload:\n%s", writerOut.String())
	}
}

// TestTwoProcessDatacenterOverTCP is the end-to-end acceptance check for
// the CLI across the whole comparison matrix: for every -mode, a
// two-process deployment (one OS process per datacenter) must replicate a
// causally chained workload over real TCP.
func TestTwoProcessDatacenterOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-process demo in -short mode")
	}
	bin := buildServer(t)
	for mode, confirm := range map[string]string{
		"eunomia":    "causal chain OK",
		"sequencer":  "causal chain OK",
		"globalstab": "causal chain OK",
		"cure":       "causal chain OK",
		// Eventual consistency promises visibility only; the watcher must
		// not claim to have verified an order.
		"eventual": "visibility OK",
	} {
		t.Run(mode, func(t *testing.T) {
			runTwoProcessDemo(t, bin, mode, confirm, 12)
		})
	}
}

// TestTwoProcessGobAblationOverTCP runs the eunomia demo on the gob
// codec ablation (-codec gob): the reflection-based frame streams must
// still carry the whole protocol, or the codec benchmarks compare
// against a broken baseline.
func TestTwoProcessGobAblationOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-process demo in -short mode")
	}
	runTwoProcessDemo(t, buildServer(t), "eunomia", "causal chain OK", 12, "-codec", "gob")
}

// TestTwoProcessCompressedOverTCP runs the whole comparison matrix with
// every process dialing zstd-compressed connections: the negotiated
// record layout must carry each protocol end to end, so the WAN
// benchmarks' -compress zstd cells measure live systems, not a layout
// that only survives the happy path.
func TestTwoProcessCompressedOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-process demo in -short mode")
	}
	bin := buildServer(t)
	for mode, confirm := range map[string]string{
		"eunomia":    "causal chain OK",
		"sequencer":  "causal chain OK",
		"globalstab": "causal chain OK",
		"cure":       "causal chain OK",
		"eventual":   "visibility OK",
	} {
		t.Run(mode, func(t *testing.T) {
			runTwoProcessDemo(t, bin, mode, confirm, 12, "-compress", "zstd")
		})
	}
}

// TestTwoProcessMixedCompressionOverTCP pairs a snappy-dialing dc0 with
// a plain-dialing dc1 — the runTwoProcessDemo helper applies extras to
// both, so this variant builds the deployment by hand: each side must
// decode the other's announced scheme, the mixed-rollout case a
// compression deploy lives in.
func TestTwoProcessMixedCompressionOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-process demo in -short mode")
	}
	bin := buildServer(t)
	addr0, addr1 := freePort(t), freePort(t)
	common := []string{"-mode", "eunomia", "-dcs", "2", "-partitions", "2", "-replicas", "1", "-stats-interval", "1h"}

	writer := startProc(t, bin, append([]string{
		"-role", "dc", "-dc", "0", "-listen", addr0,
		"-route", "dc1=" + addr1,
		"-compress", "snappy",
		"-demo", "write:12",
	}, common...)...)
	defer writer.kill()
	watcher := startProc(t, bin, append([]string{
		"-role", "dc", "-dc", "1", "-listen", addr1,
		"-route", "dc0=" + addr0,
		"-demo", "watch:12",
	}, common...)...)
	defer watcher.kill()

	done := make(chan error, 1)
	go func() { done <- watcher.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("watcher failed: %v\nwatcher:\n%s\nwriter:\n%s", err, watcher.output(), writer.output())
		}
	case <-time.After(150 * time.Second):
		_ = watcher.cmd.Process.Kill()
		<-done
		t.Fatalf("watcher did not finish\nwatcher:\n%s\nwriter:\n%s", watcher.output(), writer.output())
	}
	if !strings.Contains(watcher.output(), "causal chain OK (12 pairs)") {
		t.Fatalf("watcher did not confirm causal order:\n%s", watcher.output())
	}
}

// TestTwoProcessDemoOverEmulatedWAN shapes the inter-DC link of a live
// two-process deployment (-wan: 30ms±3ms, 0.1% loss, 50Mbps) with
// compressed frames: the causal demo must still pass over the injected
// latency — the end-to-end form of the WAN benchmarks' claim that
// shaping changes timing, never correctness.
func TestTwoProcessDemoOverEmulatedWAN(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-process demo in -short mode")
	}
	runTwoProcessDemo(t, buildServer(t), "eunomia", "causal chain OK", 8,
		"-wan", "dc0-dc1:30ms±3ms,0.1%,50Mbps", "-compress", "zstd")
}

// TestThreeProcessSequencerOverTCP splits dc0 of the sequencer baseline
// by role: the number service runs alone in one process, the partition
// group in another, so every update's sequence number is assigned over a
// real TCP round trip; dc1 watches the causal chain from a third process.
func TestThreeProcessSequencerOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-process demo in -short mode")
	}
	bin := buildServer(t)
	seqAddr, addr0, addr1 := freePort(t), freePort(t), freePort(t)
	common := []string{"-mode", "sequencer", "-dcs", "2", "-partitions", "2", "-stats-interval", "1h"}

	procs := []*exec.Cmd{
		exec.Command(bin, append([]string{
			"-role", "sequencer", "-dc", "0", "-listen", seqAddr,
		}, common...)...),
		exec.Command(bin, append([]string{
			"-role", "partitions", "-dc", "0", "-listen", addr0,
			"-route", "dc0:sequencer=" + seqAddr,
			"-route", "dc1=" + addr1,
			"-demo", "write:8",
		}, common...)...),
	}
	watcher := exec.Command(bin, append([]string{
		"-role", "dc", "-dc", "1", "-listen", addr1,
		// Role-scoped route: in sequencer mode this must cover dc0's
		// receiver (hosted by the partition-group process), or shipping
		// to dc0 would be silently dropped.
		"-route", "dc0:partitions=" + addr0,
		"-demo", "watch:8",
	}, common...)...)

	var outs []*bytes.Buffer
	for _, p := range append(procs, watcher) {
		var buf bytes.Buffer
		p.Stdout = &buf
		p.Stderr = &buf
		outs = append(outs, &buf)
	}
	var killOnce sync.Once
	killAll := func() {
		killOnce.Do(func() {
			for _, p := range procs {
				if p.Process == nil {
					continue // never started
				}
				_ = p.Process.Kill()
				_ = p.Wait()
			}
		})
	}
	defer killAll()
	// dump stops every process first so the exec pipe goroutines are done
	// writing into the buffers before we read them.
	dump := func() string {
		killAll()
		var sb strings.Builder
		for i, buf := range outs {
			fmt.Fprintf(&sb, "--- process %d ---\n%s\n", i, buf.String())
		}
		return sb.String()
	}
	for _, p := range procs {
		if err := p.Start(); err != nil {
			t.Fatal(err)
		}
	}
	if err := watcher.Start(); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- watcher.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("watcher failed: %v\n%s", err, dump())
		}
	case <-time.After(150 * time.Second):
		_ = watcher.Process.Kill()
		<-done
		t.Fatalf("watcher did not finish\n%s", dump())
	}
	if !strings.Contains(outs[len(outs)-1].String(), "causal chain OK (8 pairs)") {
		t.Fatalf("watcher did not confirm causal order:\n%s", dump())
	}
}

// proc wraps a started eunomia-server process with its combined output.
type proc struct {
	cmd *exec.Cmd
	out *bytes.Buffer
	mu  sync.Mutex
}

func startProc(t *testing.T, bin string, args ...string) *proc {
	t.Helper()
	p := &proc{cmd: exec.Command(bin, args...), out: &bytes.Buffer{}}
	p.cmd.Stdout = &lockedWriter{p: p}
	p.cmd.Stderr = &lockedWriter{p: p}
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return p
}

// lockedWriter serializes the exec pipe goroutines' writes with test-side
// reads of the buffer while the process is still running.
type lockedWriter struct{ p *proc }

func (w *lockedWriter) Write(b []byte) (int, error) {
	w.p.mu.Lock()
	defer w.p.mu.Unlock()
	return w.p.out.Write(b)
}

func (p *proc) output() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.out.String()
}

func (p *proc) kill() {
	if p.cmd.Process != nil {
		_ = p.cmd.Process.Kill()
		_ = p.cmd.Wait()
	}
}

var appliedRe = regexp.MustCompile(`remote applied=(\d+)`)

// lastApplied parses the newest stats line's remote-applied counter.
func (p *proc) lastApplied() int {
	m := appliedRe.FindAllStringSubmatch(p.output(), -1)
	if len(m) == 0 {
		return 0
	}
	n, _ := strconv.Atoi(m[len(m)-1][1])
	return n
}

// runPartitionKillRestart is the restart-rejoin acceptance matrix: a
// three-process dc pair whose dc0 is split by role (partitions+eunomia /
// receiver), a throttled writer at dc1, and a SIGKILL of the
// partition-role process mid-stream. With durable=true the process
// restarts with the same -data-dir (plus a torn tail scribbled on one
// partition WAL) and must rejoin the release stream at its durable
// watermark — the watcher then proves nothing was lost or misordered.
// With durable=false the restart has no data dir and the receiver
// process must exit nonzero with a wedge diagnostic instead of
// pretending the datacenter is healthy. extra flags (e.g. -compress)
// apply to every process; walArgs (e.g. -wal-sync group) are threaded
// to the durable processes only, so the matrix covers each sync
// policy's crash window.
func runPartitionKillRestart(t *testing.T, bin string, durable bool, extra, walArgs []string) {
	partsAddr, recvAddr, originAddr := freePort(t), freePort(t), freePort(t)
	dir := t.TempDir()
	common := append([]string{"-mode", "eunomia", "-dcs", "2", "-partitions", "2", "-replicas", "1"}, extra...)

	partsArgs := append([]string{
		"-role", "partitions,eunomia", "-dc", "0", "-listen", partsAddr,
		"-route", "dc0:receiver=" + recvAddr,
		"-route", "dc1=" + originAddr,
		"-stats-interval", "50ms",
		"-data-dir", dir,
	}, common...)
	partsArgs = append(partsArgs, walArgs...)
	parts := startProc(t, bin, partsArgs...)
	defer parts.kill()

	recvArgs := append([]string{
		"-role", "receiver", "-dc", "0", "-listen", recvAddr,
		"-route", "dc0:partitions=" + partsAddr,
		"-route", "dc1=" + originAddr,
		"-stats-interval", "1h",
	}, common...)
	if durable {
		recvArgs = append(recvArgs, "-data-dir", dir)
		recvArgs = append(recvArgs, walArgs...)
	}
	recv := startProc(t, bin, recvArgs...)
	defer recv.kill()

	// The kill below must land while the stream is still in flight. The
	// durable variant only needs a modest stream (the watcher waits for
	// every pair anyway); the volatile variant needs a long one — the
	// wedge can only be diagnosed while the receiver still has (or
	// produces) unacknowledged releases, and the wire codec drains an
	// apply backlog fast enough that a short stream can complete between
	// the kill decision (parsed from a 50ms stats cadence) and the
	// signal landing.
	pairs := 150
	if !durable {
		pairs = 2000
	}
	writer := startProc(t, bin, append([]string{
		"-role", "dc", "-dc", "1", "-listen", originAddr,
		"-route", "dc0:partitions=" + partsAddr,
		"-route", "dc0:receiver=" + recvAddr,
		"-stats-interval", "1h",
		"-demo", fmt.Sprintf("write:%d:2", pairs), // ~2ms/pair: a long-lived stream
	}, common...)...)
	defer writer.kill()

	// Kill the partition process mid-stream: after some applies are in
	// (and durably acked, so the window has pruned a prefix) but long
	// before the stream ends.
	deadline := time.Now().Add(60 * time.Second)
	for parts.lastApplied() < 40 {
		if time.Now().After(deadline) {
			t.Fatalf("partition process never applied 40 updates\nparts:\n%s\nrecv:\n%s\nwriter:\n%s",
				parts.output(), recv.output(), writer.output())
		}
		time.Sleep(10 * time.Millisecond)
	}
	parts.kill() // SIGKILL: no flush, no goodbye

	if durable {
		// Torn tail: scribble a partial record onto one partition WAL, as
		// a crash mid-write would. Recovery must truncate and proceed.
		if err := appendRawFile(filepath.Join(dir, "dc0-partition0", "log"), []byte{200, 0, 0, 0, 0xde, 0xad}); err != nil {
			t.Fatal(err)
		}
	}

	restartArgs := append([]string{
		"-role", "partitions,eunomia", "-dc", "0", "-listen", partsAddr,
		"-route", "dc0:receiver=" + recvAddr,
		"-route", "dc1=" + originAddr,
		"-stats-interval", "1h",
		"-demo", fmt.Sprintf("watch:%d", pairs),
	}, common...)
	if durable {
		restartArgs = append(restartArgs, "-data-dir", dir)
		restartArgs = append(restartArgs, walArgs...)
	}
	restarted := startProc(t, bin, restartArgs...)
	defer restarted.kill()

	if durable {
		// The restarted process must recover, rejoin the stream at its
		// durable watermark, and verify the full causal chain.
		done := make(chan error, 1)
		go func() { done <- restarted.cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("restarted watcher failed: %v\nrestarted:\n%s\nrecv:\n%s\nwriter:\n%s",
					err, restarted.output(), recv.output(), writer.output())
			}
		case <-time.After(150 * time.Second):
			t.Fatalf("restarted watcher did not finish\nrestarted:\n%s\nrecv:\n%s\nwriter:\n%s",
				restarted.output(), recv.output(), writer.output())
		}
		if !strings.Contains(restarted.output(), fmt.Sprintf("causal chain OK (%d pairs)", pairs)) {
			t.Fatalf("restarted watcher did not confirm the causal chain:\n%s", restarted.output())
		}
		if !strings.Contains(restarted.output(), "durable state under") {
			t.Fatalf("restarted process did not report recovery:\n%s", restarted.output())
		}
		if strings.Contains(recv.output(), "release stream wedged") {
			t.Fatalf("durable rejoin wedged the stream:\n%s", recv.output())
		}
		return
	}

	// Volatile restart: the retransmitted stream hits a fresh applier
	// with no durable state; the receiver process must diagnose the
	// wedge and exit nonzero rather than report a healthy datacenter.
	done := make(chan error, 1)
	go func() { done <- recv.cmd.Wait() }()
	select {
	case err := <-done:
		exit, ok := err.(*exec.ExitError)
		if !ok || exit.ExitCode() != 1 {
			t.Fatalf("receiver exited %v, want exit code 1\nrecv:\n%s", err, recv.output())
		}
	case <-time.After(150 * time.Second):
		t.Fatalf("receiver never exited on the wedged stream\nrecv:\n%s\nrestarted:\n%s",
			recv.output(), restarted.output())
	}
	if !strings.Contains(recv.output(), "release stream wedged") {
		t.Fatalf("receiver exited without the wedge diagnostic:\n%s", recv.output())
	}
}

func appendRawFile(path string, b []byte) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// TestPartitionProcessKillRejoinOverTCP kills a partition-role process
// mid-stream and restarts it with the same -data-dir: the release stream
// resumes from the durable watermark with no lost or duplicated applies
// (the causal-order check passes end to end), surviving a torn WAL tail
// from the crash.
func TestPartitionProcessKillRejoinOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-process restart test in -short mode")
	}
	runPartitionKillRestart(t, buildServer(t), true, nil, nil)
}

// TestPartitionProcessKillRejoinCompressedOverTCP is the same crash and
// durable rejoin with every process dialing compressed (-compress zstd)
// connections: the retransmit/rejoin machinery must be byte-layout
// agnostic, and a reconnecting dialer renegotiates its scheme on the
// fresh socket.
func TestPartitionProcessKillRejoinCompressedOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-process restart test in -short mode")
	}
	runPartitionKillRestart(t, buildServer(t), true, []string{"-compress", "zstd"}, nil)
}

// TestPartitionProcessKillRejoinGroupCommitOverTCP runs the same crash
// matrix under -wal-sync group: the group committer's acks are gated on
// fsync completion, so a SIGKILL mid-stream must lose at most the
// in-flight (unacked) group and the rejoin still verifies the full
// causal chain.
func TestPartitionProcessKillRejoinGroupCommitOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-process restart test in -short mode")
	}
	runPartitionKillRestart(t, buildServer(t), true, nil, []string{"-wal-sync", "group"})
}

// TestPartitionProcessKillRejoinDiskStoreOverTCP runs the crash matrix
// with the disk version-store backend and a snapshot threshold small
// enough that the WAL is compacted mid-stream: after compaction the log
// holds marks only, so the restart must recover values from the segment
// files and replay just the WAL suffix — the segments-as-authority
// contract, proven over TCP.
func TestPartitionProcessKillRejoinDiskStoreOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-process restart test in -short mode")
	}
	runPartitionKillRestart(t, buildServer(t), true, nil,
		[]string{"-store", "disk", "-snapshot-threshold", "4096"})
}

// TestPartitionProcessKillNoDataDirWedges is the same crash without a
// data dir: the stream must wedge loudly — the receiver process exits
// nonzero with a diagnostic instead of reporting a clean verdict.
func TestPartitionProcessKillNoDataDirWedges(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-process restart test in -short mode")
	}
	runPartitionKillRestart(t, buildServer(t), false, nil, nil)
}

// aggTreeProcs launches a two-datacenter deployment whose dc0 runs the
// §5 propagation tree multi-process: a partitions+receiver process (the
// writer), two single-endpoint aggregator processes, and a eunomia
// process; dc1 is an all-role watcher. dc0's metadata path is therefore
// partitions → 2 aggregators → Eunomia over real TCP, and the watcher
// proves the causal chain end to end.
type aggTreeProcs struct {
	parts, aggA, aggB, eu, watcher *proc
}

func startAggTree(t *testing.T, bin string, partitions, pairs, pauseMs int) aggTreeProcs {
	t.Helper()
	partsAddr, aggAAddr, aggBAddr, euAddr, dc1Addr := freePort(t), freePort(t), freePort(t), freePort(t), freePort(t)
	common := []string{
		"-mode", "eunomia", "-dcs", "2", "-partitions", strconv.Itoa(partitions),
		"-replicas", "1", "-agg-fanin", "2", "-batch-interval", "5ms",
	}
	var pr aggTreeProcs
	pr.parts = startProc(t, bin, append([]string{
		"-role", "partitions,receiver", "-dc", "0", "-listen", partsAddr,
		"-route", "dc0:aggregator0=" + aggAAddr,
		"-route", "dc0:aggregator1=" + aggBAddr,
		"-route", "dc1=" + dc1Addr,
		"-stats-interval", "1h",
		"-demo", fmt.Sprintf("write:%d:%d", pairs, pauseMs),
	}, common...)...)
	pr.aggA = startProc(t, bin, append([]string{
		"-role", "aggregator", "-agg-index", "0", "-dc", "0", "-listen", aggAAddr,
		"-route", "dc0:eunomia=" + euAddr,
		"-stats-interval", "50ms",
	}, common...)...)
	pr.aggB = startProc(t, bin, append([]string{
		"-role", "aggregator", "-agg-index", "1", "-dc", "0", "-listen", aggBAddr,
		"-route", "dc0:eunomia=" + euAddr,
		"-stats-interval", "50ms",
	}, common...)...)
	pr.eu = startProc(t, bin, append([]string{
		"-role", "eunomia", "-dc", "0", "-listen", euAddr,
		"-route", "dc1=" + dc1Addr,
		"-stats-interval", "1h",
	}, common...)...)
	pr.watcher = startProc(t, bin, append([]string{
		"-role", "dc", "-dc", "1", "-listen", dc1Addr,
		"-route", "dc0:partitions=" + partsAddr,
		"-route", "dc0:receiver=" + partsAddr,
		"-stats-interval", "1h",
		"-demo", fmt.Sprintf("watch:%d", pairs),
	}, common...)...)
	return pr
}

func (pr aggTreeProcs) all() []*proc {
	return []*proc{pr.parts, pr.aggA, pr.aggB, pr.eu, pr.watcher}
}

func (pr aggTreeProcs) dump() string {
	var sb strings.Builder
	for i, p := range pr.all() {
		fmt.Fprintf(&sb, "--- process %d ---\n%s\n", i, p.output())
	}
	return sb.String()
}

func (pr aggTreeProcs) killAll() {
	for _, p := range pr.all() {
		p.kill()
	}
}

// awaitWatcher waits for the watcher process to confirm the causal chain.
func awaitWatcher(t *testing.T, pr aggTreeProcs, pairs int) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- pr.watcher.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("watcher failed: %v\n%s", err, pr.dump())
		}
	case <-time.After(150 * time.Second):
		_ = pr.watcher.cmd.Process.Kill()
		<-done
		t.Fatalf("watcher did not finish\n%s", pr.dump())
	}
	if !strings.Contains(pr.watcher.output(), fmt.Sprintf("causal chain OK (%d pairs)", pairs)) {
		t.Fatalf("watcher did not confirm causal order:\n%s", pr.dump())
	}
}

var aggOutRe = regexp.MustCompile(`agg in=(\d+) out=(\d+)`)

// aggForwarded parses an aggregator process's newest stats line.
func aggForwarded(p *proc) int {
	m := aggOutRe.FindAllStringSubmatch(p.output(), -1)
	if len(m) == 0 {
		return 0
	}
	n, _ := strconv.Atoi(m[len(m)-1][2])
	return n
}

// TestAggregatorTreeDatacenterOverTCP is the wide-datacenter acceptance
// check: a 128-partition dc0 runs multi-process as partitions → two
// aggregator processes → Eunomia over real TCP, replicates a causally
// chained workload to dc1, and both aggregators actually carry merged
// frames (no hidden flat path).
func TestAggregatorTreeDatacenterOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-process demo in -short mode")
	}
	pr := startAggTree(t, buildServer(t), 128, 12, 0)
	defer pr.killAll()
	awaitWatcher(t, pr, 12)
	// Both aggregators must have merged and forwarded frames (no hidden
	// flat path). Their stats lines print on a 50ms cadence, so give the
	// counters a moment to surface.
	deadline := time.Now().Add(10 * time.Second)
	for aggForwarded(pr.aggA) == 0 || aggForwarded(pr.aggB) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("an aggregator forwarded nothing — the tree was bypassed\n%s", pr.dump())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestAggregatorKillFailoverOverTCP kills one aggregator process
// mid-stream: every partition dual-homes at the fan-in pair, so the
// surviving path must carry the rest of the stream with no gap or
// duplicate at Eunomia — the watcher's causal-order verdict is exactly
// that prefix property, end to end.
func TestAggregatorKillFailoverOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-process restart test in -short mode")
	}
	pairs := 150
	pr := startAggTree(t, buildServer(t), 16, pairs, 5)
	defer pr.killAll()

	// Kill aggregator A once it has demonstrably merged and forwarded
	// part of the stream, while most of the stream is still unwritten
	// (the writer paces at ~5ms/pair).
	deadline := time.Now().Add(60 * time.Second)
	for aggForwarded(pr.aggA) < 20 {
		if time.Now().After(deadline) {
			t.Fatalf("aggregator A never forwarded 20 frames\n%s", pr.dump())
		}
		time.Sleep(10 * time.Millisecond)
	}
	pr.aggA.kill() // SIGKILL: no flush, no goodbye
	awaitWatcher(t, pr, pairs)
}

// TestRejectsContradictoryFlags pins the CLI's fail-fast validation: a
// misconfigured process must die with a one-line diagnostic instead of
// silently ignoring topology flags or booting half a deployment.
func TestRejectsContradictoryFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping process test in -short mode")
	}
	bin := buildServer(t)
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"aggregator-role-needs-fanin",
			[]string{"-mode", "eunomia", "-role", "aggregator"},
			"needs -agg-fanin"},
		{"fanin-needs-eunomia",
			[]string{"-mode", "sequencer", "-role", "dc", "-agg-fanin", "2"},
			"-agg-fanin is supported only by -mode eunomia"},
		{"fanin-contradicts-orderer",
			[]string{"-mode", "eunomia", "-role", "orderer", "-agg-fanin", "2"},
			"-agg-fanin contradicts -role orderer"},
		{"agg-flags-need-aggregator-role",
			[]string{"-mode", "eunomia", "-role", "dc", "-agg-parent", "aggregator2"},
			"apply only to -mode eunomia -role aggregator"},
		{"bad-agg-index",
			[]string{"-mode", "eunomia", "-role", "aggregator", "-agg-fanin", "2", "-agg-index", "zero"},
			"bad -agg-index"},
		{"duplicate-agg-index",
			[]string{"-mode", "eunomia", "-role", "aggregator", "-agg-fanin", "2", "-agg-index", "0,0"},
			"listed twice"},
		{"bad-agg-parent",
			[]string{"-mode", "eunomia", "-role", "aggregator", "-agg-fanin", "2", "-agg-parent", "orderer3"},
			"bad -agg-parent"},
		{"mixed-agg-parents",
			[]string{"-mode", "eunomia", "-role", "aggregator", "-agg-fanin", "2", "-agg-parent", "aggregator2,eunomia0"},
			"different acknowledgement semantics"},
		{"aseq-needs-sequencer",
			[]string{"-mode", "eunomia", "-role", "dc", "-aseq"},
			"-aseq is supported only by -mode sequencer"},
		{"tree-needs-eunomia",
			[]string{"-mode", "globalstab", "-role", "dc", "-tree", "avl"},
			"-tree is supported only by -mode eunomia"},
		{"unknown-role",
			[]string{"-mode", "eunomia", "-role", "bogus"},
			"unknown role"},
		{"frontend-addr-needs-eunomia",
			[]string{"-mode", "sequencer", "-role", "dc", "-frontend-addr", "127.0.0.1:0"},
			"-frontend-addr is supported only by -mode eunomia"},
		{"frontend-addr-needs-frontend-role",
			[]string{"-mode", "eunomia", "-role", "receiver", "-frontend-addr", "127.0.0.1:0"},
			"needs a role that includes frontend"},
		{"frontend-flags-need-addr",
			[]string{"-mode", "eunomia", "-role", "dc", "-frontend-index", "1"},
			"apply only with -frontend-addr"},
		{"session-needs-eunomia",
			[]string{"-mode", "eventual", "-role", "dc", "-session", "scalar"},
			"-session is supported only by -mode eunomia"},
		{"unknown-session",
			[]string{"-mode", "eunomia", "-role", "dc", "-session", "bogus"},
			"unknown -session"},
		{"unknown-mode",
			[]string{"-mode", "bogus", "-role", "dc"},
			"unknown -mode"},
		{"unknown-compress",
			[]string{"-mode", "eunomia", "-role", "dc", "-compress", "lz4"},
			"unknown scheme"},
		{"compress-contradicts-gob",
			[]string{"-mode", "eunomia", "-role", "dc", "-codec", "gob", "-compress", "zstd"},
			"contradicts -codec gob"},
		{"wan-seed-needs-wan",
			[]string{"-mode", "eunomia", "-role", "dc", "-wan-seed", "7"},
			"-wan-seed applies only with -wan"},
		{"bad-wan-spec",
			[]string{"-mode", "eunomia", "-role", "dc", "-wan", "dc0-dc1:fast"},
			"link spec"},
		{"unknown-store",
			[]string{"-mode", "eunomia", "-role", "dc", "-store", "rocksdb"},
			"unknown -store"},
		{"disk-store-needs-data-dir",
			[]string{"-mode", "eunomia", "-role", "dc", "-store", "disk"},
			"-store disk requires -mode eunomia and -data-dir"},
		{"store-budget-needs-disk-store",
			[]string{"-mode", "eunomia", "-role", "dc", "-store-budget", "1048576"},
			"-store-budget applies only to -store disk"},
		{"snapshot-threshold-needs-data-dir",
			[]string{"-mode", "eunomia", "-role", "dc", "-snapshot-threshold", "1024"},
			"-snapshot-threshold requires -mode eunomia and -data-dir"},
		{"snapshot-threshold-must-be-positive",
			[]string{"-mode", "eunomia", "-role", "dc", "-data-dir", "/tmp/unused", "-snapshot-threshold", "0"},
			"-snapshot-threshold must be positive"},
		{"bootstrap-needs-eunomia",
			[]string{"-mode", "eventual", "-role", "dc", "-dcs", "2", "-bootstrap-from", "1"},
			"-bootstrap-from is supported only by -mode eunomia"},
		{"bootstrap-bad-donor-id",
			[]string{"-mode", "eunomia", "-role", "dc", "-dcs", "2", "-bootstrap-from", "5"},
			"want datacenter ids in [0,2)"},
		{"bootstrap-from-self",
			[]string{"-mode", "eunomia", "-role", "dc", "-dc", "0", "-dcs", "2", "-bootstrap-from", "0"},
			"cannot bootstrap from itself"},
		{"bootstrap-needs-partitions-role",
			[]string{"-mode", "eunomia", "-role", "receiver", "-dc", "0", "-dcs", "2", "-bootstrap-from", "1"},
			"needs a role that includes partitions"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cmd := exec.Command(bin, append([]string{"-listen", "127.0.0.1:0"}, tc.args...)...)
			out, err := cmd.CombinedOutput()
			exit, ok := err.(*exec.ExitError)
			if !ok || exit.ExitCode() == 0 {
				t.Fatalf("process exited %v, want nonzero\n%s", err, out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Fatalf("diagnostic missing %q:\n%s", tc.want, out)
			}
		})
	}
}

// TestMetricsEndpoint boots a single-datacenter process with
// -metrics-addr and checks the Prometheus text endpoint exposes fabric
// and node samples.
func TestMetricsEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping process test in -short mode")
	}
	bin := buildServer(t)
	addr, maddr := freePort(t), freePort(t)
	p := startProc(t, bin,
		"-mode", "eunomia", "-role", "dc", "-dc", "0", "-dcs", "1",
		"-partitions", "2", "-agg-fanin", "1", "-listen", addr, "-metrics-addr", maddr,
		"-compress", "snappy", "-stats-interval", "1h")
	defer p.kill()

	body := scrapeMetrics(t, p, maddr)
	for _, want := range []string{
		"eunomia_fabric_sent_total", "eunomia_local_updates_total", "eunomia_release_wedged 0",
		// Compression byte accounting: pre/post totals per direction and
		// the endpoint's ratio summary under its dialing scheme.
		`eunomia_transport_bytes_pre_compress_total{dir="tx"}`,
		`eunomia_transport_bytes_post_compress_total{dir="tx"}`,
		`eunomia_transport_bytes_pre_compress_total{dir="rx"}`,
		`eunomia_transport_bytes_post_compress_total{dir="rx"}`,
		`eunomia_transport_compress_ratio{scheme="snappy"}`,
		// Codec latency histograms: cumulative buckets, sum, count, codec label.
		`eunomia_codec_encode_seconds_bucket{codec="wire",le="+Inf"}`,
		`eunomia_codec_decode_seconds_count{codec="wire"}`,
		`eunomia_frame_flush_seconds_sum{codec="wire"}`,
		// Propagation-tree fan-in counters and flush histogram, labeled
		// by endpoint and tree level (-agg-fanin 1 hosts aggregator0).
		`eunomia_aggregator_batches_in_total{endpoint="aggregator0",level="1"}`,
		`eunomia_aggregator_batches_out_total{endpoint="aggregator0",level="1"}`,
		`eunomia_aggregator_flush_seconds_bucket{endpoint="aggregator0",level="1",le="+Inf"}`,
		`eunomia_aggregator_flush_seconds_count{endpoint="aggregator0",level="1"}`,
		// Front door: the dc role hosts a frontend, so its client-facing
		// series export even before any client connects.
		`eunomia_frontend_ops_total{op="get"}`,
		`eunomia_frontend_ops_total{op="put"}`,
		"eunomia_frontend_waits_total",
		"eunomia_frontend_wait_timeouts_total",
		// The version store: live bytes labeled by backend, and the
		// snapshot-shipping counters (zero here — no -bootstrap-from).
		`eunomia_store_bytes{backend="mem"}`,
		"eunomia_snapshot_ship_bytes_total",
		"eunomia_snapshot_ship_chunks_total",
		"eunomia_snapshot_ship_seconds_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, body)
		}
	}
}

// scrapeMetrics polls the process's Prometheus endpoint until it serves.
func scrapeMetrics(t *testing.T, p *proc, maddr string) string {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		resp, err := http.Get("http://" + maddr + "/metrics")
		if err == nil {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			return string(b)
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics endpoint never came up: %v\n%s", err, p.output())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestMetricsEndpointWALGroupCommit boots a durable split-role dc0
// under -wal-sync group and checks each process exports the WAL
// durability series for the components it hosts: the fsync latency
// histogram and the group-commit commit/record counters, labeled by
// the store's component (partition + applier on the partition-role
// process, receiver on the receiver process).
func TestMetricsEndpointWALGroupCommit(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping process test in -short mode")
	}
	bin := buildServer(t)
	partsAddr, recvAddr, originAddr := freePort(t), freePort(t), freePort(t)
	partsMetrics, recvMetrics := freePort(t), freePort(t)
	dir := t.TempDir()
	common := []string{"-mode", "eunomia", "-dcs", "2", "-partitions", "2",
		"-replicas", "1", "-stats-interval", "1h",
		"-data-dir", dir, "-wal-sync", "group"}

	parts := startProc(t, bin, append([]string{
		"-role", "partitions,eunomia", "-dc", "0", "-listen", partsAddr,
		"-route", "dc0:receiver=" + recvAddr,
		"-route", "dc1=" + originAddr,
		"-metrics-addr", partsMetrics,
	}, common...)...)
	defer parts.kill()
	recv := startProc(t, bin, append([]string{
		"-role", "receiver", "-dc", "0", "-listen", recvAddr,
		"-route", "dc0:partitions=" + partsAddr,
		"-route", "dc1=" + originAddr,
		"-metrics-addr", recvMetrics,
	}, common...)...)
	defer recv.kill()

	body := scrapeMetrics(t, parts, partsMetrics)
	for _, want := range []string{
		`eunomia_wal_group_commits_total{component="partition"}`,
		`eunomia_wal_group_records_total{component="partition"}`,
		`eunomia_wal_fsync_seconds_bucket{component="partition",le="+Inf"}`,
		`eunomia_wal_fsync_seconds_count{component="applier"}`,
		`eunomia_wal_group_commits_total{component="applier"}`,
		`eunomia_wal_compact_errors_total{component="partition"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("partition-process metrics missing %q:\n%s", want, body)
		}
	}
	body = scrapeMetrics(t, recv, recvMetrics)
	for _, want := range []string{
		`eunomia_wal_group_commits_total{component="receiver"}`,
		`eunomia_wal_group_records_total{component="receiver"}`,
		`eunomia_wal_fsync_seconds_count{component="receiver"}`,
		`eunomia_wal_compact_errors_total{component="receiver"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("receiver-process metrics missing %q:\n%s", want, body)
		}
	}
}
