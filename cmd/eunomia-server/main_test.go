package main

import (
	"bytes"
	"fmt"
	"net"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// freePort reserves a loopback port and returns "127.0.0.1:port". The
// listener is closed before use; the tiny reuse race is acceptable for a
// test.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return addr
}

// TestTwoProcessDatacenterOverTCP is the end-to-end acceptance check for
// the CLI: it builds the server binary, launches a two-process EunomiaKV
// datacenter over TCP — one process per datacenter, each hosting every
// role — drives a causally chained workload in the writer process, and
// has the watcher process verify causally ordered visibility before
// exiting.
func TestTwoProcessDatacenterOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-process demo in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "eunomia-server")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	addr0, addr1 := freePort(t), freePort(t)
	common := []string{"-dcs", "2", "-partitions", "2", "-replicas", "1", "-stats-interval", "1h"}

	writer := exec.Command(bin, append([]string{
		"-role", "dc", "-dc", "0", "-listen", addr0,
		"-route", "dc1=" + addr1,
		"-demo", "write:12",
	}, common...)...)
	var writerOut bytes.Buffer
	writer.Stdout = &writerOut
	writer.Stderr = &writerOut
	if err := writer.Start(); err != nil {
		t.Fatal(err)
	}
	var stopOnce sync.Once
	// The exec pipe goroutine writes into writerOut until the process
	// exits; always stop the writer before reading its buffer.
	stopWriter := func() {
		stopOnce.Do(func() {
			_ = writer.Process.Kill()
			_ = writer.Wait()
		})
	}
	defer stopWriter()

	watcher := exec.Command(bin, append([]string{
		"-role", "dc", "-dc", "1", "-listen", addr1,
		"-route", "dc0=" + addr0,
		"-demo", "watch:12",
	}, common...)...)
	var watcherOut bytes.Buffer
	watcher.Stdout = &watcherOut
	watcher.Stderr = &watcherOut
	if err := watcher.Start(); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- watcher.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			stopWriter()
			t.Fatalf("watcher failed: %v\nwatcher output:\n%s\nwriter output:\n%s",
				err, watcherOut.String(), writerOut.String())
		}
	case <-time.After(150 * time.Second):
		_ = watcher.Process.Kill()
		<-done
		stopWriter()
		t.Fatalf("watcher did not finish\nwatcher output:\n%s\nwriter output:\n%s",
			watcherOut.String(), writerOut.String())
	}
	stopWriter()
	if !strings.Contains(watcherOut.String(), "causal chain OK (12 pairs)") {
		t.Fatalf("watcher did not confirm causal order:\n%s", watcherOut.String())
	}
	if !strings.Contains(writerOut.String(), fmt.Sprintf("wrote %d causal data/flag pairs", 12)) {
		t.Fatalf("writer did not confirm workload:\n%s", writerOut.String())
	}
}
