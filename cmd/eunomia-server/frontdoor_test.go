package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"strings"
	"testing"
	"time"
)

// waitHealthy polls a front door's /healthz until it serves.
func waitHealthy(t *testing.T, p *proc, addr string) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("front door %s never came up: %v\n%s", addr, err, p.output())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// frontPut writes via a front door and returns the advanced session token.
func frontPut(t *testing.T, hc *http.Client, addr, key, value, token string) string {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, "http://"+addr+"/kv/"+key, strings.NewReader(value))
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set(sessionHeader, token)
	}
	resp, err := hc.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT %s via %s: %s: %s", key, addr, resp.Status, body)
	}
	next := resp.Header.Get(sessionHeader)
	if next == "" {
		t.Fatalf("PUT %s via %s returned no session token", key, addr)
	}
	return next
}

// frontGet reads via a front door; the session token makes it a
// read-your-writes read regardless of which datacenter addr lives in.
func frontGet(t *testing.T, hc *http.Client, addr, key, token string) (string, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, "http://"+addr+"/kv/"+key, nil)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set(sessionHeader, token)
	}
	resp, err := hc.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s via %s: %s: %s", key, addr, resp.Status, body)
	}
	return string(body), resp.Header.Get(sessionHeader)
}

// TestFrontdoorSessionMigrationOverTCP is the §4 migration guarantee at
// the HTTP surface, end to end over real TCP: a client writes through
// dc0's front door, carries its X-Causal-Session token to dc1's front
// door, and must read its own write there (the read blocks until dc1 has
// applied the session's causal history) — then migrates back, repeatedly.
func TestFrontdoorSessionMigrationOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-process front-door test in -short mode")
	}
	bin := buildServer(t)
	addr0, addr1 := freePort(t), freePort(t)
	fd0, fd1 := freePort(t), freePort(t)
	common := []string{"-mode", "eunomia", "-dcs", "2", "-partitions", "2",
		"-replicas", "1", "-stats-interval", "1h"}

	p0 := startProc(t, bin, append([]string{
		"-role", "dc", "-dc", "0", "-listen", addr0,
		"-route", "dc1=" + addr1,
		"-frontend-addr", fd0,
	}, common...)...)
	defer p0.kill()
	p1 := startProc(t, bin, append([]string{
		"-role", "dc", "-dc", "1", "-listen", addr1,
		"-route", "dc0=" + addr0,
		"-frontend-addr", fd1,
	}, common...)...)
	defer p1.kill()
	waitHealthy(t, p0, fd0)
	waitHealthy(t, p1, fd1)

	hc := &http.Client{Timeout: 60 * time.Second}
	token := ""
	for i := 0; i < 20; i++ {
		// Write at dc0, migrate to dc1, read your write.
		want := fmt.Sprintf("value%d", i)
		token = frontPut(t, hc, fd0, "session-key", want, token)
		got, next := frontGet(t, hc, fd1, "session-key", token)
		if got != want {
			t.Fatalf("iteration %d: dc1 front door served %q for the session that wrote %q\ndc0:\n%s\ndc1:\n%s",
				i, got, want, p0.output(), p1.output())
		}
		token = next
		// Migrate back: write at dc1, read your write at dc0.
		want = fmt.Sprintf("reply%d", i)
		token = frontPut(t, hc, fd1, "session-key", want, token)
		got, next = frontGet(t, hc, fd0, "session-key", token)
		if got != want {
			t.Fatalf("iteration %d: dc0 front door served %q for the session that wrote %q at dc1",
				i, got, want)
		}
		token = next
	}
	if !strings.HasPrefix(token, "cs1:v:") {
		t.Fatalf("session token %q does not carry vector metadata", token)
	}

	// A malformed token is the client's fault: 400, not a hung wait.
	req, _ := http.NewRequest(http.MethodGet, "http://"+fd0+"/kv/session-key", nil)
	req.Header.Set(sessionHeader, "cs1:v:not-hex")
	resp, err := hc.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed token got %s, want 400", resp.Status)
	}
}

// TestOperationsDocCoversEveryFlag lints OPERATIONS.md against the
// binary's actual flag set: every -flag the server accepts must be
// documented, so the flag reference cannot silently rot as flags land.
func TestOperationsDocCoversEveryFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping process test in -short mode")
	}
	out, err := exec.Command(buildServer(t), "-help").CombinedOutput()
	if _, ok := err.(*exec.ExitError); err != nil && !ok {
		t.Fatal(err)
	}
	flagRe := regexp.MustCompile(`(?m)^  -([a-z][a-z0-9-]*)\b`)
	matches := flagRe.FindAllStringSubmatch(string(out), -1)
	if len(matches) < 20 {
		t.Fatalf("parsed only %d flags from -help; output:\n%s", len(matches), out)
	}
	doc, err := os.ReadFile("../../OPERATIONS.md")
	if err != nil {
		t.Fatalf("reading OPERATIONS.md: %v", err)
	}
	var missing []string
	for _, m := range matches {
		if !strings.Contains(string(doc), "`-"+m[1]+"`") {
			missing = append(missing, "-"+m[1])
		}
	}
	if len(missing) > 0 {
		t.Fatalf("OPERATIONS.md does not document: %s (every eunomia-server flag needs a `-flag` entry)",
			strings.Join(missing, ", "))
	}
}
