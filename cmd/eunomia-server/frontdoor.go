package main

// The HTTP front door: the client-facing surface of a frontend-bearing
// eunomia process. It is a thin shim — every causal decision (token
// parsing, visibility waits, routing to the owning partition) lives in
// geostore.Frontend; this file only maps HTTP onto it.
//
//	GET  /kv/{key}   read; 200 body = value, 404 = no visible version
//	PUT  /kv/{key}   write; body = value, 204 on durably acked
//	GET  /healthz    liveness
//
// Causality rides in the X-Causal-Session header: every response carries
// the client's updated session token, and the client sends it back on its
// next request — from any frontend of any datacenter. Omitting it starts
// a fresh session (no prior reads or writes to respect). Error mapping:
//
//	400  malformed token (or empty key)
//	404  key has no visible version (token still advances)
//	503  visibility wait timed out — the destination DC has not yet
//	     applied the session's causal history; retry (Retry-After: 1)
//	504  the fabric round trip to the partition/receiver timed out

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"eunomia/internal/geostore"
	"eunomia/internal/types"
)

// frontdoorConfig bundles the front-door flags handed to hostEunomia.
type frontdoorConfig struct {
	index  int
	wait   time.Duration
	scalar bool
}

// sessionHeader carries the causal session token both ways.
const sessionHeader = "X-Causal-Session"

// maxValueBytes bounds a PUT body; the paper's workloads use ~100-byte
// values, and the fabric frames whole values, so keep requests sane.
const maxValueBytes = 1 << 20

// serveFrontdoor binds the front-door listener synchronously (a bad
// address fails startup) and serves for the process lifetime. health,
// when non-nil, gates /healthz: a sticky WAL sync error or a wedged
// release stream turns it into a 503 so load balancers drain this front
// door while the process stays up for inspection.
func serveFrontdoor(addr string, fe *geostore.Frontend, health func() error) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("frontend listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/kv/", func(w http.ResponseWriter, r *http.Request) { handleKV(fe, w, r) })
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if health != nil {
			if err := health(); err != nil {
				http.Error(w, "not ready: "+err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})
	log.Printf("eunomia-server: causal front door on http://%s/kv/", ln.Addr())
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			log.Printf("frontend server: %v", err)
		}
	}()
	return nil
}

func handleKV(fe *geostore.Frontend, w http.ResponseWriter, r *http.Request) {
	key := strings.TrimPrefix(r.URL.Path, "/kv/")
	if key == "" || strings.Contains(key, "/") {
		http.Error(w, "want /kv/{key} with a non-empty, slash-free key", http.StatusBadRequest)
		return
	}
	token := r.Header.Get(sessionHeader)
	switch r.Method {
	case http.MethodGet:
		res, err := fe.Get(token, types.Key(key))
		if err != nil {
			writeFrontendError(w, err)
			return
		}
		w.Header().Set(sessionHeader, res.Token)
		if !res.Found {
			http.Error(w, "no visible version", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(res.Value)
	case http.MethodPut, http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, maxValueBytes+1))
		if err != nil {
			http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
			return
		}
		if len(body) > maxValueBytes {
			http.Error(w, fmt.Sprintf("value exceeds %d bytes", maxValueBytes), http.StatusRequestEntityTooLarge)
			return
		}
		res, err := fe.Put(token, types.Key(key), body)
		if err != nil {
			writeFrontendError(w, err)
			return
		}
		w.Header().Set(sessionHeader, res.Token)
		w.WriteHeader(http.StatusNoContent)
	default:
		w.Header().Set("Allow", "GET, PUT, POST")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// writeFrontendError maps frontend sentinels onto status codes that tell
// the client whose fault it is and whether to retry.
func writeFrontendError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, geostore.ErrBadToken):
		http.Error(w, err.Error(), http.StatusBadRequest)
	case errors.Is(err, geostore.ErrVisibilityTimeout):
		// The migration guarantee is holding the read back, not a dead
		// component: the DC will catch up, so tell the client to retry.
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, geostore.ErrFrontendClosed):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
	}
}
