package main

// Process-level fault tests: SIGSTOP freezes (alive but silent — the
// failure mode SIGKILL tests cannot cover, since a frozen process holds
// its sockets and its state), SIGCONT resumes with nothing lost or
// duplicated, and the -faults schedule runner drives the same machinery
// from a parsed DSL string.

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// stopTestCluster boots the split-dc0 topology the process-fault tests
// share: partitions+eunomia+frontend at dc0 (stats every 50ms, so
// lastApplied tracks progress), a separate dc0 receiver, and a dc1 writer
// issuing a long-lived causal stream.
func stopTestCluster(t *testing.T, bin string, pairs int, partsExtra ...string) (parts, recv, writer *proc, frontAddr string) {
	t.Helper()
	partsAddr, recvAddr, originAddr := freePort(t), freePort(t), freePort(t)
	frontAddr = freePort(t)
	common := []string{"-mode", "eunomia", "-dcs", "2", "-partitions", "2", "-replicas", "1"}

	parts = startProc(t, bin, append(append([]string{
		"-role", "partitions,eunomia,frontend", "-dc", "0", "-listen", partsAddr,
		"-route", "dc0:receiver=" + recvAddr,
		"-route", "dc1=" + originAddr,
		"-stats-interval", "50ms",
		"-frontend-addr", frontAddr,
	}, common...), partsExtra...)...)
	t.Cleanup(parts.kill)

	recv = startProc(t, bin, append([]string{
		"-role", "receiver", "-dc", "0", "-listen", recvAddr,
		"-route", "dc0:partitions=" + partsAddr,
		"-route", "dc1=" + originAddr,
		"-stats-interval", "1h",
	}, common...)...)
	t.Cleanup(recv.kill)

	writer = startProc(t, bin, append([]string{
		"-role", "dc", "-dc", "1", "-listen", originAddr,
		"-route", "dc0:partitions=" + partsAddr,
		"-route", "dc0:receiver=" + recvAddr,
		"-stats-interval", "1h",
		"-demo", fmt.Sprintf("write:%d:2", pairs), // ~2ms/pair: a long-lived stream
	}, common...)...)
	t.Cleanup(writer.kill)
	return parts, recv, writer, frontAddr
}

// httpGet fetches a front-door URL, returning status and body ("" on
// connection errors, status 0).
func httpGet(url string) (int, string) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, ""
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

// TestPartitionProcessStopResumesOverTCP freezes the partition-role
// process with SIGSTOP mid-stream: unlike a SIGKILL, the process stays
// alive (holding its TCP connections and all in-memory state), so the
// stream must simply stall — no wedge diagnosis, no loss — and a SIGCONT
// must let the same incarnation drain the backlog to an exactly-once,
// causally complete result with no restart or recovery involved.
func TestPartitionProcessStopResumesOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process deployments are slow")
	}
	const pairs = 150
	parts, recv, writer, frontAddr := stopTestCluster(t, buildServer(t), pairs)

	// Freeze mid-stream: after some applies, long before the stream ends.
	deadline := time.Now().Add(60 * time.Second)
	for parts.lastApplied() < 40 {
		if time.Now().After(deadline) {
			t.Fatalf("partition process never applied 40 updates\nparts:\n%s\nwriter:\n%s",
				parts.output(), writer.output())
		}
		time.Sleep(10 * time.Millisecond)
	}
	pid := parts.cmd.Process.Pid
	if err := syscall.Kill(pid, syscall.SIGSTOP); err != nil {
		t.Fatal(err)
	}

	// Alive but frozen: the process still exists (signal 0 reaches it)
	// and its applied counter stops advancing while the writer keeps
	// issuing traffic against the frozen datacenter.
	frozen := parts.lastApplied()
	time.Sleep(1 * time.Second)
	if err := syscall.Kill(pid, 0); err != nil {
		t.Fatalf("frozen process vanished (SIGSTOP behaved like a kill): %v", err)
	}
	if got := parts.lastApplied(); got != frozen {
		t.Fatalf("frozen process kept applying: %d -> %d", frozen, got)
	}
	// A frozen peer must stall the stream, not wedge it: the receiver's
	// wedge watchdog fires only on an unrecoverable stream, and this one
	// resumes the moment the process thaws.
	if out := recv.output(); strings.Contains(out, "release stream wedged") {
		t.Fatalf("receiver declared a wedge for a frozen (not dead) peer:\n%s", out)
	}

	if err := syscall.Kill(pid, syscall.SIGCONT); err != nil {
		t.Fatal(err)
	}

	// Thawed: the same incarnation drains the backlog. No loss — every
	// one of the writer's 2*pairs updates applies at dc0...
	want := 2 * pairs
	deadline = time.Now().Add(120 * time.Second)
	for parts.lastApplied() < want {
		if time.Now().After(deadline) {
			t.Fatalf("stream never drained after SIGCONT: applied %d, want %d\nparts:\n%s\nrecv:\n%s\nwriter:\n%s",
				parts.lastApplied(), want, parts.output(), recv.output(), writer.output())
		}
		time.Sleep(20 * time.Millisecond)
	}
	// ...and no duplicates — the counter settles at exactly 2*pairs (the
	// stop/cont cycle forced retransmissions; each must be absorbed once).
	time.Sleep(1 * time.Second)
	if got := parts.lastApplied(); got != want {
		t.Fatalf("applied %d remote updates, want exactly %d (retransmitted duplicates leaked)", got, want)
	}
	// Causal completeness through the front door: every pair is visible
	// with its written value.
	for i := 0; i < pairs; i++ {
		if code, body := httpGet(fmt.Sprintf("http://%s/kv/flag%d", frontAddr, i)); code != 200 || body != "set" {
			t.Fatalf("flag%d = %d %q after drain", i, code, body)
		}
		if code, body := httpGet(fmt.Sprintf("http://%s/kv/data%d", frontAddr, i)); code != 200 || body != fmt.Sprintf("payload%d", i) {
			t.Fatalf("data%d = %d %q after drain", i, code, body)
		}
	}
	if strings.Contains(recv.output(), "release stream wedged") {
		t.Fatalf("stream wedged across a stop/cont cycle:\n%s", recv.output())
	}
}

// TestFrontdoorHealthzNotReadyOnSyncError arms an injected fsync error
// (the -faults DSL's synthetic full disk) against the partition
// component's WAL: the first group commit makes the sync error sticky,
// the eunomia_wal_sync_errors_total counter advances, and the front
// door's /healthz flips to 503 so a load balancer drains the node —
// while the process itself stays up for inspection.
func TestFrontdoorHealthzNotReadyOnSyncError(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process deployments are slow")
	}
	metricsAddr := freePort(t)
	dir := t.TempDir()
	parts, _, _, frontAddr := stopTestCluster(t, buildServer(t), 150,
		"-data-dir", dir, "-wal-sync", "group",
		"-metrics-addr", metricsAddr,
		"-faults", "t=0s:fsync-err partition@dc0")

	// Healthy first: the fault arms at readiness, but the sync error only
	// turns sticky when a group commit actually fsyncs.
	waitDeadline := time.Now().Add(30 * time.Second)
	for {
		code, body := httpGet("http://" + frontAddr + "/healthz")
		if code == 503 && strings.Contains(body, "not ready") {
			break
		}
		if time.Now().After(waitDeadline) {
			t.Fatalf("healthz never went not-ready on a sticky sync error (last: %d %q)\nparts:\n%s",
				code, body, parts.output())
		}
		time.Sleep(20 * time.Millisecond)
	}
	// The process wears the failure, it doesn't die of it.
	if err := syscall.Kill(parts.cmd.Process.Pid, 0); err != nil {
		t.Fatalf("process died of an injected fsync error: %v\n%s", err, parts.output())
	}
	// The metric names the failed component.
	code, body := httpGet("http://" + metricsAddr + "/metrics")
	if code != 200 {
		t.Fatalf("metrics endpoint: %d", code)
	}
	// Each partition store syncs independently, so the component counter
	// lands at ≥1 depending on how many group commits raced the arming.
	countRe := regexp.MustCompile(`eunomia_wal_sync_errors_total\{component="partition"\} ([1-9]\d*)`)
	if !countRe.MatchString(body) {
		t.Fatalf("metrics missing a nonzero partition sync-error count:\n%s", grepLines(body, "sync_errors"))
	}
}

// grepLines filters s to lines containing substr (test-failure output).
func grepLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestFaultsScheduleCrashDirective drives the -faults runner end to end:
// a parsed schedule whose crash event targets this process must fail-stop
// it (SIGKILL — no cleanup, no exit handler) at the scheduled offset.
func TestFaultsScheduleCrashDirective(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process deployments are slow")
	}
	bin := buildServer(t)
	p := startProc(t, bin,
		"-mode", "eunomia", "-role", "dc", "-dc", "0", "-dcs", "1",
		"-partitions", "2", "-listen", freePort(t),
		"-stats-interval", "1h",
		"-faults", "t=300ms:crash partition@dc0",
	)
	defer p.kill()

	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		status, ok := p.cmd.ProcessState.Sys().(syscall.WaitStatus)
		if !ok || !status.Signaled() || status.Signal() != syscall.SIGKILL {
			t.Fatalf("process ended with %v (state %v), want death by SIGKILL\n%s",
				err, p.cmd.ProcessState, p.output())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("scheduled crash never fired\n%s", p.output())
	}
	if !strings.Contains(p.output(), "crash partition@dc0 — fail-stop now") {
		t.Fatalf("crash directive did not announce itself:\n%s", p.output())
	}
}

// TestFaultsScheduleIgnoresOtherTargets: events addressed to another
// datacenter or an unhosted role must be no-ops for this process.
func TestFaultsScheduleIgnoresOtherTargets(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process deployments are slow")
	}
	bin := buildServer(t)
	p := startProc(t, bin,
		"-mode", "eunomia", "-role", "receiver", "-dc", "0", "-dcs", "2",
		"-partitions", "2", "-listen", freePort(t),
		"-stats-interval", "50ms",
		// Wrong DC, then wrong role: neither may touch this process.
		"-faults", "t=100ms:crash partition@dc1; t=200ms:crash partition@dc0",
	)
	defer p.kill()

	time.Sleep(2 * time.Second)
	if err := syscall.Kill(p.cmd.Process.Pid, 0); err != nil {
		t.Fatalf("process died on a fault event addressed elsewhere: %v\n%s", err, p.output())
	}
	if strings.Contains(p.output(), "fail-stop") {
		t.Fatalf("misaddressed crash event fired:\n%s", p.output())
	}
}

// TestFaultsSeedWithoutSchedule: the fail-fast contract for contradictory
// flags extends to the fault flags.
func TestFaultsSeedWithoutSchedule(t *testing.T) {
	bin := buildServer(t)
	p := startProc(t, bin, "-faults-seed", "7", "-listen", freePort(t))
	defer p.kill()
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatalf("process accepted -faults-seed without -faults:\n%s", p.output())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("process did not fail fast on -faults-seed without -faults\n%s", p.output())
	}
	if !strings.Contains(p.output(), "-faults-seed applies only with a -faults schedule") {
		t.Fatalf("missing fail-fast diagnostic:\n%s", p.output())
	}
}

// TestFaultsBadScheduleFailsFast: a malformed schedule dies at startup
// with the parser's diagnostic, before any socket serves traffic.
func TestFaultsBadScheduleFailsFast(t *testing.T) {
	bin := buildServer(t)
	p := startProc(t, bin, "-faults", "t=1s:explode everything", "-listen", freePort(t))
	defer p.kill()
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatalf("process accepted a malformed -faults schedule:\n%s", p.output())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("process did not fail fast on a malformed schedule\n%s", p.output())
	}
}
