// Command eunomia-server runs EunomiaKV components as network daemons on
// the TCP fabric (internal/transport), the way the paper's prototype ran
// its standalone C++ service inside a datacenter.
//
// A process can host any role of a datacenter, so a full multi-process
// geo-replicated deployment is launched from the CLI alone:
//
//	# the classic standalone orderer: partitions stream timestamped
//	# operations and heartbeats to it, it emits the site-stable order
//	eunomia-server -role orderer -listen :7077 -partitions 8
//
//	# a two-datacenter cluster, one process per datacenter
//	eunomia-server -role dc -dc 0 -dcs 2 -listen :7100 -route dc1=hostB:7100
//	eunomia-server -role dc -dc 1 -dcs 2 -listen :7100 -route dc0=hostA:7100
//
//	# or split a datacenter by role across processes
//	eunomia-server -role partitions,eunomia -dc 0 ... -route dc0:receiver=...
//	eunomia-server -role receiver          -dc 0 ... -route dc0:partitions=...
//
//	# add a client front door: causal get/put over HTTP, with portable
//	# session tokens (X-Causal-Session) clients can carry between DCs
//	eunomia-server -role dc -dc 0 -dcs 2 -listen :7100 -frontend-addr :8080 \
//	    -route dc1=hostB:7100
//	# or as its own process beside a split datacenter
//	eunomia-server -role frontend -dc 0 -dcs 2 -frontend-addr :8080 \
//	    -route dc0:partitions=hostA:7100 -route dc0:receiver=hostR:7100
//
//	# a wide datacenter (>64 partitions) runs the §5 propagation tree:
//	# partitions stream at a fan-in pair of aggregator processes, which
//	# merge whole partition sets into one frame per flush toward Eunomia
//	eunomia-server -role partitions,receiver -dc 0 -partitions 128 -agg-fanin 2 \
//	    -route dc0:aggregator0=hostA:7200 -route dc0:aggregator1=hostB:7200 ...
//	eunomia-server -role aggregator -dc 0 -agg-fanin 2 -agg-index 0 \
//	    -route dc0:eunomia=hostC:7300 ...
//	eunomia-server -role aggregator -dc 0 -agg-fanin 2 -agg-index 1 \
//	    -route dc0:eunomia=hostC:7300 ...
//	eunomia-server -role eunomia -dc 0 -agg-fanin 2 ...
//
// The -mode flag selects which protocol the process runs, so the paper's
// whole comparison matrix deploys multi-process over the same fabric:
//
//	eunomia   the EunomiaKV deployment (default)
//	sequencer the S-Seq baseline; -role sequencer runs the number service
//	          alone in its own process (-aseq switches to A-Seq)
//	globalstab / gentlerain  the GentleRain baseline (one process per DC)
//	cure      the Cure baseline (one process per DC)
//	eventual  the eventually consistent baseline (one process per DC)
//
// Routes name where remote endpoints live: "dcK=host:port" maps a whole
// datacenter to one process, "dcK:partitions=..." / "dcK:eunomia=..." /
// "dcK:receiver=..." / "dcK:sequencer=..." map one role of it. Exact
// routes beat wildcards; reply routes are learned from connection hellos.
//
// The -demo flag drives a built-in causal workload for end-to-end smoke
// testing of a multi-process cluster: "write:N" issues N causally chained
// data/flag pairs, "watch:N" polls until every pair is visible and exits
// non-zero if a flag is ever visible without its causally preceding data
// (for -mode eventual, which promises no order, it checks visibility
// only).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"eunomia/internal/compress"
	"eunomia/internal/eunomia"
	"eunomia/internal/eventual"
	"eunomia/internal/fabric"
	"eunomia/internal/faults"
	"eunomia/internal/geostore"
	"eunomia/internal/globalstab"
	"eunomia/internal/metrics"
	"eunomia/internal/sequencer"
	"eunomia/internal/transport"
	"eunomia/internal/types"
	"eunomia/internal/wal"
	"eunomia/internal/wan"
)

// demoClient is the operation surface the demo workload drives; every
// mode's session type implements it.
type demoClient interface {
	Update(types.Key, types.Value) error
	Read(types.Key) (types.Value, error)
}

// hosted is a running protocol node behind a mode-independent surface.
type hosted struct {
	// newClient is nil when this process hosts no partitions (e.g. a
	// standalone sequencer or receiver process).
	newClient func() demoClient
	stats     func() string
	close     func()
	// wedged, optional, reports an unrecoverable release stream; the
	// process exits nonzero with a diagnostic instead of serving (or
	// reporting a clean demo verdict over) a dead stream.
	wedged func() bool
	// metrics, optional, contributes protocol-level samples to the
	// -metrics-addr endpoint.
	metrics func() []metrics.PromSample
	// frontend, optional, is the causal front door the -frontend-addr
	// HTTP server drives (mode eunomia with a frontend-bearing role).
	frontend *geostore.Frontend
	// health, optional, reports why this process should not take client
	// traffic (sticky WAL sync error, wedged release stream); the front
	// door's /healthz turns it into a 503.
	health func() error
	// causal reports whether the protocol promises causally ordered
	// visibility (everything except eventual).
	causal bool
	// causalGrace is how long the watcher lets a causally preceding key
	// trail its dependent before declaring a violation. Zero = strict
	// (eunomia and sequencer apply updates in dependency order at one
	// component). GentleRain/Cure need a round: the stabilizer installs
	// the stable cut to partitions sequentially, so within one round a
	// flag can be momentarily visible before its data — resolved by the
	// time the installation pass completes, never later.
	causalGrace time.Duration
}

func main() {
	var (
		mode       = flag.String("mode", "eunomia", "protocol: eunomia, sequencer, globalstab|gentlerain, cure, or eventual")
		role       = flag.String("role", "orderer", "orderer, dc, or a comma list of partitions,eunomia,receiver (mode sequencer: dc, sequencer, partitions)")
		dcID       = flag.Int("dc", 0, "this process's datacenter id")
		dcs        = flag.Int("dcs", 3, "number of datacenters in the deployment")
		partitions = flag.Int("partitions", 8, "partitions per datacenter")
		replicas   = flag.Int("replicas", 1, "Eunomia replicas per datacenter")
		aggFanin   = flag.Int("agg-fanin", 0, "mode eunomia: size of the datacenter's propagation-tree fan-in set; partitions stream metadata at a pair of aggregator endpoints instead of the replica set (0 = flat all-to-one; every process of the DC must agree)")
		aggIndex   = flag.String("agg-index", "", `-role aggregator: comma list of fan-in endpoint indices this process hosts (default: all of -agg-fanin; indices at or above it name extra tree levels)`)
		aggParent  = flag.String("agg-parent", "", `-role aggregator: comma list of parent endpoint names in this datacenter, e.g. "aggregator2,aggregator3" for a deeper tree (default: the Eunomia replica set)`)
		aggFlush   = flag.Duration("agg-flush", 0, "-role aggregator: merge-and-forward period (default -batch-interval)")
		listen     = flag.String("listen", ":7077", "fabric listen address")
		addr       = flag.String("addr", "", "legacy alias for -listen")
		advertise  = flag.String("advertise", "", "address peers dial to reach this process (default: listen address)")
		batchIvl   = flag.Duration("batch-interval", time.Millisecond, "partition→Eunomia propagation period (baseline modes: inter-DC ship batching interval)")
		stableIvl  = flag.Duration("stable-interval", time.Millisecond, "stabilization period θ")
		checkIvl   = flag.Duration("check-interval", time.Millisecond, "receiver dependency-check period ρ")
		statsIvl   = flag.Duration("stats-interval", time.Second, "stats reporting period")
		tree       = flag.String("tree", "redblack", "pending-set structure: redblack|avl (mode eunomia)")
		aseq       = flag.Bool("aseq", false, "mode sequencer: contact the sequencer asynchronously (A-Seq)")
		demo       = flag.String("demo", "", `demo workload: "write:N" or "watch:N"`)
		dataDir    = flag.String("data-dir", "", "mode eunomia: persist node state (partition WALs, release-stream position, receiver SiteTime+queues) under this directory; a restart with the same dir rejoins instead of wedging")
		storeB     = flag.String("store", "mem", `mode eunomia: partition version-store backend: "mem" (in-memory maps) or "disk" (log-structured per-shard segment files whose live dataset may exceed memory; requires -data-dir)`)
		storeBud   = flag.Int64("store-budget", 0, "-store disk: advisory resident-memory budget in bytes for the disk backend's in-memory indexes, split across the hosted partitions (0 = unbudgeted)")
		snapThresh = flag.Int64("snapshot-threshold", 0, "mode eunomia with -data-dir: per-store WAL size in bytes that triggers snapshot compaction (default 1 MiB)")
		bootFrom   = flag.String("bootstrap-from", "", `mode eunomia: comma list of donor datacenter ids (e.g. "1,2", in preference order) to pull partition snapshots from at startup — a rebuilding process installs a compressed snapshot from a live peer and replays only the WAL suffix past it; needs a role that includes partitions`)
		walSync    = flag.String("wal-sync", "flush", `WAL fsync policy: "flush" (per batch/ack, bounded loss window), "always" (per append, none), or "group" (group commit: durable on return like always, fsyncs shared across concurrent appends)`)
		walGDelay  = flag.Duration("wal-group-delay", 0, "-wal-sync group: how long a committer accumulates after waking before it syncs (0 = sync as soon as the previous sync returns)")
		walGMax    = flag.Int("wal-group-max", 0, "-wal-sync group: records that cut -wal-group-delay short (default 4096)")
		metricsAd  = flag.String("metrics-addr", "", "serve Prometheus-style metrics (fabric, peer windows, codec latency, node state) on this HTTP address at /metrics")
		codecName  = flag.String("codec", "wire", `fabric frame codec: "wire" (zero-reflection, default) or "gob" (the reflection ablation)`)
		compressN  = flag.String("compress", "off", `wire-codec frame compression for connections this process dials: "off", "snappy", or "zstd"; inbound connections always follow the remote dialer's announcement, so mixed deployments interoperate`)
		wanSeed    = flag.Int64("wan-seed", 42, "seed for -wan jitter and loss draws; the same seed and topology replay identical link behaviour")
		frontAddr  = flag.String("frontend-addr", "", "mode eunomia: serve the causal HTTP front door (GET/PUT /kv/{key} with X-Causal-Session tokens) on this address; needs a role that includes frontend (dc does)")
		frontIndex = flag.Int("frontend-index", 0, "which of the datacenter's front-door fabric endpoints this process hosts; frontends are stateless and scale horizontally by index")
		frontWait  = flag.Duration("frontend-wait", 30*time.Second, "bound on a read's visibility wait (session migration, §4) before it fails with 503")
		sessMode   = flag.String("session", "vector", `mode eunomia: causal session metadata issued to clients: "vector" (one entry per DC, the default) or "scalar" (the paper's single-scalar ablation; every process of the deployment must agree)`)
	)
	var routeSpecs []string
	flag.Func("route", `endpoint route, repeatable: "dc1=host:port" or "dc1:receiver=host:port"`, func(s string) error {
		routeSpecs = append(routeSpecs, s)
		return nil
	})
	var wanSpecs []string
	flag.Func("wan", `emulated-WAN link shaping for inbound cross-datacenter frames, repeatable or ";"-joined: "dc0-dc1:40ms±5ms,0.1%,50Mbps" (delay, optional ±jitter, loss, bandwidth; pair "*" is the default link)`, func(s string) error {
		wanSpecs = append(wanSpecs, s)
		return nil
	})
	var faultSpecs []string
	flag.Func("faults", `deterministic fault schedule, repeatable or ";"-joined: "t=2s:partition dc0<-dc1; t=4s:heal; t=5s:crash partition@dc1; t=6s:fsync-err applier@dc0" (see internal/faults for the grammar); events addressed to this process's datacenter and roles fire at their offsets`, func(s string) error {
		faultSpecs = append(faultSpecs, s)
		return nil
	})
	faultsSeed := flag.Int64("faults-seed", 1, "seed for -faults per-frame fault draws; the same seed and schedule replay identical behaviour")
	flag.Parse()

	kind := eunomia.RedBlack
	switch *tree {
	case "redblack":
	case "avl":
		kind = eunomia.AVL
	default:
		log.Fatalf("unknown -tree %q", *tree)
	}

	// Reject contradictory or silently-ignored flag combinations up
	// front, before any socket binds: a misconfigured process should die
	// with one line, not boot half a topology.
	if flagSet("tree") && *mode != "eunomia" {
		log.Fatalf("-tree is supported only by -mode eunomia (got %q)", *mode)
	}
	if *aseq && *mode != "sequencer" {
		log.Fatalf("-aseq is supported only by -mode sequencer (got %q)", *mode)
	}
	aggRole := *mode == "eunomia" && roleHas(*role, "aggregator")
	if (flagSet("agg-index") || flagSet("agg-parent") || flagSet("agg-flush")) && !aggRole {
		log.Fatalf("-agg-index/-agg-parent/-agg-flush apply only to -mode eunomia -role aggregator (got -mode %s -role %s)", *mode, *role)
	}
	if *aggFanin > 0 && *mode != "eunomia" {
		log.Fatalf("-agg-fanin is supported only by -mode eunomia (got %q)", *mode)
	}
	if *aggFanin > 0 && *role == "orderer" {
		log.Fatal("-agg-fanin contradicts -role orderer: the bare ordering service takes partition streams directly")
	}
	if aggRole && *aggFanin <= 0 {
		log.Fatal("-role aggregator needs -agg-fanin >= 1 (the datacenter's fan-in set size)")
	}
	if *frontAddr != "" && *mode != "eunomia" {
		log.Fatalf("-frontend-addr is supported only by -mode eunomia (got %q)", *mode)
	}
	if *frontAddr != "" && !(roleHas(*role, "dc") || roleHas(*role, "frontend")) {
		log.Fatalf("-frontend-addr needs a role that includes frontend (dc does; got -role %s)", *role)
	}
	if (flagSet("frontend-index") || flagSet("frontend-wait")) && *frontAddr == "" {
		log.Fatal("-frontend-index/-frontend-wait apply only with -frontend-addr")
	}
	if flagSet("session") && *mode != "eunomia" {
		log.Fatalf("-session is supported only by -mode eunomia (got %q)", *mode)
	}
	scalarSession := false
	switch *sessMode {
	case "vector":
	case "scalar":
		scalarSession = true
	default:
		log.Fatalf("unknown -session %q (want vector or scalar)", *sessMode)
	}
	agg := aggTopology{fanin: *aggFanin, flush: *aggFlush}
	var err error
	if agg.idxs, err = parseAggIndexes(*aggIndex, *aggFanin); err != nil {
		log.Fatal(err)
	}
	if agg.parents, agg.redundant, err = parseAggParents(*aggParent, types.DCID(*dcID)); err != nil {
		log.Fatal(err)
	}
	agg.level = aggLevelFor(agg.idxs, *aggFanin, agg.redundant)

	if *addr != "" {
		if flagSet("listen") {
			log.Fatal("-addr is a legacy alias for -listen; pass only one of them")
		}
		*listen = *addr
	}

	codec, err := fabric.ParseCodec(*codecName)
	if err != nil {
		log.Fatal(err)
	}
	scheme, err := compress.Parse(*compressN)
	if err != nil {
		log.Fatal(err)
	}
	if scheme != compress.Off && codec == fabric.CodecGob {
		log.Fatalf("-compress %s contradicts -codec gob: compression is defined only on the wire codec", scheme)
	}
	if flagSet("wan-seed") && len(wanSpecs) == 0 {
		log.Fatal("-wan-seed applies only with -wan link specs")
	}
	if flagSet("faults-seed") && len(faultSpecs) == 0 {
		log.Fatal("-faults-seed applies only with a -faults schedule")
	}
	var faultSched *faults.Schedule
	var inj *faults.Injector
	if len(faultSpecs) > 0 {
		if faultSched, err = faults.ParseSchedule(faultSpecs...); err != nil {
			log.Fatal(err)
		}
		inj = faults.NewInjector(*faultsSeed)
	}
	var shaper *wan.Shaper
	if len(wanSpecs) > 0 {
		topo, err := wan.ParseTopology(wanSpecs...)
		if err != nil {
			log.Fatal(err)
		}
		shaper = wan.NewShaper(topo, *wanSeed)
	}
	// HoldDelivery: peers may dial and stream the moment the port is
	// bound, but nothing is consumed (or acknowledged) until this
	// process's roles are registered — otherwise a slow boot under load
	// silently acks-and-drops the first frames of send-once edges
	// (stable-metadata ships, payload batches).
	fab, err := transport.Listen(transport.Config{Listen: *listen, Advertise: *advertise, Codec: codec,
		Compress: scheme, WANShaper: shaper, HoldDelivery: true, Faults: inj})
	if err != nil {
		log.Fatal(err)
	}
	defer fab.Close()
	if err := applyRoutes(fab, routeSpecs, *mode, *partitions, *replicas, *aggFanin); err != nil {
		log.Fatal(err)
	}

	if *role == "orderer" {
		if *mode != "eunomia" {
			// The bare ordering service is Eunomia's; don't silently boot
			// it when a baseline was requested with the default role.
			log.Fatalf("-role orderer supports only -mode eunomia (got %q); baselines need -role dc", *mode)
		}
		runOrderer(fab, *dcID, *partitions, *replicas, *stableIvl, *statsIvl, kind)
		return
	}

	var policy wal.SyncPolicy
	switch *walSync {
	case "flush":
		policy = wal.SyncOnFlush
	case "always":
		policy = wal.SyncEachAppend
	case "group":
		policy = wal.SyncGroupCommit
	default:
		log.Fatalf("unknown -wal-sync %q (want flush, always or group)", *walSync)
	}
	if (flagSet("wal-group-delay") || flagSet("wal-group-max")) && *walSync != "group" {
		log.Fatalf("-wal-group-delay/-wal-group-max apply only to -wal-sync group (got %q)", *walSync)
	}
	if *dataDir != "" && *mode != "eunomia" {
		log.Fatalf("-data-dir is supported only by -mode eunomia (got %q)", *mode)
	}
	switch *storeB {
	case "mem", "disk":
	default:
		log.Fatalf("unknown -store %q (want mem or disk)", *storeB)
	}
	if *storeB == "disk" && (*mode != "eunomia" || *dataDir == "") {
		log.Fatalf("-store disk requires -mode eunomia and -data-dir (got -mode %s, -data-dir %q)", *mode, *dataDir)
	}
	if flagSet("store-budget") && *storeB != "disk" {
		log.Fatalf("-store-budget applies only to -store disk (got -store %s)", *storeB)
	}
	if flagSet("snapshot-threshold") {
		if *mode != "eunomia" || *dataDir == "" {
			log.Fatalf("-snapshot-threshold requires -mode eunomia and -data-dir (got -mode %s, -data-dir %q)", *mode, *dataDir)
		}
		if *snapThresh <= 0 {
			log.Fatalf("-snapshot-threshold must be positive bytes (got %d)", *snapThresh)
		}
	}
	bootstrapFrom, err := parseBootstrapFrom(*bootFrom, *mode, *dcID, *dcs)
	if err != nil {
		log.Fatal(err)
	}

	var h hosted
	switch *mode {
	case "eunomia":
		h, err = hostEunomia(fab, *role, *dcID, *dcs, *partitions, *replicas, *batchIvl, *stableIvl, *checkIvl, kind, *dataDir, policy, *walGDelay, *walGMax, agg,
			frontdoorConfig{index: *frontIndex, wait: *frontWait, scalar: scalarSession}, inj,
			storeConfig{backend: *storeB, budget: *storeBud, snapThreshold: *snapThresh, bootstrapFrom: bootstrapFrom})
	case "sequencer":
		h, err = hostSequencer(fab, *role, *dcID, *dcs, *partitions, *aseq, *batchIvl, *checkIvl)
	case "globalstab", "gentlerain", "cure":
		h, err = hostGlobalstab(fab, *role, *mode, *dcID, *dcs, *partitions, *batchIvl, *stableIvl)
	case "eventual":
		h, err = hostEventual(fab, *role, *dcID, *dcs, *partitions, *batchIvl)
	default:
		err = fmt.Errorf("unknown -mode %q (want eunomia, sequencer, globalstab, gentlerain, cure, or eventual)", *mode)
	}
	if err != nil {
		log.Fatal(err)
	}
	defer h.close()
	fab.Ready() // every hosted endpoint is registered; serve held frames
	log.Printf("eunomia-server: mode %s, dc%d role %s on %s (%d dcs × %d partitions)",
		*mode, *dcID, *role, fab.Addr(), *dcs, *partitions)

	if faultSched != nil {
		go runFaultSchedule(faultSched, inj, types.DCID(*dcID), *role)
	}

	if *metricsAd != "" {
		if err := serveMetrics(*metricsAd, fab, h); err != nil {
			log.Fatal(err)
		}
	}
	if *frontAddr != "" {
		if h.frontend == nil {
			log.Fatal("-frontend-addr needs a hosted frontend role (mode eunomia, role dc or frontend)")
		}
		if err := serveFrontdoor(*frontAddr, h.frontend, h.health); err != nil {
			log.Fatal(err)
		}
	}
	if h.wedged != nil {
		// A wedged release stream is a dead datacenter wearing a live
		// process: exit nonzero instead of serving (or verdicting) over
		// it. Runs beside the demo paths too, so a demo cluster whose
		// stream wedges fails fast rather than timing out cleanly.
		go func() {
			ticker := time.NewTicker(250 * time.Millisecond)
			defer ticker.Stop()
			for range ticker.C {
				if h.wedged() {
					fmt.Fprintln(os.Stderr, "FATAL: release stream wedged: the partition-role process restarted without durable state (-data-dir); this datacenter needs a full restart/resync")
					os.Exit(1)
				}
			}
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	if strings.HasPrefix(*demo, "watch:") {
		n := demoCount(*demo)
		if h.newClient == nil {
			log.Fatal("-demo watch needs a process that hosts partitions")
		}
		if err := demoWatch(h.newClient(), n, h.causal, h.causalGrace); err != nil {
			fmt.Println("demo: FAILED:", err)
			os.Exit(1)
		}
		if h.causal {
			fmt.Printf("demo: causal chain OK (%d pairs)\n", n)
		} else {
			// Don't claim an order guarantee the protocol doesn't make.
			fmt.Printf("demo: visibility OK (%d pairs)\n", n)
		}
		return
	}
	if strings.HasPrefix(*demo, "write:") {
		n, pause := demoWriteSpec(*demo)
		if h.newClient == nil {
			log.Fatal("-demo write needs a process that hosts partitions")
		}
		demoWrite(h.newClient(), n, pause)
		fmt.Printf("demo: wrote %d causal data/flag pairs\n", n)
	}

	ticker := time.NewTicker(*statsIvl)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			log.Printf("shutting down dc%d", *dcID)
			return
		case <-ticker.C:
			log.Printf("stats: %s, fabric sent=%d delivered=%d dropped=%d",
				h.stats(), fab.Sent.Load(), fab.Delivered.Load(), fab.Dropped.Load())
		}
	}
}

// aggTopology bundles the propagation-tree flags for the eunomia mode:
// the fan-in set size every process agrees on, plus the hosted indices,
// parent endpoints, and flush cadence of an aggregator-role process.
type aggTopology struct {
	fanin     int
	idxs      []int
	parents   []fabric.Addr
	redundant bool
	level     int
	flush     time.Duration
}

// hostEunomia boots the EunomiaKV node for the selected roles, durable
// when dataDir is set (the node recovers its state and rejoins the
// release stream at its durable watermark).
// storeConfig bundles the version-store flags for the eunomia mode: the
// backend selection, its memory budget, the snapshot-compaction
// threshold, and the bootstrap donor list.
type storeConfig struct {
	backend       string
	budget        int64
	snapThreshold int64
	bootstrapFrom []types.DCID
}

// parseBootstrapFrom validates -bootstrap-from: eunomia-only, numeric
// datacenter ids inside the deployment, never this process's own.
func parseBootstrapFrom(spec, mode string, dcID, dcs int) ([]types.DCID, error) {
	if spec == "" {
		return nil, nil
	}
	if mode != "eunomia" {
		return nil, fmt.Errorf("-bootstrap-from is supported only by -mode eunomia (got %q)", mode)
	}
	var donors []types.DCID
	for _, f := range strings.Split(spec, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || id < 0 || id >= dcs {
			return nil, fmt.Errorf("-bootstrap-from %q: want datacenter ids in [0,%d)", spec, dcs)
		}
		if id == dcID {
			return nil, fmt.Errorf("-bootstrap-from %q: dc%d cannot bootstrap from itself", spec, dcID)
		}
		donors = append(donors, types.DCID(id))
	}
	return donors, nil
}

func hostEunomia(fab *transport.TCP, role string, dcID, dcs, partitions, replicas int,
	batchIvl, stableIvl, checkIvl time.Duration, kind eunomia.TreeKind,
	dataDir string, policy wal.SyncPolicy, groupDelay time.Duration, groupMax int,
	agg aggTopology, fd frontdoorConfig, inj *faults.Injector, store storeConfig) (hosted, error) {
	roles, err := parseRoles(role)
	if err != nil {
		return hosted{}, err
	}
	if len(store.bootstrapFrom) > 0 && !roles.Has(geostore.RolePartitions) {
		return hosted{}, fmt.Errorf("-bootstrap-from needs a role that includes partitions (got %q)", role)
	}
	node, err := geostore.OpenNode(geostore.NodeConfig{
		Config: geostore.Config{
			DCs:            dcs,
			Partitions:     partitions,
			Replicas:       replicas,
			Aggregators:    agg.fanin,
			BatchInterval:  batchIvl,
			StableInterval: stableIvl,
			CheckInterval:  checkIvl,
			Tree:           kind,
			ScalarMeta:     fd.scalar,
		},
		DC:                  types.DCID(dcID),
		Roles:               roles,
		Fabric:              fab,
		Pipelined:           true,
		DataDir:             dataDir,
		WALSync:             policy,
		WALGroupDelay:       groupDelay,
		WALGroupMaxBatch:    groupMax,
		AggIndexes:          agg.idxs,
		AggParents:          agg.parents,
		AggRedundantParents: agg.redundant,
		AggFlushInterval:    agg.flush,
		AggLevel:            agg.level,
		FrontendIndex:       fd.index,
		FrontendWaitTimeout: fd.wait,
		Faults:              inj,
		SnapshotThreshold:   store.snapThreshold,
		StoreBackend:        store.backend,
		StoreMemBudget:      store.budget,
		BootstrapFrom:       store.bootstrapFrom,
	})
	if err != nil {
		return hosted{}, fmt.Errorf("recovering node state from %s: %w", dataDir, err)
	}
	if dataDir != "" {
		log.Printf("eunomia-server: durable state under %s (recovered %d local updates, release watermark %d)",
			dataDir, node.TotalUpdates(), node.ApplierDurable())
	}
	h := hosted{close: node.Close, causal: true, wedged: node.ReleaseWedged, frontend: node.Frontend()}
	h.health = func() error {
		// Readiness, not liveness: a sticky WAL sync error means this
		// process has stopped promising durability (full disk, injected
		// fault) and a wedged release stream means remote updates can
		// never become visible here — in both cases a load balancer
		// should drain this front door while the process stays up for
		// inspection.
		if err := node.SyncErr(); err != nil {
			return err
		}
		if node.ReleaseWedged() {
			return fmt.Errorf("release stream wedged: the partition-role process restarted without durable state")
		}
		return nil
	}
	if roles.Has(geostore.RolePartitions) {
		h.newClient = func() demoClient { return node.NewClient() }
	}
	h.stats = func() string {
		remoteApplied := node.TotalRemoteApplied()
		if node.Receiver() != nil && !roles.Has(geostore.RolePartitions) {
			remoteApplied = node.Receiver().Applied.Load()
		}
		var stable string
		if node.Cluster() != nil {
			if l := node.Cluster().Leader(); l != nil {
				st := l.Stats()
				stable = fmt.Sprintf(" stable=%s ordered=%d pending=%d", st.StableTime, st.OpsShipped, st.Pending)
			}
		}
		var aggs string
		if list := node.Aggregators(); len(list) > 0 {
			var in, out int64
			buffered := 0
			for _, a := range list {
				in += a.BatchesIn.Load()
				out += a.BatchesOut.Load()
				buffered += a.Buffered()
			}
			aggs = fmt.Sprintf(" agg in=%d out=%d buffered=%d", in, out, buffered)
		}
		return fmt.Sprintf("local updates=%d, remote applied=%d,%s%s release inflight=%d",
			node.TotalUpdates(), remoteApplied, stable, aggs, node.ReleaseInflight())
	}
	h.metrics = func() []metrics.PromSample {
		samples := []metrics.PromSample{
			{Name: "eunomia_local_updates_total", Value: float64(node.TotalUpdates())},
			{Name: "eunomia_remote_applied_total", Value: float64(node.TotalRemoteApplied())},
			{Name: "eunomia_release_inflight", Value: float64(node.ReleaseInflight())},
			{Name: "eunomia_release_resent_total", Value: float64(node.ReleaseResent())},
			{Name: "eunomia_release_wedged", Value: boolGauge(node.ReleaseWedged())},
			{Name: "eunomia_applier_pending", Value: float64(node.ApplierPending())},
			{Name: "eunomia_applier_durable_seq", Value: float64(node.ApplierDurable())},
		}
		if roles.Has(geostore.RolePartitions) {
			// The version store: live dataset size, labeled by backend so a
			// disk-backed node's dataset-vs-RAM headroom is chartable, plus
			// the snapshot-shipping counters (nonzero after a bootstrap).
			samples = append(samples, metrics.PromSample{
				Name: "eunomia_store_bytes", Labels: [][2]string{{"backend", node.StoreBackend()}},
				Value: float64(node.StoreBytes()),
			})
			shipBytes, shipChunks, shipSeconds := node.BootstrapStats()
			samples = append(samples,
				metrics.PromSample{Name: "eunomia_snapshot_ship_bytes_total", Value: float64(shipBytes)},
				metrics.PromSample{Name: "eunomia_snapshot_ship_chunks_total", Value: float64(shipChunks)},
				metrics.PromSample{Name: "eunomia_snapshot_ship_seconds_total", Value: shipSeconds},
			)
		}
		if node.Receiver() != nil {
			samples = append(samples, metrics.PromSample{
				Name: "eunomia_receiver_applied_total", Value: float64(node.Receiver().Applied.Load()),
			})
		}
		// Propagation-tree fan-in: per-endpoint frame counters (the
		// BatchesIn/BatchesOut ratio is the fan-in factor the tree
		// achieves) and the merge-and-forward latency histogram, labeled
		// by tree level so multi-level deployments chart per hop.
		for _, a := range node.Aggregators() {
			lbl := [][2]string{
				{"endpoint", a.LocalAddr().Name},
				{"level", strconv.Itoa(a.Level())},
			}
			samples = append(samples,
				metrics.PromSample{Name: "eunomia_aggregator_batches_in_total", Labels: lbl, Value: float64(a.BatchesIn.Load())},
				metrics.PromSample{Name: "eunomia_aggregator_batches_out_total", Labels: lbl, Value: float64(a.BatchesOut.Load())},
				metrics.PromSample{Name: "eunomia_aggregator_buffered", Labels: lbl, Value: float64(a.Buffered())},
			)
			samples = append(samples, metrics.PromHistogram("eunomia_aggregator_flush_seconds", lbl, a.FlushLatency, nil)...)
		}
		// WAL durability: fsync latency and group-commit coalescing per
		// component (partition/applier/receiver stores). records_total /
		// commits_total is the realized batch size — 1.0 means every fsync
		// covered a single record, i.e. no coalescing.
		for _, wm := range node.WALMetrics() {
			lbl := [][2]string{{"component", wm.Component}}
			samples = append(samples,
				metrics.PromSample{Name: "eunomia_wal_group_commits_total", Labels: lbl, Value: float64(wm.M.Commits.Load())},
				metrics.PromSample{Name: "eunomia_wal_group_records_total", Labels: lbl, Value: float64(wm.M.Records.Load())},
				// Nonzero means the component's WAL took a sticky sync
				// failure and the node no longer promises durability:
				// page on it, then restart the node onto a healthy disk.
				metrics.PromSample{Name: "eunomia_wal_sync_errors_total", Labels: lbl, Value: float64(wm.M.SyncErrors.Load())},
				// Nonzero means a snapshot compaction failed — worst case a
				// truncation failure after install, which leaves the replay
				// tail growing behind the operator's back.
				metrics.PromSample{Name: "eunomia_wal_compact_errors_total", Labels: lbl, Value: float64(wm.M.CompactErrors.Load())},
			)
			samples = append(samples, metrics.PromHistogram("eunomia_wal_fsync_seconds", lbl, wm.M.Fsync, nil)...)
		}
		// Front door: client-facing op counters and latency, plus the
		// migration visibility waits — waits_total counting nonzero on a
		// frontend is the §4 guarantee doing work, timeouts are clients
		// told to retry (503).
		if fe := node.Frontend(); fe != nil {
			get := [][2]string{{"op", "get"}}
			put := [][2]string{{"op", "put"}}
			samples = append(samples,
				metrics.PromSample{Name: "eunomia_frontend_ops_total", Labels: get, Value: float64(fe.Gets.Load())},
				metrics.PromSample{Name: "eunomia_frontend_ops_total", Labels: put, Value: float64(fe.Puts.Load())},
				metrics.PromSample{Name: "eunomia_frontend_op_errors_total", Value: float64(fe.OpErrors.Load())},
				metrics.PromSample{Name: "eunomia_frontend_waits_total", Value: float64(fe.Waits.Load())},
				metrics.PromSample{Name: "eunomia_frontend_wait_timeouts_total", Value: float64(fe.WaitTimeouts.Load())},
			)
			samples = append(samples, metrics.PromHistogram("eunomia_frontend_op_seconds", get, fe.GetLat, nil)...)
			samples = append(samples, metrics.PromHistogram("eunomia_frontend_op_seconds", put, fe.PutLat, nil)...)
			samples = append(samples, metrics.PromHistogram("eunomia_frontend_wait_seconds", nil, fe.WaitLat, nil)...)
		}
		return samples
	}
	return h, nil
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// serveMetrics exposes fabric, peer-window, and protocol counters in
// Prometheus text format at /metrics. The listener binds synchronously so
// a bad address fails startup, then serves for the process lifetime.
func serveMetrics(addr string, fab *transport.TCP, h hosted) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		samples := []metrics.PromSample{
			{Name: "eunomia_fabric_sent_total", Value: float64(fab.Sent.Load())},
			{Name: "eunomia_fabric_delivered_total", Value: float64(fab.Delivered.Load())},
			{Name: "eunomia_fabric_dropped_total", Value: float64(fab.Dropped.Load())},
			{Name: "eunomia_fabric_dup_dropped_total", Value: float64(fab.DupDropped.Load())},
		}
		for _, ps := range fab.PeerStats() {
			peer := [][2]string{{"peer", ps.Peer}}
			samples = append(samples,
				metrics.PromSample{Name: "eunomia_peer_window_inflight", Labels: peer, Value: float64(ps.InFlight)},
				metrics.PromSample{Name: "eunomia_peer_sent_seq", Labels: peer, Value: float64(ps.Sent)},
				metrics.PromSample{Name: "eunomia_peer_acked_cum", Labels: peer, Value: float64(ps.AckedCum)},
				metrics.PromSample{Name: "eunomia_peer_retransmits_total", Labels: peer, Value: float64(ps.Retransmits)},
				metrics.PromSample{Name: "eunomia_peer_connected", Labels: peer, Value: boolGauge(ps.Connected)},
			)
		}
		// Serialization latency histograms: frame encode/decode cost and
		// the socket flush, per codec. Both codecs can be live on one
		// endpoint (inbound connections follow the remote dialer), and
		// each sample lands under the codec that produced it, so a
		// wire-vs-gob rollout compares honestly on one dashboard. The
		// dialing codec always exports (even empty, so dashboards find
		// the series); the other only once it has samples.
		for _, codec := range []fabric.Codec{fabric.CodecWire, fabric.CodecGob} {
			enc, dec, flush := fab.CodecStats(codec)
			if codec != fab.Codec() && enc.Count() == 0 && dec.Count() == 0 && flush.Count() == 0 {
				continue
			}
			label := [][2]string{{"codec", string(codec)}}
			samples = append(samples, metrics.PromHistogram("eunomia_codec_encode_seconds", label, enc, nil)...)
			samples = append(samples, metrics.PromHistogram("eunomia_codec_decode_seconds", label, dec, nil)...)
			samples = append(samples, metrics.PromHistogram("eunomia_frame_flush_seconds", label, flush, nil)...)
		}
		// Compression byte accounting: pre-compress is what the wire
		// records would have cost raw, post-compress what actually crossed
		// the sockets. On uncompressed connections the two advance in
		// lockstep, so bytes-on-wire per operation is comparable across
		// every -compress mode, and pre/post is the endpoint's achieved
		// ratio (exported as its own per-endpoint summary gauge).
		cst := fab.CompressStats()
		samples = append(samples,
			metrics.PromSample{Name: "eunomia_transport_bytes_pre_compress_total", Labels: [][2]string{{"dir", "tx"}}, Value: float64(cst.TxRaw)},
			metrics.PromSample{Name: "eunomia_transport_bytes_post_compress_total", Labels: [][2]string{{"dir", "tx"}}, Value: float64(cst.TxWire)},
			metrics.PromSample{Name: "eunomia_transport_bytes_pre_compress_total", Labels: [][2]string{{"dir", "rx"}}, Value: float64(cst.RxRaw)},
			metrics.PromSample{Name: "eunomia_transport_bytes_post_compress_total", Labels: [][2]string{{"dir", "rx"}}, Value: float64(cst.RxWire)},
		)
		ratio := 1.0
		if wire := cst.TxWire + cst.RxWire; wire > 0 {
			ratio = float64(cst.TxRaw+cst.RxRaw) / float64(wire)
		}
		samples = append(samples, metrics.PromSample{
			Name:   "eunomia_transport_compress_ratio",
			Labels: [][2]string{{"scheme", fab.Compress().String()}},
			Value:  ratio,
		})
		if h.metrics != nil {
			samples = append(samples, h.metrics()...)
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = metrics.WriteProm(w, samples)
	})
	log.Printf("eunomia-server: metrics on http://%s/metrics", ln.Addr())
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			log.Printf("metrics server: %v", err)
		}
	}()
	return nil
}

// hostSequencer boots the S-Seq/A-Seq baseline node. -role sequencer runs
// the number service alone; dc (or partitions/receiver) hosts the
// partition group, consulting the sequencer over the fabric when remote.
func hostSequencer(fab *transport.TCP, role string, dcID, dcs, partitions int, aseq bool, shipIvl, checkIvl time.Duration) (hosted, error) {
	var roles sequencer.Roles
	for _, part := range strings.Split(role, ",") {
		switch strings.TrimSpace(part) {
		case "dc":
			roles |= sequencer.RoleAll
		case "sequencer":
			roles |= sequencer.RoleSequencer
		case "partitions":
			// The partition group hosts the datacenter's receiver too;
			// there is no separate receiver role in this baseline.
			roles |= sequencer.RolePartitions
		default:
			return hosted{}, fmt.Errorf("unknown role %q for -mode sequencer (want dc, sequencer, partitions)", part)
		}
	}
	mode := sequencer.SSeq
	if aseq {
		mode = sequencer.ASeq
	}
	node := sequencer.NewNode(sequencer.NodeConfig{
		StoreConfig: sequencer.StoreConfig{
			Mode:          mode,
			DCs:           dcs,
			Partitions:    partitions,
			ShipInterval:  shipIvl,
			CheckInterval: checkIvl,
		},
		DC:     types.DCID(dcID),
		Roles:  roles,
		Fabric: fab,
	})
	// A-Seq knowingly fails to capture causality (that is the point of
	// the ablation), so the demo watcher must not assert it.
	h := hosted{close: node.Close, causal: !aseq}
	if roles.Has(sequencer.RolePartitions) {
		h.newClient = func() demoClient { return node.NewClient() }
	}
	h.stats = func() string {
		if single, ok := node.Sequencer().(*sequencer.Single); ok {
			return fmt.Sprintf("remote applied=%d, issued=%d", node.Applied(), single.Issued())
		}
		return fmt.Sprintf("remote applied=%d", node.Applied())
	}
	return h, nil
}

// hostGlobalstab boots a GentleRain or Cure datacenter; these baselines
// deploy one process per datacenter.
func hostGlobalstab(fab *transport.TCP, role, mode string, dcID, dcs, partitions int, shipIvl, stableIvl time.Duration) (hosted, error) {
	if role != "dc" {
		return hosted{}, fmt.Errorf("-mode %s supports only -role dc (got %q)", mode, role)
	}
	m := globalstab.GentleRain
	if mode == "cure" {
		m = globalstab.Cure
	}
	node := globalstab.NewNode(globalstab.NodeConfig{
		Config: globalstab.Config{
			Mode:           m,
			DCs:            dcs,
			Partitions:     partitions,
			ShipInterval:   shipIvl,
			StableInterval: stableIvl,
		},
		DC:     types.DCID(dcID),
		Fabric: fab,
	})
	grace := 10 * stableIvl
	if grace < 100*time.Millisecond {
		grace = 100 * time.Millisecond
	}
	return hosted{
		newClient:   func() demoClient { return node.NewClient() },
		stats:       func() string { return fmt.Sprintf("remote applied=%d", node.Applied()) },
		close:       node.Close,
		causal:      true,
		causalGrace: grace,
	}, nil
}

// hostEventual boots the eventually consistent baseline datacenter.
func hostEventual(fab *transport.TCP, role string, dcID, dcs, partitions int, shipIvl time.Duration) (hosted, error) {
	if role != "dc" {
		return hosted{}, fmt.Errorf("-mode eventual supports only -role dc (got %q)", role)
	}
	node := eventual.NewNode(eventual.NodeConfig{
		Config: eventual.Config{DCs: dcs, Partitions: partitions, ShipInterval: shipIvl},
		DC:     types.DCID(dcID),
		Fabric: fab,
	})
	return hosted{
		newClient: func() demoClient { return node.NewClient() },
		stats:     func() string { return fmt.Sprintf("remote applied=%d", node.Applied()) },
		close:     node.Close,
		causal:    false,
	}, nil
}

// runOrderer serves a bare ordering service: the role the original daemon
// played, now over the pipelined fabric protocol.
func runOrderer(fab *transport.TCP, dc, partitions, replicas int, stableIvl, statsIvl time.Duration, kind eunomia.TreeKind) {
	var shipped atomic.Int64
	cluster := eunomia.NewCluster(replicas, eunomia.Config{
		Partitions:     partitions,
		StableInterval: stableIvl,
		Tree:           kind,
	}, func(_ types.ReplicaID, ops []*types.Update) {
		shipped.Add(int64(len(ops)))
	})
	defer cluster.Stop()
	for r, rep := range cluster.Replicas() {
		fabric.ServeReplica(fab, fabric.EunomiaAddr(types.DCID(dc), types.ReplicaID(r)), rep)
	}
	fab.Ready()
	log.Printf("eunomia-server: ordering %d partition streams on %s (θ=%v, %d replicas)",
		partitions, fab.Addr(), stableIvl, replicas)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(statsIvl)
	defer ticker.Stop()
	var last int64
	for {
		select {
		case <-stop:
			st := cluster.Replica(0).Stats()
			log.Printf("shutting down: %d ops ordered, %d batches, %d heartbeats, stable=%v",
				st.OpsShipped, st.Batches, st.Heartbeats, st.StableTime)
			return
		case <-ticker.C:
			cur := shipped.Load()
			st := cluster.Replica(0).Stats()
			log.Printf("ordered %d ops/s (total %d, pending %d, stable %v)",
				(cur-last)*int64(time.Second/statsIvl), cur, st.Pending, st.StableTime)
			last = cur
		}
	}
}

// runFaultSchedule fires each -faults event at its offset from process
// readiness. Network and fsync events arm the shared injector; crash and
// stop come back as directives this runner carries out on the process
// itself (SIGKILL leaves no time for cleanup — that is the point; SIGSTOP
// freezes until an external SIGCONT). Restart and cont are inherently
// external and are ignored here — the multi-process harness (or the
// operator) drives them.
func runFaultSchedule(sched *faults.Schedule, inj *faults.Injector, self types.DCID, role string) {
	hasRole := func(target string) bool {
		if roleHas(role, "dc") {
			return true
		}
		switch {
		case strings.HasPrefix(target, "partition"), target == "applier":
			// The applier (windowed release ingress) lives with the
			// partition group.
			return roleHas(role, "partitions")
		case strings.HasPrefix(target, "eunomia"):
			return roleHas(role, "eunomia") || role == "orderer"
		case target == "receiver":
			return roleHas(role, "receiver")
		}
		return false
	}
	start := time.Now()
	for _, e := range sched.Events {
		if wait := e.At - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		switch inj.Actuate(e, self, hasRole) {
		case faults.DirectiveKill:
			log.Printf("faults: t=%v: crash %s@dc%d — fail-stop now", e.At, e.Target, e.DC)
			_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
		case faults.DirectiveStop:
			log.Printf("faults: t=%v: stop %s@dc%d — freezing until SIGCONT", e.At, e.Target, e.DC)
			_ = syscall.Kill(os.Getpid(), syscall.SIGSTOP)
		}
	}
}

// flagSet reports whether the named flag was set on the command line.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) { set = set || f.Name == name })
	return set
}

// roleHas reports whether the comma-separated role list names want.
func roleHas(role, want string) bool {
	for _, part := range strings.Split(role, ",") {
		if strings.TrimSpace(part) == want {
			return true
		}
	}
	return false
}

// parseAggIndexes parses the -agg-index comma list ("" = all). Indices
// at or above fanin are legal — they name extra tree levels that only
// explicitly-configured children (-agg-parent) stream at — but get a
// loud startup notice, because with no such child they serve nothing.
func parseAggIndexes(s string, fanin int) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var idxs []int
	seen := make(map[int]bool)
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad -agg-index %q (want a comma list of non-negative integers)", s)
		}
		if seen[n] {
			return nil, fmt.Errorf("bad -agg-index %q: index %d listed twice (two endpoints cannot share an address)", s, n)
		}
		seen[n] = true
		if n >= fanin {
			log.Printf("eunomia-server: note: aggregator%d is outside the partition-facing fan-in set (0..%d); it only serves children that name it via -agg-parent", n, fanin-1)
		}
		idxs = append(idxs, n)
	}
	return idxs, nil
}

// parseAggParents parses the -agg-parent comma list into endpoint
// addresses of this datacenter. Aggregator parents (a deeper tree) are
// redundant routes into one service, so the hosted nodes fold watermarks
// with max-over-paths; eunomia parents name the replica set explicitly.
// Mixing the two is a contradiction.
func parseAggParents(s string, dc types.DCID) (parents []fabric.Addr, redundant bool, err error) {
	if s == "" {
		return nil, false, nil
	}
	aggParents, euParents := 0, 0
	for _, part := range strings.Split(s, ",") {
		name := strings.TrimSpace(part)
		var rest string
		var ok bool
		if rest, ok = strings.CutPrefix(name, "aggregator"); ok {
			aggParents++
		} else if rest, ok = strings.CutPrefix(name, "eunomia"); ok {
			euParents++
		} else {
			return nil, false, fmt.Errorf("bad -agg-parent %q (want aggregatorN or eunomiaN names)", name)
		}
		if n, convErr := strconv.Atoi(rest); convErr != nil || n < 0 {
			return nil, false, fmt.Errorf("bad -agg-parent %q (want aggregatorN or eunomiaN names)", name)
		}
		parents = append(parents, fabric.Addr{DC: dc, Name: name})
	}
	if aggParents > 0 && euParents > 0 {
		return nil, false, fmt.Errorf("bad -agg-parent %q: aggregator and eunomia parents have different acknowledgement semantics; name one kind", s)
	}
	return parents, aggParents > 0, nil
}

// aggLevelFor derives the hosted endpoints' tree-level label (1 = fed
// directly by partitions). A node forwarding to parent aggregators is
// below them — a leaf, level 1. A node with replica(-set) parents is the
// tree's top: level 1 in a one-level tree, level 2 when it hosts only
// indices outside the partition-facing fan-in set (partitions stream at
// 0..fanin-1 only, so such a node is exclusively fed by child
// aggregators). Deeper trees set geostore.NodeConfig.AggLevel directly.
func aggLevelFor(idxs []int, fanin int, redundantParents bool) int {
	if redundantParents || len(idxs) == 0 {
		return 1
	}
	for _, i := range idxs {
		if i < fanin {
			return 1
		}
	}
	return 2
}

func parseRoles(s string) (geostore.Roles, error) {
	var roles geostore.Roles
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "dc":
			roles |= geostore.RoleAll
		case "partitions":
			roles |= geostore.RolePartitions
		case "eunomia":
			roles |= geostore.RoleEunomia
		case "receiver":
			roles |= geostore.RoleReceiver
		case "aggregator":
			roles |= geostore.RoleAggregator
		case "frontend":
			roles |= geostore.RoleFrontend
		default:
			return 0, fmt.Errorf("unknown role %q (want dc, partitions, eunomia, receiver, aggregator, frontend, orderer)", part)
		}
	}
	return roles, nil
}

// applyRoutes expands "dcK=hp" and "dcK:role=hp" specs into fabric
// routes. The "partitions" role is mode-aware: in -mode sequencer the
// partition-group process also hosts the datacenter's receiver and the
// remote-sequencer reply endpoint, so those addresses route with it.
// "dcK:aggregators=hp" routes the whole fan-in set to one process;
// "dcK:aggregatorJ=hp" routes one endpoint (the usual multi-process
// tree, one or a few endpoints per aggregator process).
func applyRoutes(fab *transport.TCP, specs []string, mode string, partitions, replicas, aggregators int) error {
	for _, spec := range specs {
		target, hostport, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("bad -route %q (want dcK=host:port or dcK:role=host:port)", spec)
		}
		dcPart, rolePart, hasRole := strings.Cut(target, ":")
		if !strings.HasPrefix(dcPart, "dc") {
			return fmt.Errorf("bad -route target %q (want dcK...)", target)
		}
		dcN, err := strconv.Atoi(strings.TrimPrefix(dcPart, "dc"))
		if err != nil {
			return fmt.Errorf("bad -route datacenter in %q: %v", spec, err)
		}
		dc := types.DCID(dcN)
		if !hasRole {
			fab.AddDCRoute(dc, hostport)
			continue
		}
		switch rolePart {
		case "partitions":
			for p := 0; p < partitions; p++ {
				fab.AddRoute(fabric.PartitionAddr(dc, types.PartitionID(p)), hostport)
			}
			// The windowed release stream's ordered ingress lives with the
			// partition group.
			fab.AddRoute(fabric.ApplierAddr(dc), hostport)
			if mode == "sequencer" {
				// The sequencer baseline colocates the datacenter's
				// receiver (all inter-DC shipping targets it) and the
				// remote-sequencer reply endpoint with the partitions.
				fab.AddRoute(fabric.ReceiverAddr(dc), hostport)
				fab.AddRoute(sequencer.ClientAddr(dc), hostport)
			}
		case "eunomia":
			for r := 0; r < replicas; r++ {
				fab.AddRoute(fabric.EunomiaAddr(dc, types.ReplicaID(r)), hostport)
			}
		case "receiver":
			fab.AddRoute(fabric.ReceiverAddr(dc), hostport)
		case "sequencer":
			fab.AddRoute(fabric.SequencerAddr(dc, 0), hostport)
		case "aggregators":
			if aggregators <= 0 {
				return fmt.Errorf("-route %q needs -agg-fanin >= 1", spec)
			}
			for i := 0; i < aggregators; i++ {
				fab.AddRoute(fabric.AggregatorAddr(dc, i), hostport)
			}
		case "frontend":
			// Rarely needed: nothing on the fabric initiates traffic at a
			// frontend (partition/receiver acks follow learned reply
			// routes), but the route keeps split topologies symmetric.
			fab.AddRoute(fabric.FrontendAddr(dc, 0), hostport)
		default:
			if rest, ok := strings.CutPrefix(rolePart, "aggregator"); ok {
				if i, err := strconv.Atoi(rest); err == nil && i >= 0 {
					fab.AddRoute(fabric.AggregatorAddr(dc, i), hostport)
					continue
				}
			}
			if rest, ok := strings.CutPrefix(rolePart, "frontend"); ok {
				if i, err := strconv.Atoi(rest); err == nil && i >= 0 {
					fab.AddRoute(fabric.FrontendAddr(dc, i), hostport)
					continue
				}
			}
			return fmt.Errorf("bad -route role %q in %q", rolePart, spec)
		}
	}
	return nil
}

func demoCount(s string) int {
	_, ns, _ := strings.Cut(s, ":")
	n, err := strconv.Atoi(ns)
	if err != nil || n <= 0 {
		log.Fatalf("bad -demo %q (want write:N or watch:N)", s)
	}
	return n
}

// demoWriteSpec parses "write:N" or "write:N:pauseMs" (a per-pair pause,
// used by the restart tests to keep the stream in flight long enough to
// kill a process in the middle of it).
func demoWriteSpec(s string) (int, time.Duration) {
	parts := strings.Split(s, ":")
	if len(parts) < 2 || len(parts) > 3 {
		log.Fatalf("bad -demo %q (want write:N or write:N:pauseMs)", s)
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil || n <= 0 {
		log.Fatalf("bad -demo %q (want write:N or write:N:pauseMs)", s)
	}
	if len(parts) == 2 {
		return n, 0
	}
	ms, err := strconv.Atoi(parts[2])
	if err != nil || ms < 0 {
		log.Fatalf("bad -demo %q (want write:N or write:N:pauseMs)", s)
	}
	return n, time.Duration(ms) * time.Millisecond
}

// demoWrite issues n causally chained data/flag pairs from one session:
// each flag causally follows its data, and each pair follows the previous.
func demoWrite(c demoClient, n int, pause time.Duration) {
	for i := 0; i < n; i++ {
		must(c.Update(types.Key(fmt.Sprintf("data%d", i)), []byte(fmt.Sprintf("payload%d", i))))
		must(c.Update(types.Key(fmt.Sprintf("flag%d", i)), []byte("set")))
		if pause > 0 {
			time.Sleep(pause)
		}
	}
}

// waitVisible polls until key holds want or the deadline passes.
func waitVisible(c demoClient, key types.Key, want string, deadline time.Time) error {
	for {
		v, _ := c.Read(key)
		if string(v) == want {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out waiting for %s", key)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// demoWatch waits for every pair and, when the protocol promises causal
// order, verifies the invariant: a visible flag implies its data is
// visible (within grace, for protocols whose stable cut reaches
// partitions over a short installation pass).
func demoWatch(c demoClient, n int, causal bool, grace time.Duration) error {
	deadline := time.Now().Add(2 * time.Minute)
	for i := 0; i < n; i++ {
		flag := types.Key(fmt.Sprintf("flag%d", i))
		data := types.Key(fmt.Sprintf("data%d", i))
		payload := fmt.Sprintf("payload%d", i)
		if err := waitVisible(c, flag, "set", deadline); err != nil {
			return err
		}
		if causal {
			if err := waitVisible(c, data, payload, time.Now().Add(grace)); err != nil {
				return fmt.Errorf("CAUSALITY VIOLATION: %s visible without %s (%v)", flag, data, err)
			}
			continue
		}
		// Eventual consistency promises visibility, not order: wait for
		// the data too instead of asserting it arrived first.
		if err := waitVisible(c, data, payload, deadline); err != nil {
			return err
		}
	}
	return nil
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
