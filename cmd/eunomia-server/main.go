// Command eunomia-server runs the Eunomia ordering service as a network
// daemon, the role the paper's standalone C++ service plays inside a
// datacenter: partitions stream timestamped operations and heartbeats to
// it over TCP (internal/transport), and it emits the site-stable, causally
// consistent total order.
//
//	eunomia-server -addr :7077 -partitions 8
//
// Stable operations are reported on stdout as a running rate; a real
// deployment would hook the shipping callback to its inter-datacenter
// replication channel.
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"eunomia/internal/eunomia"
	"eunomia/internal/transport"
	"eunomia/internal/types"
)

func main() {
	var (
		addr       = flag.String("addr", ":7077", "listen address")
		partitions = flag.Int("partitions", 8, "number of partition streams (stability waits for all)")
		stableIvl  = flag.Duration("stable-interval", time.Millisecond, "stabilization period θ")
		statsIvl   = flag.Duration("stats-interval", time.Second, "stats reporting period")
		tree       = flag.String("tree", "redblack", "pending-set structure: redblack|avl")
	)
	flag.Parse()

	kind := eunomia.RedBlack
	switch *tree {
	case "redblack":
	case "avl":
		kind = eunomia.AVL
	default:
		log.Fatalf("unknown -tree %q", *tree)
	}

	var shipped atomic.Int64
	cluster := eunomia.NewCluster(1, eunomia.Config{
		Partitions:     *partitions,
		StableInterval: *stableIvl,
		Tree:           kind,
	}, func(_ types.ReplicaID, ops []*types.Update) {
		shipped.Add(int64(len(ops)))
	})
	defer cluster.Stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := transport.Serve(ln, cluster.Replica(0))
	defer srv.Close()
	log.Printf("eunomia-server: serving %d partition streams on %s (θ=%v, %s tree)",
		*partitions, srv.Addr(), *stableIvl, *tree)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(*statsIvl)
	defer ticker.Stop()
	var last int64
	for {
		select {
		case <-stop:
			st := cluster.Replica(0).Stats()
			log.Printf("shutting down: %d ops ordered, %d batches, %d heartbeats, stable=%v",
				st.OpsShipped, st.Batches, st.Heartbeats, st.StableTime)
			return
		case <-ticker.C:
			cur := shipped.Load()
			st := cluster.Replica(0).Stats()
			log.Printf("ordered %d ops/s (total %d, pending %d, stable %v)",
				(cur-last)*int64(time.Second / *statsIvl), cur, st.Pending, st.StableTime)
			last = cur
		}
	}
}
