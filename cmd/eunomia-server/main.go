// Command eunomia-server runs EunomiaKV components as network daemons on
// the TCP fabric (internal/transport), the way the paper's prototype ran
// its standalone C++ service inside a datacenter.
//
// A process can host any role of a datacenter, so a full multi-process
// geo-replicated deployment is launched from the CLI alone:
//
//	# the classic standalone orderer: partitions stream timestamped
//	# operations and heartbeats to it, it emits the site-stable order
//	eunomia-server -role orderer -listen :7077 -partitions 8
//
//	# a two-datacenter cluster, one process per datacenter
//	eunomia-server -role dc -dc 0 -dcs 2 -listen :7100 -route dc1=hostB:7100
//	eunomia-server -role dc -dc 1 -dcs 2 -listen :7100 -route dc0=hostA:7100
//
//	# or split a datacenter by role across processes
//	eunomia-server -role partitions,eunomia -dc 0 ... -route dc0:receiver=...
//	eunomia-server -role receiver          -dc 0 ... -route dc0:partitions=...
//
// Routes name where remote endpoints live: "dcK=host:port" maps a whole
// datacenter to one process, "dcK:partitions=..." / "dcK:eunomia=..." /
// "dcK:receiver=..." map one role of it. Exact routes beat wildcards;
// reply routes are learned from connection hellos.
//
// The -demo flag drives a built-in causal workload for end-to-end smoke
// testing of a multi-process cluster: "write:N" issues N causally chained
// data/flag pairs, "watch:N" polls until every pair is visible and exits
// non-zero if a flag is ever visible without its causally preceding data.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"eunomia/internal/eunomia"
	"eunomia/internal/fabric"
	"eunomia/internal/geostore"
	"eunomia/internal/transport"
	"eunomia/internal/types"
)

func main() {
	var (
		role       = flag.String("role", "orderer", "orderer, dc, or a comma list of partitions,eunomia,receiver")
		dcID       = flag.Int("dc", 0, "this process's datacenter id")
		dcs        = flag.Int("dcs", 3, "number of datacenters in the deployment")
		partitions = flag.Int("partitions", 8, "partitions per datacenter")
		replicas   = flag.Int("replicas", 1, "Eunomia replicas per datacenter")
		listen     = flag.String("listen", ":7077", "fabric listen address")
		addr       = flag.String("addr", "", "legacy alias for -listen")
		advertise  = flag.String("advertise", "", "address peers dial to reach this process (default: listen address)")
		batchIvl   = flag.Duration("batch-interval", time.Millisecond, "partition→Eunomia propagation period")
		stableIvl  = flag.Duration("stable-interval", time.Millisecond, "stabilization period θ")
		checkIvl   = flag.Duration("check-interval", time.Millisecond, "receiver dependency-check period ρ")
		statsIvl   = flag.Duration("stats-interval", time.Second, "stats reporting period")
		tree       = flag.String("tree", "redblack", "pending-set structure: redblack|avl")
		demo       = flag.String("demo", "", `demo workload: "write:N" or "watch:N"`)
	)
	var routeSpecs []string
	flag.Func("route", `endpoint route, repeatable: "dc1=host:port" or "dc1:receiver=host:port"`, func(s string) error {
		routeSpecs = append(routeSpecs, s)
		return nil
	})
	flag.Parse()

	kind := eunomia.RedBlack
	switch *tree {
	case "redblack":
	case "avl":
		kind = eunomia.AVL
	default:
		log.Fatalf("unknown -tree %q", *tree)
	}
	if *addr != "" {
		listenSet := false
		flag.Visit(func(f *flag.Flag) { listenSet = listenSet || f.Name == "listen" })
		if listenSet {
			log.Fatal("-addr is a legacy alias for -listen; pass only one of them")
		}
		*listen = *addr
	}

	fab, err := transport.Listen(transport.Config{Listen: *listen, Advertise: *advertise})
	if err != nil {
		log.Fatal(err)
	}
	defer fab.Close()
	if err := applyRoutes(fab, routeSpecs, *partitions, *replicas); err != nil {
		log.Fatal(err)
	}

	if *role == "orderer" {
		runOrderer(fab, *dcID, *partitions, *replicas, *stableIvl, *statsIvl, kind)
		return
	}

	roles, err := parseRoles(*role)
	if err != nil {
		log.Fatal(err)
	}
	node := geostore.NewNode(geostore.NodeConfig{
		Config: geostore.Config{
			DCs:            *dcs,
			Partitions:     *partitions,
			Replicas:       *replicas,
			BatchInterval:  *batchIvl,
			StableInterval: *stableIvl,
			CheckInterval:  *checkIvl,
			Tree:           kind,
		},
		DC:        types.DCID(*dcID),
		Roles:     roles,
		Fabric:    fab,
		Pipelined: true,
	})
	defer node.Close()
	log.Printf("eunomia-server: dc%d role %s on %s (%d dcs × %d partitions, %d replicas)",
		*dcID, *role, fab.Addr(), *dcs, *partitions, *replicas)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	if strings.HasPrefix(*demo, "watch:") {
		n := demoCount(*demo)
		if err := demoWatch(node, n); err != nil {
			fmt.Println("demo: FAILED:", err)
			os.Exit(1)
		}
		fmt.Printf("demo: causal chain OK (%d pairs)\n", n)
		return
	}
	if strings.HasPrefix(*demo, "write:") {
		n := demoCount(*demo)
		demoWrite(node, n)
		fmt.Printf("demo: wrote %d causal data/flag pairs\n", n)
	}

	ticker := time.NewTicker(*statsIvl)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			log.Printf("shutting down dc%d", *dcID)
			return
		case <-ticker.C:
			logNodeStats(node, fab)
		}
	}
}

// runOrderer serves a bare ordering service: the role the original daemon
// played, now over the pipelined fabric protocol.
func runOrderer(fab *transport.TCP, dc, partitions, replicas int, stableIvl, statsIvl time.Duration, kind eunomia.TreeKind) {
	var shipped atomic.Int64
	cluster := eunomia.NewCluster(replicas, eunomia.Config{
		Partitions:     partitions,
		StableInterval: stableIvl,
		Tree:           kind,
	}, func(_ types.ReplicaID, ops []*types.Update) {
		shipped.Add(int64(len(ops)))
	})
	defer cluster.Stop()
	for r, rep := range cluster.Replicas() {
		fabric.ServeReplica(fab, fabric.EunomiaAddr(types.DCID(dc), types.ReplicaID(r)), rep)
	}
	log.Printf("eunomia-server: ordering %d partition streams on %s (θ=%v, %d replicas)",
		partitions, fab.Addr(), stableIvl, replicas)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(statsIvl)
	defer ticker.Stop()
	var last int64
	for {
		select {
		case <-stop:
			st := cluster.Replica(0).Stats()
			log.Printf("shutting down: %d ops ordered, %d batches, %d heartbeats, stable=%v",
				st.OpsShipped, st.Batches, st.Heartbeats, st.StableTime)
			return
		case <-ticker.C:
			cur := shipped.Load()
			st := cluster.Replica(0).Stats()
			log.Printf("ordered %d ops/s (total %d, pending %d, stable %v)",
				(cur-last)*int64(time.Second/statsIvl), cur, st.Pending, st.StableTime)
			last = cur
		}
	}
}

func parseRoles(s string) (geostore.Roles, error) {
	var roles geostore.Roles
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "dc":
			roles |= geostore.RoleAll
		case "partitions":
			roles |= geostore.RolePartitions
		case "eunomia":
			roles |= geostore.RoleEunomia
		case "receiver":
			roles |= geostore.RoleReceiver
		default:
			return 0, fmt.Errorf("unknown role %q (want dc, partitions, eunomia, receiver, orderer)", part)
		}
	}
	return roles, nil
}

// applyRoutes expands "dcK=hp" and "dcK:role=hp" specs into fabric routes.
func applyRoutes(fab *transport.TCP, specs []string, partitions, replicas int) error {
	for _, spec := range specs {
		target, hostport, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("bad -route %q (want dcK=host:port or dcK:role=host:port)", spec)
		}
		dcPart, rolePart, hasRole := strings.Cut(target, ":")
		if !strings.HasPrefix(dcPart, "dc") {
			return fmt.Errorf("bad -route target %q (want dcK...)", target)
		}
		dcN, err := strconv.Atoi(strings.TrimPrefix(dcPart, "dc"))
		if err != nil {
			return fmt.Errorf("bad -route datacenter in %q: %v", spec, err)
		}
		dc := types.DCID(dcN)
		if !hasRole {
			fab.AddDCRoute(dc, hostport)
			continue
		}
		switch rolePart {
		case "partitions":
			for p := 0; p < partitions; p++ {
				fab.AddRoute(fabric.PartitionAddr(dc, types.PartitionID(p)), hostport)
			}
		case "eunomia":
			for r := 0; r < replicas; r++ {
				fab.AddRoute(fabric.EunomiaAddr(dc, types.ReplicaID(r)), hostport)
			}
		case "receiver":
			fab.AddRoute(fabric.ReceiverAddr(dc), hostport)
		default:
			return fmt.Errorf("bad -route role %q in %q", rolePart, spec)
		}
	}
	return nil
}

func demoCount(s string) int {
	_, ns, _ := strings.Cut(s, ":")
	n, err := strconv.Atoi(ns)
	if err != nil || n <= 0 {
		log.Fatalf("bad -demo %q (want write:N or watch:N)", s)
	}
	return n
}

// demoWrite issues n causally chained data/flag pairs from one session:
// each flag causally follows its data, and each pair follows the previous.
func demoWrite(node *geostore.Node, n int) {
	c := node.NewClient()
	for i := 0; i < n; i++ {
		must(c.Update(types.Key(fmt.Sprintf("data%d", i)), []byte(fmt.Sprintf("payload%d", i))))
		must(c.Update(types.Key(fmt.Sprintf("flag%d", i)), []byte("set")))
	}
}

// demoWatch waits for every pair and verifies the causal invariant: a
// visible flag implies its data is visible.
func demoWatch(node *geostore.Node, n int) error {
	c := node.NewClient()
	deadline := time.Now().Add(2 * time.Minute)
	for i := 0; i < n; i++ {
		flag := types.Key(fmt.Sprintf("flag%d", i))
		data := types.Key(fmt.Sprintf("data%d", i))
		for {
			v, _ := c.Read(flag)
			if string(v) == "set" {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("timed out waiting for %s", flag)
			}
			time.Sleep(2 * time.Millisecond)
		}
		d, _ := c.Read(data)
		if string(d) != fmt.Sprintf("payload%d", i) {
			return fmt.Errorf("CAUSALITY VIOLATION: %s visible without %s", flag, data)
		}
	}
	return nil
}

func logNodeStats(node *geostore.Node, fab *transport.TCP) {
	var recvApplied int64
	if node.Receiver() != nil {
		recvApplied = node.Receiver().Applied.Load()
	}
	var stable string
	if node.Cluster() != nil {
		if l := node.Cluster().Leader(); l != nil {
			st := l.Stats()
			stable = fmt.Sprintf("stable=%s ordered=%d pending=%d", st.StableTime, st.OpsShipped, st.Pending)
		}
	}
	log.Printf("stats: local updates=%d, remote applied=%d, %s, fabric sent=%d delivered=%d dropped=%d",
		node.TotalUpdates(), recvApplied, stable, fab.Sent.Load(), fab.Delivered.Load(), fab.Dropped.Load())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
