package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"eunomia/internal/workload"
)

// fakeFrontdoor mimics the eunomia-server front door: a KV map plus a
// monotonically growing session token echoed back on every response.
func fakeFrontdoor(t *testing.T) *httptest.Server {
	t.Helper()
	var mu sync.Mutex
	kv := make(map[string][]byte)
	var seq int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := strings.TrimPrefix(r.URL.Path, "/kv/")
		mu.Lock()
		defer mu.Unlock()
		seq++
		w.Header().Set(sessionHeader, "cs1:s:"+strconv.FormatInt(int64(seq), 16))
		switch r.Method {
		case http.MethodGet:
			v, ok := kv[key]
			if !ok {
				http.Error(w, "no visible version", http.StatusNotFound)
				return
			}
			_, _ = w.Write(v)
		case http.MethodPut:
			body := make([]byte, r.ContentLength)
			_, _ = r.Body.Read(body)
			kv[key] = body
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "method", http.StatusMethodNotAllowed)
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestRunLoadSmoke(t *testing.T) {
	srv := fakeFrontdoor(t)
	rep := runLoad(context.Background(), srv.URL, workload.OpenConfig{
		Rate:     500,
		Duration: 300 * time.Millisecond,
		Warmup:   50 * time.Millisecond,
		Mix:      workload.Mix{ReadPct: 50},
		Keys:     workload.Uniform{N: 100},
		Workers:  16,
	})
	if rep.Completed == 0 {
		t.Fatal("no operations completed")
	}
	if rep.Errors != 0 {
		t.Fatalf("%d errors against a healthy fake", rep.Errors)
	}
	if rep.Backlog != 0 {
		t.Fatalf("backlog %d against an instantaneous fake", rep.Backlog)
	}
	if rep.P999Ms < rep.P50Ms {
		t.Fatalf("p999 %vms below p50 %vms", rep.P999Ms, rep.P50Ms)
	}
}

// TestSessionCarriesToken is the client half of the causal contract: the
// session must echo the latest token back on its next request.
func TestSessionCarriesToken(t *testing.T) {
	var got []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = append(got, r.Header.Get(sessionHeader))
		w.Header().Set(sessionHeader, "tok"+strconv.Itoa(len(got)))
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()
	s := &httpSession{base: srv.URL, hc: srv.Client()}
	for i := 0; i < 3; i++ {
		if err := s.Update("k", []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"", "tok1", "tok2"}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("request %d carried token %q, want %q", i, got[i], w)
		}
	}
}
