// Command eunomia-load drives a running eunomia-server front door
// (-frontend-addr) with the open-loop generator and reports
// coordinated-omission-safe latency percentiles.
//
//	# 2000 ops/s for 30s against a local front door, 90% reads
//	eunomia-load -target http://localhost:8080 -rate 2000 -duration 30s
//
// Operations are released on a fixed (or -arrival poisson) schedule that
// never waits for the store, and every latency sample is measured from
// the operation's scheduled arrival instant — so a store stall is charged
// to the tail instead of silently thinning the offered load (coordinated
// omission). Each worker is one causal session: it carries its
// X-Causal-Session token from response to request, exactly as a real
// client would. A nonzero backlog in the report means the offered rate
// exceeded capacity and the percentiles are a lower bound.
//
// The report is one JSON object on stdout (or -out), shaped for CI
// archiving (BENCH_ci.json).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"eunomia/internal/types"
	"eunomia/internal/workload"
)

func main() {
	var (
		target     = flag.String("target", "http://localhost:8080", "front-door base URL (an eunomia-server -frontend-addr endpoint)")
		rate       = flag.Float64("rate", 1000, "offered load in ops/sec")
		duration   = flag.Duration("duration", 10*time.Second, "measured window")
		warmup     = flag.Duration("warmup", time.Second, "unmeasured lead-in")
		readPct    = flag.Int("readpct", 90, "percentage of operations that are reads")
		keys       = flag.Uint64("keys", workload.DefaultKeys, "key-space size")
		dist       = flag.String("dist", "uniform", `key distribution: "uniform" or "zipf"`)
		valueBytes = flag.Int("value-bytes", workload.DefaultValueSize, "value size for writes")
		workers    = flag.Int("workers", 256, "concurrent sessions draining the schedule (bounds concurrency, not offered load)")
		arrival    = flag.String("arrival", "fixed", `inter-arrival process: "fixed" or "poisson"`)
		seed       = flag.Int64("seed", 42, "rng seed for the key/mix/arrival draws")
		out        = flag.String("out", "", "write the JSON report to this file instead of stdout")
	)
	flag.Parse()

	cfg := workload.OpenConfig{
		Rate:      *rate,
		Duration:  *duration,
		Warmup:    *warmup,
		Mix:       workload.Mix{ReadPct: *readPct},
		ValueSize: *valueBytes,
		Seed:      *seed,
		Workers:   *workers,
	}
	switch *dist {
	case "uniform":
		cfg.Keys = workload.Uniform{N: *keys}
	case "zipf":
		cfg.Keys = workload.NewPowerLaw(*keys)
	default:
		log.Fatalf("unknown -dist %q (want uniform or zipf)", *dist)
	}
	switch *arrival {
	case "fixed":
		cfg.Arrival = workload.ArrivalFixed
	case "poisson":
		cfg.Arrival = workload.ArrivalPoisson
	default:
		log.Fatalf("unknown -arrival %q (want fixed or poisson)", *arrival)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	rep := runLoad(ctx, *target, cfg)

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if rep.Backlog > 0 {
		fmt.Fprintf(os.Stderr, "warning: backlog %d — offered rate exceeded capacity; percentiles are a lower bound\n", rep.Backlog)
	}
	if rep.Completed == 0 {
		os.Exit(1)
	}
}

// report is the JSON shape archived by CI.
type report struct {
	Target   string  `json:"target"`
	Rate     float64 `json:"rate_ops"`
	Arrival  string  `json:"arrival"`
	Mix      string  `json:"mix"`
	Duration string  `json:"duration"`

	Offered   int64 `json:"offered"`
	Completed int64 `json:"completed"`
	Errors    int64 `json:"errors"`
	Backlog   int64 `json:"backlog"`

	ThroughputOps float64 `json:"throughput_ops"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	P999Ms        float64 `json:"p999_ms"`
	ServiceP50Ms  float64 `json:"service_p50_ms"`
	ServiceP99Ms  float64 `json:"service_p99_ms"`
}

// runLoad aims the open-loop generator at the front door and folds the
// result into the report shape.
func runLoad(ctx context.Context, target string, cfg workload.OpenConfig) report {
	base := strings.TrimSuffix(target, "/")
	// One transport shared by every session: connection pooling is the
	// client fleet's, concurrency is the workers'.
	tr := &http.Transport{MaxIdleConns: cfg.Workers, MaxIdleConnsPerHost: cfg.Workers}
	defer tr.CloseIdleConnections()
	res := workload.RunOpen(ctx, cfg, func(int) workload.Client {
		return &httpSession{base: base, hc: &http.Client{Transport: tr}}
	})
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return report{
		Target:        target,
		Rate:          cfg.Rate,
		Arrival:       cfg.Arrival.String(),
		Mix:           cfg.Mix.String(),
		Duration:      cfg.Duration.String(),
		Offered:       res.Offered,
		Completed:     res.Completed,
		Errors:        res.Errors,
		Backlog:       res.Backlog,
		ThroughputOps: res.Throughput(),
		P50Ms:         ms(res.P50()),
		P99Ms:         ms(res.P99()),
		P999Ms:        ms(res.P999()),
		ServiceP50Ms:  ms(time.Duration(res.ServiceLat.Percentile(50))),
		ServiceP99Ms:  ms(time.Duration(res.ServiceLat.Percentile(99))),
	}
}

// httpSession is one causal session against the front door: it carries
// its X-Causal-Session token from each response to the next request.
type httpSession struct {
	base  string
	hc    *http.Client
	token string
}

const sessionHeader = "X-Causal-Session"

func (s *httpSession) do(req *http.Request) (*http.Response, error) {
	if s.token != "" {
		req.Header.Set(sessionHeader, s.token)
	}
	resp, err := s.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if t := resp.Header.Get(sessionHeader); t != "" {
		s.token = t
	}
	return resp, nil
}

func (s *httpSession) Read(key types.Key) (types.Value, error) {
	req, err := http.NewRequest(http.MethodGet, s.base+"/kv/"+string(key), nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return body, nil
	case http.StatusNotFound:
		// A miss is a successful read of an unwritten key.
		return nil, nil
	default:
		return nil, fmt.Errorf("GET %s: %s: %s", key, resp.Status, strings.TrimSpace(string(body)))
	}
}

func (s *httpSession) Update(key types.Key, value types.Value) error {
	req, err := http.NewRequest(http.MethodPut, s.base+"/kv/"+string(key), strings.NewReader(string(value)))
	if err != nil {
		return err
	}
	resp, err := s.do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("PUT %s: %s: %s", key, resp.Status, strings.TrimSpace(string(body)))
	}
	return nil
}
