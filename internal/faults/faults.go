// Package faults is the deterministic fault-injection subsystem: a
// registry of named fault points woven through the existing layers
// (transport frames, WAL fsync, simnet links, whole processes), driven
// by a parsed, seeded schedule DSL in the spirit of wan.ParseTopology.
//
// A schedule is a ";"-joined list of timestamped events:
//
//	t=2s:partition dc0<-dc1; t=4s:heal; t=5s:crash partition@dc1; t=6s:fsync-err applier@dc0
//
// Actions:
//
//	partition dcA<-dcB    A hears nothing from B (one direction)
//	partition dcA<->dcB   neither direction delivers
//	heal                  clear partitions, frame faults, and blackholes
//	frames <dcN|*> drop=P%,dup=P%,corrupt=P%,delay=DUR
//	                      receiver-side faults on inbound cross-DC data
//	                      frames at the targeted datacenter (≥1 component)
//	conn-reset <dcN|*>    tear down every live connection once (peers
//	                      redial and retransmit their unacked windows)
//	blackhole <dcN|*>     the targeted datacenter's dials fail instantly
//	                      until heal (its inbound connections survive)
//	crash ROLE@dcN        fail-stop the process hosting ROLE at dcN
//	restart ROLE@dcN      restart it from its data dir (harness-driven)
//	stop ROLE@dcN         SIGSTOP it (alive but frozen)
//	cont ROLE@dcN         SIGCONT it
//	fsync-err COMP@dcN    every fsync of the component's WAL fails with
//	                      an injected ENOSPC until fsync-ok (components:
//	                      partition, applier, receiver)
//	fsync-ok COMP@dcN     disarm the injected fsync error
//
// Schedules round-trip through String, so a failing run's exact fault
// sequence can be replayed with -faults (cmd/eunomia-server) or fed back
// to a test verbatim. RandomSchedule draws a self-healing schedule from
// a Menu under one seed; harness.ChaosBench layers invariant checking on
// top.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"eunomia/internal/types"
)

// Kind enumerates the schedule event types.
type Kind int

const (
	// KindPartition cuts delivery From → To (and the reverse when Sym).
	KindPartition Kind = iota
	// KindHeal clears partitions, frame faults, and blackholes.
	KindHeal
	// KindFrames arms receiver-side frame faults at a datacenter.
	KindFrames
	// KindConnReset tears down live connections once.
	KindConnReset
	// KindBlackhole makes a datacenter's outbound dials fail.
	KindBlackhole
	// KindCrash fail-stops a process (SIGKILL semantics: no cleanup).
	KindCrash
	// KindRestart restarts a crashed process from its data dir.
	KindRestart
	// KindStop freezes a process (SIGSTOP: alive but silent).
	KindStop
	// KindCont resumes a stopped process (SIGCONT).
	KindCont
	// KindFsyncErr arms an injected fsync error on one WAL component.
	KindFsyncErr
	// KindFsyncOK disarms it.
	KindFsyncOK
)

func (k Kind) verb() string {
	switch k {
	case KindPartition:
		return "partition"
	case KindHeal:
		return "heal"
	case KindFrames:
		return "frames"
	case KindConnReset:
		return "conn-reset"
	case KindBlackhole:
		return "blackhole"
	case KindCrash:
		return "crash"
	case KindRestart:
		return "restart"
	case KindStop:
		return "stop"
	case KindCont:
		return "cont"
	case KindFsyncErr:
		return "fsync-err"
	case KindFsyncOK:
		return "fsync-ok"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// FrameFaults are receiver-side per-frame fault probabilities (each in
// [0,1)) plus an optional fixed dispatch delay, applied to inbound
// cross-datacenter data frames. Drop discards the frame (the transport
// still acknowledges it — loss is permanent at the fabric layer, exactly
// like a simnet SetDrop, and the protocols' own recovery paths must
// absorb it), Dup dispatches it twice (dedup layers must absorb it),
// Corrupt tears the connection down mid-stream (the sender reconnects
// and retransmits its unacknowledged window, which is what a framing
// checksum failure costs).
type FrameFaults struct {
	Drop    float64
	Dup     float64
	Corrupt float64
	Delay   time.Duration
}

// Zero reports whether no frame fault is armed.
func (ff FrameFaults) Zero() bool {
	return ff.Drop == 0 && ff.Dup == 0 && ff.Corrupt == 0 && ff.Delay == 0
}

func pct(p float64) string {
	return strconv.FormatFloat(p*100, 'g', -1, 64) + "%"
}

// String renders the spec form ("drop=5%,dup=2%,corrupt=1%,delay=10ms"),
// nonzero components only.
func (ff FrameFaults) String() string {
	var parts []string
	if ff.Drop > 0 {
		parts = append(parts, "drop="+pct(ff.Drop))
	}
	if ff.Dup > 0 {
		parts = append(parts, "dup="+pct(ff.Dup))
	}
	if ff.Corrupt > 0 {
		parts = append(parts, "corrupt="+pct(ff.Corrupt))
	}
	if ff.Delay > 0 {
		parts = append(parts, "delay="+ff.Delay.String())
	}
	return strings.Join(parts, ",")
}

// Event is one timestamped fault action.
type Event struct {
	// At is the event's offset from schedule start.
	At time.Duration
	// Kind selects the action; the remaining fields that matter depend
	// on it.
	Kind Kind

	// From and To are the partition endpoints: To hears nothing From
	// (i.e. "partition dcTo<-dcFrom"); Sym cuts both directions.
	From, To types.DCID
	Sym      bool

	// DC targets frames/conn-reset/blackhole at one datacenter, and
	// holds the "@dcN" of crash/restart/stop/cont/fsync events; All is
	// the "*" wildcard (frames/conn-reset/blackhole only).
	DC  types.DCID
	All bool

	// Frames carries the KindFrames fault rates.
	Frames FrameFaults

	// Target is the role (crash/restart/stop/cont) or WAL component
	// (fsync-err/fsync-ok) the event addresses.
	Target string
}

// String renders the event in schedule-spec form; ParseSchedule accepts
// the output verbatim.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%s:%s", e.At, e.Kind.verb())
	switch e.Kind {
	case KindPartition:
		arrow := "<-"
		if e.Sym {
			arrow = "<->"
		}
		fmt.Fprintf(&b, " dc%d%sdc%d", e.To, arrow, e.From)
	case KindHeal:
	case KindFrames:
		b.WriteString(" " + e.target() + " " + e.Frames.String())
	case KindConnReset, KindBlackhole:
		b.WriteString(" " + e.target())
	default:
		fmt.Fprintf(&b, " %s@dc%d", e.Target, e.DC)
	}
	return b.String()
}

func (e Event) target() string {
	if e.All {
		return "*"
	}
	return fmt.Sprintf("dc%d", e.DC)
}

// Schedule is a parsed fault schedule: events sorted by At (stable, so
// same-instant events keep their spec order).
type Schedule struct {
	Events []Event
}

// String renders the whole schedule as one ";"-joined spec that
// ParseSchedule accepts verbatim — every chaos failure report prints it.
func (s *Schedule) String() string {
	specs := make([]string, len(s.Events))
	for i, e := range s.Events {
		specs[i] = e.String()
	}
	return strings.Join(specs, "; ")
}

// ParseSchedule parses event specs (each possibly ";"-joined) into a
// Schedule.
func ParseSchedule(specs ...string) (*Schedule, error) {
	s := &Schedule{}
	for _, joined := range specs {
		for _, spec := range strings.Split(joined, ";") {
			spec = strings.TrimSpace(spec)
			if spec == "" {
				continue
			}
			e, err := parseEvent(spec)
			if err != nil {
				return nil, fmt.Errorf("faults: event %q: %w", spec, err)
			}
			s.Events = append(s.Events, e)
		}
	}
	if len(s.Events) == 0 {
		return nil, fmt.Errorf("faults: no events given")
	}
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].At < s.Events[j].At })
	return s, nil
}

func parseEvent(spec string) (Event, error) {
	var e Event
	ts, action, ok := strings.Cut(spec, ":")
	if !ok || !strings.HasPrefix(ts, "t=") {
		return e, fmt.Errorf(`want "t=<duration>:<action>"`)
	}
	at, err := time.ParseDuration(strings.TrimPrefix(ts, "t="))
	if err != nil || at < 0 {
		return e, fmt.Errorf("time %q: %v", ts, err)
	}
	e.At = at
	verb, rest, _ := strings.Cut(strings.TrimSpace(action), " ")
	rest = strings.TrimSpace(rest)
	switch verb {
	case "partition":
		return parsePartition(e, rest)
	case "heal":
		e.Kind = KindHeal
		if rest != "" {
			return e, fmt.Errorf("heal takes no operand (got %q)", rest)
		}
		return e, nil
	case "frames":
		e.Kind = KindFrames
		target, fr, ok := strings.Cut(rest, " ")
		if !ok {
			return e, fmt.Errorf(`want "frames <dcN|*> drop=P%%,dup=P%%,corrupt=P%%,delay=DUR"`)
		}
		if err := e.parseTarget(target); err != nil {
			return e, err
		}
		if e.Frames, err = parseFrameFaults(strings.TrimSpace(fr)); err != nil {
			return e, err
		}
		return e, nil
	case "conn-reset", "blackhole":
		e.Kind = KindConnReset
		if verb == "blackhole" {
			e.Kind = KindBlackhole
		}
		if rest == "" {
			return e, fmt.Errorf(`want "%s <dcN|*>"`, verb)
		}
		return e, e.parseTarget(rest)
	case "crash", "restart", "stop", "cont", "fsync-err", "fsync-ok":
		switch verb {
		case "crash":
			e.Kind = KindCrash
		case "restart":
			e.Kind = KindRestart
		case "stop":
			e.Kind = KindStop
		case "cont":
			e.Kind = KindCont
		case "fsync-err":
			e.Kind = KindFsyncErr
		case "fsync-ok":
			e.Kind = KindFsyncOK
		}
		name, dc, ok := strings.Cut(rest, "@")
		if !ok || name == "" {
			return e, fmt.Errorf(`want "%s <target>@dcN"`, verb)
		}
		if e.DC, err = parseDC(dc); err != nil {
			return e, fmt.Errorf("datacenter %q: want dcN", dc)
		}
		if e.Kind == KindFsyncErr || e.Kind == KindFsyncOK {
			switch name {
			case "partition", "applier", "receiver":
			default:
				return e, fmt.Errorf("component %q: want partition, applier, or receiver", name)
			}
		}
		e.Target = name
		return e, nil
	}
	return e, fmt.Errorf("unknown action %q", verb)
}

func parsePartition(e Event, rest string) (Event, error) {
	e.Kind = KindPartition
	arrow, sym := "<-", false
	if strings.Contains(rest, "<->") {
		arrow, sym = "<->", true
	}
	ts, fs, ok := strings.Cut(rest, arrow)
	if !ok {
		return e, fmt.Errorf(`want "partition dcA<-dcB" (A hears nothing from B) or "dcA<->dcB"`)
	}
	to, err1 := parseDC(ts)
	from, err2 := parseDC(fs)
	if err1 != nil || err2 != nil {
		return e, fmt.Errorf("pair %q: want numeric datacenter ids", rest)
	}
	if to == from {
		return e, fmt.Errorf("pair %q: cannot partition a datacenter from itself", rest)
	}
	e.To, e.From, e.Sym = to, from, sym
	return e, nil
}

func (e *Event) parseTarget(s string) error {
	s = strings.TrimSpace(s)
	if s == "*" {
		e.All = true
		return nil
	}
	dc, err := parseDC(s)
	if err != nil {
		return fmt.Errorf("target %q: want dcN or *", s)
	}
	e.DC = dc
	return nil
}

func parseDC(s string) (types.DCID, error) {
	s = strings.TrimPrefix(strings.TrimSpace(s), "dc")
	v, err := strconv.ParseUint(s, 10, 32)
	return types.DCID(v), err
}

func parseFrameFaults(s string) (FrameFaults, error) {
	var ff FrameFaults
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return ff, fmt.Errorf(`component %q: want "drop=P%%", "dup=P%%", "corrupt=P%%", or "delay=DUR"`, part)
		}
		switch k {
		case "drop", "dup", "corrupt":
			p, err := parsePct(v)
			if err != nil {
				return ff, fmt.Errorf("%s %q: %v", k, v, err)
			}
			switch k {
			case "drop":
				ff.Drop = p
			case "dup":
				ff.Dup = p
			case "corrupt":
				ff.Corrupt = p
			}
		case "delay":
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 {
				return ff, fmt.Errorf("delay %q: %v", v, err)
			}
			ff.Delay = d
		default:
			return ff, fmt.Errorf("unknown component %q", k)
		}
	}
	if ff.Zero() {
		return ff, fmt.Errorf("want at least one nonzero component")
	}
	return ff, nil
}

func parsePct(s string) (float64, error) {
	p, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil || p < 0 || p >= 100 {
		return 0, fmt.Errorf("want a percentage in [0,100)")
	}
	return p / 100, nil
}

// Point is one named fault point woven into a layer. The table is the
// authoritative registry of where the injector can reach; DESIGN.md's
// fault-model section documents every entry (enforced by a test).
type Point struct {
	// Name identifies the point ("transport/frame-drop").
	Name string
	// Layer is the package that hosts the weave.
	Layer string
	// Effect summarizes what firing the point does.
	Effect string
}

// Points returns the registry of named fault points, the woven layers in
// dependency order.
func Points() []Point {
	return []Point{
		{"transport/frame-drop", "transport", "discard an inbound cross-DC data frame (still acknowledged: fabric-level loss, like simnet SetDrop)"},
		{"transport/frame-dup", "transport", "dispatch an inbound cross-DC data frame twice"},
		{"transport/frame-corrupt", "transport", "tear down the connection mid-stream (checksum-failure semantics; sender retransmits unacked frames)"},
		{"transport/frame-delay", "transport", "hold an inbound cross-DC data frame before dispatch"},
		{"transport/conn-reset", "transport", "close every live connection once (peers redial, retransmit)"},
		{"transport/dial-blackhole", "transport", "fail every outbound dial until healed"},
		{"transport/partition", "transport", "drop every inbound frame from a cut datacenter"},
		{"wal/fsync", "wal", "fail the component's fsync with injected ENOSPC (sticky sync error, surfaced on /healthz and metrics)"},
		{"simnet/partition", "simnet", "asymmetric one-direction SetDrop between endpoint sets"},
		{"simnet/duplicate", "simnet", "deliver cross-DC frames twice (SetDuplicate)"},
		{"process/crash", "process", "SIGKILL-style fail-stop; restart recovers from the data dir (torn WAL tail)"},
		{"process/stop", "process", "SIGSTOP: alive but frozen; peers suspend sends until SIGCONT"},
	}
}
