package faults

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"eunomia/internal/types"
)

// ErrInjected is the fsync error the injector arms: a synthetic
// full-disk. Callers distinguish it from real disk trouble by
// errors.Is(err, faults.ErrInjected); it still unwraps to ENOSPC so the
// code under test takes its genuine error path.
var ErrInjected = fmt.Errorf("faults: injected fsync error: %w", syscall.ENOSPC)

// Fate is the injector's verdict on one inbound frame.
type Fate int

const (
	// FateDeliver dispatches the frame normally.
	FateDeliver Fate = iota
	// FateDrop discards it (still acknowledged — fabric-level loss).
	FateDrop
	// FateDup dispatches it twice.
	FateDup
	// FateCorrupt tears the connection down (sender retransmits).
	FateCorrupt
)

// Injector is one process's armed fault state: the woven layers consult
// it on their hot paths (a single atomic load when nothing is armed),
// tests and the -faults schedule runner arm and disarm it. All
// randomness comes from one seeded PRNG, so a schedule replay under the
// same seed makes the same per-frame decisions in the same consult
// order.
type Injector struct {
	// armed counts armed fault groups; the hot-path consults return
	// immediately while it is zero.
	armed atomic.Int32

	mu        sync.Mutex
	rng       *rand.Rand
	cutFrom   map[types.DCID]bool // inbound frames from these DCs are dropped
	frames    FrameFaults
	hasFrames bool
	blackhole bool
	fsync     map[string]error // WAL component → injected sync error
	onReset   []func()
}

// NewInjector builds an injector whose frame-fault decisions replay
// under the given seed.
func NewInjector(seed int64) *Injector {
	return &Injector{
		rng:     rand.New(rand.NewSource(seed)),
		cutFrom: make(map[types.DCID]bool),
		fsync:   make(map[string]error),
	}
}

// enabled is the hot-path gate: true when any fault is armed.
func (i *Injector) enabled() bool { return i != nil && i.armed.Load() > 0 }

// rearm recomputes the armed count under i.mu.
func (i *Injector) rearmLocked() {
	var n int32
	if len(i.cutFrom) > 0 {
		n++
	}
	if i.hasFrames {
		n++
	}
	if i.blackhole {
		n++
	}
	if len(i.fsync) > 0 {
		n++
	}
	i.armed.Store(n)
}

// Cut arms (or disarms) the inbound half of a partition: every frame
// from the given datacenter is dropped. "partition dcA<-dcB" arms
// Cut(B) on dcA's process; the symmetric form arms both processes.
func (i *Injector) Cut(from types.DCID, cut bool) {
	i.mu.Lock()
	if cut {
		i.cutFrom[from] = true
	} else {
		delete(i.cutFrom, from)
	}
	i.rearmLocked()
	i.mu.Unlock()
}

// SetFrames arms receiver-side frame faults for inbound cross-DC data
// frames at this process.
func (i *Injector) SetFrames(ff FrameFaults) {
	i.mu.Lock()
	i.frames, i.hasFrames = ff, !ff.Zero()
	i.rearmLocked()
	i.mu.Unlock()
}

// SetBlackhole arms (or disarms) the dial blackhole: every outbound
// connection attempt from this process fails instantly.
func (i *Injector) SetBlackhole(on bool) {
	i.mu.Lock()
	i.blackhole = on
	i.rearmLocked()
	i.mu.Unlock()
}

// Heal clears partitions, frame faults, and the blackhole — the "heal"
// schedule event. Armed fsync errors persist (disk faults do not heal
// with the network; disarm them with fsync-ok).
func (i *Injector) Heal() {
	i.mu.Lock()
	i.cutFrom = make(map[types.DCID]bool)
	i.frames, i.hasFrames = FrameFaults{}, false
	i.blackhole = false
	i.rearmLocked()
	i.mu.Unlock()
}

// FrameFate decides one inbound cross-DC data frame's fate plus an
// optional dispatch delay. The transport consults it after WAN shaping
// and before dedup/dispatch.
func (i *Injector) FrameFate(from, to types.DCID) (Fate, time.Duration) {
	if !i.enabled() {
		return FateDeliver, 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.cutFrom[from] {
		return FateDrop, 0
	}
	if !i.hasFrames {
		return FateDeliver, 0
	}
	ff := i.frames
	fate := FateDeliver
	// One draw decides among the exclusive fates; delay applies to
	// whatever survives.
	if p := i.rng.Float64(); p < ff.Drop {
		return FateDrop, 0
	} else if p < ff.Drop+ff.Corrupt {
		return FateCorrupt, 0
	} else if p < ff.Drop+ff.Corrupt+ff.Dup {
		fate = FateDup
	}
	return fate, ff.Delay
}

// DialBlackholed reports whether outbound dials are blackholed.
func (i *Injector) DialBlackholed() bool {
	if !i.enabled() {
		return false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.blackhole
}

// ArmFsync makes every fsync of the named WAL component fail with err
// (ErrInjected when nil) until DisarmFsync.
func (i *Injector) ArmFsync(component string, err error) {
	if err == nil {
		err = ErrInjected
	}
	i.mu.Lock()
	i.fsync[component] = err
	i.rearmLocked()
	i.mu.Unlock()
}

// DisarmFsync clears the component's injected fsync error. The sync
// error already made sticky by a WAL remains — recovery is disarm, then
// crash and restart the node, exactly like swapping a full disk.
func (i *Injector) DisarmFsync(component string) {
	i.mu.Lock()
	delete(i.fsync, component)
	i.rearmLocked()
	i.mu.Unlock()
}

// FsyncErr returns the armed fsync error for a WAL component, nil when
// none. Safe on a nil injector, so WALs consult it unconditionally.
func (i *Injector) FsyncErr(component string) error {
	if !i.enabled() {
		return nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.fsync[component]
}

// InjectSyncFunc adapts FsyncErr to the wal.Options.InjectSync seam for
// one component; nil injector yields nil (no consult at all).
func (i *Injector) InjectSyncFunc(component string) func() error {
	if i == nil {
		return nil
	}
	return func() error { return i.FsyncErr(component) }
}

// OnConnReset registers a callback TriggerConnReset fires; the transport
// hangs its break-every-connection hook here at Listen time.
func (i *Injector) OnConnReset(fn func()) {
	i.mu.Lock()
	i.onReset = append(i.onReset, fn)
	i.mu.Unlock()
}

// TriggerConnReset fires every registered conn-reset callback once (the
// "conn-reset" schedule event).
func (i *Injector) TriggerConnReset() {
	i.mu.Lock()
	fns := append([]func(){}, i.onReset...)
	i.mu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

// Directive is a process-level action Actuate cannot perform from
// inside the process alone; the caller (the -faults schedule runner)
// carries it out.
type Directive int

const (
	// DirectiveNone — the event was absorbed into injector state.
	DirectiveNone Directive = iota
	// DirectiveKill — fail-stop now (exit without cleanup).
	DirectiveKill
	// DirectiveStop — freeze (SIGSTOP self; an external SIGCONT resumes).
	DirectiveStop
)

// Actuate applies one schedule event to this process's injector, given
// the process's own datacenter and a predicate for the roles/components
// it hosts (nil hasRole matches everything). Events addressed elsewhere
// are no-ops. Crash and stop come back as directives; restart and cont
// are inherently external (a dead or frozen process cannot act) and are
// ignored here — the multi-process harness drives them.
func (i *Injector) Actuate(e Event, self types.DCID, hasRole func(string) bool) Directive {
	match := func(target string) bool {
		return e.DC == self && (hasRole == nil || hasRole(target))
	}
	switch e.Kind {
	case KindPartition:
		if e.To == self {
			i.Cut(e.From, true)
		}
		if e.Sym && e.From == self {
			i.Cut(e.To, true)
		}
	case KindHeal:
		i.Heal()
	case KindFrames:
		if e.All || e.DC == self {
			i.SetFrames(e.Frames)
		}
	case KindConnReset:
		if e.All || e.DC == self {
			i.TriggerConnReset()
		}
	case KindBlackhole:
		if e.All || e.DC == self {
			i.SetBlackhole(true)
		}
	case KindCrash:
		if match(e.Target) {
			return DirectiveKill
		}
	case KindStop:
		if match(e.Target) {
			return DirectiveStop
		}
	case KindFsyncErr:
		if match(e.Target) {
			i.ArmFsync(e.Target, nil)
		}
	case KindFsyncOK:
		if match(e.Target) {
			i.DisarmFsync(e.Target)
		}
	case KindRestart, KindCont:
		// Harness-driven: nothing a live in-process injector can do.
	}
	return DirectiveNone
}
