package faults

import (
	"math/rand"
	"sort"
	"time"

	"eunomia/internal/types"
)

// Menu bounds what RandomSchedule may draw: the fault kinds the system
// under test is expected to tolerate (a fire-and-forget baseline is not
// chased with frame drops it never promised to survive), the targets
// that exist in the deployment, and the schedule horizon.
type Menu struct {
	// DCs is the datacenter count partitions are drawn over.
	DCs int
	// Duration is the schedule horizon; every fault is injected and
	// undone within it (self-healing schedules — the invariant check
	// runs against a healed cluster).
	Duration time.Duration
	// Episodes is how many fault episodes to draw (default 3).
	Episodes int

	// Partition enables one- and two-direction datacenter cuts.
	Partition bool
	// Frames, when nonzero, bounds per-frame fault rates: each frames
	// episode draws rates uniformly in (0, max].
	Frames FrameFaults
	// ConnReset enables one-shot connection teardowns.
	ConnReset bool
	// Blackhole enables dial blackholes (healed like partitions).
	Blackhole bool
	// Crash lists "role@dcN" targets eligible for crash→restart
	// episodes.
	Crash []string
	// Stop lists "role@dcN" targets eligible for stop→cont episodes.
	Stop []string
	// Fsync lists "component@dcN" targets eligible for
	// fsync-err→fsync-ok→crash→restart episodes (the full
	// swap-the-disk recovery story).
	Fsync []string
}

func (m Menu) kinds() []Kind {
	var ks []Kind
	if m.Partition && m.DCs > 1 {
		ks = append(ks, KindPartition)
	}
	if !m.Frames.Zero() {
		ks = append(ks, KindFrames)
	}
	if m.ConnReset {
		ks = append(ks, KindConnReset)
	}
	if m.Blackhole {
		ks = append(ks, KindBlackhole)
	}
	if len(m.Crash) > 0 {
		ks = append(ks, KindCrash)
	}
	if len(m.Stop) > 0 {
		ks = append(ks, KindStop)
	}
	if len(m.Fsync) > 0 {
		ks = append(ks, KindFsyncErr)
	}
	return ks
}

// RandomSchedule draws a self-healing fault schedule from the menu under
// one seed: every partition/blackhole/frames episode ends in a heal,
// every crash in a restart, every stop in a cont, every fsync-err in a
// fsync-ok plus a crash→restart of the owning node (a sticky sync error
// survives disarming — recovery is a disk swap plus a restart). The same
// (seed, menu) pair yields the identical schedule, and the schedule's
// String() round-trips through ParseSchedule, so one seed is a complete
// reproduction recipe. Times are quantized to 1ms.
func RandomSchedule(seed int64, m Menu) *Schedule {
	rng := rand.New(rand.NewSource(seed))
	if m.Episodes <= 0 {
		m.Episodes = 3
	}
	if m.Duration <= 0 {
		m.Duration = 10 * time.Second
	}
	kinds := m.kinds()
	s := &Schedule{}
	if len(kinds) == 0 {
		return s
	}
	// Each episode starts in the first 60% of the horizon and is undone
	// by the 85% mark, leaving the tail for the cluster to re-converge
	// before invariants are checked.
	quant := func(d time.Duration) time.Duration { return d.Round(time.Millisecond) }
	start := func() time.Duration {
		return quant(time.Duration(rng.Int63n(int64(m.Duration) * 6 / 10)))
	}
	endBy := m.Duration * 85 / 100
	until := func(from time.Duration) time.Duration {
		span := int64(endBy - from)
		if span <= int64(time.Millisecond) {
			// from is already at the undo deadline (rounding can push it
			// past endBy): the undo still lands strictly after its cause
			// — chained undos (fsync-ok → crash → restart) must not sort
			// ahead of it.
			return quant(from + time.Millisecond)
		}
		return quant(from + time.Duration(rng.Int63n(span)) + time.Millisecond)
	}
	pick := func(list []string) string { return list[rng.Intn(len(list))] }
	splitTarget := func(tgt string) (string, Event) {
		e, err := parseEvent("t=0s:crash " + tgt)
		if err != nil {
			panic("faults: bad menu target " + tgt + ": " + err.Error())
		}
		return e.Target, e
	}
	for ep := 0; ep < m.Episodes; ep++ {
		k := kinds[rng.Intn(len(kinds))]
		at := start()
		switch k {
		case KindPartition:
			a := rng.Intn(m.DCs)
			b := rng.Intn(m.DCs - 1)
			if b >= a {
				b++
			}
			s.Events = append(s.Events,
				Event{At: at, Kind: KindPartition, To: dcid(a), From: dcid(b), Sym: rng.Intn(2) == 0},
				Event{At: until(at), Kind: KindHeal})
		case KindFrames:
			draw := func(max float64) float64 {
				if max == 0 {
					return 0
				}
				return max * (0.1 + 0.9*rng.Float64())
			}
			ff := FrameFaults{Drop: draw(m.Frames.Drop), Dup: draw(m.Frames.Dup), Corrupt: draw(m.Frames.Corrupt)}
			if m.Frames.Delay > 0 {
				ff.Delay = quant(time.Duration(rng.Int63n(int64(m.Frames.Delay))) + time.Millisecond)
			}
			e := Event{At: at, Kind: KindFrames, Frames: ff}
			if rng.Intn(2) == 0 || m.DCs < 2 {
				e.All = true
			} else {
				e.DC = dcid(rng.Intn(m.DCs))
			}
			s.Events = append(s.Events, e, Event{At: until(at), Kind: KindHeal})
		case KindConnReset:
			e := Event{At: at, Kind: KindConnReset, All: true}
			if m.DCs > 1 && rng.Intn(2) == 0 {
				e.All, e.DC = false, dcid(rng.Intn(m.DCs))
			}
			s.Events = append(s.Events, e)
		case KindBlackhole:
			e := Event{At: at, Kind: KindBlackhole, All: true}
			if m.DCs > 1 && rng.Intn(2) == 0 {
				e.All, e.DC = false, dcid(rng.Intn(m.DCs))
			}
			s.Events = append(s.Events, e, Event{At: until(at), Kind: KindHeal})
		case KindCrash:
			_, e := splitTarget(pick(m.Crash))
			e.At, e.Kind = at, KindCrash
			back := e
			back.At, back.Kind = until(at), KindRestart
			s.Events = append(s.Events, e, back)
		case KindStop:
			_, e := splitTarget(pick(m.Stop))
			e.At, e.Kind = at, KindStop
			back := e
			back.At, back.Kind = until(at), KindCont
			s.Events = append(s.Events, e, back)
		case KindFsyncErr:
			_, e := splitTarget(pick(m.Fsync))
			e.At, e.Kind = at, KindFsyncErr
			off := e
			off.At, off.Kind = until(at), KindFsyncOK
			// The sticky sync error outlives the disarm: crash and
			// restart the owning node to actually recover, torn WAL
			// tail and all.
			crash := Event{At: off.At, Kind: KindCrash, DC: e.DC, Target: "partition"}
			restart := Event{At: until(off.At), Kind: KindRestart, DC: e.DC, Target: "partition"}
			s.Events = append(s.Events, e, off, crash, restart)
		}
	}
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].At < s.Events[j].At })
	return s
}

func dcid(n int) types.DCID { return types.DCID(n) }
