package faults

import (
	"errors"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestParseScheduleRoundTrip(t *testing.T) {
	spec := "t=2s:partition dc0<-dc1; t=2500ms:frames dc2 drop=5%,dup=2%,corrupt=0.5%,delay=10ms; " +
		"t=3s:conn-reset *; t=3s:blackhole dc1; t=4s:heal; t=5s:crash partition@dc1; " +
		"t=5500ms:stop receiver@dc0; t=5600ms:cont receiver@dc0; t=6s:fsync-err applier@dc0; " +
		"t=7s:fsync-ok applier@dc0; t=8s:restart partition@dc1"
	s, err := ParseSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 11 {
		t.Fatalf("got %d events, want 11", len(s.Events))
	}
	// String must re-parse to the same schedule (the repro contract).
	again, err := ParseSchedule(s.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", s.String(), err)
	}
	if got, want := again.String(), s.String(); got != want {
		t.Fatalf("round trip changed the schedule:\n got %s\nwant %s", got, want)
	}
	e := s.Events[0]
	if e.Kind != KindPartition || e.To != 0 || e.From != 1 || e.Sym {
		t.Fatalf("partition event parsed wrong: %+v", e)
	}
	ff := s.Events[1].Frames
	if ff.Drop != 0.05 || ff.Dup != 0.02 || ff.Corrupt != 0.005 || ff.Delay != 10*time.Millisecond {
		t.Fatalf("frame faults parsed wrong: %+v", ff)
	}
}

func TestParseScheduleSorted(t *testing.T) {
	s, err := ParseSchedule("t=4s:heal", "t=2s:partition dc0<->dc1")
	if err != nil {
		t.Fatal(err)
	}
	if s.Events[0].Kind != KindPartition || !s.Events[0].Sym || s.Events[1].Kind != KindHeal {
		t.Fatalf("events not sorted by time: %s", s)
	}
}

func TestParseScheduleRejects(t *testing.T) {
	bad := []string{
		"partition dc0<-dc1",         // no t=
		"t=2s partition dc0<-dc1",    // no colon
		"t=-1s:heal",                 // negative time
		"t=1s:heal dc0",              // heal takes no operand
		"t=1s:partition dc0<-dc0",    // self-partition
		"t=1s:partition dc0",         // no arrow
		"t=1s:frames dc0",            // no fault components
		"t=1s:frames dc0 drop=150%",  // out-of-range percentage
		"t=1s:frames dc0 warp=1%",    // unknown component
		"t=1s:conn-reset",            // missing target
		"t=1s:blackhole dcX",         // bad dc
		"t=1s:crash partition",       // missing @dc
		"t=1s:fsync-err shipper@dc0", // unknown WAL component
		"t=1s:meteor-strike dc0",     // unknown action
		"",                           // empty schedule
	}
	for _, spec := range bad {
		if _, err := ParseSchedule(spec); err == nil {
			t.Errorf("ParseSchedule(%q) accepted, want error", spec)
		}
	}
}

func TestRandomScheduleDeterministicAndSelfHealing(t *testing.T) {
	menu := Menu{
		DCs: 3, Duration: 10 * time.Second, Episodes: 6,
		Partition: true,
		Frames:    FrameFaults{Drop: 0.1, Dup: 0.05, Corrupt: 0.01, Delay: 20 * time.Millisecond},
		ConnReset: true, Blackhole: true,
		Crash: []string{"partition@dc0"}, Stop: []string{"receiver@dc0"},
		Fsync: []string{"partition@dc0"},
	}
	for seed := int64(1); seed <= 20; seed++ {
		s := RandomSchedule(seed, menu)
		if len(s.Events) == 0 {
			t.Fatalf("seed %d: empty schedule", seed)
		}
		if got := RandomSchedule(seed, menu).String(); got != s.String() {
			t.Fatalf("seed %d not deterministic:\n%s\n%s", seed, s, got)
		}
		// The repro contract: the printed schedule re-parses identically.
		again, err := ParseSchedule(s.String())
		if err != nil {
			t.Fatalf("seed %d: re-parse: %v\n%s", seed, err, s)
		}
		if again.String() != s.String() {
			t.Fatalf("seed %d: round trip changed the schedule", seed)
		}
		// Self-healing: every disruptive event is undone strictly before
		// the horizon, so the invariant check runs against a healed
		// cluster.
		for _, e := range s.Events {
			if e.At > menu.Duration {
				t.Fatalf("seed %d: event past the horizon: %s", seed, e)
			}
			switch e.Kind {
			case KindPartition, KindBlackhole, KindFrames:
				if !healedAfter(s, e.At, KindHeal, "") {
					t.Fatalf("seed %d: %s never healed\n%s", seed, e, s)
				}
			case KindCrash:
				if !healedAfter(s, e.At, KindRestart, e.Target) {
					t.Fatalf("seed %d: %s never restarted\n%s", seed, e, s)
				}
			case KindStop:
				if !healedAfter(s, e.At, KindCont, e.Target) {
					t.Fatalf("seed %d: %s never resumed\n%s", seed, e, s)
				}
			case KindFsyncErr:
				if !healedAfter(s, e.At, KindFsyncOK, e.Target) {
					t.Fatalf("seed %d: %s never disarmed\n%s", seed, e, s)
				}
			}
		}
	}
	if RandomSchedule(1, menu).String() == RandomSchedule(2, menu).String() {
		t.Fatal("seeds 1 and 2 drew identical schedules")
	}
}

func healedAfter(s *Schedule, at time.Duration, kind Kind, target string) bool {
	for _, e := range s.Events {
		if e.At >= at && e.Kind == kind && (target == "" || e.Target == target) {
			return true
		}
	}
	return false
}

func TestInjectorFrameFate(t *testing.T) {
	inj := NewInjector(42)
	if f, _ := inj.FrameFate(0, 1); f != FateDeliver {
		t.Fatal("unarmed injector must deliver")
	}
	inj.SetFrames(FrameFaults{Drop: 0.5})
	drops := 0
	for n := 0; n < 1000; n++ {
		if f, _ := inj.FrameFate(0, 1); f == FateDrop {
			drops++
		}
	}
	if drops < 400 || drops > 600 {
		t.Fatalf("drop=50%% produced %d/1000 drops", drops)
	}
	// Same seed, same consult order → same decisions.
	a, b := NewInjector(7), NewInjector(7)
	a.SetFrames(FrameFaults{Drop: 0.3, Dup: 0.3, Corrupt: 0.1, Delay: time.Millisecond})
	b.SetFrames(FrameFaults{Drop: 0.3, Dup: 0.3, Corrupt: 0.1, Delay: time.Millisecond})
	for n := 0; n < 200; n++ {
		fa, da := a.FrameFate(1, 0)
		fb, db := b.FrameFate(1, 0)
		if fa != fb || da != db {
			t.Fatalf("consult %d diverged under one seed: (%v,%v) vs (%v,%v)", n, fa, da, fb, db)
		}
	}
	inj.Heal()
	if f, _ := inj.FrameFate(0, 1); f != FateDeliver {
		t.Fatal("healed injector must deliver")
	}
}

func TestInjectorCutAndHeal(t *testing.T) {
	inj := NewInjector(1)
	inj.Cut(2, true)
	if f, _ := inj.FrameFate(2, 0); f != FateDrop {
		t.Fatal("cut sender must be dropped")
	}
	if f, _ := inj.FrameFate(1, 0); f != FateDeliver {
		t.Fatal("uncut sender must deliver")
	}
	inj.Heal()
	if f, _ := inj.FrameFate(2, 0); f != FateDeliver {
		t.Fatal("heal must clear the cut")
	}
}

func TestInjectorFsync(t *testing.T) {
	inj := NewInjector(1)
	if err := inj.FsyncErr("partition"); err != nil {
		t.Fatal(err)
	}
	inj.ArmFsync("partition", nil)
	err := inj.FsyncErr("partition")
	if !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("armed error %v must wrap ErrInjected and ENOSPC", err)
	}
	if err := inj.FsyncErr("receiver"); err != nil {
		t.Fatalf("other components unaffected, got %v", err)
	}
	// The network heal must NOT clear a disk fault.
	inj.Heal()
	if inj.FsyncErr("partition") == nil {
		t.Fatal("Heal cleared an armed fsync error")
	}
	inj.DisarmFsync("partition")
	if err := inj.FsyncErr("partition"); err != nil {
		t.Fatal(err)
	}
	var nilInj *Injector
	if nilInj.FsyncErr("partition") != nil || nilInj.InjectSyncFunc("partition") != nil {
		t.Fatal("nil injector must be inert")
	}
}

func TestActuateRouting(t *testing.T) {
	mustEvent := func(spec string) Event {
		s, err := ParseSchedule(spec)
		if err != nil {
			t.Fatal(err)
		}
		return s.Events[0]
	}
	inj := NewInjector(1)
	hasRole := func(r string) bool { return r == "partition" }

	// partition dc0<-dc1 arms only dc0's cut-from-1.
	e := mustEvent("t=1s:partition dc0<-dc1")
	inj.Actuate(e, 0, hasRole)
	if f, _ := inj.FrameFate(1, 0); f != FateDrop {
		t.Fatal("receiver side of the cut not armed")
	}
	other := NewInjector(2)
	other.Actuate(e, 1, hasRole)
	if f, _ := other.FrameFate(0, 1); f != FateDeliver {
		t.Fatal("one-direction cut armed the reverse direction")
	}
	// The symmetric form arms both.
	other.Actuate(mustEvent("t=1s:partition dc0<->dc1"), 1, hasRole)
	if f, _ := other.FrameFate(0, 1); f != FateDrop {
		t.Fatal("symmetric cut did not arm dc1")
	}

	// Crash comes back as a directive only on the matching dc+role.
	crash := mustEvent("t=1s:crash partition@dc1")
	if d := inj.Actuate(crash, 0, hasRole); d != DirectiveNone {
		t.Fatalf("crash@dc1 actuated at dc0: %v", d)
	}
	if d := inj.Actuate(crash, 1, hasRole); d != DirectiveKill {
		t.Fatalf("crash@dc1 at dc1 → %v, want DirectiveKill", d)
	}
	if d := inj.Actuate(mustEvent("t=1s:stop receiver@dc1"), 1, hasRole); d != DirectiveNone {
		t.Fatal("stop for an unhosted role actuated")
	}

	// fsync-err routes to the injector's fsync table.
	inj.Actuate(mustEvent("t=1s:fsync-err partition@dc0"), 0, hasRole)
	if inj.FsyncErr("partition") == nil {
		t.Fatal("fsync-err did not arm")
	}
	inj.Actuate(mustEvent("t=2s:fsync-ok partition@dc0"), 0, hasRole)
	if inj.FsyncErr("partition") != nil {
		t.Fatal("fsync-ok did not disarm")
	}

	// conn-reset fires registered callbacks, wildcard or matching dc.
	fired := 0
	inj.OnConnReset(func() { fired++ })
	inj.Actuate(mustEvent("t=1s:conn-reset *"), 0, hasRole)
	inj.Actuate(mustEvent("t=1s:conn-reset dc2"), 0, hasRole)
	if fired != 1 {
		t.Fatalf("conn-reset fired %d times, want 1 (wildcard only)", fired)
	}

	// blackhole arms dials off, heal clears.
	inj.Actuate(mustEvent("t=1s:blackhole dc0"), 0, hasRole)
	if !inj.DialBlackholed() {
		t.Fatal("blackhole did not arm")
	}
	inj.Actuate(mustEvent("t=2s:heal"), 0, hasRole)
	if inj.DialBlackholed() {
		t.Fatal("heal did not clear the blackhole")
	}
}

// TestDesignDocCoversEveryFaultPoint pins the DESIGN.md fault-model
// section to the registry: every named fault point must be documented.
func TestDesignDocCoversEveryFaultPoint(t *testing.T) {
	doc, err := os.ReadFile("../../DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range Points() {
		if !strings.Contains(string(doc), p.Name) {
			t.Errorf("DESIGN.md does not document fault point %q (layer %s)", p.Name, p.Layer)
		}
	}
}
