package partition

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"eunomia/internal/types"
	"eunomia/internal/wal"
)

func openStore(t *testing.T, dir string) *wal.Store {
	t.Helper()
	st, err := wal.OpenStore(dir, wal.SyncOnFlush)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestCrashRecoveryRebuildsState writes through a durable partition,
// "crashes" it (drops the in-memory state), recovers a fresh partition
// from the store, and checks versions, clock monotonicity and the
// sequence counter all survive.
func TestCrashRecoveryRebuildsState(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "p0")
	st := openStore(t, dir)

	p := New(Config{DC: 0, ID: 0, DCs: 2, SeparateData: false, Store: st})
	session := dep(0, 0)
	var lastTS uint64
	for i := 0; i < 50; i++ {
		vts := p.Update(types.Key(fmt.Sprintf("key%d", i%10)), []byte(fmt.Sprintf("v%d", i)), session)
		session = vts
		lastTS = uint64(vts.Get(0))
	}
	// A remote update arrives and is applied too.
	remote := &types.Update{
		Key: "remote", Value: []byte("from-dc1"), Origin: 1,
		TS: 999_999_999, VTS: dep(0, 999_999_999),
	}
	if !p.ApplyRemote(remote, time.Now()) {
		t.Fatal("remote apply failed")
	}
	p.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash: rebuild a brand-new partition from the store alone.
	st2 := openStore(t, dir)
	defer st2.Close()
	p2 := New(Config{DC: 0, ID: 0, DCs: 2, SeparateData: false, Store: st2})
	if err := p2.Recover(); err != nil {
		t.Fatal(err)
	}

	for i := 40; i < 50; i++ { // last writer per key wins
		v, _ := p2.Read(types.Key(fmt.Sprintf("key%d", i%10)))
		if string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key%d recovered as %q, want v%d", i%10, v, i)
		}
	}
	if v, _ := p2.Read("remote"); string(v) != "from-dc1" {
		t.Fatalf("remote update lost in recovery: %q", v)
	}
	// The applied watermark survives, so a retried release of the same
	// remote update stays idempotent across the crash.
	if got := p2.AppliedRemoteWatermark(1); got != 999_999_999 {
		t.Fatalf("applied watermark recovered as %v, want 999999999", got)
	}
	if !p2.ApplyRemote(remote, time.Now()) {
		t.Fatal("re-applied release not reported idempotent after recovery")
	}
	if got := p2.RemoteApplied.Load(); got != 0 {
		t.Fatalf("recovered partition double-applied %d remote updates", got)
	}

	// Property 2 must hold across the crash: the first post-recovery
	// update carries a timestamp above everything recovered.
	vts := p2.Update("post-crash", []byte("x"), dep(0, 0))
	if uint64(vts.Get(0)) <= lastTS {
		t.Fatalf("post-recovery timestamp %v not above pre-crash %v", vts.Get(0), lastTS)
	}
	// And the sequence counter resumed past the logged ones.
	p2.seqMu.Lock()
	seq := p2.seq
	p2.seqMu.Unlock()
	if seq != 51 {
		t.Fatalf("sequence counter resumed at %d, want 51", seq)
	}
}

func TestRecoverFromEmptyOrMissingStore(t *testing.T) {
	st := openStore(t, filepath.Join(t.TempDir(), "never-touched"))
	defer st.Close()
	p := New(Config{DC: 0, ID: 0, DCs: 1, Store: st})
	if err := p.Recover(); err != nil {
		t.Fatal(err)
	}
	if p.Store().Len() != 0 {
		t.Fatal("recovery invented state")
	}
}

func TestDurablePartitionSurvivesTornTail(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "p")
	st := openStore(t, dir)
	p := New(Config{DC: 0, ID: 0, DCs: 1, Store: st})
	p.Update("a", []byte("1"), dep(0))
	p.Update("b", []byte("2"), dep(0))
	p.Close()
	st.Close()

	// Append garbage simulating a torn write, then recover.
	appendGarbage(t, filepath.Join(dir, "log"))

	st2 := openStore(t, dir)
	defer st2.Close()
	p2 := New(Config{DC: 0, ID: 0, DCs: 1, Store: st2})
	if err := p2.Recover(); err != nil {
		t.Fatal(err)
	}
	if v, _ := p2.Read("a"); string(v) != "1" {
		t.Fatal("lost record a")
	}
	if v, _ := p2.Read("b"); string(v) != "2" {
		t.Fatal("lost record b")
	}
}

// TestSnapshotCompactsAndRecovers drives enough updates to cross a tiny
// snapshot threshold, verifies the log shrank, and recovers the full
// state (live versions, sequence counter, applied watermark) from
// snapshot + residual log.
func TestSnapshotCompactsAndRecovers(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "p")
	st := openStore(t, dir)
	p := New(Config{DC: 0, ID: 0, DCs: 2, Store: st})

	session := dep(0, 0)
	for i := 0; i < 200; i++ {
		session = p.Update(types.Key(fmt.Sprintf("key%d", i%10)), []byte(fmt.Sprintf("v%d", i)), session)
	}
	remote := &types.Update{
		Key: "remote", Value: []byte("r"), Origin: 1, TS: 7_777, VTS: dep(0, 7_777),
	}
	if !p.ApplyRemote(remote, time.Now()) {
		t.Fatal("remote apply failed")
	}

	before := p.WALSize()
	snapped, err := p.MaybeSnapshot(1024)
	if err != nil {
		t.Fatal(err)
	}
	if !snapped {
		t.Fatalf("log of %d bytes did not trigger a 1KiB-threshold snapshot", before)
	}
	if after := p.WALSize(); after != 0 {
		t.Fatalf("log still %d bytes after snapshot", after)
	}
	// Overwrites after the snapshot land in the fresh log.
	p.Update("key0", []byte("post-snap"), session)
	p.Close()
	st.Close()

	st2 := openStore(t, dir)
	defer st2.Close()
	p2 := New(Config{DC: 0, ID: 0, DCs: 2, Store: st2})
	if err := p2.Recover(); err != nil {
		t.Fatal(err)
	}
	if v, _ := p2.Read("key0"); string(v) != "post-snap" {
		t.Fatalf("key0 recovered as %q, want post-snap", v)
	}
	for i := 191; i < 200; i++ {
		if i%10 == 0 {
			continue // key0 overwritten above
		}
		v, _ := p2.Read(types.Key(fmt.Sprintf("key%d", i%10)))
		if string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key%d recovered as %q, want v%d", i%10, v, i)
		}
	}
	if got := p2.AppliedRemoteWatermark(1); got != 7_777 {
		t.Fatalf("applied watermark %v survived snapshot, want 7777", got)
	}
	// Sequence counter resumed: 200 pre-snapshot + 1 post-snapshot.
	p2.seqMu.Lock()
	seq := p2.seq
	p2.seqMu.Unlock()
	if seq != 201 {
		t.Fatalf("sequence counter recovered as %d, want 201", seq)
	}
}

func appendGarbage(t *testing.T, path string) {
	t.Helper()
	// Raw partial header: length says 100 bytes, payload missing.
	garbage := []byte{100, 0, 0, 0, 0xaa, 0xbb}
	if err := appendRaw(path, garbage); err != nil {
		t.Fatal(err)
	}
}

// TestPayloadBufferSurvivesCrash checks §5 payloads buffered ahead of
// their metadata release are recovered: the shipping sibling pruned them
// on transport acknowledgement, so the WAL is their only copy.
func TestPayloadBufferSurvivesCrash(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "p")
	st := openStore(t, dir)
	p := New(Config{DC: 0, ID: 0, DCs: 2, Store: st})
	payload := &types.Update{
		Key: "k", Value: []byte("v"), Origin: 1, TS: 500, VTS: dep(0, 500),
	}
	p.ReceivePayload(payload)
	p.Close()
	st.Close()

	st2 := openStore(t, dir)
	defer st2.Close()
	p2 := New(Config{DC: 0, ID: 0, DCs: 2, Store: st2})
	if err := p2.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := p2.PendingPayloads(); got != 1 {
		t.Fatalf("recovered %d buffered payloads, want 1", got)
	}
	// The release that was in flight at crash time retries against the
	// successor: the metadata-only apply must find the recovered payload.
	if !p2.ApplyRemote(payload.Meta(), time.Now()) {
		t.Fatal("metadata release did not find the recovered payload")
	}
	if v, _ := p2.Read("k"); string(v) != "v" {
		t.Fatalf("applied value %q, want v", v)
	}

	// A consumed payload must NOT resurrect on the next recovery.
	p2.Close()
	st2.Close()
	st3 := openStore(t, dir)
	defer st3.Close()
	p3 := New(Config{DC: 0, ID: 0, DCs: 2, Store: st3})
	if err := p3.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := p3.PendingPayloads(); got != 0 {
		t.Fatalf("consumed payload resurrected: %d buffered after second recovery", got)
	}
	if v, _ := p3.Read("k"); string(v) != "v" {
		t.Fatalf("value lost on second recovery: %q", v)
	}
}

// TestSkipRemoteAdvancesWatermarkDurably checks the lost-payload skip: the
// watermark advances (so the stream can proceed), nothing is stored, and
// both survive recovery.
func TestSkipRemoteAdvancesWatermarkDurably(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "p")
	st := openStore(t, dir)
	p := New(Config{DC: 0, ID: 0, DCs: 2, Store: st})
	lost := &types.Update{Key: "gone", Origin: 1, TS: 700, VTS: dep(0, 700)}
	p.SkipRemote(lost)
	if got := p.AppliedRemoteWatermark(1); got != 700 {
		t.Fatalf("watermark %v after skip, want 700", got)
	}
	// Idempotent across the retried release.
	if !p.ApplyRemote(lost.Meta(), time.Now()) {
		t.Fatal("retried release of a skipped update not treated as applied")
	}
	p.Close()
	st.Close()

	st2 := openStore(t, dir)
	defer st2.Close()
	p2 := New(Config{DC: 0, ID: 0, DCs: 2, Store: st2})
	if err := p2.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := p2.AppliedRemoteWatermark(1); got != 700 {
		t.Fatalf("skip watermark recovered as %v, want 700", got)
	}
	if _, vts := p2.Read("gone"); vts != nil {
		t.Fatal("skipped update materialized a version")
	}
}
