package partition

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"eunomia/internal/types"
	"eunomia/internal/wal"
)

// TestCrashRecoveryRebuildsState writes through a durable partition,
// "crashes" it (drops the in-memory state), recovers a fresh partition
// from the log, and checks versions, clock monotonicity and the sequence
// counter all survive.
func TestCrashRecoveryRebuildsState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p0.wal")
	log, err := wal.Open(path, wal.SyncOnFlush)
	if err != nil {
		t.Fatal(err)
	}

	p := New(Config{DC: 0, ID: 0, DCs: 2, SeparateData: false, WAL: log})
	session := dep(0, 0)
	var lastTS uint64
	for i := 0; i < 50; i++ {
		vts := p.Update(types.Key(fmt.Sprintf("key%d", i%10)), []byte(fmt.Sprintf("v%d", i)), session)
		session = vts
		lastTS = uint64(vts.Get(0))
	}
	// A remote update arrives and is applied too.
	remote := &types.Update{
		Key: "remote", Value: []byte("from-dc1"), Origin: 1,
		TS: 999_999_999, VTS: dep(0, 999_999_999),
	}
	if !p.ApplyRemote(remote, time.Now()) {
		t.Fatal("remote apply failed")
	}
	p.Close()
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash: rebuild a brand-new partition from the log alone.
	p2 := New(Config{DC: 0, ID: 0, DCs: 2, SeparateData: false})
	if err := p2.Recover(path); err != nil {
		t.Fatal(err)
	}

	for i := 40; i < 50; i++ { // last writer per key wins
		v, _ := p2.Read(types.Key(fmt.Sprintf("key%d", i%10)))
		if string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key%d recovered as %q, want v%d", i%10, v, i)
		}
	}
	if v, _ := p2.Read("remote"); string(v) != "from-dc1" {
		t.Fatalf("remote update lost in recovery: %q", v)
	}

	// Property 2 must hold across the crash: the first post-recovery
	// update carries a timestamp above everything recovered.
	vts := p2.Update("post-crash", []byte("x"), dep(0, 0))
	if uint64(vts.Get(0)) <= lastTS {
		t.Fatalf("post-recovery timestamp %v not above pre-crash %v", vts.Get(0), lastTS)
	}
	// And the sequence counter resumed past the logged ones.
	p2.seqMu.Lock()
	seq := p2.seq
	p2.seqMu.Unlock()
	if seq != 51 {
		t.Fatalf("sequence counter resumed at %d, want 51", seq)
	}
}

func TestRecoverFromEmptyOrMissingLog(t *testing.T) {
	p := New(Config{DC: 0, ID: 0, DCs: 1})
	if err := p.Recover(filepath.Join(t.TempDir(), "never-existed.wal")); err != nil {
		t.Fatal(err)
	}
	if p.Store().Len() != 0 {
		t.Fatal("recovery invented state")
	}
}

func TestDurablePartitionSurvivesTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.wal")
	log, err := wal.Open(path, wal.SyncOnFlush)
	if err != nil {
		t.Fatal(err)
	}
	p := New(Config{DC: 0, ID: 0, DCs: 1, WAL: log})
	p.Update("a", []byte("1"), dep(0))
	p.Update("b", []byte("2"), dep(0))
	p.Close()
	log.Close()

	// Append garbage simulating a torn write, then recover.
	f, err := wal.Open(path, wal.SyncOnFlush) // Open truncates torn tails,
	if err != nil {                           // so corrupt it via raw append first
		t.Fatal(err)
	}
	f.Close()
	appendGarbage(t, path)

	p2 := New(Config{DC: 0, ID: 0, DCs: 1})
	if err := p2.Recover(path); err != nil {
		t.Fatal(err)
	}
	if v, _ := p2.Read("a"); string(v) != "1" {
		t.Fatal("lost record a")
	}
	if v, _ := p2.Read("b"); string(v) != "2" {
		t.Fatal("lost record b")
	}
}

func appendGarbage(t *testing.T, path string) {
	t.Helper()
	// Raw partial header: length says 100 bytes, payload missing.
	garbage := []byte{100, 0, 0, 0, 0xaa, 0xbb}
	if err := appendRaw(path, garbage); err != nil {
		t.Fatal(err)
	}
}
