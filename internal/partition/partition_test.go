package partition

import (
	"sync"
	"testing"
	"time"

	"eunomia/internal/clock"
	"eunomia/internal/eunomia"
	"eunomia/internal/hlc"
	"eunomia/internal/types"
	"eunomia/internal/vclock"
)

func newPart(dc types.DCID, dcs int) *Partition {
	return New(Config{DC: dc, ID: 0, DCs: dcs, SeparateData: true})
}

func dep(entries ...uint64) vclock.V {
	v := make(vclock.V, len(entries))
	for i, e := range entries {
		v[i] = hlc.Timestamp(e)
	}
	return v
}

func TestReadMissingKey(t *testing.T) {
	p := newPart(0, 3)
	val, vts := p.Read("nope")
	if val != nil || vts != nil {
		t.Fatal("missing key should read nil/nil")
	}
}

func TestUpdateThenReadLocal(t *testing.T) {
	p := newPart(0, 3)
	vts := p.Update("k", []byte("v"), dep(0, 5, 7))
	if vts.Get(1) != 5 || vts.Get(2) != 7 {
		t.Fatalf("remote entries not copied from dependency: %v", vts)
	}
	if vts.Get(0) == 0 {
		t.Fatal("local entry not assigned")
	}
	val, got := p.Read("k")
	if string(val) != "v" || !got.Equal(vts) {
		t.Fatalf("Read = %q %v, want v %v", val, got, vts)
	}
}

func TestUpdateTimestampsStrictlyIncreasePerKeyChain(t *testing.T) {
	p := newPart(0, 1)
	var prev hlc.Timestamp
	session := dep(0)
	for i := 0; i < 100; i++ {
		vts := p.Update("k", []byte{byte(i)}, session)
		ts := vts.Get(0)
		if ts <= prev {
			t.Fatalf("Property 2 violated: %v then %v", prev, ts)
		}
		prev = ts
		session = vts
	}
}

// TestPropertyOneAcrossSkewedPartitions: an update causally after a read
// must carry a strictly larger timestamp even when the second partition's
// physical clock is far behind the first's.
func TestPropertyOneAcrossSkewedPartitions(t *testing.T) {
	ahead := New(Config{DC: 0, ID: 0, DCs: 1, Clock: clock.NewManual(10_000_000)})
	behind := New(Config{DC: 0, ID: 1, DCs: 1, Clock: clock.NewManual(1_000)})

	vts1 := ahead.Update("a", []byte("x"), dep(0))
	// The client reads a, then writes b on the lagging partition.
	vts2 := behind.Update("b", []byte("y"), vts1)
	if vts2.Get(0) <= vts1.Get(0) {
		t.Fatalf("Property 1 violated across skew: %v then %v", vts1, vts2)
	}
}

func TestUpdateValueIsCloned(t *testing.T) {
	p := newPart(0, 1)
	buf := []byte("abc")
	p.Update("k", buf, dep(0))
	buf[0] = 'z'
	val, _ := p.Read("k")
	if string(val) != "abc" {
		t.Fatal("partition stored the caller's buffer")
	}
}

// fakeShipper records shipped payloads.
type fakeShipper struct {
	mu  sync.Mutex
	ops []*types.Update
}

func (f *fakeShipper) ShipPayload(u *types.Update) {
	f.mu.Lock()
	f.ops = append(f.ops, u)
	f.mu.Unlock()
}

func (f *fakeShipper) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.ops)
}

func TestMetadataAndPayloadSeparation(t *testing.T) {
	p := New(Config{DC: 0, ID: 0, DCs: 2, SeparateData: true})
	cluster := eunomia.NewCluster(1, eunomia.Config{Partitions: 1, StableInterval: time.Millisecond},
		func(_ types.ReplicaID, ops []*types.Update) {
			for _, u := range ops {
				if u.Value != nil {
					t.Error("metadata through Eunomia carried a payload despite separation")
				}
			}
		})
	defer cluster.Stop()
	shipper := &fakeShipper{}
	euc := eunomia.NewClient(eunomia.ClientConfig{Partition: 0, BatchInterval: time.Millisecond},
		eunomia.ClusterConns(cluster), p.Clock())
	p.Attach(euc, shipper)
	defer p.Close()

	p.Update("k", []byte("payload"), dep(0, 0))
	if shipper.count() != 1 {
		t.Fatal("payload not shipped to siblings")
	}
	sh := shipper.ops[0]
	if sh.Value == nil {
		t.Fatal("shipped payload missing value")
	}
}

func TestNoSeparationShipsFullUpdateThroughEunomia(t *testing.T) {
	p := New(Config{DC: 0, ID: 0, DCs: 2, SeparateData: false})
	got := make(chan *types.Update, 1)
	cluster := eunomia.NewCluster(1, eunomia.Config{Partitions: 1, StableInterval: time.Millisecond},
		func(_ types.ReplicaID, ops []*types.Update) {
			for _, u := range ops {
				select {
				case got <- u:
				default:
				}
			}
		})
	defer cluster.Stop()
	shipper := &fakeShipper{}
	euc := eunomia.NewClient(eunomia.ClientConfig{Partition: 0, BatchInterval: time.Millisecond},
		eunomia.ClusterConns(cluster), p.Clock())
	p.Attach(euc, shipper)
	defer p.Close()

	p.Update("k", []byte("inline"), dep(0, 0))
	select {
	case u := <-got:
		if string(u.Value) != "inline" {
			t.Fatal("combined mode lost the payload")
		}
	case <-time.After(time.Second):
		t.Fatal("nothing shipped")
	}
	if shipper.count() != 0 {
		t.Fatal("combined mode must not ship payloads separately")
	}
}

func TestApplyRemoteWaitsForPayload(t *testing.T) {
	var visible []*types.Update
	p := New(Config{DC: 1, ID: 0, DCs: 2, SeparateData: true,
		OnVisible: func(u *types.Update, _ time.Time) { visible = append(visible, u) }})

	full := &types.Update{
		Key: "k", Value: []byte("v"), Origin: 0, Partition: 0, Seq: 1,
		TS: 100, VTS: dep(100, 0),
	}
	meta := full.Meta()

	if p.ApplyRemote(meta, time.Now()) {
		t.Fatal("applied without payload")
	}
	if p.PayloadWait.Load() != 1 {
		t.Fatal("PayloadWait not counted")
	}

	p.ReceivePayload(full)
	if p.PendingPayloads() != 1 {
		t.Fatal("payload not buffered")
	}
	if !p.ApplyRemote(meta, time.Now()) {
		t.Fatal("apply failed with payload present")
	}
	if p.PendingPayloads() != 0 {
		t.Fatal("payload buffer leaked")
	}
	if len(visible) != 1 || string(visible[0].Value) != "v" {
		t.Fatal("visibility callback missing")
	}
	val, _ := p.Read("k")
	if string(val) != "v" {
		t.Fatal("remote value not readable")
	}
}

func TestApplyRemoteInlinePayload(t *testing.T) {
	p := New(Config{DC: 1, ID: 0, DCs: 2, SeparateData: false})
	full := &types.Update{
		Key: "k", Value: []byte("v"), Origin: 0, TS: 100, VTS: dep(100, 0),
	}
	if !p.ApplyRemote(full, time.Now()) {
		t.Fatal("inline apply failed")
	}
}

func TestDuplicatePayloadIgnored(t *testing.T) {
	p := New(Config{DC: 1, ID: 0, DCs: 2, SeparateData: true})
	full := &types.Update{Key: "k", Value: []byte("v"), Origin: 0, TS: 100, VTS: dep(100, 0)}
	p.ReceivePayload(full)
	p.ReceivePayload(full) // duplicate
	if p.PendingPayloads() != 1 {
		t.Fatal("duplicate payload buffered twice")
	}
}

// TestLocalOverwriteAfterRemoteApplyWinsEverywhere: after applying a
// remote version, a local update must carry a larger timestamp so LWW
// converges in the local writer's favour at every datacenter.
func TestLocalOverwriteAfterRemoteApplyWins(t *testing.T) {
	p := New(Config{DC: 1, ID: 0, DCs: 2, SeparateData: false})
	remote := &types.Update{Key: "k", Value: []byte("remote"), Origin: 0, TS: 5000_000, VTS: dep(5000_000, 0)}
	p.ApplyRemote(remote, time.Now())
	vts := p.Update("k", []byte("local"), dep(0, 0)) // client with no deps
	if vts.Get(1) <= remote.TS {
		t.Fatalf("local update ts %v does not dominate applied remote ts %v", vts.Get(1), remote.TS)
	}
	val, _ := p.Read("k")
	if string(val) != "local" {
		t.Fatal("local overwrite lost LWW at its own partition")
	}
}

func TestCountersAdvance(t *testing.T) {
	p := newPart(0, 1)
	p.Update("a", []byte("x"), dep(0))
	p.Read("a")
	if p.Updates.Load() != 1 || p.Reads.Load() != 1 {
		t.Fatal("counters not advancing")
	}
}

// TestApplyRemoteIdempotentAfterAckLoss models the cross-process receiver
// path: a release is applied (consuming the buffered payload) but the
// acknowledgement is lost, so the receiver retries the same metadata.
// The retry must report success — not wedge forever on the consumed
// payload — while genuinely missing payloads still report false.
func TestApplyRemoteIdempotentAfterAckLoss(t *testing.T) {
	p := newPart(1, 2)
	u := &types.Update{
		Key: "k", Value: []byte("v"), Origin: 0, Partition: 0,
		Seq: 1, TS: 10, VTS: dep(10, 0),
	}
	p.ReceivePayload(u)
	if !p.ApplyRemote(u.Meta(), time.Now()) {
		t.Fatal("first apply failed with payload buffered")
	}
	if !p.ApplyRemote(u.Meta(), time.Now()) {
		t.Fatal("retry after lost ack wedged instead of reporting success")
	}
	if got := p.RemoteApplied.Load(); got != 1 {
		t.Fatalf("RemoteApplied = %d, want 1 (retry must not double count)", got)
	}
	// Even if the key has since been overwritten locally (LWW), a
	// replayed release of the already-applied update must still report
	// success — the idempotency comes from the per-origin watermark,
	// not from the stored version.
	p.Update("k", []byte("newer"), dep(0, 0))
	if !p.ApplyRemote(u.Meta(), time.Now()) {
		t.Fatal("retry after local overwrite wedged")
	}
	missing := &types.Update{Key: "other", Origin: 0, Partition: 0, Seq: 2, TS: 11, VTS: dep(11, 0)}
	if p.ApplyRemote(missing.Meta(), time.Now()) {
		t.Fatal("apply succeeded with no payload and nothing stored")
	}
}
