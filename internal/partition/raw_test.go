package partition

import "os"

// appendRaw writes bytes to the end of a file without any framing, used to
// simulate torn writes in durability tests.
func appendRaw(path string, b []byte) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
