package partition

// Disk-backed partition tests: the kvstore.Persistent snapshot contract
// (segments are the version authority, the WAL snapshot keeps marks
// only) across restart, and the bigger-than-memory invariant at
// partition level.

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"eunomia/internal/kvstore"
	"eunomia/internal/types"
)

func openDiskBackend(t *testing.T, dir string, o kvstore.DiskOptions) *kvstore.Disk {
	t.Helper()
	d, err := kvstore.OpenDisk(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDiskBackedPartitionSnapshotAndRecover runs the crash-recovery cycle
// with the disk backend: after a snapshot the WAL holds no versions at
// all (marks only — the segments vouch for the data), and a successor
// process recovers values, watermarks, the sequence counter, and clock
// monotonicity from segments + WAL suffix.
func TestDiskBackedPartitionSnapshotAndRecover(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, filepath.Join(dir, "wal"))
	backend := openDiskBackend(t, filepath.Join(dir, "segments"), kvstore.DiskOptions{})
	p := New(Config{DC: 0, ID: 0, DCs: 2, Store: st, Backend: backend})

	session := dep(0, 0)
	for i := 0; i < 200; i++ {
		session = p.Update(types.Key(fmt.Sprintf("key%d", i%10)), []byte(fmt.Sprintf("v%d", i)), session)
	}
	lastTS := uint64(session.Get(0))
	remote := &types.Update{Key: "remote", Value: []byte("r"), Origin: 1, TS: 7_777, VTS: dep(0, 7_777)}
	if !p.ApplyRemote(remote, time.Now()) {
		t.Fatal("remote apply failed")
	}

	snapped, err := p.MaybeSnapshot(1024)
	if err != nil {
		t.Fatal(err)
	}
	if !snapped {
		t.Fatal("log did not trigger a 1KiB-threshold snapshot")
	}
	if after := p.WALSize(); after != 0 {
		t.Fatalf("log still %d bytes after snapshot", after)
	}
	// Post-snapshot traffic lands in the fresh log AND the segments.
	p.Update("key0", []byte("post-snap"), session)
	p.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := backend.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, filepath.Join(dir, "wal"))
	defer st2.Close()
	backend2 := openDiskBackend(t, filepath.Join(dir, "segments"), kvstore.DiskOptions{})
	defer backend2.Close()
	p2 := New(Config{DC: 0, ID: 0, DCs: 2, Store: st2, Backend: backend2})
	if err := p2.Recover(); err != nil {
		t.Fatal(err)
	}

	if v, _ := p2.Read("key0"); string(v) != "post-snap" {
		t.Fatalf("key0 recovered as %q, want post-snap", v)
	}
	for i := 191; i < 200; i++ {
		if i%10 == 0 {
			continue
		}
		v, _ := p2.Read(types.Key(fmt.Sprintf("key%d", i%10)))
		if string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key%d recovered as %q, want v%d", i%10, v, i)
		}
	}
	if v, _ := p2.Read("remote"); string(v) != "r" {
		t.Fatalf("remote update lost: %q", v)
	}
	if got := p2.AppliedRemoteWatermark(1); got != 7_777 {
		t.Fatalf("applied watermark recovered as %v, want 7777", got)
	}
	// Property 2 across the crash: the segments floored the clock (the
	// WAL kept no versions to observe), so the first post-recovery update
	// must still timestamp above everything pre-crash.
	vts := p2.Update("post-crash", []byte("x"), dep(0, 0))
	if uint64(vts.Get(0)) <= lastTS {
		t.Fatalf("post-recovery timestamp %v not above pre-crash %v", vts.Get(0), lastTS)
	}
	// Sequence counter resumed past the logged ones: 200 + 1 post-snap.
	p2.seqMu.Lock()
	seq := p2.seq
	p2.seqMu.Unlock()
	if seq < 202 {
		t.Fatalf("sequence counter resumed at %d, want >= 202", seq)
	}
}

// TestDiskBackedPartitionLargerThanBudget drives a dataset past the disk
// backend's resident-memory budget through the partition's normal write
// path and checks every byte stays readable while the resident index
// remains inside the budget — the bigger-than-memory invariant.
func TestDiskBackedPartitionLargerThanBudget(t *testing.T) {
	const budget = 128 << 10
	dir := t.TempDir()
	st := openStore(t, filepath.Join(dir, "wal"))
	defer st.Close()
	backend := openDiskBackend(t, filepath.Join(dir, "segments"), kvstore.DiskOptions{MemBudget: budget})
	defer backend.Close()
	p := New(Config{DC: 0, ID: 0, DCs: 1, Store: st, Backend: backend})
	defer p.Close()

	val := make([]byte, 2048)
	session := dep(0)
	const keys = 256 // 512 KiB of values against a 128 KiB budget
	for i := 0; i < keys; i++ {
		copy(val, fmt.Sprintf("payload%d|", i))
		session = p.Update(types.Key(fmt.Sprintf("key%04d", i)), val, session)
	}
	if live := backend.Bytes(); live <= budget {
		t.Fatalf("dataset %d did not outgrow the %d budget", live, budget)
	}
	if res := backend.ResidentBytes(); res >= budget {
		t.Fatalf("resident index %d outgrew the %d budget", res, budget)
	}
	for i := 0; i < keys; i++ {
		v, _ := p.Read(types.Key(fmt.Sprintf("key%04d", i)))
		want := fmt.Sprintf("payload%d|", i)
		if len(v) != len(val) || string(v[:len(want)]) != want {
			t.Fatalf("key%04d read back wrong: %q...", i, v[:16])
		}
	}
}
