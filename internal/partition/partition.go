// Package partition implements the EunomiaKV datacenter partition server —
// Algorithm 2 of the paper extended with the geo-replication tagging of §4
// and the data/metadata separation of §5.
//
// A partition serializes updates to its key range, tags each with a hybrid
// logical timestamp strictly greater than the client's causal history and
// than every timestamp it previously issued (Properties 1 and 2), stores
// the version, hands the lightweight metadata to the local Eunomia service
// through the batching client, and ships the payload directly to its
// sibling partitions at remote datacenters. Remote updates are applied when
// the local receiver has established that their causal dependencies are
// satisfied and the payload has arrived.
package partition

import (
	"fmt"
	"sync"
	"time"

	"eunomia/internal/eunomia"
	"eunomia/internal/hlc"
	"eunomia/internal/kvstore"
	"eunomia/internal/metrics"
	"eunomia/internal/types"
	"eunomia/internal/vclock"
	"eunomia/internal/wal"
)

// PayloadShipper sends an update's payload to the sibling partitions of
// every remote datacenter. The geo store backs it with simnet sends; unit
// tests use in-memory fakes. Shipping happens outside the client's
// critical path and needs no ordering guarantees (§5).
type PayloadShipper interface {
	ShipPayload(u *types.Update)
}

// VisibleFunc observes a remote update becoming visible locally, with the
// instant its payload arrived; the harness derives visibility latencies
// (Figures 6 and 7) from it.
type VisibleFunc func(u *types.Update, payloadArrived time.Time)

// Config parameterises a partition.
type Config struct {
	DC    types.DCID
	ID    types.PartitionID
	DCs   int // M, number of datacenters
	Clock hlc.PhysSource
	// SeparateData enables §5 data/metadata separation (the prototype's
	// configuration): Eunomia carries only ids, payloads travel
	// partition-to-partition. When false, full updates flow through
	// Eunomia and arrive via the receiver alone.
	SeparateData bool
	// OnVisible, optional, observes remote update visibility.
	OnVisible VisibleFunc
	// Store, optional, makes the partition durable: every locally
	// accepted update and every applied remote update is logged before
	// the operation is acknowledged, and MaybeSnapshot compacts the log
	// into a snapshot as it grows. Recover rebuilds a partition from the
	// store after a crash.
	Store *wal.Store
	// Backend, optional, supplies the version store (kvstore.New() when
	// nil). A kvstore.Persistent backend changes the snapshot contract:
	// MaybeSnapshot syncs the backend's segments and writes a marks-only
	// WAL snapshot instead of re-emitting every live version, and
	// Recover floors the clock on the backend's recovered versions. The
	// backend's lifetime belongs to the caller (Close is not chained).
	Backend kvstore.Store
}

// Partition is one logical partition server. All methods are safe for
// concurrent use.
type Partition struct {
	cfg   Config
	clock *hlc.Clock
	store kvstore.Store

	seqMu sync.Mutex
	seq   uint64

	euClient *eunomia.Client
	shipper  PayloadShipper

	// durMu makes a WAL append and the state mutation it records atomic
	// with respect to snapshots: writers hold it shared across the
	// append+apply pair, MaybeSnapshot holds it exclusively while it
	// captures state and truncates the log, so no record is truncated
	// before its effects are visible to the capture. Lock order is
	// durMu before the store's internal lock.
	durMu sync.RWMutex

	// payloadMu guards the payload/arrival buffers for remote updates
	// whose metadata has not yet been released by the receiver, and the
	// per-origin applied watermark.
	payloadMu sync.Mutex
	payloads  map[types.UpdateID]*types.Update
	arrivals  map[types.UpdateID]time.Time
	// appliedRemote[origin] is the highest origin timestamp applied via
	// ApplyRemote. Releases from one origin arrive in ascending
	// timestamp order (the receiver serializes them), so the watermark
	// makes retried releases — the cross-process receiver path is
	// at-least-once — idempotent even if the stored version has since
	// been overwritten.
	appliedRemote map[types.DCID]hlc.Timestamp

	// Reads, Updates, RemoteApplied count operations for reports.
	Reads         metrics.Counter
	Updates       metrics.Counter
	RemoteApplied metrics.Counter
	// PayloadWait counts receiver release attempts that found the
	// payload missing (§7.2.2 observes this is rare because payloads
	// ship immediately while metadata waits for stabilization).
	PayloadWait metrics.Counter
}

// New constructs a partition. The Eunomia batching client and payload
// shipper are attached afterwards (Attach) because they need the
// partition's clock.
func New(cfg Config) *Partition {
	if cfg.DCs <= 0 {
		cfg.DCs = 1
	}
	store := cfg.Backend
	if store == nil {
		store = kvstore.New()
	}
	return &Partition{
		cfg:           cfg,
		clock:         hlc.NewClock(cfg.Clock),
		store:         store,
		payloads:      make(map[types.UpdateID]*types.Update),
		arrivals:      make(map[types.UpdateID]time.Time),
		appliedRemote: make(map[types.DCID]hlc.Timestamp),
	}
}

// Clock exposes the partition's hybrid clock (the Eunomia client shares it
// so heartbeat timestamps dominate issued timestamps).
func (p *Partition) Clock() *hlc.Clock { return p.clock }

// Store exposes the underlying version store for convergence checks.
func (p *Partition) Store() kvstore.Store { return p.store }

// Attach wires the Eunomia batching client and the payload shipper.
// Either may be nil (the service-saturation experiments drive Eunomia
// without partitions; single-DC tests need no shipper).
func (p *Partition) Attach(eu *eunomia.Client, shipper PayloadShipper) {
	p.euClient = eu
	p.shipper = shipper
}

// EunomiaClient returns the attached batching client (nil before Attach).
func (p *Partition) EunomiaClient() *eunomia.Client { return p.euClient }

// Read implements the partition side of Algorithm 1/2 READ: it returns the
// stored value and the vector timestamp of the update that produced it.
// Missing keys return a nil value and a nil vector (no dependency).
func (p *Partition) Read(key types.Key) (types.Value, vclock.V) {
	p.Reads.Inc()
	v, ok := p.store.Get(key)
	if !ok {
		return nil, nil
	}
	return v.Value, v.VTS
}

// Update implements Algorithm 2 UPDATE with §4's vector tagging: the local
// entry is max(Clock_n, MaxTs_n+1, VClock_c[m]+1); remote entries copy the
// client's vector. It stores the version, forwards metadata to Eunomia and
// ships the payload, then returns the update's vector timestamp, which the
// client adopts wholesale (it strictly dominates VClock_c).
func (p *Partition) Update(key types.Key, value types.Value, dep vclock.V) vclock.V {
	p.Updates.Inc()
	m := int(p.cfg.DC)
	ts := p.clock.Tick(dep.Get(m))

	vts := vclock.New(p.cfg.DCs)
	copy(vts, dep)
	vts.Set(m, ts)

	p.seqMu.Lock()
	p.seq++
	seq := p.seq
	p.seqMu.Unlock()

	u := &types.Update{
		Key:       key,
		Value:     value.Clone(),
		Origin:    p.cfg.DC,
		Partition: p.cfg.ID,
		Seq:       seq,
		TS:        ts,
		VTS:       vts.Clone(),
		CreatedAt: time.Now().UnixNano(),
	}

	if p.cfg.Store != nil {
		p.durMu.RLock()
		// Log before acknowledging: the update must survive a crash
		// once the client has seen its timestamp.
		if err := p.cfg.Store.Append(wal.EncodeUpdate(wal.KindLocal, u)); err != nil {
			p.durMu.RUnlock()
			panic("partition: WAL append failed: " + err.Error())
		}
		p.store.Apply(key, types.Version{Value: u.Value, TS: ts, VTS: u.VTS, Origin: p.cfg.DC})
		p.durMu.RUnlock()
	} else {
		// Store through the LWW path so a concurrent remote version with
		// a larger timestamp is never shadowed; see kvstore.Apply.
		p.store.Apply(key, types.Version{Value: u.Value, TS: ts, VTS: u.VTS, Origin: p.cfg.DC})
	}

	if p.euClient != nil {
		if p.cfg.SeparateData {
			p.euClient.Add(u.Meta())
		} else {
			p.euClient.Add(u)
		}
	}
	if p.shipper != nil && p.cfg.SeparateData {
		p.shipper.ShipPayload(u)
	}
	return vts
}

// ReceivePayload ingests an update payload shipped directly by a sibling
// partition (§5). Payloads may arrive in any order and ahead of their
// metadata; they are buffered until the receiver releases the metadata.
// Durable partitions log the payload first: the sibling prunes it once
// the transport acknowledges delivery, so a crash would otherwise lose
// every buffered payload and stall the release stream on recovery.
func (p *Partition) ReceivePayload(u *types.Update) {
	id := u.ID()
	if p.cfg.Store == nil {
		p.payloadMu.Lock()
		if _, ok := p.payloads[id]; !ok {
			p.payloads[id] = u
			p.arrivals[id] = time.Now()
		}
		p.payloadMu.Unlock()
		return
	}
	p.durMu.RLock()
	p.payloadMu.Lock()
	if _, ok := p.payloads[id]; !ok && u.TS > p.appliedRemote[u.Origin] {
		// No-wait append: payload ingestion runs on the fabric delivery
		// goroutine, which must not stall one fsync per payload under
		// SyncGroupCommit. The loss window stays what it was — the sibling
		// prunes on transport ack either way — and the group committer (or
		// the next flush cadence) persists the record promptly.
		if _, err := p.cfg.Store.AppendNoWait(wal.EncodeUpdate(wal.KindPayload, u)); err != nil {
			p.payloadMu.Unlock()
			p.durMu.RUnlock()
			panic("partition: WAL append failed: " + err.Error())
		}
		p.payloads[id] = u
		p.arrivals[id] = time.Now()
	}
	p.payloadMu.Unlock()
	p.durMu.RUnlock()
}

// SkipRemote resolves a release whose payload was lost to a crash and
// whose origin reports the version superseded: the applied watermark
// advances (so the stream can proceed in causal order) without storing
// anything — the superseding version is ordered after this one and
// carries its own payload.
func (p *Partition) SkipRemote(u *types.Update) {
	if p.cfg.Store != nil {
		p.durMu.RLock()
		defer p.durMu.RUnlock()
	}
	p.payloadMu.Lock()
	if u.TS <= p.appliedRemote[u.Origin] {
		p.payloadMu.Unlock()
		return
	}
	p.appliedRemote[u.Origin] = u.TS
	p.payloadMu.Unlock()
	p.clock.Observe(u.TS)
	if p.cfg.Store != nil {
		if _, err := p.cfg.Store.AppendNoWait(wal.EncodeUpdate(wal.KindSkip, u.Meta())); err != nil {
			panic("partition: WAL append failed: " + err.Error())
		}
	}
	p.RemoteApplied.Inc()
}

// ApplyRemote is invoked by the local receiver once the update's causal
// dependencies are satisfied (Algorithm 5 line 14). metaArrived is the
// instant the receiver first saw the metadata. For metadata-only updates
// ApplyRemote consults the payload buffer and reports false if the payload
// has not arrived yet — the receiver retries on its next pass. On success
// the version is merged under LWW, the partition clock observes the
// remote timestamp, and the visibility callback fires with the data
// arrival instant (§7.2.2 measures visibility latency from data arrival).
func (p *Partition) ApplyRemote(u *types.Update, metaArrived time.Time) bool {
	full := u
	arrived := metaArrived // when the payload rides along, data == metadata
	if p.cfg.Store != nil {
		// The whole consume→log→apply sequence sits inside the shared
		// durability lock so a snapshot can never capture the advanced
		// watermark while the version record is still in flight.
		p.durMu.RLock()
		defer p.durMu.RUnlock()
	}
	p.payloadMu.Lock()
	if u.TS <= p.appliedRemote[u.Origin] {
		// A previous release already applied this update but its
		// acknowledgement was lost — the cross-process receiver path
		// retries at-least-once. Reporting success keeps the call
		// idempotent (no double counting, no consumed-payload wedge).
		p.payloadMu.Unlock()
		return true
	}
	if u.Value == nil {
		id := u.ID()
		payload, ok := p.payloads[id]
		if !ok {
			p.payloadMu.Unlock()
			p.PayloadWait.Inc()
			return false
		}
		arrived = p.arrivals[id]
		delete(p.payloads, id)
		delete(p.arrivals, id)
		full = payload
	}
	p.appliedRemote[u.Origin] = u.TS
	p.payloadMu.Unlock()

	p.clock.Observe(full.TS)
	if p.cfg.Store != nil {
		// No-wait append: the applier worker is a single goroutine, and a
		// blocking group-commit append would throttle it to one fsync per
		// record — SyncEachAppend economics. The release path's durability
		// acks wait on the store's commit watermark instead (geostore's
		// applier gates ReleaseAckMsg.Durable on DurableLSN coverage).
		if _, err := p.cfg.Store.AppendNoWait(wal.EncodeUpdate(wal.KindRemote, full)); err != nil {
			panic("partition: WAL append failed: " + err.Error())
		}
	}
	p.store.Apply(full.Key, types.Version{
		Value: full.Value, TS: full.TS, VTS: full.VTS, Origin: full.Origin,
	})
	p.RemoteApplied.Inc()
	if p.cfg.OnVisible != nil {
		p.cfg.OnVisible(full, arrived)
	}
	return true
}

// ApplyRemoteBatch applies a causally ordered, contiguous run of remote
// updates addressed to this partition in one pass: one payload-buffer
// lock round resolves the run, one WAL record per update is buffered
// (no-wait, see ApplyRemote), and the resolved versions land through
// kvstore.ApplyBatch — one lock acquisition per touched shard, batch-
// atomic visibility, and zero per-update cloning (the arena-backed value
// memory transfers to the store). It applies the longest prefix it can:
// the first update whose payload has not arrived (and is not already
// applied) stops the run, exactly like a false return from ApplyRemote,
// and the caller parks on it. Returns how many updates of the prefix were
// consumed (already-applied duplicates count — they are done).
func (p *Partition) ApplyRemoteBatch(us []*types.Update, metaArrived []time.Time) int {
	if len(us) == 0 {
		return 0
	}
	if p.cfg.Store != nil {
		p.durMu.RLock()
		defer p.durMu.RUnlock()
	}
	// Resolve the run under one payload-lock hold: consume payloads,
	// advance watermarks, and split the prefix into stored versions
	// (full) and idempotent duplicates.
	full := make([]*types.Update, 0, len(us))
	arrived := make([]time.Time, 0, len(us))
	done := 0
	p.payloadMu.Lock()
	for i, u := range us {
		if u.TS <= p.appliedRemote[u.Origin] {
			done = i + 1 // duplicate of an applied update: consumed
			continue
		}
		f, at := u, metaArrived[i]
		if u.Value == nil {
			id := u.ID()
			payload, ok := p.payloads[id]
			if !ok {
				p.PayloadWait.Inc()
				break // park here; nothing behind it may jump the queue
			}
			at = p.arrivals[id]
			delete(p.payloads, id)
			delete(p.arrivals, id)
			f = payload
		}
		p.appliedRemote[u.Origin] = u.TS
		full = append(full, f)
		arrived = append(arrived, at)
		done = i + 1
	}
	p.payloadMu.Unlock()
	if len(full) == 0 {
		return done
	}

	entries := make([]kvstore.BatchEntry, len(full))
	for i, f := range full {
		p.clock.Observe(f.TS)
		if p.cfg.Store != nil {
			if _, err := p.cfg.Store.AppendNoWait(wal.EncodeUpdate(wal.KindRemote, f)); err != nil {
				panic("partition: WAL append failed: " + err.Error())
			}
		}
		entries[i] = kvstore.BatchEntry{Key: f.Key, Ver: types.Version{
			Value: f.Value, TS: f.TS, VTS: f.VTS, Origin: f.Origin,
		}}
	}
	p.store.ApplyBatch(entries)
	p.RemoteApplied.Add(int64(len(full)))
	if p.cfg.OnVisible != nil {
		for i, f := range full {
			p.cfg.OnVisible(f, arrived[i])
		}
	}
	return done
}

// PendingPayloads returns the number of buffered payloads awaiting
// metadata, for tests and leak checks.
func (p *Partition) PendingPayloads() int {
	p.payloadMu.Lock()
	defer p.payloadMu.Unlock()
	return len(p.payloads)
}

// Close stops the attached Eunomia client, flushing buffered metadata,
// and flushes the WAL store if one is attached (closing the store itself
// is its owner's job — geostore.Node shares nothing, but tests reuse
// stores across "crashes").
func (p *Partition) Close() {
	if p.euClient != nil {
		p.euClient.Close()
	}
	if p.cfg.Store != nil {
		_ = p.cfg.Store.Flush()
	}
}

// FlushWAL forces logged records to stable storage; the deployment calls
// it on its batch cadence so the SyncOnFlush loss window stays one batch
// wide.
func (p *Partition) FlushWAL() error {
	if p.cfg.Store == nil {
		return nil
	}
	return p.cfg.Store.Flush()
}

// WALSize reports the live log's size (0 without a store).
func (p *Partition) WALSize() int64 {
	if p.cfg.Store == nil {
		return 0
	}
	return p.cfg.Store.LogSize()
}

// Recover rebuilds a partition's state from its configured store: the
// snapshot's records, then the log's, in append order. Versions re-apply
// under the same LWW rule (so double replay after a snapshot crash window
// is harmless), the hybrid clock observes every logged timestamp (so
// post-recovery updates keep Property 2), and the sequence counter and
// per-origin applied watermarks resume from the marks record and the
// replayed updates. Call it on a freshly constructed partition before
// serving traffic.
func (p *Partition) Recover() error {
	if p.cfg.Store == nil {
		return nil
	}
	// Replayed versions accumulate into chunks applied through the
	// store's batch path: replay is single-threaded and LWW is order-
	// independent, so batching is safe and cuts the per-record shard
	// locking that otherwise dominates large restarts.
	const recoverChunk = 256
	batch := make([]kvstore.BatchEntry, 0, recoverChunk)
	flush := func() {
		if len(batch) > 0 {
			p.store.ApplyBatch(batch)
			batch = batch[:0]
		}
	}
	if persistent, ok := p.store.(kvstore.Persistent); ok {
		// The backend recovered its versions from its own segments. Floor
		// the clock on them before replay: a version whose WAL record was
		// lost in the crash window (segment page flushed, log tail not)
		// must still not outrank the next locally issued timestamp.
		p.clock.Observe(persistent.MaxTS())
	}
	err := p.cfg.Store.Replay(func(rec []byte) error {
		if len(rec) > 0 && rec[0] == wal.KindMarks {
			m, err := wal.DecodeMarks(rec)
			if err != nil {
				return err
			}
			p.seqMu.Lock()
			if m.Seq > p.seq {
				p.seq = m.Seq
			}
			p.seqMu.Unlock()
			p.clock.Observe(m.ClockTS)
			p.payloadMu.Lock()
			for origin, ts := range m.Applied {
				if ts > p.appliedRemote[origin] {
					p.appliedRemote[origin] = ts
				}
			}
			p.payloadMu.Unlock()
			return nil
		}
		kind, u, err := wal.DecodeUpdate(rec)
		if err != nil {
			return err
		}
		p.clock.Observe(u.TS)
		switch kind {
		case wal.KindLocal:
			batch = append(batch, kvstore.BatchEntry{Key: u.Key, Ver: types.Version{Value: u.Value, TS: u.TS, VTS: u.VTS, Origin: u.Origin}})
			if len(batch) == recoverChunk {
				flush()
			}
			p.seqMu.Lock()
			if u.Seq > p.seq {
				p.seq = u.Seq
			}
			p.seqMu.Unlock()
		case wal.KindPayload:
			// Buffered, not yet released when logged; a later KindRemote
			// record consumes it (below), so what is left after replay is
			// exactly the still-pending buffer.
			p.payloadMu.Lock()
			if _, ok := p.payloads[u.ID()]; !ok && u.TS > p.appliedRemote[u.Origin] {
				p.payloads[u.ID()] = u
				p.arrivals[u.ID()] = time.Now()
			}
			p.payloadMu.Unlock()
		case wal.KindSkip:
			p.payloadMu.Lock()
			if u.TS > p.appliedRemote[u.Origin] {
				p.appliedRemote[u.Origin] = u.TS
			}
			p.payloadMu.Unlock()
		default: // KindRemote
			batch = append(batch, kvstore.BatchEntry{Key: u.Key, Ver: types.Version{Value: u.Value, TS: u.TS, VTS: u.VTS, Origin: u.Origin}})
			if len(batch) == recoverChunk {
				flush()
			}
			p.payloadMu.Lock()
			if u.TS > p.appliedRemote[u.Origin] {
				p.appliedRemote[u.Origin] = u.TS
			}
			delete(p.payloads, u.ID())
			delete(p.arrivals, u.ID())
			p.payloadMu.Unlock()
		}
		return nil
	})
	flush()
	return err
}

// MaybeSnapshot compacts the store when its log has outgrown threshold
// (wal.DefaultSnapshotThreshold when <= 0): the snapshot carries every
// live version plus a marks record for the state overwritten versions
// took with them (sequence counter, clock floor, applied watermarks).
// With a kvstore.Persistent backend the versions stay in the backend's
// segments: the backend is synced first (so the WAL may stop vouching
// for the records about to be truncated), the snapshot carries only the
// pending payload buffer and the marks record, and the backend's own
// compaction rides the same cadence afterwards. Writers are paused for
// the duration of the state capture.
func (p *Partition) MaybeSnapshot(threshold int64) (bool, error) {
	if p.cfg.Store == nil {
		return false, nil
	}
	if threshold <= 0 {
		threshold = wal.DefaultSnapshotThreshold
	}
	if p.cfg.Store.LogSize() < threshold {
		return false, nil
	}
	if err := p.snapshotNow(); err != nil {
		return false, err
	}
	return true, nil
}

// ForceSnapshot snapshots regardless of log size. Snapshot installation
// (bootstrap) uses it to reach a durable point immediately after a bulk
// apply that bypassed per-record WAL appends.
func (p *Partition) ForceSnapshot() error {
	if p.cfg.Store == nil {
		return nil
	}
	return p.snapshotNow()
}

func (p *Partition) snapshotNow() error {
	p.durMu.Lock()
	defer p.durMu.Unlock()
	persistent, _ := p.store.(kvstore.Persistent)
	if persistent != nil {
		// Segment durability must precede log truncation: once the WAL
		// forgets a record, only the backend's segments hold its version.
		if err := persistent.Sync(); err != nil {
			return err
		}
	}
	err := p.cfg.Store.Snapshot(func(emit func([]byte) error) error {
		var emitErr error
		if persistent == nil {
			p.store.ForEach(func(k types.Key, v types.Version) {
				if emitErr != nil {
					return
				}
				u := &types.Update{
					Key: k, Value: v.Value, Origin: v.Origin,
					Partition: p.cfg.ID, TS: v.TS, VTS: v.VTS,
				}
				// All versions re-enter through the LWW apply path on
				// replay; KindRemote keeps them off the sequence counter,
				// which the marks record restores exactly.
				emitErr = emit(wal.EncodeUpdate(wal.KindRemote, u))
			})
			if emitErr != nil {
				return emitErr
			}
		}
		p.seqMu.Lock()
		seq := p.seq
		p.seqMu.Unlock()
		p.payloadMu.Lock()
		applied := make(map[types.DCID]hlc.Timestamp, len(p.appliedRemote))
		for origin, ts := range p.appliedRemote {
			applied[origin] = ts
		}
		for _, u := range p.payloads {
			if emitErr = emit(wal.EncodeUpdate(wal.KindPayload, u)); emitErr != nil {
				break
			}
		}
		p.payloadMu.Unlock()
		if emitErr != nil {
			return emitErr
		}
		return emit(wal.EncodeMarks(wal.Marks{Seq: seq, ClockTS: p.clock.Last(), Applied: applied}))
	})
	if err != nil {
		return err
	}
	if persistent != nil {
		// Reclaim overwritten records now that the log is compacted; the
		// backend skips shards below its garbage threshold.
		if err := persistent.Compact(); err != nil {
			return err
		}
	}
	return nil
}

// CaptureSnapshot emits a consistent snapshot of the partition at a
// pinned watermark, for shipping to a bootstrapping peer: every live
// version as a KindRemote record, then one marks record whose applied
// map is the watermark vector the capture is consistent at. Writers are
// paused for the duration (the capture holds the durability lock
// exclusively, like MaybeSnapshot).
//
// The marks vector covers the partition's own origin with the clock
// floor: every locally acknowledged update is applied to the store
// before the durability lock is released, so anything at or below the
// floor is either in the capture or superseded within it — the
// installer may safely treat the floor as its applied watermark for
// this origin.
func (p *Partition) CaptureSnapshot(emit func(rec []byte) error) error {
	p.durMu.Lock()
	defer p.durMu.Unlock()
	var emitErr error
	p.store.ForEach(func(k types.Key, v types.Version) {
		if emitErr != nil {
			return
		}
		u := &types.Update{
			Key: k, Value: v.Value, Origin: v.Origin,
			Partition: p.cfg.ID, TS: v.TS, VTS: v.VTS,
		}
		emitErr = emit(wal.EncodeUpdate(wal.KindRemote, u))
	})
	if emitErr != nil {
		return emitErr
	}
	applied := make(map[types.DCID]hlc.Timestamp, p.cfg.DCs)
	p.payloadMu.Lock()
	for origin, ts := range p.appliedRemote {
		applied[origin] = ts
	}
	p.payloadMu.Unlock()
	floor := p.clock.Last()
	applied[p.cfg.DC] = floor
	return emit(wal.EncodeMarks(wal.Marks{ClockTS: floor, Applied: applied}))
}

// SnapshotInstall streams a shipped snapshot's records into a partition:
// versions land through the store's batch path in chunks, the marks
// record's watermarks and clock floor are adopted at Commit, and a
// forced WAL snapshot makes the installed state durable in one step
// (per-record WAL appends are skipped — a crash mid-install loses only
// re-pullable state, and the bootstrap runner restarts the pull).
type SnapshotInstall struct {
	p     *Partition
	batch []kvstore.BatchEntry
	marks *wal.Marks
}

// BeginInstall starts a snapshot installation.
func (p *Partition) BeginInstall() *SnapshotInstall {
	return &SnapshotInstall{p: p, batch: make([]kvstore.BatchEntry, 0, 256)}
}

// Record consumes one wal-encoded snapshot record (the stream
// CaptureSnapshot emitted).
func (in *SnapshotInstall) Record(rec []byte) error {
	if len(rec) > 0 && rec[0] == wal.KindMarks {
		m, err := wal.DecodeMarks(rec)
		if err != nil {
			return err
		}
		in.marks = &m
		return nil
	}
	kind, u, err := wal.DecodeUpdate(rec)
	if err != nil {
		return err
	}
	if kind != wal.KindRemote {
		return fmt.Errorf("partition: unexpected record kind %d in shipped snapshot", kind)
	}
	in.p.clock.Observe(u.TS)
	in.batch = append(in.batch, kvstore.BatchEntry{Key: u.Key, Ver: types.Version{
		Value: u.Value, TS: u.TS, VTS: u.VTS, Origin: u.Origin,
	}})
	if len(in.batch) == cap(in.batch) {
		in.p.store.ApplyBatch(in.batch)
		in.batch = in.batch[:0]
	}
	return nil
}

// Commit flushes the final batch, adopts the snapshot's watermarks and
// clock floor, floors the local sequence counter on wall-clock
// nanoseconds (a rebuilt process must never reuse a pre-loss UpdateID;
// the donor cannot know this partition's old counter, so the floor
// over-approximates it), and forces a WAL snapshot so the installed
// state is durable.
func (in *SnapshotInstall) Commit() error {
	p := in.p
	if len(in.batch) > 0 {
		p.store.ApplyBatch(in.batch)
		in.batch = in.batch[:0]
	}
	if in.marks == nil {
		return fmt.Errorf("partition: shipped snapshot ended without a marks record")
	}
	p.clock.Observe(in.marks.ClockTS)
	p.payloadMu.Lock()
	for origin, ts := range in.marks.Applied {
		if ts > p.appliedRemote[origin] {
			p.appliedRemote[origin] = ts
		}
	}
	p.payloadMu.Unlock()
	p.seqMu.Lock()
	if floor := uint64(time.Now().UnixNano()); floor > p.seq {
		p.seq = floor
	}
	p.seqMu.Unlock()
	return p.ForceSnapshot()
}

// AppliedRemoteWatermark reports the highest origin timestamp applied (and,
// after recovery, durably recorded) from origin k.
func (p *Partition) AppliedRemoteWatermark(k types.DCID) hlc.Timestamp {
	p.payloadMu.Lock()
	defer p.payloadMu.Unlock()
	return p.appliedRemote[k]
}
