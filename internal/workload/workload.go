// Package workload reimplements the load-generation side of the paper's
// evaluation: a Basho-Bench-like closed-loop driver with the exact
// parameters of §7 — 100k keys, 100-byte values, uniform and power-law key
// distributions, and read:write ratios of 99:1, 90:10, 75:25 and 50:50.
package workload

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"eunomia/internal/metrics"
	"eunomia/internal/types"
)

// Defaults from §7 "Workload Generator".
const (
	DefaultKeys      = 100_000
	DefaultValueSize = 100
)

// KeyDist produces key indices in [0, N).
type KeyDist interface {
	// Next draws a key index using r.
	Next(r *rand.Rand) uint64
	// Size returns the key-space size N.
	Size() uint64
	// Name labels the distribution in reports ("uniform", "powerlaw").
	Name() string
}

// Uniform draws keys uniformly, the paper's default distribution.
type Uniform struct{ N uint64 }

// Next implements KeyDist.
func (u Uniform) Next(r *rand.Rand) uint64 { return uint64(r.Int63n(int64(u.N))) }

// Size implements KeyDist.
func (u Uniform) Size() uint64 { return u.N }

// Name implements KeyDist.
func (u Uniform) Name() string { return "uniform" }

// PowerLaw draws keys from a Zipf-like distribution (the paper's "P"
// workloads), concentrating traffic on a small hot set.
type PowerLaw struct {
	N uint64
	// S is the Zipf skew parameter (> 1). The conventional
	// "power-law web workload" value of ~1.01-1.3 applies; New uses 1.1.
	S float64
}

// NewPowerLaw returns a power-law distribution over n keys with the
// default skew.
func NewPowerLaw(n uint64) PowerLaw { return PowerLaw{N: n, S: 1.1} }

// Next implements KeyDist. rand.Zipf is not safe for concurrent use, so a
// generator is derived per call site via zipfPool keyed by the rand.Rand.
func (p PowerLaw) Next(r *rand.Rand) uint64 {
	z := zipfFor(r, p)
	return z.Uint64()
}

// Size implements KeyDist.
func (p PowerLaw) Size() uint64 { return p.N }

// Name implements KeyDist.
func (p PowerLaw) Name() string { return "powerlaw" }

// zipfCache memoizes one rand.Zipf per (rand.Rand, params); each driver
// goroutine owns its Rand, so there is no cross-goroutine sharing.
var zipfCache sync.Map // map[*rand.Rand]*rand.Zipf

func zipfFor(r *rand.Rand, p PowerLaw) *rand.Zipf {
	if z, ok := zipfCache.Load(r); ok {
		return z.(*rand.Zipf)
	}
	z := rand.NewZipf(r, p.S, 1, p.N-1)
	zipfCache.Store(r, z)
	return z
}

// Mix is an operation mix. ReadPct of 90 models the 90:10 workload.
type Mix struct{ ReadPct int }

// IsRead draws the next operation type.
func (m Mix) IsRead(r *rand.Rand) bool { return r.Intn(100) < m.ReadPct }

// String renders "90:10"-style labels.
func (m Mix) String() string { return fmt.Sprintf("%d:%d", m.ReadPct, 100-m.ReadPct) }

// StandardMixes are the four ratios evaluated in Figure 5.
var StandardMixes = []Mix{{50}, {75}, {90}, {99}}

// KeyName formats key index i as a fixed-width store key so that hashing
// spreads keys across partitions independently of the distribution.
func KeyName(i uint64) types.Key { return types.Key(fmt.Sprintf("key%08d", i)) }

// Client is the store-facing surface the driver exercises: the operations
// of Algorithm 1. Implementations carry their own causal session state
// (Clock_c or VClock_c).
type Client interface {
	Read(key types.Key) (types.Value, error)
	Update(key types.Key, value types.Value) error
}

// ClientFactory mints a fresh session-carrying client; the driver calls it
// once per worker goroutine.
type ClientFactory func(worker int) Client

// Config parameterises one driver run.
type Config struct {
	Workers   int           // concurrent closed-loop clients
	Duration  time.Duration // measured run length (after warmup)
	Warmup    time.Duration // untimed lead-in, discarded (paper trims first/last minute)
	Mix       Mix
	Keys      KeyDist
	ValueSize int
	Seed      int64
	// ThinkTime inserts a fixed pause between operations; zero means
	// eager clients ("zero waiting time between operations", §7.1).
	ThinkTime time.Duration
}

func (c *Config) fill() {
	if c.Workers == 0 {
		c.Workers = 8
	}
	if c.Keys == nil {
		c.Keys = Uniform{N: DefaultKeys}
	}
	if c.ValueSize == 0 {
		c.ValueSize = DefaultValueSize
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
}

// Result aggregates one driver run.
type Result struct {
	Ops     int64 // operations completed in the measured window
	Reads   int64
	Updates int64
	Errors  int64
	Elapsed time.Duration // measured window length
	OpLat   *metrics.Histogram
	UpdLat  *metrics.Histogram
}

// Throughput returns measured operations per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// Run drives the store with cfg.Workers closed-loop clients and returns
// aggregate results for the measured window. It honours ctx cancellation.
func Run(ctx context.Context, cfg Config, factory ClientFactory) Result {
	cfg.fill()
	res := Result{OpLat: metrics.NewHistogram(), UpdLat: metrics.NewHistogram()}

	var ops, reads, updates, errs metrics.Counter
	measure := &measurePhase{}

	var wg sync.WaitGroup
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			client := factory(w)
			value := make(types.Value, cfg.ValueSize)
			r.Read(value)
			for runCtx.Err() == nil {
				key := KeyName(cfg.Keys.Next(r))
				start := time.Now()
				var err error
				isRead := cfg.Mix.IsRead(r)
				if isRead {
					_, err = client.Read(key)
				} else {
					err = client.Update(key, value)
				}
				lat := time.Since(start)
				if measure.active() {
					ops.Inc()
					if err != nil {
						errs.Inc()
					} else if isRead {
						reads.Inc()
					} else {
						updates.Inc()
					}
					res.OpLat.RecordDuration(lat)
					if !isRead {
						res.UpdLat.RecordDuration(lat)
					}
				}
				if cfg.ThinkTime > 0 {
					time.Sleep(cfg.ThinkTime)
				}
			}
		}(w)
	}

	// Warmup, then measured window, then stop.
	sleepCtx(runCtx, cfg.Warmup)
	measure.start()
	startT := time.Now()
	sleepCtx(runCtx, cfg.Duration)
	measure.stop()
	res.Elapsed = time.Since(startT)
	cancel()
	wg.Wait()

	res.Ops = ops.Load()
	res.Reads = reads.Load()
	res.Updates = updates.Load()
	res.Errors = errs.Load()
	return res
}

type measurePhase struct {
	v atomic.Bool
}

func (m *measurePhase) start()       { m.v.Store(true) }
func (m *measurePhase) stop()        { m.v.Store(false) }
func (m *measurePhase) active() bool { return m.v.Load() }

func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
