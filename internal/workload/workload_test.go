package workload

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"eunomia/internal/types"
)

func TestUniformCoversKeySpace(t *testing.T) {
	u := Uniform{N: 100}
	r := rand.New(rand.NewSource(1))
	seen := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		k := u.Next(r)
		if k >= 100 {
			t.Fatalf("key %d out of range", k)
		}
		seen[k] = true
	}
	if len(seen) < 95 {
		t.Fatalf("uniform covered only %d/100 keys", len(seen))
	}
	if u.Name() != "uniform" || u.Size() != 100 {
		t.Fatal("metadata wrong")
	}
}

func TestUniformApproximatelyFlat(t *testing.T) {
	u := Uniform{N: 10}
	r := rand.New(rand.NewSource(2))
	counts := make([]int, 10)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[u.Next(r)]++
	}
	for k, c := range counts {
		if math.Abs(float64(c)-draws/10) > draws/10*0.1 {
			t.Fatalf("key %d drawn %d times, expected ~%d", k, c, draws/10)
		}
	}
}

func TestPowerLawIsSkewed(t *testing.T) {
	p := NewPowerLaw(10000)
	r := rand.New(rand.NewSource(3))
	counts := map[uint64]int{}
	const draws = 100000
	for i := 0; i < draws; i++ {
		k := p.Next(r)
		if k >= 10000 {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	// The hottest key must take a disproportionate share and the head
	// must dominate: definitive power-law signatures.
	var top int
	headShare := 0
	for k, c := range counts {
		if c > top {
			top = c
		}
		if k < 100 {
			headShare += c
		}
	}
	if float64(top) < draws*0.05 {
		t.Fatalf("hottest key only %d/%d draws — not skewed", top, draws)
	}
	if float64(headShare) < draws*0.5 {
		t.Fatalf("head (1%% of keys) drew only %d/%d", headShare, draws)
	}
	if p.Name() != "powerlaw" {
		t.Fatal("name wrong")
	}
}

func TestMix(t *testing.T) {
	m := Mix{ReadPct: 90}
	r := rand.New(rand.NewSource(4))
	reads := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if m.IsRead(r) {
			reads++
		}
	}
	if math.Abs(float64(reads)/draws-0.9) > 0.01 {
		t.Fatalf("90:10 mix drew %d reads of %d", reads, draws)
	}
	if m.String() != "90:10" {
		t.Fatalf("String = %q", m.String())
	}
}

func TestStandardMixes(t *testing.T) {
	if len(StandardMixes) != 4 {
		t.Fatal("expected the paper's four mixes")
	}
}

func TestKeyName(t *testing.T) {
	if KeyName(7) != "key00000007" {
		t.Fatalf("KeyName = %q", KeyName(7))
	}
}

// countingClient is a thread-safe fake store client.
type countingClient struct {
	mu      sync.Mutex
	reads   int
	updates int
	fail    bool
}

func (c *countingClient) Read(types.Key) (types.Value, error) {
	c.mu.Lock()
	c.reads++
	c.mu.Unlock()
	return nil, nil
}

func (c *countingClient) Update(types.Key, types.Value) error {
	c.mu.Lock()
	c.updates++
	c.mu.Unlock()
	return nil
}

func TestRunDrivesClients(t *testing.T) {
	var mu sync.Mutex
	clients := map[int]*countingClient{}
	res := Run(context.Background(), Config{
		Workers:  4,
		Duration: 100 * time.Millisecond,
		Warmup:   20 * time.Millisecond,
		Mix:      Mix{ReadPct: 50},
		Keys:     Uniform{N: 10},
	}, func(w int) Client {
		mu.Lock()
		defer mu.Unlock()
		c := &countingClient{}
		clients[w] = c
		return c
	})
	if len(clients) != 4 {
		t.Fatalf("factory called %d times", len(clients))
	}
	if res.Ops == 0 {
		t.Fatal("no operations measured")
	}
	if res.Reads == 0 || res.Updates == 0 {
		t.Fatalf("mix not exercised: %d reads, %d updates", res.Reads, res.Updates)
	}
	if res.Throughput() <= 0 {
		t.Fatal("throughput not computed")
	}
	if res.OpLat.Count() != res.Ops {
		t.Fatalf("latency histogram has %d samples for %d ops", res.OpLat.Count(), res.Ops)
	}
}

func TestRunHonoursContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	Run(ctx, Config{
		Workers:  2,
		Duration: 10 * time.Second, // would run far too long without ctx
		Mix:      Mix{ReadPct: 100},
	}, func(int) Client { return &countingClient{} })
	if time.Since(start) > 2*time.Second {
		t.Fatal("Run ignored context cancellation")
	}
}

func TestRunThinkTime(t *testing.T) {
	res := Run(context.Background(), Config{
		Workers:   1,
		Duration:  200 * time.Millisecond,
		ThinkTime: 10 * time.Millisecond,
		Mix:       Mix{ReadPct: 100},
	}, func(int) Client { return &countingClient{} })
	// ~20 ops expected; allow broad slack for scheduler jitter.
	if res.Ops > 40 {
		t.Fatalf("think time not applied: %d ops in 200ms", res.Ops)
	}
}

func TestThroughputZeroElapsed(t *testing.T) {
	var r Result
	if r.Throughput() != 0 {
		t.Fatal("zero-elapsed throughput should be 0")
	}
}
