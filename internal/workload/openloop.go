package workload

// Open-loop load generation. The closed-loop driver (workload.go) models
// the paper's Basho-Bench harness: each worker waits for its previous
// operation before issuing the next, so when the store slows down the
// offered load politely slows down with it — and the latency report
// silently omits exactly the periods a real user population would have
// felt (coordinated omission). The open-loop driver removes that blind
// spot: operations are released on a fixed arrival schedule that never
// consults the store, and every latency sample is measured from the
// operation's *scheduled* arrival instant, so time spent queued behind a
// stall is charged to the store, not hidden by the generator.

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"eunomia/internal/metrics"
	"eunomia/internal/types"
)

// Arrival selects the inter-arrival process of the open-loop schedule.
type Arrival int

const (
	// ArrivalFixed spaces operations exactly 1/Rate apart — the classic
	// constant-throughput harness (wrk2-style).
	ArrivalFixed Arrival = iota
	// ArrivalPoisson draws exponential inter-arrival gaps with mean
	// 1/Rate — the aggregate arrival process of a large population of
	// independent clients with exponentially distributed think times.
	ArrivalPoisson
)

// String labels the process in reports.
func (a Arrival) String() string {
	if a == ArrivalPoisson {
		return "poisson"
	}
	return "fixed"
}

// OpenConfig parameterises one open-loop run.
type OpenConfig struct {
	// Rate is the offered load in operations per second. Default 1000.
	Rate float64
	// Duration is the measured window; Warmup precedes it and its
	// operations run but are not recorded.
	Duration time.Duration
	Warmup   time.Duration
	// Drain bounds how long workers may keep finishing operations
	// scheduled inside the window after it closes; whatever is still
	// unfinished then is reported as Backlog. Default 2s.
	Drain time.Duration

	Mix       Mix
	Keys      KeyDist
	ValueSize int
	Seed      int64
	// Workers is the service pool draining the schedule (default 256).
	// It bounds concurrency, not offered load: when all workers are
	// busy, due operations queue — and their queueing time is charged
	// to their latency samples.
	Workers int
	Arrival Arrival
}

func (c *OpenConfig) fill() {
	if c.Rate <= 0 {
		c.Rate = 1000
	}
	if c.Drain <= 0 {
		c.Drain = 2 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = 256
	}
	if c.Keys == nil {
		c.Keys = Uniform{N: DefaultKeys}
	}
	if c.ValueSize == 0 {
		c.ValueSize = DefaultValueSize
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
}

// OpenResult aggregates one open-loop run. Lat is the
// coordinated-omission-safe distribution: scheduled arrival to
// completion. ServiceLat is dispatch to completion — the two diverge
// exactly when the store cannot keep up with the offered rate.
type OpenResult struct {
	// Offered counts operations scheduled inside the measured window;
	// Completed of them finished (Errors among those), and Backlog were
	// still queued or in flight when the drain budget expired —
	// percentiles are a lower bound whenever Backlog is nonzero.
	Offered   int64
	Completed int64
	Errors    int64
	Backlog   int64
	Reads     int64
	Updates   int64
	Elapsed   time.Duration

	Lat        *metrics.Histogram
	ServiceLat *metrics.Histogram
}

// Throughput returns completed operations per second of the measured
// window.
func (r OpenResult) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Completed) / r.Elapsed.Seconds()
}

// P50 returns the median schedule-to-completion latency.
func (r OpenResult) P50() time.Duration { return time.Duration(r.Lat.Percentile(50)) }

// P99 returns the 99th-percentile schedule-to-completion latency.
func (r OpenResult) P99() time.Duration { return time.Duration(r.Lat.Percentile(99)) }

// P999 returns the 99.9th-percentile schedule-to-completion latency.
func (r OpenResult) P999() time.Duration { return time.Duration(r.Lat.Percentile(99.9)) }

// openOp is one scheduled operation. Everything random is drawn by the
// dispatcher from a single seeded stream, so a run is reproducible
// regardless of worker interleaving.
type openOp struct {
	sched    time.Time
	key      types.Key
	isRead   bool
	measured bool
}

// RunOpen drives the store at the configured offered rate and returns the
// coordinated-omission-safe latency distribution. It honours ctx
// cancellation (the run ends early; ops not yet dispatched count as
// backlog).
func RunOpen(ctx context.Context, cfg OpenConfig, factory ClientFactory) OpenResult {
	cfg.fill()
	res := OpenResult{Lat: metrics.NewHistogram(), ServiceLat: metrics.NewHistogram()}

	interval := time.Duration(float64(time.Second) / cfg.Rate)
	total := int(cfg.Rate*(cfg.Warmup+cfg.Duration).Seconds()) + cfg.Workers + 1
	queue := make(chan openOp, total)

	var offered, completed, errs, reads, updates metrics.Counter

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Dispatcher: release operations on the schedule. When the clock has
	// run ahead of the schedule (a sleep overshot, or a burst of due
	// arrivals), operations are released back-to-back with their original
	// scheduled instants — the schedule never yields to the store.
	start := time.Now()
	measureStart := start.Add(cfg.Warmup)
	measureEnd := measureStart.Add(cfg.Duration)
	var dispatchWG sync.WaitGroup
	dispatchWG.Add(1)
	go func() {
		defer dispatchWG.Done()
		defer close(queue)
		r := rand.New(rand.NewSource(cfg.Seed))
		sched := start
		for sched.Before(measureEnd) {
			if wait := time.Until(sched); wait > 0 {
				sleepCtx(runCtx, wait)
			}
			if runCtx.Err() != nil {
				return
			}
			op := openOp{
				sched:    sched,
				key:      KeyName(cfg.Keys.Next(r)),
				isRead:   cfg.Mix.IsRead(r),
				measured: !sched.Before(measureStart),
			}
			enqueued := false
			select {
			case queue <- op:
				enqueued = true
			default:
				// The channel is sized for the full schedule; running out
				// means the clock produced more arrivals than planned
				// (possible under Poisson). Drop rather than block — a
				// dropped arrival is not offered load.
			}
			if enqueued && op.measured {
				offered.Inc()
			}
			if cfg.Arrival == ArrivalPoisson {
				sched = sched.Add(time.Duration(r.ExpFloat64() * float64(interval)))
			} else {
				sched = sched.Add(interval)
			}
		}
	}()

	// Workers: drain the schedule until it closes, then keep finishing
	// within the drain budget.
	drainCtx, drainCancel := context.WithDeadline(ctx, measureEnd.Add(cfg.Drain))
	defer drainCancel()
	value := make(types.Value, cfg.ValueSize)
	rand.New(rand.NewSource(cfg.Seed)).Read(value)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := factory(w)
			for {
				var op openOp
				var ok bool
				select {
				case op, ok = <-queue:
					if !ok {
						return
					}
				case <-drainCtx.Done():
					return
				}
				dispatched := time.Now()
				var err error
				if op.isRead {
					_, err = client.Read(op.key)
				} else {
					err = client.Update(op.key, value)
				}
				end := time.Now()
				if op.measured {
					completed.Inc()
					if err != nil {
						errs.Inc()
					} else if op.isRead {
						reads.Inc()
					} else {
						updates.Inc()
					}
					res.Lat.RecordDuration(end.Sub(op.sched))
					res.ServiceLat.RecordDuration(end.Sub(dispatched))
				}
				if drainCtx.Err() != nil {
					return
				}
			}
		}(w)
	}

	dispatchWG.Wait()
	wg.Wait()
	drainCancel()

	res.Elapsed = measureEnd.Sub(measureStart)
	res.Offered = offered.Load()
	res.Completed = completed.Load()
	res.Errors = errs.Load()
	res.Reads = reads.Load()
	res.Updates = updates.Load()
	res.Backlog = res.Offered - res.Completed
	return res
}
