package workload

import (
	"context"
	"sync"
	"testing"
	"time"

	"eunomia/internal/types"
)

// memClient is an instantaneous in-memory store.
type memClient struct {
	mu sync.Mutex
	m  map[types.Key]types.Value
}

func (c *memClient) Read(key types.Key) (types.Value, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[key], nil
}

func (c *memClient) Update(key types.Key, value types.Value) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = value
	return nil
}

// slowClient stalls every operation for a fixed service time.
type slowClient struct {
	memClient
	delay time.Duration
}

func (c *slowClient) Read(key types.Key) (types.Value, error) {
	time.Sleep(c.delay)
	return c.memClient.Read(key)
}

func (c *slowClient) Update(key types.Key, value types.Value) error {
	time.Sleep(c.delay)
	return c.memClient.Update(key, value)
}

func TestOpenLoopOffersScheduledRate(t *testing.T) {
	shared := &memClient{m: make(map[types.Key]types.Value)}
	res := RunOpen(context.Background(), OpenConfig{
		Rate:     2000,
		Duration: 500 * time.Millisecond,
		Warmup:   100 * time.Millisecond,
		Mix:      Mix{ReadPct: 90},
		Workers:  32,
	}, func(int) Client { return shared })

	// ~1000 ops in the window; generous bounds absorb scheduler noise.
	if res.Offered < 800 || res.Offered > 1200 {
		t.Fatalf("offered %d ops, want ~1000", res.Offered)
	}
	if res.Backlog != 0 {
		t.Fatalf("instantaneous store left backlog %d", res.Backlog)
	}
	if res.Completed != res.Offered {
		t.Fatalf("completed %d of %d", res.Completed, res.Offered)
	}
	if res.Reads == 0 || res.Updates == 0 {
		t.Fatalf("mix not exercised: %d reads, %d updates", res.Reads, res.Updates)
	}
	if res.Lat.Count() != res.Completed {
		t.Fatalf("recorded %d latencies for %d completions", res.Lat.Count(), res.Completed)
	}
}

// TestOpenLoopChargesQueueing is the coordinated-omission property: with
// one worker serving 5ms operations against a 1000/s schedule, the
// closed-loop view would report ~5ms per op; the open-loop view must
// charge the growing queue to the tail.
func TestOpenLoopChargesQueueing(t *testing.T) {
	res := RunOpen(context.Background(), OpenConfig{
		Rate:     1000,
		Duration: 300 * time.Millisecond,
		Workers:  1,
		Drain:    100 * time.Millisecond,
		Mix:      Mix{ReadPct: 100},
	}, func(int) Client {
		return &slowClient{memClient: memClient{m: make(map[types.Key]types.Value)}, delay: 5 * time.Millisecond}
	})

	// Service capacity is ~200/s against 1000/s offered: most of the
	// window's arrivals cannot finish inside the drain budget.
	if res.Backlog == 0 {
		t.Fatal("overloaded run reported no backlog")
	}
	// CO-safety: scheduled-arrival latency must dwarf service latency.
	p99 := res.P99()
	servP99 := time.Duration(res.ServiceLat.Percentile(99))
	if p99 < 4*servP99 {
		t.Fatalf("p99 %v does not charge queueing (service p99 %v)", p99, servP99)
	}
}

func TestOpenLoopPoissonArrivals(t *testing.T) {
	shared := &memClient{m: make(map[types.Key]types.Value)}
	res := RunOpen(context.Background(), OpenConfig{
		Rate:     2000,
		Duration: 400 * time.Millisecond,
		Arrival:  ArrivalPoisson,
		Mix:      Mix{ReadPct: 50},
		Workers:  32,
	}, func(int) Client { return shared })
	// Poisson keeps the mean rate: ~800 arrivals, loose bounds.
	if res.Offered < 500 || res.Offered > 1200 {
		t.Fatalf("poisson offered %d, want ~800", res.Offered)
	}
	if res.Backlog != 0 {
		t.Fatalf("backlog %d", res.Backlog)
	}
}

func TestOpenLoopHonoursCancel(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	RunOpen(ctx, OpenConfig{
		Rate:     100,
		Duration: 10 * time.Second,
		Workers:  2,
	}, func(int) Client { return &memClient{m: make(map[types.Key]types.Value)} })
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled run took %v", elapsed)
	}
}
