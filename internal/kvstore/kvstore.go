// Package kvstore is the storage engine beneath each logical partition —
// the stand-in for Riak KV's per-vnode storage in the paper's prototype.
//
// It stores one version per key (the paper's protocols deliver remote
// updates in causal order, so a single version suffices) and resolves
// concurrent cross-datacenter writes with deterministic last-writer-wins
// on (timestamp, origin), the same convergence rule an eventually
// consistent Riak deployment would apply.
//
// The store is sharded internally so that many client goroutines can hit
// one partition concurrently, mirroring the paper's requirement that local
// updates proceed "without any a priori synchronization".
package kvstore

import (
	"hash/maphash"
	"sync"

	"eunomia/internal/types"
)

const numShards = 16

var hashSeed = maphash.MakeSeed()

// Store holds the versions of one partition's key range.
type Store struct {
	shards [numShards]shard
}

type shard struct {
	mu sync.RWMutex
	m  map[types.Key]types.Version
}

// New returns an empty store.
func New() *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i].m = make(map[types.Key]types.Version)
	}
	return s
}

func shardIndex(k types.Key) uint64 {
	return maphash.String(hashSeed, string(k)) % numShards
}

func (s *Store) shardFor(k types.Key) *shard {
	return &s.shards[shardIndex(k)]
}

// Get returns the stored version of k, if any.
func (s *Store) Get(k types.Key) (types.Version, bool) {
	sh := s.shardFor(k)
	sh.mu.RLock()
	v, ok := sh.m[k]
	sh.mu.RUnlock()
	return v, ok
}

// Put stores v under k unconditionally. Partitions use it on the local
// update path, where Algorithm 2 has already serialized writes to the key
// and assigned a timestamp greater than the stored one.
func (s *Store) Put(k types.Key, v types.Version) {
	sh := s.shardFor(k)
	sh.mu.Lock()
	sh.m[k] = v
	sh.mu.Unlock()
}

// Apply merges v into k under last-writer-wins: it stores v only if it is
// newer than the current version (types.Version.Newer). It returns whether
// v won. Remote update application and the eventual-consistency baseline
// both use this path; LWW makes concurrent sibling writes converge to the
// same version at every datacenter.
func (s *Store) Apply(k types.Key, v types.Version) bool {
	sh := s.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if old, ok := sh.m[k]; ok && !v.Newer(old) {
		return false
	}
	sh.m[k] = v
	return true
}

// BatchEntry is one (key, version) pair of an ApplyBatch call.
type BatchEntry struct {
	Key types.Key
	Ver types.Version
}

// ApplyBatch merges a batch of versions under the same LWW rule as Apply,
// paying one lock acquisition per involved shard instead of one per
// update, and allocating nothing of its own (the 16-shard layout makes
// the involved set a bitmask). It returns how many versions won.
//
// Visibility is batch-atomic: every involved shard is locked before the
// first write and none is released until the last write lands, so a
// reader sees either nothing of the batch or its complete effect —
// entries may therefore be applied in any order internally without a
// reader ever observing a causally later update before an earlier one.
// Callers rely on this when they collapse a causally ordered run of
// releases into one batch.
//
// Ownership of each entry's Value and VTS backing memory transfers to the
// store — for arena-backed versions decoded from the wire this is the
// whole point: no per-update cloning on the apply path. Callers must not
// mutate an entry after ApplyBatch returns, and readers (Get, ForEach,
// snapshot capture) treat stored values as immutable, copying only when
// they need to retain or modify (the snapshot path's record encoding is
// such a copy).
func (s *Store) ApplyBatch(entries []BatchEntry) int {
	if len(entries) == 0 {
		return 0
	}
	var mask uint32
	for i := range entries {
		mask |= 1 << shardIndex(entries[i].Key)
	}
	for i := 0; i < numShards; i++ {
		if mask&(1<<i) != 0 {
			s.shards[i].mu.Lock()
		}
	}
	applied := 0
	for i := range entries {
		e := &entries[i]
		sh := &s.shards[shardIndex(e.Key)]
		if old, ok := sh.m[e.Key]; ok && !e.Ver.Newer(old) {
			continue
		}
		sh.m[e.Key] = e.Ver
		applied++
	}
	for i := numShards - 1; i >= 0; i-- {
		if mask&(1<<i) != 0 {
			s.shards[i].mu.Unlock()
		}
	}
	return applied
}

// Len returns the number of stored keys.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		s.shards[i].mu.RLock()
		n += len(s.shards[i].m)
		s.shards[i].mu.RUnlock()
	}
	return n
}

// ForEach visits every (key, version) pair; the snapshot is per-shard
// consistent. Used by convergence checks in tests.
func (s *Store) ForEach(fn func(types.Key, types.Version)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, v := range sh.m {
			fn(k, v)
		}
		sh.mu.RUnlock()
	}
}

// Ring maps keys to partitions by hash, the moral equivalent of Riak's
// consistent-hashing ring. Sibling partitions at different datacenters use
// the same ring, so replicated keys land on matching partition ids.
//
// Unlike the store's internal shard hash, the ring hash must agree across
// OS processes (a payload shipped by one process is matched to metadata
// released in another), so it is a fixed FNV-1a — never a per-process
// random seed.
type Ring struct {
	n int
}

// NewRing returns a ring over n partitions.
func NewRing(n int) Ring {
	if n <= 0 {
		panic("kvstore: ring needs at least one partition")
	}
	return Ring{n: n}
}

// Partitions returns the partition count.
func (r Ring) Partitions() int { return r.n }

// Responsible returns the partition owning key k (RESPONSIBLE(Key) in
// Algorithms 1 and 5).
func (r Ring) Responsible(k types.Key) types.PartitionID {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(k); i++ {
		h ^= uint64(k[i])
		h *= prime64
	}
	return types.PartitionID(h % uint64(r.n))
}
