// Package kvstore is the storage engine beneath each logical partition —
// the stand-in for Riak KV's per-vnode storage in the paper's prototype.
//
// It stores one version per key (the paper's protocols deliver remote
// updates in causal order, so a single version suffices) and resolves
// concurrent cross-datacenter writes with deterministic last-writer-wins
// on (timestamp, origin), the same convergence rule an eventually
// consistent Riak deployment would apply.
//
// Two backends implement the Store interface: Mem, the original sharded
// in-memory map (RAM-bound, zero I/O on every path), and Disk, a
// log-structured on-disk store (segment file per shard, in-memory index,
// pread reads) that holds datasets larger than memory. Both are sharded
// internally so that many client goroutines can hit one partition
// concurrently, mirroring the paper's requirement that local updates
// proceed "without any a priori synchronization".
package kvstore

import (
	"hash/maphash"
	"sync"

	"eunomia/internal/hlc"
	"eunomia/internal/types"
)

const numShards = 16

var hashSeed = maphash.MakeSeed()

// Store is the version store beneath one partition. Implementations must
// be safe for concurrent use and must preserve ApplyBatch's batch-atomic
// visibility and ownership-transfer contract (see Mem.ApplyBatch, the
// reference semantics).
type Store interface {
	// Get returns the stored version of k, if any.
	Get(k types.Key) (types.Version, bool)
	// Put stores v under k unconditionally (local update path, where the
	// partition has already serialized writes to the key).
	Put(k types.Key, v types.Version)
	// Apply merges v under last-writer-wins and reports whether v won.
	Apply(k types.Key, v types.Version) bool
	// ApplyBatch merges a batch under LWW with batch-atomic visibility,
	// paying at most one lock round per involved shard and ≤1 allocation
	// per update in steady state. Returns how many versions won.
	ApplyBatch(entries []BatchEntry) int
	// Len returns the number of stored keys.
	Len() int
	// Bytes reports the bytes of live data the store holds: resident
	// bytes for Mem, live on-disk record bytes for Disk. Exported as
	// eunomia_store_bytes{backend}.
	Bytes() int64
	// ForEach visits every (key, version) pair; the snapshot is per-shard
	// consistent. Convergence checks and snapshot capture use it.
	ForEach(fn func(types.Key, types.Version))
	// Close releases backend resources. The store must not be used after.
	Close() error
}

// Persistent is the extra surface of a store whose versions survive a
// crash on their own (today: Disk). Partitions use it to keep the WAL
// snapshot marks-only — versions need not be re-emitted into the wal
// snapshot when the backend already holds them durably — and to ride
// compaction on the snapshot cadence.
type Persistent interface {
	Store
	// Sync forces every applied version to stable storage. A partition
	// calls it before truncating its WAL at a snapshot boundary.
	Sync() error
	// Compact rewrites shards whose dead-record overhead has outgrown
	// their live data, reclaiming disk. Safe to call on the snapshot
	// cadence; shards below the garbage threshold are left alone.
	Compact() error
	// MaxTS returns the highest timestamp of any live version, so a
	// recovering partition can floor its hybrid clock above versions
	// whose WAL records were lost in the crash window.
	MaxTS() hlc.Timestamp
}

// BatchEntry is one (key, version) pair of an ApplyBatch call.
type BatchEntry struct {
	Key types.Key
	Ver types.Version
}

// Mem holds the versions of one partition's key range in sharded
// in-memory maps. It is the default backend.
type Mem struct {
	shards [numShards]shard
}

type shard struct {
	mu    sync.RWMutex
	m     map[types.Key]types.Version
	bytes int64
}

// New returns an empty in-memory store.
func New() *Mem {
	s := &Mem{}
	for i := range s.shards {
		s.shards[i].m = make(map[types.Key]types.Version)
	}
	return s
}

var _ Store = (*Mem)(nil)

func shardIndex(k types.Key) uint64 {
	return maphash.String(hashSeed, string(k)) % numShards
}

func (s *Mem) shardFor(k types.Key) *shard {
	return &s.shards[shardIndex(k)]
}

// versionBytes approximates the resident cost of one entry: key and value
// bytes, the vector's words, and a fixed per-entry overhead for the map
// cell and headers.
func versionBytes(k types.Key, v types.Version) int64 {
	return int64(len(k)) + int64(len(v.Value)) + int64(8*len(v.VTS)) + 48
}

// Get returns the stored version of k, if any.
func (s *Mem) Get(k types.Key) (types.Version, bool) {
	sh := s.shardFor(k)
	sh.mu.RLock()
	v, ok := sh.m[k]
	sh.mu.RUnlock()
	return v, ok
}

// Put stores v under k unconditionally. Partitions use it on the local
// update path, where Algorithm 2 has already serialized writes to the key
// and assigned a timestamp greater than the stored one.
func (s *Mem) Put(k types.Key, v types.Version) {
	sh := s.shardFor(k)
	sh.mu.Lock()
	if old, ok := sh.m[k]; ok {
		sh.bytes -= versionBytes(k, old)
	}
	sh.m[k] = v
	sh.bytes += versionBytes(k, v)
	sh.mu.Unlock()
}

// Apply merges v into k under last-writer-wins: it stores v only if it is
// newer than the current version (types.Version.Newer). It returns whether
// v won. Remote update application and the eventual-consistency baseline
// both use this path; LWW makes concurrent sibling writes converge to the
// same version at every datacenter.
func (s *Mem) Apply(k types.Key, v types.Version) bool {
	sh := s.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if old, ok := sh.m[k]; ok {
		if !v.Newer(old) {
			return false
		}
		sh.bytes -= versionBytes(k, old)
	}
	sh.m[k] = v
	sh.bytes += versionBytes(k, v)
	return true
}

// ApplyBatch merges a batch of versions under the same LWW rule as Apply,
// paying one lock acquisition per involved shard instead of one per
// update, and allocating nothing of its own (the 16-shard layout makes
// the involved set a bitmask). It returns how many versions won.
//
// Visibility is batch-atomic: every involved shard is locked before the
// first write and none is released until the last write lands, so a
// reader sees either nothing of the batch or its complete effect —
// entries may therefore be applied in any order internally without a
// reader ever observing a causally later update before an earlier one.
// Callers rely on this when they collapse a causally ordered run of
// releases into one batch.
//
// Ownership of each entry's Value and VTS backing memory transfers to the
// store — for arena-backed versions decoded from the wire this is the
// whole point: no per-update cloning on the apply path. Callers must not
// mutate an entry after ApplyBatch returns, and readers (Get, ForEach,
// snapshot capture) treat stored values as immutable, copying only when
// they need to retain or modify (the snapshot path's record encoding is
// such a copy).
func (s *Mem) ApplyBatch(entries []BatchEntry) int {
	if len(entries) == 0 {
		return 0
	}
	var mask uint32
	for i := range entries {
		mask |= 1 << shardIndex(entries[i].Key)
	}
	for i := 0; i < numShards; i++ {
		if mask&(1<<i) != 0 {
			s.shards[i].mu.Lock()
		}
	}
	applied := 0
	for i := range entries {
		e := &entries[i]
		sh := &s.shards[shardIndex(e.Key)]
		if old, ok := sh.m[e.Key]; ok {
			if !e.Ver.Newer(old) {
				continue
			}
			sh.bytes -= versionBytes(e.Key, old)
		}
		sh.m[e.Key] = e.Ver
		sh.bytes += versionBytes(e.Key, e.Ver)
		applied++
	}
	for i := numShards - 1; i >= 0; i-- {
		if mask&(1<<i) != 0 {
			s.shards[i].mu.Unlock()
		}
	}
	return applied
}

// Len returns the number of stored keys.
func (s *Mem) Len() int {
	n := 0
	for i := range s.shards {
		s.shards[i].mu.RLock()
		n += len(s.shards[i].m)
		s.shards[i].mu.RUnlock()
	}
	return n
}

// Bytes reports the approximate resident bytes of the stored data.
func (s *Mem) Bytes() int64 {
	var n int64
	for i := range s.shards {
		s.shards[i].mu.RLock()
		n += s.shards[i].bytes
		s.shards[i].mu.RUnlock()
	}
	return n
}

// ForEach visits every (key, version) pair; the snapshot is per-shard
// consistent. Used by convergence checks in tests.
func (s *Mem) ForEach(fn func(types.Key, types.Version)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, v := range sh.m {
			fn(k, v)
		}
		sh.mu.RUnlock()
	}
}

// Close is a no-op for the in-memory backend.
func (s *Mem) Close() error { return nil }

// Ring maps keys to partitions by hash, the moral equivalent of Riak's
// consistent-hashing ring. Sibling partitions at different datacenters use
// the same ring, so replicated keys land on matching partition ids.
//
// Unlike the store's internal shard hash, the ring hash must agree across
// OS processes (a payload shipped by one process is matched to metadata
// released in another), so it is a fixed FNV-1a — never a per-process
// random seed.
type Ring struct {
	n int
}

// NewRing returns a ring over n partitions.
func NewRing(n int) Ring {
	if n <= 0 {
		panic("kvstore: ring needs at least one partition")
	}
	return Ring{n: n}
}

// Partitions returns the partition count.
func (r Ring) Partitions() int { return r.n }

// Responsible returns the partition owning key k (RESPONSIBLE(Key) in
// Algorithms 1 and 5).
func (r Ring) Responsible(k types.Key) types.PartitionID {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(k); i++ {
		h ^= uint64(k[i])
		h *= prime64
	}
	return types.PartitionID(h % uint64(r.n))
}
