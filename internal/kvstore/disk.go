package kvstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"os"
	"path/filepath"
	"sync"

	"eunomia/internal/hlc"
	"eunomia/internal/types"
	"eunomia/internal/wire"
)

// Disk is a log-structured, disk-backed Store: one append-only segment
// file per shard plus an in-memory index mapping each key to its newest
// record. The layout keeps every hot path cheap:
//
//   - Apply/ApplyBatch decide last-writer-wins from the index alone (the
//     index carries each key's timestamp and origin), encode the winning
//     records into a reusable per-shard scratch buffer, and land them
//     with one appending write per involved shard — no read, no seek,
//     and ≤1 allocation per update in steady state, the same contract as
//     Mem.ApplyBatch.
//   - Get preads the record at its indexed offset (os.File.ReadAt; the
//     segment is opened O_APPEND so reads never disturb the write
//     position) and verifies its checksum before decoding.
//   - Compact rewrites a shard's live records into a fresh segment and
//     atomically renames it into place when dead records (overwritten
//     versions) dominate; partitions ride it on the MaybeSnapshot
//     cadence.
//
// Records use the wal framing — uint32 length | uint32 CRC32C(payload) |
// payload — so a torn tail from a crash is detected and truncated on
// open exactly like a wal log. Appends are buffered by the OS page cache
// between Sync calls; a partition makes the segment durable (Sync)
// before it truncates its WAL at a snapshot boundary, so any record the
// cache loses in a crash is still covered by WAL replay.
//
// Unlike Mem's per-process seeded shard hash, Disk's shard placement
// must be stable across restarts (each shard's index is rebuilt from its
// own segment file), so keys are placed by a fixed hash (FNV-1a mixed
// through a splitmix64 finalizer to decorrelate it from the partition
// ring, which is plain FNV-1a).
//
// A segment write failing mid-operation leaves the store unusable —
// Apply has no error return and the in-memory index may already be ahead
// of the file — so write failures panic with the underlying error, the
// same policy partitions apply to WAL append failures.
type Disk struct {
	dir    string
	budget int64
	minGar int64
	shards [numShards]diskShard
}

// DiskOptions tunes a Disk store.
type DiskOptions struct {
	// MemBudget, optional, is the resident-memory budget in bytes the
	// index is expected to stay within. The store only accounts against
	// it (ResidentBytes/MemBudget) — the bigger-than-memory benchmark
	// asserts the dataset outgrows the budget while the index does not.
	MemBudget int64
	// CompactMinGarbage is the least dead-record bytes a shard must
	// carry before Compact rewrites it (default 1 MiB), so compaction
	// never churns on small shards.
	CompactMinGarbage int64
}

type diskShard struct {
	mu   sync.RWMutex
	f    *os.File
	size int64 // append offset == file size
	live int64 // framed bytes of records the index points at
	dead int64 // framed bytes of overwritten records
	// resident approximates the index's memory: key bytes plus a fixed
	// per-entry overhead for the ref and map cell.
	resident int64
	maxTS    hlc.Timestamp
	index    map[types.Key]diskRef
	scratch  []byte
	dirty    bool
	// corruptDropped counts bytes dropped at open because of mid-file
	// corruption (not a torn tail): valid-looking data followed a record
	// that failed verification.
	corruptDropped int64
}

// diskRef locates a key's newest record and carries the fields the LWW
// decision needs, so the apply path never touches the file.
type diskRef struct {
	off    int64  // payload offset within the segment
	n      uint32 // payload length
	crc    uint32 // CRC32C(payload)
	ts     hlc.Timestamp
	origin types.DCID
}

const (
	diskHeaderSize   = 8 // uint32 length | uint32 CRC32C, as in wal
	diskMaxRecord    = 64 << 20
	diskRefOverhead  = 72 // diskRef + map cell, approximate
	defaultMinGarbge = 1 << 20
)

var diskCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrBadDiskRecord reports a segment record whose checksum or encoding
// is invalid past the torn-tail window.
var ErrBadDiskRecord = errors.New("kvstore: bad disk segment record")

var _ Store = (*Disk)(nil)
var _ Persistent = (*Disk)(nil)

// OpenDisk opens (creating if needed) a disk store under dir, rebuilding
// each shard's index by scanning its segment; a torn tail (crash mid
// write) is truncated like a wal log's.
func OpenDisk(dir string, o DiskOptions) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("kvstore: %w", err)
	}
	if o.CompactMinGarbage <= 0 {
		o.CompactMinGarbage = defaultMinGarbge
	}
	d := &Disk{dir: dir, budget: o.MemBudget, minGar: o.CompactMinGarbage}
	for i := range d.shards {
		if err := d.shards[i].open(d.segPath(i)); err != nil {
			for j := 0; j < i; j++ {
				d.shards[j].f.Close()
			}
			return nil, err
		}
	}
	return d, nil
}

func (d *Disk) segPath(i int) string {
	return filepath.Join(d.dir, fmt.Sprintf("seg-%02d", i))
}

// diskShardIndex places k on a shard with a fixed, restart-stable hash:
// FNV-1a finalized with splitmix64 mixing so it does not correlate with
// the plain-FNV partition ring (without the mix, a 16-partition ring
// would funnel each partition's whole key range into one shard).
func diskShardIndex(k types.Key) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(k); i++ {
		h ^= uint64(k[i])
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h % numShards
}

func (d *Disk) shardFor(k types.Key) *diskShard {
	return &d.shards[diskShardIndex(k)]
}

// appendDiskPayload encodes one (key, version) record payload.
func appendDiskPayload(b []byte, k types.Key, v types.Version) []byte {
	b = wire.AppendString(b, string(k))
	b = wire.AppendUvarint(b, uint64(v.Origin))
	b = wire.AppendTimestamp(b, v.TS)
	b = wire.AppendVClock(b, v.VTS)
	b = wire.AppendBytes(b, v.Value)
	return b
}

// decodeDiskPayload decodes a record payload into fresh storage.
func decodeDiskPayload(p []byte) (types.Key, types.Version, error) {
	dec := wire.NewDec(p)
	k := types.Key(dec.String())
	var v types.Version
	v.Origin = types.DCID(dec.Uvarint())
	v.TS = dec.Timestamp()
	v.VTS = dec.VClock()
	v.Value = dec.Bytes()
	if err := dec.Expect(); err != nil {
		return "", types.Version{}, fmt.Errorf("%w: %v", ErrBadDiskRecord, err)
	}
	return k, v, nil
}

// open scans one shard's segment, rebuilding the index and truncating
// any torn tail. A record that is fully present but fails verification
// with more data behind it is not a torn tail — it is mid-file
// corruption (bit rot under a record that was already synced), and the
// truncation discards every valid record after it. That case cannot be
// repaired here, but it must not pass silently: it is logged loudly and
// counted (CorruptionDropped) so operators can tell segment corruption
// from routine crash recovery.
func (sh *diskShard) open(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("kvstore: %w", err)
	}
	sh.f = f
	sh.index = make(map[types.Key]diskRef)
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("kvstore: %w", err)
	}
	r := bufio.NewReaderSize(io.NewSectionReader(f, 0, st.Size()), 1<<16)
	var (
		off    int64
		header [diskHeaderSize]byte
		buf    []byte
		// badFrameEnd, when >= 0, marks where a fully-present record
		// failed verification and how far its claimed frame reached; any
		// file bytes beyond it are valid-looking data the truncation
		// would silently drop.
		badFrameEnd = int64(-1)
	)
	for {
		if _, err := io.ReadFull(r, header[:]); err != nil {
			break // clean end or torn header: valid prefix ends here
		}
		n := binary.LittleEndian.Uint32(header[0:4])
		crc := binary.LittleEndian.Uint32(header[4:8])
		if n == 0 {
			break // zero-filled tail from a torn page write
		}
		if n > diskMaxRecord {
			// Garbage length. A torn header write leaves nothing after it,
			// so data behind this header means mid-file corruption.
			badFrameEnd = off + diskHeaderSize
			break
		}
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(r, buf); err != nil {
			break // torn payload
		}
		if crc32.Checksum(buf, diskCastagnoli) != crc {
			badFrameEnd = off + diskHeaderSize + int64(n)
			break
		}
		k, v, err := decodeDiskPayload(buf)
		if err != nil {
			badFrameEnd = off + diskHeaderSize + int64(n)
			break
		}
		frame := int64(diskHeaderSize) + int64(n)
		if old, ok := sh.index[k]; ok {
			// Records land in apply order, so later wins; keep the LWW
			// check anyway in case a compaction interleaved orders.
			if !v.Newer(types.Version{TS: old.ts, Origin: old.origin}) {
				sh.dead += frame
				off += frame
				continue
			}
			sh.dead += int64(diskHeaderSize) + int64(old.n)
			sh.live -= int64(diskHeaderSize) + int64(old.n)
		} else {
			sh.resident += int64(len(k)) + diskRefOverhead
		}
		sh.index[k] = diskRef{off: off + diskHeaderSize, n: n, crc: crc, ts: v.TS, origin: v.Origin}
		sh.live += frame
		if v.TS > sh.maxTS {
			sh.maxTS = v.TS
		}
		off += frame
	}
	if off < st.Size() {
		if badFrameEnd >= 0 && badFrameEnd < st.Size() {
			// Data follows the corrupt record, so this is not a crash's
			// torn tail: records past the corruption are being discarded.
			sh.corruptDropped = st.Size() - off
			log.Printf("kvstore: CORRUPT segment %s: record at offset %d fails verification with %d bytes of data behind it; dropping %d bytes (all records past the corruption) — this is data loss, not crash recovery",
				path, off, st.Size()-badFrameEnd, sh.corruptDropped)
		}
		// Drop the invalid suffix, exactly like wal's open-time truncation.
		if err := f.Truncate(off); err != nil {
			f.Close()
			return fmt.Errorf("kvstore: truncating torn segment tail: %w", err)
		}
	}
	sh.size = off
	return nil
}

// appendLocked frames v into the shard's scratch buffer and installs its
// index entry at the offset it will land at once the scratch is written.
// Caller holds sh.mu and must flush the scratch with writeScratchLocked
// before releasing it.
func (sh *diskShard) appendLocked(k types.Key, v types.Version) {
	start := len(sh.scratch)
	// Reserve the header, encode the payload behind it, then back-fill.
	sh.scratch = append(sh.scratch, 0, 0, 0, 0, 0, 0, 0, 0)
	sh.scratch = appendDiskPayload(sh.scratch, k, v)
	payload := sh.scratch[start+diskHeaderSize:]
	crc := crc32.Checksum(payload, diskCastagnoli)
	binary.LittleEndian.PutUint32(sh.scratch[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(sh.scratch[start+4:], crc)

	frame := int64(diskHeaderSize) + int64(len(payload))
	if old, ok := sh.index[k]; ok {
		oldFrame := int64(diskHeaderSize) + int64(old.n)
		sh.live -= oldFrame
		sh.dead += oldFrame
	} else {
		sh.resident += int64(len(k)) + diskRefOverhead
	}
	sh.index[k] = diskRef{
		off:    sh.size + int64(start) + diskHeaderSize,
		n:      uint32(len(payload)),
		crc:    crc,
		ts:     v.TS,
		origin: v.Origin,
	}
	sh.live += frame
	if v.TS > sh.maxTS {
		sh.maxTS = v.TS
	}
}

// writeScratchLocked lands the scratch buffer with one appending write
// and resets it (capacity retained). Caller holds sh.mu.
func (sh *diskShard) writeScratchLocked() {
	if len(sh.scratch) == 0 {
		return
	}
	if _, err := sh.f.Write(sh.scratch); err != nil {
		panic("kvstore: disk segment write failed: " + err.Error())
	}
	sh.size += int64(len(sh.scratch))
	sh.scratch = sh.scratch[:0]
	sh.dirty = true
}

// Get returns the stored version of k, if any, reading its record back
// with one pread and verifying the checksum.
func (d *Disk) Get(k types.Key) (types.Version, bool) {
	sh := d.shardFor(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ref, ok := sh.index[k]
	if !ok {
		return types.Version{}, false
	}
	return sh.readLocked(k, ref), true
}

// readLocked preads and decodes the record at ref; caller holds sh.mu
// (read or write). An unreadable indexed record is store corruption
// beneath a running process and panics, mirroring the write policy.
func (sh *diskShard) readLocked(k types.Key, ref diskRef) types.Version {
	buf := make([]byte, ref.n)
	if _, err := sh.f.ReadAt(buf, ref.off); err != nil {
		panic("kvstore: disk segment pread failed: " + err.Error())
	}
	if crc32.Checksum(buf, diskCastagnoli) != ref.crc {
		panic(fmt.Sprintf("kvstore: disk segment checksum mismatch for key %q", k))
	}
	_, v, err := decodeDiskPayload(buf)
	if err != nil {
		panic("kvstore: " + err.Error())
	}
	return v
}

// Put stores v under k unconditionally (the partition's local update
// path has already serialized writes to the key).
func (d *Disk) Put(k types.Key, v types.Version) {
	sh := d.shardFor(k)
	sh.mu.Lock()
	sh.appendLocked(k, v)
	sh.writeScratchLocked()
	sh.mu.Unlock()
}

// Apply merges v into k under last-writer-wins, deciding from the index
// alone and appending the record only when v wins.
func (d *Disk) Apply(k types.Key, v types.Version) bool {
	sh := d.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if old, ok := sh.index[k]; ok && !v.Newer(types.Version{TS: old.ts, Origin: old.origin}) {
		return false
	}
	sh.appendLocked(k, v)
	sh.writeScratchLocked()
	return true
}

// ApplyBatch merges a batch under LWW with the same locking discipline
// and batch-atomic visibility as Mem.ApplyBatch: every involved shard is
// locked before the first write and released after the last. Winning
// records are encoded into each shard's scratch buffer and landed with
// one appending write per involved shard, keeping the path at ≤1
// allocation per update in steady state. Entry Value/VTS memory is
// copied into the encoding, so unlike Mem no caller memory is retained.
func (d *Disk) ApplyBatch(entries []BatchEntry) int {
	if len(entries) == 0 {
		return 0
	}
	var mask uint32
	for i := range entries {
		mask |= 1 << diskShardIndex(entries[i].Key)
	}
	for i := 0; i < numShards; i++ {
		if mask&(1<<i) != 0 {
			d.shards[i].mu.Lock()
		}
	}
	applied := 0
	for i := range entries {
		e := &entries[i]
		sh := &d.shards[diskShardIndex(e.Key)]
		if old, ok := sh.index[e.Key]; ok && !e.Ver.Newer(types.Version{TS: old.ts, Origin: old.origin}) {
			continue
		}
		sh.appendLocked(e.Key, e.Ver)
		applied++
	}
	for i := numShards - 1; i >= 0; i-- {
		if mask&(1<<i) != 0 {
			d.shards[i].writeScratchLocked()
			d.shards[i].mu.Unlock()
		}
	}
	return applied
}

// Len returns the number of stored keys.
func (d *Disk) Len() int {
	n := 0
	for i := range d.shards {
		d.shards[i].mu.RLock()
		n += len(d.shards[i].index)
		d.shards[i].mu.RUnlock()
	}
	return n
}

// Bytes reports the framed bytes of live records — the data a snapshot
// ship or compaction rewrite would carry.
func (d *Disk) Bytes() int64 {
	var n int64
	for i := range d.shards {
		d.shards[i].mu.RLock()
		n += d.shards[i].live
		d.shards[i].mu.RUnlock()
	}
	return n
}

// DiskSize reports the total segment bytes on disk, dead records
// included — what compaction can reclaim down from.
func (d *Disk) DiskSize() int64 {
	var n int64
	for i := range d.shards {
		d.shards[i].mu.RLock()
		n += d.shards[i].size
		d.shards[i].mu.RUnlock()
	}
	return n
}

// ResidentBytes approximates the store's resident memory: the index is
// the only per-key state held in RAM.
func (d *Disk) ResidentBytes() int64 {
	var n int64
	for i := range d.shards {
		d.shards[i].mu.RLock()
		n += d.shards[i].resident
		d.shards[i].mu.RUnlock()
	}
	return n
}

// MemBudget returns the configured resident-memory budget (0 = none).
func (d *Disk) MemBudget() int64 { return d.budget }

// CorruptionDropped reports bytes discarded at open because of mid-file
// segment corruption — a record failing verification with valid-looking
// data behind it, as opposed to a crash's torn tail (which is routine
// and not counted). Non-zero means keys were lost to bit rot.
func (d *Disk) CorruptionDropped() int64 {
	var n int64
	for i := range d.shards {
		n += d.shards[i].corruptDropped
	}
	return n
}

// MaxTS returns the highest timestamp of any live version.
func (d *Disk) MaxTS() hlc.Timestamp {
	var ts hlc.Timestamp
	for i := range d.shards {
		d.shards[i].mu.RLock()
		if d.shards[i].maxTS > ts {
			ts = d.shards[i].maxTS
		}
		d.shards[i].mu.RUnlock()
	}
	return ts
}

// ForEach visits every (key, version) pair, preading each record; the
// snapshot is per-shard consistent. Convergence checks and snapshot
// capture use it — it is a full-store scan, not a hot path.
func (d *Disk) ForEach(fn func(types.Key, types.Version)) {
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.RLock()
		for k, ref := range sh.index {
			fn(k, sh.readLocked(k, ref))
		}
		sh.mu.RUnlock()
	}
}

// Sync forces every appended record to stable storage; shards untouched
// since their last sync are skipped.
func (d *Disk) Sync() error {
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		if sh.dirty {
			if err := sh.f.Sync(); err != nil {
				sh.mu.Unlock()
				return fmt.Errorf("kvstore: segment sync: %w", err)
			}
			sh.dirty = false
		}
		sh.mu.Unlock()
	}
	return nil
}

// Compact rewrites shards whose dead-record bytes exceed both the
// configured floor and their live bytes: live records are copied into a
// fresh segment, which atomically replaces the old one (tmp + fsync +
// rename), and the index is repointed. Shards below the threshold are
// untouched, so riding Compact on the snapshot cadence is cheap.
func (d *Disk) Compact() error {
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		if sh.dead < d.minGar || sh.dead < sh.live {
			sh.mu.Unlock()
			continue
		}
		if err := sh.compactLocked(d.segPath(i)); err != nil {
			sh.mu.Unlock()
			return err
		}
		sh.mu.Unlock()
	}
	return nil
}

// compactLocked rewrites one shard; caller holds sh.mu exclusively.
func (sh *diskShard) compactLocked(path string) error {
	tmp := path + ".tmp"
	nf, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("kvstore: %w", err)
	}
	w := bufio.NewWriterSize(nf, 1<<16)
	var (
		off      int64
		newIndex = make(map[types.Key]diskRef, len(sh.index))
		header   [diskHeaderSize]byte
		buf      []byte
	)
	fail := func(err error) error {
		nf.Close()
		os.Remove(tmp)
		return fmt.Errorf("kvstore: compacting segment: %w", err)
	}
	for k, ref := range sh.index {
		if cap(buf) < int(ref.n) {
			buf = make([]byte, ref.n)
		}
		buf = buf[:ref.n]
		if _, err := sh.f.ReadAt(buf, ref.off); err != nil {
			return fail(err)
		}
		binary.LittleEndian.PutUint32(header[0:4], ref.n)
		binary.LittleEndian.PutUint32(header[4:8], ref.crc)
		if _, err := w.Write(header[:]); err != nil {
			return fail(err)
		}
		if _, err := w.Write(buf); err != nil {
			return fail(err)
		}
		ref.off = off + diskHeaderSize
		newIndex[k] = ref
		off += diskHeaderSize + int64(ref.n)
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	if err := nf.Sync(); err != nil {
		return fail(err)
	}
	if err := nf.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("kvstore: compacting segment: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("kvstore: installing compacted segment: %w", err)
	}
	// Reopen through the renamed path so the handle tracks the new
	// inode; the old handle (old inode) is released.
	f, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("kvstore: reopening compacted segment: %w", err)
	}
	sh.f.Close()
	sh.f = f
	sh.index = newIndex
	sh.size = off
	sh.live = off
	sh.dead = 0
	sh.dirty = true
	return nil
}

// Close syncs and closes every segment. The store must not be used
// after.
func (d *Disk) Close() error {
	var first error
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		if sh.dirty {
			if err := sh.f.Sync(); err != nil && first == nil {
				first = err
			}
		}
		if err := sh.f.Close(); err != nil && first == nil {
			first = err
		}
		sh.mu.Unlock()
	}
	return first
}
