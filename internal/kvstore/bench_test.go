package kvstore

// Backend micro-benchmarks: the remote-apply hot path (ApplyBatch) on
// each backend, and the disk backend driven past its resident-memory
// budget. The mem-vs-disk pair lands in BENCH_ci.json via the CI bench
// job; the alloc counts guard the ≤1-alloc/update ApplyBatch contract
// that TestApplyBatchSteadyStateAllocs and its disk twin pin exactly.

import (
	"fmt"
	"testing"

	"eunomia/internal/hlc"
	"eunomia/internal/types"
)

// benchBatch builds a batch of winning entries: timestamps ascend from
// base so every apply takes the LWW install path, as a healthy remote
// stream's do.
func benchBatch(n, valBytes int, base hlc.Timestamp, keys int) []BatchEntry {
	val := make([]byte, valBytes)
	batch := make([]BatchEntry, n)
	for i := range batch {
		batch[i] = BatchEntry{
			Key: types.Key(fmt.Sprintf("key%05d", i%keys)),
			Ver: types.Version{Value: val, TS: base + hlc.Timestamp(i), Origin: 1},
		}
	}
	return batch
}

func benchApplyBatch(b *testing.B, s Store) {
	const batchSize, valBytes, keys = 512, 256, 4096
	// Pre-populate so every apply is an overwrite of an existing key —
	// the steady state — rather than a map grow.
	s.ApplyBatch(benchBatch(keys, valBytes, 1, keys))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := hlc.Timestamp(keys + i*batchSize + 1)
		batch := benchBatch(batchSize, valBytes, base, keys)
		if n := s.ApplyBatch(batch); n != batchSize {
			b.Fatalf("applied %d of %d", n, batchSize)
		}
	}
	b.SetBytes(int64(batchSize * valBytes))
}

// BenchmarkApplyBatchMem is the in-memory baseline for the remote-apply
// hot path.
func BenchmarkApplyBatchMem(b *testing.B) {
	s := New()
	defer s.Close()
	benchApplyBatch(b, s)
}

// BenchmarkApplyBatchDisk is the same stream against the log-structured
// disk backend: each batch appends once per touched shard segment and
// updates the in-memory index, so the slowdown versus Mem is the price
// of durability-grade persistence, not a per-update penalty.
func BenchmarkApplyBatchDisk(b *testing.B) {
	s := openDiskT(b, b.TempDir(), DiskOptions{})
	defer s.Close()
	benchApplyBatch(b, s)
}

// BenchmarkDiskApplyBiggerThanBudget drives the disk backend with a live
// dataset several times its resident-memory budget — the deployment the
// backend exists for — and interleaves reads so every iteration pays
// the pread path for values no longer resident.
func BenchmarkDiskApplyBiggerThanBudget(b *testing.B) {
	const budget = 1 << 20 // 1 MiB resident budget
	const keys, valBytes = 4096, 2048
	s := openDiskT(b, b.TempDir(), DiskOptions{MemBudget: budget})
	defer s.Close()
	s.ApplyBatch(benchBatch(keys, valBytes, 1, keys)) // 8 MiB of values
	if live := s.Bytes(); live <= budget {
		b.Fatalf("dataset %d did not outgrow the %d budget", live, budget)
	}
	if res := s.ResidentBytes(); res >= budget {
		b.Fatalf("resident index %d outgrew the %d budget", res, budget)
	}

	const batchSize = 256
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := hlc.Timestamp(keys + i*batchSize + 1)
		s.ApplyBatch(benchBatch(batchSize, valBytes, base, keys))
		for j := 0; j < batchSize; j++ {
			k := types.Key(fmt.Sprintf("key%05d", (i*batchSize+j*17)%keys))
			if _, ok := s.Get(k); !ok {
				b.Fatalf("lost %q", k)
			}
		}
	}
	b.SetBytes(int64(batchSize * valBytes))
}
