package kvstore

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"eunomia/internal/hlc"
	"eunomia/internal/types"
	"eunomia/internal/vclock"
)

func openDiskT(t testing.TB, dir string, o DiskOptions) *Disk {
	t.Helper()
	d, err := OpenDisk(dir, o)
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	return d
}

func dver(val string, ts hlc.Timestamp, origin types.DCID) types.Version {
	v := vclock.New(2)
	v.Set(int(origin), ts)
	return types.Version{Value: []byte(val), TS: ts, VTS: v, Origin: origin}
}

func TestDiskGetPutApply(t *testing.T) {
	d := openDiskT(t, t.TempDir(), DiskOptions{})
	defer d.Close()

	if _, ok := d.Get("missing"); ok {
		t.Fatal("Get on empty store returned a version")
	}
	d.Put("a", dver("v1", 5, 0))
	got, ok := d.Get("a")
	if !ok || string(got.Value) != "v1" || got.TS != 5 {
		t.Fatalf("Get after Put = %+v, %v", got, ok)
	}
	// LWW: an older apply loses, a newer one wins.
	if d.Apply("a", dver("old", 3, 1)) {
		t.Fatal("older version won LWW")
	}
	if !d.Apply("a", dver("new", 9, 1)) {
		t.Fatal("newer version lost LWW")
	}
	got, _ = d.Get("a")
	if string(got.Value) != "new" || got.TS != 9 || got.Origin != 1 {
		t.Fatalf("after LWW: %+v", got)
	}
	// Ties break by origin, matching Mem.
	if d.Apply("a", dver("tie-lo", 9, 0)) {
		t.Fatal("tie with lower origin won")
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
}

// TestDiskMatchesMem drives both backends through the same operation
// sequence and checks they end indistinguishable — the interface's
// semantics contract.
func TestDiskMatchesMem(t *testing.T) {
	d := openDiskT(t, t.TempDir(), DiskOptions{})
	defer d.Close()
	m := New()

	ops := 0
	apply := func(k types.Key, v types.Version) {
		ops++
		dw := d.Apply(k, v)
		mw := m.Apply(k, v)
		if dw != mw {
			t.Fatalf("op %d: disk won=%v mem won=%v for %q %+v", ops, dw, mw, k, v)
		}
	}
	for i := 0; i < 500; i++ {
		k := types.Key(fmt.Sprintf("key%d", i%37))
		// A scrambled, colliding timestamp pattern exercises wins, losses
		// and ties across two origins.
		apply(k, dver(fmt.Sprintf("val%d", i), hlc.Timestamp((i*7)%101), types.DCID(i%2)))
	}
	var batch []BatchEntry
	for i := 0; i < 200; i++ {
		batch = append(batch, BatchEntry{
			Key: types.Key(fmt.Sprintf("key%d", i%53)),
			Ver: dver(fmt.Sprintf("b%d", i), hlc.Timestamp(50+(i*13)%101), types.DCID(i%2)),
		})
	}
	if dn, mn := d.ApplyBatch(batch), m.ApplyBatch(batch); dn != mn {
		t.Fatalf("ApplyBatch applied disk=%d mem=%d", dn, mn)
	}

	if d.Len() != m.Len() {
		t.Fatalf("Len: disk=%d mem=%d", d.Len(), m.Len())
	}
	m.ForEach(func(k types.Key, mv types.Version) {
		dv, ok := d.Get(k)
		if !ok {
			t.Fatalf("disk missing %q", k)
		}
		if string(dv.Value) != string(mv.Value) || dv.TS != mv.TS || dv.Origin != mv.Origin {
			t.Fatalf("divergence at %q: disk=%+v mem=%+v", k, dv, mv)
		}
	})
}

func TestDiskRestartRecoversIndex(t *testing.T) {
	dir := t.TempDir()
	d := openDiskT(t, dir, DiskOptions{})
	for i := 0; i < 300; i++ {
		k := types.Key(fmt.Sprintf("key%d", i%100)) // overwrites included
		d.Apply(k, dver(fmt.Sprintf("val%d", i), hlc.Timestamp(i+1), types.DCID(i%2)))
	}
	wantLen, wantBytes, wantMax := d.Len(), d.Bytes(), d.MaxTS()
	want := map[types.Key]types.Version{}
	d.ForEach(func(k types.Key, v types.Version) { want[k] = v })
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := openDiskT(t, dir, DiskOptions{})
	defer r.Close()
	if r.Len() != wantLen || r.Bytes() != wantBytes || r.MaxTS() != wantMax {
		t.Fatalf("reopen: Len=%d Bytes=%d MaxTS=%d, want %d %d %d",
			r.Len(), r.Bytes(), r.MaxTS(), wantLen, wantBytes, wantMax)
	}
	for k, v := range want {
		got, ok := r.Get(k)
		if !ok || string(got.Value) != string(v.Value) || got.TS != v.TS || got.Origin != v.Origin {
			t.Fatalf("reopen lost %q: got %+v, %v want %+v", k, got, ok, v)
		}
	}
	// And the recovered index still makes correct LWW decisions.
	if r.Apply("key0", dver("stale", 1, 0)) {
		t.Fatal("stale version won after reopen")
	}
}

func TestDiskTornTailTruncatedOnRestart(t *testing.T) {
	dir := t.TempDir()
	d := openDiskT(t, dir, DiskOptions{})
	for i := 0; i < 64; i++ {
		d.Put(types.Key(fmt.Sprintf("key%d", i)), dver("v", hlc.Timestamp(i+1), 0))
	}
	want := map[types.Key]string{}
	d.ForEach(func(k types.Key, v types.Version) { want[k] = string(v.Value) })
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Crash mid-write: garbage half-records on every segment tail.
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("globbing segments: %v (%d)", err, len(segs))
	}
	for _, seg := range segs {
		f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte{0x20, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	r := openDiskT(t, dir, DiskOptions{})
	defer r.Close()
	if r.Len() != len(want) {
		t.Fatalf("after torn tails Len = %d, want %d", r.Len(), len(want))
	}
	for k, val := range want {
		if got, ok := r.Get(k); !ok || string(got.Value) != val {
			t.Fatalf("torn tail ate %q", k)
		}
	}
}

// TestDiskMidFileCorruptionCountedNotSilent plants bit rot in the middle
// of a segment — a record that fails its checksum with valid records
// behind it. The open must still recover the valid prefix, but unlike a
// torn tail the dropped suffix is data loss and must be counted
// (CorruptionDropped) so operators can see it.
func TestDiskMidFileCorruptionCountedNotSilent(t *testing.T) {
	dir := t.TempDir()
	d := openDiskT(t, dir, DiskOptions{})
	for i := 0; i < 200; i++ {
		d.Put(types.Key(fmt.Sprintf("key%d", i)), dver("payload-payload-payload", hlc.Timestamp(i+1), 0))
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Corrupt one byte inside the SECOND record of some multi-record
	// segment: the first record must survive, everything after the flip
	// is dropped — and counted.
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("globbing segments: %v (%d)", err, len(segs))
	}
	corrupted := false
	for _, seg := range segs {
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) < diskHeaderSize {
			continue // empty shard
		}
		n1 := int(binary.LittleEndian.Uint32(data[0:4]))
		second := diskHeaderSize + n1 // offset of the second record's header
		if second+diskHeaderSize+4 >= len(data) {
			continue // shard holds one record; pick a fuller one
		}
		data[second+diskHeaderSize+1] ^= 0x40 // bit rot in the second payload
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}
		corrupted = true
		break
	}
	if !corrupted {
		t.Fatal("no segment large enough to corrupt mid-file")
	}

	r := openDiskT(t, dir, DiskOptions{})
	if got := r.CorruptionDropped(); got == 0 {
		t.Fatal("mid-file corruption truncated the segment without counting the loss")
	}
	if r.Len() >= 200 {
		t.Fatalf("Len = %d after dropping a corrupt suffix, want < 200", r.Len())
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// The corrupt suffix was truncated away: a reopen of the now-clean
	// segments reports no further corruption.
	r2 := openDiskT(t, dir, DiskOptions{})
	defer r2.Close()
	if got := r2.CorruptionDropped(); got != 0 {
		t.Fatalf("reopen after truncation still reports %d corrupt-dropped bytes", got)
	}
}

// TestDiskTornTailNotCountedAsCorruption re-checks the crash path stays
// routine: an incomplete record at EOF is truncated with no corruption
// counted.
func TestDiskTornTailNotCountedAsCorruption(t *testing.T) {
	dir := t.TempDir()
	d := openDiskT(t, dir, DiskOptions{})
	for i := 0; i < 64; i++ {
		d.Put(types.Key(fmt.Sprintf("key%d", i)), dver("v", hlc.Timestamp(i+1), 0))
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*"))
	for _, seg := range segs {
		f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte{0x20, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	r := openDiskT(t, dir, DiskOptions{})
	defer r.Close()
	if got := r.CorruptionDropped(); got != 0 {
		t.Fatalf("torn tails counted as corruption: %d bytes", got)
	}
}

func TestDiskCompactionReclaimsAndPreserves(t *testing.T) {
	dir := t.TempDir()
	d := openDiskT(t, dir, DiskOptions{CompactMinGarbage: 1})
	// Overwrite a small key set many times: almost everything is dead.
	for i := 0; i < 2000; i++ {
		d.Apply(types.Key(fmt.Sprintf("key%d", i%20)),
			dver(fmt.Sprintf("val%d", i), hlc.Timestamp(i+1), 0))
	}
	before, live := d.DiskSize(), d.Bytes()
	if before < live*10 {
		t.Fatalf("test setup: expected heavy garbage, disk=%d live=%d", before, live)
	}
	want := map[types.Key]string{}
	d.ForEach(func(k types.Key, v types.Version) { want[k] = string(v.Value) })

	if err := d.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if after := d.DiskSize(); after != d.Bytes() || after >= before {
		t.Fatalf("compaction: disk=%d live=%d (before %d)", after, d.Bytes(), before)
	}
	for k, val := range want {
		if got, ok := d.Get(k); !ok || string(got.Value) != val {
			t.Fatalf("compaction lost %q", k)
		}
	}
	// Writes after compaction land in the new segments and survive a
	// restart.
	d.Put("post", dver("compact", 9999, 1))
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	r := openDiskT(t, dir, DiskOptions{})
	defer r.Close()
	if r.Len() != len(want)+1 {
		t.Fatalf("reopen after compaction: Len=%d want %d", r.Len(), len(want)+1)
	}
	if got, ok := r.Get("post"); !ok || string(got.Value) != "compact" {
		t.Fatal("post-compaction write lost across restart")
	}
}

// TestDiskApplyBatchSteadyStateAllocs pins the disk backend to the same
// hot-path contract as Mem: at most one allocation per update once maps
// and scratch buffers are warm.
func TestDiskApplyBatchSteadyStateAllocs(t *testing.T) {
	d := openDiskT(t, t.TempDir(), DiskOptions{})
	defer d.Close()
	const n = 64
	entries := make([]BatchEntry, n)
	arena := make([]byte, n)
	for i := range entries {
		entries[i] = BatchEntry{
			Key: types.Key(fmt.Sprintf("key%d", i)),
			Ver: types.Version{Value: arena[i : i+1], TS: 1},
		}
	}
	d.ApplyBatch(entries) // populate: index growth happens once, here
	var ts hlc.Timestamp = 1
	allocs := testing.AllocsPerRun(100, func() {
		ts++
		for i := range entries {
			entries[i].Ver.TS = ts // every version wins, every slot rewrites
		}
		d.ApplyBatch(entries)
	})
	if perUpdate := allocs / n; perUpdate > 1 {
		t.Fatalf("disk ApplyBatch allocates %.2f/update in steady state, want <= 1", perUpdate)
	}
	if allocs != 0 {
		t.Logf("disk ApplyBatch steady state: %.2f allocs/run (%.3f/update)", allocs, allocs/n)
	}
}

// TestDiskBudgetAccounting exercises the bigger-than-memory invariant at
// test scale: the live dataset outgrows the configured budget while the
// resident index stays inside it.
func TestDiskBudgetAccounting(t *testing.T) {
	const budget = 64 << 10
	d := openDiskT(t, t.TempDir(), DiskOptions{MemBudget: budget})
	defer d.Close()
	val := make([]byte, 1024)
	for i := 0; i < 512; i++ {
		d.Put(types.Key(fmt.Sprintf("key%04d", i)), types.Version{Value: val, TS: hlc.Timestamp(i + 1)})
	}
	if d.MemBudget() != budget {
		t.Fatalf("MemBudget = %d", d.MemBudget())
	}
	if d.Bytes() <= budget {
		t.Fatalf("dataset %d did not outgrow budget %d", d.Bytes(), budget)
	}
	if d.ResidentBytes() >= budget {
		t.Fatalf("resident index %d outgrew budget %d", d.ResidentBytes(), budget)
	}
}
