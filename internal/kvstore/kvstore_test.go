package kvstore

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"eunomia/internal/hlc"
	"eunomia/internal/types"
)

func TestGetPut(t *testing.T) {
	s := New()
	if _, ok := s.Get("missing"); ok {
		t.Fatal("Get of missing key returned ok")
	}
	s.Put("k", types.Version{Value: []byte("v1"), TS: 10})
	v, ok := s.Get("k")
	if !ok || string(v.Value) != "v1" || v.TS != 10 {
		t.Fatalf("Get = %+v, %v", v, ok)
	}
	s.Put("k", types.Version{Value: []byte("v2"), TS: 5}) // unconditional
	if v, _ := s.Get("k"); string(v.Value) != "v2" {
		t.Fatal("Put should be unconditional")
	}
}

func TestApplyLWW(t *testing.T) {
	s := New()
	if !s.Apply("k", types.Version{Value: []byte("a"), TS: 10, Origin: 0}) {
		t.Fatal("first Apply should win")
	}
	if s.Apply("k", types.Version{Value: []byte("b"), TS: 5, Origin: 1}) {
		t.Fatal("older timestamp should lose")
	}
	if v, _ := s.Get("k"); string(v.Value) != "a" {
		t.Fatal("losing Apply overwrote the value")
	}
	if !s.Apply("k", types.Version{Value: []byte("c"), TS: 20, Origin: 1}) {
		t.Fatal("newer timestamp should win")
	}
}

func TestApplyTieBreaksByOrigin(t *testing.T) {
	s := New()
	s.Apply("k", types.Version{Value: []byte("dc0"), TS: 10, Origin: 0})
	if !s.Apply("k", types.Version{Value: []byte("dc2"), TS: 10, Origin: 2}) {
		t.Fatal("equal TS: higher origin should win deterministically")
	}
	if s.Apply("k", types.Version{Value: []byte("dc1"), TS: 10, Origin: 1}) {
		t.Fatal("equal TS: lower origin should lose")
	}
}

// TestApplyOrderIndependence: any permutation of the same set of versions
// converges to the same winner — the convergence property LWW provides to
// the eventually consistent baseline and to concurrent sibling writes.
// Distinct versions of one key never share (TS, Origin) in the real system
// (same-key updates are serialized by one partition, which issues strictly
// increasing timestamps), so the generator enforces that invariant.
func TestApplyOrderIndependence(t *testing.T) {
	f := func(ts [5]uint8, origins [5]uint8, perm2 uint8) bool {
		versions := make([]types.Version, 5)
		seen := map[[2]uint64]bool{}
		for i := range versions {
			t := hlc.Timestamp(ts[i])
			origin := types.DCID(origins[i] % 3)
			for seen[[2]uint64{uint64(t), uint64(origin)}] {
				t++ // the origin partition would have issued a later ts
			}
			seen[[2]uint64{uint64(t), uint64(origin)}] = true
			versions[i] = types.Version{
				Value:  []byte{byte(i)},
				TS:     t,
				Origin: origin,
			}
		}
		a, b := New(), New()
		for _, v := range versions {
			a.Apply("k", v)
		}
		// A different order (rotation by perm2).
		r := int(perm2) % 5
		for i := 0; i < 5; i++ {
			b.Apply("k", versions[(i+r)%5])
		}
		va, _ := a.Get("k")
		vb, _ := b.Get("k")
		return va.TS == vb.TS && va.Origin == vb.Origin && string(va.Value) == string(vb.Value)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLenAndForEach(t *testing.T) {
	s := New()
	for i := 0; i < 100; i++ {
		s.Put(types.Key(fmt.Sprintf("key%d", i)), types.Version{TS: 1})
	}
	if s.Len() != 100 {
		t.Fatalf("Len = %d", s.Len())
	}
	count := 0
	s.ForEach(func(types.Key, types.Version) { count++ })
	if count != 100 {
		t.Fatalf("ForEach visited %d", count)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				k := types.Key(fmt.Sprintf("key%d", i%50))
				if w%2 == 0 {
					s.Apply(k, types.Version{TS: hlc.Timestamp(i), Origin: types.DCID(w)})
				} else {
					s.Get(k)
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestRingDeterministicAndBalanced(t *testing.T) {
	r := NewRing(8)
	if r.Partitions() != 8 {
		t.Fatal("Partitions")
	}
	counts := make([]int, 8)
	for i := 0; i < 10000; i++ {
		k := types.Key(fmt.Sprintf("key%08d", i))
		p := r.Responsible(k)
		if p != r.Responsible(k) {
			t.Fatal("Responsible not deterministic")
		}
		counts[p]++
	}
	for p, c := range counts {
		if c < 800 || c > 1800 { // expect ~1250 ± slack
			t.Fatalf("partition %d owns %d of 10000 keys — unbalanced", p, c)
		}
	}
}

// TestRingStableAcrossProcesses pins the ring hash to known values: the
// mapping must be a fixed function of the key bytes, identical in every
// OS process of a multi-process deployment (a payload shipped by one
// process is matched to metadata released in another). These pins fail if
// the ring ever picks up a per-process random seed again.
func TestRingStableAcrossProcesses(t *testing.T) {
	for _, tc := range []struct {
		key  types.Key
		n    int
		want types.PartitionID
	}{
		{"user:alice", 8, 0},
		{"post", 8, 7},
		{"data0", 8, 7},
		{"flag0", 8, 5},
		{"echo", 8, 4},
		{"data0", 2, 1},
		{"flag0", 2, 1},
		{"echo", 2, 0},
	} {
		if got := NewRing(tc.n).Responsible(tc.key); got != tc.want {
			t.Fatalf("Responsible(%q) over %d partitions = %d, want %d", tc.key, tc.n, got, tc.want)
		}
	}
}

func TestRingPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRing(0) should panic")
		}
	}()
	NewRing(0)
}

func TestValueClone(t *testing.T) {
	orig := types.Value("abc")
	c := orig.Clone()
	c[0] = 'x'
	if orig[0] != 'a' {
		t.Fatal("Clone shares storage")
	}
	if types.Value(nil).Clone() != nil {
		t.Fatal("nil Clone should be nil")
	}
}
