package kvstore

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"eunomia/internal/hlc"
	"eunomia/internal/types"
)

func TestGetPut(t *testing.T) {
	s := New()
	if _, ok := s.Get("missing"); ok {
		t.Fatal("Get of missing key returned ok")
	}
	s.Put("k", types.Version{Value: []byte("v1"), TS: 10})
	v, ok := s.Get("k")
	if !ok || string(v.Value) != "v1" || v.TS != 10 {
		t.Fatalf("Get = %+v, %v", v, ok)
	}
	s.Put("k", types.Version{Value: []byte("v2"), TS: 5}) // unconditional
	if v, _ := s.Get("k"); string(v.Value) != "v2" {
		t.Fatal("Put should be unconditional")
	}
}

func TestApplyLWW(t *testing.T) {
	s := New()
	if !s.Apply("k", types.Version{Value: []byte("a"), TS: 10, Origin: 0}) {
		t.Fatal("first Apply should win")
	}
	if s.Apply("k", types.Version{Value: []byte("b"), TS: 5, Origin: 1}) {
		t.Fatal("older timestamp should lose")
	}
	if v, _ := s.Get("k"); string(v.Value) != "a" {
		t.Fatal("losing Apply overwrote the value")
	}
	if !s.Apply("k", types.Version{Value: []byte("c"), TS: 20, Origin: 1}) {
		t.Fatal("newer timestamp should win")
	}
}

func TestApplyTieBreaksByOrigin(t *testing.T) {
	s := New()
	s.Apply("k", types.Version{Value: []byte("dc0"), TS: 10, Origin: 0})
	if !s.Apply("k", types.Version{Value: []byte("dc2"), TS: 10, Origin: 2}) {
		t.Fatal("equal TS: higher origin should win deterministically")
	}
	if s.Apply("k", types.Version{Value: []byte("dc1"), TS: 10, Origin: 1}) {
		t.Fatal("equal TS: lower origin should lose")
	}
}

// TestApplyOrderIndependence: any permutation of the same set of versions
// converges to the same winner — the convergence property LWW provides to
// the eventually consistent baseline and to concurrent sibling writes.
// Distinct versions of one key never share (TS, Origin) in the real system
// (same-key updates are serialized by one partition, which issues strictly
// increasing timestamps), so the generator enforces that invariant.
func TestApplyOrderIndependence(t *testing.T) {
	f := func(ts [5]uint8, origins [5]uint8, perm2 uint8) bool {
		versions := make([]types.Version, 5)
		seen := map[[2]uint64]bool{}
		for i := range versions {
			t := hlc.Timestamp(ts[i])
			origin := types.DCID(origins[i] % 3)
			for seen[[2]uint64{uint64(t), uint64(origin)}] {
				t++ // the origin partition would have issued a later ts
			}
			seen[[2]uint64{uint64(t), uint64(origin)}] = true
			versions[i] = types.Version{
				Value:  []byte{byte(i)},
				TS:     t,
				Origin: origin,
			}
		}
		a, b := New(), New()
		for _, v := range versions {
			a.Apply("k", v)
		}
		// A different order (rotation by perm2).
		r := int(perm2) % 5
		for i := 0; i < 5; i++ {
			b.Apply("k", versions[(i+r)%5])
		}
		va, _ := a.Get("k")
		vb, _ := b.Get("k")
		return va.TS == vb.TS && va.Origin == vb.Origin && string(va.Value) == string(vb.Value)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLenAndForEach(t *testing.T) {
	s := New()
	for i := 0; i < 100; i++ {
		s.Put(types.Key(fmt.Sprintf("key%d", i)), types.Version{TS: 1})
	}
	if s.Len() != 100 {
		t.Fatalf("Len = %d", s.Len())
	}
	count := 0
	s.ForEach(func(types.Key, types.Version) { count++ })
	if count != 100 {
		t.Fatalf("ForEach visited %d", count)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				k := types.Key(fmt.Sprintf("key%d", i%50))
				if w%2 == 0 {
					s.Apply(k, types.Version{TS: hlc.Timestamp(i), Origin: types.DCID(w)})
				} else {
					s.Get(k)
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestRingDeterministicAndBalanced(t *testing.T) {
	r := NewRing(8)
	if r.Partitions() != 8 {
		t.Fatal("Partitions")
	}
	counts := make([]int, 8)
	for i := 0; i < 10000; i++ {
		k := types.Key(fmt.Sprintf("key%08d", i))
		p := r.Responsible(k)
		if p != r.Responsible(k) {
			t.Fatal("Responsible not deterministic")
		}
		counts[p]++
	}
	for p, c := range counts {
		if c < 800 || c > 1800 { // expect ~1250 ± slack
			t.Fatalf("partition %d owns %d of 10000 keys — unbalanced", p, c)
		}
	}
}

// TestRingStableAcrossProcesses pins the ring hash to known values: the
// mapping must be a fixed function of the key bytes, identical in every
// OS process of a multi-process deployment (a payload shipped by one
// process is matched to metadata released in another). These pins fail if
// the ring ever picks up a per-process random seed again.
func TestRingStableAcrossProcesses(t *testing.T) {
	for _, tc := range []struct {
		key  types.Key
		n    int
		want types.PartitionID
	}{
		{"user:alice", 8, 0},
		{"post", 8, 7},
		{"data0", 8, 7},
		{"flag0", 8, 5},
		{"echo", 8, 4},
		{"data0", 2, 1},
		{"flag0", 2, 1},
		{"echo", 2, 0},
	} {
		if got := NewRing(tc.n).Responsible(tc.key); got != tc.want {
			t.Fatalf("Responsible(%q) over %d partitions = %d, want %d", tc.key, tc.n, got, tc.want)
		}
	}
}

func TestRingPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRing(0) should panic")
		}
	}()
	NewRing(0)
}

func TestValueClone(t *testing.T) {
	orig := types.Value("abc")
	c := orig.Clone()
	c[0] = 'x'
	if orig[0] != 'a' {
		t.Fatal("Clone shares storage")
	}
	if types.Value(nil).Clone() != nil {
		t.Fatal("nil Clone should be nil")
	}
}

// TestApplyBatchMatchesApply: a batch converges to exactly the state the
// same versions produce through per-update Apply, and reports the same
// number of LWW winners.
func TestApplyBatchMatchesApply(t *testing.T) {
	one, batched := New(), New()
	var entries []BatchEntry
	wins := 0
	for i := 0; i < 200; i++ {
		k := types.Key(fmt.Sprintf("key%d", i%40))
		v := types.Version{
			Value:  []byte{byte(i)},
			TS:     hlc.Timestamp(100 + (i*7)%50),
			Origin: types.DCID(i % 3),
		}
		if one.Apply(k, v) {
			wins++
		}
		entries = append(entries, BatchEntry{Key: k, Ver: v})
	}
	if got := batched.ApplyBatch(entries); got != wins {
		t.Fatalf("ApplyBatch reported %d winners, per-update Apply %d", got, wins)
	}
	if one.Len() != batched.Len() {
		t.Fatalf("Len diverged: %d vs %d", one.Len(), batched.Len())
	}
	one.ForEach(func(k types.Key, v types.Version) {
		got, ok := batched.Get(k)
		if !ok || got.TS != v.TS || got.Origin != v.Origin || string(got.Value) != string(v.Value) {
			t.Fatalf("key %q diverged: %+v vs %+v", k, v, got)
		}
	})
	if New().ApplyBatch(nil) != 0 {
		t.Fatal("empty batch applied something")
	}
}

// TestApplyBatchConcurrentWithReaders: batches racing against readers and
// per-update writers stay data-race free (the -race build is the assertion)
// and never lose the newest version.
func TestApplyBatchConcurrentWithReaders(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				batch := make([]BatchEntry, 8)
				for j := range batch {
					batch[j] = BatchEntry{
						Key: types.Key(fmt.Sprintf("key%d", (i+j)%32)),
						Ver: types.Version{Value: []byte("v"), TS: hlc.Timestamp(i*16 + j + 1), Origin: types.DCID(w)},
					}
				}
				s.ApplyBatch(batch)
				s.Get(types.Key(fmt.Sprintf("key%d", i%32)))
				if i%17 == 0 {
					s.ForEach(func(types.Key, types.Version) {})
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 32 {
		t.Fatalf("Len = %d, want 32", s.Len())
	}
}

// TestApplyBatchSteadyStateAllocs pins the zero-copy contract: applying a
// batch of arena-backed versions over existing keys performs no per-update
// allocation — ownership of the value memory transfers, nothing is cloned,
// and the shard set is a bitmask rather than a heap-allocated plan.
func TestApplyBatchSteadyStateAllocs(t *testing.T) {
	s := New()
	const n = 64
	entries := make([]BatchEntry, n)
	arena := make([]byte, n) // stand-in for a wire-decoded value arena
	for i := range entries {
		entries[i] = BatchEntry{
			Key: types.Key(fmt.Sprintf("key%d", i)),
			Ver: types.Version{Value: arena[i : i+1], TS: 1},
		}
	}
	s.ApplyBatch(entries) // populate: map growth happens once, here
	var ts hlc.Timestamp = 1
	allocs := testing.AllocsPerRun(100, func() {
		ts++
		for i := range entries {
			entries[i].Ver.TS = ts // every version wins, every slot rewrites
		}
		s.ApplyBatch(entries)
	})
	if perUpdate := allocs / n; perUpdate > 1 {
		t.Fatalf("ApplyBatch allocates %.2f/update in steady state, want <= 1", perUpdate)
	}
	if allocs != 0 {
		t.Logf("ApplyBatch steady state: %.2f allocs/run (%.3f/update)", allocs, allocs/n)
	}
}
