package wire_test

// Steady-state allocation guards: the whole point of the wire codec is
// that hot-path encodes stop allocating. These tests pin that property in
// CI — a regression that re-inflates the encode path fails here instead
// of silently shifting the benchmarks.

import (
	"bytes"
	"testing"

	"eunomia/internal/fabric"
	"eunomia/internal/geostore"
	"eunomia/internal/hlc"
	"eunomia/internal/types"
	"eunomia/internal/vclock"
	"eunomia/internal/wire"
)

func allocUpdate(seq uint64) *types.Update {
	return &types.Update{
		Key:       "alloc-test-key",
		Value:     bytes.Repeat([]byte{0x5a}, 100),
		Origin:    1,
		Partition: 2,
		Seq:       seq,
		TS:        hlc.Timestamp(80e12)<<16 | 1,
		VTS:       vclock.V{hlc.Timestamp(79e12) << 16, hlc.Timestamp(80e12)<<16 | 1, 0},
		CreatedAt: 1753900000000000000,
	}
}

// TestSteadyStateEncodeAllocs drives the pooled encode path the
// transport's frame writer uses for each hot message type: once the
// pooled buffer has grown to size, an encode may allocate at most once
// (the pool's bookkeeping), never per-field or per-update.
func TestSteadyStateEncodeAllocs(t *testing.T) {
	batch := []*types.Update{allocUpdate(1), allocUpdate(2), allocUpdate(3), allocUpdate(4)}
	cases := []struct {
		name    string
		payload any
	}{
		{"BatchMsg", fabric.BatchMsg{ID: 9, Partition: 2, Ops: batch}},
		{"ReleaseMsg", geostore.ReleaseMsg{Epoch: 3, Seq: 77, U: allocUpdate(5), ArrivedUnixNano: 1753900000000000000}},
		{"ShipMsg", geostore.ShipMsg{Origin: 1, Ops: batch}},
		{"Updates", batch},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Warm the pool so the buffer has its steady-state capacity.
			b, err := wire.AppendPayload(wire.GetBuf(), tc.payload)
			if err != nil {
				t.Fatal(err)
			}
			wire.PutBuf(b)

			allocs := testing.AllocsPerRun(200, func() {
				buf := wire.GetBuf()
				buf, _ = wire.AppendPayload(buf, tc.payload)
				wire.PutBuf(buf)
			})
			if allocs > 1 {
				t.Fatalf("steady-state encode of %s allocates %.1f times per op, want <= 1 (pool bookkeeping only)", tc.name, allocs)
			}
		})
	}
}

// TestReusedBufferEncodeAllocsZero pins the tighter property the frame
// writer actually relies on: appending into an owned, already-grown
// buffer allocates nothing at all.
func TestReusedBufferEncodeAllocsZero(t *testing.T) {
	// Box the payload once, as the transport does (frame.Payload is
	// already an interface by the time the frame writer encodes it).
	var msg any = fabric.BatchMsg{ID: 9, Partition: 2, Ops: []*types.Update{allocUpdate(1), allocUpdate(2)}}
	buf, err := wire.AppendPayload(nil, msg)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		buf, _ = wire.AppendPayload(buf[:0], msg)
	})
	if allocs != 0 {
		t.Fatalf("encode into an owned grown buffer allocates %.1f times per op, want 0", allocs)
	}
}
