package wire_test

// Fuzzing for the wire decoder: arbitrary bytes — truncations, corrupt
// bodies, garbage type tags — must produce errors, never panics or
// over-reads, and anything that does decode must re-encode canonically.
// The imports register every protocol payload tag, so the fuzzer explores
// all decoders, not just the built-in update batch. CI runs this target
// for a short -fuzztime smoke on every push.

import (
	"reflect"
	"testing"

	"eunomia/internal/fabric"
	"eunomia/internal/geostore"
	_ "eunomia/internal/globalstab" // register TagStabHeartbeat
	"eunomia/internal/hlc"
	_ "eunomia/internal/sequencer" // register TagNext/TagNextAck
	"eunomia/internal/types"
	"eunomia/internal/vclock"
	"eunomia/internal/wire"
)

func fuzzSeed(payload any) []byte {
	b, err := wire.AppendPayload(nil, payload)
	if err != nil {
		panic(err)
	}
	return b
}

func FuzzReadPayload(f *testing.F) {
	u := &types.Update{
		Key: "fuzz", Value: []byte("v"), Origin: 1, Partition: 2, Seq: 3,
		TS: hlc.Timestamp(80e12)<<16 | 5, HTS: 7,
		VTS: vclock.V{1, 2, 3}, CreatedAt: 1753900000000000000,
	}
	f.Add(fuzzSeed([]*types.Update{u, u.Meta()}))
	f.Add(fuzzSeed(fabric.BatchMsg{ID: 1, Partition: 2, Ops: []*types.Update{u}}))
	f.Add(fuzzSeed(fabric.HeartbeatMsg{ID: 1, Partition: 2, TS: u.TS}))
	f.Add(fuzzSeed(fabric.AckMsg{ID: 1, Partition: 2, Watermark: u.TS, Err: "x"}))
	f.Add(fuzzSeed(fabric.MultiBatchMsg{
		ID:      1,
		Batches: []types.PartitionBatch{{Partition: 2, Ops: []*types.Update{u}}, {Partition: 3, Ops: []*types.Update{u.Meta()}}},
		Marks:   []types.PartitionMark{{Partition: 4, TS: u.TS}},
	}))
	f.Add(fuzzSeed(fabric.MultiAckMsg{ID: 1, Acks: []types.PartitionMark{{Partition: 2, TS: u.TS}}, Err: "x"}))
	f.Add(fuzzSeed(geostore.ShipMsg{Origin: 1, Ops: []*types.Update{u}}))
	f.Add(fuzzSeed(geostore.ReleaseMsg{Epoch: 9, Seq: 4, U: u, ArrivedUnixNano: 5}))
	f.Add(fuzzSeed(geostore.ReleaseAckMsg{Epoch: 9, Cum: 4, Durable: 3, Admitted: 5, NeedReset: true}))
	f.Add(fuzzSeed(geostore.ApplyMsg{ID: 1, U: nil, ArrivedUnixNano: 2}))
	f.Add(fuzzSeed(geostore.PayloadPullMsg{Dest: 1, U: u}))
	f.Add(fuzzSeed(geostore.PayloadSupersededMsg{ID: u.ID()}))
	// Hostile shapes: truncated, tag garbage, dishonest lengths.
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add(wire.AppendUvarint(nil, 60000))
	f.Add(append(wire.AppendUvarint(nil, 1), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01))

	f.Fuzz(func(t *testing.T, data []byte) {
		d := wire.NewDec(data)
		v, err := wire.ReadPayload(&d)
		if err != nil {
			return // corruption detected is the contract
		}
		// Whatever decoded must survive a canonical re-encode round trip.
		b, err := wire.AppendPayload(nil, v)
		if err != nil {
			t.Fatalf("decoded payload %T does not re-encode: %v", v, err)
		}
		d2 := wire.NewDec(b)
		v2, err := wire.ReadPayload(&d2)
		if err != nil || d2.Expect() != nil {
			t.Fatalf("canonical re-encode of %T does not decode: %v", v, err)
		}
		if !reflect.DeepEqual(v, v2) {
			t.Fatalf("re-encode round trip changed the value:\n got %#v\nwant %#v", v2, v)
		}
	})
}
