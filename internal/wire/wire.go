// Package wire is the hand-rolled, zero-reflection binary codec every
// networked hot path of the repository runs on: the TCP fabric's frames
// (internal/transport), every registered protocol payload (metadata
// batches, ack watermarks, shipping, release streams, sequencer round
// trips), and the write-ahead log's records (internal/wal).
//
// It replaces encoding/gob on those paths. Gob pays reflection, per-stream
// type descriptors, and fresh allocations for every message; wire encodes
// with append-only writes into caller-supplied (usually pooled) buffers
// and decodes with a cursor over the received frame, so a steady-state
// encode performs zero heap allocations and a decode allocates only the
// payload values themselves. Gob survives behind the transport's codec
// seam as the benchmark ablation (fabric.CodecGob).
//
// Encoding conventions, shared by every codec in this package and
// documented in DESIGN.md ("The wire format"):
//
//   - unsigned integers (sequence numbers, identifiers, lengths) are
//     uvarints; known-64-bit wall-clock instants (UnixNano) are fixed
//     8-byte little-endian;
//   - hlc timestamps use a compact split encoding: the 48-bit physical
//     part rides one uvarint whose low bit flags a non-zero logical
//     counter, which follows as its own uvarint only when present — a
//     typical timestamp costs 7 bytes instead of 10 (uvarint) or 8
//     (fixed) and a zero timestamp costs 1;
//   - vector clocks are a uvarint length followed by that many compact
//     timestamps;
//   - strings and byte slices are length-prefixed (uvarint); a zero
//     length decodes as nil for byte slices.
//
// Decoding is strict and total: every decoder consumes from a bounds-
// checked cursor (Dec), truncated or corrupt input yields ErrCorrupt —
// never a panic or an over-read — and top-level decoders require the
// input to be fully consumed.
package wire

import (
	"encoding/binary"
	"errors"
	"math/bits"
	"sync"

	"eunomia/internal/hlc"
	"eunomia/internal/vclock"
)

// ErrCorrupt reports a truncated or structurally invalid encoding.
var ErrCorrupt = errors.New("wire: corrupt or truncated encoding")

// AppendUvarint appends v as a uvarint.
func AppendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

// AppendUint64 appends v as fixed 8-byte little-endian — the right choice
// for full-range values like UnixNano instants, where a uvarint would
// cost 9-10 bytes.
func AppendUint64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// AppendBool appends a single 0/1 byte.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendString appends a uvarint length prefix and the string bytes.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendBytes appends a uvarint length prefix and the slice bytes. nil
// and empty encode identically (length 0) and decode as nil.
func AppendBytes(b, v []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(v)))
	return append(b, v...)
}

// AppendTimestamp appends a compact hlc timestamp: uvarint(phys<<1|flag),
// then uvarint(logical) only when flag says the logical counter is
// non-zero. See the package comment for the rationale.
func AppendTimestamp(b []byte, ts hlc.Timestamp) []byte {
	v := uint64(ts)
	logical := v & (1<<hlc.LogicalBits - 1)
	phys := v >> hlc.LogicalBits
	if logical == 0 {
		return binary.AppendUvarint(b, phys<<1)
	}
	b = binary.AppendUvarint(b, phys<<1|1)
	return binary.AppendUvarint(b, logical)
}

// AppendVClock appends a uvarint length and each entry as a compact
// timestamp.
func AppendVClock(b []byte, v vclock.V) []byte {
	b = binary.AppendUvarint(b, uint64(len(v)))
	for _, ts := range v {
		b = AppendTimestamp(b, ts)
	}
	return b
}

// Dec is a bounds-checked decode cursor with a sticky error: after the
// first failure every accessor returns zero values and Err reports
// ErrCorrupt, so decoders read field-by-field without per-field error
// plumbing and finish with a single check.
type Dec struct {
	b   []byte
	bad bool
	// arena, when armed by a batch decoder, is the single backing
	// allocation every subsequent Bytes() read carves its copy out of —
	// one allocation for all the values of a decoded batch instead of
	// one per value. Allocation is deferred until the first value is
	// carved (arenaPending holds the armed size), so metadata-only
	// batches — nil values, the hottest fabric frames — pay nothing.
	// Consumed from the front; reads that outgrow the remainder fall
	// back to a fresh allocation.
	arena        []byte
	arenaPending int
}

// NewDec returns a cursor over b.
func NewDec(b []byte) Dec { return Dec{b: b} }

// Err returns ErrCorrupt if any read failed (or Expect found leftovers),
// nil otherwise.
func (d *Dec) Err() error {
	if d.bad {
		return ErrCorrupt
	}
	return nil
}

// Remaining reports how many bytes are left unread.
func (d *Dec) Remaining() int { return len(d.b) }

// Expect fails the cursor unless exactly the whole input was consumed;
// it returns the final Err. Every top-level decoder ends with it so
// trailing garbage is corruption, not silence.
func (d *Dec) Expect() error {
	if len(d.b) != 0 {
		d.bad = true
	}
	return d.Err()
}

func (d *Dec) fail() {
	d.bad = true
	d.b = nil
}

// Uvarint reads one uvarint.
func (d *Dec) Uvarint() uint64 {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

// Uint64 reads a fixed 8-byte little-endian value.
func (d *Dec) Uint64() uint64 {
	if len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

// Byte reads one byte.
func (d *Dec) Byte() byte {
	if len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

// Bool reads one 0/1 byte; any other value is corruption.
func (d *Dec) Bool() bool {
	switch d.Byte() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail()
		return false
	}
}

// take reads a length-prefixed span, guarding the prefix against the
// remaining input so a hostile length cannot drive an over-read or a
// huge allocation.
func (d *Dec) take() []byte {
	n := d.Uvarint()
	if n > uint64(len(d.b)) {
		d.fail()
		return nil
	}
	v := d.b[:n]
	d.b = d.b[n:]
	return v
}

// String reads a length-prefixed string.
func (d *Dec) String() string { return string(d.take()) }

// valueArena arms the cursor with one backing allocation of n bytes for
// subsequent Bytes() reads. Batch decoders size it by the remaining input
// — every value a batch can carry fits in the bytes that encode it — so a
// whole batch's values cost one allocation, and the slight over-allocation
// is bounded by the non-value bytes of the frame. Nothing is allocated
// until the first value is actually carved.
func (d *Dec) valueArena(n int) {
	d.arena = nil
	d.arenaPending = n
}

// Bytes reads a length-prefixed byte slice into fresh storage (the
// cursor's backing buffer is pooled and reused; decoded values must not
// alias it). A zero length decodes as nil. When a batch decoder has armed
// the value arena, the copy is carved out of it instead of individually
// allocated.
func (d *Dec) Bytes() []byte {
	v := d.take()
	if len(v) == 0 {
		return nil
	}
	if d.arena == nil && d.arenaPending >= len(v) {
		d.arena = make([]byte, d.arenaPending)
		d.arenaPending = 0
	}
	if len(v) <= len(d.arena) {
		dst := d.arena[:len(v):len(v)]
		d.arena = d.arena[len(v):]
		copy(dst, v)
		return dst
	}
	return append([]byte(nil), v...)
}

// Timestamp reads a compact hlc timestamp.
func (d *Dec) Timestamp() hlc.Timestamp {
	u := d.Uvarint()
	phys := u >> 1
	if bits.Len64(phys) > 64-hlc.LogicalBits {
		d.fail()
		return 0
	}
	ts := phys << hlc.LogicalBits
	if u&1 != 0 {
		logical := d.Uvarint()
		if logical == 0 || logical >= 1<<hlc.LogicalBits {
			// A zero logical rides the flagless form; anything wider than
			// the counter is corruption.
			d.fail()
			return 0
		}
		ts |= logical
	}
	return hlc.Timestamp(ts)
}

// VClock reads a vector clock. The length is sanity-bounded: deployments
// have one entry per datacenter, so anything above 64k is corruption,
// not a cluster.
func (d *Dec) VClock() vclock.V {
	n := d.Uvarint()
	if n == 0 {
		return nil
	}
	if n > 1<<16 || n > uint64(d.Remaining()) {
		// Each entry costs at least one byte; a length beyond the input
		// cannot be honest, and failing before the make bounds the
		// allocation a corrupt frame can force.
		d.fail()
		return nil
	}
	v := make(vclock.V, n)
	for i := range v {
		v[i] = d.Timestamp()
	}
	if d.bad {
		return nil
	}
	return v
}

// bufPool recycles encode buffers: frame writers take one per flush
// batch, the WAL takes one per record append. Buffers that grew beyond
// keepBuf are dropped rather than pooled so one giant frame does not pin
// its worst-case footprint forever.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

const keepBuf = 1 << 20

// GetBuf returns an empty pooled buffer with some capacity.
func GetBuf() []byte { return (*(bufPool.Get().(*[]byte)))[:0] }

// PutBuf returns a buffer to the pool. Nil and oversized buffers are
// dropped: pooling a zero-capacity buffer would hand a later GetBuf
// caller a useless allocation, and one giant frame must not pin its
// worst-case footprint forever.
func PutBuf(b []byte) {
	if b == nil || cap(b) > keepBuf {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}
