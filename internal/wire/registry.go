package wire

import (
	"fmt"
	"sync"

	"eunomia/internal/types"
)

// Tag identifies a payload type on the wire. Tags are allocated centrally
// here — the registry is the versioning contract (DESIGN.md "The wire
// format"): a tag is forever bound to one message's field order, new
// messages take new tags, and removed messages retire their tag rather
// than free it.
type Tag uint16

const (
	// TagUpdates is []*types.Update, the payload-replication batch every
	// deployment ships; encoded by this package itself.
	TagUpdates Tag = 1

	// internal/fabric: the partition↔Eunomia protocol.
	TagBatch     Tag = 2
	TagHeartbeat Tag = 3
	TagAck       Tag = 4

	// internal/geostore: shipping, blocking release, payload healing, and
	// the windowed release stream.
	TagShip              Tag = 5
	TagApply             Tag = 6
	TagApplyAck          Tag = 7
	TagPayloadPull       Tag = 8
	TagPayloadSuperseded Tag = 9
	TagRelease           Tag = 10
	TagReleaseAck        Tag = 11

	// internal/sequencer: the number-service round trip.
	TagNext    Tag = 12
	TagNextAck Tag = 13

	// internal/globalstab: sibling stabilization heartbeats.
	TagStabHeartbeat Tag = 14

	// internal/harness: fabric benchmark messages.
	TagBenchPing Tag = 15
	TagBenchPong Tag = 16

	// internal/fabric: the propagation-tree hop — many per-partition
	// batches merged into one frame, and its multi-watermark reply.
	TagMultiBatch Tag = 17
	TagMultiAck   Tag = 18

	// internal/geostore: the client front door — causal get/put round
	// trips between a frontend and its datacenter's partitions, plus the
	// migration visibility wait against the receiver.
	TagClientRead     Tag = 19
	TagClientReadAck  Tag = 20
	TagClientWrite    Tag = 21
	TagClientWriteAck Tag = 22
	TagWait           Tag = 23
	TagWaitAck        Tag = 24

	// internal/geostore: snapshot shipping — a bootstrapping partition
	// pulls a pinned, chunked, compressed snapshot from a live peer
	// datacenter instead of replaying history.
	TagSnapshotRequest Tag = 25
	TagSnapshotChunk   Tag = 26

	// TagTest is reserved for package test payloads.
	TagTest Tag = 1000
)

// Marshaler is implemented by every protocol payload that travels a
// networked fabric: a stable type tag plus an append-based encoder.
// Implementations live next to the type declarations (the packages that
// already call fabric.RegisterPayload) and register a matching decoder
// with Register from the same init function.
type Marshaler interface {
	// WireTag returns the payload's registered tag.
	WireTag() Tag
	// AppendWire appends the payload's encoding to b and returns the
	// extended slice. It must not retain b.
	AppendWire(b []byte) []byte
}

var (
	regMu    sync.RWMutex
	decoders = map[Tag]func(*Dec) any{
		TagUpdates: func(d *Dec) any { return ReadUpdates(d) },
	}
)

// Register installs the decoder for a payload tag. Like gob.Register it
// is meant for init functions; reusing a live tag panics, because two
// types decoding one tag is a protocol bug, not a configuration.
func Register(tag Tag, decode func(*Dec) any) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := decoders[tag]; dup {
		panic(fmt.Sprintf("wire: duplicate payload tag %d", tag))
	}
	decoders[tag] = decode
}

// AppendPayload appends a type-tagged payload encoding to b: uvarint tag,
// then the payload body. Payload types must implement Marshaler (or be
// []*types.Update, which this package encodes itself); anything else is a
// permanent encode error, the wire codec's analogue of a type missing
// from the gob registry.
func AppendPayload(b []byte, payload any) ([]byte, error) {
	switch p := payload.(type) {
	case Marshaler:
		b = AppendUvarint(b, uint64(p.WireTag()))
		return p.AppendWire(b), nil
	case []*types.Update:
		b = AppendUvarint(b, uint64(TagUpdates))
		return AppendUpdates(b, p), nil
	}
	return b, fmt.Errorf("wire: payload type %T not registered (implement wire.Marshaler)", payload)
}

// ReadPayload decodes one type-tagged payload at the cursor. Unknown tags
// and malformed bodies report ErrCorrupt-wrapped errors; the caller owns
// framing, so it decides whether that tears down a connection.
func ReadPayload(d *Dec) (any, error) {
	tag := Tag(d.Uvarint())
	if d.Err() != nil {
		return nil, fmt.Errorf("%w: payload tag", ErrCorrupt)
	}
	regMu.RLock()
	decode := decoders[tag]
	regMu.RUnlock()
	if decode == nil {
		return nil, fmt.Errorf("%w: unknown payload tag %d", ErrCorrupt, tag)
	}
	v := decode(d)
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("payload tag %d: %w", tag, err)
	}
	return v, nil
}
