package wire

import (
	"reflect"
	"testing"

	"eunomia/internal/hlc"
	"eunomia/internal/types"
)

func testPartitionBatches() []types.PartitionBatch {
	var batches []types.PartitionBatch
	for p := 0; p < 3; p++ {
		var ops []*types.Update
		for i := 0; i < 4; i++ {
			u := testUpdate()
			u.Partition = types.PartitionID(p)
			u.Seq = uint64(i + 1)
			u.TS += hlc.Timestamp(i)
			ops = append(ops, u)
		}
		batches = append(batches, types.PartitionBatch{Partition: types.PartitionID(p), Ops: ops})
	}
	return batches
}

func TestPartitionBatchesRoundTrip(t *testing.T) {
	batches := testPartitionBatches()
	b := AppendPartitionBatches(nil, batches)
	d := NewDec(b)
	got := ReadPartitionBatches(&d)
	if err := d.Expect(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, batches) {
		t.Fatalf("multi-batch round-trip:\n got %+v\nwant %+v", got, batches)
	}

	// Empty multi-batch.
	b = AppendPartitionBatches(nil, nil)
	d = NewDec(b)
	if got := ReadPartitionBatches(&d); got != nil || d.Expect() != nil {
		t.Fatalf("empty multi-batch decoded as %v (%v)", got, d.Err())
	}
}

func TestPartitionMarksRoundTrip(t *testing.T) {
	marks := []types.PartitionMark{
		{Partition: 0, TS: 0},
		{Partition: 7, TS: hlc.Timestamp(80e12)<<16 | 3},
		{Partition: 127, TS: hlc.Timestamp(1) << 16},
	}
	b := AppendPartitionMarks(nil, marks)
	d := NewDec(b)
	got := ReadPartitionMarks(&d)
	if err := d.Expect(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, marks) {
		t.Fatalf("marks round-trip: got %+v want %+v", got, marks)
	}

	b = AppendPartitionMarks(nil, nil)
	d = NewDec(b)
	if got := ReadPartitionMarks(&d); got != nil || d.Expect() != nil {
		t.Fatalf("empty marks decoded as %v (%v)", got, d.Err())
	}
}

// TestPartitionBatchesStrictness drives corrupt multi-batch encodings
// through the decoder: truncations, hostile counts, and a declared total
// that disagrees with the per-stream counts must all error, never panic.
func TestPartitionBatchesStrictness(t *testing.T) {
	full := AppendPartitionBatches(nil, testPartitionBatches())
	for n := 0; n < len(full); n++ {
		d := NewDec(full[:n])
		if got := ReadPartitionBatches(&d); got != nil && d.Expect() == nil {
			t.Fatalf("truncation at %d/%d decoded successfully", n, len(full))
		}
	}

	// Dishonest total: 2^40 operations claimed on a 3-byte body.
	b := AppendUvarint(nil, 1<<40)
	b = append(b, 1, 0, 0)
	d := NewDec(b)
	if got := ReadPartitionBatches(&d); got != nil || d.Err() == nil {
		t.Fatal("hostile total decoded")
	}

	// Dishonest stream count on an empty remainder.
	b = AppendUvarint(nil, 0)
	b = AppendUvarint(b, 1<<30)
	d = NewDec(b)
	if got := ReadPartitionBatches(&d); got != nil || d.Err() == nil {
		t.Fatal("hostile stream count decoded")
	}

	// Declared total larger than the per-stream counts deliver.
	b = AppendUvarint(nil, 5) // total claims 5
	b = AppendUvarint(b, 1)   // one stream...
	b = AppendUvarint(b, 0)   // partition 0
	b = AppendUvarint(b, 1)   // ...of one op
	b = AppendUpdate(b, testUpdate())
	d = NewDec(b)
	if got := ReadPartitionBatches(&d); got != nil || d.Err() == nil {
		t.Fatal("total/stream-count disagreement decoded")
	}

	// Per-stream counts overflowing the declared total.
	b = AppendUvarint(nil, 1) // total claims 1
	b = AppendUvarint(b, 1)
	b = AppendUvarint(b, 0)
	b = AppendUvarint(b, 2) // ...but the stream claims 2
	b = AppendUpdate(b, testUpdate())
	b = AppendUpdate(b, testUpdate())
	d = NewDec(b)
	if got := ReadPartitionBatches(&d); got != nil || d.Err() == nil {
		t.Fatal("stream overflow of the declared total decoded")
	}
}

// arenaUpdate builds an update whose only allocation-bearing field is the
// value, so the decode guards below measure exactly the value-arena
// property (keys and vector clocks allocate per record by design).
func arenaUpdate(p types.PartitionID, seq uint64, val byte) *types.Update {
	v := make([]byte, 64)
	for i := range v {
		v[i] = val
	}
	return &types.Update{
		Value:     v,
		Origin:    1,
		Partition: p,
		Seq:       seq,
		TS:        hlc.Timestamp(80e12)<<16 | hlc.Timestamp(seq),
		CreatedAt: 1753900000000000000,
	}
}

// TestBatchDecodeValueArenaAllocs pins the PR's decode property: all the
// values of a decoded batch share one backing allocation, so a 64-update
// batch costs a fixed number of allocations — the pointer slab, the
// update block, and the arena — not one per value.
func TestBatchDecodeValueArenaAllocs(t *testing.T) {
	var ops []*types.Update
	for i := 0; i < 64; i++ {
		ops = append(ops, arenaUpdate(2, uint64(i+1), byte(i)))
	}
	buf := AppendUpdates(nil, ops)
	allocs := testing.AllocsPerRun(100, func() {
		d := NewDec(buf)
		if got := ReadUpdates(&d); len(got) != 64 || d.Expect() != nil {
			t.Fatalf("decode failed: %d ops, %v", len(got), d.Err())
		}
	})
	if allocs > 3 {
		t.Fatalf("batch decode allocates %.1f times per op-batch, want <= 3 (pointer slab, update block, value arena)", allocs)
	}
}

// TestMetaBatchDecodeNoArenaAlloc pins the lazy half of the arena
// contract: a metadata-only batch (nil values — the hottest fabric
// frames, §5 separated records) must not pay for an arena it never
// carves from. Two allocations: the pointer slab and the update block.
func TestMetaBatchDecodeNoArenaAlloc(t *testing.T) {
	var ops []*types.Update
	for i := 0; i < 64; i++ {
		u := arenaUpdate(2, uint64(i+1), 0)
		u.Value = nil
		ops = append(ops, u)
	}
	buf := AppendUpdates(nil, ops)
	allocs := testing.AllocsPerRun(100, func() {
		d := NewDec(buf)
		if got := ReadUpdates(&d); len(got) != 64 || d.Expect() != nil {
			t.Fatalf("decode failed: %d ops, %v", len(got), d.Err())
		}
	})
	if allocs > 2 {
		t.Fatalf("metadata-only batch decode allocates %.1f times, want <= 2 (no value arena)", allocs)
	}
}

// TestMultiBatchDecodeAllocs pins the same property across a whole
// multi-stream frame: one update block, one pointer slab, one stream
// slice, and one value arena regardless of stream count.
func TestMultiBatchDecodeAllocs(t *testing.T) {
	var batches []types.PartitionBatch
	for p := 0; p < 8; p++ {
		var ops []*types.Update
		for i := 0; i < 8; i++ {
			ops = append(ops, arenaUpdate(types.PartitionID(p), uint64(i+1), byte(p)))
		}
		batches = append(batches, types.PartitionBatch{Partition: types.PartitionID(p), Ops: ops})
	}
	buf := AppendPartitionBatches(nil, batches)
	allocs := testing.AllocsPerRun(100, func() {
		d := NewDec(buf)
		if got := ReadPartitionBatches(&d); len(got) != 8 || d.Expect() != nil {
			t.Fatalf("decode failed: %d streams, %v", len(got), d.Err())
		}
	})
	if allocs > 4 {
		t.Fatalf("multi-batch decode allocates %.1f times per frame, want <= 4 (stream slice, pointer slab, update block, value arena)", allocs)
	}
}

// TestValueArenaIsolation verifies decoded values do not alias each other
// or the input: mutating one decoded value must not corrupt its
// neighbors, and mutating the input must not change decoded values.
func TestValueArenaIsolation(t *testing.T) {
	ops := []*types.Update{arenaUpdate(0, 1, 0xaa), arenaUpdate(0, 2, 0xbb)}
	buf := AppendUpdates(nil, ops)
	d := NewDec(buf)
	got := ReadUpdates(&d)
	if d.Expect() != nil || len(got) != 2 {
		t.Fatal("decode failed")
	}
	for i := range got[0].Value {
		got[0].Value[i] = 0x11
	}
	buf[len(buf)-1] ^= 0xff
	for _, b := range got[1].Value {
		if b != 0xbb {
			t.Fatalf("neighbor value corrupted: %x", got[1].Value)
		}
	}
	// Appending to one value must not grow into the next one's storage.
	if v := append(got[0].Value, 0x22); len(v) != 65 {
		t.Fatalf("append length %d", len(v))
	}
	for _, b := range got[1].Value {
		if b != 0xbb {
			t.Fatalf("append into arena corrupted neighbor: %x", got[1].Value)
		}
	}
}
