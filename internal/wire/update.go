package wire

import (
	"eunomia/internal/types"
)

// maxUpdates bounds a decoded batch: each update costs at least
// updateMinBytes on the wire, so the guard in DecodeUpdates is the real
// bound; this is a belt against pathological counts.
const maxUpdates = 1 << 24

// updateMinBytes is the smallest possible encoded update (every field
// zero/empty), used to reject dishonest batch counts before allocating.
const updateMinBytes = 14

// AppendUpdate appends one update record. The layout is the package's
// standard field order; internal/wal prefixes it with a record-kind byte
// and the fabric payload codecs embed it in their messages.
func AppendUpdate(b []byte, u *types.Update) []byte {
	b = AppendString(b, string(u.Key))
	b = AppendBytes(b, u.Value)
	b = AppendUvarint(b, uint64(u.Origin))
	b = AppendUvarint(b, uint64(u.Partition))
	b = AppendUvarint(b, u.Seq)
	b = AppendTimestamp(b, u.TS)
	b = AppendTimestamp(b, u.HTS)
	b = AppendVClock(b, u.VTS)
	b = AppendUint64(b, uint64(u.CreatedAt))
	return b
}

// ReadUpdate decodes one update at the cursor into fresh storage.
func ReadUpdate(d *Dec) *types.Update {
	u := &types.Update{}
	if !readUpdateInto(d, u) {
		return nil
	}
	return u
}

func readUpdateInto(d *Dec, u *types.Update) bool {
	u.Key = types.Key(d.String())
	u.Value = types.Value(d.Bytes())
	u.Origin = types.DCID(d.Uvarint())
	u.Partition = types.PartitionID(d.Uvarint())
	u.Seq = d.Uvarint()
	u.TS = d.Timestamp()
	u.HTS = d.Timestamp()
	u.VTS = d.VClock()
	u.CreatedAt = int64(d.Uint64())
	return d.Err() == nil
}

// AppendUpdates appends a batch: uvarint count, then each update.
func AppendUpdates(b []byte, ops []*types.Update) []byte {
	b = AppendUvarint(b, uint64(len(ops)))
	for _, u := range ops {
		b = AppendUpdate(b, u)
	}
	return b
}

// ReadUpdates decodes a batch at the cursor.
func ReadUpdates(d *Dec) []*types.Update {
	n := d.Uvarint()
	if n == 0 {
		return nil
	}
	if n > maxUpdates || n > uint64(d.Remaining()/updateMinBytes)+1 {
		d.fail()
		return nil
	}
	// One block allocation for the whole batch: consumers keep whole
	// batches (receiver queues, pending sets) far more often than single
	// strays, so coupling the records' lifetimes costs little and saves
	// n-1 allocations per decode. The value arena does the same for the
	// payload bytes: one backing allocation for every value in the batch.
	d.valueArena(d.Remaining())
	block := make([]types.Update, n)
	ops := make([]*types.Update, n)
	for i := range block {
		if !readUpdateInto(d, &block[i]) {
			return nil
		}
		ops[i] = &block[i]
	}
	return ops
}

// AppendPartitionBatches appends a multi-stream batch — the body of a
// propagation-tree MultiBatchMsg: a uvarint total operation count (so the
// decoder can block-allocate before parsing), a uvarint stream count, then
// per stream a uvarint partition id, a uvarint operation count, and the
// operations.
func AppendPartitionBatches(b []byte, batches []types.PartitionBatch) []byte {
	total := 0
	for _, sb := range batches {
		total += len(sb.Ops)
	}
	b = AppendUvarint(b, uint64(total))
	b = AppendUvarint(b, uint64(len(batches)))
	for _, sb := range batches {
		b = AppendUvarint(b, uint64(sb.Partition))
		b = AppendUvarint(b, uint64(len(sb.Ops)))
		for _, u := range sb.Ops {
			b = AppendUpdate(b, u)
		}
	}
	return b
}

// ReadPartitionBatches decodes a multi-stream batch with a fixed number of
// allocations regardless of stream or operation count: one update block
// and one pointer slab shared by every stream, one stream slice, and one
// value arena for all the payload bytes. A declared total that disagrees
// with the per-stream counts is corruption.
func ReadPartitionBatches(d *Dec) []types.PartitionBatch {
	total := d.Uvarint()
	ns := d.Uvarint()
	if d.Err() != nil {
		return nil
	}
	if total > maxUpdates || total > uint64(d.Remaining()/updateMinBytes)+1 {
		d.fail()
		return nil
	}
	// Each stream costs at least two bytes (partition id + count).
	if ns > uint64(d.Remaining()/2)+1 {
		d.fail()
		return nil
	}
	if ns == 0 {
		if total != 0 {
			d.fail()
		}
		return nil
	}
	d.valueArena(d.Remaining())
	block := make([]types.Update, total)
	ptrs := make([]*types.Update, total)
	out := make([]types.PartitionBatch, ns)
	k := uint64(0)
	for i := range out {
		out[i].Partition = types.PartitionID(d.Uvarint())
		n := d.Uvarint()
		if d.Err() != nil || k+n > total || k+n < k {
			d.fail()
			return nil
		}
		ops := ptrs[k : k+n : k+n]
		for j := range ops {
			if !readUpdateInto(d, &block[k]) {
				return nil
			}
			ops[j] = &block[k]
			k++
		}
		out[i].Ops = ops
	}
	if k != total {
		d.fail()
		return nil
	}
	return out
}

// AppendPartitionMarks appends a watermark/heartbeat list: a uvarint
// count, then per mark a uvarint partition id and a compact timestamp.
func AppendPartitionMarks(b []byte, marks []types.PartitionMark) []byte {
	b = AppendUvarint(b, uint64(len(marks)))
	for _, mk := range marks {
		b = AppendUvarint(b, uint64(mk.Partition))
		b = AppendTimestamp(b, mk.TS)
	}
	return b
}

// ReadPartitionMarks decodes a watermark/heartbeat list.
func ReadPartitionMarks(d *Dec) []types.PartitionMark {
	n := d.Uvarint()
	if n == 0 {
		return nil
	}
	// Each mark costs at least two bytes (partition id + timestamp).
	if n > uint64(d.Remaining()/2)+1 {
		d.fail()
		return nil
	}
	marks := make([]types.PartitionMark, n)
	for i := range marks {
		marks[i].Partition = types.PartitionID(d.Uvarint())
		marks[i].TS = d.Timestamp()
	}
	if d.bad {
		return nil
	}
	return marks
}
