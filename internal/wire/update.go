package wire

import (
	"eunomia/internal/types"
)

// maxUpdates bounds a decoded batch: each update costs at least
// updateMinBytes on the wire, so the guard in DecodeUpdates is the real
// bound; this is a belt against pathological counts.
const maxUpdates = 1 << 24

// updateMinBytes is the smallest possible encoded update (every field
// zero/empty), used to reject dishonest batch counts before allocating.
const updateMinBytes = 14

// AppendUpdate appends one update record. The layout is the package's
// standard field order; internal/wal prefixes it with a record-kind byte
// and the fabric payload codecs embed it in their messages.
func AppendUpdate(b []byte, u *types.Update) []byte {
	b = AppendString(b, string(u.Key))
	b = AppendBytes(b, u.Value)
	b = AppendUvarint(b, uint64(u.Origin))
	b = AppendUvarint(b, uint64(u.Partition))
	b = AppendUvarint(b, u.Seq)
	b = AppendTimestamp(b, u.TS)
	b = AppendTimestamp(b, u.HTS)
	b = AppendVClock(b, u.VTS)
	b = AppendUint64(b, uint64(u.CreatedAt))
	return b
}

// ReadUpdate decodes one update at the cursor into fresh storage.
func ReadUpdate(d *Dec) *types.Update {
	u := &types.Update{}
	if !readUpdateInto(d, u) {
		return nil
	}
	return u
}

func readUpdateInto(d *Dec, u *types.Update) bool {
	u.Key = types.Key(d.String())
	u.Value = types.Value(d.Bytes())
	u.Origin = types.DCID(d.Uvarint())
	u.Partition = types.PartitionID(d.Uvarint())
	u.Seq = d.Uvarint()
	u.TS = d.Timestamp()
	u.HTS = d.Timestamp()
	u.VTS = d.VClock()
	u.CreatedAt = int64(d.Uint64())
	return d.Err() == nil
}

// AppendUpdates appends a batch: uvarint count, then each update.
func AppendUpdates(b []byte, ops []*types.Update) []byte {
	b = AppendUvarint(b, uint64(len(ops)))
	for _, u := range ops {
		b = AppendUpdate(b, u)
	}
	return b
}

// ReadUpdates decodes a batch at the cursor.
func ReadUpdates(d *Dec) []*types.Update {
	n := d.Uvarint()
	if n == 0 {
		return nil
	}
	if n > maxUpdates || n > uint64(d.Remaining()/updateMinBytes)+1 {
		d.fail()
		return nil
	}
	// One block allocation for the whole batch: consumers keep whole
	// batches (receiver queues, pending sets) far more often than single
	// strays, so coupling the records' lifetimes costs little and saves
	// n-1 allocations per decode.
	block := make([]types.Update, n)
	ops := make([]*types.Update, n)
	for i := range block {
		if !readUpdateInto(d, &block[i]) {
			return nil
		}
		ops[i] = &block[i]
	}
	return ops
}
