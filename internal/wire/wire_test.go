package wire

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"eunomia/internal/hlc"
	"eunomia/internal/types"
	"eunomia/internal/vclock"
)

func TestPrimitivesRoundTrip(t *testing.T) {
	var b []byte
	b = AppendUvarint(b, 0)
	b = AppendUvarint(b, 1<<63)
	b = AppendUint64(b, math.MaxUint64)
	b = AppendBool(b, true)
	b = AppendBool(b, false)
	b = AppendString(b, "hello")
	b = AppendString(b, "")
	b = AppendBytes(b, []byte{1, 2, 3})
	b = AppendBytes(b, nil)

	d := NewDec(b)
	if got := d.Uvarint(); got != 0 {
		t.Fatalf("uvarint: got %d", got)
	}
	if got := d.Uvarint(); got != 1<<63 {
		t.Fatalf("uvarint: got %d", got)
	}
	if got := d.Uint64(); got != math.MaxUint64 {
		t.Fatalf("uint64: got %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("bools did not round-trip")
	}
	if got := d.String(); got != "hello" {
		t.Fatalf("string: got %q", got)
	}
	if got := d.String(); got != "" {
		t.Fatalf("string: got %q", got)
	}
	if got := d.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("bytes: got %v", got)
	}
	if got := d.Bytes(); got != nil {
		t.Fatalf("nil bytes decoded as %v", got)
	}
	if err := d.Expect(); err != nil {
		t.Fatal(err)
	}
}

func TestTimestampRoundTrip(t *testing.T) {
	cases := []hlc.Timestamp{
		0,
		1,       // pure logical
		1 << 16, // pure physical
		hlc.Timestamp(123456789)<<16 | 42,
		hlc.Timestamp(1)<<48 | 7, // near the physical range top
		hlc.Timestamp(1<<48-1) << 16,
		hlc.Timestamp(1<<48-1)<<16 | (1<<16 - 1), // all bits set
	}
	for _, ts := range cases {
		b := AppendTimestamp(nil, ts)
		d := NewDec(b)
		got := d.Timestamp()
		if err := d.Expect(); err != nil {
			t.Fatalf("ts %x: %v", uint64(ts), err)
		}
		if got != ts {
			t.Fatalf("ts %x round-tripped as %x", uint64(ts), uint64(got))
		}
	}
	// The common case (zero logical counter, current-era physical) must
	// be compact: strictly fewer than the 8 bytes a fixed encoding pays.
	now := hlc.Timestamp(80e12) << 16 // ~2.5 years of µs past the epoch
	if n := len(AppendTimestamp(nil, now)); n >= 8 {
		t.Fatalf("compact timestamp took %d bytes", n)
	}
}

func TestVClockRoundTrip(t *testing.T) {
	for _, v := range []vclock.V{nil, {}, {1 << 20, 0, 3<<30 | 5}} {
		b := AppendVClock(nil, v)
		d := NewDec(b)
		got := d.VClock()
		if err := d.Expect(); err != nil {
			t.Fatal(err)
		}
		if len(v) == 0 {
			if got != nil {
				t.Fatalf("empty vclock decoded as %v", got)
			}
			continue
		}
		if !reflect.DeepEqual(got, v) {
			t.Fatalf("vclock %v round-tripped as %v", v, got)
		}
	}
}

func testUpdate() *types.Update {
	return &types.Update{
		Key:       "user:42",
		Value:     []byte("payload-bytes"),
		Origin:    2,
		Partition: 7,
		Seq:       991,
		TS:        hlc.Timestamp(77e12)<<16 | 3,
		HTS:       hlc.Timestamp(77e12) << 16,
		VTS:       vclock.V{1 << 30, 0, hlc.Timestamp(77e12)<<16 | 3},
		CreatedAt: 1753900000000000000,
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	u := testUpdate()
	b := AppendUpdate(nil, u)
	d := NewDec(b)
	got := ReadUpdate(&d)
	if err := d.Expect(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, u) {
		t.Fatalf("update round-trip:\n got %+v\nwant %+v", got, u)
	}

	// Metadata-only update (nil value, the §5 separated record).
	m := u.Meta()
	b = AppendUpdate(nil, m)
	d = NewDec(b)
	got = ReadUpdate(&d)
	if err := d.Expect(); err != nil {
		t.Fatal(err)
	}
	if got.Value != nil {
		t.Fatalf("meta value decoded as %v", got.Value)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("meta round-trip: got %+v want %+v", got, m)
	}
}

func TestUpdatesBatchRoundTrip(t *testing.T) {
	var ops []*types.Update
	for i := 0; i < 17; i++ {
		u := testUpdate()
		u.Seq = uint64(i)
		ops = append(ops, u)
	}
	b := AppendUpdates(nil, ops)
	d := NewDec(b)
	got := ReadUpdates(&d)
	if err := d.Expect(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ops) {
		t.Fatal("batch did not round-trip")
	}

	b = AppendUpdates(nil, nil)
	d = NewDec(b)
	if got := ReadUpdates(&d); got != nil || d.Expect() != nil {
		t.Fatalf("empty batch decoded as %v (%v)", got, d.Err())
	}
}

func TestPayloadRegistry(t *testing.T) {
	ops := []*types.Update{testUpdate()}
	b, err := AppendPayload(nil, ops)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDec(b)
	v, err := ReadPayload(&d)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Expect(); err != nil {
		t.Fatal(err)
	}
	if got, ok := v.([]*types.Update); !ok || !reflect.DeepEqual(got, ops) {
		t.Fatalf("payload decoded as %T %v", v, v)
	}

	if _, err := AppendPayload(nil, struct{ X int }{1}); err == nil {
		t.Fatal("unregistered payload type encoded without error")
	}
	d = NewDec(AppendUvarint(nil, 60000)) // unallocated tag
	if _, err := ReadPayload(&d); err == nil {
		t.Fatal("unknown tag decoded without error")
	}
}

// TestTruncationsError drives every truncation of a valid update through
// the decoder: each must report ErrCorrupt, never panic or succeed.
func TestTruncationsError(t *testing.T) {
	full := AppendUpdate(nil, testUpdate())
	for n := 0; n < len(full); n++ {
		d := NewDec(full[:n])
		if u := ReadUpdate(&d); u != nil && d.Expect() == nil {
			t.Fatalf("truncation at %d/%d decoded successfully", n, len(full))
		}
	}
}

// TestHostileLengths checks that dishonest length prefixes fail before
// allocating anything of their claimed size.
func TestHostileLengths(t *testing.T) {
	// Batch claiming 2^40 updates with a 3-byte body.
	b := AppendUvarint(nil, 1<<40)
	b = append(b, 0, 0, 0)
	d := NewDec(b)
	if got := ReadUpdates(&d); got != nil || d.Err() == nil {
		t.Fatal("hostile batch count decoded")
	}
	// String claiming more bytes than remain.
	d = NewDec(AppendUvarint(nil, 100))
	if s := d.String(); s != "" || d.Err() == nil {
		t.Fatalf("hostile string length decoded as %q", s)
	}
	// VClock claiming 2^20 entries on an empty remainder.
	d = NewDec(AppendUvarint(nil, 1<<20))
	if v := d.VClock(); v != nil || d.Err() == nil {
		t.Fatal("hostile vclock length decoded")
	}
}

func TestBufPool(t *testing.T) {
	b := GetBuf()
	if len(b) != 0 {
		t.Fatalf("pooled buffer not empty: %d", len(b))
	}
	b = append(b, make([]byte, 100)...)
	PutBuf(b)
	// Oversized buffers must be dropped, not pooled.
	PutBuf(make([]byte, 0, keepBuf+1))
}
