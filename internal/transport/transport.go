// Package transport runs the Eunomia service over real TCP, as the
// paper's deployment does (a standalone C++ service the datacenter's
// partitions stream to). The in-process experiments don't need it; it
// exists so the service can be deployed as an actual network daemon
// (cmd/eunomia-server) and so the protocol's tolerance of real sockets —
// reconnects, partial failures, at-least-once resends — is exercised by
// tests rather than assumed.
//
// The wire format is gob with length-delimited framing provided by gob's
// own stream protocol: one request, one response, in order, per
// connection. Partition clients already batch (§5), so a synchronous
// round trip per flush costs one RTT per BatchInterval, not per
// operation — the whole point of the design.
package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"

	"eunomia/internal/eunomia"
	"eunomia/internal/hlc"
	"eunomia/internal/types"
)

// reqKind discriminates request envelopes.
type reqKind uint8

const (
	reqBatch reqKind = iota + 1
	reqHeartbeat
	reqPing
)

// request is the client→server envelope.
type request struct {
	Kind      reqKind
	Partition types.PartitionID
	TS        hlc.Timestamp
	Ops       []*types.Update
}

// response is the server→client envelope.
type response struct {
	Watermark hlc.Timestamp
	Err       string
}

// Server exposes one Eunomia replica over a listener.
type Server struct {
	replica *eunomia.Replica
	ln      net.Listener

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  bool
	wg    sync.WaitGroup
}

// Serve starts accepting connections for replica on ln. It returns
// immediately; Close stops the server.
func Serve(ln net.Listener, replica *eunomia.Replica) *Server {
	s := &Server{replica: replica, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener address (useful with ":0" listeners).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting and tears down every open connection.
func (s *Server) Close() {
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	_ = s.ln.Close()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.done {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return
		}
		var resp response
		switch req.Kind {
		case reqBatch:
			w, err := s.replica.NewBatch(req.Partition, req.Ops)
			resp.Watermark = w
			if err != nil {
				resp.Err = err.Error()
			}
		case reqHeartbeat:
			if err := s.replica.Heartbeat(req.Partition, req.TS); err != nil {
				resp.Err = err.Error()
			}
		case reqPing:
			if err := s.replica.Ping(); err != nil {
				resp.Err = err.Error()
			}
		default:
			resp.Err = fmt.Sprintf("transport: unknown request kind %d", req.Kind)
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// Conn is a TCP-backed eunomia.Conn: one socket, synchronous round trips
// serialized by a mutex (partition clients flush one batch at a time, so
// there is no pipelining to win).
type Conn struct {
	addr string

	mu   sync.Mutex
	sock net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Dial connects to a served replica.
func Dial(addr string) (*Conn, error) {
	c := &Conn{addr: addr}
	if err := c.connect(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Conn) connect() error {
	sock, err := net.Dial("tcp", c.addr)
	if err != nil {
		return err
	}
	c.sock = sock
	c.enc = gob.NewEncoder(sock)
	c.dec = gob.NewDecoder(sock)
	return nil
}

// roundTrip performs one request/response exchange, reconnecting once on a
// broken socket. The at-least-once semantics this can produce (a request
// applied but its response lost) are exactly what the protocol tolerates:
// replicas deduplicate by watermark.
func (c *Conn) roundTrip(req *request) (response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for attempt := 0; ; attempt++ {
		if c.sock == nil {
			if err := c.connect(); err != nil {
				return response{}, err
			}
		}
		var resp response
		err := c.enc.Encode(req)
		if err == nil {
			err = c.dec.Decode(&resp)
		}
		if err == nil {
			if resp.Err != "" {
				return resp, errors.New(resp.Err)
			}
			return resp, nil
		}
		_ = c.sock.Close()
		c.sock = nil
		if attempt >= 1 {
			return response{}, err
		}
	}
}

// NewBatch implements eunomia.Conn.
func (c *Conn) NewBatch(p types.PartitionID, ops []*types.Update) (hlc.Timestamp, error) {
	resp, err := c.roundTrip(&request{Kind: reqBatch, Partition: p, Ops: ops})
	return resp.Watermark, err
}

// Heartbeat implements eunomia.Conn.
func (c *Conn) Heartbeat(p types.PartitionID, ts hlc.Timestamp) error {
	_, err := c.roundTrip(&request{Kind: reqHeartbeat, Partition: p, TS: ts})
	return err
}

// Ping checks server liveness.
func (c *Conn) Ping() error {
	_, err := c.roundTrip(&request{Kind: reqPing})
	return err
}

// Close tears the socket down.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sock != nil {
		err := c.sock.Close()
		c.sock = nil
		return err
	}
	return nil
}
