// Package transport is the real-network implementation of the message
// fabric (internal/fabric): it runs the same deployment code the simulated
// WAN runs, over actual TCP sockets, the way the paper's prototype ran its
// standalone Eunomia service inside a datacenter.
//
// The wire protocol is pipelined and length-framed. Each ordered pair of
// processes shares one connection owned by a single writer goroutine:
// messages are encoded with the zero-reflection wire codec
// (internal/wire) — type-tagged binary frames behind a 4-byte length
// prefix — assigned a per-peer sequence number, and streamed without
// waiting for responses; a whole flush batch reaches the socket in a
// single write from one pooled buffer. The receiver returns cumulative
// acknowledgements (windowed: at least one ack per quarter window, and
// whenever the pipe drains); the sender keeps unacknowledged frames
// buffered and retransmits them after a reconnect. Sends block only when
// the unacknowledged window is full — backpressure, not round trips.
// This replaces the original one-request-one-response protocol, in which
// every flush paid a full RTT before the next batch could be sent.
//
// Config.Codec selects the frame codec (the fabric.Codec seam): the
// default wire codec above, or the original persistent-gob streams
// (fabric.CodecGob, cmd/eunomia-server -codec gob) kept as the benchmark
// ablation. The dialer announces its choice in the first byte of every
// connection, so the accept side speaks whatever the dialer chose and
// mixed deployments interoperate.
//
// Delivery semantics match what the protocols tolerate (and what simnet
// provides): FIFO per ordered process pair, at-least-once across process
// restarts (a receiver that crashes loses its duplicate-filter state, so
// retransmitted frames can be delivered twice — replicas deduplicate by
// partition watermark, receivers by origin timestamp, partitions by update
// id).
//
// Routing is static-first (exact endpoint routes, then datacenter-wildcard
// routes) with learned fallback: every connection opens with a hello frame
// advertising the dialer's listen address, and source addresses seen on
// that connection become dialable reply routes. Endpoints hosted by this
// process are short-circuited through an in-process zero-delay loopback.
package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"eunomia/internal/compress"
	"eunomia/internal/fabric"
	"eunomia/internal/faults"
	"eunomia/internal/metrics"
	"eunomia/internal/simnet"
	"eunomia/internal/types"
	"eunomia/internal/wan"
)

// Config parameterises a TCP fabric endpoint.
type Config struct {
	// Listen is the TCP address to bind; every fabric process listens so
	// peers can reach the endpoints it hosts (use "127.0.0.1:0" in
	// tests).
	Listen string
	// Advertise is the address other processes dial to reach this one;
	// it defaults to the bound listen address and matters when the bind
	// address is not routable as-is.
	Advertise string
	// Process is the base name of this endpoint (default: the advertise
	// address). An incarnation nonce is always appended: the receive-side
	// duplicate filter is keyed by the full name, and a restarted
	// process is a new sender stream that must not be filtered by the
	// sequence watermark its predecessor accumulated at its peers.
	Process string

	// Routes maps exact endpoint addresses to "host:port" of the process
	// hosting them.
	Routes map[fabric.Addr]string
	// DCRoutes maps a whole datacenter to one process, for deployments
	// that run each datacenter as a single process.
	DCRoutes map[types.DCID]string

	// Codec selects the frame encoding for connections this endpoint
	// dials: fabric.CodecWire (default) or the fabric.CodecGob ablation.
	// Inbound connections follow the remote dialer's choice.
	Codec fabric.Codec

	// Compress selects per-frame compression for the wire-codec
	// connections this endpoint dials (compress.Off, Snappy, or Zstd;
	// cmd/eunomia-server -compress). The dialer announces codec and
	// scheme in one magic byte, so compressed, plain-wire, and gob peers
	// interoperate per connection; inbound connections follow the remote
	// dialer's announcement regardless of this setting. Compression is
	// defined only on the wire record layout — with Codec gob the
	// setting is ignored (loudly, once): gob connections are always
	// plain gob streams, never a mis-framed hybrid.
	Compress compress.Scheme
	// CompressMin is the minimum encoded frame size that gets
	// compressed; smaller records (heartbeats, acks, tiny batches) ship
	// raw and skip the codec overhead. Default 512 bytes; negative
	// compresses everything.
	CompressMin int

	// WANShaper, if set, delays inbound cross-datacenter data frames by
	// the shaper's per-link model (latency, jitter, loss-as-retransmit,
	// bandwidth) before dispatch, sized by actual bytes on the wire.
	// Shaping is receiver-side and FIFO-preserving: the emulated-WAN
	// benchmarks and the -wan flag use it to make loopback TCP honest
	// about distance. Ack and hello frames are not shaped (the data
	// direction carries the modeled cost).
	WANShaper *wan.Shaper

	// Faults, if set, is the fault-injection seam (internal/faults):
	// inbound cross-datacenter data frames consult it for a fate
	// (drop/duplicate/corrupt/delay, plus partition cuts) after WAN
	// shaping and before dedup/dispatch, outbound dials consult the
	// blackhole, and the endpoint's break-every-connection hook is
	// registered for the conn-reset event. Nil (the default) costs the
	// hot path nothing but a nil check.
	Faults *faults.Injector

	// HoldDelivery makes inbound connections wait for Ready before any
	// frame is consumed (or acknowledged). A booting process accepts
	// connections the moment Listen returns, but registers its endpoints
	// only once its roles are built; without the hold, frames arriving
	// in that window are dropped as unroutable yet still acknowledged —
	// and for send-once edges (stable-metadata shipping, payload
	// batches) the sender's window prunes them for good. With the hold,
	// unacknowledged frames simply wait in peers' retransmit windows and
	// deliver after Ready. Dialing and sending are never held.
	HoldDelivery bool

	// Window bounds unacknowledged frames per peer; Send blocks (pure
	// backpressure) when it is full. Default 4096.
	Window int
	// MaxFrame bounds a single frame on the wire. Default 64 MiB.
	MaxFrame int
	// DialTimeout bounds one connection attempt. Default 2s.
	DialTimeout time.Duration
	// RedialBackoff is the initial pause between failed dials; it
	// doubles up to one second. Default 50ms.
	RedialBackoff time.Duration
}

func (c *Config) fill() {
	if c.Codec == "" {
		c.Codec = fabric.CodecWire
	}
	if c.Routes == nil {
		c.Routes = make(map[fabric.Addr]string)
	}
	if c.DCRoutes == nil {
		c.DCRoutes = make(map[types.DCID]string)
	}
	if c.Window <= 0 {
		c.Window = 4096
	}
	if c.CompressMin == 0 {
		c.CompressMin = 512
	} else if c.CompressMin < 0 {
		c.CompressMin = 0
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = 64 << 20
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.RedialBackoff <= 0 {
		c.RedialBackoff = 50 * time.Millisecond
	}
}

// incarnation disambiguates default process names within one OS process.
var incarnation uint64

// Frame kinds.
const (
	frameHello = int8(iota + 1)
	frameData
	frameAck
)

// frame is the wire unit: one gob message behind a 4-byte length prefix.
type frame struct {
	Kind int8
	// Seq numbers data frames per sender process, contiguously.
	Seq uint64
	// Ack is the receiver's cumulative delivered sequence.
	Ack uint64
	// Process and Advertise identify the dialer (hello frames).
	Process   string
	Advertise string
	// Data frame body.
	From, To fabric.Addr
	SentAt   time.Time
	Payload  any

	// wireBytes is the socket footprint of the record that carried this
	// frame (length prefix included), set by decoders for the WAN
	// shaper's bandwidth model. Not serialized; 0 on the gob ablation.
	wireBytes int
}

// TCP is a fabric endpoint backed by real sockets. It implements
// fabric.Fabric.
type TCP struct {
	cfg Config
	ln  net.Listener
	// loop delivers to endpoints hosted by this process without touching
	// the network, preserving per-pair FIFO via simnet's link machinery.
	loop *simnet.Network

	mu       sync.Mutex
	handlers map[fabric.Addr]fabric.Handler
	learned  map[fabric.Addr]string
	peers    map[string]*peer
	inSeq    map[string]uint64 // per remote process: last delivered seq
	// incarnations maps an advertise address to the process name last
	// seen from it, so the duplicate-filter state of dead incarnations
	// is pruned instead of accumulating across peer restarts.
	incarnations map[string]string
	conns        map[net.Conn]struct{}
	closed       bool

	// ready gates inbound frame consumption (Config.HoldDelivery); done
	// releases held connections on Close.
	ready     chan struct{}
	readyOnce sync.Once
	done      chan struct{}

	wg sync.WaitGroup

	// Codec latency histograms, one set per codec: an endpoint can speak
	// both at once (inbound connections follow the remote dialer's magic
	// byte), and samples must land under the codec that produced them or
	// a mixed-rollout dashboard compares garbage.
	statsWire, statsGob *codecStats

	// comp aggregates compression byte counters over every wire-codec
	// connection (compressed or not — uncompressed connections count
	// raw == wire, so bytes-on-wire is always measurable).
	comp compressCounters
	// gobFallback logs once when a gob connection meets a
	// compress-enabled endpoint: the connection proceeds as plain gob.
	gobFallback sync.Once

	// Stats count fabric activity for tests and reports.
	Sent       atomic.Int64
	Delivered  atomic.Int64
	Dropped    atomic.Int64
	DupDropped atomic.Int64
}

var _ fabric.Fabric = (*TCP)(nil)

// Listen binds the endpoint and starts accepting peers.
func Listen(cfg Config) (*TCP, error) {
	cfg.fill()
	if cfg.Codec != fabric.CodecWire && cfg.Codec != fabric.CodecGob {
		return nil, fmt.Errorf("transport: unknown codec %q (want %q or %q)", cfg.Codec, fabric.CodecWire, fabric.CodecGob)
	}
	switch cfg.Compress {
	case compress.Off, compress.Snappy, compress.Zstd:
	default:
		return nil, fmt.Errorf("transport: unknown compression scheme %v", cfg.Compress)
	}
	if cfg.Codec == fabric.CodecGob && cfg.Compress != compress.Off {
		// Compression is defined only on the wire record layout; with the
		// gob ablation the setting cannot apply. Say so once and proceed
		// with plain gob rather than producing a mis-framed stream.
		log.Printf("transport: -compress %s requires the wire codec; %q dials plain gob connections uncompressed",
			cfg.Compress, cfg.Listen)
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, err
	}
	if cfg.Advertise == "" {
		cfg.Advertise = ln.Addr().String()
	}
	if cfg.Process == "" {
		cfg.Process = cfg.Advertise
	}
	// See Config.Process: the nonce is never optional, or a restarted
	// process with a stable configured name would have every frame of
	// its fresh stream silently dropped by its peers' duplicate filters.
	cfg.Process = fmt.Sprintf("%s#%d", cfg.Process, atomic.AddUint64(&incarnation, 1)^uint64(time.Now().UnixNano()))
	t := &TCP{
		cfg:          cfg,
		ln:           ln,
		loop:         simnet.New(nil),
		handlers:     make(map[fabric.Addr]fabric.Handler),
		learned:      make(map[fabric.Addr]string),
		peers:        make(map[string]*peer),
		inSeq:        make(map[string]uint64),
		incarnations: make(map[string]string),
		conns:        make(map[net.Conn]struct{}),
		statsWire:    newCodecStats(),
		statsGob:     newCodecStats(),
		ready:        make(chan struct{}),
		done:         make(chan struct{}),
	}
	if !cfg.HoldDelivery {
		t.Ready() // through the Once, so a caller's Ready stays a no-op
	}
	if cfg.Faults != nil {
		cfg.Faults.OnConnReset(t.BreakConns)
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Ready releases inbound delivery held by Config.HoldDelivery; call it
// once every endpoint this process hosts is registered. Idempotent, and
// a no-op without the hold.
func (t *TCP) Ready() { t.readyOnce.Do(func() { close(t.ready) }) }

// Addr returns the bound listen address (useful with ":0" listeners).
func (t *TCP) Addr() net.Addr { return t.ln.Addr() }

// Register implements fabric.Fabric.
func (t *TCP) Register(a fabric.Addr, h fabric.Handler) {
	t.mu.Lock()
	t.handlers[a] = h
	t.mu.Unlock()
	t.loop.Register(a, h)
}

// Unregister implements fabric.Fabric.
func (t *TCP) Unregister(a fabric.Addr) {
	t.mu.Lock()
	delete(t.handlers, a)
	t.mu.Unlock()
	t.loop.Unregister(a)
}

// Send implements fabric.Fabric. Remote sends block only on a full
// unacknowledged window; they never wait for the peer to respond.
func (t *TCP) Send(from, to fabric.Addr, payload any) {
	t.Sent.Add(1)
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		t.Dropped.Add(1)
		return
	}
	if _, local := t.handlers[to]; local {
		t.mu.Unlock()
		t.loop.Send(from, to, payload)
		t.Delivered.Add(1)
		return
	}
	dial, ok := t.routeLocked(to)
	if !ok {
		t.mu.Unlock()
		t.Dropped.Add(1)
		return
	}
	p := t.peerForLocked(dial)
	t.mu.Unlock()
	p.enqueue(&frame{Kind: frameData, From: from, To: to, SentAt: time.Now(), Payload: payload})
}

// Close implements fabric.Fabric: it tears down the listener, every peer
// connection, and the loopback, then waits for all goroutines.
func (t *TCP) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	close(t.done)
	peers := make([]*peer, 0, len(t.peers))
	for _, p := range t.peers {
		peers = append(peers, p)
	}
	conns := make([]net.Conn, 0, len(t.conns))
	for c := range t.conns {
		conns = append(conns, c)
	}
	t.mu.Unlock()

	_ = t.ln.Close()
	for _, p := range peers {
		p.close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	t.loop.Close()
	t.wg.Wait()
}

// BreakConns closes every live connection once — inbound and outbound —
// without touching the endpoint itself: dialers redial with (jittered)
// backoff and retransmit their unacknowledged windows. This is the
// transport/conn-reset fault point; the faults.Injector's conn-reset
// event fires it.
func (t *TCP) BreakConns() {
	t.mu.Lock()
	conns := make([]net.Conn, 0, len(t.conns))
	for c := range t.conns {
		conns = append(conns, c)
	}
	peers := make([]*peer, 0, len(t.peers))
	for _, p := range t.peers {
		peers = append(peers, p)
	}
	t.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
	for _, p := range peers {
		p.mu.Lock()
		if p.conn != nil {
			_ = p.conn.Close()
		}
		p.mu.Unlock()
	}
}

// AddRoute installs (or replaces) an exact endpoint route at runtime;
// exact routes beat datacenter wildcards.
func (t *TCP) AddRoute(a fabric.Addr, hostport string) {
	t.mu.Lock()
	t.cfg.Routes[a] = hostport
	t.mu.Unlock()
}

// AddDCRoute installs (or replaces) a datacenter-wildcard route at
// runtime.
func (t *TCP) AddDCRoute(dc types.DCID, hostport string) {
	t.mu.Lock()
	t.cfg.DCRoutes[dc] = hostport
	t.mu.Unlock()
}

func (t *TCP) routeLocked(to fabric.Addr) (string, bool) {
	if hp, ok := t.cfg.Routes[to]; ok {
		return hp, true
	}
	if hp, ok := t.cfg.DCRoutes[to.DC]; ok {
		return hp, true
	}
	if hp, ok := t.learned[to]; ok {
		return hp, true
	}
	return "", false
}

func (t *TCP) learn(a fabric.Addr, advertise string) {
	t.mu.Lock()
	if t.learned[a] != advertise {
		t.learned[a] = advertise
	}
	t.mu.Unlock()
}

func (t *TCP) peerForLocked(dial string) *peer {
	if p, ok := t.peers[dial]; ok {
		return p
	}
	p := &peer{t: t, dialAddr: dial, done: make(chan struct{})}
	p.cond = sync.NewCond(&p.mu)
	t.peers[dial] = p
	t.wg.Add(1)
	go p.run()
	return p
}

func (t *TCP) dispatch(m fabric.Message) {
	t.mu.Lock()
	h := t.handlers[m.To]
	t.mu.Unlock()
	if h == nil {
		t.Dropped.Add(1)
		return
	}
	t.Delivered.Add(1)
	h(m)
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			_ = conn.Close()
			return
		}
		t.conns[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.serveInbound(conn)
	}
}

// serveInbound drains one peer's data stream: dedupe by sequence, dispatch
// in arrival order (FIFO per sender), and return cumulative acks — one per
// quarter window at the latest, and whenever the pipe momentarily drains.
func (t *TCP) serveInbound(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
		_ = conn.Close()
	}()

	// Hold the whole stream until the process's endpoints exist: nothing
	// is read, so nothing gets acknowledged, and the dialer's window
	// retains every frame for delivery after Ready.
	select {
	case <-t.ready:
	case <-t.done:
		return
	}

	// The first byte announces the dialer's codec and compression scheme;
	// everything after it — the inbound frames and our acks — speaks that
	// codec, both directions compressed (or not) alike.
	var magic [1]byte
	if _, err := io.ReadFull(conn, magic[:]); err != nil {
		return
	}
	var codec fabric.Codec
	scheme := compress.Off
	switch magic[0] {
	case codecMagicWire:
		codec = fabric.CodecWire
	case codecMagicWireSnappy:
		codec, scheme = fabric.CodecWire, compress.Snappy
	case codecMagicWireZstd:
		codec, scheme = fabric.CodecWire, compress.Zstd
	case codecMagicGob:
		codec = fabric.CodecGob
		if t.cfg.Compress != compress.Off {
			// A gob peer reached a compress-enabled endpoint: legal, but
			// worth one loud line — the connection (and our acks on it)
			// proceeds as a plain gob stream, never a mis-framed hybrid.
			t.gobFallback.Do(func() {
				log.Printf("transport: gob peer %s on compress-enabled endpoint %s: connection falls back to plain gob, uncompressed",
					conn.RemoteAddr(), t.cfg.Advertise)
			})
		}
	default:
		return // not a fabric peer
	}
	fr := t.decoderFor(codec, scheme, conn)
	var hello frame
	if err := fr.next(&hello); err != nil || hello.Kind != frameHello || hello.Process == "" {
		return
	}
	proc := hello.Process
	fw := t.encoderFor(codec, scheme, conn, false)
	defer fw.release()

	t.mu.Lock()
	if hello.Advertise != "" {
		// A fresh incarnation from the same peer address supersedes the
		// old one; drop the dead incarnation's duplicate-filter state.
		if prev, ok := t.incarnations[hello.Advertise]; ok && prev != proc {
			delete(t.inSeq, prev)
		}
		t.incarnations[hello.Advertise] = proc
	}
	last := t.inSeq[proc]
	t.mu.Unlock()

	ackEvery := t.cfg.Window / 4
	if ackEvery < 1 {
		ackEvery = 1
	}
	sinceAck := 0
	// Learn each source address once per connection, not once per frame —
	// the advertise only changes with a new hello anyway, and learning is
	// a fabric-wide mutex acquisition on the hot receive path.
	learnedFrom := make(map[fabric.Addr]bool)
	var shapeTimer *time.Timer
	for {
		var f frame
		if err := fr.next(&f); err != nil {
			break
		}
		if f.Kind != frameData {
			continue
		}
		// Emulated-WAN shaping: hold each cross-datacenter data frame for
		// its modeled link delay before dispatch. Receiver-side and
		// in-order, so FIFO survives; the stall also delays our acks,
		// which is exactly the window backpressure a slow pipe exerts.
		if sh := t.cfg.WANShaper; sh != nil && f.From.DC != f.To.DC {
			if d, ok := sh.PlanReliable(f.From.DC, f.To.DC, f.wireBytes, time.Now()); ok && d > 0 {
				if shapeTimer == nil {
					shapeTimer = time.NewTimer(d)
				} else {
					shapeTimer.Reset(d)
				}
				select {
				case <-shapeTimer.C:
				case <-t.done:
					return
				}
			}
		}
		if f.Seq <= last {
			t.DupDropped.Add(1)
		} else {
			// Fault injection (new cross-DC data frames only — frames the
			// dedup watermark already covers were dispatched in a prior
			// life and just burn a duplicate). Corrupt tears the
			// connection down before the watermark advances: a framing
			// checksum failure kills the stream, the dialer's reconnect
			// retransmits everything unacked, and the retried frame
			// redraws its fate. Drop consumes and acknowledges the frame
			// without dispatching it: loss at the fabric layer, exactly
			// what a simnet SetDrop delivers, so the protocols' own
			// recovery paths must absorb it.
			fate := faults.FateDeliver
			if inj := t.cfg.Faults; inj != nil && f.From.DC != f.To.DC {
				var fdelay time.Duration
				fate, fdelay = inj.FrameFate(f.From.DC, f.To.DC)
				if fate == faults.FateCorrupt {
					// Exit the frame loop, not the function: the
					// delivered prefix's watermark below must persist
					// into inSeq or the reconnect would re-dispatch it
					// as duplicates.
					break
				}
				if fdelay > 0 {
					if shapeTimer == nil {
						shapeTimer = time.NewTimer(fdelay)
					} else {
						shapeTimer.Reset(fdelay)
					}
					select {
					case <-shapeTimer.C:
					case <-t.done:
						return
					}
				}
			}
			last = f.Seq
			if fate == faults.FateDrop {
				t.Dropped.Add(1)
			} else {
				if hello.Advertise != "" && !learnedFrom[f.From] {
					learnedFrom[f.From] = true
					t.learn(f.From, hello.Advertise)
				}
				t.dispatch(fabric.Message{From: f.From, To: f.To, Payload: f.Payload, SentAt: f.SentAt})
				if fate == faults.FateDup {
					t.dispatch(fabric.Message{From: f.From, To: f.To, Payload: f.Payload, SentAt: f.SentAt})
				}
			}
		}
		sinceAck++
		if sinceAck >= ackEvery || fr.buffered() == 0 {
			t.mu.Lock()
			if last > t.inSeq[proc] {
				t.inSeq[proc] = last
			}
			t.mu.Unlock()
			if fw.write(&frame{Kind: frameAck, Ack: last}) != nil || fw.flush() != nil {
				break
			}
			sinceAck = 0
		}
	}
	t.mu.Lock()
	if last > t.inSeq[proc] {
		t.inSeq[proc] = last
	}
	t.mu.Unlock()
}

// peer owns the outbound stream to one process: a queue of unacknowledged
// frames, a single writer goroutine, and a reconnect loop that
// retransmits the unacknowledged suffix on a fresh socket.
type peer struct {
	t        *TCP
	dialAddr string

	mu      sync.Mutex
	cond    *sync.Cond
	q       []*frame // unacknowledged frames, ascending sequence order
	sendPos int      // index into q of the first frame not yet written to conn
	nextSeq uint64
	conn    net.Conn // live socket, nil while disconnected
	closed  bool
	done    chan struct{} // closed exactly once by close()

	// Window counters for metrics export: the highest sequence ever
	// written to a socket (frames at or below it that are written again
	// are retransmissions), the highest cumulative ack received, and the
	// running retransmission count.
	maxSent     uint64
	ackedCum    uint64
	retransmits int64
}

// PeerStat is one peer's window state for metrics export.
type PeerStat struct {
	// Peer is the dial address of the remote process.
	Peer string
	// InFlight is the number of sent-but-unacknowledged frames currently
	// buffered (the retransmit window's occupancy).
	InFlight int
	// Sent is the highest sequence assigned to an outbound frame.
	Sent uint64
	// AckedCum is the highest cumulative acknowledgement received.
	AckedCum uint64
	// Retransmits counts frames written to a socket more than once
	// (reconnect retransmission).
	Retransmits int64
	// Connected reports whether a live socket is attached.
	Connected bool
}

// PeerStats snapshots every peer's window counters, sorted by nothing in
// particular (callers label by Peer).
func (t *TCP) PeerStats() []PeerStat {
	t.mu.Lock()
	peers := make([]*peer, 0, len(t.peers))
	for _, p := range t.peers {
		peers = append(peers, p)
	}
	t.mu.Unlock()
	stats := make([]PeerStat, 0, len(peers))
	for _, p := range peers {
		p.mu.Lock()
		stats = append(stats, PeerStat{
			Peer:        p.dialAddr,
			InFlight:    len(p.q),
			Sent:        p.nextSeq,
			AckedCum:    p.ackedCum,
			Retransmits: p.retransmits,
			Connected:   p.conn != nil,
		})
		p.mu.Unlock()
	}
	return stats
}

// statsFor returns the histogram set samples of the given codec land in.
func (t *TCP) statsFor(codec fabric.Codec) *codecStats {
	if codec == fabric.CodecGob {
		return t.statsGob
	}
	return t.statsWire
}

// encoderFor builds a frame encoder speaking the given codec and
// compression scheme. withMagic prepends the codec announcement byte
// (dialed connections only; the accept side answers without one — the
// dialer already knows, and answers speak the dialer's scheme).
func (t *TCP) encoderFor(codec fabric.Codec, scheme compress.Scheme, conn net.Conn, withMagic bool) frameEncoder {
	if codec == fabric.CodecGob {
		fw := newFrameWriter(conn, t.cfg.MaxFrame)
		fw.stats = t.statsGob
		if withMagic {
			_ = fw.w.WriteByte(codecMagicGob)
		}
		return fw
	}
	return newWireFrameWriter(conn, t.cfg.MaxFrame, t.statsWire, withMagic, scheme, t.cfg.CompressMin, &t.comp)
}

// decoderFor builds a frame decoder speaking the given codec and scheme.
func (t *TCP) decoderFor(codec fabric.Codec, scheme compress.Scheme, conn net.Conn) frameDecoder {
	if codec == fabric.CodecGob {
		fr := newFrameReader(conn, t.cfg.MaxFrame)
		fr.stats = t.statsGob
		return fr
	}
	return newWireFrameReader(conn, t.cfg.MaxFrame, t.statsWire, scheme, &t.comp)
}

// dialScheme is the compression scheme for connections this endpoint
// dials: the configured scheme on the wire codec, Off on the gob
// ablation (compression is only defined on the wire record layout).
func (t *TCP) dialScheme() compress.Scheme {
	if t.cfg.Codec != fabric.CodecWire {
		return compress.Off
	}
	return t.cfg.Compress
}

// Codec reports the frame codec this endpoint dials with.
func (t *TCP) Codec() fabric.Codec { return t.cfg.Codec }

// Compress reports the compression scheme this endpoint dials with.
func (t *TCP) Compress() compress.Scheme { return t.dialScheme() }

// CompressStats is a snapshot of an endpoint's compression byte
// accounting, all wire-codec connections merged. Raw counts record bytes
// as they would ship uncompressed (length prefixes included), Wire the
// bytes that actually crossed sockets; Raw/Wire is the realized
// compression ratio, and Wire alone is bytes-on-wire (uncompressed
// connections advance both equally). Gob-ablation traffic is not
// counted.
type CompressStats struct {
	TxRaw, TxWire, RxRaw, RxWire int64
}

// CompressStats returns the endpoint's compression byte counters.
func (t *TCP) CompressStats() CompressStats {
	return CompressStats{
		TxRaw:  t.comp.txRaw.Load(),
		TxWire: t.comp.txWire.Load(),
		RxRaw:  t.comp.rxRaw.Load(),
		RxWire: t.comp.rxWire.Load(),
	}
}

// CodecStats returns the endpoint's serialization latency histograms for
// one codec: frame encode, frame decode, and socket flush (all
// connections speaking that codec merged, nanosecond samples). Both sets
// exist on every endpoint — inbound connections follow the remote
// dialer's codec, so a wire endpoint can still record gob samples during
// a mixed rollout. cmd/eunomia-server exports the non-empty sets on
// -metrics-addr.
func (t *TCP) CodecStats(codec fabric.Codec) (enc, dec, flush *metrics.Histogram) {
	s := t.statsFor(codec)
	return s.enc, s.dec, s.flush
}

func (p *peer) enqueue(f *frame) {
	p.mu.Lock()
	for !p.closed && len(p.q) >= p.t.cfg.Window {
		p.cond.Wait()
	}
	if p.closed {
		p.mu.Unlock()
		p.t.Dropped.Add(1)
		return
	}
	p.nextSeq++
	f.Seq = p.nextSeq
	p.q = append(p.q, f)
	p.cond.Broadcast()
	p.mu.Unlock()
}

func (p *peer) close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.done)
	}
	if p.conn != nil {
		_ = p.conn.Close()
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}

func (p *peer) run() {
	defer p.t.wg.Done()
	backoff := p.t.cfg.RedialBackoff
	for {
		// Wait for something to send (no point holding an idle dial).
		p.mu.Lock()
		for !p.closed && p.sendPos >= len(p.q) {
			p.cond.Wait()
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		p.mu.Unlock()

		var conn net.Conn
		var err error
		if inj := p.t.cfg.Faults; inj != nil && inj.DialBlackholed() {
			err = errBlackholed // the transport/dial-blackhole fault point
		} else {
			conn, err = net.DialTimeout("tcp", p.dialAddr, p.t.cfg.DialTimeout)
		}
		if err != nil {
			// Jittered backoff: sleep a uniform draw from [b/2, 3b/2)
			// instead of exactly b, so every peer of a restarted
			// listener doesn't redial in lockstep and stampede it the
			// instant it comes back.
			if p.sleepClosed(jitter(backoff)) {
				return
			}
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
			continue
		}
		backoff = p.t.cfg.RedialBackoff
		p.serveConn(conn)
	}
}

var errBlackholed = errors.New("transport: dial blackholed (injected)")

// jitter spreads d uniformly over [d/2, 3d/2).
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// sleepClosed pauses for d and reports whether the peer was closed.
func (p *peer) sleepClosed(d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return false
	case <-p.done:
		return true
	}
}

func (p *peer) serveConn(conn net.Conn) {
	ackDone := make(chan struct{})
	defer func() {
		_ = conn.Close()
		<-ackDone
	}()

	fw := p.t.encoderFor(p.t.cfg.Codec, p.t.dialScheme(), conn, true)
	defer fw.release()
	if fw.write(&frame{Kind: frameHello, Process: p.t.cfg.Process, Advertise: p.t.cfg.Advertise}) != nil || fw.flush() != nil {
		close(ackDone)
		return
	}

	// Fresh socket: retransmit the entire unacknowledged window.
	p.mu.Lock()
	p.sendPos = 0
	p.conn = conn
	p.mu.Unlock()
	go p.readAcks(conn, ackDone)

	for {
		p.mu.Lock()
		for !p.closed && p.conn == conn && p.sendPos >= len(p.q) {
			p.cond.Wait()
		}
		if p.closed || p.conn != conn {
			p.mu.Unlock()
			return
		}
		batch := make([]*frame, len(p.q)-p.sendPos)
		copy(batch, p.q[p.sendPos:])
		p.sendPos = len(p.q)
		for _, f := range batch {
			if f.Seq <= p.maxSent {
				p.retransmits++
			} else {
				p.maxSent = f.Seq
			}
		}
		p.mu.Unlock()

		for _, f := range batch {
			if err := fw.write(f); err != nil {
				var ee *encodeError
				if errors.As(err, &ee) {
					// Unserializable frame: drop it from the window so
					// the reconnect does not redial into the same
					// encode failure forever, then reset the codec.
					p.dropFrame(f)
					p.t.Dropped.Add(1)
				}
				return
			}
		}
		if fw.flush() != nil {
			return
		}
	}
}

// dropFrame removes one frame from the unacknowledged window (sequence
// gaps are fine: receivers dedupe by high-water mark, acks are
// cumulative).
func (p *peer) dropFrame(f *frame) {
	p.mu.Lock()
	for i, q := range p.q {
		if q == f {
			p.q = append(p.q[:i], p.q[i+1:]...)
			if i < p.sendPos {
				p.sendPos--
			}
			p.cond.Broadcast() // window space freed
			break
		}
	}
	p.mu.Unlock()
}

// readAcks prunes the unacknowledged queue as cumulative acks arrive; on
// any read error it detaches the socket so the writer reconnects.
func (p *peer) readAcks(conn net.Conn, done chan struct{}) {
	defer close(done)
	fr := p.t.decoderFor(p.t.cfg.Codec, p.t.dialScheme(), conn)
	for {
		var f frame
		if err := fr.next(&f); err != nil {
			break
		}
		if f.Kind != frameAck {
			continue
		}
		p.mu.Lock()
		if f.Ack > p.ackedCum {
			p.ackedCum = f.Ack
		}
		drop := 0
		for drop < len(p.q) && p.q[drop].Seq <= f.Ack {
			drop++
		}
		if drop > 0 {
			p.q = append([]*frame(nil), p.q[drop:]...)
			if p.sendPos -= drop; p.sendPos < 0 {
				p.sendPos = 0
			}
			p.cond.Broadcast() // window space freed
		}
		p.mu.Unlock()
	}
	_ = conn.Close()
	p.mu.Lock()
	if p.conn == conn {
		p.conn = nil
		// Frames written to the dead socket are unacknowledged again;
		// rewinding makes the run loop redial and retransmit them.
		p.sendPos = 0
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}

// frameWriter encodes frames with a persistent gob stream behind 4-byte
// length prefixes (gob transmits each type descriptor once per
// connection; the length prefix gives the reader wire-level framing and a
// size guard). It is the fabric.CodecGob ablation's encoder; the default
// path is wireFrameWriter.
type frameWriter struct {
	w     *bufio.Writer
	buf   bytes.Buffer
	enc   *gob.Encoder
	max   int
	stats *codecStats
}

func newFrameWriter(conn net.Conn, maxFrame int) *frameWriter {
	fw := &frameWriter{w: bufio.NewWriter(conn), max: maxFrame}
	fw.enc = gob.NewEncoder(&fw.buf)
	return fw
}

// encodeError marks a frame that can never be serialized (e.g. a payload
// type missing from the gob registry) — permanent, unlike socket errors.
type encodeError struct{ err error }

func (e *encodeError) Error() string { return "transport: frame encode: " + e.err.Error() }
func (e *encodeError) Unwrap() error { return e.err }

func (fw *frameWriter) write(f *frame) error {
	start := time.Now()
	fw.buf.Reset()
	if err := fw.enc.Encode(f); err != nil {
		// The encoder may have buffered (and now lost) type descriptors;
		// the connection's codec state is unusable either way, so the
		// caller must tear the connection down — but after discarding
		// the poison frame, or reconnect would replay it forever.
		return &encodeError{err}
	}
	if fw.buf.Len() > fw.max {
		// Enforced at the writer too: the receiver's frameReader would
		// reject an oversized frame, and unlike a socket error it would
		// reproduce on every retransmission — the caller must discard
		// it, not replay it.
		return &encodeError{fmt.Errorf("frame length %d exceeds max %d", fw.buf.Len(), fw.max)}
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(fw.buf.Len()))
	if fw.stats != nil {
		fw.stats.enc.RecordDuration(time.Since(start))
	}
	if _, err := fw.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := fw.w.Write(fw.buf.Bytes())
	return err
}

func (fw *frameWriter) flush() error {
	start := time.Now()
	err := fw.w.Flush()
	if fw.stats != nil {
		fw.stats.flush.RecordDuration(time.Since(start))
	}
	return err
}

// release implements frameEncoder; the gob writer owns no pooled
// resources.
func (fw *frameWriter) release() {}

// frameReader validates length prefixes and feeds the framed byte stream
// to a persistent gob decoder (the fabric.CodecGob ablation; the default
// path is wireFrameReader).
type frameReader struct {
	r         *bufio.Reader
	dec       *gob.Decoder
	remaining int
	max       int
	stats     *codecStats
	// blocked records whether a Read since the last next() had to pull
	// from the socket: such a decode measures network wait, not codec
	// cost, and must not pollute the latency histogram.
	blocked bool
}

func newFrameReader(conn net.Conn, maxFrame int) *frameReader {
	fr := &frameReader{r: bufio.NewReader(conn), max: maxFrame}
	fr.dec = gob.NewDecoder(fr)
	return fr
}

// Read implements io.Reader over the framed stream for the gob decoder.
func (fr *frameReader) Read(b []byte) (int, error) {
	for fr.remaining == 0 {
		if fr.r.Buffered() < 4 {
			fr.blocked = true
		}
		var hdr [4]byte
		if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
			return 0, err
		}
		n := int(binary.BigEndian.Uint32(hdr[:]))
		if n <= 0 || n > fr.max {
			return 0, fmt.Errorf("transport: frame length %d out of range (max %d)", n, fr.max)
		}
		fr.remaining = n
	}
	if len(b) > fr.remaining {
		b = b[:fr.remaining]
	}
	if fr.r.Buffered() == 0 {
		fr.blocked = true // this read pulls from the socket
	}
	n, err := fr.r.Read(b)
	fr.remaining -= n
	return n, err
}

func (fr *frameReader) next(f *frame) error {
	*f = frame{}
	// Only a decode whose every byte was already buffered yields an
	// honest sample: if any Read under the Decode pulled from the socket
	// (fr.blocked), the elapsed time measures network wait, and
	// recording it would bias the wire-vs-gob dashboard against gob.
	fr.blocked = false
	start := time.Now()
	err := fr.dec.Decode(f)
	if fr.stats != nil && !fr.blocked && err == nil {
		fr.stats.dec.RecordDuration(time.Since(start))
	}
	return err
}

// buffered reports bytes already read off the socket but not yet decoded.
func (fr *frameReader) buffered() int { return fr.r.Buffered() + fr.remaining }
