package transport

// Frame-envelope fuzzing: a hostile or corrupt frame body — whatever a
// broken peer or a flipped bit produces inside a length prefix — must
// error out of decodeFrame, never panic; the connection owner then tears
// the socket down and the window protocol retransmits. The same inputs
// are run through the compressed-connection record parser in every
// scheme, covering corrupt markers and truncated or tampered compressed
// payloads.

import (
	"testing"
	"time"

	"eunomia/internal/compress"
	"eunomia/internal/fabric"
	"eunomia/internal/wire"
)

func frameSeed(f *frame) []byte {
	b, err := appendFrame(nil, f)
	if err != nil {
		panic(err)
	}
	return b
}

// compressedRecordSeed builds the record body a compressed connection
// ships for one frame: marker byte plus compressed frame bytes.
func compressedRecordSeed(scheme compress.Scheme, f *frame) []byte {
	return append([]byte{recordCompressed}, compress.Compress(scheme, nil, frameSeed(f))...)
}

func FuzzDecodeFrame(f *testing.F) {
	dataFrame := &frame{
		Kind: frameData, Seq: 7,
		From: fabric.PartitionAddr(0, 1), To: fabric.ReceiverAddr(1),
		SentAt: time.Unix(0, 1753900000000000000), Payload: testMsg{N: 42},
	}
	f.Add(frameSeed(&frame{Kind: frameHello, Process: "proc#1", Advertise: "127.0.0.1:7077"}))
	f.Add(frameSeed(&frame{Kind: frameAck, Ack: 99}))
	f.Add(frameSeed(dataFrame))
	f.Add([]byte{})
	f.Add([]byte{byte(frameData), 0xff, 0xff})
	f.Add(append(frameSeed(&frame{Kind: frameAck, Ack: 1}), 0xff))
	// Compressed-connection records: raw marker, valid compressed bodies,
	// a truncated compressed body, and a garbage marker.
	f.Add(append([]byte{recordRaw}, frameSeed(dataFrame)...))
	f.Add(compressedRecordSeed(compress.Snappy, dataFrame))
	f.Add(compressedRecordSeed(compress.Zstd, dataFrame))
	f.Add(compressedRecordSeed(compress.Snappy, dataFrame)[:8])
	f.Add([]byte{0x7f, 0x00, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		var fr frame
		_ = decodeFrame(data, &fr) // must never panic
		// The same bytes through every compressed-connection parse: the
		// marker dispatch, decompression, and envelope decode must error
		// on anything corrupt, never panic.
		for _, scheme := range []compress.Scheme{compress.Snappy, compress.Zstd} {
			var rec frame
			if _, _, err := decodeWireRecord(scheme, data, nil, 64<<20, &rec); err == nil && len(data) > 0 && data[0] == recordCompressed {
				// A record that parses must round-trip its envelope kind.
				if rec.Kind != frameHello && rec.Kind != frameAck && rec.Kind != frameData {
					t.Fatalf("scheme %v accepted record with kind %d", scheme, rec.Kind)
				}
			}
		}
	})
}

// TestDecodeWireRecordCorruptCompressed pins the specific failures the
// fuzz target hunts: truncated and bit-flipped compressed bodies, a
// dishonest decompressed length, and an unknown marker must all error.
func TestDecodeWireRecordCorruptCompressed(t *testing.T) {
	dataFrame := &frame{
		Kind: frameData, Seq: 9,
		From: fabric.PartitionAddr(0, 2), To: fabric.ReceiverAddr(1),
		SentAt: time.Unix(0, 1753900000000000000), Payload: testMsg{N: 7},
	}
	for _, scheme := range []compress.Scheme{compress.Snappy, compress.Zstd} {
		rec := compressedRecordSeed(scheme, dataFrame)
		var f frame
		if _, _, err := decodeWireRecord(scheme, rec, nil, 64<<20, &f); err != nil {
			t.Fatalf("%v: valid record rejected: %v", scheme, err)
		}
		cases := map[string][]byte{
			"empty":     {},
			"truncated": rec[:len(rec)/2],
			"badMarker": append([]byte{0x42}, rec[1:]...),
		}
		for i := 1; i < len(rec); i += 3 {
			mut := append([]byte(nil), rec...)
			mut[i] ^= 0xa5
			cases["flip"] = mut
			var f frame
			if _, _, err := decodeWireRecord(scheme, mut, nil, 64<<20, &f); err == nil {
				// A flipped bit may still decompress to a valid frame
				// (e.g. inside the payload value); decodeFrame acceptance
				// is fine — what matters is no panic, checked implicitly.
				continue
			}
		}
		for name, in := range cases {
			var f frame
			if _, _, err := decodeWireRecord(scheme, in, nil, 64<<20, &f); err == nil && name != "flip" {
				t.Errorf("%v/%s: want error, got nil", scheme, name)
			}
		}
		// Decoded length above MaxFrame must be rejected even when the
		// compressed body itself is valid.
		var f2 frame
		if _, _, err := decodeWireRecord(scheme, rec, nil, 4, &f2); err == nil {
			t.Errorf("%v: oversized decoded frame accepted", scheme)
		}
	}
}

// TestFrameEnvelopeRoundTrip pins the envelope encoding itself (the
// fields the payload codecs do not cover).
func TestFrameEnvelopeRoundTrip(t *testing.T) {
	in := &frame{
		Kind: frameData, Seq: 123456,
		From: fabric.PartitionAddr(2, 5), To: fabric.ApplierAddr(0),
		SentAt: time.Unix(0, 1753900000000000000), Payload: testMsg{N: 7},
	}
	b := frameSeed(in)
	var out frame
	if err := decodeFrame(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.Seq != in.Seq || out.From != in.From || out.To != in.To ||
		!out.SentAt.Equal(in.SentAt) || out.Payload.(testMsg) != in.Payload.(testMsg) {
		t.Fatalf("envelope round trip:\n got %+v\nwant %+v", out, in)
	}
	if _, err := wire.AppendPayload(nil, out.Payload); err != nil {
		t.Fatal(err)
	}
}
