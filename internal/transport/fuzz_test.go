package transport

// Frame-envelope fuzzing: a hostile or corrupt frame body — whatever a
// broken peer or a flipped bit produces inside a length prefix — must
// error out of decodeFrame, never panic; the connection owner then tears
// the socket down and the window protocol retransmits.

import (
	"testing"
	"time"

	"eunomia/internal/fabric"
	"eunomia/internal/wire"
)

func frameSeed(f *frame) []byte {
	b, err := appendFrame(nil, f)
	if err != nil {
		panic(err)
	}
	return b
}

func FuzzDecodeFrame(f *testing.F) {
	f.Add(frameSeed(&frame{Kind: frameHello, Process: "proc#1", Advertise: "127.0.0.1:7077"}))
	f.Add(frameSeed(&frame{Kind: frameAck, Ack: 99}))
	f.Add(frameSeed(&frame{
		Kind: frameData, Seq: 7,
		From: fabric.PartitionAddr(0, 1), To: fabric.ReceiverAddr(1),
		SentAt: time.Unix(0, 1753900000000000000), Payload: testMsg{N: 42},
	}))
	f.Add([]byte{})
	f.Add([]byte{byte(frameData), 0xff, 0xff})
	f.Add(append(frameSeed(&frame{Kind: frameAck, Ack: 1}), 0xff))

	f.Fuzz(func(t *testing.T, data []byte) {
		var fr frame
		_ = decodeFrame(data, &fr) // must never panic
	})
}

// TestFrameEnvelopeRoundTrip pins the envelope encoding itself (the
// fields the payload codecs do not cover).
func TestFrameEnvelopeRoundTrip(t *testing.T) {
	in := &frame{
		Kind: frameData, Seq: 123456,
		From: fabric.PartitionAddr(2, 5), To: fabric.ApplierAddr(0),
		SentAt: time.Unix(0, 1753900000000000000), Payload: testMsg{N: 7},
	}
	b := frameSeed(in)
	var out frame
	if err := decodeFrame(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.Seq != in.Seq || out.From != in.From || out.To != in.To ||
		!out.SentAt.Equal(in.SentAt) || out.Payload.(testMsg) != in.Payload.(testMsg) {
		t.Fatalf("envelope round trip:\n got %+v\nwant %+v", out, in)
	}
	if _, err := wire.AppendPayload(nil, out.Payload); err != nil {
		t.Fatal(err)
	}
}
