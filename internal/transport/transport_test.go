package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"eunomia/internal/eunomia"
	"eunomia/internal/hlc"
	"eunomia/internal/types"
)

// startServer brings up a single-replica Eunomia service on loopback and
// returns its address plus the ship sink.
func startServer(t *testing.T, partitions int) (addr string, shipped *sink, cleanup func()) {
	t.Helper()
	s := &sink{}
	cluster := eunomia.NewCluster(1, eunomia.Config{
		Partitions:     partitions,
		StableInterval: time.Millisecond,
	}, s.ship)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, cluster.Replica(0))
	return srv.Addr().String(), s, func() {
		srv.Close()
		cluster.Stop()
	}
}

type sink struct {
	mu  sync.Mutex
	ops []*types.Update
}

func (s *sink) ship(_ types.ReplicaID, ops []*types.Update) {
	s.mu.Lock()
	s.ops = append(s.ops, ops...)
	s.mu.Unlock()
}

func (s *sink) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ops)
}

func (s *sink) snapshot() []*types.Update {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*types.Update(nil), s.ops...)
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("condition not reached within %v", timeout)
}

func TestRoundTripBatchAndHeartbeat(t *testing.T) {
	addr, shipped, cleanup := startServer(t, 1)
	defer cleanup()

	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	w, err := conn.NewBatch(0, []*types.Update{
		{Partition: 0, Seq: 1, TS: 10, Key: "a", Value: []byte("x")},
		{Partition: 0, Seq: 2, TS: 20, Key: "b"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if w != 20 {
		t.Fatalf("watermark = %v, want 20", w)
	}
	if err := conn.Heartbeat(0, 30); err != nil {
		t.Fatal(err)
	}
	if err := conn.Ping(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return shipped.len() == 2 })
	got := shipped.snapshot()
	if got[0].Key != "a" || string(got[0].Value) != "x" || got[1].Key != "b" {
		t.Fatalf("payloads corrupted over the wire: %v", got)
	}
}

// TestFullClientPipelineOverTCP runs the real partition-side batching
// client against a TCP-served replica: the complete §3 pipeline over an
// actual socket.
func TestFullClientPipelineOverTCP(t *testing.T) {
	const partitions = 3
	addr, shipped, cleanup := startServer(t, partitions)
	defer cleanup()

	clients := make([]*eunomia.Client, partitions)
	clocks := make([]*hlc.Clock, partitions)
	for i := range clients {
		conn, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		clocks[i] = hlc.NewClock(nil)
		clients[i] = eunomia.NewClient(eunomia.ClientConfig{
			Partition:     types.PartitionID(i),
			BatchInterval: time.Millisecond,
		}, []eunomia.Conn{conn}, clocks[i])
	}

	const per = 100
	var wg sync.WaitGroup
	for i := range clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for s := 1; s <= per; s++ {
				clients[i].Add(&types.Update{
					Partition: types.PartitionID(i), Seq: uint64(s), TS: clocks[i].Tick(0),
				})
			}
		}(i)
	}
	wg.Wait()
	waitFor(t, 10*time.Second, func() bool { return shipped.len() == partitions*per })
	for _, c := range clients {
		c.Close()
	}

	got := shipped.snapshot()
	for i := 1; i < len(got); i++ {
		if got[i].TS < got[i-1].TS {
			t.Fatalf("TCP pipeline broke timestamp order at %d", i)
		}
	}
}

func TestDuplicateDeliveryFiltered(t *testing.T) {
	addr, shipped, cleanup := startServer(t, 1)
	defer cleanup()
	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	batch := []*types.Update{{Partition: 0, Seq: 1, TS: 10}}
	for i := 0; i < 3; i++ { // at-least-once resend
		if _, err := conn.NewBatch(0, batch); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 2*time.Second, func() bool { return shipped.len() >= 1 })
	time.Sleep(20 * time.Millisecond)
	if shipped.len() != 1 {
		t.Fatalf("duplicates shipped: %d", shipped.len())
	}
}

func TestServerCloseFailsClients(t *testing.T) {
	addr, _, cleanup := startServer(t, 1)
	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Ping(); err != nil {
		t.Fatal(err)
	}
	cleanup()
	if err := conn.Ping(); err == nil {
		t.Fatal("Ping succeeded against a closed server")
	}
}

func TestStoppedReplicaErrorsPropagate(t *testing.T) {
	s := &sink{}
	cluster := eunomia.NewCluster(1, eunomia.Config{Partitions: 1}, s.ship)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, cluster.Replica(0))
	defer srv.Close()

	cluster.Replica(0).Stop()
	conn, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.NewBatch(0, nil); err == nil {
		t.Fatal("batch accepted by a stopped replica")
	}
}

func TestClientReconnects(t *testing.T) {
	addr, _, cleanup := startServer(t, 1)
	defer cleanup()
	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Ping(); err != nil {
		t.Fatal(err)
	}
	// Sever the socket underneath the client; the next call must
	// transparently reconnect.
	conn.mu.Lock()
	conn.sock.Close()
	conn.mu.Unlock()
	if err := conn.Ping(); err != nil {
		t.Fatalf("reconnect failed: %v", err)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("Dial to a dead port succeeded")
	}
}
