package transport

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"eunomia/internal/eunomia"
	"eunomia/internal/fabric"
	"eunomia/internal/hlc"
	"eunomia/internal/types"
	"eunomia/internal/wire"
)

type testMsg struct{ N int }

// WireTag implements wire.Marshaler.
func (m testMsg) WireTag() wire.Tag { return wire.TagTest }

// AppendWire implements wire.Marshaler.
func (m testMsg) AppendWire(b []byte) []byte { return wire.AppendUvarint(b, uint64(m.N)) }

func init() {
	fabric.RegisterPayload(testMsg{})
	wire.Register(wire.TagTest, func(d *wire.Dec) any { return testMsg{N: int(d.Uvarint())} })
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("condition not reached within %v", timeout)
}

func listen(t *testing.T, cfg Config) *TCP {
	t.Helper()
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	f, err := Listen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// collector gathers delivered payloads in arrival order.
type collector struct {
	mu   sync.Mutex
	msgs []fabric.Message
}

func (c *collector) handle(m fabric.Message) {
	c.mu.Lock()
	c.msgs = append(c.msgs, m)
	c.mu.Unlock()
}

func (c *collector) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

func (c *collector) snapshot() []fabric.Message {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]fabric.Message(nil), c.msgs...)
}

func TestFIFOAcrossSockets(t *testing.T) {
	server := listen(t, Config{})
	defer server.Close()
	dst := fabric.ReceiverAddr(1)
	col := &collector{}
	server.Register(dst, col.handle)

	client := listen(t, Config{Routes: map[fabric.Addr]string{dst: server.Addr().String()}})
	defer client.Close()

	src := fabric.PartitionAddr(0, 0)
	const n = 500
	for i := 0; i < n; i++ {
		client.Send(src, dst, testMsg{N: i})
	}
	waitFor(t, 5*time.Second, func() bool { return col.len() == n })
	for i, m := range col.snapshot() {
		if m.Payload.(testMsg).N != i {
			t.Fatalf("FIFO broken at %d: got %v", i, m.Payload)
		}
		if m.From != src || m.To != dst {
			t.Fatalf("addressing corrupted: %v→%v", m.From, m.To)
		}
	}
}

func TestLoopbackShortCircuit(t *testing.T) {
	f := listen(t, Config{})
	defer f.Close()
	dst := fabric.EunomiaAddr(0, 0)
	col := &collector{}
	f.Register(dst, col.handle)
	f.Send(fabric.PartitionAddr(0, 0), dst, testMsg{N: 7})
	waitFor(t, 2*time.Second, func() bool { return col.len() == 1 })
	if got := col.snapshot()[0].Payload.(testMsg).N; got != 7 {
		t.Fatalf("loopback payload = %d", got)
	}
}

func TestUnroutedSendsDrop(t *testing.T) {
	f := listen(t, Config{})
	defer f.Close()
	f.Send(fabric.PartitionAddr(0, 0), fabric.ReceiverAddr(9), testMsg{N: 1})
	if f.Dropped.Load() != 1 {
		t.Fatalf("Dropped = %d, want 1", f.Dropped.Load())
	}
}

// TestClientReconnectAfterServerRestart kills the serving fabric mid-stream
// and brings a fresh one up on the same port. The sender's unacknowledged
// window must be retransmitted on the new connection: every message is
// delivered (duplicates allowed — the restarted process lost its duplicate
// filter) and per-sender FIFO order is preserved.
func TestClientReconnectAfterServerRestart(t *testing.T) {
	server := listen(t, Config{})
	port := server.Addr().String()
	dst := fabric.ReceiverAddr(1)
	col := &collector{}
	server.Register(dst, col.handle)

	client := listen(t, Config{Routes: map[fabric.Addr]string{dst: port}})
	defer client.Close()
	src := fabric.PartitionAddr(0, 0)

	const n = 400
	half := n / 2
	for i := 0; i < half; i++ {
		client.Send(src, dst, testMsg{N: i})
	}
	waitFor(t, 5*time.Second, func() bool { return col.len() >= half/2 })

	// Hard restart: the old incarnation dies with frames possibly
	// delivered-but-unacknowledged; the new one starts with empty state.
	server.Close()
	server2 := listen(t, Config{Listen: port})
	defer server2.Close()
	server2.Register(dst, col.handle)

	for i := half; i < n; i++ {
		client.Send(src, dst, testMsg{N: i})
	}

	seen := func() map[int]bool {
		s := make(map[int]bool)
		for _, m := range col.snapshot() {
			s[m.Payload.(testMsg).N] = true
		}
		return s
	}
	waitFor(t, 10*time.Second, func() bool { return len(seen()) == n })

	// FIFO must survive the retransmission: the delivered sequence is
	// nondecreasing except for the replayed suffix, i.e. every message i
	// appears, and no message appears before a *later* first appearance
	// of a smaller one within one incarnation. The simple strong check:
	// first occurrences are in ascending order.
	first := make(map[int]int)
	for pos, m := range col.snapshot() {
		v := m.Payload.(testMsg).N
		if _, ok := first[v]; !ok {
			first[v] = pos
		}
	}
	for i := 1; i < n; i++ {
		if first[i] < first[i-1] {
			t.Fatalf("message %d first delivered before %d", i, i-1)
		}
	}
}

// startReplica serves a single-replica Eunomia service on a TCP fabric.
func startReplica(t *testing.T, partitions int) (*TCP, *eunomia.Cluster, *sink) {
	t.Helper()
	s := &sink{}
	cluster := eunomia.NewCluster(1, eunomia.Config{
		Partitions:     partitions,
		StableInterval: time.Millisecond,
	}, s.ship)
	f := listen(t, Config{})
	fabric.ServeReplica(f, fabric.EunomiaAddr(0, 0), cluster.Replica(0))
	return f, cluster, s
}

type sink struct {
	mu  sync.Mutex
	ops []*types.Update
}

func (s *sink) ship(_ types.ReplicaID, ops []*types.Update) {
	s.mu.Lock()
	s.ops = append(s.ops, ops...)
	s.mu.Unlock()
}

func (s *sink) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ops)
}

func (s *sink) snapshot() []*types.Update {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*types.Update(nil), s.ops...)
}

func dialReplica(t *testing.T, serverAddr string, mode fabric.ConnMode, p types.PartitionID) (*TCP, *fabric.ReplicaConn) {
	t.Helper()
	remote := fabric.EunomiaAddr(0, 0)
	client := listen(t, Config{Routes: map[fabric.Addr]string{remote: serverAddr}})
	local := fabric.PartitionAddr(0, p)
	conn := fabric.NewReplicaConn(client, local, remote, mode, 5*time.Second)
	client.Register(local, func(m fabric.Message) { conn.HandleMessage(m) })
	return client, conn
}

// TestDuplicateResendFilteredByWatermark resends the same batch several
// times — the at-least-once pattern a reconnecting client produces — and
// restarts the serving fabric in between; the replica must ingest each
// operation exactly once, filtering replays by partition watermark.
func TestDuplicateResendFilteredByWatermark(t *testing.T) {
	f, cluster, shipped := startReplica(t, 1)
	defer cluster.Stop()
	port := f.Addr().String()

	client, conn := dialReplica(t, port, fabric.SyncConn, 0)
	defer client.Close()

	batch := []*types.Update{
		{Partition: 0, Seq: 1, TS: 10, Key: "a", Value: []byte("x")},
		{Partition: 0, Seq: 2, TS: 20, Key: "b"},
	}
	for i := 0; i < 3; i++ { // at-least-once resend
		w, err := conn.NewBatch(0, batch)
		if err != nil {
			t.Fatal(err)
		}
		if w != 20 {
			t.Fatalf("watermark = %v, want 20", w)
		}
	}

	// Restart the serving fabric (same replica process state): the
	// client's retransmitted frames and further resends must still be
	// deduplicated by the watermark, not the transport.
	f.Close()
	f2 := listen(t, Config{Listen: port})
	defer f2.Close()
	fabric.ServeReplica(f2, fabric.EunomiaAddr(0, 0), cluster.Replica(0))

	for i := 0; i < 3; i++ {
		if _, err := conn.NewBatch(0, batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := conn.Heartbeat(0, 30); err != nil {
		t.Fatal(err)
	}

	waitFor(t, 5*time.Second, func() bool { return shipped.len() == 2 })
	time.Sleep(20 * time.Millisecond)
	if shipped.len() != 2 {
		t.Fatalf("duplicates shipped: %d ops", shipped.len())
	}
	st := cluster.Replica(0).Stats()
	if st.OpsReceived != 2 {
		t.Fatalf("OpsReceived = %d, want 2", st.OpsReceived)
	}
	if st.Duplicates == 0 {
		t.Fatal("resends were sent but none counted as duplicates")
	}
	got := shipped.snapshot()
	if got[0].Key != "a" || string(got[0].Value) != "x" || got[1].Key != "b" {
		t.Fatalf("payloads corrupted over the wire: %v", got)
	}
}

// TestPipelinedProtocolOrdering runs the real partition-side batching
// clients in pipelined mode — flushes stream without waiting for
// acknowledgements — and verifies the full §3 pipeline over actual
// sockets: every operation is ordered, exactly once, in timestamp order,
// and the asynchronous watermarks eventually drain the clients' windows.
func TestPipelinedProtocolOrdering(t *testing.T) {
	const partitions = 3
	f, cluster, shipped := startReplica(t, partitions)
	defer cluster.Stop()
	defer f.Close()

	clients := make([]*eunomia.Client, partitions)
	clocks := make([]*hlc.Clock, partitions)
	fabrics := make([]*TCP, partitions)
	for i := range clients {
		cf, conn := dialReplica(t, f.Addr().String(), fabric.PipelinedConn, types.PartitionID(i))
		fabrics[i] = cf
		defer cf.Close()
		clocks[i] = hlc.NewClock(nil)
		clients[i] = eunomia.NewClient(eunomia.ClientConfig{
			Partition:     types.PartitionID(i),
			BatchInterval: time.Millisecond,
		}, []eunomia.Conn{conn}, clocks[i])
	}

	const per = 100
	var wg sync.WaitGroup
	for i := range clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for s := 1; s <= per; s++ {
				clients[i].Add(&types.Update{
					Partition: types.PartitionID(i), Seq: uint64(s), TS: clocks[i].Tick(0),
				})
			}
		}(i)
	}
	wg.Wait()
	waitFor(t, 10*time.Second, func() bool { return shipped.len() == partitions*per })

	// Acks flow back asynchronously; the windows must fully drain.
	for _, c := range clients {
		c := c
		waitFor(t, 5*time.Second, func() bool { return c.Pending() == 0 })
		c.Close()
	}

	got := shipped.snapshot()
	if len(got) != partitions*per {
		t.Fatalf("shipped %d ops, want %d (duplicates or loss)", len(got), partitions*per)
	}
	for i := 1; i < len(got); i++ {
		if got[i].TS < got[i-1].TS {
			t.Fatalf("pipelined protocol broke timestamp order at %d", i)
		}
	}
}

// TestPipelinedFlushDoesNotWaitForServer stalls the replica handler and
// checks a pipelined NewBatch still returns immediately — the whole point
// of replacing the one-request-one-response protocol.
func TestPipelinedFlushDoesNotWaitForServer(t *testing.T) {
	server := listen(t, Config{})
	defer server.Close()
	remote := fabric.EunomiaAddr(0, 0)
	block := make(chan struct{})
	server.Register(remote, func(fabric.Message) { <-block })
	defer close(block)

	client, conn := dialReplica(t, server.Addr().String(), fabric.PipelinedConn, 0)
	defer client.Close()

	start := time.Now()
	for i := 0; i < 10; i++ {
		if _, err := conn.NewBatch(0, []*types.Update{{Partition: 0, Seq: uint64(i + 1), TS: hlc.Timestamp(i + 1)}}); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("pipelined sends blocked on the server for %v", elapsed)
	}
}

func TestStoppedReplicaErrorsPropagate(t *testing.T) {
	f, cluster, _ := startReplica(t, 1)
	defer f.Close()
	cluster.Replica(0).Stop()

	client, conn := dialReplica(t, f.Addr().String(), fabric.SyncConn, 0)
	defer client.Close()
	if _, err := conn.NewBatch(0, []*types.Update{{Partition: 0, Seq: 1, TS: 1}}); err == nil {
		t.Fatal("batch accepted by a stopped replica")
	}

	client2, conn2 := dialReplica(t, f.Addr().String(), fabric.PipelinedConn, 0)
	defer client2.Close()
	// First send can't know yet; the nack makes the failure sticky.
	_, _ = conn2.NewBatch(0, []*types.Update{{Partition: 0, Seq: 1, TS: 1}})
	waitFor(t, 5*time.Second, func() bool {
		_, err := conn2.NewBatch(0, nil)
		return err != nil
	})
}

func TestSyncConnAckTimeout(t *testing.T) {
	server := listen(t, Config{})
	defer server.Close()
	remote := fabric.EunomiaAddr(0, 0)
	server.Register(remote, func(fabric.Message) {}) // swallows, never acks

	client := listen(t, Config{Routes: map[fabric.Addr]string{remote: server.Addr().String()}})
	defer client.Close()
	local := fabric.PartitionAddr(0, 0)
	conn := fabric.NewReplicaConn(client, local, remote, fabric.SyncConn, 100*time.Millisecond)
	client.Register(local, func(m fabric.Message) { conn.HandleMessage(m) })

	if _, err := conn.NewBatch(0, nil); err == nil {
		t.Fatal("sync call against a mute endpoint did not time out")
	}
}

func TestDialFailureBuffersAndDrops(t *testing.T) {
	// A route to a dead port must not block Send (it buffers in the
	// window) and must not wedge Close.
	dst := fabric.ReceiverAddr(1)
	f := listen(t, Config{Routes: map[fabric.Addr]string{dst: "127.0.0.1:1"}, Window: 8})
	for i := 0; i < 8; i++ {
		f.Send(fabric.PartitionAddr(0, 0), dst, testMsg{N: i})
	}
	done := make(chan struct{})
	go func() { f.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close wedged on an undialable peer")
	}
}

// TestListenerAddr keeps the ":0" ergonomics working.
func TestListenerAddr(t *testing.T) {
	f := listen(t, Config{})
	defer f.Close()
	if _, ok := f.Addr().(*net.TCPAddr); !ok {
		t.Fatalf("Addr() = %T", f.Addr())
	}
	if fmt.Sprint(f.Addr()) == "" {
		t.Fatal("empty listen address")
	}
}

// TestPeerStatsCountersAdvance checks the peer-window counters exported
// for metrics: sends advance Sent, acknowledgements advance AckedCum and
// drain InFlight, and a server restart mid-stream produces a nonzero
// Retransmits count.
func TestPeerStatsCountersAdvance(t *testing.T) {
	server := listen(t, Config{})
	port := server.Addr().String()
	dst := fabric.ReceiverAddr(1)
	col := &collector{}
	server.Register(dst, col.handle)

	client := listen(t, Config{Routes: map[fabric.Addr]string{dst: port}})
	defer client.Close()
	src := fabric.PartitionAddr(0, 0)

	const n = 100
	for i := 0; i < n; i++ {
		client.Send(src, dst, testMsg{N: i})
	}
	waitFor(t, 5*time.Second, func() bool { return col.len() == n })
	waitFor(t, 5*time.Second, func() bool {
		stats := client.PeerStats()
		return len(stats) == 1 && stats[0].InFlight == 0 && stats[0].AckedCum == n
	})
	stats := client.PeerStats()
	if stats[0].Peer != port {
		t.Fatalf("peer label %q, want %q", stats[0].Peer, port)
	}
	if stats[0].Sent != n {
		t.Fatalf("Sent=%d, want %d", stats[0].Sent, n)
	}
	if stats[0].Retransmits != 0 {
		t.Fatalf("Retransmits=%d on a healthy stream, want 0", stats[0].Retransmits)
	}

	// Kill the server with frames in flight; the reconnect retransmits
	// the unacknowledged suffix and the counter must say so.
	server.Close()
	for i := n; i < 2*n; i++ {
		client.Send(src, dst, testMsg{N: i})
	}
	server2 := listen(t, Config{Listen: port})
	defer server2.Close()
	server2.Register(dst, col.handle)
	waitFor(t, 10*time.Second, func() bool {
		stats := client.PeerStats()
		return len(stats) == 1 && stats[0].InFlight == 0
	})
	if got := client.PeerStats()[0].Retransmits; got == 0 {
		t.Fatal("server restart mid-stream produced no counted retransmissions")
	}
}
