package transport

// The zero-reflection frame path: type-tagged wire frames (internal/wire)
// behind the same 4-byte length prefixes the gob path uses. The writer
// appends every frame of a flush batch into one pooled buffer and hands
// the whole batch to the socket in a single write; the reader parses
// frames in place out of its read buffer when they fit, so a steady-state
// frame round trip allocates only the decoded payload values. The
// first byte of every dialed connection announces the codec (wire or the
// gob ablation), so the accept side speaks whatever the dialer chose.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"

	"eunomia/internal/compress"
	"eunomia/internal/fabric"
	"eunomia/internal/metrics"
	"eunomia/internal/types"
	"eunomia/internal/wire"
)

// Codec magic: the first byte a dialer writes on a fresh connection. It
// announces the codec and, for wire-codec connections, the negotiated
// compression scheme — one byte carries the whole negotiation, so plain,
// compressed, and gob peers interoperate per connection. Gob has no
// compressed variants on purpose: compression is defined only on top of
// the wire record layout (see Config.Compress).
const (
	codecMagicWire       = 'W'
	codecMagicGob        = 'G'
	codecMagicWireSnappy = 'S'
	codecMagicWireZstd   = 'Z'
)

// magicFor returns the announcement byte for a dialed connection.
func magicFor(scheme compress.Scheme) byte {
	switch scheme {
	case compress.Snappy:
		return codecMagicWireSnappy
	case compress.Zstd:
		return codecMagicWireZstd
	}
	return codecMagicWire
}

// Record markers: on a compressed connection every length-prefixed
// record starts with one marker byte saying whether the body is a raw
// wire frame (below the size threshold, or compression didn't shrink
// it) or a compressed one.
const (
	recordRaw        = 0x00
	recordCompressed = 0x01
)

// compressCounters aggregates an endpoint's compression byte accounting
// (all connections merged): Raw is the bytes the records would occupy
// uncompressed (length prefixes included), Wire the bytes that actually
// crossed the socket. Raw/Wire is the endpoint's compression ratio; on
// uncompressed connections the two advance in lockstep, so bytes-on-wire
// per operation is measurable in every mode.
type compressCounters struct {
	txRaw, txWire, rxRaw, rxWire atomic.Int64
}

// frameEncoder writes frames to one connection; implementations are the
// wire writer below and the persistent-gob frameWriter (the ablation).
// release returns pooled resources on connection teardown; the encoder
// must not be used afterwards.
type frameEncoder interface {
	write(f *frame) error
	flush() error
	release()
}

// frameDecoder reads frames off one connection.
type frameDecoder interface {
	next(f *frame) error
	buffered() int
}

// codecStats aggregates the transport's serialization latency histograms
// (one set per TCP endpoint, all connections merged): frame encode cost,
// frame decode cost, and the socket flush. They feed the Prometheus
// endpoint (cmd/eunomia-server -metrics-addr).
type codecStats struct {
	enc   *metrics.Histogram
	dec   *metrics.Histogram
	flush *metrics.Histogram
}

func newCodecStats() *codecStats {
	return &codecStats{
		enc:   metrics.NewHistogram(),
		dec:   metrics.NewHistogram(),
		flush: metrics.NewHistogram(),
	}
}

// wireFlushChunk bounds the writer's accumulation buffer: a flush batch
// larger than this goes to the socket in more than one write rather than
// growing the buffer without bound.
const wireFlushChunk = 256 << 10

// wireFrameWriter encodes frames into one pooled append buffer and
// flushes it with a single socket write. With a compression scheme, each
// record gains a marker byte and bodies at or above minSize are
// compressed through an owned scratch buffer (kept raw when compression
// does not shrink them), so the steady-state flush path stays at most
// one allocation either way.
type wireFrameWriter struct {
	conn    net.Conn
	buf     []byte
	max     int
	stats   *codecStats
	scheme  compress.Scheme
	minSize int
	scratch []byte // compressed-output scratch, reused across frames
	comp    *compressCounters
}

func newWireFrameWriter(conn net.Conn, maxFrame int, stats *codecStats, withMagic bool,
	scheme compress.Scheme, minSize int, comp *compressCounters) *wireFrameWriter {
	fw := &wireFrameWriter{conn: conn, buf: wire.GetBuf(), max: maxFrame, stats: stats,
		scheme: scheme, minSize: minSize, comp: comp}
	if withMagic {
		fw.buf = append(fw.buf, magicFor(scheme))
	}
	return fw
}

func (fw *wireFrameWriter) write(f *frame) error {
	start := time.Now()
	// Reserve the length prefix (plus the record marker on compressed
	// connections), append the frame, backfill the length: no scratch
	// buffer, no copy on the raw path.
	base := len(fw.buf)
	if fw.scheme == compress.Off {
		fw.buf = append(fw.buf, 0, 0, 0, 0)
	} else {
		fw.buf = append(fw.buf, 0, 0, 0, 0, recordRaw)
	}
	hdr := len(fw.buf) - base
	body, err := appendFrame(fw.buf, f)
	if err != nil {
		// Unserializable payload: permanent, the caller discards the
		// frame. The buffer rolls back so the stream stays intact.
		fw.buf = fw.buf[:base]
		return &encodeError{err}
	}
	fw.buf = body
	n := len(fw.buf) - base - hdr
	if n > fw.max {
		fw.buf = fw.buf[:base]
		return &encodeError{fmt.Errorf("frame length %d exceeds max %d", n, fw.max)}
	}
	if fw.scheme != compress.Off && n >= fw.minSize {
		// Compress the encoded body; keep the raw bytes when the codec
		// fails to shrink them (incompressible payloads must not grow).
		fw.scratch = compress.Compress(fw.scheme, fw.scratch[:0], fw.buf[base+hdr:])
		if len(fw.scratch) < n {
			fw.buf = append(fw.buf[:base+hdr], fw.scratch...)
			fw.buf[base+4] = recordCompressed
		}
	}
	rec := len(fw.buf) - base - 4
	binary.BigEndian.PutUint32(fw.buf[base:], uint32(rec))
	if fw.comp != nil {
		fw.comp.txRaw.Add(int64(n + 4))
		fw.comp.txWire.Add(int64(rec + 4))
	}
	if fw.stats != nil {
		fw.stats.enc.RecordDuration(time.Since(start))
	}
	if len(fw.buf) >= wireFlushChunk {
		return fw.flush()
	}
	return nil
}

func (fw *wireFrameWriter) flush() error {
	if len(fw.buf) == 0 {
		return nil
	}
	start := time.Now()
	_, err := fw.conn.Write(fw.buf)
	if fw.stats != nil {
		fw.stats.flush.RecordDuration(time.Since(start))
	}
	if cap(fw.buf) > wireFlushChunk*2 {
		// One oversized frame must not pin its worst case; swap the
		// buffer back to a pooled one.
		wire.PutBuf(fw.buf)
		fw.buf = wire.GetBuf()
	} else {
		fw.buf = fw.buf[:0]
	}
	if cap(fw.scratch) > wireFlushChunk*2 {
		// Same policy for the compression scratch.
		fw.scratch = nil
	}
	return err
}

// release implements frameEncoder: the accumulation buffer goes back to
// the pool when the connection dies, so reconnect churn reuses buffers
// instead of draining the pool into the garbage collector.
func (fw *wireFrameWriter) release() {
	wire.PutBuf(fw.buf)
	fw.buf = nil
}

// wireFrameReader parses length-prefixed wire frames, in place from the
// read buffer when a frame fits, via a pooled spill buffer when not. On
// compressed connections, compressed record bodies are inflated into an
// owned scratch buffer reused across frames; a record that fails to
// decompress is a torn connection, exactly like a corrupt envelope.
type wireFrameReader struct {
	r       *bufio.Reader
	max     int
	spill   []byte
	stats   *codecStats
	scheme  compress.Scheme
	scratch []byte
	comp    *compressCounters
}

func newWireFrameReader(conn net.Conn, maxFrame int, stats *codecStats,
	scheme compress.Scheme, comp *compressCounters) *wireFrameReader {
	return &wireFrameReader{r: bufio.NewReaderSize(conn, 64<<10), max: maxFrame, stats: stats,
		scheme: scheme, comp: comp}
}

func (fr *wireFrameReader) next(f *frame) error {
	var hdr [4]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		return err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	limit := fr.max
	if fr.scheme != compress.Off {
		limit++ // the record marker byte rides outside the frame budget
	}
	if n <= 0 || n > limit {
		return fmt.Errorf("transport: frame length %d out of range (max %d)", n, fr.max)
	}
	var body []byte
	inPlace := n <= fr.r.Size()
	if inPlace {
		// The frame fits the read buffer: parse it where it lies. The
		// decoders copy whatever the payload retains, so discarding after
		// the parse is safe.
		b, err := fr.r.Peek(n)
		if err != nil {
			return err
		}
		body = b
	} else {
		// Spill buffer for frames beyond the read buffer: owned by this
		// reader and reused across frames, so the shared pool (sized for
		// typical frames) stays out of it.
		if cap(fr.spill) < n {
			fr.spill = make([]byte, n)
		}
		fr.spill = fr.spill[:n]
		if _, err := io.ReadFull(fr.r, fr.spill); err != nil {
			return err
		}
		body = fr.spill
	}
	start := time.Now()
	var err error
	var raw int
	fr.scratch, raw, err = decodeWireRecord(fr.scheme, body, fr.scratch, fr.max, f)
	f.wireBytes = n + 4
	if fr.comp != nil {
		fr.comp.rxWire.Add(int64(n + 4))
		fr.comp.rxRaw.Add(int64(raw + 4))
	}
	if fr.stats != nil {
		fr.stats.dec.RecordDuration(time.Since(start))
	}
	if inPlace {
		if _, derr := fr.r.Discard(n); derr != nil && err == nil {
			err = derr
		}
	}
	return err
}

func (fr *wireFrameReader) buffered() int { return fr.r.Buffered() }

// decodeWireRecord parses one length-stripped record as read off a
// wire-codec connection negotiated with the given scheme. For compress.Off
// the record is the frame body itself; otherwise a marker byte selects a
// raw or compressed body, the latter inflating through scratch (returned
// for reuse). raw is the decoded frame-body size — what the record would
// have cost uncompressed. Corrupt markers, truncated or tampered
// compressed payloads, and dishonest decoded lengths all error, never
// panic: the connection owner tears the socket down as after any other
// framing error.
func decodeWireRecord(scheme compress.Scheme, body, scratch []byte, maxFrame int, f *frame) ([]byte, int, error) {
	if scheme == compress.Off {
		return scratch, len(body), decodeFrame(body, f)
	}
	if len(body) < 1 {
		return scratch, 0, fmt.Errorf("transport: empty record")
	}
	switch body[0] {
	case recordRaw:
		return scratch, len(body) - 1, decodeFrame(body[1:], f)
	case recordCompressed:
		var err error
		scratch, err = compress.Decompress(scheme, scratch[:0], body[1:])
		if err != nil {
			return scratch, 0, fmt.Errorf("transport: frame decompress: %w", err)
		}
		if len(scratch) > maxFrame {
			return scratch, 0, fmt.Errorf("transport: decompressed frame length %d exceeds max %d", len(scratch), maxFrame)
		}
		return scratch, len(scratch), decodeFrame(scratch, f)
	default:
		return scratch, 0, fmt.Errorf("transport: unknown record marker %#x", body[0])
	}
}

// appendFrame encodes one frame envelope (and, for data frames, its
// type-tagged payload) after the length prefix the writer manages.
func appendFrame(b []byte, f *frame) ([]byte, error) {
	b = append(b, byte(f.Kind))
	switch f.Kind {
	case frameHello:
		b = wire.AppendString(b, f.Process)
		b = wire.AppendString(b, f.Advertise)
		return b, nil
	case frameAck:
		return wire.AppendUvarint(b, f.Ack), nil
	case frameData:
		b = wire.AppendUvarint(b, f.Seq)
		b = appendAddr(b, f.From)
		b = appendAddr(b, f.To)
		b = wire.AppendUint64(b, uint64(f.SentAt.UnixNano()))
		return wire.AppendPayload(b, f.Payload)
	}
	return b, fmt.Errorf("transport: unknown frame kind %d", f.Kind)
}

// decodeFrame parses one frame body. Corrupt envelopes and payloads
// error (never panic); the connection owner tears the socket down and
// the window protocol retransmits, exactly as after a socket error.
func decodeFrame(body []byte, f *frame) error {
	*f = frame{}
	d := wire.NewDec(body)
	f.Kind = int8(d.Byte())
	switch f.Kind {
	case frameHello:
		f.Process = d.String()
		f.Advertise = d.String()
	case frameAck:
		f.Ack = d.Uvarint()
	case frameData:
		f.Seq = d.Uvarint()
		f.From = readAddr(&d)
		f.To = readAddr(&d)
		f.SentAt = time.Unix(0, int64(d.Uint64()))
		if d.Err() == nil {
			p, err := wire.ReadPayload(&d)
			if err != nil {
				return fmt.Errorf("transport: %w", err)
			}
			f.Payload = p
		}
	default:
		return fmt.Errorf("transport: unknown frame kind %d", f.Kind)
	}
	if err := d.Expect(); err != nil {
		return fmt.Errorf("transport: frame: %w", err)
	}
	return nil
}

func appendAddr(b []byte, a fabric.Addr) []byte {
	b = wire.AppendUvarint(b, uint64(a.DC))
	return wire.AppendString(b, a.Name)
}

func readAddr(d *wire.Dec) fabric.Addr {
	return fabric.Addr{DC: types.DCID(d.Uvarint()), Name: d.String()}
}
