package transport

// The zero-reflection frame path: type-tagged wire frames (internal/wire)
// behind the same 4-byte length prefixes the gob path uses. The writer
// appends every frame of a flush batch into one pooled buffer and hands
// the whole batch to the socket in a single write; the reader parses
// frames in place out of its read buffer when they fit, so a steady-state
// frame round trip allocates only the decoded payload values. The
// first byte of every dialed connection announces the codec (wire or the
// gob ablation), so the accept side speaks whatever the dialer chose.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"

	"eunomia/internal/fabric"
	"eunomia/internal/metrics"
	"eunomia/internal/types"
	"eunomia/internal/wire"
)

// Codec magic: the first byte a dialer writes on a fresh connection.
const (
	codecMagicWire = 'W'
	codecMagicGob  = 'G'
)

// frameEncoder writes frames to one connection; implementations are the
// wire writer below and the persistent-gob frameWriter (the ablation).
// release returns pooled resources on connection teardown; the encoder
// must not be used afterwards.
type frameEncoder interface {
	write(f *frame) error
	flush() error
	release()
}

// frameDecoder reads frames off one connection.
type frameDecoder interface {
	next(f *frame) error
	buffered() int
}

// codecStats aggregates the transport's serialization latency histograms
// (one set per TCP endpoint, all connections merged): frame encode cost,
// frame decode cost, and the socket flush. They feed the Prometheus
// endpoint (cmd/eunomia-server -metrics-addr).
type codecStats struct {
	enc   *metrics.Histogram
	dec   *metrics.Histogram
	flush *metrics.Histogram
}

func newCodecStats() *codecStats {
	return &codecStats{
		enc:   metrics.NewHistogram(),
		dec:   metrics.NewHistogram(),
		flush: metrics.NewHistogram(),
	}
}

// wireFlushChunk bounds the writer's accumulation buffer: a flush batch
// larger than this goes to the socket in more than one write rather than
// growing the buffer without bound.
const wireFlushChunk = 256 << 10

// wireFrameWriter encodes frames into one pooled append buffer and
// flushes it with a single socket write.
type wireFrameWriter struct {
	conn  net.Conn
	buf   []byte
	max   int
	stats *codecStats
}

func newWireFrameWriter(conn net.Conn, maxFrame int, stats *codecStats, withMagic bool) *wireFrameWriter {
	fw := &wireFrameWriter{conn: conn, buf: wire.GetBuf(), max: maxFrame, stats: stats}
	if withMagic {
		fw.buf = append(fw.buf, codecMagicWire)
	}
	return fw
}

func (fw *wireFrameWriter) write(f *frame) error {
	start := time.Now()
	// Reserve the length prefix, append the frame, backfill the length:
	// no scratch buffer, no copy.
	base := len(fw.buf)
	fw.buf = append(fw.buf, 0, 0, 0, 0)
	body, err := appendFrame(fw.buf, f)
	if err != nil {
		// Unserializable payload: permanent, the caller discards the
		// frame. The buffer rolls back so the stream stays intact.
		fw.buf = fw.buf[:base]
		return &encodeError{err}
	}
	fw.buf = body
	n := len(fw.buf) - base - 4
	if n > fw.max {
		fw.buf = fw.buf[:base]
		return &encodeError{fmt.Errorf("frame length %d exceeds max %d", n, fw.max)}
	}
	binary.BigEndian.PutUint32(fw.buf[base:], uint32(n))
	if fw.stats != nil {
		fw.stats.enc.RecordDuration(time.Since(start))
	}
	if len(fw.buf) >= wireFlushChunk {
		return fw.flush()
	}
	return nil
}

func (fw *wireFrameWriter) flush() error {
	if len(fw.buf) == 0 {
		return nil
	}
	start := time.Now()
	_, err := fw.conn.Write(fw.buf)
	if fw.stats != nil {
		fw.stats.flush.RecordDuration(time.Since(start))
	}
	if cap(fw.buf) > wireFlushChunk*2 {
		// One oversized frame must not pin its worst case; swap the
		// buffer back to a pooled one.
		wire.PutBuf(fw.buf)
		fw.buf = wire.GetBuf()
	} else {
		fw.buf = fw.buf[:0]
	}
	return err
}

// release implements frameEncoder: the accumulation buffer goes back to
// the pool when the connection dies, so reconnect churn reuses buffers
// instead of draining the pool into the garbage collector.
func (fw *wireFrameWriter) release() {
	wire.PutBuf(fw.buf)
	fw.buf = nil
}

// wireFrameReader parses length-prefixed wire frames, in place from the
// read buffer when a frame fits, via a pooled spill buffer when not.
type wireFrameReader struct {
	r     *bufio.Reader
	max   int
	spill []byte
	stats *codecStats
}

func newWireFrameReader(conn net.Conn, maxFrame int, stats *codecStats) *wireFrameReader {
	return &wireFrameReader{r: bufio.NewReaderSize(conn, 64<<10), max: maxFrame, stats: stats}
}

func (fr *wireFrameReader) next(f *frame) error {
	var hdr [4]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		return err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n <= 0 || n > fr.max {
		return fmt.Errorf("transport: frame length %d out of range (max %d)", n, fr.max)
	}
	var body []byte
	inPlace := n <= fr.r.Size()
	if inPlace {
		// The frame fits the read buffer: parse it where it lies. The
		// decoders copy whatever the payload retains, so discarding after
		// the parse is safe.
		b, err := fr.r.Peek(n)
		if err != nil {
			return err
		}
		body = b
	} else {
		// Spill buffer for frames beyond the read buffer: owned by this
		// reader and reused across frames, so the shared pool (sized for
		// typical frames) stays out of it.
		if cap(fr.spill) < n {
			fr.spill = make([]byte, n)
		}
		fr.spill = fr.spill[:n]
		if _, err := io.ReadFull(fr.r, fr.spill); err != nil {
			return err
		}
		body = fr.spill
	}
	start := time.Now()
	err := decodeFrame(body, f)
	if fr.stats != nil {
		fr.stats.dec.RecordDuration(time.Since(start))
	}
	if inPlace {
		if _, derr := fr.r.Discard(n); derr != nil && err == nil {
			err = derr
		}
	}
	return err
}

func (fr *wireFrameReader) buffered() int { return fr.r.Buffered() }

// appendFrame encodes one frame envelope (and, for data frames, its
// type-tagged payload) after the length prefix the writer manages.
func appendFrame(b []byte, f *frame) ([]byte, error) {
	b = append(b, byte(f.Kind))
	switch f.Kind {
	case frameHello:
		b = wire.AppendString(b, f.Process)
		b = wire.AppendString(b, f.Advertise)
		return b, nil
	case frameAck:
		return wire.AppendUvarint(b, f.Ack), nil
	case frameData:
		b = wire.AppendUvarint(b, f.Seq)
		b = appendAddr(b, f.From)
		b = appendAddr(b, f.To)
		b = wire.AppendUint64(b, uint64(f.SentAt.UnixNano()))
		return wire.AppendPayload(b, f.Payload)
	}
	return b, fmt.Errorf("transport: unknown frame kind %d", f.Kind)
}

// decodeFrame parses one frame body. Corrupt envelopes and payloads
// error (never panic); the connection owner tears the socket down and
// the window protocol retransmits, exactly as after a socket error.
func decodeFrame(body []byte, f *frame) error {
	*f = frame{}
	d := wire.NewDec(body)
	f.Kind = int8(d.Byte())
	switch f.Kind {
	case frameHello:
		f.Process = d.String()
		f.Advertise = d.String()
	case frameAck:
		f.Ack = d.Uvarint()
	case frameData:
		f.Seq = d.Uvarint()
		f.From = readAddr(&d)
		f.To = readAddr(&d)
		f.SentAt = time.Unix(0, int64(d.Uint64()))
		if d.Err() == nil {
			p, err := wire.ReadPayload(&d)
			if err != nil {
				return fmt.Errorf("transport: %w", err)
			}
			f.Payload = p
		}
	default:
		return fmt.Errorf("transport: unknown frame kind %d", f.Kind)
	}
	if err := d.Expect(); err != nil {
		return fmt.Errorf("transport: frame: %w", err)
	}
	return nil
}

func appendAddr(b []byte, a fabric.Addr) []byte {
	b = wire.AppendUvarint(b, uint64(a.DC))
	return wire.AppendString(b, a.Name)
}

func readAddr(d *wire.Dec) fabric.Addr {
	return fabric.Addr{DC: types.DCID(d.Uvarint()), Name: d.String()}
}
