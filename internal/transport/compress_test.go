package transport

// Compression negotiation tests: the one-byte announcement must keep
// every dialer/listener combination interoperable — wire-off, snappy,
// and zstd dialers against compress-enabled and plain listeners, and the
// gob ablation falling back loudly but safely when it dials a
// compress-enabled endpoint. Plus the byte accounting the WAN benchmarks
// ride on and the allocation guard for the compressed flush path.

import (
	"encoding/binary"
	"net"
	"strings"
	"testing"
	"time"

	"eunomia/internal/compress"
	"eunomia/internal/fabric"
	"eunomia/internal/hlc"
	"eunomia/internal/types"
	"eunomia/internal/wire"
)

// compressibleBatch is a protocol-shaped payload big enough to clear the
// default compression threshold: the self-similar metadata batches the
// aggregator tree ships are exactly what the codecs feast on.
func compressibleBatch(n int) fabric.BatchMsg {
	ops := make([]*types.Update, n)
	for i := range ops {
		ops[i] = &types.Update{
			Partition: 3, Seq: uint64(i + 1),
			TS: hlc.Timestamp(1753900000000000+i) << 16,
		}
	}
	return fabric.BatchMsg{ID: 1, Partition: 3, Ops: ops}
}

// TestCompressionMatrixInteroperates runs every dialer scheme (wire
// uncompressed, snappy, zstd, and the gob ablation) against listeners
// configured with and without compression: the dialer's announcement
// byte decides each connection, so all sixteen combinations must deliver
// everything intact.
func TestCompressionMatrixInteroperates(t *testing.T) {
	listenerCfgs := []struct {
		name string
		cfg  Config
	}{
		{"wire-off", Config{}},
		{"wire-zstd", Config{Compress: compress.Zstd}},
		{"gob-off", Config{Codec: fabric.CodecGob}},
		{"gob-zstd-misconfig", Config{Codec: fabric.CodecGob, Compress: compress.Zstd}},
	}
	dialerCfgs := []struct {
		name string
		cfg  Config
	}{
		{"wire-off", Config{}},
		{"wire-snappy", Config{Compress: compress.Snappy, CompressMin: -1}},
		{"wire-zstd", Config{Compress: compress.Zstd, CompressMin: -1}},
		{"gob", Config{Codec: fabric.CodecGob}},
	}
	for _, lc := range listenerCfgs {
		for _, dc := range dialerCfgs {
			t.Run(lc.name+"/"+dc.name, func(t *testing.T) {
				server := listen(t, lc.cfg)
				defer server.Close()
				dst := fabric.ReceiverAddr(1)
				col := &collector{}
				server.Register(dst, col.handle)

				cfg := dc.cfg
				cfg.Routes = map[fabric.Addr]string{dst: server.Addr().String()}
				client := listen(t, cfg)
				defer client.Close()

				src := fabric.PartitionAddr(0, 0)
				want := compressibleBatch(64)
				const n = 20
				for i := 0; i < n; i++ {
					client.Send(src, dst, testMsg{N: i})
					client.Send(src, dst, want)
				}
				waitFor(t, 5*time.Second, func() bool { return col.len() == 2*n })
				msgs := col.snapshot()
				for i := 0; i < n; i++ {
					if got := msgs[2*i].Payload.(testMsg).N; got != i {
						t.Fatalf("FIFO broken at %d: got %d", i, got)
					}
					batch := msgs[2*i+1].Payload.(fabric.BatchMsg)
					if len(batch.Ops) != len(want.Ops) || batch.Ops[7].Seq != want.Ops[7].Seq ||
						batch.Ops[7].TS != want.Ops[7].TS {
						t.Fatalf("batch %d corrupted across %s→%s", i, dc.name, lc.name)
					}
				}
			})
		}
	}
}

// TestGobDialerUncountedOnCompressedListener pins the fallback contract:
// a gob peer dialing a compress-enabled listener gets a plain gob
// stream — never a mis-framed one — and its traffic stays out of the
// compression byte counters, which are defined on wire records only.
func TestGobDialerUncountedOnCompressedListener(t *testing.T) {
	server := listen(t, Config{Compress: compress.Zstd})
	defer server.Close()
	dst := fabric.ReceiverAddr(1)
	col := &collector{}
	server.Register(dst, col.handle)

	client := listen(t, Config{Codec: fabric.CodecGob,
		Routes: map[fabric.Addr]string{dst: server.Addr().String()}})
	defer client.Close()

	const n = 16
	for i := 0; i < n; i++ {
		client.Send(fabric.PartitionAddr(0, 0), dst, compressibleBatch(64))
	}
	waitFor(t, 5*time.Second, func() bool { return col.len() == n })
	if st := server.CompressStats(); st.RxRaw != 0 || st.RxWire != 0 {
		t.Fatalf("gob connection advanced wire byte counters: %+v", st)
	}
	if st := client.CompressStats(); st.TxRaw != 0 || st.TxWire != 0 {
		t.Fatalf("gob dialer advanced wire byte counters: %+v", st)
	}
}

// TestCompressStatsCounters pins the byte accounting end to end: the
// sender's pre/post-compress counters show a real reduction on
// compressible traffic, the receiver's mirror them, and an uncompressed
// connection advances both sides in lockstep (so bytes-on-wire is
// measurable in every mode).
func TestCompressStatsCounters(t *testing.T) {
	for _, scheme := range []compress.Scheme{compress.Off, compress.Snappy, compress.Zstd} {
		t.Run(scheme.String(), func(t *testing.T) {
			server := listen(t, Config{})
			defer server.Close()
			dst := fabric.ReceiverAddr(1)
			col := &collector{}
			server.Register(dst, col.handle)

			client := listen(t, Config{Compress: scheme,
				Routes: map[fabric.Addr]string{dst: server.Addr().String()}})
			defer client.Close()

			const n = 32
			for i := 0; i < n; i++ {
				client.Send(fabric.PartitionAddr(0, 0), dst, compressibleBatch(128))
			}
			waitFor(t, 5*time.Second, func() bool { return col.len() == n })

			tx := client.CompressStats()
			if tx.TxRaw == 0 || tx.TxWire == 0 {
				t.Fatalf("tx counters did not advance: %+v", tx)
			}
			switch scheme {
			case compress.Off:
				if tx.TxRaw != tx.TxWire {
					t.Fatalf("uncompressed connection: raw %d != wire %d", tx.TxRaw, tx.TxWire)
				}
			default:
				if ratio := float64(tx.TxRaw) / float64(tx.TxWire); ratio < 2 {
					t.Fatalf("%v compressed %d raw bytes to %d on wire (ratio %.2f), want >= 2x",
						scheme, tx.TxRaw, tx.TxWire, ratio)
				}
			}
			// The receive side accounts the same records. Acks flow the
			// other way on the same connection, so compare only the
			// client→server direction.
			waitFor(t, 5*time.Second, func() bool {
				rx := server.CompressStats()
				return rx.RxWire >= tx.TxWire-8 && rx.RxRaw >= tx.TxRaw-8
			})
		})
	}
}

// TestCompressMinThreshold pins the size gate: frames below CompressMin
// (heartbeats, acks) ship raw even on a compressed connection, so the
// latency-critical small-frame path never pays a codec.
func TestCompressMinThreshold(t *testing.T) {
	server := listen(t, Config{})
	defer server.Close()
	dst := fabric.ReceiverAddr(1)
	col := &collector{}
	server.Register(dst, col.handle)

	client := listen(t, Config{Compress: compress.Snappy, CompressMin: 1 << 20,
		Routes: map[fabric.Addr]string{dst: server.Addr().String()}})
	defer client.Close()

	const n = 16
	for i := 0; i < n; i++ {
		client.Send(fabric.PartitionAddr(0, 0), dst, compressibleBatch(128))
	}
	waitFor(t, 5*time.Second, func() bool { return col.len() == n })
	tx := client.CompressStats()
	// Every record stayed raw: wire bytes exceed raw bytes by exactly the
	// one marker byte per record — any compression of a 128-update batch
	// would save far more than that.
	if tx.TxWire < tx.TxRaw || tx.TxWire > tx.TxRaw+64 {
		t.Fatalf("sub-threshold frames were compressed: raw %d wire %d", tx.TxRaw, tx.TxWire)
	}
}

// TestCorruptCompressedRecordClosesConnection mirrors
// TestCorruptWireFrameClosesConnection for the compressed framing: a
// record whose compressed body is garbage must tear the connection down,
// never deliver, never panic.
func TestCorruptCompressedRecordClosesConnection(t *testing.T) {
	server := listen(t, Config{})
	defer server.Close()
	dst := fabric.ReceiverAddr(1)
	col := &collector{}
	server.Register(dst, col.handle)

	conn, err := net.Dial("tcp", server.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var buf []byte
	buf = append(buf, codecMagicWireSnappy)
	hello := []byte{recordRaw, byte(frameHello)}
	hello = wire.AppendString(hello, "evil-proc")
	hello = wire.AppendString(hello, "")
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(hello)))
	buf = append(buf, hello...)
	// A compressed record whose body is not valid snappy.
	junk := []byte{recordCompressed, 0xde, 0xad, 0xbe, 0xef, 0xff, 0xff}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(junk)))
	buf = append(buf, junk...)
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}

	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	one := make([]byte, 1)
	if _, err := conn.Read(one); err == nil {
		// An ack may arrive first; the close must still follow.
		if _, err = conn.Read(one); err == nil {
			t.Fatal("connection stayed open after a corrupt compressed record")
		}
	}
	if col.len() != 0 {
		t.Fatalf("corrupt record was delivered: %v", col.snapshot())
	}
}

// TestListenRejectsUnknownScheme pins fail-fast configuration: an
// out-of-range compression scheme is a Listen-time error, not a
// mis-framed stream discovered in production.
func TestListenRejectsUnknownScheme(t *testing.T) {
	_, err := Listen(Config{Listen: "127.0.0.1:0", Compress: compress.Scheme(99)})
	if err == nil || !strings.Contains(err.Error(), "compress") {
		t.Fatalf("Listen accepted an unknown compression scheme (err=%v)", err)
	}
}

// discardConn is a net.Conn that swallows writes — the allocation guard
// below measures the encoder, not the kernel.
type discardConn struct{ net.Conn }

func (discardConn) Write(b []byte) (int, error) { return len(b), nil }
func (discardConn) Close() error                { return nil }
func (discardConn) SetDeadline(time.Time) error { return nil }
func (discardConn) LocalAddr() net.Addr         { return nil }
func (discardConn) RemoteAddr() net.Addr        { return nil }

// TestCompressedFlushAllocs pins the steady-state compressed write+flush
// path at no more than one allocation per frame, same budget as the
// uncompressed hot path: the record marker, compression scratch, and
// accumulation buffer are all reused across flushes.
func TestCompressedFlushAllocs(t *testing.T) {
	batch := compressibleBatch(256)
	for _, scheme := range []compress.Scheme{compress.Snappy, compress.Zstd} {
		t.Run(scheme.String(), func(t *testing.T) {
			fw := newWireFrameWriter(discardConn{}, 64<<20, nil, false, scheme, 0, &compressCounters{})
			f := &frame{
				Kind: frameData, Seq: 1,
				From: fabric.PartitionAddr(0, 3), To: fabric.AggregatorAddr(0, 0),
				SentAt: time.Unix(0, 1753900000000000000), Payload: batch,
			}
			// Warm the buffers (first write grows buf and scratch).
			for i := 0; i < 4; i++ {
				f.Seq++
				if err := fw.write(f); err != nil {
					t.Fatal(err)
				}
				if err := fw.flush(); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(100, func() {
				f.Seq++
				if err := fw.write(f); err != nil {
					t.Fatal(err)
				}
				if err := fw.flush(); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 1 {
				t.Fatalf("compressed write+flush allocates %.1f times per frame, budget 1", allocs)
			}
		})
	}
}
