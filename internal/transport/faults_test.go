package transport

// Fault-point tests for the transport weave (internal/faults): inbound
// cross-DC frames consult the injector for drop/dup/corrupt/delay and
// partition cuts, dials consult the blackhole, and the conn-reset event
// breaks live connections that peers then redial.

import (
	"testing"
	"time"

	"eunomia/internal/fabric"
	"eunomia/internal/faults"
)

// faultPair builds a cross-DC sender→receiver pair with the injector
// armed on the receiving endpoint.
func faultPair(t *testing.T, inj *faults.Injector) (client, server *TCP, src, dst fabric.Addr, col *collector) {
	t.Helper()
	server = listen(t, Config{Faults: inj})
	t.Cleanup(server.Close)
	dst = fabric.ReceiverAddr(0)
	col = &collector{}
	server.Register(dst, col.handle)
	client = listen(t, Config{Routes: map[fabric.Addr]string{dst: server.Addr().String()}})
	t.Cleanup(client.Close)
	src = fabric.PartitionAddr(1, 0) // dc1 → dc0: cross-DC, so faults apply
	return
}

func TestFaultFrameDropIsFabricLoss(t *testing.T) {
	inj := faults.NewInjector(1)
	client, server, src, dst, col := faultPair(t, inj)
	inj.SetFrames(faults.FrameFaults{Drop: 1.0})

	const n = 50
	for i := 0; i < n; i++ {
		client.Send(src, dst, testMsg{N: i})
	}
	// Every frame is acknowledged (the client's window drains) yet none
	// is dispatched: loss at the fabric layer, like a simnet SetDrop.
	waitFor(t, 5*time.Second, func() bool {
		for _, st := range client.PeerStats() {
			if st.AckedCum >= n {
				return true
			}
		}
		return false
	})
	if got := col.len(); got != 0 {
		t.Fatalf("dropped frames dispatched: %d", got)
	}
	if got := server.Dropped.Load(); got != n {
		t.Fatalf("server Dropped = %d, want %d", got, n)
	}

	// Heal and verify the link carries frames again.
	inj.Heal()
	client.Send(src, dst, testMsg{N: 99})
	waitFor(t, 5*time.Second, func() bool { return col.len() == 1 })
}

func TestFaultFrameDuplicate(t *testing.T) {
	inj := faults.NewInjector(1)
	client, _, src, dst, col := faultPair(t, inj)
	inj.SetFrames(faults.FrameFaults{Dup: 1.0})

	const n = 20
	for i := 0; i < n; i++ {
		client.Send(src, dst, testMsg{N: i})
	}
	waitFor(t, 5*time.Second, func() bool { return col.len() == 2*n })
	// Each frame dispatched exactly twice, FIFO preserved per original.
	msgs := col.snapshot()
	for i := 0; i < n; i++ {
		a, b := msgs[2*i].Payload.(testMsg).N, msgs[2*i+1].Payload.(testMsg).N
		if a != i || b != i {
			t.Fatalf("frame %d duplicated wrong: got %d,%d", i, a, b)
		}
	}
}

func TestFaultFrameCorruptResetsConnButDelivers(t *testing.T) {
	inj := faults.NewInjector(7)
	client, _, src, dst, col := faultPair(t, inj)
	// 30% corruption: connections tear down mid-stream over and over;
	// reconnect retransmission must still deliver everything in order,
	// with no duplicates (the receiver's seq watermark survives resets).
	inj.SetFrames(faults.FrameFaults{Corrupt: 0.3})

	const n = 200
	for i := 0; i < n; i++ {
		client.Send(src, dst, testMsg{N: i})
	}
	waitFor(t, 30*time.Second, func() bool { return col.len() == n })
	for i, m := range col.snapshot() {
		if m.Payload.(testMsg).N != i {
			t.Fatalf("order/dup broken at %d: got %v", i, m.Payload)
		}
	}
	var retransmits int64
	for _, st := range client.PeerStats() {
		retransmits += st.Retransmits
	}
	if retransmits == 0 {
		t.Fatal("corrupt frames never forced a retransmission")
	}
}

func TestFaultPartitionCutAndHeal(t *testing.T) {
	inj := faults.NewInjector(1)
	client, server, src, dst, col := faultPair(t, inj)

	// partition dc0<-dc1 at dc0: everything from dc1 is dropped.
	inj.Cut(1, true)
	const n = 10
	for i := 0; i < n; i++ {
		client.Send(src, dst, testMsg{N: i})
	}
	waitFor(t, 5*time.Second, func() bool { return server.Dropped.Load() >= n })
	if col.len() != 0 {
		t.Fatalf("cut frames dispatched: %d", col.len())
	}
	inj.Heal()
	client.Send(src, dst, testMsg{N: 42})
	waitFor(t, 5*time.Second, func() bool { return col.len() == 1 })
	if got := col.snapshot()[0].Payload.(testMsg).N; got != 42 {
		t.Fatalf("post-heal payload = %d", got)
	}
}

func TestFaultFrameDelay(t *testing.T) {
	inj := faults.NewInjector(1)
	client, _, src, dst, col := faultPair(t, inj)
	inj.SetFrames(faults.FrameFaults{Delay: 150 * time.Millisecond})

	start := time.Now()
	client.Send(src, dst, testMsg{N: 1})
	waitFor(t, 5*time.Second, func() bool { return col.len() == 1 })
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Fatalf("frame dispatched after %v, want ≥150ms", elapsed)
	}
}

func TestFaultDialBlackhole(t *testing.T) {
	inj := faults.NewInjector(1)
	server := listen(t, Config{})
	defer server.Close()
	dst := fabric.ReceiverAddr(0)
	col := &collector{}
	server.Register(dst, col.handle)

	// Blackhole armed on the *dialing* endpoint.
	client := listen(t, Config{
		Routes: map[fabric.Addr]string{dst: server.Addr().String()},
		Faults: inj,
	})
	defer client.Close()
	inj.SetBlackhole(true)

	client.Send(fabric.PartitionAddr(1, 0), dst, testMsg{N: 1})
	time.Sleep(300 * time.Millisecond)
	if col.len() != 0 {
		t.Fatal("blackholed dial delivered a frame")
	}
	// Heal: the peer's redial loop connects and the buffered frame
	// arrives (nothing was lost while blackholed).
	inj.Heal()
	waitFor(t, 10*time.Second, func() bool { return col.len() == 1 })
}

func TestFaultConnResetRedialsAndRetransmits(t *testing.T) {
	inj := faults.NewInjector(1)
	server := listen(t, Config{})
	defer server.Close()
	dst := fabric.ReceiverAddr(0)
	col := &collector{}
	server.Register(dst, col.handle)

	client := listen(t, Config{
		Routes: map[fabric.Addr]string{dst: server.Addr().String()},
		Faults: inj,
	})
	defer client.Close()

	src := fabric.PartitionAddr(1, 0)
	client.Send(src, dst, testMsg{N: 0})
	waitFor(t, 5*time.Second, func() bool { return col.len() == 1 })

	// conn-reset, then more traffic: the peer must redial and deliver
	// without loss or duplication.
	inj.TriggerConnReset()
	const n = 20
	for i := 1; i <= n; i++ {
		client.Send(src, dst, testMsg{N: i})
	}
	waitFor(t, 10*time.Second, func() bool { return col.len() == n+1 })
	for i, m := range col.snapshot() {
		if m.Payload.(testMsg).N != i {
			t.Fatalf("order/dup broken after reset at %d: got %v", i, m.Payload)
		}
	}
}
