package transport

import (
	"encoding/binary"
	"net"
	"reflect"
	"testing"
	"time"

	"eunomia/internal/fabric"
	"eunomia/internal/hlc"
	"eunomia/internal/types"
	"eunomia/internal/vclock"
	"eunomia/internal/wire"
)

// codecPayloads is one instance of every protocol payload the fabric
// ships, with every field populated — the round-trip corpus both codecs
// must carry byte-identically.
func codecPayloads() []any {
	u := &types.Update{
		Key: "k1", Value: []byte("v1"), Origin: 1, Partition: 3, Seq: 9,
		TS: hlc.Timestamp(42e12) << 16, HTS: hlc.Timestamp(42e12)<<16 | 1,
		VTS: vclock.V{5, 0, hlc.Timestamp(42e12) << 16}, CreatedAt: 1753900000000000001,
	}
	return []any{
		[]*types.Update{u, u.Meta()},
		fabric.BatchMsg{ID: 7, Partition: 2, Ops: []*types.Update{u}},
		fabric.HeartbeatMsg{ID: 8, Partition: 2, TS: u.TS},
		fabric.AckMsg{ID: 9, Partition: 2, Watermark: u.TS, Err: "boom"},
		testMsg{N: 77},
	}
}

// TestCodecRoundTripTCP sends every protocol payload across a real
// socket under each codec and checks exact structural equality after
// decode.
func TestCodecRoundTripTCP(t *testing.T) {
	for _, codec := range []fabric.Codec{fabric.CodecWire, fabric.CodecGob} {
		t.Run(string(codec), func(t *testing.T) {
			server := listen(t, Config{Codec: codec})
			defer server.Close()
			dst := fabric.ReceiverAddr(1)
			col := &collector{}
			server.Register(dst, col.handle)

			client := listen(t, Config{Codec: codec, Routes: map[fabric.Addr]string{dst: server.Addr().String()}})
			defer client.Close()

			want := codecPayloads()
			src := fabric.PartitionAddr(0, 0)
			for _, p := range want {
				client.Send(src, dst, p)
			}
			waitFor(t, 5*time.Second, func() bool { return col.len() == len(want) })
			for i, m := range col.snapshot() {
				if !reflect.DeepEqual(m.Payload, want[i]) {
					t.Fatalf("payload %d over %s codec:\n got %#v\nwant %#v", i, codec, m.Payload, want[i])
				}
				if m.From != src || m.To != dst {
					t.Fatalf("addressing corrupted: %v→%v", m.From, m.To)
				}
			}
		})
	}
}

// TestMixedCodecPeersInteroperate runs a wire-codec dialer and a
// gob-codec dialer against one server: the magic byte lets the accept
// side speak each dialer's codec, so mixed deployments work during a
// rollout.
func TestMixedCodecPeersInteroperate(t *testing.T) {
	server := listen(t, Config{})
	defer server.Close()
	dst := fabric.ReceiverAddr(1)
	col := &collector{}
	server.Register(dst, col.handle)

	wireClient := listen(t, Config{Codec: fabric.CodecWire, Routes: map[fabric.Addr]string{dst: server.Addr().String()}})
	defer wireClient.Close()
	gobClient := listen(t, Config{Codec: fabric.CodecGob, Routes: map[fabric.Addr]string{dst: server.Addr().String()}})
	defer gobClient.Close()

	const n = 50
	for i := 0; i < n; i++ {
		wireClient.Send(fabric.PartitionAddr(0, 0), dst, testMsg{N: i})
		gobClient.Send(fabric.PartitionAddr(0, 1), dst, testMsg{N: 1000 + i})
	}
	waitFor(t, 5*time.Second, func() bool { return col.len() == 2*n })

	var wireSeen, gobSeen []int
	for _, m := range col.snapshot() {
		v := m.Payload.(testMsg).N
		if v < 1000 {
			wireSeen = append(wireSeen, v)
		} else {
			gobSeen = append(gobSeen, v-1000)
		}
	}
	for i := 0; i < n; i++ {
		if wireSeen[i] != i || gobSeen[i] != i {
			t.Fatalf("per-sender FIFO broken at %d (wire=%v gob=%v)", i, wireSeen[i], gobSeen[i])
		}
	}
}

// TestUnregisteredPayloadDroppedNotWedged sends a payload type the wire
// codec does not know: the frame must be discarded (permanent encode
// error) without wedging the stream for later, encodable frames.
func TestUnregisteredPayloadDroppedNotWedged(t *testing.T) {
	server := listen(t, Config{})
	defer server.Close()
	dst := fabric.ReceiverAddr(1)
	col := &collector{}
	server.Register(dst, col.handle)

	client := listen(t, Config{Routes: map[fabric.Addr]string{dst: server.Addr().String()}})
	defer client.Close()

	type unregistered struct{ X int }
	src := fabric.PartitionAddr(0, 0)
	client.Send(src, dst, unregistered{X: 1})
	client.Send(src, dst, testMsg{N: 42})
	waitFor(t, 5*time.Second, func() bool { return col.len() == 1 })
	if got := col.snapshot()[0].Payload.(testMsg).N; got != 42 {
		t.Fatalf("delivered %v, want the encodable frame", got)
	}
	waitFor(t, 5*time.Second, func() bool { return client.Dropped.Load() >= 1 })
}

// TestCorruptWireFrameClosesConnection feeds a listener a valid magic
// byte and hello followed by a garbage frame: the connection must be torn
// down (no panic, no delivery), and the window protocol's retransmission
// on a fresh connection is what heals real streams.
func TestCorruptWireFrameClosesConnection(t *testing.T) {
	server := listen(t, Config{})
	defer server.Close()
	dst := fabric.ReceiverAddr(1)
	col := &collector{}
	server.Register(dst, col.handle)

	conn, err := net.Dial("tcp", server.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var buf []byte
	buf = append(buf, codecMagicWire)
	hello := []byte{byte(frameHello)}
	hello = wire.AppendString(hello, "evil-proc")
	hello = wire.AppendString(hello, "")
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(hello)))
	buf = append(buf, hello...)
	// A data frame whose payload tag is garbage.
	data := []byte{byte(frameData)}
	data = wire.AppendUvarint(data, 1)           // seq
	data = wire.AppendUvarint(data, 0)           // from dc
	data = wire.AppendString(data, "partition0") // from name
	data = wire.AppendUvarint(data, 1)           // to dc
	data = wire.AppendString(data, "receiver")   // to name
	data = wire.AppendUint64(data, uint64(time.Now().UnixNano()))
	data = wire.AppendUvarint(data, 59999) // unknown tag
	data = append(data, 0xde, 0xad)        // junk body
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(data)))
	buf = append(buf, data...)
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}

	// The server must close the connection on the corrupt frame.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	one := make([]byte, 1)
	if _, err := conn.Read(one); err == nil {
		// An ack may arrive first; the close must still follow.
		if _, err = conn.Read(one); err == nil {
			t.Fatal("connection stayed open after a corrupt frame")
		}
	}
	if col.len() != 0 {
		t.Fatalf("corrupt frame was delivered: %v", col.snapshot())
	}
}

// TestCodecStatsRecordSamples checks the latency histograms fill under
// traffic — the plumbing the Prometheus endpoint exports.
func TestCodecStatsRecordSamples(t *testing.T) {
	server := listen(t, Config{})
	defer server.Close()
	dst := fabric.ReceiverAddr(1)
	col := &collector{}
	server.Register(dst, col.handle)

	client := listen(t, Config{Routes: map[fabric.Addr]string{dst: server.Addr().String()}})
	defer client.Close()

	const n = 64
	for i := 0; i < n; i++ {
		client.Send(fabric.PartitionAddr(0, 0), dst, testMsg{N: i})
	}
	waitFor(t, 5*time.Second, func() bool { return col.len() == n })

	enc, _, flush := client.CodecStats(fabric.CodecWire)
	if enc.Count() < n {
		t.Fatalf("encode histogram has %d samples, want >= %d", enc.Count(), n)
	}
	if flush.Count() == 0 {
		t.Fatal("flush histogram empty")
	}
	_, dec, _ := server.CodecStats(fabric.CodecWire)
	if dec.Count() == 0 {
		t.Fatal("decode histogram empty on the receiving side")
	}
}

// TestCodecStatsKeyedByConnectionCodec pins the mixed-rollout property:
// a wire endpoint accepting a gob dialer's connection must record those
// samples under gob, not under its own dial codec — or the dashboard's
// wire-vs-gob comparison is polluted by exactly the traffic it exists
// to compare.
func TestCodecStatsKeyedByConnectionCodec(t *testing.T) {
	server := listen(t, Config{}) // dials with wire
	defer server.Close()
	dst := fabric.ReceiverAddr(1)
	col := &collector{}
	server.Register(dst, col.handle)

	gobClient := listen(t, Config{Codec: fabric.CodecGob, Routes: map[fabric.Addr]string{dst: server.Addr().String()}})
	defer gobClient.Close()

	const n = 32
	for i := 0; i < n; i++ {
		gobClient.Send(fabric.PartitionAddr(0, 0), dst, testMsg{N: i})
	}
	waitFor(t, 5*time.Second, func() bool { return col.len() == n })

	_, wireDec, _ := server.CodecStats(fabric.CodecWire)
	if wireDec.Count() != 0 {
		t.Fatalf("gob-connection samples landed in the wire histogram (%d)", wireDec.Count())
	}
	_, gobDec, _ := server.CodecStats(fabric.CodecGob)
	if gobDec.Count() == 0 {
		t.Fatal("gob-connection decode samples recorded nowhere")
	}
}

// TestHoldDeliveryRetainsBootFrames pins the boot race the server
// harness closes with Config.HoldDelivery: frames streamed at a process
// whose endpoints are not yet registered must not be acknowledged-and-
// dropped — they deliver, in order, once Ready runs. Without the hold,
// send-once edges (stable-metadata ships, payload batches) lose their
// prefix to a slow boot for good.
func TestHoldDeliveryRetainsBootFrames(t *testing.T) {
	server := listen(t, Config{HoldDelivery: true})
	defer server.Close()
	dst := fabric.ReceiverAddr(1)

	client := listen(t, Config{Routes: map[fabric.Addr]string{dst: server.Addr().String()}})
	defer client.Close()

	const n = 20
	src := fabric.PartitionAddr(0, 0)
	for i := 0; i < n; i++ {
		client.Send(src, dst, testMsg{N: i})
	}
	// The held server must not consume anything: the client's window
	// keeps every frame unacknowledged.
	time.Sleep(200 * time.Millisecond)
	if got := server.Delivered.Load() + server.Dropped.Load(); got != 0 {
		t.Fatalf("held server consumed %d frames before Ready", got)
	}

	// Boot completes: register the endpoint, then release delivery.
	col := &collector{}
	server.Register(dst, col.handle)
	server.Ready()
	waitFor(t, 5*time.Second, func() bool { return col.len() == n })
	for i, m := range col.snapshot() {
		if m.Payload.(testMsg).N != i {
			t.Fatalf("boot-held frames out of order at %d: %v", i, m.Payload)
		}
	}
	if server.Dropped.Load() != 0 {
		t.Fatalf("%d frames dropped across the held boot", server.Dropped.Load())
	}
}

// TestHoldDeliveryCloseUnblocks checks a held endpoint that is closed
// before ever becoming ready releases its inbound connections instead of
// leaking them.
func TestHoldDeliveryCloseUnblocks(t *testing.T) {
	server := listen(t, Config{HoldDelivery: true})
	dst := fabric.ReceiverAddr(1)
	client := listen(t, Config{Routes: map[fabric.Addr]string{dst: server.Addr().String()}})
	defer client.Close()
	client.Send(fabric.PartitionAddr(0, 0), dst, testMsg{N: 1})

	done := make(chan struct{})
	go func() { server.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close wedged on a held inbound connection")
	}
}

// TestReadyIdempotentWithoutHold pins Ready's documented contract: a
// no-op (not a double-close panic) on a transport that never held.
func TestReadyIdempotentWithoutHold(t *testing.T) {
	f := listen(t, Config{})
	defer f.Close()
	f.Ready()
	f.Ready()
}
