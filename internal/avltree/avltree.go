// Package avltree implements an AVL tree with the same interface as
// internal/rbtree.
//
// The paper (§6) reports that "the red-black tree turned out to be more
// efficient than other self-balancing binary search trees such as AVL
// trees" for Eunomia's insert-heavy, extract-prefix workload. This package
// exists to reproduce that ablation (BenchmarkAblationTreeChoice): AVL
// trees rebalance more eagerly, buying cheaper lookups — which Eunomia
// never performs — at the price of costlier inserts and deletes.
package avltree

import (
	"eunomia/internal/hlc"
	"eunomia/internal/ordered"
)

type node[V any] struct {
	key         ordered.Key
	val         V
	left, right *node[V]
	height      int8
}

// Tree is an AVL tree keyed by ordered.Key, implementing ordered.Set[V].
// The zero value is an empty tree ready to use.
type Tree[V any] struct {
	root *node[V]
	size int
}

// New returns an empty tree.
func New[V any]() *Tree[V] { return &Tree[V]{} }

// Len returns the number of entries.
func (t *Tree[V]) Len() int { return t.size }

func height[V any](n *node[V]) int8 {
	if n == nil {
		return 0
	}
	return n.height
}

func fix[V any](n *node[V]) {
	lh, rh := height(n.left), height(n.right)
	if lh > rh {
		n.height = lh + 1
	} else {
		n.height = rh + 1
	}
}

func balanceFactor[V any](n *node[V]) int8 { return height(n.left) - height(n.right) }

func rotateRight[V any](y *node[V]) *node[V] {
	x := y.left
	y.left = x.right
	x.right = y
	fix(y)
	fix(x)
	return x
}

func rotateLeft[V any](x *node[V]) *node[V] {
	y := x.right
	x.right = y.left
	y.left = x
	fix(x)
	fix(y)
	return y
}

func rebalance[V any](n *node[V]) *node[V] {
	fix(n)
	switch bf := balanceFactor(n); {
	case bf > 1:
		if balanceFactor(n.left) < 0 {
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	case bf < -1:
		if balanceFactor(n.right) > 0 {
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}

// Insert adds (k, v), replacing the value if k is already present.
// It returns true for a fresh insert, false for a replacement.
func (t *Tree[V]) Insert(k ordered.Key, v V) bool {
	var fresh bool
	t.root, fresh = t.insert(t.root, k, v)
	if fresh {
		t.size++
	}
	return fresh
}

func (t *Tree[V]) insert(n *node[V], k ordered.Key, v V) (*node[V], bool) {
	if n == nil {
		return &node[V]{key: k, val: v, height: 1}, true
	}
	var fresh bool
	switch c := k.Compare(n.key); {
	case c < 0:
		n.left, fresh = t.insert(n.left, k, v)
	case c > 0:
		n.right, fresh = t.insert(n.right, k, v)
	default:
		n.val = v
		return n, false
	}
	return rebalance(n), fresh
}

// Min returns the smallest entry without removing it.
func (t *Tree[V]) Min() (ordered.Key, V, bool) {
	if t.root == nil {
		var zero V
		return ordered.Key{}, zero, false
	}
	n := t.root
	for n.left != nil {
		n = n.left
	}
	return n.key, n.val, true
}

// Delete removes k, returning whether it was present.
func (t *Tree[V]) Delete(k ordered.Key) bool {
	var deleted bool
	t.root, deleted = t.deleteNode(t.root, k)
	if deleted {
		t.size--
	}
	return deleted
}

func (t *Tree[V]) deleteNode(n *node[V], k ordered.Key) (*node[V], bool) {
	if n == nil {
		return nil, false
	}
	var deleted bool
	switch c := k.Compare(n.key); {
	case c < 0:
		n.left, deleted = t.deleteNode(n.left, k)
	case c > 0:
		n.right, deleted = t.deleteNode(n.right, k)
	default:
		deleted = true
		switch {
		case n.left == nil:
			return n.right, true
		case n.right == nil:
			return n.left, true
		default:
			succ := n.right
			for succ.left != nil {
				succ = succ.left
			}
			n.key, n.val = succ.key, succ.val
			n.right, _ = t.deleteNode(n.right, succ.key)
		}
	}
	if n == nil {
		return nil, deleted
	}
	return rebalance(n), deleted
}

// deleteMin removes and returns the minimum node of the subtree.
func (t *Tree[V]) deleteMin(n *node[V]) (rest, min *node[V]) {
	if n.left == nil {
		return n.right, n
	}
	n.left, min = t.deleteMin(n.left)
	return rebalance(n), min
}

// ExtractUpTo removes and returns, in ascending order, every entry with
// key.TS <= max.
func (t *Tree[V]) ExtractUpTo(max hlc.Timestamp) []V {
	var out []V
	for t.root != nil {
		n := t.root
		for n.left != nil {
			n = n.left
		}
		if n.key.TS > max {
			break
		}
		var min *node[V]
		t.root, min = t.deleteMin(t.root)
		t.size--
		out = append(out, min.val)
	}
	return out
}

// Ascend visits entries in ascending key order until fn returns false.
func (t *Tree[V]) Ascend(fn func(ordered.Key, V) bool) {
	ascend(t.root, fn)
}

func ascend[V any](n *node[V], fn func(ordered.Key, V) bool) bool {
	if n == nil {
		return true
	}
	if !ascend(n.left, fn) {
		return false
	}
	if !fn(n.key, n.val) {
		return false
	}
	return ascend(n.right, fn)
}

// checkInvariants validates AVL balance and ordering; used by tests.
func (t *Tree[V]) checkInvariants() error {
	_, err := check(t.root)
	return err
}

type errorString string

func (e errorString) Error() string { return string(e) }

var (
	errUnbalanced = errorString("avltree: node out of balance")
	errBadHeight  = errorString("avltree: cached height wrong")
	errOrder      = errorString("avltree: keys out of order")
)

func check[V any](n *node[V]) (int8, error) {
	if n == nil {
		return 0, nil
	}
	lh, err := check(n.left)
	if err != nil {
		return 0, err
	}
	rh, err := check(n.right)
	if err != nil {
		return 0, err
	}
	h := lh
	if rh > h {
		h = rh
	}
	h++
	if n.height != h {
		return 0, errBadHeight
	}
	if bf := lh - rh; bf < -1 || bf > 1 {
		return 0, errUnbalanced
	}
	if n.left != nil && !n.left.key.Less(n.key) {
		return 0, errOrder
	}
	if n.right != nil && !n.key.Less(n.right.key) {
		return 0, errOrder
	}
	return h, nil
}
