package avltree

// CheckInvariants exposes the AVL structural validation to tests.
func (t *Tree[V]) CheckInvariants() error { return t.checkInvariants() }
