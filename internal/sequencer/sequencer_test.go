package sequencer

import (
	"sort"
	"sync"
	"testing"
	"time"
)

func TestSingleMonotonicUnique(t *testing.T) {
	s := NewSingle()
	defer s.Stop()
	var prev uint64
	for i := 0; i < 1000; i++ {
		n, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if n != prev+1 {
			t.Fatalf("gap or repeat: %d after %d", n, prev)
		}
		prev = n
	}
	if s.Issued() != 1000 {
		t.Fatalf("Issued = %d", s.Issued())
	}
}

func TestSingleConcurrentClientsNoDuplicates(t *testing.T) {
	s := NewSingle()
	defer s.Stop()
	const workers, per = 8, 500
	results := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				n, err := s.Next()
				if err != nil {
					return
				}
				results[w] = append(results[w], n)
			}
		}(w)
	}
	wg.Wait()
	var all []uint64
	for w := range results {
		// Each client observes strictly increasing numbers: the
		// per-session monotonicity a sequencer guarantees.
		for i := 1; i < len(results[w]); i++ {
			if results[w][i] <= results[w][i-1] {
				t.Fatalf("client %d saw non-increasing numbers", w)
			}
		}
		all = append(all, results[w]...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i := range all {
		if all[i] != uint64(i+1) {
			t.Fatalf("numbers not dense: position %d holds %d", i, all[i])
		}
	}
}

func TestSingleStop(t *testing.T) {
	s := NewSingle()
	s.Stop()
	if _, err := s.Next(); err != ErrStopped {
		t.Fatalf("Next after Stop: %v", err)
	}
	s.Stop() // idempotent
}

func TestNextAsyncDelivers(t *testing.T) {
	s := NewSingle()
	defer s.Stop()
	ch := NextAsync(s)
	select {
	case n := <-ch:
		if n != 1 {
			t.Fatalf("async number = %d", n)
		}
	case <-time.After(time.Second):
		t.Fatal("async result never arrived")
	}
}

func TestNextAsyncOnStoppedService(t *testing.T) {
	s := NewSingle()
	s.Stop()
	ch := NextAsync(s)
	select {
	case _, ok := <-ch:
		if ok {
			t.Fatal("got a number from a stopped service")
		}
	case <-time.After(time.Second):
		t.Fatal("channel never closed")
	}
}

func TestChainMonotonicDense(t *testing.T) {
	c := NewChain(3)
	defer c.Stop()
	var prev uint64
	for i := 0; i < 500; i++ {
		n, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if n != prev+1 {
			t.Fatalf("chain gap: %d after %d", n, prev)
		}
		prev = n
	}
}

func TestChainConcurrent(t *testing.T) {
	c := NewChain(2)
	defer c.Stop()
	const workers, per = 4, 200
	seen := make(map[uint64]bool)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				n, err := c.Next()
				if err != nil {
					return
				}
				mu.Lock()
				if seen[n] {
					mu.Unlock()
					t.Errorf("duplicate %d", n)
					return
				}
				seen[n] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != workers*per {
		t.Fatalf("issued %d unique numbers, want %d", len(seen), workers*per)
	}
}

func TestChainStopUnblocksClients(t *testing.T) {
	c := NewChain(3)
	done := make(chan struct{})
	go func() {
		for {
			if _, err := c.Next(); err != nil {
				close(done)
				return
			}
		}
	}()
	time.Sleep(10 * time.Millisecond)
	c.Stop()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("client hung after chain Stop")
	}
}

func TestChainMinimumOneReplica(t *testing.T) {
	c := NewChain(0) // clamps to 1
	defer c.Stop()
	if n, err := c.Next(); err != nil || n != 1 {
		t.Fatalf("Next = %d, %v", n, err)
	}
}

func TestDelayAppliedToClient(t *testing.T) {
	s := NewSingle()
	s.Delay = 20 * time.Millisecond
	defer s.Stop()
	start := time.Now()
	if _, err := s.Next(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("Delay not applied: %v", elapsed)
	}
}
