package sequencer

// Fabric adaptation of the sequencer protocol: the one-number-per-request
// round trip every partition performs is exactly the interaction the
// baseline exists to measure, so over a real network it is carried as a
// genuine request/response exchange — NextMsg out, NextAckMsg back — with
// no pipelining. ServeFabric exposes a Service at an address; Remote is
// the client partitions use when the sequencer runs in another process.

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"eunomia/internal/fabric"
)

// NextMsg requests the next sequence number. ID correlates the reply.
type NextMsg struct {
	ID uint64
}

// NextAckMsg returns an assigned sequence number (or a service error).
// Epoch identifies the service incarnation: the counter lives in memory,
// so numbers from different incarnations do not share a total order.
type NextAckMsg struct {
	ID    uint64
	N     uint64
	Epoch uint64
	Err   string
}

func init() {
	fabric.RegisterPayload(NextMsg{})
	fabric.RegisterPayload(NextAckMsg{})
}

// ErrTimeout is returned by Remote.Next when no reply arrives in time;
// callers treat the service as failed for that request.
var ErrTimeout = errors.New("sequencer: remote sequencer timeout")

// ErrRestarted is returned once a reply from a different service
// incarnation is observed: the in-memory counter restarted, its numbers
// collide with ones already issued, and the datacenter's total order is
// unrecoverable — the honest failure mode of the paper's
// non-fault-tolerant sequencer (Figure 3's chain variant exists exactly
// to avoid it).
var ErrRestarted = errors.New("sequencer: remote service restarted and lost its counter; datacenter total order is broken")

// ServeFabric registers svc's number dispenser at the given address.
// Requests are answered from their own goroutines: the service itself
// serializes assignment internally, and replies must not block the
// fabric's delivery goroutine for the duration of an emulated round trip.
func ServeFabric(f fabric.Fabric, at fabric.Addr, svc Service) {
	epoch := uint64(time.Now().UnixNano())
	f.Register(at, func(m fabric.Message) {
		req, ok := m.Payload.(NextMsg)
		if !ok {
			return
		}
		from := m.From
		go func() {
			n, err := svc.Next()
			ack := NextAckMsg{ID: req.ID, N: n, Epoch: epoch}
			if err != nil {
				ack.Err = err.Error()
			}
			f.Send(at, from, ack)
		}()
	})
}

// Remote consults a sequencer served elsewhere on the fabric, one
// blocking round trip per Next call — the synchronous hop §2 charges the
// sequencer design for, now paid over a real channel.
type Remote struct {
	f             fabric.Fabric
	local, remote fabric.Addr
	timeout       time.Duration
	// abandoned observes sequence numbers that were allocated by the
	// service but whose reply arrived after the caller gave up. The
	// number exists server-side, so a dense-order consumer (the
	// propagator) must be told to skip it or it would wait forever.
	abandoned func(n uint64)

	// sendQ feeds the single sender goroutine. One goroutine owns every
	// fabric Send, so an outage parks exactly one goroutine in transport
	// backpressure while the bounded queue absorbs (then fails) callers —
	// never one blocked goroutine per call.
	sendQ  chan uint64
	stopCh chan struct{}

	mu      sync.Mutex
	nextID  uint64
	waiters map[uint64]chan NextAckMsg // nil value = timed-out tombstone
	// epoch is the service incarnation whose numbers this client has been
	// consuming (0 until the first reply); a reply from any other
	// incarnation makes the client fail permanently (ErrRestarted).
	epoch     uint64
	restarted bool
	stopped   bool
}

var _ Service = (*Remote)(nil)

// NewRemote builds a remote sequencer client and registers its reply
// endpoint at local. timeout bounds each round trip; non-positive
// selects 10s. abandoned (optional) is told about numbers whose reply
// outlived the caller's patience.
func NewRemote(f fabric.Fabric, local, remote fabric.Addr, timeout time.Duration, abandoned func(n uint64)) *Remote {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	r := &Remote{
		f:         f,
		local:     local,
		remote:    remote,
		timeout:   timeout,
		abandoned: abandoned,
		sendQ:     make(chan uint64, 256),
		stopCh:    make(chan struct{}),
		waiters:   make(map[uint64]chan NextAckMsg),
	}
	f.Register(local, r.handle)
	go r.sendLoop()
	return r
}

// sendLoop is the only goroutine that performs fabric Sends; it may sit
// in backpressure against a down sequencer process until the fabric
// closes (signal-only shutdown, like the geostore stream goroutines).
func (r *Remote) sendLoop() {
	for {
		select {
		case id := <-r.sendQ:
			r.f.Send(r.local, r.remote, NextMsg{ID: id})
		case <-r.stopCh:
			return
		}
	}
}

func (r *Remote) handle(m fabric.Message) {
	ack, ok := m.Payload.(NextAckMsg)
	if !ok {
		return
	}
	r.mu.Lock()
	if ack.Err == "" {
		if r.epoch == 0 {
			r.epoch = ack.Epoch
		}
		if ack.Epoch != r.epoch {
			// A different incarnation answered: its counter restarted, so
			// this number collides with ones already woven into the
			// dense shipping order. Poison the client rather than wedge
			// silently.
			r.restarted = true
			ack.Err = ErrRestarted.Error()
		}
	}
	ch, present := r.waiters[ack.ID]
	if present {
		delete(r.waiters, ack.ID)
	}
	r.mu.Unlock()
	if !present {
		return // duplicate reply
	}
	if ch != nil {
		ch <- ack
		return
	}
	// Tombstone: the caller timed out, but the service did allocate this
	// number — surface it so the dense propagation order can skip it.
	if ack.Err == "" && r.abandoned != nil {
		r.abandoned(ack.N)
	}
}

// Next implements Service.
func (r *Remote) Next() (uint64, error) {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return 0, ErrStopped
	}
	if r.restarted {
		r.mu.Unlock()
		return 0, ErrRestarted
	}
	r.nextID++
	id := r.nextID
	ch := make(chan NextAckMsg, 1)
	r.waiters[id] = ch
	r.mu.Unlock()

	// Hand the send to the dedicated sender goroutine so the timeout
	// bounds the whole round trip: a networked fabric's Send blocks
	// under backpressure when the sequencer process is down, and that
	// wait must not hang the caller past its deadline. A frame that sits
	// out the outage in the queue or the transport window is delivered
	// on reconnect; the service's late reply then lands on this call's
	// tombstone and the number is reported abandoned.
	timer := time.NewTimer(r.timeout)
	defer timer.Stop()
	select {
	case r.sendQ <- id:
	case <-timer.C:
		// Never sent: no number can have been allocated, so plain
		// forgetting is safe (no tombstone needed).
		r.forget(id)
		return 0, fmt.Errorf("%w (%s: send queue full)", ErrTimeout, r.remote)
	}

	select {
	case ack := <-ch:
		if ack.Err != "" {
			return 0, errors.New(ack.Err)
		}
		return ack.N, nil
	case <-timer.C:
		// Leave a tombstone instead of forgetting the call: the reply may
		// still arrive (a reliable fabric retransmits across outages),
		// carrying a number that was genuinely allocated and must be
		// reported abandoned. If the service died the tombstone leaks —
		// one map entry per timed-out call, reclaimed on Stop.
		r.mu.Lock()
		_, present := r.waiters[id]
		if present {
			r.waiters[id] = nil
		}
		cb := r.abandoned
		r.mu.Unlock()
		if !present {
			// The reply raced the timeout: whoever removed the waiter
			// (handle or Stop) is committed to sending exactly one value
			// into the buffered channel, possibly a moment from now — so
			// a blocking receive cannot hang, while a non-blocking one
			// could miss an allocated number and wedge the dense order.
			if ack := <-ch; ack.Err == "" && cb != nil {
				cb(ack.N)
			}
		}
		return 0, fmt.Errorf("%w (%s)", ErrTimeout, r.remote)
	}
}

// forget drops a waiter whose request never reached the wire.
func (r *Remote) forget(id uint64) {
	r.mu.Lock()
	delete(r.waiters, id)
	r.mu.Unlock()
}

// Stop implements Service: outstanding and future calls fail fast.
func (r *Remote) Stop() {
	r.mu.Lock()
	if !r.stopped {
		r.stopped = true
		close(r.stopCh)
	}
	for id, ch := range r.waiters {
		delete(r.waiters, id)
		if ch != nil {
			ch <- NextAckMsg{ID: id, Err: ErrStopped.Error()}
		}
	}
	r.mu.Unlock()
}
