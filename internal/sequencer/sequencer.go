// Package sequencer implements the sequencer-based baselines the paper
// measures Eunomia against (§2, §7.1).
//
// A traditional sequencer (as in ChainReaction and SwiftCloud) is a
// per-datacenter service that every update operation consults
// synchronously, in the client's critical path, to obtain a monotonically
// increasing number. Its appeal is that remote dependency checking becomes
// trivial; its cost is that it serializes all local updates and its round
// trip inflates every update's latency.
//
// Three variants are provided:
//
//   - Single: the plain non-fault-tolerant sequencer (S-Seq).
//   - Chain: a fault-tolerant sequencer replicated with chain replication
//     (van Renesse & Schneider, OSDI'04), as in §7.1: requests enter at
//     the head and are acknowledged by the tail.
//   - The A-Seq behaviour of Figure 1 — contacting the sequencer in
//     parallel with applying the update — is a client-side choice: call
//     NextAsync instead of Next. It performs the same total work but
//     removes the round trip from the critical path (and, as the paper
//     notes, fails to capture causality; it exists to isolate the cost of
//     the synchronous hop).
package sequencer

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"eunomia/internal/clock"
)

// ErrStopped is returned once the service has been shut down.
var ErrStopped = errors.New("sequencer: stopped")

// Service is a monotonic number dispenser.
type Service interface {
	// Next returns the next sequence number, blocking for the service
	// round trip.
	Next() (uint64, error)
	// Stop shuts the service down.
	Stop()
}

// request carries one pending Next call.
type request struct {
	reply chan uint64
}

var replyPool = sync.Pool{
	New: func() any { return make(chan uint64, 1) },
}

// Single is the non-fault-tolerant sequencer: one goroutine owning the
// counter, consulted by a synchronous round trip per call. The request
// channel round trip is the in-process analogue of the RPC the paper's
// partitions perform per update; Delay adds emulated network time on top.
type Single struct {
	reqs    chan request
	stopped atomic.Bool
	done    chan struct{}
	wg      sync.WaitGroup

	// Delay emulates the round-trip network latency of the sequencer
	// hop; the client sleeps it around the exchange. Zero by default.
	Delay time.Duration
	// MessageCost charges emulated per-request processing time (message
	// receive, parse, reply — the work a real networked sequencer does
	// per operation) to the service goroutine. The saturation
	// experiments set it; protocol tests leave it zero.
	MessageCost time.Duration

	issued atomic.Uint64
}

// NewSingle starts a sequencer service.
func NewSingle() *Single {
	s := &Single{
		reqs: make(chan request, 1024),
		done: make(chan struct{}),
	}
	s.wg.Add(1)
	go s.run()
	return s
}

func (s *Single) run() {
	defer s.wg.Done()
	var counter uint64
	for {
		select {
		case <-s.done:
			// Drain outstanding requests so callers never hang.
			for {
				select {
				case r := <-s.reqs:
					counter++
					r.reply <- counter
				default:
					return
				}
			}
		case r := <-s.reqs:
			clock.SpinFor(s.MessageCost)
			counter++
			s.issued.Store(counter)
			r.reply <- counter
		}
	}
}

// Next implements Service.
func (s *Single) Next() (uint64, error) {
	if s.stopped.Load() {
		return 0, ErrStopped
	}
	if s.Delay > 0 {
		time.Sleep(s.Delay / 2)
	}
	reply := replyPool.Get().(chan uint64)
	select {
	case s.reqs <- request{reply: reply}:
	case <-s.done:
		replyPool.Put(reply)
		return 0, ErrStopped
	}
	n := <-reply
	replyPool.Put(reply)
	if s.Delay > 0 {
		time.Sleep(s.Delay - s.Delay/2)
	}
	return n, nil
}

// Issued returns the highest number handed out so far.
func (s *Single) Issued() uint64 { return s.issued.Load() }

// Stop implements Service.
func (s *Single) Stop() {
	if s.stopped.CompareAndSwap(false, true) {
		close(s.done)
		s.wg.Wait()
	}
}

// NextAsync performs the A-Seq interaction: it fires the sequencer request
// on a separate goroutine and returns immediately. The returned channel
// yields the number when the round trip completes; callers that only need
// the throughput effect may discard it.
func NextAsync(s Service) <-chan uint64 {
	out := make(chan uint64, 1)
	go func() {
		if n, err := s.Next(); err == nil {
			out <- n
		}
		close(out)
	}()
	return out
}

// chainItem is a number propagating down the chain toward the tail.
type chainItem struct {
	n     uint64
	reply chan uint64
}

// Chain is a chain-replicated sequencer: the head assigns the number, the
// assignment flows through every middle replica, and the tail acknowledges
// the client. A crash of any replica stops the service (chain repair is
// orthogonal to the paper's measurement, which evaluates only the
// steady-state overhead of the chain — Figure 3).
type Chain struct {
	head    chan chainItem
	stages  []chan chainItem
	stopped atomic.Bool
	done    chan struct{}
	wg      sync.WaitGroup

	// Delay emulates network latency per chain hop (client→head,
	// replica→replica, tail→client): a chain of r replicas costs
	// (r+1) × Delay/2 of emulated wire time per request.
	Delay time.Duration
	// MessageCost charges emulated per-request processing time to every
	// chain stage (each replica receives, records and forwards the
	// assignment).
	MessageCost time.Duration
}

// NewChain starts a chain of n replicas (n >= 1).
func NewChain(n int) *Chain {
	if n < 1 {
		n = 1
	}
	c := &Chain{done: make(chan struct{})}
	c.stages = make([]chan chainItem, n)
	for i := range c.stages {
		c.stages[i] = make(chan chainItem, 1024)
	}
	c.head = c.stages[0]

	// Head assigns; middles forward; tail replies.
	for i := 0; i < n; i++ {
		i := i
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			var counter uint64
			for {
				select {
				case <-c.done:
					return
				case it := <-c.stages[i]:
					clock.SpinFor(c.MessageCost)
					if i == 0 {
						counter++
						it.n = counter
					}
					if c.Delay > 0 && i > 0 {
						// Hop latency between chain replicas.
						time.Sleep(c.Delay / 2)
					}
					if i == n-1 {
						it.reply <- it.n
					} else {
						select {
						case c.stages[i+1] <- it:
						case <-c.done:
							return
						}
					}
				}
			}
		}()
	}
	return c
}

// Next implements Service.
func (c *Chain) Next() (uint64, error) {
	if c.stopped.Load() {
		return 0, ErrStopped
	}
	if c.Delay > 0 {
		time.Sleep(c.Delay / 2)
	}
	reply := replyPool.Get().(chan uint64)
	select {
	case c.head <- chainItem{reply: reply}:
	case <-c.done:
		replyPool.Put(reply)
		return 0, ErrStopped
	}
	select {
	case n := <-reply:
		replyPool.Put(reply)
		if c.Delay > 0 {
			time.Sleep(c.Delay / 2)
		}
		return n, nil
	case <-c.done:
		// Do not return the channel to the pool: a stage may still be
		// holding it and could deposit a stale value into a future call.
		return 0, ErrStopped
	}
}

// Stop implements Service.
func (c *Chain) Stop() {
	if c.stopped.CompareAndSwap(false, true) {
		close(c.done)
		c.wg.Wait()
	}
}
