package sequencer

import (
	"fmt"
	"testing"
	"time"

	"eunomia/internal/simnet"
	"eunomia/internal/types"
)

func fastDelay() simnet.DelayFunc {
	return simnet.LatencyMatrix(simnet.PaperRTTs(0.1), 0)
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("condition not reached within %v", timeout)
}

func TestSSeqReplication(t *testing.T) {
	s := NewStore(StoreConfig{Mode: SSeq, DCs: 3, Partitions: 4, Delay: fastDelay()})
	defer s.Close()
	c0 := s.NewClient(0)
	if err := c0.Update("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	for dc := types.DCID(1); dc <= 2; dc++ {
		c := s.NewClient(dc)
		waitFor(t, 2*time.Second, func() bool {
			v, _ := c.Read("k")
			return string(v) == "v"
		})
	}
}

func TestSSeqCausalLitmus(t *testing.T) {
	s := NewStore(StoreConfig{Mode: SSeq, DCs: 3, Partitions: 4, Delay: fastDelay()})
	defer s.Close()

	alice := s.NewClient(0)
	if err := alice.Update("post", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	bob := s.NewClient(1)
	waitFor(t, 2*time.Second, func() bool {
		v, _ := bob.Read("post")
		return string(v) == "hello"
	})
	if err := bob.Update("reply", []byte("hi")); err != nil {
		t.Fatal(err)
	}
	carol := s.NewClient(2)
	waitFor(t, 3*time.Second, func() bool {
		reply, _ := carol.Read("reply")
		if string(reply) != "hi" {
			return false
		}
		post, _ := carol.Read("post")
		if string(post) != "hello" {
			t.Fatalf("S-Seq causality violated: reply without post")
		}
		return true
	})
}

func TestSSeqLocalTotalOrderShipping(t *testing.T) {
	// Updates from one datacenter must arrive at remote receivers in
	// sequence order even when issued concurrently across partitions.
	s := NewStore(StoreConfig{Mode: SSeq, DCs: 2, Partitions: 4, Delay: fastDelay()})
	defer s.Close()
	const n = 50
	done := make(chan struct{})
	go func() {
		defer close(done)
		c := s.NewClient(0)
		for i := 0; i < n; i++ {
			c.Update(types.Key(fmt.Sprintf("k%d", i)), []byte{byte(i)})
		}
	}()
	<-done
	waitFor(t, 3*time.Second, func() bool {
		total := 0
		for p := 0; p < 4; p++ {
			total += s.Partition(1, types.PartitionID(p)).Len()
		}
		return total == n
	})
}

func TestASeqDoesNotBlockClient(t *testing.T) {
	s := NewStore(StoreConfig{
		Mode: ASeq, DCs: 2, Partitions: 2, Delay: fastDelay(),
		SequencerDelay: 50 * time.Millisecond,
	})
	defer s.Close()
	c := s.NewClient(0)
	start := time.Now()
	if err := c.Update("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Millisecond {
		t.Fatalf("A-Seq update blocked on the sequencer: %v", elapsed)
	}
	// The update still replicates (the sequencer round trip completes
	// in the background).
	c1 := s.NewClient(1)
	waitFor(t, 2*time.Second, func() bool {
		v, _ := c1.Read("k")
		return string(v) == "v"
	})
}

func TestSSeqBlocksOnSequencerDelay(t *testing.T) {
	s := NewStore(StoreConfig{
		Mode: SSeq, DCs: 2, Partitions: 2, Delay: fastDelay(),
		SequencerDelay: 30 * time.Millisecond,
	})
	defer s.Close()
	c := s.NewClient(0)
	start := time.Now()
	if err := c.Update("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("S-Seq update did not wait for the sequencer: %v", elapsed)
	}
}

func TestChainReplicatedStore(t *testing.T) {
	s := NewStore(StoreConfig{
		Mode: SSeq, DCs: 2, Partitions: 2, Delay: fastDelay(), ChainReplicas: 3,
	})
	defer s.Close()
	c := s.NewClient(0)
	if err := c.Update("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	c1 := s.NewClient(1)
	waitFor(t, 2*time.Second, func() bool {
		v, _ := c1.Read("k")
		return string(v) == "v"
	})
}

func TestSSeqConvergenceUnderConcurrentWrites(t *testing.T) {
	s := NewStore(StoreConfig{Mode: SSeq, DCs: 3, Partitions: 2, Delay: fastDelay()})
	defer s.Close()
	// Concurrent writes to the same key from every datacenter.
	for dc := types.DCID(0); dc < 3; dc++ {
		c := s.NewClient(dc)
		c.Update("contested", []byte(fmt.Sprintf("dc%d", dc)))
	}
	// All replicas converge to one winner.
	waitFor(t, 3*time.Second, func() bool {
		var vals [3]string
		for dc := 0; dc < 3; dc++ {
			for p := 0; p < 2; p++ {
				if v, ok := s.Partition(types.DCID(dc), types.PartitionID(p)).Get("contested"); ok {
					vals[dc] = string(v.Value)
				}
			}
		}
		return vals[0] != "" && vals[0] == vals[1] && vals[1] == vals[2]
	})
}
