package sequencer

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eunomia/internal/fabric"
	"eunomia/internal/simnet"
	"eunomia/internal/transport"
	"eunomia/internal/types"
)

func listenTCP(t *testing.T) *transport.TCP {
	t.Helper()
	f, err := transport.Listen(transport.Config{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// seqOrder records the per-origin visibility order of remote updates so
// the test can assert the sequencer baseline's defining guarantee: every
// datacenter applies another datacenter's updates in its total (sequence)
// order.
type seqOrder struct {
	mu   sync.Mutex
	seen map[types.DCID][]uint64
}

func (o *seqOrder) record(_ types.DCID, u *types.Update, _ time.Time) {
	o.mu.Lock()
	o.seen[u.Origin] = append(o.seen[u.Origin], u.Seq)
	o.mu.Unlock()
}

func (o *seqOrder) assertTotalOrder(t *testing.T, origin types.DCID, want int) {
	t.Helper()
	o.mu.Lock()
	defer o.mu.Unlock()
	seqs := o.seen[origin]
	if len(seqs) != want {
		t.Fatalf("dc saw %d updates from dc%d, want %d", len(seqs), origin, want)
	}
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("updates from dc%d applied out of total order: position %d has seq %d (full: %v)",
				origin, i, s, seqs)
		}
	}
}

// TestRemoteSequencerTimeoutSkipsNumber covers the burned-number hazard
// of split deployments: a Next round trip that times out after the
// service already allocated the number must not wedge the dense-order
// propagator — the late reply reports the number abandoned and shipping
// skips it.
func TestRemoteSequencerTimeoutSkipsNumber(t *testing.T) {
	var ackDelay atomic.Int64
	ackDelay.Store(int64(150 * time.Millisecond))
	seqAddr, cliAddr := fabric.SequencerAddr(0, 0), ClientAddr(0)
	net := simnet.New(func(from, to fabric.Addr) time.Duration {
		if from == seqAddr && to == cliAddr {
			return time.Duration(ackDelay.Load())
		}
		return 0
	})
	defer net.Close()

	cfg := StoreConfig{DCs: 2, Partitions: 2}
	cfg.fill()
	svcNode := NewNode(NodeConfig{StoreConfig: cfg, DC: 0, Roles: RoleSequencer, Fabric: net})
	partNode := NewNode(NodeConfig{StoreConfig: cfg, DC: 0, Roles: RolePartitions, Fabric: net,
		AckTimeout: 30 * time.Millisecond})
	destNode := NewNode(NodeConfig{StoreConfig: cfg, DC: 1, Roles: RoleAll, Fabric: net})
	defer svcNode.Close()
	defer partNode.Close()
	defer destNode.Close()

	// First write: the service allocates number 1, but the reply takes
	// 150ms against a 30ms timeout — the write must fail loudly.
	c := partNode.NewClient()
	if err := c.Update("lost", []byte("v")); err == nil {
		t.Fatal("update succeeded although the sequencer reply was slower than the timeout")
	}

	// Let the late reply land (reporting number 1 abandoned), then heal
	// the link.
	time.Sleep(250 * time.Millisecond)
	ackDelay.Store(0)

	// Subsequent writes take numbers 2, 3, ... and must still replicate:
	// an unskipped gap at 1 would wedge the propagator forever.
	if err := c.Update("after", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	reader := destNode.NewClient()
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, _ := reader.Read("after")
		if string(v) == "ok" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("update after the burned number never replicated: propagator wedged")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRemoteSequencerRestartFailsLoudly covers the other split-role
// incarnation hazard: a restarted sequencer process restarts its
// in-memory counter, so its numbers collide with ones already issued.
// The client must fail permanently and loudly instead of wedging the
// dense shipping order in silence.
func TestRemoteSequencerRestartFailsLoudly(t *testing.T) {
	net := simnet.New(nil)
	defer net.Close()
	cfg := StoreConfig{DCs: 2, Partitions: 2}
	cfg.fill()

	svc := NewNode(NodeConfig{StoreConfig: cfg, DC: 0, Roles: RoleSequencer, Fabric: net})
	part := NewNode(NodeConfig{StoreConfig: cfg, DC: 0, Roles: RolePartitions, Fabric: net})
	defer part.Close()

	c := part.NewClient()
	if err := c.Update("before", []byte("v")); err != nil {
		t.Fatal(err)
	}

	// "Restart" the sequencer process: a new incarnation re-registers the
	// address with a fresh counter and a fresh epoch.
	svc.Close()
	svc2 := NewNode(NodeConfig{StoreConfig: cfg, DC: 0, Roles: RoleSequencer, Fabric: net})
	defer svc2.Close()

	if err := c.Update("after", []byte("v")); err == nil {
		t.Fatal("update succeeded against a restarted sequencer whose numbers collide with issued ones")
	}
	// The failure is sticky: the datacenter's total order cannot be
	// repaired by retrying.
	if err := c.Update("again", []byte("v")); err == nil {
		t.Fatal("second update succeeded although the client is poisoned by the restart")
	}
}

// TestSequencerDatacenterOverTCP boots a sequencer-baseline deployment as
// three OS-level fabric endpoints, mirroring the geostore TCP test: dc0 is
// split across two processes — the sequencer service alone in one, the
// partition group (with propagator and receiver) in another, so every
// update's number assignment is a real TCP round trip — and dc1 is a full
// node on a third. Total-order visibility must hold end to end.
func TestSequencerDatacenterOverTCP(t *testing.T) {
	cfg := StoreConfig{DCs: 2, Partitions: 2}
	cfg.fill()
	cfg.Delay = nil // TCP brings its own latency

	fabS := listenTCP(t) // dc0 sequencer service
	fabA := listenTCP(t) // dc0 partitions + propagator + receiver
	fabC := listenTCP(t) // dc1, all roles
	defer fabS.Close()
	defer fabA.Close()
	defer fabC.Close()
	s, a, c := fabS.Addr().String(), fabA.Addr().String(), fabC.Addr().String()

	// Static routing; the sequencer's replies ride the learned reverse
	// route from the hello, but we install it explicitly for determinism.
	fabS.AddRoute(ClientAddr(0), a)
	fabA.AddRoute(fabric.SequencerAddr(0, 0), s)
	fabA.AddDCRoute(1, c)
	fabC.AddRoute(fabric.ReceiverAddr(0), a)
	fabC.AddDCRoute(0, a)

	order := &seqOrder{seen: make(map[types.DCID][]uint64)}
	remoteCfg := cfg
	remoteCfg.OnVisible = order.record

	nodeS := NewNode(NodeConfig{StoreConfig: cfg, DC: 0, Roles: RoleSequencer, Fabric: fabS})
	nodeA := NewNode(NodeConfig{StoreConfig: cfg, DC: 0, Roles: RolePartitions, Fabric: fabA})
	nodeC := NewNode(NodeConfig{StoreConfig: remoteCfg, DC: 1, Roles: RoleAll, Fabric: fabC})
	defer nodeS.Close()
	defer nodeA.Close()
	defer nodeC.Close()

	wait := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", what)
	}

	// dc0 → dc1: a causal chain whose numbers are assigned by the
	// sequencer process. Every pair's flag must arrive with its data.
	writer := nodeA.NewClient()
	reader := nodeC.NewClient()
	const rounds = 10
	for i := 0; i < rounds; i++ {
		data := types.Key(fmt.Sprintf("data%d", i))
		flag := types.Key(fmt.Sprintf("flag%d", i))
		if err := writer.Update(data, []byte(fmt.Sprintf("payload%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := writer.Update(flag, []byte("set")); err != nil {
			t.Fatal(err)
		}
		wait(string(flag), func() bool {
			f, _ := reader.Read(flag)
			if string(f) != "set" {
				return false
			}
			d, _ := reader.Read(data)
			if string(d) != fmt.Sprintf("payload%d", i) {
				t.Fatalf("round %d: flag visible at dc1 without data (causality violated over TCP)", i)
			}
			return true
		})
	}
	order.assertTotalOrder(t, 0, 2*rounds)

	// The sequencer process really did the numbering.
	single, ok := nodeS.Sequencer().(*Single)
	if !ok {
		t.Fatalf("dc0 sequencer node hosts %T, want *Single", nodeS.Sequencer())
	}
	if got := single.Issued(); got != 2*rounds {
		t.Fatalf("sequencer process issued %d numbers, want %d", got, 2*rounds)
	}

	// dc1 → dc0: the reverse direction lands in the partition process's
	// receiver.
	back := nodeC.NewClient()
	if err := back.Update("echo", []byte("from-dc1")); err != nil {
		t.Fatal(err)
	}
	probe := nodeA.NewClient()
	wait("echo", func() bool {
		v, _ := probe.Read("echo")
		return string(v) == "from-dc1"
	})
	if nodeA.Applied() == 0 {
		t.Fatal("dc0 partition process applied no remote updates")
	}
}
