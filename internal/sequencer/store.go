package sequencer

import (
	"fmt"
	"sync"
	"time"

	"eunomia/internal/fabric"
	"eunomia/internal/hlc"
	"eunomia/internal/kvstore"
	"eunomia/internal/metrics"
	"eunomia/internal/receiver"
	"eunomia/internal/session"
	"eunomia/internal/simnet"
	"eunomia/internal/types"
	"eunomia/internal/vclock"
)

// StoreMode selects how the geo store consults the sequencer.
type StoreMode int

const (
	// SSeq is the faithful sequencer-based design (§2): every update
	// operation synchronously obtains its number before returning to the
	// client.
	SSeq StoreMode = iota
	// ASeq is the paper's deliberately bogus asynchronous variant: the
	// sequencer is contacted in parallel with applying the update. It
	// performs the same total work but removes the round trip from the
	// client's critical path — and does not actually capture causality.
	// It exists to quantify what sequencers cost purely by being
	// synchronous (Figure 1).
	ASeq
)

func (m StoreMode) String() string {
	if m == ASeq {
		return "A-Seq"
	}
	return "S-Seq"
}

// StoreConfig parameterises a sequencer-based geo store.
type StoreConfig struct {
	Mode       StoreMode
	DCs        int
	Partitions int
	Delay      simnet.DelayFunc
	// SequencerDelay emulates the intra-datacenter round trip to the
	// sequencer; zero leaves only the in-process channel round trip.
	SequencerDelay time.Duration
	// ChainReplicas > 1 replicates each datacenter's sequencer with
	// chain replication (Figure 3's FT sequencer).
	ChainReplicas int
	// ShipInterval batches inter-DC replication. Default 1ms.
	ShipInterval time.Duration
	// CheckInterval is the remote receiver's period. Default 1ms.
	CheckInterval time.Duration
	ClockFor      func(dc types.DCID, p types.PartitionID) hlc.PhysSource
	// OnVisible observes remote update visibility at a destination.
	OnVisible func(dest types.DCID, u *types.Update, arrived time.Time)
}

func (c *StoreConfig) fill() {
	if c.DCs <= 0 {
		c.DCs = 3
	}
	if c.Partitions <= 0 {
		c.Partitions = 8
	}
	if c.ShipInterval <= 0 {
		c.ShipInterval = time.Millisecond
	}
	if c.CheckInterval <= 0 {
		c.CheckInterval = time.Millisecond
	}
	if c.Delay == nil {
		c.Delay = simnet.LatencyMatrix(simnet.PaperRTTs(1), 0)
	}
}

// Roles selects which components of a sequencer-based datacenter a Node
// hosts. The natural split mirrors the paper's architecture: the
// sequencer is a standalone service every update consults, so it is the
// role worth running in its own process.
type Roles uint8

const (
	// RoleSequencer hosts the datacenter's sequencer service and serves
	// it at its fabric address.
	RoleSequencer Roles = 1 << iota
	// RolePartitions hosts the partition servers, the propagator, and the
	// datacenter's remote-update receiver (colocated: the baseline's
	// receiver applies straight into the partition group).
	RolePartitions
)

// RoleAll hosts a complete sequencer-based datacenter in one process.
const RoleAll = RoleSequencer | RolePartitions

// Has reports whether r includes any of the given roles.
func (r Roles) Has(x Roles) bool { return r&x != 0 }

// NodeConfig parameterises one fabric-attached process of a deployment.
type NodeConfig struct {
	StoreConfig
	// DC is the datacenter this node belongs to.
	DC types.DCID
	// Roles selects the components hosted here; other roles of the same
	// datacenter are expected elsewhere on the fabric.
	Roles Roles
	// Fabric carries every inter-component edge: replication to remote
	// receivers, and — when the sequencer role runs elsewhere — the
	// synchronous number-assignment round trips themselves. The node
	// registers endpoints but does not own the fabric.
	Fabric fabric.Fabric
	// AckTimeout bounds remote sequencer round trips. Default 10s.
	AckTimeout time.Duration
}

// Node hosts a subset of one sequencer-based datacenter on a fabric. A
// Store is M all-role nodes on one simnet; cmd/eunomia-server runs one
// Node per process on TCP with -mode sequencer.
type Node struct {
	cfg   StoreConfig
	id    types.DCID
	roles Roles
	fab   fabric.Fabric
	ring  kvstore.Ring

	// svc is the hosted sequencer service (RoleSequencer); seq is what
	// the partitions consult — svc when colocated, a Remote otherwise.
	svc   Service
	seq   Service
	prop  *propagator
	parts []*spart
	recv  *receiver.Receiver

	// A-Seq's detached sequencer round trips run on a bounded worker
	// pool instead of one goroutine per write: against a slow or
	// unreachable remote sequencer, per-write goroutines would pile up
	// without bound for the outage duration.
	async     chan func()
	asyncStop chan struct{}
	asyncWG   sync.WaitGroup
}

const (
	asyncAssignWorkers = 64
	asyncAssignQueue   = 4096
)

// propagatorAddr names the node's shipping endpoint. Distinct from the
// sequencer's address so that, in split deployments, networked fabrics do
// not learn the partition process as a reply route to the sequencer.
func propagatorAddr(dc types.DCID) fabric.Addr {
	return fabric.Addr{DC: dc, Name: "propagator"}
}

// ClientAddr names the endpoint remote-sequencer acknowledgements return
// to — hosted by the partition-group process. Exported so deployment
// tooling can route it alongside the partition group's other endpoints.
func ClientAddr(dc types.DCID) fabric.Addr {
	return fabric.Addr{DC: dc, Name: "seqclient"}
}

// NewNode builds and starts the selected roles, registering their
// endpoints on the fabric.
func NewNode(nc NodeConfig) *Node {
	nc.StoreConfig.fill()
	if nc.Roles == 0 {
		nc.Roles = RoleAll
	}
	n := &Node{
		cfg:   nc.StoreConfig,
		id:    nc.DC,
		roles: nc.Roles,
		fab:   nc.Fabric,
		ring:  kvstore.NewRing(nc.Partitions),
	}
	cfg := n.cfg
	m := n.id

	if nc.Roles.Has(RoleSequencer) {
		if cfg.ChainReplicas > 1 {
			ch := NewChain(cfg.ChainReplicas)
			ch.Delay = cfg.SequencerDelay
			n.svc = ch
		} else {
			single := NewSingle()
			single.Delay = cfg.SequencerDelay
			n.svc = single
		}
		ServeFabric(n.fab, fabric.SequencerAddr(m, 0), n.svc)
	}

	if nc.Roles.Has(RolePartitions) {
		n.prop = newPropagator(n)
		if nc.Roles.Has(RoleSequencer) {
			n.seq = n.svc
		} else {
			// A timed-out round trip may still have allocated a number
			// server-side; the propagator skips it so the dense shipping
			// order is not wedged by one slow reply.
			n.seq = NewRemote(n.fab, ClientAddr(m), fabric.SequencerAddr(m, 0), nc.AckTimeout, n.prop.skip)
		}
		// The bounded pool guards only the remote-sequencer case, where
		// one detached round trip can block for the full AckTimeout
		// against a down process. Colocated A-Seq keeps the per-write
		// goroutine of the original measurement: its round trip is
		// bounded by the local service, and the figures' A-Seq curves
		// are defined by that unconstrained-concurrency interaction.
		if cfg.Mode == ASeq && !nc.Roles.Has(RoleSequencer) {
			n.async = make(chan func(), asyncAssignQueue)
			n.asyncStop = make(chan struct{})
			n.asyncWG.Add(asyncAssignWorkers)
			for w := 0; w < asyncAssignWorkers; w++ {
				go func() {
					defer n.asyncWG.Done()
					for {
						select {
						case f := <-n.async:
							f()
						case <-n.asyncStop:
							return
						}
					}
				}()
			}
		}
		for i := 0; i < cfg.Partitions; i++ {
			var src hlc.PhysSource
			if cfg.ClockFor != nil {
				src = cfg.ClockFor(m, types.PartitionID(i))
			}
			n.parts = append(n.parts, &spart{
				node:  n,
				id:    types.PartitionID(i),
				clock: hlc.NewClock(src),
				kv:    kvstore.New(),
			})
		}
		if cfg.DCs > 1 {
			n.recv = receiver.New(receiver.Config{
				DC:            m,
				DCs:           cfg.DCs,
				CheckInterval: cfg.CheckInterval,
				Apply: func(u *types.Update, metaArrived time.Time) bool {
					n.parts[n.ring.Responsible(u.Key)].applyRemote(u, metaArrived)
					return true
				},
			})
			recv := n.recv
			n.fab.Register(fabric.ReceiverAddr(m), func(msg fabric.Message) {
				ops, ok := msg.Payload.([]*types.Update)
				if !ok {
					return
				}
				recv.Enqueue(msg.From.DC, ops)
			})
		}
	}
	return n
}

// DC returns the node's datacenter.
func (n *Node) DC() types.DCID { return n.id }

// Sequencer returns the hosted sequencer service (nil without
// RoleSequencer).
func (n *Node) Sequencer() Service { return n.svc }

// Receiver returns the hosted receiver (nil without RolePartitions or in
// single-DC deployments).
func (n *Node) Receiver() *receiver.Receiver { return n.recv }

// Applied sums remote updates made visible by the hosted partitions.
func (n *Node) Applied() int64 {
	var total int64
	for _, p := range n.parts {
		total += p.Applied.Load()
	}
	return total
}

// NewClient opens a causal session against the hosted partition group.
func (n *Node) NewClient() *Client {
	if !n.roles.Has(RolePartitions) {
		panic("sequencer: NewClient on a node without RolePartitions")
	}
	return &Client{node: n, sess: session.New(session.Vector, n.cfg.DCs)}
}

// Close shuts the node down: the propagator flushes its final batches,
// then the receiver and the hosted sequencer service stop. The fabric is
// the caller's to close afterwards.
func (n *Node) Close() {
	if rem, ok := n.seq.(*Remote); ok {
		rem.Stop()
	}
	if n.svc != nil {
		n.svc.Stop()
	}
	if n.async != nil {
		// Stopping the services above released any worker blocked in a
		// Next call; queued-but-unstarted assigns are dropped (A-Seq
		// drops the causal link by design anyway).
		close(n.asyncStop)
		n.asyncWG.Wait()
	}
	if n.prop != nil {
		n.prop.ship.Close()
	}
	if n.recv != nil {
		n.recv.Close()
	}
}

// Store is a running sequencer-based causally consistent geo store, in the
// style of SwiftCloud and ChainReaction: a per-datacenter sequencer totally
// orders local updates, updates carry a vector with one sequence number
// per datacenter, and remote datacenters apply them in sequence order with
// trivially checkable dependencies. It composes one all-role Node per
// datacenter on a simulated-WAN fabric; multi-process deployments run the
// same Nodes over TCP.
type Store struct {
	cfg   StoreConfig
	net   *simnet.Network
	nodes []*Node
}

// NewStore builds and starts a deployment.
func NewStore(cfg StoreConfig) *Store {
	cfg.fill()
	s := &Store{cfg: cfg, net: simnet.New(cfg.Delay)}
	for m := 0; m < cfg.DCs; m++ {
		s.nodes = append(s.nodes, NewNode(NodeConfig{
			StoreConfig: cfg,
			DC:          types.DCID(m),
			Roles:       RoleAll,
			Fabric:      s.net,
		}))
	}
	return s
}

// propagator emits one datacenter's sequenced updates to every remote
// datacenter in dense sequence order. With S-Seq, updates can reach it
// slightly out of order (partitions race between obtaining the number and
// submitting), so it holds a reorder buffer keyed by sequence number.
type propagator struct {
	node *Node

	mu    sync.Mutex
	buf   map[uint64]*types.Update
	skips map[uint64]bool // numbers allocated but never tagged onto an update
	next  uint64

	ship *fabric.Batcher[*types.Update]
}

func newPropagator(n *Node) *propagator {
	return &propagator{
		node:  n,
		buf:   make(map[uint64]*types.Update),
		skips: make(map[uint64]bool),
		next:  1,
		ship:  fabric.NewBatcher[*types.Update](n.fab, propagatorAddr(n.id), n.cfg.ShipInterval),
	}
}

// submit hands over an update already tagged with its sequence number
// (u.TS holds the number, u.VTS the dependency vector of numbers).
func (p *propagator) submit(u *types.Update) {
	p.mu.Lock()
	p.buf[uint64(u.TS)] = u
	p.advanceLocked()
	p.mu.Unlock()
}

// skip marks a number as permanently unoccupied: its sequencer round
// trip timed out after the service allocated it, so no update will ever
// carry it. Without this the dense-order shipping loop would wait on it
// forever. Remote receivers tolerate the gap — they deduplicate and
// order by origin timestamp, not density.
func (p *propagator) skip(n uint64) {
	p.mu.Lock()
	if n >= p.next {
		p.skips[n] = true
		p.advanceLocked()
	}
	p.mu.Unlock()
}

func (p *propagator) advanceLocked() {
	for {
		if p.skips[p.next] {
			delete(p.skips, p.next)
			p.next++
			continue
		}
		next, ok := p.buf[p.next]
		if !ok {
			return
		}
		delete(p.buf, p.next)
		p.next++
		for k := 0; k < p.node.cfg.DCs; k++ {
			if types.DCID(k) == p.node.id {
				continue
			}
			p.ship.Add(fabric.ReceiverAddr(types.DCID(k)), next)
		}
	}
}

// spart is one partition server of a sequencer-based datacenter.
type spart struct {
	node  *Node
	id    types.PartitionID
	clock *hlc.Clock
	kv    *kvstore.Mem

	// Applied counts remote updates made visible.
	Applied metrics.Counter
}

func (p *spart) read(key types.Key) (types.Value, vclock.V) {
	v, ok := p.kv.Get(key)
	if !ok {
		return nil, nil
	}
	return v.Value, v.VTS
}

// update implements the sequencer-based write path. dep is the client's
// vector of per-datacenter sequence numbers. Under S-Seq a failed
// sequencer round trip (stopped service, remote timeout) fails the write:
// nothing was stored or propagated, and the caller must know.
func (p *spart) update(key types.Key, value types.Value, dep vclock.V) (vclock.V, error) {
	n := p.node
	m := int(n.id)
	u := &types.Update{
		Key:       key,
		Value:     value.Clone(),
		Origin:    n.id,
		Partition: p.id,
		CreatedAt: time.Now().UnixNano(),
	}

	// The stored version's LWW order uses the hybrid clock, which is
	// comparable across datacenters; sequence numbers are not.
	hts := p.clock.Tick(0)
	u.HTS = hts

	assign := func() (vclock.V, error) {
		seqno, err := n.seq.Next()
		if err != nil {
			return nil, err
		}
		vts := vclock.New(n.cfg.DCs)
		copy(vts, dep)
		vts.Set(m, hlc.Timestamp(seqno))
		u.TS = hlc.Timestamp(seqno)
		u.Seq = seqno
		u.VTS = vts.Clone()
		n.prop.submit(u)
		return vts, nil
	}

	if n.cfg.Mode == ASeq {
		// A-Seq: same total work, but the sequencer round trip happens
		// in parallel with applying the update; the client does not wait
		// (and causality is knowingly not captured). Against a remote
		// sequencer the detached round trip runs on the node's bounded
		// pool — when the queue is full (sequencer outage) the write
		// briefly blocks here rather than growing an unbounded goroutine
		// pile. Colocated, it keeps the original per-write goroutine.
		p.kv.Apply(key, types.Version{Value: u.Value, TS: hts, VTS: dep.Clone(), Origin: n.id})
		if n.async != nil {
			select {
			case n.async <- func() { _, _ = assign() }:
			case <-n.asyncStop:
			}
		} else {
			go func() { _, _ = assign() }()
		}
		return dep, nil
	}

	vts, err := assign()
	if err != nil {
		return nil, err
	}
	p.kv.Apply(key, types.Version{Value: u.Value, TS: hts, VTS: vts, Origin: n.id})
	return vts, nil
}

func (p *spart) applyRemote(u *types.Update, arrived time.Time) {
	p.clock.Observe(u.HTS)
	p.kv.Apply(u.Key, types.Version{Value: u.Value, TS: u.HTS, VTS: u.VTS, Origin: u.Origin})
	p.Applied.Inc()
	if p.node.cfg.OnVisible != nil {
		p.node.cfg.OnVisible(p.node.id, u, arrived)
	}
}

// Client is a causal session of per-datacenter sequence numbers.
type Client struct {
	node *Node
	sess *session.Session
}

// NewClient opens a session at datacenter dcID.
func (s *Store) NewClient(dcID types.DCID) *Client {
	return s.nodes[dcID].NewClient()
}

// Read performs a causal read against the local datacenter.
func (c *Client) Read(key types.Key) (types.Value, error) {
	p := c.node.parts[c.node.ring.Responsible(key)]
	val, vts := p.read(key)
	c.sess.ObserveRead(vts)
	return val, nil
}

// Update performs a write against the local datacenter, synchronously
// sequenced under S-Seq (a failed sequencer round trip fails the write),
// asynchronously under A-Seq.
func (c *Client) Update(key types.Key, value types.Value) error {
	p := c.node.parts[c.node.ring.Responsible(key)]
	vts, err := p.update(key, value, c.sess.Dep())
	if err != nil {
		return fmt.Errorf("sequencer: update %q dropped: %w", key, err)
	}
	c.sess.ObserveUpdate(vts)
	return nil
}

// Partition exposes a partition's kvstore for convergence checks.
func (s *Store) Partition(m types.DCID, p types.PartitionID) *kvstore.Mem {
	return s.nodes[m].parts[p].kv
}

// Node returns datacenter m's node, for role-level inspection.
func (s *Store) Node(m types.DCID) *Node { return s.nodes[m] }

// Network exposes the fabric.
func (s *Store) Network() *simnet.Network { return s.net }

// Close shuts the deployment down.
func (s *Store) Close() {
	for _, n := range s.nodes {
		n.Close()
	}
	s.net.Close()
}
