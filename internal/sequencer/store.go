package sequencer

import (
	"sync"
	"time"

	"eunomia/internal/hlc"
	"eunomia/internal/kvstore"
	"eunomia/internal/metrics"
	"eunomia/internal/receiver"
	"eunomia/internal/session"
	"eunomia/internal/simnet"
	"eunomia/internal/types"
	"eunomia/internal/vclock"
)

// StoreMode selects how the geo store consults the sequencer.
type StoreMode int

const (
	// SSeq is the faithful sequencer-based design (§2): every update
	// operation synchronously obtains its number before returning to the
	// client.
	SSeq StoreMode = iota
	// ASeq is the paper's deliberately bogus asynchronous variant: the
	// sequencer is contacted in parallel with applying the update. It
	// performs the same total work but removes the round trip from the
	// client's critical path — and does not actually capture causality.
	// It exists to quantify what sequencers cost purely by being
	// synchronous (Figure 1).
	ASeq
)

func (m StoreMode) String() string {
	if m == ASeq {
		return "A-Seq"
	}
	return "S-Seq"
}

// StoreConfig parameterises a sequencer-based geo store.
type StoreConfig struct {
	Mode       StoreMode
	DCs        int
	Partitions int
	Delay      simnet.DelayFunc
	// SequencerDelay emulates the intra-datacenter round trip to the
	// sequencer; zero leaves only the in-process channel round trip.
	SequencerDelay time.Duration
	// ChainReplicas > 1 replicates each datacenter's sequencer with
	// chain replication (Figure 3's FT sequencer).
	ChainReplicas int
	// ShipInterval batches inter-DC replication. Default 1ms.
	ShipInterval time.Duration
	// CheckInterval is the remote receiver's period. Default 1ms.
	CheckInterval time.Duration
	ClockFor      func(dc types.DCID, p types.PartitionID) hlc.PhysSource
	// OnVisible observes remote update visibility at a destination.
	OnVisible func(dest types.DCID, u *types.Update, arrived time.Time)
}

func (c *StoreConfig) fill() {
	if c.DCs <= 0 {
		c.DCs = 3
	}
	if c.Partitions <= 0 {
		c.Partitions = 8
	}
	if c.ShipInterval <= 0 {
		c.ShipInterval = time.Millisecond
	}
	if c.CheckInterval <= 0 {
		c.CheckInterval = time.Millisecond
	}
	if c.Delay == nil {
		c.Delay = simnet.LatencyMatrix(simnet.PaperRTTs(1), 0)
	}
}

// Store is a running sequencer-based causally consistent geo store, in the
// style of SwiftCloud and ChainReaction: a per-datacenter sequencer totally
// orders local updates, updates carry a vector with one sequence number
// per datacenter, and remote datacenters apply them in sequence order with
// trivially checkable dependencies.
type Store struct {
	cfg  StoreConfig
	net  *simnet.Network
	ring kvstore.Ring
	dcs  []*sdc
}

type sdc struct {
	id    types.DCID
	seq   Service
	prop  *propagator
	parts []*spart
	recv  *receiver.Receiver
}

type spart struct {
	store *Store
	dc    *sdc
	id    types.PartitionID
	clock *hlc.Clock
	kv    *kvstore.Store

	// Applied counts remote updates made visible.
	Applied metrics.Counter
}

// NewStore builds and starts a deployment.
func NewStore(cfg StoreConfig) *Store {
	cfg.fill()
	s := &Store{cfg: cfg, net: simnet.New(cfg.Delay), ring: kvstore.NewRing(cfg.Partitions)}
	for m := 0; m < cfg.DCs; m++ {
		d := &sdc{id: types.DCID(m)}
		if cfg.ChainReplicas > 1 {
			ch := NewChain(cfg.ChainReplicas)
			ch.Delay = cfg.SequencerDelay
			d.seq = ch
		} else {
			single := NewSingle()
			single.Delay = cfg.SequencerDelay
			d.seq = single
		}
		d.prop = newPropagator(s, types.DCID(m))
		for i := 0; i < cfg.Partitions; i++ {
			var src hlc.PhysSource
			if cfg.ClockFor != nil {
				src = cfg.ClockFor(types.DCID(m), types.PartitionID(i))
			}
			d.parts = append(d.parts, &spart{
				store: s,
				dc:    d,
				id:    types.PartitionID(i),
				clock: hlc.NewClock(src),
				kv:    kvstore.New(),
			})
		}
		if cfg.DCs > 1 {
			dd := d
			d.recv = receiver.New(receiver.Config{
				DC:            types.DCID(m),
				DCs:           cfg.DCs,
				CheckInterval: cfg.CheckInterval,
				Apply: func(u *types.Update, metaArrived time.Time) bool {
					p := dd.parts[s.ring.Responsible(u.Key)]
					p.applyRemote(u, metaArrived)
					return true
				},
			})
			recv := d.recv
			s.net.Register(simnet.ReceiverAddr(types.DCID(m)), func(msg simnet.Message) {
				ops, ok := msg.Payload.([]*types.Update)
				if !ok {
					return
				}
				recv.Enqueue(msg.From.DC, ops)
			})
		}
		s.dcs = append(s.dcs, d)
	}
	return s
}

// propagator emits one datacenter's sequenced updates to every remote
// datacenter in dense sequence order. With S-Seq, updates can reach it
// slightly out of order (partitions race between obtaining the number and
// submitting), so it holds a reorder buffer keyed by sequence number.
type propagator struct {
	store *Store
	dc    types.DCID

	mu   sync.Mutex
	buf  map[uint64]*types.Update
	next uint64

	ship *simnet.Batcher[*types.Update]
}

func newPropagator(s *Store, dc types.DCID) *propagator {
	p := &propagator{store: s, dc: dc, buf: make(map[uint64]*types.Update), next: 1}
	p.ship = newShipBatcher(s, dc)
	return p
}

// newShipBatcher wraps a Batcher that sends shipMsg batches to remote
// receivers in FIFO order.
func newShipBatcher(s *Store, dc types.DCID) *simnet.Batcher[*types.Update] {
	return simnet.NewBatcher[*types.Update](s.net, simnet.SequencerAddr(dc, 0), s.cfg.ShipInterval)
}

// submit hands over an update already tagged with its sequence number
// (u.TS holds the number, u.VTS the dependency vector of numbers).
func (p *propagator) submit(u *types.Update) {
	p.mu.Lock()
	p.buf[uint64(u.TS)] = u
	for {
		next, ok := p.buf[p.next]
		if !ok {
			break
		}
		delete(p.buf, p.next)
		p.next++
		for k := 0; k < p.store.cfg.DCs; k++ {
			if types.DCID(k) == p.dc {
				continue
			}
			p.ship.Add(simnet.ReceiverAddr(types.DCID(k)), next)
		}
	}
	p.mu.Unlock()
}

func (p *spart) read(key types.Key) (types.Value, vclock.V) {
	v, ok := p.kv.Get(key)
	if !ok {
		return nil, nil
	}
	return v.Value, v.VTS
}

// update implements the sequencer-based write path. dep is the client's
// vector of per-datacenter sequence numbers.
func (p *spart) update(key types.Key, value types.Value, dep vclock.V) vclock.V {
	m := int(p.dc.id)
	u := &types.Update{
		Key:       key,
		Value:     value.Clone(),
		Origin:    p.dc.id,
		Partition: p.id,
		CreatedAt: time.Now().UnixNano(),
	}

	// The stored version's LWW order uses the hybrid clock, which is
	// comparable across datacenters; sequence numbers are not.
	hts := p.clock.Tick(0)
	u.HTS = hts

	assign := func() (vclock.V, bool) {
		n, err := p.dc.seq.Next()
		if err != nil {
			return nil, false
		}
		vts := vclock.New(p.store.cfg.DCs)
		copy(vts, dep)
		vts.Set(m, hlc.Timestamp(n))
		u.TS = hlc.Timestamp(n)
		u.Seq = n
		u.VTS = vts.Clone()
		p.dc.prop.submit(u)
		return vts, true
	}

	if p.store.cfg.Mode == ASeq {
		// A-Seq: same total work, but the sequencer round trip happens
		// in parallel with applying the update; the client does not wait
		// (and causality is knowingly not captured).
		p.kv.Apply(key, types.Version{Value: u.Value, TS: hts, VTS: dep.Clone(), Origin: p.dc.id})
		go assign()
		return dep
	}

	vts, ok := assign()
	if !ok {
		return dep
	}
	p.kv.Apply(key, types.Version{Value: u.Value, TS: hts, VTS: vts, Origin: p.dc.id})
	return vts
}

func (p *spart) applyRemote(u *types.Update, arrived time.Time) {
	p.clock.Observe(u.HTS)
	p.kv.Apply(u.Key, types.Version{Value: u.Value, TS: u.HTS, VTS: u.VTS, Origin: u.Origin})
	p.Applied.Inc()
	if p.store.cfg.OnVisible != nil {
		p.store.cfg.OnVisible(p.dc.id, u, arrived)
	}
}

// Client is a causal session of per-datacenter sequence numbers.
type Client struct {
	store *Store
	dc    *sdc
	sess  *session.Session
}

// NewClient opens a session at datacenter dcID.
func (s *Store) NewClient(dcID types.DCID) *Client {
	return &Client{store: s, dc: s.dcs[dcID], sess: session.New(session.Vector, s.cfg.DCs)}
}

// Read performs a causal read against the local datacenter.
func (c *Client) Read(key types.Key) (types.Value, error) {
	p := c.dc.parts[c.store.ring.Responsible(key)]
	val, vts := p.read(key)
	c.sess.ObserveRead(vts)
	return val, nil
}

// Update performs a write against the local datacenter, synchronously
// sequenced under S-Seq, asynchronously under A-Seq.
func (c *Client) Update(key types.Key, value types.Value) error {
	p := c.dc.parts[c.store.ring.Responsible(key)]
	vts := p.update(key, value, c.sess.Dep())
	c.sess.ObserveUpdate(vts)
	return nil
}

// Partition exposes a partition's kvstore for convergence checks.
func (s *Store) Partition(m types.DCID, p types.PartitionID) *kvstore.Store {
	return s.dcs[m].parts[p].kv
}

// Network exposes the fabric.
func (s *Store) Network() *simnet.Network { return s.net }

// Close shuts the deployment down.
func (s *Store) Close() {
	for _, d := range s.dcs {
		d.seq.Stop()
		d.prop.ship.Close()
		if d.recv != nil {
			d.recv.Close()
		}
	}
	s.net.Close()
}
