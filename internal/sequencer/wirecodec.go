package sequencer

// Zero-reflection wire codecs (internal/wire) for the number-service
// round trip. Field order is each tag's versioning contract — append new
// fields, never reorder (DESIGN.md "The wire format").

import (
	"eunomia/internal/wire"
)

// WireTag implements wire.Marshaler.
func (m NextMsg) WireTag() wire.Tag { return wire.TagNext }

// AppendWire implements wire.Marshaler.
func (m NextMsg) AppendWire(b []byte) []byte {
	return wire.AppendUvarint(b, m.ID)
}

// WireTag implements wire.Marshaler.
func (m NextAckMsg) WireTag() wire.Tag { return wire.TagNextAck }

// AppendWire implements wire.Marshaler. Epoch is a UnixNano instant, so
// it rides fixed-width per the codec convention.
func (m NextAckMsg) AppendWire(b []byte) []byte {
	b = wire.AppendUvarint(b, m.ID)
	b = wire.AppendUvarint(b, m.N)
	b = wire.AppendUint64(b, m.Epoch)
	return wire.AppendString(b, m.Err)
}

func init() {
	wire.Register(wire.TagNext, func(d *wire.Dec) any {
		return NextMsg{ID: d.Uvarint()}
	})
	wire.Register(wire.TagNextAck, func(d *wire.Dec) any {
		return NextAckMsg{ID: d.Uvarint(), N: d.Uvarint(), Epoch: d.Uint64(), Err: d.String()}
	})
}

var (
	_ wire.Marshaler = NextMsg{}
	_ wire.Marshaler = NextAckMsg{}
)
