package wal

import (
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sync"
	"syscall"
)

// Store is a snapshot+log pair under one directory: the durable state of
// one component. Appends go to an append-only record log (wal.Log);
// Snapshot atomically replaces the snapshot file with a compacted record
// stream and truncates the log at the snapshot boundary, bounding replay
// work and disk usage.
//
// The snapshot file uses the same record framing as the log, so Replay is
// one code path: snapshot records first, then log records, in append
// order. A crash between the snapshot rename and the log truncation
// replays log records already folded into the snapshot — every Store
// consumer's replay must therefore be idempotent (all of ours are: the
// kvstore applies under LWW, watermarks advance by max).
//
// Layout: <dir>/snapshot (whole, checksummed records; atomically renamed
// into place) and <dir>/log (torn tail truncated on open).
type Store struct {
	dir    string
	policy SyncPolicy

	// mu serializes appends against snapshotting, so a snapshot never
	// truncates records whose effects its state capture missed. Callers
	// whose state mutation happens after Append (e.g. a partition storing
	// the version it just logged) must bracket the pair with their own
	// lock and take it inside the Snapshot state callback.
	mu  sync.Mutex
	log *Log
}

const (
	snapName    = "snapshot"
	logName     = "log"
	versionName = "FORMAT"
)

// FormatVersion is the on-disk record format generation. Version 2 is
// the wire-codec layout (varints, compact timestamps — internal/wire);
// version 1 was the fixed-width layout it replaced. Record encodings
// carry no self-describing structure, so a store written by one
// generation must not be replayed by another: the guard turns what would
// be ErrBadRecord noise (or, worse, a silently mis-decoded watermark)
// into one loud, actionable open error.
const FormatVersion = 2

// ErrFormatVersion reports a store written by a different record-format
// generation.
var ErrFormatVersion = fmt.Errorf("wal: incompatible store format (this binary writes version %d); recover the data dir with the binary that wrote it, or discard it and resync", FormatVersion)

// DefaultSnapshotThreshold is the log size beyond which MaybeSnapshot
// compacts.
const DefaultSnapshotThreshold = 1 << 20

// OpenStore opens (creating if needed) the store directory. The log's torn
// tail, if any, is truncated; the snapshot is validated lazily by Replay.
// A directory stamped by a different format generation refuses to open
// with ErrFormatVersion.
func OpenStore(dir string, policy SyncPolicy) (*Store, error) {
	return OpenStoreOptions(dir, Options{Policy: policy})
}

// OpenStoreOptions is OpenStore with the full option set (group-commit
// knobs, sync metrics); see Options.
func OpenStoreOptions(dir string, o Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := checkFormat(dir); err != nil {
		return nil, err
	}
	log, err := OpenOptions(filepath.Join(dir, logName), o)
	if err != nil {
		return nil, err
	}
	return &Store{dir: dir, policy: o.Policy, log: log}, nil
}

// checkFormat stamps a fresh store directory with the current format
// version and rejects directories stamped with any other. Pre-versioning
// directories (records exist, no stamp) are version 1 by definition and
// rejected the same way. The stamp follows the snapshot's atomic-rename
// discipline (write tmp, fsync, rename, fsync dir), and an empty stamp
// counts as absent, so a crash mid-stamp can never brick a directory
// this binary wrote — the retry just stamps again.
func checkFormat(dir string) error {
	path := filepath.Join(dir, versionName)
	raw, err := os.ReadFile(path)
	switch {
	case err == nil && len(raw) > 0:
		if string(raw) != fmt.Sprintf("%d\n", FormatVersion) {
			return fmt.Errorf("%w: %s holds %q", ErrFormatVersion, path, raw)
		}
		return nil
	case err == nil || os.IsNotExist(err):
		if _, serr := os.Stat(filepath.Join(dir, logName)); serr == nil {
			// Records without a stamp: a pre-versioning (v1) store.
			return fmt.Errorf("%w: %s has records but no version stamp (format 1)", ErrFormatVersion, dir)
		}
		if _, serr := os.Stat(filepath.Join(dir, snapName)); serr == nil {
			return fmt.Errorf("%w: %s has a snapshot but no version stamp (format 1)", ErrFormatVersion, dir)
		}
		return writeFormat(dir, path)
	default:
		return fmt.Errorf("wal: %w", err)
	}
}

// writeFormat durably installs the version stamp: tmp + fsync + rename +
// dir fsync, so the stamp is either wholly present or wholly absent.
func writeFormat(dir, path string) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := fmt.Fprintf(f, "%d\n", FormatVersion); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: installing format stamp: %w", err)
	}
	return syncDir(dir)
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Policy returns the store's sync policy.
func (s *Store) Policy() SyncPolicy { return s.policy }

// Append writes one record to the live log with the policy's durability
// guarantee on return (see Log.Append). Under SyncGroupCommit the
// durability wait happens after the store lock is released, so concurrent
// appenders coalesce into one group commit instead of serializing one
// fsync each behind the lock.
func (s *Store) Append(rec []byte) error {
	if s.policy == SyncGroupCommit {
		s.mu.Lock()
		lsn, err := s.log.AppendNoWait(rec)
		s.mu.Unlock()
		if err != nil {
			return err
		}
		return s.log.WaitDurable(lsn)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log.Append(rec)
}

// AppendNoWait writes one record and returns its LSN without waiting for
// deferred durability; see Log.AppendNoWait. Single-goroutine pipelines
// use it so a group-commit store never throttles them to one fsync per
// record, and gate their acknowledgements on WaitDurable/DurableLSN.
func (s *Store) AppendNoWait(rec []byte) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log.AppendNoWait(rec)
}

// WaitDurable blocks until the record at lsn is on disk.
func (s *Store) WaitDurable(lsn uint64) error { return s.log.WaitDurable(lsn) }

// AppendedLSN returns the newest appended record's LSN.
func (s *Store) AppendedLSN() uint64 { return s.log.AppendedLSN() }

// DurableLSN returns the newest on-disk record's LSN.
func (s *Store) DurableLSN() uint64 { return s.log.DurableLSN() }

// OnCommit registers fn to observe durability advances; see Log.OnCommit
// for the (strict) constraints on fn.
func (s *Store) OnCommit(fn func(durable uint64)) { s.log.OnCommit(fn) }

// SyncErr returns the log's sticky sync error, nil while durability
// holds; see Log.SyncErr.
func (s *Store) SyncErr() error { return s.log.SyncErr() }

// Flush forces appended records to stable storage.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log.Flush()
}

// LogSize reports the live log's size in bytes — the replay work a crash
// right now would cost beyond the snapshot.
func (s *Store) LogSize() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log.Size()
}

// Replay invokes fn for every durable record: the snapshot's, then the
// log's, in append order. Call before the first Append (recovery).
func (s *Store) Replay(fn func(rec []byte) error) error {
	if err := Replay(filepath.Join(s.dir, snapName), fn); err != nil {
		return err
	}
	return Replay(filepath.Join(s.dir, logName), fn)
}

// Snapshot atomically replaces the snapshot with the record stream state
// emits and truncates the log. state runs with appends blocked; it must
// emit records that rebuild everything appended so far (callers capture
// their in-memory state inside it, under their own locks, so the capture
// and the truncation boundary agree).
//
// Every failure — a capture that cannot be written, an install that
// cannot be made durable, and in particular a log truncation that fails
// after the snapshot is already in place — is returned to the caller and
// counted in SyncMetrics.CompactErrors (eunomia_wal_compact_errors_total):
// a swallowed truncate would leave the log growing behind every future
// threshold check while replay work silently compounds.
func (s *Store) Snapshot(state func(emit func(rec []byte) error) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()

	fail := func(err error) error {
		if m := s.log.metrics; m != nil {
			m.CompactErrors.Inc()
		}
		return err
	}
	tmp := filepath.Join(s.dir, snapName+".tmp")
	snap, err := Open(tmp, SyncOnFlush)
	if err != nil {
		return fail(err)
	}
	// A leftover tmp from a crashed snapshot attempt must not prepend
	// stale records to this one.
	if err := snap.truncateTo(0); err != nil {
		snap.Close()
		return fail(err)
	}
	if err := state(snap.Append); err != nil {
		snap.Close()
		os.Remove(tmp)
		return fail(err)
	}
	if err := snap.Close(); err != nil {
		os.Remove(tmp)
		return fail(err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapName)); err != nil {
		os.Remove(tmp)
		return fail(fmt.Errorf("wal: installing snapshot: %w", err))
	}
	// Strict here, unlike the tolerant logging path: an undurable rename
	// plus a truncated log could lose the only copy of the records.
	if err := syncDirStrict(s.dir); err != nil {
		return fail(fmt.Errorf("wal: snapshot install not durable: %w", err))
	}
	// The snapshot covers every appended record; drop the log. A crash
	// before this truncation replays the log on top of the snapshot,
	// which idempotent consumers tolerate.
	if err := s.log.truncateTo(0); err != nil {
		return fail(fmt.Errorf("wal: snapshot installed but log truncation failed (replay tail retained): %w", err))
	}
	return nil
}

// MaybeSnapshot compacts when the live log has outgrown threshold
// (DefaultSnapshotThreshold when <= 0). It reports whether it snapshotted.
func (s *Store) MaybeSnapshot(threshold int64, state func(emit func(rec []byte) error) error) (bool, error) {
	if threshold <= 0 {
		threshold = DefaultSnapshotThreshold
	}
	if s.LogSize() < threshold {
		return false, nil
	}
	if err := s.Snapshot(state); err != nil {
		return false, err
	}
	return true, nil
}

// Close flushes and closes the live log.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log.Close()
}

// truncateTo rewinds the log to off bytes and positions for appending;
// Store uses it to reset the log at snapshot boundaries. Every record
// appended so far is then durable — the snapshot that triggered the
// truncation holds it — so the durable watermark advances to the appended
// LSN and parked group-commit waiters complete.
func (l *Log) truncateTo(off int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.shutdown || l.closed {
		return ErrClosed
	}
	// Discard buffered appends (they are covered by the snapshot too).
	l.w.Reset(l.f)
	if err := l.f.Truncate(off); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := l.f.Seek(off, io.SeekStart); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.size = off
	l.advanceDurableLocked(l.appended)
	return nil
}

// syncDirWarned remembers directories whose fsync already failed once, so
// a filesystem that genuinely cannot sync logs one line, not one per
// snapshot.
var syncDirWarned sync.Map

// syncDir fsyncs a directory so a rename within it is durable. Filesystems
// that reject directory fsync outright (EINVAL/ENOTSUP — the rename is
// atomic either way, its durability rides the next metadata flush) are
// silently tolerated; any other failure is a disk actually refusing writes
// and is logged once per directory so it cannot hide behind the tolerance.
func syncDir(dir string) error {
	if err := syncDirStrict(dir); err != nil {
		if _, dup := syncDirWarned.LoadOrStore(dir, struct{}{}); !dup {
			log.Printf("wal: directory fsync of %s failed (renames stay atomic; their durability waits for the next metadata flush): %v", dir, err)
		}
	}
	return nil
}

// syncDirStrict is syncDir without the log-and-tolerate: EINVAL/ENOTSUP
// still pass (the filesystem cannot sync directories at all), but a real
// fsync failure is returned. The snapshot-compaction path uses it — there
// the rename's durability gates a log truncation.
func syncDirStrict(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil &&
		!errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}
