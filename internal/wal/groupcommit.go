package wal

// Group commit: the SyncGroupCommit policy's committer goroutine and the
// async append/wait API the release path's durability-gated acking rides
// on.
//
// The classic idea (System R's group commit, every modern database's WAL):
// an fsync costs the same whether it covers one record or a hundred, so
// while one fsync is in flight, let every new append accumulate in the
// write buffer; when the sync returns, issue one more covering all of
// them and complete all of their durability waits at once. Blocking
// Append keeps SyncEachAppend's contract — the caller's record is on disk
// when Append returns — while the fsyncs-per-append ratio drops with
// concurrency instead of staying pinned at 1.
//
// Single-goroutine pipelines (the applier, the receiver's fabric handler)
// must not block once per record or the coalescing collapses back to one
// record per sync; they use AppendNoWait to buffer and keep going, and
// gate their downstream acknowledgements on DurableLSN/WaitDurable — the
// two-phase barrier geostore's release path builds (partition records
// durable first, then the stream position that vouches for them).

import (
	"fmt"
	"time"

	"eunomia/internal/metrics"
)

// DefaultGroupMaxBatch caps how many records accumulate before the
// committer cuts an accumulation delay short. Irrelevant at the default
// zero delay; a backstop against unbounded buffering when a delay is set.
const DefaultGroupMaxBatch = 4096

// Options parameterizes OpenOptions/OpenStoreOptions.
type Options struct {
	Policy SyncPolicy
	// GroupDelay (SyncGroupCommit only) is how long the committer waits
	// after waking before it syncs, widening batches at the cost of ack
	// latency. The zero default syncs as soon as the previous sync
	// returns: batches form naturally from whatever arrived while the
	// disk was busy, and a lone appender still pays only one fsync of
	// latency.
	GroupDelay time.Duration
	// GroupMaxBatch (SyncGroupCommit only) cuts GroupDelay short once
	// this many records are waiting. DefaultGroupMaxBatch when <= 0.
	GroupMaxBatch int
	// Metrics, optional, receives fsync latency and commit batch sizes.
	Metrics *SyncMetrics
	// InjectSync, optional, is the fault-injection seam: it is consulted
	// immediately before every fsync, and a non-nil return is treated
	// exactly like the fsync failing with that error (sticky sync error,
	// failed waiters) without touching the file. internal/faults wires
	// its per-component armed errors through here.
	InjectSync func() error
}

func (o Options) withDefaults() Options {
	if o.GroupDelay < 0 {
		o.GroupDelay = 0
	}
	if o.GroupMaxBatch <= 0 {
		o.GroupMaxBatch = DefaultGroupMaxBatch
	}
	return o
}

// SyncMetrics collects durability observability for one log: every fsync's
// latency and, per durability advance, how many records it covered —
// Records/Commits is the realized group-commit batch size (1.0 means no
// coalescing, i.e. SyncEachAppend economics). The zero counters are ready
// to use; Fsync may be nil to skip latency recording.
type SyncMetrics struct {
	Fsync   *metrics.Histogram
	Commits metrics.Counter
	Records metrics.Counter
	// SyncErrors counts sticky sync-error transitions: it advances once
	// when a log's first fsync (or injected fault) fails and durability
	// stops being promisable. Exported as eunomia_wal_sync_errors_total;
	// a nonzero value also fails the frontend /healthz.
	SyncErrors metrics.Counter
	// CompactErrors counts failed snapshot compactions (Store.Snapshot):
	// a capture that could not be written, a snapshot that could not be
	// installed durably, or — the dangerous one — a log truncation that
	// failed after the snapshot was installed, which leaves the replay
	// tail growing behind the operator's back. Exported as
	// eunomia_wal_compact_errors_total.
	CompactErrors metrics.Counter
}

// NewSyncMetrics returns a SyncMetrics with the latency histogram armed.
func NewSyncMetrics() *SyncMetrics {
	return &SyncMetrics{Fsync: metrics.NewHistogram()}
}

// AppendNoWait writes one record and returns its LSN without waiting for
// group durability: under SyncGroupCommit the record is buffered and the
// committer woken, under SyncOnFlush it is buffered for the next Flush,
// and under SyncEachAppend it is synced inline (that policy has no
// deferred window to ride). Callers that must not acknowledge past disk
// gate on WaitDurable(lsn) or DurableLSN().
func (l *Log) AppendNoWait(payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	lsn, err := l.appendLocked(payload)
	if err != nil {
		return 0, err
	}
	switch l.policy {
	case SyncEachAppend:
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	case SyncGroupCommit:
		l.pokeCommitter()
	}
	return lsn, nil
}

// WaitDurable blocks until the record at lsn is on disk. Under policies
// without a committer it forces the sync itself (one Flush) instead of
// waiting for a cadence that may never come.
func (l *Log) WaitDurable(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.durable >= lsn {
		return nil
	}
	if l.policy != SyncGroupCommit {
		if l.shutdown || l.closed {
			return ErrClosed
		}
		return l.syncLocked()
	}
	l.pokeCommitter()
	return l.waitDurableLocked(lsn)
}

// AppendedLSN returns the LSN of the newest appended record.
func (l *Log) AppendedLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended
}

// DurableLSN returns the LSN of the newest record known to be on disk.
func (l *Log) DurableLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable
}

// OnCommit registers fn to observe every durability advance. fn runs with
// the log's lock held: it must be non-blocking (poke a channel, bump a
// counter) and must not re-enter the Log or its Store.
func (l *Log) OnCommit(fn func(durable uint64)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.onCommit = append(l.onCommit, fn)
}

// SyncErr returns the sticky sync error, nil while the log's durability
// promise holds. A log whose SyncErr is set keeps serving reads and
// buffered appends but can never acknowledge durability again; the
// owning component surfaces it (metrics, /healthz) and the node needs a
// restart onto a healthy disk.
func (l *Log) SyncErr() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncErr
}

// pokeCommitter wakes the committer goroutine; the buffered channel makes
// repeat pokes free.
func (l *Log) pokeCommitter() {
	if l.wake == nil {
		return
	}
	select {
	case l.wake <- struct{}{}:
	default:
	}
}

// committer is the SyncGroupCommit worker: woken by appends, it optionally
// waits out the accumulation delay, then folds everything buffered so far
// into one fsync and completes the covered waits. While its fsync is in
// flight the log's lock is free, so new appends keep accumulating — that
// overlap is where the batching comes from.
func (l *Log) committer() {
	defer close(l.stopped)
	for {
		select {
		case <-l.stop:
			return
		case <-l.wake:
		}
		if l.groupDelay > 0 {
			l.mu.Lock()
			pending := l.appended - l.durable
			l.mu.Unlock()
			if pending < uint64(l.groupMax) {
				timer := time.NewTimer(l.groupDelay)
				select {
				case <-l.stop:
					timer.Stop()
					return
				case <-timer.C:
				}
			}
		}
		l.commitOnce()
	}
}

// commitOnce performs one group commit: flush the buffer under the lock,
// fsync outside it, then advance the durable watermark to the appended
// LSN captured at flush time (later appends ride the next commit).
func (l *Log) commitOnce() {
	l.mu.Lock()
	if l.shutdown || l.closed || l.syncErr != nil || l.appended == l.durable {
		l.mu.Unlock()
		return
	}
	target := l.appended
	if err := l.w.Flush(); err != nil {
		l.failCommitLocked(err)
		l.mu.Unlock()
		return
	}
	l.mu.Unlock()

	start := time.Now()
	err := l.sync()
	elapsed := time.Since(start)

	l.mu.Lock()
	if l.metrics != nil && l.metrics.Fsync != nil {
		l.metrics.Fsync.RecordDuration(elapsed)
	}
	if err != nil {
		l.failCommitLocked(err)
	} else {
		l.advanceDurableLocked(target)
	}
	l.mu.Unlock()
}

// failCommitLocked records the sticky sync error and fails every waiter:
// durability can no longer be promised, and pretending otherwise by
// retrying silently would let acknowledgements pass a failed disk. The
// first failure advances the SyncErrors counter (the transition is what
// operators alert on; later calls just return the sticky error).
func (l *Log) failCommitLocked(err error) error {
	if l.syncErr == nil {
		l.syncErr = fmt.Errorf("wal: %w", err)
		if l.metrics != nil {
			l.metrics.SyncErrors.Inc()
		}
	}
	l.commit.Broadcast()
	return l.syncErr
}

// abandon simulates a crash for tests: the committer stops, the file
// handle closes, and — unlike Close — nothing buffered is flushed, so the
// unsynced tail is lost exactly as a kill -9 would lose it.
func (l *Log) abandon() {
	l.mu.Lock()
	if l.shutdown {
		l.mu.Unlock()
		return
	}
	l.shutdown = true
	l.mu.Unlock()
	if l.stop != nil {
		close(l.stop)
		<-l.stopped
	}
	l.mu.Lock()
	l.closed = true
	l.commit.Broadcast()
	_ = l.f.Close()
	l.mu.Unlock()
}
