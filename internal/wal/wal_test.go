package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"eunomia/internal/hlc"
	"eunomia/internal/types"
	"eunomia/internal/vclock"
)

func tmpLog(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "partition.wal")
}

func replayAll(t *testing.T, path string) [][]byte {
	t.Helper()
	var out [][]byte
	if err := Replay(path, func(p []byte) error {
		out = append(out, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := tmpLog(t)
	l, err := Open(path, SyncOnFlush)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 100; i++ {
		rec := []byte(fmt.Sprintf("record-%04d", i))
		want = append(want, rec)
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, path)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestReplayMissingFileIsEmpty(t *testing.T) {
	if err := Replay(filepath.Join(t.TempDir(), "absent.wal"), func([]byte) error {
		t.Fatal("callback invoked for a missing file")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestReopenAppends(t *testing.T) {
	path := tmpLog(t)
	for round := 0; round < 3; round++ {
		l, err := Open(path, SyncEachAppend)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Append([]byte{byte(round)}); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	got := replayAll(t, path)
	if len(got) != 3 || got[2][0] != 2 {
		t.Fatalf("reopen lost records: %v", got)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	path := tmpLog(t)
	l, err := Open(path, SyncEachAppend)
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("durable-1"))
	l.Append([]byte("durable-2"))
	l.Close()

	// Simulate a crash mid-append: garbage half-record at the tail.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x09, 0x00, 0x00, 0x00, 0xde, 0xad}) // truncated header+cksum
	f.Close()

	l2, err := Open(path, SyncEachAppend)
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append([]byte("durable-3")); err != nil {
		t.Fatal(err)
	}
	l2.Close()

	got := replayAll(t, path)
	if len(got) != 3 {
		t.Fatalf("replayed %d records, want 3 (torn tail must be discarded)", len(got))
	}
	if string(got[2]) != "durable-3" {
		t.Fatalf("append after recovery corrupted: %q", got[2])
	}
}

func TestCorruptPayloadEndsReplay(t *testing.T) {
	path := tmpLog(t)
	l, _ := Open(path, SyncEachAppend)
	l.Append([]byte("good"))
	l.Append([]byte("soon-corrupt"))
	l.Close()

	// Flip a payload byte of the second record.
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xff
	os.WriteFile(path, data, 0o644)

	got := replayAll(t, path)
	if len(got) != 1 || string(got[0]) != "good" {
		t.Fatalf("corrupt record not fenced: %q", got)
	}
}

func TestClosedLogErrors(t *testing.T) {
	path := tmpLog(t)
	l, _ := Open(path, SyncOnFlush)
	l.Close()
	if err := l.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("Append after Close: %v", err)
	}
	if err := l.Flush(); err != ErrClosed {
		t.Fatalf("Flush after Close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestSizeTracksAppends(t *testing.T) {
	path := tmpLog(t)
	l, _ := Open(path, SyncOnFlush)
	defer l.Close()
	if l.Size() != 0 {
		t.Fatal("fresh log not empty")
	}
	l.Append(make([]byte, 100))
	if l.Size() != 108 {
		t.Fatalf("Size = %d, want 108", l.Size())
	}
}

func TestUpdateRecordRoundTrip(t *testing.T) {
	u := &types.Update{
		Key:       "user:42",
		Value:     types.Value("payload bytes"),
		Origin:    2,
		Partition: 5,
		Seq:       99,
		TS:        123456789,
		HTS:       987654321,
		VTS:       vclock.V{10, 20, 30},
		CreatedAt: 1718200000000,
	}
	rec := EncodeUpdate(KindLocal, u)
	kind, got, err := DecodeUpdate(rec)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindLocal {
		t.Fatalf("kind = %d", kind)
	}
	if !reflect.DeepEqual(u, got) {
		t.Fatalf("round trip mismatch:\n  in : %+v\n  out: %+v", u, got)
	}
}

func TestUpdateRecordRoundTripProperty(t *testing.T) {
	f := func(key string, value []byte, origin uint8, part uint8, seq uint64,
		ts, hts uint64, vts []uint64, remote bool) bool {
		u := &types.Update{
			Key:       types.Key(key),
			Origin:    types.DCID(origin % 8),
			Partition: types.PartitionID(part),
			Seq:       seq,
			TS:        hlcTS(ts),
			HTS:       hlcTS(hts),
		}
		if len(value) > 0 {
			u.Value = types.Value(value)
		}
		if len(vts) > 0 {
			if len(vts) > 64 {
				vts = vts[:64]
			}
			u.VTS = make(vclock.V, len(vts))
			for i, x := range vts {
				u.VTS[i] = hlcTS(x)
			}
		}
		kind := KindLocal
		if remote {
			kind = KindRemote
		}
		k2, got, err := DecodeUpdate(EncodeUpdate(kind, u))
		return err == nil && k2 == kind && reflect.DeepEqual(u, got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, _, err := DecodeUpdate(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, _, err := DecodeUpdate([]byte{0xff, 1, 2, 3}); err == nil {
		t.Fatal("bad kind accepted")
	}
	rec := EncodeUpdate(KindLocal, &types.Update{Key: "k"})
	if _, _, err := DecodeUpdate(rec[:len(rec)-1]); err == nil {
		t.Fatal("truncated record accepted")
	}
	if _, _, err := DecodeUpdate(append(rec, 0)); err == nil {
		t.Fatal("over-long record accepted")
	}
}

func hlcTS(x uint64) hlc.Timestamp { return hlc.Timestamp(x) }

// FuzzDecodeUpdate hardens the record parser: arbitrary bytes must never
// panic, and every record the encoder produces must round-trip.
func FuzzDecodeUpdate(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{KindLocal})
	f.Add(EncodeUpdate(KindLocal, &types.Update{Key: "k", Value: types.Value("v")}))
	f.Add(EncodeUpdate(KindRemote, &types.Update{
		Key: "key", VTS: vclock.V{1, 2, 3}, TS: 9, Seq: 2,
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, u, err := DecodeUpdate(data)
		if err != nil {
			return
		}
		// Whatever decoded must re-encode to an equivalent record.
		re := EncodeUpdate(kind, u)
		k2, u2, err2 := DecodeUpdate(re)
		if err2 != nil || k2 != kind {
			t.Fatalf("re-encode broke: %v %v", k2, err2)
		}
		if !reflect.DeepEqual(u, u2) {
			t.Fatalf("round-trip mismatch:\n%+v\n%+v", u, u2)
		}
	})
}
