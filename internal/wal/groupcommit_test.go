package wal

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestGroupCommitDurabilityOrdering is the ordering contract: no
// durability future completes before its record is synced. Concurrent
// appenders each verify, the moment their wait returns, that the durable
// watermark covers their LSN and that a replay of the live file — which
// sees exactly the bytes a crash at this instant would leave — already
// contains their record.
func TestGroupCommitDurabilityOrdering(t *testing.T) {
	path := tmpLog(t)
	l, err := OpenOptions(path, Options{Policy: SyncGroupCommit})
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				rec := []byte(fmt.Sprintf("w%02d-%04d", w, i))
				lsn, err := l.AppendNoWait(rec)
				if err != nil {
					errs <- err
					return
				}
				if err := l.WaitDurable(lsn); err != nil {
					errs <- err
					return
				}
				if d := l.DurableLSN(); d < lsn {
					errs <- fmt.Errorf("wait for lsn %d returned at durable %d", lsn, d)
					return
				}
				if a := l.AppendedLSN(); l.DurableLSN() > a {
					errs <- fmt.Errorf("durable %d beyond appended %d", l.DurableLSN(), a)
					return
				}
				if i%8 != 0 {
					continue
				}
				// A crash right now must recover this record: replay the
				// live file and look for it.
				found := false
				if err := Replay(path, func(p []byte) error {
					if bytes.Equal(p, rec) {
						found = true
					}
					return nil
				}); err != nil {
					errs <- err
					return
				}
				if !found {
					errs <- fmt.Errorf("record %q acknowledged durable but absent from disk", rec)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(replayAll(t, path)); got != workers*perWorker {
		t.Fatalf("replayed %d records, want %d", got, workers*perWorker)
	}
}

// TestGroupCommitCoalescesConcurrentAppends pins the point of the policy:
// with concurrent blocking appenders and an accumulation window, the
// committer folds many records into each fsync, so commits stay well
// below records.
func TestGroupCommitCoalescesConcurrentAppends(t *testing.T) {
	m := NewSyncMetrics()
	l, err := OpenOptions(tmpLog(t), Options{
		Policy: SyncGroupCommit, GroupDelay: 2 * time.Millisecond, Metrics: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := m.Records.Load(); got != workers*perWorker {
		t.Fatalf("metrics counted %d records, want %d", got, workers*perWorker)
	}
	if c, r := m.Commits.Load(), m.Records.Load(); c >= r {
		t.Fatalf("no coalescing: %d commits for %d records", c, r)
	}
}

// TestGroupCommitCrashLosesAtMostUncommittedGroup is the loss-window
// bound: a crash loses only records no group commit has covered yet —
// everything at or below the durable watermark replays.
func TestGroupCommitCrashLosesAtMostUncommittedGroup(t *testing.T) {
	path := tmpLog(t)
	// A delay far beyond the test's lifetime freezes the committer in its
	// accumulation window, so the second half stays deliberately unsynced.
	l, err := OpenOptions(path, Options{
		Policy: SyncGroupCommit, GroupDelay: time.Hour, GroupMaxBatch: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	const committed, lost = 50, 50
	for i := 0; i < committed; i++ {
		if _, err := l.AppendNoWait([]byte(fmt.Sprintf("committed-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < lost; i++ {
		if _, err := l.AppendNoWait([]byte(fmt.Sprintf("uncommitted-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if a, d := l.AppendedLSN(), l.DurableLSN(); a != committed+lost || d != committed {
		t.Fatalf("watermarks appended=%d durable=%d, want %d/%d", a, d, committed+lost, committed)
	}
	l.abandon() // crash: no flush, no goodbye
	got := replayAll(t, path)
	if len(got) != committed {
		t.Fatalf("replayed %d records, want exactly the %d committed (crash must lose only the open group)", len(got), committed)
	}
	for i, rec := range got {
		if want := fmt.Sprintf("committed-%04d", i); string(rec) != want {
			t.Fatalf("record %d = %q, want %q", i, rec, want)
		}
	}
}

// TestGroupCommitSnapshotMarksDurable: a snapshot covers every appended
// record, so truncation advances the durable watermark and completes
// parked waiters instead of stranding them behind a committer whose
// window never fires.
func TestGroupCommitSnapshotMarksDurable(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStoreOptions(dir, Options{
		Policy: SyncGroupCommit, GroupDelay: time.Hour, GroupMaxBatch: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var lsn uint64
	for i := 0; i < 10; i++ {
		if lsn, err = s.AppendNoWait([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if d := s.DurableLSN(); d != 0 {
		t.Fatalf("durable %d before any commit", d)
	}
	if err := s.Snapshot(func(emit func([]byte) error) error {
		return emit([]byte("compacted"))
	}); err != nil {
		t.Fatal(err)
	}
	if d := s.DurableLSN(); d < lsn {
		t.Fatalf("snapshot left durable at %d, want >= %d", d, lsn)
	}
	if err := s.WaitDurable(lsn); err != nil { // must return immediately
		t.Fatal(err)
	}
}

// TestGroupCommitClosedErrors: the async API honors the closed contract.
func TestGroupCommitClosedErrors(t *testing.T) {
	l, err := OpenOptions(tmpLog(t), Options{Policy: SyncGroupCommit})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendNoWait([]byte("x")); err != ErrClosed {
		t.Fatalf("AppendNoWait after Close: %v", err)
	}
	if err := l.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("Append after Close: %v", err)
	}
	if err := l.WaitDurable(99); err != ErrClosed {
		t.Fatalf("WaitDurable past the end after Close: %v", err)
	}
}
