package wal

import (
	"errors"
	"fmt"

	"eunomia/internal/hlc"
	"eunomia/internal/types"
	"eunomia/internal/wire"
)

// Record kinds distinguish local acceptances from remote applications so
// recovery can rebuild per-partition sequence counters.
const (
	// KindLocal marks an update accepted from a local client.
	KindLocal byte = 1
	// KindRemote marks a remote update applied via the receiver.
	KindRemote byte = 2
	// KindMarks is a partition counters record (snapshot compaction):
	// local sequence counter, clock floor, per-origin applied watermarks.
	KindMarks byte = 3
	// KindStream is a release-stream position record: the (sender epoch,
	// sequence) watermark durably applied by a split-role partition
	// group's applier.
	KindStream byte = 4
	// KindPending marks an update enqueued at a receiver but not yet
	// durably applied (EncodeUpdate framing).
	KindPending byte = 5
	// KindSite is a receiver site-watermark record: origin datacenter and
	// the highest origin timestamp durably applied locally.
	KindSite byte = 6
	// KindPayload marks a payload received via §5 data/metadata
	// separation, buffered but not yet released (EncodeUpdate framing).
	// Without it a crash loses every buffered payload — the sibling that
	// shipped it pruned it once the transport acknowledged delivery.
	KindPayload byte = 7
	// KindSkip marks a remote update whose payload was lost to a crash
	// and whose origin reported it superseded: the applied watermark
	// advances, nothing is stored (EncodeUpdate framing, no value).
	KindSkip byte = 8
)

// ErrBadRecord reports a structurally invalid update record.
var ErrBadRecord = errors.New("wal: bad update record")

// EncodeUpdate serialises an update into a compact binary record: the
// kind byte followed by the shared wire-codec update layout
// (internal/wire) — the same varint/compact-timestamp encoding the TCP
// frames use, so the bytes that hit the fsync path shrink with the
// bytes that hit the sockets.
func EncodeUpdate(kind byte, u *types.Update) []byte {
	buf := make([]byte, 0, 64+len(u.Key)+len(u.Value)+8*len(u.VTS))
	buf = append(buf, kind)
	return wire.AppendUpdate(buf, u)
}

// DecodeUpdate parses a record produced by EncodeUpdate.
func DecodeUpdate(rec []byte) (kind byte, u *types.Update, err error) {
	if len(rec) < 1 {
		return 0, nil, ErrBadRecord
	}
	kind = rec[0]
	switch kind {
	case KindLocal, KindRemote, KindPending, KindPayload, KindSkip:
	default:
		return 0, nil, fmt.Errorf("%w: kind %d", ErrBadRecord, kind)
	}
	d := wire.NewDec(rec[1:])
	u = wire.ReadUpdate(&d)
	if u == nil || d.Expect() != nil {
		return 0, nil, ErrBadRecord
	}
	return kind, u, nil
}

// Marks is a partition's non-version durable state: the local sequence
// counter, the highest timestamp the hybrid clock must dominate after
// recovery, and the per-origin applied-remote watermarks. Snapshots carry
// it because overwritten versions take their sequence numbers and
// watermark evidence with them.
type Marks struct {
	Seq     uint64
	ClockTS hlc.Timestamp
	Applied map[types.DCID]hlc.Timestamp
}

// EncodeMarks serialises a KindMarks record.
func EncodeMarks(m Marks) []byte {
	buf := make([]byte, 0, 32+len(m.Applied)*12)
	buf = append(buf, KindMarks)
	buf = wire.AppendUvarint(buf, m.Seq)
	buf = wire.AppendTimestamp(buf, m.ClockTS)
	buf = wire.AppendUvarint(buf, uint64(len(m.Applied)))
	for origin, ts := range m.Applied {
		buf = wire.AppendUvarint(buf, uint64(origin))
		buf = wire.AppendTimestamp(buf, ts)
	}
	return buf
}

// DecodeMarks parses a record produced by EncodeMarks.
func DecodeMarks(rec []byte) (Marks, error) {
	if len(rec) < 1 || rec[0] != KindMarks {
		return Marks{}, ErrBadRecord
	}
	d := wire.NewDec(rec[1:])
	m := Marks{Applied: make(map[types.DCID]hlc.Timestamp)}
	m.Seq = d.Uvarint()
	m.ClockTS = d.Timestamp()
	n := d.Uvarint()
	if n > 1<<16 {
		return Marks{}, ErrBadRecord
	}
	for i := uint64(0); i < n; i++ {
		origin := types.DCID(d.Uvarint())
		m.Applied[origin] = d.Timestamp()
	}
	if d.Expect() != nil {
		return Marks{}, ErrBadRecord
	}
	return m, nil
}

// EncodeStream serialises a KindStream record: the release stream's
// durably applied (sender epoch, sequence) watermark. Epochs are
// UnixNano instants, so they stay fixed-width (a uvarint would cost
// more).
func EncodeStream(epoch, seq uint64) []byte {
	buf := make([]byte, 0, 17)
	buf = append(buf, KindStream)
	buf = wire.AppendUint64(buf, epoch)
	return wire.AppendUvarint(buf, seq)
}

// DecodeStream parses a record produced by EncodeStream.
func DecodeStream(rec []byte) (epoch, seq uint64, err error) {
	if len(rec) < 1 || rec[0] != KindStream {
		return 0, 0, ErrBadRecord
	}
	d := wire.NewDec(rec[1:])
	epoch = d.Uint64()
	seq = d.Uvarint()
	if d.Expect() != nil {
		return 0, 0, ErrBadRecord
	}
	return epoch, seq, nil
}

// EncodeSite serialises a KindSite record: origin datacenter k and the
// highest origin timestamp durably applied at the local datacenter.
func EncodeSite(k types.DCID, ts hlc.Timestamp) []byte {
	buf := make([]byte, 0, 12)
	buf = append(buf, KindSite)
	buf = wire.AppendUvarint(buf, uint64(k))
	return wire.AppendTimestamp(buf, ts)
}

// DecodeSite parses a record produced by EncodeSite.
func DecodeSite(rec []byte) (types.DCID, hlc.Timestamp, error) {
	if len(rec) < 1 || rec[0] != KindSite {
		return 0, 0, ErrBadRecord
	}
	d := wire.NewDec(rec[1:])
	k := types.DCID(d.Uvarint())
	ts := d.Timestamp()
	if d.Expect() != nil {
		return 0, 0, ErrBadRecord
	}
	return k, ts, nil
}
