package wal

import (
	"encoding/binary"
	"errors"
	"fmt"

	"eunomia/internal/hlc"
	"eunomia/internal/types"
	"eunomia/internal/vclock"
)

// Record kinds distinguish local acceptances from remote applications so
// recovery can rebuild per-partition sequence counters.
const (
	// KindLocal marks an update accepted from a local client.
	KindLocal byte = 1
	// KindRemote marks a remote update applied via the receiver.
	KindRemote byte = 2
	// KindMarks is a partition counters record (snapshot compaction):
	// local sequence counter, clock floor, per-origin applied watermarks.
	KindMarks byte = 3
	// KindStream is a release-stream position record: the (sender epoch,
	// sequence) watermark durably applied by a split-role partition
	// group's applier.
	KindStream byte = 4
	// KindPending marks an update enqueued at a receiver but not yet
	// durably applied (EncodeUpdate framing).
	KindPending byte = 5
	// KindSite is a receiver site-watermark record: origin datacenter and
	// the highest origin timestamp durably applied locally.
	KindSite byte = 6
	// KindPayload marks a payload received via §5 data/metadata
	// separation, buffered but not yet released (EncodeUpdate framing).
	// Without it a crash loses every buffered payload — the sibling that
	// shipped it pruned it once the transport acknowledged delivery.
	KindPayload byte = 7
	// KindSkip marks a remote update whose payload was lost to a crash
	// and whose origin reported it superseded: the applied watermark
	// advances, nothing is stored (EncodeUpdate framing, no value).
	KindSkip byte = 8
)

// ErrBadRecord reports a structurally invalid update record.
var ErrBadRecord = errors.New("wal: bad update record")

// EncodeUpdate serialises an update into a compact binary record:
//
//	kind | origin | partition | seq | ts | hts | createdAt |
//	vtsLen | vts... | keyLen | key | valueLen | value
//
// all integers little-endian fixed width except the two length prefixes
// (uvarint).
func EncodeUpdate(kind byte, u *types.Update) []byte {
	n := 1 + 2 + 4 + 8 + 8 + 8 + 8 +
		binary.MaxVarintLen32 + len(u.VTS)*8 +
		binary.MaxVarintLen32 + len(u.Key) +
		binary.MaxVarintLen32 + len(u.Value)
	buf := make([]byte, 0, n)
	buf = append(buf, kind)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(u.Origin))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(u.Partition))
	buf = binary.LittleEndian.AppendUint64(buf, u.Seq)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(u.TS))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(u.HTS))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(u.CreatedAt))
	buf = binary.AppendUvarint(buf, uint64(len(u.VTS)))
	for _, ts := range u.VTS {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(ts))
	}
	buf = binary.AppendUvarint(buf, uint64(len(u.Key)))
	buf = append(buf, u.Key...)
	buf = binary.AppendUvarint(buf, uint64(len(u.Value)))
	buf = append(buf, u.Value...)
	return buf
}

// DecodeUpdate parses a record produced by EncodeUpdate.
func DecodeUpdate(rec []byte) (kind byte, u *types.Update, err error) {
	defer func() {
		if recover() != nil {
			kind, u, err = 0, nil, ErrBadRecord
		}
	}()
	if len(rec) < 1+2+4+8+8+8+8 {
		return 0, nil, ErrBadRecord
	}
	kind = rec[0]
	switch kind {
	case KindLocal, KindRemote, KindPending, KindPayload, KindSkip:
	default:
		return 0, nil, fmt.Errorf("%w: kind %d", ErrBadRecord, kind)
	}
	p := 1
	u = &types.Update{}
	u.Origin = types.DCID(binary.LittleEndian.Uint16(rec[p:]))
	p += 2
	u.Partition = types.PartitionID(binary.LittleEndian.Uint32(rec[p:]))
	p += 4
	u.Seq = binary.LittleEndian.Uint64(rec[p:])
	p += 8
	u.TS = hlc.Timestamp(binary.LittleEndian.Uint64(rec[p:]))
	p += 8
	u.HTS = hlc.Timestamp(binary.LittleEndian.Uint64(rec[p:]))
	p += 8
	u.CreatedAt = int64(binary.LittleEndian.Uint64(rec[p:]))
	p += 8

	vlen, n := binary.Uvarint(rec[p:])
	if n <= 0 || vlen > 1<<16 {
		return 0, nil, ErrBadRecord
	}
	p += n
	if vlen > 0 {
		u.VTS = make(vclock.V, vlen)
		for i := range u.VTS {
			u.VTS[i] = hlc.Timestamp(binary.LittleEndian.Uint64(rec[p:]))
			p += 8
		}
	}

	klen, n := binary.Uvarint(rec[p:])
	if n <= 0 {
		return 0, nil, ErrBadRecord
	}
	p += n
	u.Key = types.Key(rec[p : p+int(klen)])
	p += int(klen)

	vallen, n := binary.Uvarint(rec[p:])
	if n <= 0 {
		return 0, nil, ErrBadRecord
	}
	p += n
	if vallen > 0 {
		u.Value = types.Value(append([]byte(nil), rec[p:p+int(vallen)]...))
		p += int(vallen)
	}
	if p != len(rec) {
		return 0, nil, ErrBadRecord
	}
	return kind, u, nil
}

// Marks is a partition's non-version durable state: the local sequence
// counter, the highest timestamp the hybrid clock must dominate after
// recovery, and the per-origin applied-remote watermarks. Snapshots carry
// it because overwritten versions take their sequence numbers and
// watermark evidence with them.
type Marks struct {
	Seq     uint64
	ClockTS hlc.Timestamp
	Applied map[types.DCID]hlc.Timestamp
}

// EncodeMarks serialises a KindMarks record.
func EncodeMarks(m Marks) []byte {
	buf := make([]byte, 0, 1+8+8+binary.MaxVarintLen32+len(m.Applied)*10)
	buf = append(buf, KindMarks)
	buf = binary.LittleEndian.AppendUint64(buf, m.Seq)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.ClockTS))
	buf = binary.AppendUvarint(buf, uint64(len(m.Applied)))
	for origin, ts := range m.Applied {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(origin))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(ts))
	}
	return buf
}

// DecodeMarks parses a record produced by EncodeMarks.
func DecodeMarks(rec []byte) (Marks, error) {
	if len(rec) < 1+8+8+1 || rec[0] != KindMarks {
		return Marks{}, ErrBadRecord
	}
	m := Marks{Applied: make(map[types.DCID]hlc.Timestamp)}
	p := 1
	m.Seq = binary.LittleEndian.Uint64(rec[p:])
	p += 8
	m.ClockTS = hlc.Timestamp(binary.LittleEndian.Uint64(rec[p:]))
	p += 8
	n, w := binary.Uvarint(rec[p:])
	if w <= 0 || n > 1<<16 {
		return Marks{}, ErrBadRecord
	}
	p += w
	if len(rec) != p+int(n)*10 {
		return Marks{}, ErrBadRecord
	}
	for i := uint64(0); i < n; i++ {
		origin := types.DCID(binary.LittleEndian.Uint16(rec[p:]))
		p += 2
		m.Applied[origin] = hlc.Timestamp(binary.LittleEndian.Uint64(rec[p:]))
		p += 8
	}
	return m, nil
}

// EncodeStream serialises a KindStream record: the release stream's
// durably applied (sender epoch, sequence) watermark.
func EncodeStream(epoch, seq uint64) []byte {
	buf := make([]byte, 0, 17)
	buf = append(buf, KindStream)
	buf = binary.LittleEndian.AppendUint64(buf, epoch)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	return buf
}

// DecodeStream parses a record produced by EncodeStream.
func DecodeStream(rec []byte) (epoch, seq uint64, err error) {
	if len(rec) != 17 || rec[0] != KindStream {
		return 0, 0, ErrBadRecord
	}
	return binary.LittleEndian.Uint64(rec[1:]), binary.LittleEndian.Uint64(rec[9:]), nil
}

// EncodeSite serialises a KindSite record: origin datacenter k and the
// highest origin timestamp durably applied at the local datacenter.
func EncodeSite(k types.DCID, ts hlc.Timestamp) []byte {
	buf := make([]byte, 0, 11)
	buf = append(buf, KindSite)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(k))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(ts))
	return buf
}

// DecodeSite parses a record produced by EncodeSite.
func DecodeSite(rec []byte) (types.DCID, hlc.Timestamp, error) {
	if len(rec) != 11 || rec[0] != KindSite {
		return 0, 0, ErrBadRecord
	}
	return types.DCID(binary.LittleEndian.Uint16(rec[1:])),
		hlc.Timestamp(binary.LittleEndian.Uint64(rec[3:])), nil
}
