package wal

import (
	"encoding/binary"
	"errors"
	"fmt"

	"eunomia/internal/hlc"
	"eunomia/internal/types"
	"eunomia/internal/vclock"
)

// Record kinds distinguish local acceptances from remote applications so
// recovery can rebuild per-partition sequence counters.
const (
	// KindLocal marks an update accepted from a local client.
	KindLocal byte = 1
	// KindRemote marks a remote update applied via the receiver.
	KindRemote byte = 2
)

// ErrBadRecord reports a structurally invalid update record.
var ErrBadRecord = errors.New("wal: bad update record")

// EncodeUpdate serialises an update into a compact binary record:
//
//	kind | origin | partition | seq | ts | hts | createdAt |
//	vtsLen | vts... | keyLen | key | valueLen | value
//
// all integers little-endian fixed width except the two length prefixes
// (uvarint).
func EncodeUpdate(kind byte, u *types.Update) []byte {
	n := 1 + 2 + 4 + 8 + 8 + 8 + 8 +
		binary.MaxVarintLen32 + len(u.VTS)*8 +
		binary.MaxVarintLen32 + len(u.Key) +
		binary.MaxVarintLen32 + len(u.Value)
	buf := make([]byte, 0, n)
	buf = append(buf, kind)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(u.Origin))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(u.Partition))
	buf = binary.LittleEndian.AppendUint64(buf, u.Seq)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(u.TS))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(u.HTS))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(u.CreatedAt))
	buf = binary.AppendUvarint(buf, uint64(len(u.VTS)))
	for _, ts := range u.VTS {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(ts))
	}
	buf = binary.AppendUvarint(buf, uint64(len(u.Key)))
	buf = append(buf, u.Key...)
	buf = binary.AppendUvarint(buf, uint64(len(u.Value)))
	buf = append(buf, u.Value...)
	return buf
}

// DecodeUpdate parses a record produced by EncodeUpdate.
func DecodeUpdate(rec []byte) (kind byte, u *types.Update, err error) {
	defer func() {
		if recover() != nil {
			kind, u, err = 0, nil, ErrBadRecord
		}
	}()
	if len(rec) < 1+2+4+8+8+8+8 {
		return 0, nil, ErrBadRecord
	}
	kind = rec[0]
	if kind != KindLocal && kind != KindRemote {
		return 0, nil, fmt.Errorf("%w: kind %d", ErrBadRecord, kind)
	}
	p := 1
	u = &types.Update{}
	u.Origin = types.DCID(binary.LittleEndian.Uint16(rec[p:]))
	p += 2
	u.Partition = types.PartitionID(binary.LittleEndian.Uint32(rec[p:]))
	p += 4
	u.Seq = binary.LittleEndian.Uint64(rec[p:])
	p += 8
	u.TS = hlc.Timestamp(binary.LittleEndian.Uint64(rec[p:]))
	p += 8
	u.HTS = hlc.Timestamp(binary.LittleEndian.Uint64(rec[p:]))
	p += 8
	u.CreatedAt = int64(binary.LittleEndian.Uint64(rec[p:]))
	p += 8

	vlen, n := binary.Uvarint(rec[p:])
	if n <= 0 || vlen > 1<<16 {
		return 0, nil, ErrBadRecord
	}
	p += n
	if vlen > 0 {
		u.VTS = make(vclock.V, vlen)
		for i := range u.VTS {
			u.VTS[i] = hlc.Timestamp(binary.LittleEndian.Uint64(rec[p:]))
			p += 8
		}
	}

	klen, n := binary.Uvarint(rec[p:])
	if n <= 0 {
		return 0, nil, ErrBadRecord
	}
	p += n
	u.Key = types.Key(rec[p : p+int(klen)])
	p += int(klen)

	vallen, n := binary.Uvarint(rec[p:])
	if n <= 0 {
		return 0, nil, ErrBadRecord
	}
	p += n
	if vallen > 0 {
		u.Value = types.Value(append([]byte(nil), rec[p:p+int(vallen)]...))
		p += int(vallen)
	}
	if p != len(rec) {
		return 0, nil, ErrBadRecord
	}
	return kind, u, nil
}
