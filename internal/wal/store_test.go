package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"eunomia/internal/hlc"
	"eunomia/internal/types"
)

// replayAll collects every record the store replays.
func storeReplayAll(t *testing.T, s *Store) []string {
	t.Helper()
	var out []string
	if err := s.Replay(func(rec []byte) error {
		out = append(out, string(rec))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestStoreAppendReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, SyncOnFlush)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Append([]byte(fmt.Sprintf("rec%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir, SyncOnFlush)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := storeReplayAll(t, s2)
	if len(got) != 10 || got[0] != "rec0" || got[9] != "rec9" {
		t.Fatalf("replayed %v", got)
	}
}

// TestStoreSnapshotTruncatesLog compacts mid-stream and checks replay sees
// the snapshot records followed by post-snapshot appends only.
func TestStoreSnapshotTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, SyncOnFlush)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := s.Append([]byte(fmt.Sprintf("old%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	before := s.LogSize()
	if err := s.Snapshot(func(emit func([]byte) error) error {
		return emit([]byte("compacted"))
	}); err != nil {
		t.Fatal(err)
	}
	if got := s.LogSize(); got != 0 {
		t.Fatalf("log size %d after snapshot, want 0 (was %d)", got, before)
	}
	if err := s.Append([]byte("new0")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir, SyncOnFlush)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := storeReplayAll(t, s2)
	want := []string{"compacted", "new0"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("replayed %v, want %v", got, want)
	}
}

// TestStoreSnapshotCrashBeforeTruncate simulates the crash window between
// installing the snapshot and truncating the log: replay must deliver the
// snapshot and then the (stale, already-folded-in) log records — the
// documented idempotent-replay contract — rather than lose either.
func TestStoreSnapshotCrashBeforeTruncate(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, SyncOnFlush)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Install a snapshot by hand, leaving the log untouched (as if the
	// crash hit after the rename).
	snap, err := Open(filepath.Join(dir, "snapshot"), SyncOnFlush)
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.Append([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := snap.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir, SyncOnFlush)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := storeReplayAll(t, s2)
	if len(got) != 2 || got[0] != "a" || got[1] != "a" {
		t.Fatalf("replayed %v, want [a a]", got)
	}
}

// TestStoreTornLogTailAfterSnapshot corrupts the live log's tail and
// checks recovery keeps the snapshot plus the valid log prefix.
func TestStoreTornLogTailAfterSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, SyncOnFlush)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]byte("pre")); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(func(emit func([]byte) error) error {
		return emit([]byte("pre"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Torn write: a partial header at the log tail.
	f, err := os.OpenFile(filepath.Join(dir, "log"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{42, 0, 0, 0, 0xde}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := OpenStore(dir, SyncOnFlush)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := storeReplayAll(t, s2)
	if len(got) != 2 || got[0] != "pre" || got[1] != "durable" {
		t.Fatalf("replayed %v, want [pre durable]", got)
	}
}

// TestStoreSnapshotStateErrorLeavesLogIntact checks a failed state capture
// aborts the snapshot without touching the log or the old snapshot.
func TestStoreSnapshotStateErrorLeavesLogIntact(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, SyncOnFlush)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Append([]byte("keep")); err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("boom")
	if err := s.Snapshot(func(emit func([]byte) error) error { return boom }); err == nil {
		t.Fatal("snapshot with failing state capture reported success")
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	got := storeReplayAll(t, s)
	if len(got) != 1 || got[0] != "keep" {
		t.Fatalf("replayed %v, want [keep]", got)
	}
}

func TestMarksRoundTrip(t *testing.T) {
	in := Marks{
		Seq:     42,
		ClockTS: 1 << 40,
		Applied: map[types.DCID]hlc.Timestamp{1: 100, 2: 3 << 30},
	}
	out, err := DecodeMarks(EncodeMarks(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Seq != in.Seq || out.ClockTS != in.ClockTS || len(out.Applied) != 2 ||
		out.Applied[1] != 100 || out.Applied[2] != 3<<30 {
		t.Fatalf("round trip %+v -> %+v", in, out)
	}
	if _, err := DecodeMarks([]byte{KindMarks, 1, 2}); err == nil {
		t.Fatal("truncated marks record decoded")
	}
}

func TestStreamAndSiteRoundTrip(t *testing.T) {
	ep, seq, err := DecodeStream(EncodeStream(7, 99))
	if err != nil || ep != 7 || seq != 99 {
		t.Fatalf("stream round trip: %d %d %v", ep, seq, err)
	}
	k, ts, err := DecodeSite(EncodeSite(3, 12345))
	if err != nil || k != 3 || ts != 12345 {
		t.Fatalf("site round trip: %d %d %v", k, ts, err)
	}
	if _, _, err := DecodeStream([]byte{KindStream}); err == nil {
		t.Fatal("truncated stream record decoded")
	}
	if _, _, err := DecodeSite([]byte{KindSite, 0}); err == nil {
		t.Fatal("truncated site record decoded")
	}
}

func TestStoreFormatVersionGuard(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, SyncOnFlush)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(EncodeSite(1, 5)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Same generation reopens fine.
	s2, err := OpenStore(dir, SyncOnFlush)
	if err != nil {
		t.Fatalf("reopen of a current-format store: %v", err)
	}
	s2.Close()

	// A different generation's stamp refuses loudly.
	if err := os.WriteFile(filepath.Join(dir, versionName), []byte("1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir, SyncOnFlush); !errors.Is(err, ErrFormatVersion) {
		t.Fatalf("foreign-format store opened: %v", err)
	}

	// Pre-versioning layout: records present, no stamp at all.
	old := t.TempDir()
	s3, err := OpenStore(old, SyncOnFlush)
	if err != nil {
		t.Fatal(err)
	}
	if err := s3.Append(EncodeSite(1, 5)); err != nil {
		t.Fatal(err)
	}
	s3.Close()
	if err := os.Remove(filepath.Join(old, versionName)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(old, SyncOnFlush); !errors.Is(err, ErrFormatVersion) {
		t.Fatalf("unstamped store with records opened: %v", err)
	}
}

// TestSnapshotCompactErrorsReportedAndCounted pins the no-swallow
// contract of snapshot compaction: a log truncation that fails after the
// snapshot is installed must surface to the caller (not silently leave
// the replay tail growing) and advance the CompactErrors counter that
// backs eunomia_wal_compact_errors_total.
func TestSnapshotCompactErrorsReportedAndCounted(t *testing.T) {
	dir := t.TempDir()
	m := NewSyncMetrics()
	s, err := OpenStoreOptions(dir, Options{Policy: SyncOnFlush, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(EncodeSite(1, 7)); err != nil {
		t.Fatal(err)
	}
	// Close the live log underneath the store: the snapshot capture and
	// install still succeed, but the truncation of the (closed) log
	// cannot — the failure mode where the snapshot exists yet the log
	// keeps its records.
	if err := s.log.Close(); err != nil {
		t.Fatal(err)
	}
	err = s.Snapshot(func(emit func([]byte) error) error {
		return emit(EncodeSite(1, 7))
	})
	if err == nil {
		t.Fatal("Snapshot swallowed the log-truncation failure")
	}
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("truncation error not propagated: %v", err)
	}
	if got := m.CompactErrors.Load(); got != 1 {
		t.Fatalf("CompactErrors = %d, want 1", got)
	}
	// The snapshot itself was installed; the error is about the tail.
	if _, serr := os.Stat(filepath.Join(dir, snapName)); serr != nil {
		t.Fatalf("snapshot missing after reported truncate failure: %v", serr)
	}
}
