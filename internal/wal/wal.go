// Package wal is a write-ahead log giving partitions crash durability —
// the piece a production deployment of the paper's design needs beneath
// the in-memory version store (Riak persists through bitcask/leveldb; this
// is the equivalent for our kvstore substrate).
//
// Format: length-prefixed records, each framed as
//
//	uint32 length | uint32 CRC32C(payload) | payload
//
// Appends are buffered and fsynced according to SyncPolicy. Replay
// tolerates a torn tail (a crash mid-append): the first corrupt or
// truncated record ends recovery, and the file is truncated back to the
// last durable boundary on open, which makes recovery idempotent.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// SyncPolicy controls when appends reach stable storage.
type SyncPolicy int

const (
	// SyncEachAppend fsyncs on every append: slowest, no loss window.
	SyncEachAppend SyncPolicy = iota
	// SyncOnFlush fsyncs only on explicit Flush/Close: the batching
	// analogue — a partition flushing its Eunomia batch every 1ms
	// flushes its log on the same cadence, bounding loss to one batch.
	SyncOnFlush
)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: closed")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Log is an append-only record log. Safe for concurrent use.
type Log struct {
	mu     sync.Mutex
	f      *os.File
	w      *bufio.Writer
	policy SyncPolicy
	closed bool
	size   int64
}

const headerSize = 8

// maxRecord guards against corrupt length prefixes during replay.
const maxRecord = 64 << 20

// Open opens (creating if needed) the log at path, truncates any torn
// tail, and positions for appending.
func Open(path string, policy SyncPolicy) (*Log, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	valid, err := scanValidPrefix(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	return &Log{f: f, w: bufio.NewWriter(f), policy: policy, size: valid}, nil
}

// scanValidPrefix returns the byte offset of the last whole, checksummed
// record.
func scanValidPrefix(f *os.File) (int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	r := bufio.NewReader(f)
	var offset int64
	var header [headerSize]byte
	buf := make([]byte, 4096)
	for {
		if _, err := io.ReadFull(r, header[:]); err != nil {
			return offset, nil // clean EOF or torn header
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if length > maxRecord {
			return offset, nil // corrupt length: stop here
		}
		if int(length) > len(buf) {
			buf = make([]byte, length)
		}
		if _, err := io.ReadFull(r, buf[:length]); err != nil {
			return offset, nil // torn payload
		}
		if crc32.Checksum(buf[:length], castagnoli) != sum {
			return offset, nil // corrupt payload
		}
		offset += headerSize + int64(length)
	}
}

// Append writes one record.
func (l *Log) Append(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	var header [headerSize]byte
	binary.LittleEndian.PutUint32(header[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(header[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := l.w.Write(header[:]); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.size += headerSize + int64(len(payload))
	if l.policy == SyncEachAppend {
		return l.syncLocked()
	}
	return nil
}

// Flush forces buffered records to stable storage.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// Size returns the current log size in bytes (including buffered appends).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Close flushes and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	return l.f.Close()
}

// Replay invokes fn for every durable record in append order. It opens the
// file read-only and may be used while another Log has it open for append
// only if the caller guarantees quiescence; the intended use is recovery
// before opening for append.
func Replay(path string, fn func(payload []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil // nothing to recover
		}
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var header [headerSize]byte
	buf := make([]byte, 4096)
	for {
		if _, err := io.ReadFull(r, header[:]); err != nil {
			return nil
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if length > maxRecord {
			return nil
		}
		if int(length) > len(buf) {
			buf = make([]byte, length)
		}
		if _, err := io.ReadFull(r, buf[:length]); err != nil {
			return nil
		}
		if crc32.Checksum(buf[:length], castagnoli) != sum {
			return nil
		}
		if err := fn(buf[:length]); err != nil {
			return err
		}
	}
}
