// Package wal is a write-ahead log giving partitions crash durability —
// the piece a production deployment of the paper's design needs beneath
// the in-memory version store (Riak persists through bitcask/leveldb; this
// is the equivalent for our kvstore substrate).
//
// Format: length-prefixed records, each framed as
//
//	uint32 length | uint32 CRC32C(payload) | payload
//
// Appends are buffered and fsynced according to SyncPolicy. Replay
// tolerates a torn tail (a crash mid-append): the first corrupt or
// truncated record ends recovery, and the file is truncated back to the
// last durable boundary on open, which makes recovery idempotent.
//
// Every record carries a log sequence number (LSN): a per-Log counter that
// increments on append and never rewinds (snapshot truncation resets the
// file, not the counter). AppendedLSN/DurableLSN expose the two watermarks,
// and OnCommit observes durability advances — the hooks the group-commit
// policy (see groupcommit.go) and the release path's async durability acks
// are built on.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// SyncPolicy controls when appends reach stable storage.
type SyncPolicy int

const (
	// SyncEachAppend fsyncs on every append: slowest, no loss window.
	SyncEachAppend SyncPolicy = iota
	// SyncOnFlush fsyncs only on explicit Flush/Close: the batching
	// analogue — a partition flushing its Eunomia batch every 1ms
	// flushes its log on the same cadence, bounding loss to one batch.
	SyncOnFlush
	// SyncGroupCommit gives SyncEachAppend's guarantee (Append returns
	// only after the record is on disk) at a fraction of the fsync cost:
	// a committer goroutine coalesces every record that arrived while the
	// previous fsync was in flight into one sync and then completes all
	// of their waits at once. Throughput scales with appender concurrency
	// instead of being serialized behind one fsync per record; see
	// Options for the accumulation knobs.
	SyncGroupCommit
)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: closed")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Log is an append-only record log. Safe for concurrent use.
type Log struct {
	mu     sync.Mutex
	f      *os.File
	w      *bufio.Writer
	policy SyncPolicy
	size   int64

	// shutdown rejects new operations the moment Close (or a test crash)
	// begins; closed marks the file handle gone and releases waiters.
	shutdown bool
	closed   bool

	// appended is the LSN of the newest record written into the buffer;
	// durable is the LSN of the newest record known to be on disk. Both
	// are monotone for the life of the Log — snapshot truncation marks
	// everything durable (the snapshot holds it) rather than rewinding.
	appended uint64
	durable  uint64
	// syncErr is the sticky first sync failure; once set, every durability
	// wait returns it (acknowledging past a failed fsync would be a lie).
	syncErr error

	// commit is broadcast whenever durable advances, syncErr is set, or
	// the log closes; Append/WaitDurable waiters park on it.
	commit *sync.Cond
	// onCommit callbacks run with mu held whenever durable advances; they
	// must be non-blocking and must not re-enter the Log or its Store.
	onCommit []func(durable uint64)

	// Group-commit machinery (nil/zero unless policy is SyncGroupCommit).
	groupDelay time.Duration
	groupMax   int
	wake       chan struct{}
	stop       chan struct{}
	stopped    chan struct{}
	metrics    *SyncMetrics

	// inject is the Options.InjectSync fault seam, consulted before
	// every fsync; nil outside fault-injection runs.
	inject func() error
}

const headerSize = 8

// maxRecord guards against corrupt length prefixes during replay.
const maxRecord = 64 << 20

// Open opens (creating if needed) the log at path, truncates any torn
// tail, and positions for appending.
func Open(path string, policy SyncPolicy) (*Log, error) {
	return OpenOptions(path, Options{Policy: policy})
}

// OpenOptions is Open with the full option set (group-commit knobs, sync
// metrics); see Options.
func OpenOptions(path string, o Options) (*Log, error) {
	o = o.withDefaults()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	valid, err := scanValidPrefix(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{
		f: f, w: bufio.NewWriter(f), policy: o.Policy, size: valid,
		groupDelay: o.GroupDelay, groupMax: o.GroupMaxBatch, metrics: o.Metrics,
		inject: o.InjectSync,
	}
	l.commit = sync.NewCond(&l.mu)
	if o.Policy == SyncGroupCommit {
		l.wake = make(chan struct{}, 1)
		l.stop = make(chan struct{})
		l.stopped = make(chan struct{})
		go l.committer()
	}
	return l, nil
}

// scanValidPrefix returns the byte offset of the last whole, checksummed
// record.
func scanValidPrefix(f *os.File) (int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	r := bufio.NewReader(f)
	var offset int64
	var header [headerSize]byte
	buf := make([]byte, 4096)
	for {
		if _, err := io.ReadFull(r, header[:]); err != nil {
			return offset, nil // clean EOF or torn header
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if length > maxRecord {
			return offset, nil // corrupt length: stop here
		}
		if int(length) > len(buf) {
			buf = make([]byte, length)
		}
		if _, err := io.ReadFull(r, buf[:length]); err != nil {
			return offset, nil // torn payload
		}
		if crc32.Checksum(buf[:length], castagnoli) != sum {
			return offset, nil // corrupt payload
		}
		offset += headerSize + int64(length)
	}
}

// appendLocked frames payload into the write buffer and assigns its LSN.
func (l *Log) appendLocked(payload []byte) (uint64, error) {
	if l.shutdown || l.closed {
		return 0, ErrClosed
	}
	var header [headerSize]byte
	binary.LittleEndian.PutUint32(header[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(header[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := l.w.Write(header[:]); err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	l.size += headerSize + int64(len(payload))
	l.appended++
	return l.appended, nil
}

// Append writes one record and applies the policy's durability guarantee:
// SyncEachAppend fsyncs inline, SyncGroupCommit blocks until a group
// commit covers the record (concurrent callers share one fsync), and
// SyncOnFlush returns immediately (durability rides the next Flush).
func (l *Log) Append(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	lsn, err := l.appendLocked(payload)
	if err != nil {
		return err
	}
	switch l.policy {
	case SyncEachAppend:
		return l.syncLocked()
	case SyncGroupCommit:
		l.pokeCommitter()
		return l.waitDurableLocked(lsn)
	default:
		return nil
	}
}

// Flush forces buffered records to stable storage.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.shutdown || l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

// sync runs one fsync through the fault-injection seam: an armed
// InjectSync error stands in for the fsync failing without touching the
// file.
func (l *Log) sync() error {
	if l.inject != nil {
		if err := l.inject(); err != nil {
			return err
		}
	}
	return l.f.Sync()
}

// syncLocked flushes the buffer, fsyncs, and advances the durable
// watermark to everything appended so far. Failures are sticky: once a
// sync fails the log's durability promise is void, every later sync
// attempt returns the same error (no silent retry can un-lose records
// the buffer already dropped), and the SyncErrors counter has advanced.
func (l *Log) syncLocked() error {
	if l.syncErr != nil {
		return l.syncErr
	}
	if err := l.w.Flush(); err != nil {
		return l.failCommitLocked(err)
	}
	target := l.appended
	start := time.Now()
	err := l.sync()
	if l.metrics != nil && l.metrics.Fsync != nil {
		l.metrics.Fsync.RecordDuration(time.Since(start))
	}
	if err != nil {
		return l.failCommitLocked(err)
	}
	l.advanceDurableLocked(target)
	return nil
}

// advanceDurableLocked moves the durable watermark to target, feeds the
// batch-size metrics, fires commit callbacks, and wakes waiters.
func (l *Log) advanceDurableLocked(target uint64) {
	if target <= l.durable {
		return
	}
	if l.metrics != nil {
		l.metrics.Commits.Inc()
		l.metrics.Records.Add(int64(target - l.durable))
	}
	l.durable = target
	for _, fn := range l.onCommit {
		fn(target)
	}
	l.commit.Broadcast()
}

// waitDurableLocked parks until the durable watermark covers lsn. A log
// closed mid-wait reports ErrClosed unless the closing sync already made
// the record durable; a failed group commit reports the sticky sync error.
func (l *Log) waitDurableLocked(lsn uint64) error {
	for l.durable < lsn && l.syncErr == nil && !l.closed {
		l.commit.Wait()
	}
	if l.durable >= lsn {
		return nil
	}
	if l.syncErr != nil {
		return l.syncErr
	}
	return ErrClosed
}

// Size returns the current log size in bytes (including buffered appends).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Close stops the committer (if any), flushes, fsyncs, and closes the log.
// Durability waiters parked at Close time are completed by the final sync
// rather than failed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.shutdown {
		l.mu.Unlock()
		return nil
	}
	l.shutdown = true
	l.mu.Unlock()
	if l.stop != nil {
		close(l.stop)
		<-l.stopped
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var err error
	if l.syncErr != nil {
		err = l.syncErr // durability already void: don't pretend the final sync saves it
	} else {
		err = l.w.Flush()
		if err == nil {
			start := time.Now()
			err = l.sync()
			if l.metrics != nil && l.metrics.Fsync != nil {
				l.metrics.Fsync.RecordDuration(time.Since(start))
			}
		}
		if err == nil {
			l.advanceDurableLocked(l.appended)
		} else {
			err = l.failCommitLocked(err)
		}
	}
	l.closed = true
	l.commit.Broadcast()
	cerr := l.f.Close()
	if err != nil {
		l.f.Close()
		return err
	}
	if cerr != nil {
		return fmt.Errorf("wal: %w", cerr)
	}
	return nil
}

// Replay invokes fn for every durable record in append order. It opens the
// file read-only; replaying while another Log has the file open for append
// is safe in the torn-tail sense (the scan stops at the first record whose
// bytes have not fully reached the file), which is exactly what the
// durability tests rely on to ask "what would a crash right now recover?".
func Replay(path string, fn func(payload []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil // nothing to recover
		}
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var header [headerSize]byte
	buf := make([]byte, 4096)
	for {
		if _, err := io.ReadFull(r, header[:]); err != nil {
			return nil
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if length > maxRecord {
			return nil
		}
		if int(length) > len(buf) {
			buf = make([]byte, length)
		}
		if _, err := io.ReadFull(r, buf[:length]); err != nil {
			return nil
		}
		if crc32.Checksum(buf[:length], castagnoli) != sum {
			return nil
		}
		if err := fn(buf[:length]); err != nil {
			return err
		}
	}
}
