// Package receiver implements Algorithm 5 of the paper: the per-datacenter
// component that accepts the causally ordered update streams shipped by
// remote Eunomia services and releases each update to the local partitions
// once its causal dependencies are satisfied.
//
// Because every origin ships its updates totally ordered by the origin
// entry of their vector timestamp, dependency checking is trivial — the
// paper's key payoff versus global stabilization: the receiver maintains
// one FIFO queue per remote datacenter plus the SiteTime vector of latest
// applied timestamps, and releases a queue head when every other remote
// entry of its vector is already covered by SiteTime.
//
// The receiver tolerates duplicate and overlapping streams (they arise
// during Eunomia leader failover) by discarding updates whose origin
// timestamp does not advance past what is already enqueued or applied.
package receiver

import (
	"sync"
	"time"

	"eunomia/internal/hlc"
	"eunomia/internal/metrics"
	"eunomia/internal/types"
	"eunomia/internal/vclock"
)

// ApplyFunc routes a released update to the responsible local partition.
// It returns false when the update cannot be executed yet (its payload has
// not arrived, §5); the receiver then retries on its next pass without
// advancing SiteTime.
type ApplyFunc func(u *types.Update, metaArrived time.Time) bool

// Config parameterises a receiver.
type Config struct {
	DC  types.DCID // m, the local datacenter
	DCs int        // M
	// CheckInterval is ρ, the period of the CHECK_PENDING loop.
	// Default 1ms.
	CheckInterval time.Duration
	Apply         ApplyFunc
}

// Receiver coordinates remote update execution for one datacenter.
type Receiver struct {
	cfg Config

	mu       sync.Mutex
	queues   [][]entry // indexed by origin DC; queues[m] unused
	lastEnq  vclock.V  // largest origin timestamp enqueued per origin
	siteTime vclock.V  // SiteTime_m: latest applied per origin

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// Enqueued, Applied, DupDropped count receiver activity.
	Enqueued   metrics.Counter
	Applied    metrics.Counter
	DupDropped metrics.Counter
}

type entry struct {
	u       *types.Update
	arrived time.Time
}

// New starts a receiver. Apply must be set.
func New(cfg Config) *Receiver {
	if cfg.Apply == nil {
		panic("receiver: Config.Apply is required")
	}
	if cfg.CheckInterval <= 0 {
		cfg.CheckInterval = time.Millisecond
	}
	r := &Receiver{
		cfg:      cfg,
		queues:   make([][]entry, cfg.DCs),
		lastEnq:  vclock.New(cfg.DCs),
		siteTime: vclock.New(cfg.DCs),
		stop:     make(chan struct{}),
	}
	r.wg.Add(1)
	go r.loop()
	return r
}

// Enqueue accepts a batch of updates shipped by origin datacenter k, in
// ascending origin-timestamp order (NEW_UPDATE of Algorithm 5). Updates
// whose origin timestamp is not beyond both the queue tail and SiteTime[k]
// are duplicates from a prior or concurrent leader and are dropped.
func (r *Receiver) Enqueue(k types.DCID, batch []*types.Update) {
	now := time.Now()
	r.mu.Lock()
	for _, u := range batch {
		ts := u.VTS.Get(int(k))
		if ts <= r.lastEnq[k] || ts <= r.siteTime[k] {
			r.DupDropped.Inc()
			continue
		}
		r.lastEnq[k] = ts
		r.queues[k] = append(r.queues[k], entry{u: u, arrived: now})
		r.Enqueued.Inc()
	}
	r.mu.Unlock()
}

// SiteTime returns a copy of the applied-updates vector.
func (r *Receiver) SiteTime() vclock.V {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.siteTime.Clone()
}

// QueueLen returns the number of pending updates from origin k.
func (r *Receiver) QueueLen(k types.DCID) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.queues[k])
}

// Flush runs dependency resolution until no further progress is possible,
// equivalent to the tail-recursive FLUSH of Algorithm 5. It is exported so
// tests can drive the receiver deterministically without the timer.
func (r *Receiver) Flush() {
	m := int(r.cfg.DC)
	for {
		progress := false
		for k := 0; k < r.cfg.DCs; k++ {
			if k == m {
				continue
			}
			for {
				r.mu.Lock()
				if len(r.queues[k]) == 0 {
					r.mu.Unlock()
					break
				}
				head := r.queues[k][0]
				if !r.depsSatisfiedLocked(head.u, k) {
					r.mu.Unlock()
					break
				}
				r.mu.Unlock()

				// Apply outside the lock: the partition may take its own
				// locks and fire visibility callbacks.
				if !r.cfg.Apply(head.u, head.arrived) {
					break // payload not yet here; retry next pass
				}

				r.mu.Lock()
				r.siteTime[k] = head.u.VTS.Get(k)
				r.queues[k] = r.queues[k][1:]
				if len(r.queues[k]) == 0 {
					r.queues[k] = nil
				}
				r.mu.Unlock()
				r.Applied.Inc()
				progress = true
			}
		}
		if !progress {
			return
		}
	}
}

// depsSatisfiedLocked checks Algorithm 5 line 12: every remote dependency
// entry other than the origin's own must already be applied locally.
func (r *Receiver) depsSatisfiedLocked(u *types.Update, k int) bool {
	m := int(r.cfg.DC)
	for d := 0; d < r.cfg.DCs; d++ {
		if d == m || d == k {
			continue
		}
		if r.siteTime[d] < u.VTS.Get(d) {
			return false
		}
	}
	return true
}

// SiteTimeEntry returns SiteTime[k].
func (r *Receiver) SiteTimeEntry(k types.DCID) hlc.Timestamp {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.siteTime[k]
}

// Close stops the CHECK_PENDING loop.
func (r *Receiver) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.wg.Wait()
}

func (r *Receiver) loop() {
	defer r.wg.Done()
	ticker := time.NewTicker(r.cfg.CheckInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
			r.Flush()
		}
	}
}
