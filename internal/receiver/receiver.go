// Package receiver implements Algorithm 5 of the paper: the per-datacenter
// component that accepts the causally ordered update streams shipped by
// remote Eunomia services and releases each update to the local partitions
// once its causal dependencies are satisfied.
//
// Because every origin ships its updates totally ordered by the origin
// entry of their vector timestamp, dependency checking is trivial — the
// paper's key payoff versus global stabilization: the receiver maintains
// one FIFO queue per remote datacenter plus the SiteTime vector of latest
// applied timestamps, and releases a queue head when every other remote
// entry of its vector is already covered by SiteTime.
//
// The receiver tolerates duplicate and overlapping streams (they arise
// during Eunomia leader failover) by discarding updates whose origin
// timestamp does not advance past what is already enqueued or applied.
package receiver

import (
	"errors"
	"sync"
	"time"

	"eunomia/internal/hlc"
	"eunomia/internal/metrics"
	"eunomia/internal/types"
	"eunomia/internal/vclock"
	"eunomia/internal/wal"
)

// ApplyFunc routes a released update to the responsible local partition.
// It returns false when the update cannot be executed yet (its payload has
// not arrived, §5); the receiver then retries on its next pass without
// advancing SiteTime.
type ApplyFunc func(u *types.Update, metaArrived time.Time) bool

// Config parameterises a receiver.
type Config struct {
	DC  types.DCID // m, the local datacenter
	DCs int        // M
	// CheckInterval is ρ, the period of the CHECK_PENDING loop.
	// Default 1ms.
	CheckInterval time.Duration
	Apply         ApplyFunc
}

// Receiver coordinates remote update execution for one datacenter.
type Receiver struct {
	cfg Config

	mu       sync.Mutex
	queues   [][]entry // indexed by origin DC; queues[m] unused
	lastEnq  vclock.V  // largest origin timestamp enqueued per origin
	siteTime vclock.V  // SiteTime_m: latest applied per origin

	// Durable state (nil st = volatile receiver, the original behavior).
	// Everything the receiver must not lose across a crash goes through
	// st: enqueued updates (KindPending, logged before release is
	// possible) and durable-apply watermarks (KindSite, logged by
	// MarkDurable once the deployment confirms an apply reached stable
	// storage at the partition side). retain holds applied-but-not-yet-
	// durable entries so a snapshot never compacts them away: on
	// recovery they re-release, and partitions deduplicate by applied
	// watermark.
	st          *wal.Store
	durableSite vclock.V
	retain      [][]entry

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// Enqueued, Applied, DupDropped count receiver activity.
	Enqueued   metrics.Counter
	Applied    metrics.Counter
	DupDropped metrics.Counter
	// Recovered counts entries rebuilt from the WAL by Recover.
	Recovered metrics.Counter
}

type entry struct {
	u       *types.Update
	arrived time.Time
}

// New starts a volatile receiver. Apply must be set.
func New(cfg Config) *Receiver {
	r, err := build(cfg, nil)
	if err != nil {
		panic(err) // unreachable without a store
	}
	return r
}

// Recover starts a durable receiver backed by the snapshot+log store in
// dir, first rebuilding SiteTime and the pending queues from it: a
// restarted receiver process resumes releasing where its durable state
// left off instead of needing a full resync from every origin. Entries
// applied before the crash but not yet confirmed durable (MarkDurable)
// are re-released; partitions deduplicate them by applied watermark.
func Recover(cfg Config, dir string, policy wal.SyncPolicy) (*Receiver, error) {
	return RecoverOptions(cfg, dir, wal.Options{Policy: policy})
}

// RecoverOptions is Recover with the full store option set (group-commit
// knobs, sync metrics); see wal.Options.
func RecoverOptions(cfg Config, dir string, o wal.Options) (*Receiver, error) {
	st, err := wal.OpenStoreOptions(dir, o)
	if err != nil {
		return nil, err
	}
	r, err := build(cfg, st)
	if err != nil {
		st.Close()
		return nil, err
	}
	return r, nil
}

func build(cfg Config, st *wal.Store) (*Receiver, error) {
	if cfg.Apply == nil {
		panic("receiver: Config.Apply is required")
	}
	if cfg.CheckInterval <= 0 {
		cfg.CheckInterval = time.Millisecond
	}
	r := &Receiver{
		cfg:      cfg,
		queues:   make([][]entry, cfg.DCs),
		lastEnq:  vclock.New(cfg.DCs),
		siteTime: vclock.New(cfg.DCs),
		st:       st,
		stop:     make(chan struct{}),
	}
	if st != nil {
		r.durableSite = vclock.New(cfg.DCs)
		r.retain = make([][]entry, cfg.DCs)
		if err := r.replay(); err != nil {
			return nil, err
		}
	}
	r.wg.Add(1)
	go r.loop()
	return r, nil
}

// replay rebuilds the receiver's state from its store. Pending records
// replay in enqueue order per origin, so the lastEnq filter drops the
// duplicates a snapshot crash window can produce; site records advance
// the durable watermark, and queue prefixes at or below it (durably
// applied before the crash) are pruned afterwards.
func (r *Receiver) replay() error {
	err := r.st.Replay(func(rec []byte) error {
		if len(rec) == 0 {
			return wal.ErrBadRecord
		}
		switch rec[0] {
		case wal.KindSite:
			k, ts, err := wal.DecodeSite(rec)
			if err != nil {
				return err
			}
			if int(k) < len(r.durableSite) && ts > r.durableSite[k] {
				r.durableSite[k] = ts
			}
			return nil
		case wal.KindPending:
			_, u, err := wal.DecodeUpdate(rec)
			if err != nil {
				return err
			}
			k := u.Origin
			if int(k) >= len(r.queues) {
				return nil // deployment shrank; drop the stray origin
			}
			ts := u.VTS.Get(int(k))
			if ts <= r.lastEnq[k] {
				return nil // double replay after a snapshot crash window
			}
			r.lastEnq[k] = ts
			r.queues[k] = append(r.queues[k], entry{u: u, arrived: time.Now()})
			r.Recovered.Inc()
			return nil
		default:
			return nil // future record kinds are not ours to reject
		}
	})
	if err != nil {
		return err
	}
	for k := range r.queues {
		q := r.queues[k]
		drop := 0
		for drop < len(q) && q[drop].u.VTS.Get(k) <= r.durableSite[k] {
			drop++
		}
		if drop > 0 {
			r.queues[k] = append([]entry(nil), q[drop:]...)
		}
		// SiteTime restarts at the durable watermark: anything above it
		// re-releases, and the partitions' own durable watermarks make
		// the re-application idempotent.
		r.siteTime[k] = r.durableSite[k]
		if r.lastEnq[k] < r.siteTime[k] {
			r.lastEnq[k] = r.siteTime[k]
		}
	}
	return nil
}

// Enqueue accepts a batch of updates shipped by origin datacenter k, in
// ascending origin-timestamp order (NEW_UPDATE of Algorithm 5). Updates
// whose origin timestamp is not beyond both the queue tail and SiteTime[k]
// are duplicates from a prior or concurrent leader and are dropped.
func (r *Receiver) Enqueue(k types.DCID, batch []*types.Update) {
	now := time.Now()
	accepted := false
	var lastLSN uint64
	r.mu.Lock()
	for _, u := range batch {
		ts := u.VTS.Get(int(k))
		if ts <= r.lastEnq[k] || ts <= r.siteTime[k] {
			r.DupDropped.Inc()
			continue
		}
		if r.st != nil {
			// Log before the flush loop can release it: once an update
			// is accepted here the origin never re-ships it, so losing
			// it to a crash would leave a permanent causal gap. A closed
			// store means the receiver is shutting down — the late
			// delivery is dropped like any message to a dead process.
			// No-wait appends keep the batch together; the durability
			// wait below covers the whole batch at once.
			lsn, err := r.st.AppendNoWait(wal.EncodeUpdate(wal.KindPending, u))
			if err != nil {
				if errors.Is(err, wal.ErrClosed) {
					continue
				}
				panic("receiver: WAL append failed: " + err.Error())
			}
			lastLSN = lsn
			accepted = true
		}
		r.lastEnq[k] = ts
		r.queues[k] = append(r.queues[k], entry{u: u, arrived: now})
		r.Enqueued.Inc()
	}
	st := r.st
	r.mu.Unlock()
	if accepted && st != nil {
		// One fsync per shipped batch (under SyncOnFlush): the paper's
		// 1ms batching cadence bounds the loss window to one batch. Under
		// SyncGroupCommit the wait rides the committer instead — shipped
		// batches from many origins coalesce into shared fsyncs.
		var err error
		if st.Policy() == wal.SyncGroupCommit {
			err = st.WaitDurable(lastLSN)
		} else {
			err = st.Flush()
		}
		if err != nil && !errors.Is(err, wal.ErrClosed) {
			panic("receiver: WAL flush failed: " + err.Error())
		}
	}
}

// SiteTime returns a copy of the applied-updates vector.
func (r *Receiver) SiteTime() vclock.V {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.siteTime.Clone()
}

// QueueLen returns the number of pending updates from origin k.
func (r *Receiver) QueueLen(k types.DCID) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.queues[k])
}

// Flush runs dependency resolution until no further progress is possible,
// equivalent to the tail-recursive FLUSH of Algorithm 5. It is exported so
// tests can drive the receiver deterministically without the timer.
func (r *Receiver) Flush() {
	m := int(r.cfg.DC)
	for {
		progress := false
		for k := 0; k < r.cfg.DCs; k++ {
			if k == m {
				continue
			}
			for {
				r.mu.Lock()
				if len(r.queues[k]) == 0 {
					r.mu.Unlock()
					break
				}
				head := r.queues[k][0]
				if !r.depsSatisfiedLocked(head.u, k) {
					r.mu.Unlock()
					break
				}
				r.mu.Unlock()

				// Apply outside the lock: the partition may take its own
				// locks and fire visibility callbacks.
				if !r.cfg.Apply(head.u, head.arrived) {
					break // payload not yet here; retry next pass
				}

				r.mu.Lock()
				r.siteTime[k] = head.u.VTS.Get(k)
				if r.st != nil {
					// Applied but not yet durable at the partition side:
					// keep the entry so snapshots preserve it; it drops
					// when MarkDurable covers its timestamp.
					r.retain[k] = append(r.retain[k], head)
				}
				r.queues[k] = r.queues[k][1:]
				if len(r.queues[k]) == 0 {
					r.queues[k] = nil
				}
				r.mu.Unlock()
				r.Applied.Inc()
				progress = true
			}
		}
		if !progress {
			return
		}
	}
}

// depsSatisfiedLocked checks Algorithm 5 line 12: every remote dependency
// entry other than the origin's own must already be applied locally.
func (r *Receiver) depsSatisfiedLocked(u *types.Update, k int) bool {
	m := int(r.cfg.DC)
	for d := 0; d < r.cfg.DCs; d++ {
		if d == m || d == k {
			continue
		}
		if r.siteTime[d] < u.VTS.Get(d) {
			return false
		}
	}
	return true
}

// SiteTimeEntry returns SiteTime[k].
func (r *Receiver) SiteTimeEntry(k types.DCID) hlc.Timestamp {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.siteTime[k]
}

// MarkDurable records that every update from origin k at or below ts has
// been durably applied (the deployment calls it once the partition side's
// WAL covers the apply — after a window prune on the split-role path,
// after the partition flush pass when colocated). The durable watermark
// is what Recover restarts SiteTime from; retained entries it covers are
// released for compaction. The record is buffered — FlushWAL (or the next
// snapshot) makes it stable, and an unflushed mark merely means a little
// extra re-release work after a crash.
func (r *Receiver) MarkDurable(k types.DCID, ts hlc.Timestamp) {
	if r.st == nil || int(k) >= len(r.durableSite) {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if ts <= r.durableSite[k] {
		return
	}
	if _, err := r.st.AppendNoWait(wal.EncodeSite(k, ts)); err != nil {
		if errors.Is(err, wal.ErrClosed) {
			return // shutdown race with a late durability ack
		}
		panic("receiver: WAL append failed: " + err.Error())
	}
	r.durableSite[k] = ts
	keep := r.retain[k]
	drop := 0
	for drop < len(keep) && keep[drop].u.VTS.Get(int(k)) <= ts {
		drop++
	}
	if drop > 0 {
		r.retain[k] = append([]entry(nil), keep[drop:]...)
	}
}

// DurableSiteEntry returns the durable watermark for origin k (0 for a
// volatile receiver).
func (r *Receiver) DurableSiteEntry(k types.DCID) hlc.Timestamp {
	if r.st == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.durableSite[k]
}

// Retained reports applied-but-not-yet-durable entries buffered for
// snapshot preservation (tests; 0 for a volatile receiver).
func (r *Receiver) Retained() int {
	if r.st == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, q := range r.retain {
		n += len(q)
	}
	return n
}

// FlushWAL forces buffered records (pending updates, durable-site marks)
// to stable storage. No-op for a volatile receiver.
func (r *Receiver) FlushWAL() error {
	if r.st == nil {
		return nil
	}
	return r.st.Flush()
}

// WALSize reports the live log's size (0 for a volatile receiver).
func (r *Receiver) WALSize() int64 {
	if r.st == nil {
		return 0
	}
	return r.st.LogSize()
}

// WALSyncErr reports the store's sticky sync error (nil for a volatile
// receiver, and while durability holds); see wal.Log.SyncErr.
func (r *Receiver) WALSyncErr() error {
	if r.st == nil {
		return nil
	}
	return r.st.SyncErr()
}

// MaybeSnapshot compacts the store when the log outgrows threshold
// (wal.DefaultSnapshotThreshold when <= 0): the snapshot is the durable
// watermark per origin plus every entry not yet covered by it (retained
// and still-queued), which is exactly what replay rebuilds.
func (r *Receiver) MaybeSnapshot(threshold int64) (bool, error) {
	if r.st == nil {
		return false, nil
	}
	if threshold <= 0 {
		threshold = wal.DefaultSnapshotThreshold
	}
	if r.st.LogSize() < threshold {
		return false, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	err := r.st.Snapshot(func(emit func([]byte) error) error {
		for k := range r.queues {
			if r.durableSite[k] > 0 {
				if err := emit(wal.EncodeSite(types.DCID(k), r.durableSite[k])); err != nil {
					return err
				}
			}
			for _, e := range r.retain[k] {
				if err := emit(wal.EncodeUpdate(wal.KindPending, e.u)); err != nil {
					return err
				}
			}
			for _, e := range r.queues[k] {
				if err := emit(wal.EncodeUpdate(wal.KindPending, e.u)); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return false, err
	}
	return true, nil
}

// Close stops the CHECK_PENDING loop and, for a durable receiver, flushes
// and closes the store.
func (r *Receiver) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.wg.Wait()
	if r.st != nil {
		_ = r.st.Close()
	}
}

func (r *Receiver) loop() {
	defer r.wg.Done()
	ticker := time.NewTicker(r.cfg.CheckInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
			r.Flush()
		}
	}
}
