package receiver

import (
	"sync"
	"testing"
	"time"

	"eunomia/internal/hlc"
	"eunomia/internal/types"
	"eunomia/internal/vclock"
)

// applySink records applied updates and can refuse (missing payload).
type applySink struct {
	mu      sync.Mutex
	applied []*types.Update
	refuse  map[types.UpdateID]bool
}

func newApplySink() *applySink {
	return &applySink{refuse: map[types.UpdateID]bool{}}
}

func (a *applySink) apply(u *types.Update, _ time.Time) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.refuse[u.ID()] {
		return false
	}
	a.applied = append(a.applied, u)
	return true
}

func (a *applySink) snapshot() []*types.Update {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]*types.Update(nil), a.applied...)
}

func (a *applySink) setRefuse(id types.UpdateID, v bool) {
	a.mu.Lock()
	a.refuse[id] = v
	a.mu.Unlock()
}

// ru builds a remote update originating at origin with the given vector.
func ru(origin types.DCID, key types.Key, vts ...uint64) *types.Update {
	v := make(vclock.V, len(vts))
	for i, x := range vts {
		v[i] = hlc.Timestamp(x)
	}
	return &types.Update{
		Key:    key,
		Origin: origin,
		TS:     v[origin],
		VTS:    v,
	}
}

func newRecv(apply ApplyFunc) *Receiver {
	return New(Config{DC: 0, DCs: 3, CheckInterval: time.Hour, Apply: apply})
}

func TestInOrderApplyNoDeps(t *testing.T) {
	sink := newApplySink()
	r := newRecv(sink.apply)
	defer r.Close()
	r.Enqueue(1, []*types.Update{
		ru(1, "a", 0, 10, 0),
		ru(1, "b", 0, 20, 0),
	})
	r.Flush()
	got := sink.snapshot()
	if len(got) != 2 || got[0].Key != "a" || got[1].Key != "b" {
		t.Fatalf("applied %v", got)
	}
	if r.SiteTimeEntry(1) != 20 {
		t.Fatalf("SiteTime[1] = %v, want 20", r.SiteTimeEntry(1))
	}
}

func TestDependencyGating(t *testing.T) {
	sink := newApplySink()
	r := newRecv(sink.apply)
	defer r.Close()

	// An update from dc1 depending on dc2's ts 50.
	u := ru(1, "dependent", 0, 10, 50)
	r.Enqueue(1, []*types.Update{u})
	r.Flush()
	if len(sink.snapshot()) != 0 {
		t.Fatal("update applied before its dc2 dependency")
	}

	// The dc2 update arrives; both must now apply.
	r.Enqueue(2, []*types.Update{ru(2, "dep", 0, 0, 50)})
	r.Flush()
	got := sink.snapshot()
	if len(got) != 2 {
		t.Fatalf("applied %d, want 2", len(got))
	}
	if got[0].Key != "dep" || got[1].Key != "dependent" {
		t.Fatalf("apply order wrong: %v, %v", got[0].Key, got[1].Key)
	}
}

func TestFIFOWithinOrigin(t *testing.T) {
	sink := newApplySink()
	r := newRecv(sink.apply)
	defer r.Close()
	// Head blocked on a dependency; the next update from the same
	// origin has no dependency but must still wait (per-origin FIFO).
	r.Enqueue(1, []*types.Update{
		ru(1, "blocked", 0, 10, 99),
		ru(1, "free", 0, 20, 0),
	})
	r.Flush()
	if len(sink.snapshot()) != 0 {
		t.Fatal("later update overtook a blocked head")
	}
	r.Enqueue(2, []*types.Update{ru(2, "d", 0, 0, 99)})
	r.Flush()
	if got := sink.snapshot(); len(got) != 3 {
		t.Fatalf("applied %d, want 3", len(got))
	}
}

func TestDuplicateStreamsDiscarded(t *testing.T) {
	sink := newApplySink()
	r := newRecv(sink.apply)
	defer r.Close()
	batch := []*types.Update{ru(1, "a", 0, 10, 0), ru(1, "b", 0, 20, 0)}
	r.Enqueue(1, batch)
	r.Flush()
	// A new leader reships an overlapping stream.
	r.Enqueue(1, []*types.Update{ru(1, "a", 0, 10, 0), ru(1, "b", 0, 20, 0), ru(1, "c", 0, 30, 0)})
	r.Flush()
	got := sink.snapshot()
	if len(got) != 3 {
		t.Fatalf("applied %d, want 3 (duplicates must drop)", len(got))
	}
	if r.DupDropped.Load() != 2 {
		t.Fatalf("DupDropped = %d, want 2", r.DupDropped.Load())
	}
}

func TestDuplicateAgainstQueuedTail(t *testing.T) {
	sink := newApplySink()
	r := newRecv(sink.apply)
	defer r.Close()
	// Queue a blocked update, then a duplicate arrives before it was
	// ever applied: it must be filtered against the queue tail.
	u := ru(1, "blocked", 0, 10, 99)
	r.Enqueue(1, []*types.Update{u})
	r.Enqueue(1, []*types.Update{u})
	if r.QueueLen(1) != 1 {
		t.Fatalf("queue len = %d, want 1", r.QueueLen(1))
	}
}

func TestPayloadMissingRetries(t *testing.T) {
	sink := newApplySink()
	r := newRecv(sink.apply)
	defer r.Close()
	u := ru(1, "nopayload", 0, 10, 0)
	sink.setRefuse(u.ID(), true)
	r.Enqueue(1, []*types.Update{u})
	r.Flush()
	if len(sink.snapshot()) != 0 {
		t.Fatal("applied without payload")
	}
	if r.SiteTimeEntry(1) != 0 {
		t.Fatal("SiteTime advanced past an unapplied update")
	}
	sink.setRefuse(u.ID(), false)
	r.Flush()
	if len(sink.snapshot()) != 1 {
		t.Fatal("retry did not apply")
	}
}

func TestCascadingRelease(t *testing.T) {
	sink := newApplySink()
	r := newRecv(sink.apply)
	defer r.Close()
	// dc2's update depends on dc1's; dc1's arrives second. One flush
	// must release both (the paper's FLUSH restarts from the first
	// queue after progress).
	r.Enqueue(2, []*types.Update{ru(2, "second", 0, 10, 5)})
	r.Enqueue(1, []*types.Update{ru(1, "first", 0, 10, 0)})
	r.Flush()
	got := sink.snapshot()
	if len(got) != 2 {
		t.Fatalf("applied %d, want 2", len(got))
	}
	if got[0].Key != "first" || got[1].Key != "second" {
		t.Fatal("cascade order wrong")
	}
}

func TestPeriodicLoopFlushes(t *testing.T) {
	sink := newApplySink()
	r := New(Config{DC: 0, DCs: 2, CheckInterval: time.Millisecond, Apply: sink.apply})
	defer r.Close()
	r.Enqueue(1, []*types.Update{ru(1, "x", 0, 10)})
	deadline := time.Now().Add(time.Second)
	for len(sink.snapshot()) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if len(sink.snapshot()) != 1 {
		t.Fatal("loop did not flush")
	}
}

func TestSiteTimeSnapshot(t *testing.T) {
	sink := newApplySink()
	r := newRecv(sink.apply)
	defer r.Close()
	r.Enqueue(1, []*types.Update{ru(1, "a", 0, 7, 0)})
	r.Flush()
	st := r.SiteTime()
	if st.Get(1) != 7 {
		t.Fatalf("SiteTime = %v", st)
	}
	st.Set(1, 99) // snapshot must be a copy
	if r.SiteTimeEntry(1) != 7 {
		t.Fatal("SiteTime returned internal state")
	}
}

func TestApplyRequired(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil Apply should panic")
		}
	}()
	New(Config{DC: 0, DCs: 2})
}
