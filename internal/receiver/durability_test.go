package receiver

import (
	"testing"
	"time"

	"eunomia/internal/types"
	"eunomia/internal/wal"
)

// recoverRecv builds a durable receiver over dir with the given sink.
func recoverRecv(t *testing.T, dir string, sink *applySink) *Receiver {
	t.Helper()
	r, err := Recover(Config{DC: 0, DCs: 3, CheckInterval: time.Hour, Apply: sink.apply}, dir, wal.SyncOnFlush)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRecoverRebuildsQueuesAndSiteTime crashes a durable receiver with a
// mix of applied-and-durable, applied-but-not-durable, and still-pending
// updates, and checks the successor releases exactly what the crash left
// unsettled.
func TestRecoverRebuildsQueuesAndSiteTime(t *testing.T) {
	dir := t.TempDir()
	sink := newApplySink()
	r := recoverRecv(t, dir, sink)

	// Three updates from origin 1: u1 applied + durable, u2 applied but
	// never marked durable, u3 blocked on a missing payload (pending).
	u1, u2, u3 := ru(1, "a", 0, 10, 0), ru(1, "b", 0, 20, 0), ru(1, "c", 0, 30, 0)
	sink.setRefuse(u3.ID(), true)
	r.Enqueue(1, []*types.Update{u1, u2, u3})
	r.Flush()
	if got := len(sink.snapshot()); got != 2 {
		t.Fatalf("applied %d before crash, want 2", got)
	}
	r.MarkDurable(1, 10)
	if got := r.Retained(); got != 1 {
		t.Fatalf("retained %d applied-but-undurable entries, want 1 (u2)", got)
	}
	r.Close() // flushes and closes the store

	// Crash and recover: u2 and u3 must re-release, u1 must not.
	sink2 := newApplySink()
	r2 := recoverRecv(t, dir, sink2)
	defer r2.Close()
	if got := r2.SiteTimeEntry(1); got != 10 {
		t.Fatalf("recovered SiteTime[1]=%v, want durable watermark 10", got)
	}
	if got := r2.QueueLen(1); got != 2 {
		t.Fatalf("recovered queue holds %d entries, want 2 (u2, u3)", got)
	}
	r2.Flush()
	applied := sink2.snapshot()
	if len(applied) != 2 || applied[0].Key != "b" || applied[1].Key != "c" {
		keys := make([]types.Key, len(applied))
		for i, u := range applied {
			keys[i] = u.Key
		}
		t.Fatalf("recovered receiver applied %v, want [b c]", keys)
	}
	if got := r2.SiteTimeEntry(1); got != 30 {
		t.Fatalf("SiteTime[1]=%v after recovered release, want 30", got)
	}
}

// TestRecoverDropsDuplicateShipments checks the recovered lastEnq filter:
// an origin whose shipment is retransmitted after the restart (fabric
// at-least-once) must not enqueue twice.
func TestRecoverDropsDuplicateShipments(t *testing.T) {
	dir := t.TempDir()
	sink := newApplySink()
	r := recoverRecv(t, dir, sink)
	u := ru(1, "x", 0, 10, 0)
	r.Enqueue(1, []*types.Update{u})
	r.Close()

	sink2 := newApplySink()
	r2 := recoverRecv(t, dir, sink2)
	defer r2.Close()
	r2.Enqueue(1, []*types.Update{u}) // the retransmitted shipment
	if got := r2.QueueLen(1); got != 1 {
		t.Fatalf("queue holds %d entries after duplicate shipment, want 1", got)
	}
	if got := r2.DupDropped.Load(); got != 1 {
		t.Fatalf("DupDropped=%d, want 1", got)
	}
}

// TestReceiverSnapshotCompaction fills the log past a tiny threshold,
// snapshots, and verifies recovery from the compacted store is complete —
// including entries that were applied but not durable at snapshot time.
func TestReceiverSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	sink := newApplySink()
	r := recoverRecv(t, dir, sink)

	var updates []*types.Update
	for i := 0; i < 50; i++ {
		updates = append(updates, ru(1, types.Key("k"+string(rune('a'+i%26)))+types.Key(string(rune('0'+i/26))), 0, uint64(10*(i+1)), 0))
	}
	r.Enqueue(1, updates)
	r.Flush()             // applies all 50
	r.MarkDurable(1, 250) // first 25 durable; 25 retained
	snapped, err := r.MaybeSnapshot(64)
	if err != nil {
		t.Fatal(err)
	}
	if !snapped {
		t.Fatal("log did not trigger a 64-byte-threshold snapshot")
	}
	r.Close()

	sink2 := newApplySink()
	r2 := recoverRecv(t, dir, sink2)
	defer r2.Close()
	if got := r2.SiteTimeEntry(1); got != 250 {
		t.Fatalf("recovered SiteTime[1]=%v, want 250", got)
	}
	if got := r2.QueueLen(1); got != 25 {
		t.Fatalf("recovered queue holds %d entries, want the 25 undurable ones", got)
	}
	r2.Flush()
	if got := len(sink2.snapshot()); got != 25 {
		t.Fatalf("recovered receiver re-applied %d, want 25", got)
	}
}
