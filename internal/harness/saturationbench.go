package harness

// SaturationBench is the headline number for the group-commit work:
// end-to-end client update throughput at a fixed durability guarantee.
// Four legs run the same workload — concurrent clients hammering a
// partition group — under the four WAL policies. The interesting pair is
// SyncEachAppend vs SyncGroupCommit: both return from Update only when
// the record is on disk (identical loss window: none), but each-append
// pays one serialized fsync per update while group commit folds every
// concurrent updater into one fsync per disk round trip.

import (
	"fmt"
	"os"
	"sync"
	"time"

	"eunomia/internal/fabric"
	"eunomia/internal/geostore"
	"eunomia/internal/simnet"
	"eunomia/internal/types"
	"eunomia/internal/wal"
)

// SaturationBenchOptions parameterises the policy comparison.
type SaturationBenchOptions struct {
	// Workers is the number of concurrent client goroutines (default 128)
	// — the concurrency group commit amortizes over.
	Workers int
	// Partitions per datacenter, i.e. WAL stores (default 2).
	Partitions int
	// ValueBytes sizes each value (default 128).
	ValueBytes int
	// Duration is the measured wall time per leg (default 400ms).
	Duration time.Duration
}

func (o *SaturationBenchOptions) fill() {
	if o.Workers <= 0 {
		o.Workers = 128
	}
	if o.Partitions <= 0 {
		o.Partitions = 2
	}
	if o.ValueBytes <= 0 {
		o.ValueBytes = 128
	}
	if o.Duration <= 0 {
		o.Duration = 400 * time.Millisecond
	}
}

// SaturationBenchResult reports client updates per second under each WAL
// policy, plus the headline ratio.
type SaturationBenchResult struct {
	// VolatileOps: no WAL at all — the ceiling.
	VolatileOps float64
	// FlushOps: wal.SyncOnFlush — buffered appends, cadence fsyncs, loss
	// window of one batch interval.
	FlushOps float64
	// AlwaysOps: wal.SyncEachAppend — durable on return, one fsync per
	// update.
	AlwaysOps float64
	// GroupOps: wal.SyncGroupCommit — durable on return, fsyncs shared
	// across concurrent updaters.
	GroupOps float64
	// GroupVsAlways is GroupOps / AlwaysOps: what coalescing buys at an
	// identical durable-on-return guarantee.
	GroupVsAlways float64
}

// SaturationBench measures sustained client update throughput under each
// WAL sync policy on an otherwise identical single-datacenter deployment.
func SaturationBench(o SaturationBenchOptions) (SaturationBenchResult, error) {
	o.fill()
	legs := []struct {
		name    string
		durable bool
		policy  wal.SyncPolicy
	}{
		{"volatile", false, wal.SyncOnFlush},
		{"flush", true, wal.SyncOnFlush},
		{"always", true, wal.SyncEachAppend},
		{"group", true, wal.SyncGroupCommit},
	}
	var out SaturationBenchResult
	for _, leg := range legs {
		ops, err := saturationLeg(o, leg.durable, leg.policy)
		if err != nil {
			return SaturationBenchResult{}, fmt.Errorf("%s leg: %w", leg.name, err)
		}
		switch leg.name {
		case "volatile":
			out.VolatileOps = ops
		case "flush":
			out.FlushOps = ops
		case "always":
			out.AlwaysOps = ops
		case "group":
			out.GroupOps = ops
		}
	}
	if out.AlwaysOps > 0 {
		out.GroupVsAlways = out.GroupOps / out.AlwaysOps
	}
	return out, nil
}

func saturationLeg(o SaturationBenchOptions, durable bool, policy wal.SyncPolicy) (float64, error) {
	net := simnet.New(func(from, to fabric.Addr) time.Duration { return 0 })
	defer net.Close()

	nc := geostore.NodeConfig{
		Config: geostore.Config{DCs: 1, Partitions: o.Partitions},
		DC:     0, Roles: geostore.RoleAll, Fabric: net,
	}
	if durable {
		dir, err := os.MkdirTemp("", "eunomia-saturation-bench")
		if err != nil {
			return 0, err
		}
		defer os.RemoveAll(dir)
		nc.DataDir = dir
		nc.WALSync = policy
	}
	node, err := geostore.OpenNode(nc)
	if err != nil {
		return 0, err
	}
	defer func() { node.CloseIngress(); node.CloseServices() }()

	value := make([]byte, o.ValueBytes)
	counts := make([]int64, o.Workers)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < o.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := node.NewClient()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := types.Key(fmt.Sprintf("w%d-k%d", w, i&511))
				if err := c.Update(key, value); err != nil {
					return
				}
				counts[w]++
			}
		}(w)
	}
	begin := time.Now()
	time.Sleep(o.Duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(begin).Seconds()

	var total int64
	for _, c := range counts {
		total += c
	}
	return float64(total) / elapsed, nil
}
