package harness

import (
	"time"

	"eunomia/internal/types"
	"eunomia/internal/workload"
)

// Fig1Point is one (system, stabilization-interval) measurement of the
// motivation experiment.
type Fig1Point struct {
	System     SystemKind
	Interval   time.Duration // clock computation interval (GentleRain/Cure only)
	Throughput float64       // ops/s
	PenaltyPct float64       // throughput loss vs the eventual baseline, in %
	// VisP90 is the 90th-percentile remote update visibility latency at
	// dc1 for updates originating at dc0 (network travel included in the
	// arrival stamp, i.e. already factored out as in the paper).
	VisP90 time.Duration
}

// Fig1Result reproduces Figure 1: the update visibility latency versus
// throughput tradeoff. Sequencer-based systems pay a flat throughput
// penalty (the synchronous hop in the client's critical path); global
// stabilization systems trade throughput against visibility latency via
// the clock computation interval.
type Fig1Result struct {
	Baseline  float64 // eventual-consistency throughput (ops/s)
	Intervals []time.Duration
	Points    []Fig1Point
}

// DefaultFig1Intervals mirrors the paper's sweep; the paper's "0" tick is
// its smallest practical interval, which we render as 1ms.
var DefaultFig1Intervals = []time.Duration{
	1 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond,
	50 * time.Millisecond, 100 * time.Millisecond,
}

// Fig1 runs the motivation experiment: 3 DCs, 90:10 reads:writes, uniform
// keys; eventual consistency as the baseline; S-Seq and A-Seq once each
// (the interval does not apply to them); GentleRain and Cure across the
// interval sweep.
// Fig1SequencerRTT is the emulated intra-datacenter round trip of the
// synchronous sequencer hop; with the default think time it yields a
// penalty in the paper's ~15% ballpark for the 90:10 mix.
const Fig1SequencerRTT = 300 * time.Microsecond

// Fig1ThinkTime stands in for the per-operation service time of the
// paper's Riak deployment, so the sequencer hop is measured against a
// realistic base cost.
const Fig1ThinkTime = 200 * time.Microsecond

func Fig1(o Options, intervals []time.Duration) Fig1Result {
	o.fill()
	if o.ThinkTime <= 0 {
		o.ThinkTime = Fig1ThinkTime
	}
	if len(intervals) == 0 {
		intervals = DefaultFig1Intervals
	}
	mix := workload.Mix{ReadPct: 90}
	keys := workload.Uniform{N: workload.DefaultKeys}

	res := Fig1Result{Intervals: intervals}

	measure := func(kind SystemKind, b buildOpts, interval time.Duration) Fig1Point {
		settle()
		sys := buildSystem(kind, o, b)
		defer sys.close()
		r := runWorkload(o, sys, mix, keys)
		p90 := time.Duration(sys.vis.Hist(types.DCID(0), types.DCID(1)).Percentile(90))
		return Fig1Point{
			System:     kind,
			Interval:   interval,
			Throughput: r.Throughput(),
			VisP90:     p90,
		}
	}

	base := buildSystem(Eventual, o, buildOpts{})
	baseRes := runWorkload(o, base, mix, keys)
	base.close()
	res.Baseline = baseRes.Throughput()

	penalty := func(thr float64) float64 {
		if res.Baseline <= 0 {
			return 0
		}
		return (res.Baseline - thr) / res.Baseline * 100
	}

	for _, kind := range []SystemKind{SSeq, ASeq} {
		pt := measure(kind, buildOpts{sequencerDelay: Fig1SequencerRTT}, 0)
		pt.PenaltyPct = penalty(pt.Throughput)
		res.Points = append(res.Points, pt)
	}
	for _, kind := range []SystemKind{GentleRain, Cure} {
		for _, iv := range intervals {
			pt := measure(kind, buildOpts{stabInterval: iv / 2, hbInterval: iv}, iv)
			pt.PenaltyPct = penalty(pt.Throughput)
			res.Points = append(res.Points, pt)
		}
	}
	return res
}
