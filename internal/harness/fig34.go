package harness

import (
	"sync"
	"time"

	"eunomia/internal/eunomia"
	"eunomia/internal/hlc"
	"eunomia/internal/metrics"
	"eunomia/internal/types"
)

// Fig3Point is one fault-tolerance configuration's throughput.
type Fig3Point struct {
	Config     string // "Eunomia Non-FT", "Eunomia 2-FT", "Sequencer 3-FT", ...
	Throughput float64
	Normalized float64 // against Eunomia Non-FT
}

// Fig3Result reproduces Figure 3: the throughput cost of fault tolerance.
// The paper reports ~9% overhead for replicated Eunomia regardless of the
// replica count (replicas never coordinate) versus ~33% for a
// chain-replicated sequencer (whose replicas serialize every request).
type Fig3Result struct {
	Points []Fig3Point
}

// Fig3 measures Eunomia in non-FT mode and with 1-3 replicas, and the
// sequencer plain and with a 3-replica chain, at the given partition
// count (the paper uses its Figure 2 saturation point, 60).
func Fig3(o ServiceOptions, partitions int) Fig3Result {
	o.fill()
	if partitions <= 0 {
		partitions = 60
	}
	var res Fig3Result
	base := eunomiaSaturation(o, partitions, 1, true, eunomia.RedBlack)
	add := func(name string, thr float64) {
		norm := 0.0
		if base > 0 {
			norm = thr / base
		}
		res.Points = append(res.Points, Fig3Point{Config: name, Throughput: thr, Normalized: norm})
	}
	add("Eunomia Non-FT", base)
	for r := 1; r <= 3; r++ {
		thr := eunomiaSaturation(o, partitions, r, false, eunomia.RedBlack)
		add(formatFT("Eunomia", r), thr)
	}
	add("Sequencer Non-FT", sequencerSaturation(o, partitions, 0))
	add("Sequencer 3-FT", sequencerSaturation(o, partitions, 3))
	return res
}

func formatFT(prefix string, r int) string {
	return prefix + " " + string(rune('0'+r)) + "-FT"
}

// Fig4Options shape the failure-impact time series. The paper runs ~700s
// with crashes at 160s and 470s; the defaults compress the same three-act
// structure into 12s.
type Fig4Options struct {
	Total  time.Duration // default 12s
	Crash1 time.Duration // crash replica 0 (the initial leader); default 4s
	Crash2 time.Duration // crash replica 1; default 8s
	Bucket time.Duration // time-series resolution; default 500ms
	// Partitions drives the service as in Figure 2; default 30 (kept
	// moderate so the run is CPU-stable over the whole series).
	Partitions    int
	BatchInterval time.Duration
	MaxPending    int
	// PerPartitionRate caps each partition stream's offered load in
	// ops/s, as in Figure 2 (default 33000).
	PerPartitionRate int
}

func (o *Fig4Options) fill() {
	if o.Total <= 0 {
		o.Total = 12 * time.Second
	}
	if o.Crash1 <= 0 {
		o.Crash1 = 4 * time.Second
	}
	if o.Crash2 <= 0 {
		o.Crash2 = 8 * time.Second
	}
	if o.Bucket <= 0 {
		o.Bucket = 500 * time.Millisecond
	}
	if o.Partitions <= 0 {
		o.Partitions = 30
	}
	if o.BatchInterval <= 0 {
		o.BatchInterval = time.Millisecond
	}
	if o.MaxPending <= 0 {
		o.MaxPending = 1024
	}
	if o.PerPartitionRate == 0 {
		o.PerPartitionRate = 33000
	}
}

// Fig4Series is one configuration's throughput over time.
type Fig4Series struct {
	Config  string
	Buckets []float64 // ops/s per bucket
	// Normalized divides by the Non-FT run's mean steady-state rate.
	Normalized []float64
}

// Fig4Result reproduces Figure 4: the impact of Eunomia replica crashes.
// Expected shape: 1-FT drops to zero at the first crash; 2-FT drops to
// zero at the second; 3-FT recovers after both; recovery reaches ~95-100%
// of the non-fault-tolerant rate within a few stabilization periods.
type Fig4Result struct {
	Options Fig4Options
	Series  []Fig4Series
}

// Fig4 runs the Non-FT reference and the 1/2/3-replica configurations,
// crashing replica 0 at Crash1 and replica 1 at Crash2.
func Fig4(o Fig4Options) Fig4Result {
	o.fill()
	res := Fig4Result{Options: o}

	runSeries := func(replicas int, fireAndForget bool, crashes bool) []float64 {
		series := metrics.NewTimeSeries(o.Bucket)
		counter := newDedupCounter(series)
		cluster := eunomia.NewCluster(replicas, eunomia.Config{
			Partitions:     o.Partitions,
			StableInterval: time.Millisecond,
		}, func(_ types.ReplicaID, ops []*types.Update) { counter.consume(ops) })

		stop := make(chan struct{})
		var wg sync.WaitGroup
		clients := make([]*eunomia.Client, o.Partitions)
		for i := 0; i < o.Partitions; i++ {
			clock := hlc.NewClock(nil)
			clients[i] = eunomia.NewClient(eunomia.ClientConfig{
				Partition:     types.PartitionID(i),
				BatchInterval: o.BatchInterval,
				MaxPending:    o.MaxPending,
				FireAndForget: fireAndForget,
			}, eunomia.ClusterConns(cluster), clock)
			wg.Add(1)
			go func(i int, clock *hlc.Clock) {
				defer wg.Done()
				producePartition(stop, clients[i], clock, types.PartitionID(i), o.PerPartitionRate)
			}(i, clock)
		}

		if crashes {
			time.AfterFunc(o.Crash1, func() { cluster.Replica(0).Stop() })
			if replicas > 1 {
				time.AfterFunc(o.Crash2, func() { cluster.Replica(1).Stop() })
			}
		}

		time.Sleep(o.Total)
		close(stop)
		// Close clients before joining producers: a producer can be
		// parked in Add's backpressure wait (all replicas dead in the
		// 1-FT run) and only Close wakes it.
		for _, c := range clients {
			c.Close()
		}
		wg.Wait()
		cluster.Stop()
		rates := series.Rates()
		// A crashed configuration stops recording, so its series stops
		// growing; pad with explicit zeros out to the run length.
		want := int(o.Total / o.Bucket)
		for len(rates) < want {
			rates = append(rates, 0)
		}
		if len(rates) > want {
			rates = rates[:want]
		}
		if len(rates) > 0 {
			rates = rates[:len(rates)-1] // final bucket is partial
		}
		return rates
	}

	nonFT := runSeries(1, true, false)
	res.Series = append(res.Series, Fig4Series{Config: "Non-FT", Buckets: nonFT})

	for r := 1; r <= 3; r++ {
		buckets := runSeries(r, false, true)
		res.Series = append(res.Series, Fig4Series{Config: formatFT("Eunomia", r), Buckets: buckets})
	}

	// Normalize every series against the Non-FT steady-state mean
	// (skipping the first bucket, which includes ramp-up).
	mean := 0.0
	n := 0
	for i := 1; i < len(nonFT); i++ {
		mean += nonFT[i]
		n++
	}
	if n > 0 {
		mean /= float64(n)
	}
	for i := range res.Series {
		s := &res.Series[i]
		s.Normalized = make([]float64, len(s.Buckets))
		for j, b := range s.Buckets {
			if mean > 0 {
				s.Normalized[j] = b / mean
			}
		}
	}
	return res
}
