package harness

// ChaosBench: randomized, seeded fault schedules against every system
// mode, with end-to-end invariant checking after the cluster heals.
//
// Each run draws a self-healing faults.RandomSchedule from a menu of the
// faults that mode's protocol is designed to absorb — duplicate delivery
// everywhere (every mode but eventual deduplicates), Eunomia replica
// crashes where there is a replica set to fail over, and
// partition/crash/fsync-err episodes on the split-role durable deployment
// whose windowed release stream retransmits and rejoins. Send-once simnet
// edges (the leader's cross-DC metadata ship, payload batchers) are
// deliberately NOT cut: the in-process fabric has no retransmission, so a
// drop there is outside every mode's tolerance envelope — the TCP
// transport owns loss/corruption faults, and internal/transport tests
// them directly against its retransmitting protocol.
//
// After the schedule's horizon the harness force-heals, waits for
// re-convergence, and verifies four invariants:
//
//  1. converged    — every issued update is visible at every datacenter
//     with its written value (no loss, no divergence), plus the store's
//     own version-level Convergent() check where it exists.
//  2. exactly-once — no (datacenter, update) pair was applied twice
//     within one node incarnation (a crash legitimately loses the
//     applied-but-not-durable suffix, which the stream re-releases into
//     the next incarnation; the per-incarnation check is the strongest
//     true claim).
//  3. durable-watermark — every release-stream sequence the applier
//     advertises as Durable is covered by a torn-tail-tolerant
//     wal.Replay of its live stream store (split mode).
//  4. read-your-writes — a session token minted by a Put at one
//     datacenter's front door observes its write from another
//     datacenter's front door (geostore modes).
//
// A failing run reports its seed and the exact schedule it drew, and the
// one-command reproduction recipe (TestChaosRepro).

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"eunomia/internal/eventual"
	"eunomia/internal/fabric"
	"eunomia/internal/faults"
	"eunomia/internal/geostore"
	"eunomia/internal/globalstab"
	"eunomia/internal/sequencer"
	"eunomia/internal/simnet"
	"eunomia/internal/types"
	"eunomia/internal/wal"
	"eunomia/internal/workload"
)

// ChaosModes is the full mode matrix: the paper's systems plus the
// deployment shapes whose fault tolerance differs (propagation tree,
// split-role durable node under group commit).
var ChaosModes = []string{
	"eunomia", "eunomia-tree", "eunomia-split",
	"sequencer", "globalstab", "cure", "eventual",
}

// ChaosOptions parameterises a chaos sweep.
type ChaosOptions struct {
	// Modes to run (default ChaosModes).
	Modes []string
	// SeedsPerMode is how many randomized schedules each mode faces
	// (default 3). Seeds are distinct across the whole sweep.
	SeedsPerMode int
	// BaseSeed numbers the first run (default 1); run i uses BaseSeed+i.
	BaseSeed int64
	// Horizon is the fault-schedule length (default 2s); every fault is
	// injected and undone within it.
	Horizon time.Duration
	// Writes is the update count each writing datacenter issues, spread
	// across the horizon (default 30).
	Writes int
}

func (o *ChaosOptions) fill() {
	if len(o.Modes) == 0 {
		o.Modes = ChaosModes
	}
	if o.SeedsPerMode <= 0 {
		o.SeedsPerMode = 3
	}
	if o.BaseSeed == 0 {
		o.BaseSeed = 1
	}
	if o.Horizon <= 0 {
		o.Horizon = 2 * time.Second
	}
	if o.Writes <= 0 {
		o.Writes = 30
	}
}

// ChaosInvariant is one invariant's verdict for one run.
type ChaosInvariant struct {
	Name    string `json:"name"`
	Skipped bool   `json:"skipped,omitempty"`
	Err     string `json:"err,omitempty"`
}

// ChaosRun is one (mode, seed) execution.
type ChaosRun struct {
	Mode       string           `json:"mode"`
	Seed       int64            `json:"seed"`
	Schedule   string           `json:"schedule"`
	Invariants []ChaosInvariant `json:"invariants"`
	Passed     bool             `json:"passed"`
	// Repro is the one-command reproduction recipe for this exact run.
	Repro string `json:"repro"`
}

// Failures renders the run's failed invariants ("" when passed).
func (r ChaosRun) Failures() string {
	var fails []string
	for _, inv := range r.Invariants {
		if inv.Err != "" {
			fails = append(fails, inv.Name+": "+inv.Err)
		}
	}
	return strings.Join(fails, "; ")
}

// ChaosResult is a whole sweep.
type ChaosResult struct {
	Runs   []ChaosRun `json:"runs"`
	Failed int        `json:"failed"`
}

// ChaosBench runs the mode matrix under SeedsPerMode randomized seeded
// schedules each and verifies the invariants after every run.
func ChaosBench(o ChaosOptions) ChaosResult {
	o.fill()
	var res ChaosResult
	seed := o.BaseSeed
	for _, mode := range o.Modes {
		for i := 0; i < o.SeedsPerMode; i++ {
			run := ChaosRunOne(mode, seed, o)
			if !run.Passed {
				res.Failed++
			}
			res.Runs = append(res.Runs, run)
			seed++
			settle()
		}
	}
	return res
}

// ChaosMenu returns the fault menu mode draws its schedules from: the
// faults that mode is designed to tolerate, and nothing it never
// promised to survive.
func ChaosMenu(mode string, horizon time.Duration) faults.Menu {
	m := faults.Menu{DCs: 3, Duration: horizon, Frames: faults.FrameFaults{Dup: 1}}
	switch mode {
	case "eunomia", "eunomia-tree":
		// Leader crash → failover; the new leader re-ships overlapping
		// suffixes and the receivers deduplicate.
		m.Crash = []string{"eunomia0@dc0", "eunomia0@dc1", "eunomia0@dc2"}
	case "eunomia-split":
		// The windowed release stream retransmits through asymmetric
		// cuts, the partition group rejoins from its data dir after a
		// crash, and a sticky injected fsync error is recovered by
		// disarm + crash + restart (the disk-swap story).
		m.DCs = 2
		m.Partition = true
		m.Crash = []string{"partition@dc0"}
		m.Fsync = []string{"partition@dc0"}
	}
	return m
}

// ChaosRunOne executes one (mode, seed) chaos run: build the deployment,
// drive writers while the schedule's faults fire, force-heal, then verify
// the invariants.
func ChaosRunOne(mode string, seed int64, o ChaosOptions) ChaosRun {
	o.fill()
	run := ChaosRun{
		Mode:  mode,
		Seed:  seed,
		Repro: fmt.Sprintf("go test ./internal/harness -run 'TestChaosRepro' -chaos-mode=%s -chaos-seed=%d", mode, seed),
	}
	menu := ChaosMenu(mode, o.Horizon)
	sched := faults.RandomSchedule(seed, menu)
	run.Schedule = sched.String()

	rec := newChaosRecorder()
	d, err := buildChaosDeploy(mode, seed, rec)
	if err != nil {
		run.Invariants = append(run.Invariants, ChaosInvariant{Name: "build", Err: err.Error()})
		return run
	}
	defer d.close()

	// Writers: one per originating datacenter, each spreading o.Writes
	// single-writer keys across the schedule horizon. Every key is
	// written exactly once, so the expected final state is known.
	type issued struct {
		key types.Key
		val string
	}
	var wantMu sync.Mutex
	var want []issued
	var wg sync.WaitGroup
	gap := o.Horizon * 6 / 10 / time.Duration(o.Writes)
	for _, dc := range d.writers {
		wg.Add(1)
		go func(dc types.DCID) {
			defer wg.Done()
			c := d.client(dc)
			for i := 0; i < o.Writes; i++ {
				key := types.Key(fmt.Sprintf("chaos/dc%d/k%03d", dc, i))
				val := fmt.Sprintf("s%d.%d", seed, i)
				if err := c.Update(key, types.Value(val)); err != nil {
					// Closed-loop retry: transient write failures during
					// a fault window retry until the write lands, so the
					// expected key set stays deterministic.
					i--
					time.Sleep(5 * time.Millisecond)
					continue
				}
				wantMu.Lock()
				want = append(want, issued{key: key, val: val})
				wantMu.Unlock()
				time.Sleep(gap)
			}
		}(dc)
	}

	// Scheduler: fire every event at its offset.
	start := time.Now()
	for _, e := range sched.Events {
		if wait := e.At - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		d.actuate(e)
	}
	wg.Wait()
	// Belt and braces: schedules are self-healing by construction
	// (unit-tested), but the invariants are about the healed cluster, so
	// force the network clean before checking.
	d.actuate(faults.Event{Kind: faults.KindHeal})

	// Invariant 1: convergence / no loss. Poll until every issued key is
	// visible everywhere with its written value.
	verdicts := []ChaosInvariant{{Name: "converged"}, {Name: "exactly-once"},
		{Name: "durable-watermark", Skipped: d.durable == nil},
		{Name: "read-your-writes", Skipped: d.frontend == nil}}
	conv := &verdicts[0]
	deadline := time.Now().Add(30 * time.Second)
	for {
		conv.Err = ""
		for dc := 0; dc < d.dcs && conv.Err == ""; dc++ {
			c := d.client(types.DCID(dc))
			for _, w := range want {
				v, err := c.Read(w.key)
				if err != nil {
					conv.Err = fmt.Sprintf("dc%d read %s: %v", dc, w.key, err)
					break
				}
				if string(v) != w.val {
					conv.Err = fmt.Sprintf("dc%d: %s = %q, want %q", dc, w.key, v, w.val)
					break
				}
			}
		}
		if conv.Err == "" && d.convergent != nil {
			if err := d.convergent(); err != nil {
				conv.Err = err.Error()
			}
		}
		if conv.Err == "" || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Invariant 2: exactly-once visibility per node incarnation.
	if d.dedup {
		if dupes := rec.duplicates(); dupes != "" {
			verdicts[1].Err = dupes
		}
	} else {
		verdicts[1].Skipped = true
	}

	// Invariant 3: advertised durable watermark covered by what a crash
	// right now would replay from the torn-tail-tolerant WAL.
	if d.durable != nil {
		if err := d.durable(); err != nil {
			verdicts[2].Err = err.Error()
		}
	}

	// Invariant 4: read-your-writes across a session migration.
	if d.frontend != nil {
		if err := d.frontend(seed); err != nil {
			verdicts[3].Err = err.Error()
		}
	}

	run.Invariants = verdicts
	run.Passed = true
	for _, inv := range verdicts {
		if inv.Err != "" {
			run.Passed = false
		}
	}
	return run
}

// chaosRecorder counts remote-visibility callbacks per (destination,
// incarnation, update), the exactly-once ledger.
type chaosRecorder struct {
	mu    sync.Mutex
	epoch map[types.DCID]int
	seen  map[string]int
}

func newChaosRecorder() *chaosRecorder {
	return &chaosRecorder{epoch: map[types.DCID]int{}, seen: map[string]int{}}
}

func (r *chaosRecorder) observe(dest types.DCID, u *types.Update, _ time.Time) {
	r.mu.Lock()
	key := fmt.Sprintf("dc%d/e%d/%d.%v.%s", dest, r.epoch[dest], u.Origin, u.TS, u.Key)
	r.seen[key]++
	r.mu.Unlock()
}

// bumpEpoch starts a new incarnation for dest: a restarted node's
// re-application of the lost un-durable suffix is recovery, not a
// duplicate.
func (r *chaosRecorder) bumpEpoch(dest types.DCID) {
	r.mu.Lock()
	r.epoch[dest]++
	r.mu.Unlock()
}

func (r *chaosRecorder) duplicates() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	for key, n := range r.seen {
		if n > 1 {
			return fmt.Sprintf("update %s applied %d times", key, n)
		}
	}
	return ""
}

// chaosDeploy is one running deployment plus the hooks the chaos driver
// needs: a client factory, the schedule actuator, and per-mode invariant
// checkers (nil = skipped).
type chaosDeploy struct {
	dcs     int
	writers []types.DCID
	client  func(dc types.DCID) workload.Client
	actuate func(e faults.Event)
	close   func()
	dedup   bool
	// convergent runs the store's own version-level check (may be nil).
	convergent func() error
	// durable verifies Durable ≤ torn-tail replay (split mode).
	durable func() error
	// frontend probes read-your-writes across a migration.
	frontend func(seed int64) error
}

func allDCs(n int) []types.DCID {
	dcs := make([]types.DCID, n)
	for i := range dcs {
		dcs[i] = types.DCID(i)
	}
	return dcs
}

// simnetFaults actuates network-shaped schedule events on a simnet
// fabric: duplicate-delivery windows over a fixed cross-DC edge set, and
// (optionally) asymmetric drop rules over partition-tolerant edges.
type simnetFaults struct {
	net *simnet.Network
	mu  sync.Mutex
	// dupEdges lists the cross-DC edges a frames event duplicates,
	// grouped by receiving datacenter.
	dupEdges map[types.DCID][][2]fabric.Addr
	dup      [][2]fabric.Addr
	drops    [][2]fabric.Addr
}

func (sf *simnetFaults) frames(e faults.Event, dcs int) {
	if e.Frames.Dup == 0 {
		return
	}
	sf.mu.Lock()
	defer sf.mu.Unlock()
	for dc, edges := range sf.dupEdges {
		if !e.All && dc != e.DC {
			continue
		}
		for _, edge := range edges {
			sf.net.SetDuplicate(edge[0], edge[1], 1)
			sf.dup = append(sf.dup, edge)
		}
	}
}

func (sf *simnetFaults) cut(edges ...[2]fabric.Addr) {
	sf.mu.Lock()
	defer sf.mu.Unlock()
	for _, edge := range edges {
		sf.net.SetDrop(edge[0], edge[1], true)
		sf.drops = append(sf.drops, edge)
	}
}

func (sf *simnetFaults) heal() {
	sf.mu.Lock()
	defer sf.mu.Unlock()
	for _, edge := range sf.dup {
		sf.net.SetDuplicate(edge[0], edge[1], 0)
	}
	for _, edge := range sf.drops {
		sf.net.SetDrop(edge[0], edge[1], false)
	}
	sf.dup, sf.drops = nil, nil
}

// shipEdges enumerates the metadata-ship edges into each datacenter for
// the replica-shipped modes (geostore: Eunomia leader → remote receiver).
func shipEdges(dcs, replicas int) map[types.DCID][][2]fabric.Addr {
	edges := map[types.DCID][][2]fabric.Addr{}
	for a := 0; a < dcs; a++ {
		for b := 0; b < dcs; b++ {
			if a == b {
				continue
			}
			for r := 0; r < replicas; r++ {
				edges[types.DCID(a)] = append(edges[types.DCID(a)],
					[2]fabric.Addr{fabric.EunomiaAddr(types.DCID(b), types.ReplicaID(r)), fabric.ReceiverAddr(types.DCID(a))})
			}
		}
	}
	return edges
}

// partitionEdges enumerates partition→sibling replication edges (the
// globalstab/eventual baselines).
func partitionEdges(dcs, partitions int) map[types.DCID][][2]fabric.Addr {
	edges := map[types.DCID][][2]fabric.Addr{}
	for a := 0; a < dcs; a++ {
		for b := 0; b < dcs; b++ {
			if a == b {
				continue
			}
			for p := 0; p < partitions; p++ {
				edges[types.DCID(a)] = append(edges[types.DCID(a)],
					[2]fabric.Addr{fabric.PartitionAddr(types.DCID(b), types.PartitionID(p)), fabric.PartitionAddr(types.DCID(a), types.PartitionID(p))})
			}
		}
	}
	return edges
}

// propagatorEdges enumerates the sequencer baseline's shipping edges
// (propagator → remote receiver).
func propagatorEdges(dcs int) map[types.DCID][][2]fabric.Addr {
	edges := map[types.DCID][][2]fabric.Addr{}
	for a := 0; a < dcs; a++ {
		for b := 0; b < dcs; b++ {
			if a == b {
				continue
			}
			edges[types.DCID(a)] = append(edges[types.DCID(a)],
				[2]fabric.Addr{{DC: types.DCID(b), Name: "propagator"}, fabric.ReceiverAddr(types.DCID(a))})
		}
	}
	return edges
}

const (
	chaosDCs        = 3
	chaosPartitions = 4
)

func chaosDelay() simnet.DelayFunc {
	return simnet.LatencyMatrix(simnet.PaperRTTs(0.1), 0)
}

func buildChaosDeploy(mode string, seed int64, rec *chaosRecorder) (*chaosDeploy, error) {
	switch mode {
	case "eunomia", "eunomia-tree":
		cfg := geostore.Config{
			DCs: chaosDCs, Partitions: chaosPartitions, Replicas: 3,
			Delay: chaosDelay(), OnVisible: rec.observe,
		}
		if mode == "eunomia-tree" {
			cfg.Replicas = 2
			cfg.Aggregators = 2
		}
		st := geostore.NewStore(cfg)
		sf := &simnetFaults{net: st.Network(), dupEdges: shipEdges(cfg.DCs, cfg.Replicas)}
		return &chaosDeploy{
			dcs:     cfg.DCs,
			writers: allDCs(cfg.DCs),
			client:  func(dc types.DCID) workload.Client { return st.NewClient(dc) },
			close:   st.Close,
			dedup:   true,
			convergent: func() error {
				if err := st.WaitQuiescent(10 * time.Second); err != nil {
					return err
				}
				return st.Convergent()
			},
			frontend: geoFrontendProbe(func(dc types.DCID) *geostore.Frontend { return st.Frontend(dc) }),
			actuate: func(e faults.Event) {
				switch e.Kind {
				case faults.KindFrames:
					sf.frames(e, cfg.DCs)
				case faults.KindHeal:
					sf.heal()
				case faults.KindCrash:
					// eunomiaN@dcM: fail-stop one replica; failover is
					// the recovery, so restart is a no-op.
					var r int
					if _, err := fmt.Sscanf(e.Target, "eunomia%d", &r); err == nil {
						st.CrashEunomiaReplica(e.DC, types.ReplicaID(r))
					}
				}
			},
		}, nil

	case "eunomia-split":
		return buildChaosSplit(seed, rec)

	case "sequencer":
		st := sequencer.NewStore(sequencer.StoreConfig{
			Mode: sequencer.SSeq, DCs: chaosDCs, Partitions: chaosPartitions,
			Delay: chaosDelay(), OnVisible: rec.observe,
		})
		sf := &simnetFaults{net: st.Network(), dupEdges: propagatorEdges(chaosDCs)}
		return baselineDeploy(chaosDCs, sf, true,
			func(dc types.DCID) workload.Client { return st.NewClient(dc) }, st.Close), nil

	case "globalstab", "cure":
		gmode := globalstab.GentleRain
		if mode == "cure" {
			gmode = globalstab.Cure
		}
		st := globalstab.NewStore(globalstab.Config{
			Mode: gmode, DCs: chaosDCs, Partitions: chaosPartitions,
			Delay: chaosDelay(), OnVisible: rec.observe,
		})
		sf := &simnetFaults{net: st.Network(), dupEdges: partitionEdges(chaosDCs, chaosPartitions)}
		return baselineDeploy(chaosDCs, sf, true,
			func(dc types.DCID) workload.Client { return st.NewClient(dc) }, st.Close), nil

	case "eventual":
		st := eventual.NewStore(eventual.Config{
			DCs: chaosDCs, Partitions: chaosPartitions,
			Delay: chaosDelay(), OnVisible: rec.observe,
		})
		sf := &simnetFaults{net: st.Network(), dupEdges: partitionEdges(chaosDCs, chaosPartitions)}
		// Last-writer-wins applies are idempotent in state but fire the
		// visibility hook per delivery: exactly-once is not this
		// baseline's contract, so it is skipped (dedup=false).
		return baselineDeploy(chaosDCs, sf, false,
			func(dc types.DCID) workload.Client { return st.NewClient(dc) }, st.Close), nil
	}
	return nil, fmt.Errorf("unknown chaos mode %q (want one of %s)", mode, strings.Join(ChaosModes, ", "))
}

// baselineDeploy wires the duplicate-delivery-only chaos surface shared
// by the baseline systems.
func baselineDeploy(dcs int, sf *simnetFaults, dedup bool, client func(types.DCID) workload.Client, close func()) *chaosDeploy {
	return &chaosDeploy{
		dcs:     dcs,
		writers: allDCs(dcs),
		client:  client,
		close:   close,
		dedup:   dedup,
		actuate: func(e faults.Event) {
			switch e.Kind {
			case faults.KindFrames:
				sf.frames(e, dcs)
			case faults.KindHeal:
				sf.heal()
			}
		},
	}
}

// geoFrontendProbe builds the read-your-writes checker: a session token
// minted by a Put at dc1's front door must observe the write at dc0's.
func geoFrontendProbe(front func(dc types.DCID) *geostore.Frontend) func(int64) error {
	return func(seed int64) error {
		for i := 0; i < 5; i++ {
			key := types.Key(fmt.Sprintf("chaos/ryw/k%d", i))
			val := fmt.Sprintf("ryw%d.%d", seed, i)
			put, err := front(1).Put("", key, types.Value(val))
			if err != nil {
				return fmt.Errorf("put at dc1: %w", err)
			}
			got, err := front(0).Get(put.Token, key)
			if err != nil {
				return fmt.Errorf("migrated get at dc0: %w", err)
			}
			if string(got.Value) != val {
				return fmt.Errorf("migrated session read %s = %q, want %q", key, got.Value, val)
			}
		}
		return nil
	}
}

// buildChaosSplit assembles the split-role durable deployment: dc0 split
// into a partitions+Eunomia+frontend node and a receiver node (all
// durable under group commit, sharing one fault injector), dc1 a full
// volatile node originating all traffic. Partition events cut the
// windowed release stream one direction at a time; crash/restart events
// kill and rejoin the partition group from its data dir; fsync events arm
// the injector against the partition component's WAL stores.
func buildChaosSplit(seed int64, rec *chaosRecorder) (*chaosDeploy, error) {
	dir, err := os.MkdirTemp("", "chaos-split-")
	if err != nil {
		return nil, err
	}
	inj := faults.NewInjector(seed)
	net := simnet.New(nil)
	cfg := geostore.Config{
		DCs: 2, Partitions: 2,
		Delay:     func(from, to fabric.Addr) time.Duration { return 0 },
		OnVisible: rec.observe,
	}
	partsNC := geostore.NodeConfig{
		Config: cfg, DC: 0,
		Roles:   geostore.RolePartitions | geostore.RoleEunomia | geostore.RoleFrontend,
		Fabric:  net,
		DataDir: dir, WALSync: wal.SyncGroupCommit,
		Faults: inj,
	}
	type state struct {
		sync.Mutex
		parts *geostore.Node
		down  bool
		errs  []string
	}
	st := &state{parts: geostore.NewNode(partsNC)}
	recv := geostore.NewNode(geostore.NodeConfig{
		Config: cfg, DC: 0, Roles: geostore.RoleReceiver, Fabric: net,
		DataDir: dir, WALSync: wal.SyncGroupCommit, Faults: inj,
	})
	origin := geostore.NewNode(geostore.NodeConfig{Config: cfg, DC: 1, Roles: geostore.RoleAll, Fabric: net})

	sf := &simnetFaults{net: net, dupEdges: map[types.DCID][][2]fabric.Addr{
		// Metadata ship into each side, plus the windowed release stream
		// and its acks (the applier and receiver both deduplicate).
		0: {
			{fabric.EunomiaAddr(1, 0), fabric.ReceiverAddr(0)},
			{fabric.ReceiverAddr(0), fabric.ApplierAddr(0)},
			{fabric.ApplierAddr(0), fabric.ReceiverAddr(0)},
		},
		1: {{fabric.EunomiaAddr(0, 0), fabric.ReceiverAddr(1)}},
	}}
	releaseInto0 := [2]fabric.Addr{fabric.ReceiverAddr(0), fabric.ApplierAddr(0)}
	acksInto1 := [2]fabric.Addr{fabric.ApplierAddr(0), fabric.ReceiverAddr(0)}

	d := &chaosDeploy{
		dcs:     2,
		writers: []types.DCID{1}, // dc0 is the consumer under fault
		dedup:   true,
		client: func(dc types.DCID) workload.Client {
			if dc == 1 {
				return origin.NewClient()
			}
			st.Lock()
			defer st.Unlock()
			return st.parts.NewClient()
		},
		close: func() {
			st.Lock()
			parts, down := st.parts, st.down
			st.Unlock()
			nodes := []*geostore.Node{recv, origin}
			if !down {
				nodes = append([]*geostore.Node{parts}, nodes...)
			}
			for _, n := range nodes {
				n.CloseIngress()
			}
			for _, n := range nodes {
				n.CloseServices()
			}
			net.Close()
			os.RemoveAll(dir)
		},
		durable: func() error {
			st.Lock()
			claimed := st.parts.ApplierDurable()
			st.Unlock()
			return verifyDurableReplay(filepath.Join(dir, "dc0-stream"), claimed)
		},
		frontend: geoFrontendProbe(func(dc types.DCID) *geostore.Frontend {
			if dc == 1 {
				return origin.Frontend()
			}
			st.Lock()
			defer st.Unlock()
			return st.parts.Frontend()
		}),
	}
	d.actuate = func(e faults.Event) {
		switch e.Kind {
		case faults.KindPartition:
			// The DC-level cut maps onto the retransmission-protected
			// release stream: dc0 cut from dc1 silences releases toward
			// the partition group; the reverse silences the acks (the
			// receiver retransmits, the applier deduplicates).
			if e.To == 0 || e.Sym {
				sf.cut(releaseInto0)
			}
			if e.To == 1 || e.Sym {
				sf.cut(acksInto1)
			}
		case faults.KindFrames:
			sf.frames(e, 2)
		case faults.KindHeal:
			sf.heal()
		case faults.KindFsyncErr:
			inj.ArmFsync(e.Target, nil)
		case faults.KindFsyncOK:
			inj.DisarmFsync(e.Target)
		case faults.KindCrash:
			if e.Target != "partition" || e.DC != 0 {
				return
			}
			st.Lock()
			if !st.down {
				st.down = true
				// A dead process's endpoints vanish first: in-flight
				// payloads and releases are dropped (and later recovered
				// by the applier's payload pull and the receiver's
				// retransmission), never delivered into closing stores.
				net.Unregister(fabric.PartitionAddr(0, 0))
				net.Unregister(fabric.PartitionAddr(0, 1))
				net.Unregister(fabric.EunomiaAddr(0, 0))
				net.Unregister(fabric.ApplierAddr(0))
				net.Unregister(fabric.FrontendAddr(0, 0))
				st.parts.CloseIngress()
				st.parts.CloseServices()
			}
			st.Unlock()
		case faults.KindRestart:
			if e.Target != "partition" || e.DC != 0 {
				return
			}
			st.Lock()
			if st.down {
				n, err := geostore.OpenNode(partsNC)
				if err != nil {
					st.errs = append(st.errs, "rejoin: "+err.Error())
				} else {
					st.parts, st.down = n, false
					rec.bumpEpoch(0)
				}
			}
			st.Unlock()
		}
	}
	// A failed rejoin must surface, not hang the convergence wait: fold
	// actuator errors into the durable checker (always run: d.durable is
	// non-nil for this mode).
	base := d.durable
	d.durable = func() error {
		st.Lock()
		errs := st.errs
		st.Unlock()
		if len(errs) > 0 {
			return fmt.Errorf("%s", strings.Join(errs, "; "))
		}
		return base()
	}
	return d, nil
}

// verifyDurableReplay replays the applier's live stream store read-only —
// exactly what a crash right now would recover, since wal.Replay stops at
// the first torn record — and checks the advertised durable watermark is
// covered.
func verifyDurableReplay(streamDir string, claimed uint64) error {
	var epoch, recovered uint64
	replay := func(rec []byte) error {
		if len(rec) == 0 || rec[0] != wal.KindStream {
			return nil
		}
		ep, seq, err := wal.DecodeStream(rec)
		if err != nil {
			return err
		}
		if ep > epoch || (ep == epoch && seq > recovered) {
			epoch, recovered = ep, seq
		}
		return nil
	}
	if err := wal.Replay(filepath.Join(streamDir, "snapshot"), replay); err != nil {
		return fmt.Errorf("replay snapshot: %w", err)
	}
	if err := wal.Replay(filepath.Join(streamDir, "log"), replay); err != nil {
		return fmt.Errorf("replay log: %w", err)
	}
	if recovered < claimed {
		return fmt.Errorf("applier advertises Durable=%d but a crash now would replay only seq %d", claimed, recovered)
	}
	return nil
}
