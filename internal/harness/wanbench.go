package harness

// WANBench is the emulated-WAN counterpart of the simnet experiments: the
// five systems run as one real process per datacenter on TCP fabric
// endpoints (the cmd/eunomia-server deployment shape), every
// cross-datacenter frame crosses a socket shaped by a wan.Shaper —
// latency, jitter, loss-as-retransmission, and bandwidth serialization —
// and every datacenter reads a skewed, drifting clock. The quantity under
// test is bytes-on-wire per operation across compression schemes, next to
// the remote-visibility latency each system pays under the same links:
// the metric geo-replication is actually judged by.
//
// WANTreeBytes isolates the MultiBatchMsg-heavy aggregator-tree hop
// (partitions → aggregators on one endpoint, the Eunomia replica on
// another) and measures the compression ratio on exactly that traffic —
// the acceptance workload for the codec-level frame compression.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"eunomia/internal/compress"
	"eunomia/internal/eunomia"
	"eunomia/internal/eventual"
	"eunomia/internal/fabric"
	"eunomia/internal/geostore"
	"eunomia/internal/globalstab"
	"eunomia/internal/hlc"
	"eunomia/internal/sequencer"
	"eunomia/internal/transport"
	"eunomia/internal/types"
	"eunomia/internal/wan"
	"eunomia/internal/workload"
)

// DefaultWANTopology is the asymmetric 3-datacenter shape the matrix
// defaults to: a fat short link, a thin long one, and a wildcard for the
// remaining pair — roughly a Virginia/Oregon/Ireland triangle with
// realistic jitter, loss and bandwidth caps.
const DefaultWANTopology = "dc0-dc1:40ms±5ms,0.1%,50Mbps;dc1-dc2:160ms±20ms,0.2%,20Mbps;*:80ms±10ms,0.1%,50Mbps"

// WANBenchOptions parameterises the scenario matrix.
type WANBenchOptions struct {
	// Duration is the measured window per cell (default 400ms).
	Duration time.Duration
	// Warmup precedes each measured window (default 150ms).
	Warmup time.Duration
	// DCs, Partitions, WorkersPerDC shape each deployment
	// (defaults 3, 4, 4).
	DCs          int
	Partitions   int
	WorkersPerDC int
	// Topology is the wan.ParseTopology link-spec string
	// (default DefaultWANTopology).
	Topology string
	// Seed feeds both the shaper and the workload (default 42).
	Seed int64
	// ClockSkew spreads the per-datacenter clock offsets: datacenter d
	// starts (d - DCs/2) * ClockSkew away from real time (default 2ms).
	ClockSkew time.Duration
	// DriftPPM drifts each datacenter's clock by ±DriftPPM alternating
	// by datacenter index (default 20).
	DriftPPM float64
	// Systems and Schemes select the matrix axes (defaults: all five
	// systems × off/snappy/zstd).
	Systems []SystemKind
	Schemes []compress.Scheme
	// Mix and Keys shape the workload (defaults 90:10 over the standard
	// uniform key space; a zero Mix means the default, so use a negative
	// ReadPct for a pure-update load).
	Mix  workload.Mix
	Keys workload.KeyDist
	// ThinkTime paces each closed-loop client between operations
	// (default 100µs, negative for eager clients). Unpaced in-process
	// clients demand hundreds of megabits of replication, which against
	// megabit-scale shaped links measures only the shaper's queue: the
	// bandwidth serialization backlog grows for the whole run and no
	// remote update becomes visible inside the window. Offered load has
	// to sit below the emulated capacity for visibility latency to mean
	// anything, exactly as on a real WAN.
	ThinkTime time.Duration
}

func (o *WANBenchOptions) fill() {
	if o.Duration <= 0 {
		o.Duration = 400 * time.Millisecond
	}
	if o.Warmup <= 0 {
		o.Warmup = 150 * time.Millisecond
	}
	if o.DCs <= 0 {
		o.DCs = 3
	}
	if o.Partitions <= 0 {
		o.Partitions = 4
	}
	if o.WorkersPerDC <= 0 {
		o.WorkersPerDC = 4
	}
	if o.Topology == "" {
		o.Topology = DefaultWANTopology
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.ClockSkew == 0 {
		o.ClockSkew = 2 * time.Millisecond
	}
	if o.DriftPPM == 0 {
		o.DriftPPM = 20
	}
	if len(o.Systems) == 0 {
		o.Systems = []SystemKind{EunomiaKV, SSeq, GentleRain, Cure, Eventual}
	}
	if len(o.Schemes) == 0 {
		o.Schemes = []compress.Scheme{compress.Off, compress.Snappy, compress.Zstd}
	}
	if o.Mix == (workload.Mix{}) {
		o.Mix = workload.Mix{ReadPct: 90}
	}
	if o.Keys == nil {
		o.Keys = workload.Uniform{N: workload.DefaultKeys}
	}
	if o.ThinkTime == 0 {
		o.ThinkTime = 100 * time.Microsecond
	} else if o.ThinkTime < 0 {
		o.ThinkTime = 0
	}
}

// WANBenchCell is one (system, scheme) measurement.
type WANBenchCell struct {
	System SystemKind
	Scheme compress.Scheme
	// Ops and Throughput cover the measured window.
	Ops        int64
	Throughput float64
	// RawBytes and WireBytes are pre- and post-compression transmit
	// totals summed over every endpoint during the measured window;
	// BytesPerOp is WireBytes normalized by operations and Ratio is
	// RawBytes/WireBytes (1 when nothing crossed a socket).
	RawBytes   int64
	WireBytes  int64
	BytesPerOp float64
	Ratio      float64
	// Remote-visibility latency percentiles merged over every
	// (origin, destination) pair, with VisSamples updates observed.
	VisP50, VisP90, VisP99 time.Duration
	VisSamples             int64
}

// WANBenchResult reports the full matrix under one topology.
type WANBenchResult struct {
	Topology string
	Cells    []WANBenchCell
}

// WANBench runs the matrix: every requested system × compression scheme,
// each as DCs TCP endpoints behind one seeded shaper.
func WANBench(o WANBenchOptions) (WANBenchResult, error) {
	o.fill()
	res := WANBenchResult{Topology: o.Topology}
	for _, sys := range o.Systems {
		for _, scheme := range o.Schemes {
			cell, err := wanBenchCell(o, sys, scheme)
			if err != nil {
				return res, err
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

// wanDeployment is a per-datacenter-process deployment on loopback TCP.
type wanDeployment struct {
	fabs    []*transport.TCP
	vis     *VisMatrix
	factory workload.ClientFactory
	close   func()
}

// snapTxBytes sums transmit counters over every endpoint.
func (d *wanDeployment) snapTxBytes() (raw, wire int64) {
	for _, f := range d.fabs {
		cs := f.CompressStats()
		raw += cs.TxRaw
		wire += cs.TxWire
	}
	return raw, wire
}

// buildWANDeployment boots one system as o.DCs all-role TCP processes
// with a full datacenter-route mesh, shaped inbound links, and skewed
// per-datacenter clocks.
func buildWANDeployment(o WANBenchOptions, kind SystemKind, scheme compress.Scheme) (*wanDeployment, error) {
	topo, err := wan.ParseTopology(o.Topology)
	if err != nil {
		return nil, err
	}
	shaper := wan.NewShaper(topo, o.Seed)

	d := &wanDeployment{vis: NewVisMatrix(o.DCs)}
	fabs := make([]*transport.TCP, o.DCs)
	for i := range fabs {
		f, err := transport.Listen(transport.Config{
			Listen:       "127.0.0.1:0",
			Compress:     scheme,
			WANShaper:    shaper,
			HoldDelivery: true,
		})
		if err != nil {
			for _, g := range fabs[:i] {
				g.Close()
			}
			return nil, err
		}
		fabs[i] = f
	}
	d.fabs = fabs
	for i, f := range fabs {
		for j, g := range fabs {
			if i != j {
				f.AddDCRoute(types.DCID(j), g.Addr().String())
			}
		}
	}

	record := func(dest types.DCID, u *types.Update, arrived time.Time) {
		d.vis.Record(u.Origin, dest, time.Since(arrived))
	}
	// Skewed, drifting physical clocks per datacenter: the HLC absorbs
	// the skew in its logical component, so only visibility shifts.
	clockFor := func(dc types.DCID, p types.PartitionID) hlc.PhysSource {
		offset := time.Duration(int(dc)-o.DCs/2) * o.ClockSkew
		drift := o.DriftPPM
		if dc%2 == 1 {
			drift = -drift
		}
		return wan.NewSkewed(nil, offset, drift)
	}

	closeFabrics := func() {
		for _, f := range fabs {
			f.Close()
		}
	}
	switch kind {
	case EunomiaKV:
		nodes := make([]*geostore.Node, o.DCs)
		for i := range nodes {
			nodes[i] = geostore.NewNode(geostore.NodeConfig{
				Config: geostore.Config{
					DCs:        o.DCs,
					Partitions: o.Partitions,
					ClockFor:   clockFor,
					OnVisible:  record,
				},
				DC:        types.DCID(i),
				Roles:     geostore.RoleAll,
				Fabric:    fabs[i],
				Pipelined: true,
			})
		}
		d.factory = func(w int) workload.Client { return nodes[w%o.DCs].NewClient() }
		d.close = func() {
			for _, n := range nodes {
				n.CloseIngress()
			}
			for _, n := range nodes {
				n.CloseServices()
			}
			closeFabrics()
		}
	case SSeq, ASeq:
		mode := sequencer.SSeq
		if kind == ASeq {
			mode = sequencer.ASeq
		}
		nodes := make([]*sequencer.Node, o.DCs)
		for i := range nodes {
			nodes[i] = sequencer.NewNode(sequencer.NodeConfig{
				StoreConfig: sequencer.StoreConfig{
					Mode:       mode,
					DCs:        o.DCs,
					Partitions: o.Partitions,
					ClockFor:   clockFor,
					OnVisible:  record,
				},
				DC:     types.DCID(i),
				Roles:  sequencer.RoleAll,
				Fabric: fabs[i],
			})
		}
		d.factory = func(w int) workload.Client { return nodes[w%o.DCs].NewClient() }
		d.close = func() {
			for _, n := range nodes {
				n.Close()
			}
			closeFabrics()
		}
	case GentleRain, Cure:
		mode := globalstab.GentleRain
		if kind == Cure {
			mode = globalstab.Cure
		}
		nodes := make([]*globalstab.Node, o.DCs)
		for i := range nodes {
			nodes[i] = globalstab.NewNode(globalstab.NodeConfig{
				Config: globalstab.Config{
					Mode:       mode,
					DCs:        o.DCs,
					Partitions: o.Partitions,
					ClockFor:   clockFor,
					OnVisible:  record,
				},
				DC:     types.DCID(i),
				Fabric: fabs[i],
			})
		}
		d.factory = func(w int) workload.Client { return nodes[w%o.DCs].NewClient() }
		d.close = func() {
			for _, n := range nodes {
				n.Close()
			}
			closeFabrics()
		}
	case Eventual:
		nodes := make([]*eventual.Node, o.DCs)
		for i := range nodes {
			nodes[i] = eventual.NewNode(eventual.NodeConfig{
				Config: eventual.Config{
					DCs:        o.DCs,
					Partitions: o.Partitions,
					ClockFor:   clockFor,
					OnVisible:  record,
				},
				DC:     types.DCID(i),
				Fabric: fabs[i],
			})
		}
		d.factory = func(w int) workload.Client { return nodes[w%o.DCs].NewClient() }
		d.close = func() {
			for _, n := range nodes {
				n.Close()
			}
			closeFabrics()
		}
	default:
		closeFabrics()
		return nil, fmt.Errorf("harness: WANBench does not deploy %s", kind)
	}
	for _, f := range fabs {
		f.Ready()
	}
	return d, nil
}

// wanBenchCell measures one (system, scheme) deployment.
func wanBenchCell(o WANBenchOptions, kind SystemKind, scheme compress.Scheme) (WANBenchCell, error) {
	d, err := buildWANDeployment(o, kind, scheme)
	if err != nil {
		return WANBenchCell{}, err
	}
	defer d.close()

	// Snapshot the byte counters at the warmup boundary the driver also
	// uses, so bytes and ops cover the same window (alignment is within
	// scheduler noise, fine for a throughput-scale measurement).
	type snap struct{ raw, wire int64 }
	var before snap
	var beforeOnce sync.Once
	go func() {
		time.Sleep(o.Warmup)
		beforeOnce.Do(func() { before.raw, before.wire = d.snapTxBytes() })
	}()
	res := runDriver(o, d)
	beforeOnce.Do(func() {}) // lost race: counters read below as zero-delta
	rawAfter, wireAfter := d.snapTxBytes()

	cell := WANBenchCell{
		System:     kind,
		Scheme:     scheme,
		Ops:        res.Ops,
		Throughput: res.Throughput(),
		RawBytes:   rawAfter - before.raw,
		WireBytes:  wireAfter - before.wire,
		Ratio:      1,
	}
	if cell.Ops > 0 {
		cell.BytesPerOp = float64(cell.WireBytes) / float64(cell.Ops)
	}
	if cell.WireBytes > 0 {
		cell.Ratio = float64(cell.RawBytes) / float64(cell.WireBytes)
	}
	all := d.vis.All()
	cell.VisSamples = all.Count()
	cell.VisP50 = time.Duration(all.Percentile(50))
	cell.VisP90 = time.Duration(all.Percentile(90))
	cell.VisP99 = time.Duration(all.Percentile(99))
	return cell, nil
}

func runDriver(o WANBenchOptions, d *wanDeployment) workload.Result {
	return workload.Run(context.Background(), workload.Config{
		Workers:   o.WorkersPerDC * o.DCs,
		Duration:  o.Duration,
		Warmup:    o.Warmup,
		Mix:       o.Mix,
		Keys:      o.Keys,
		Seed:      o.Seed,
		ThinkTime: o.ThinkTime,
	}, d.factory)
}

// WANTreeOptions parameterises the aggregator-tree bytes leg.
type WANTreeOptions struct {
	ServiceOptions
	// Partitions is the datacenter width (default 16).
	Partitions int
	// FanIn is the aggregator fan-in (default 4).
	FanIn int
	// Schemes lists the compression schemes to compare (default
	// off/snappy/zstd; off must come first for ReductionVsOff).
	Schemes []compress.Scheme
}

func (o *WANTreeOptions) fill() {
	o.ServiceOptions.fill()
	if o.Partitions <= 0 {
		o.Partitions = 16
	}
	if o.FanIn <= 0 {
		o.FanIn = 4
	}
	if len(o.Schemes) == 0 {
		o.Schemes = []compress.Scheme{compress.Off, compress.Snappy, compress.Zstd}
	}
}

// WANTreePoint is one scheme's measurement of the aggregator→replica hop.
type WANTreePoint struct {
	Scheme compress.Scheme
	// Ops is ordered (stabilized) operations in the measured window.
	Ops int64
	// RawBytes/WireBytes are the aggregator endpoint's transmit totals —
	// MultiBatchMsg traffic, pre and post compression.
	RawBytes  int64
	WireBytes int64
	// BytesPerOp is WireBytes per ordered operation; Ratio is
	// RawBytes/WireBytes.
	BytesPerOp float64
	Ratio      float64
	// ReductionVsOff is the uncompressed run's WireBytes-per-op over
	// this one's (1 for the off run itself).
	ReductionVsOff float64
}

// WANTreeResult reports every requested scheme.
type WANTreeResult struct {
	Points []WANTreePoint
}

// WANTreeBytes measures bytes-on-wire on the MultiBatchMsg-heavy
// aggregator-tree hop per compression scheme: partitions and one level of
// aggregators live on one TCP endpoint, the Eunomia replica on another,
// so exactly the aggregated metadata stream crosses the socket.
func WANTreeBytes(o WANTreeOptions) (WANTreeResult, error) {
	o.fill()
	var res WANTreeResult
	var offPerOp float64
	for _, scheme := range o.Schemes {
		pt, err := wanTreeLeg(o, scheme)
		if err != nil {
			return res, err
		}
		if scheme == compress.Off {
			offPerOp = pt.BytesPerOp
		}
		if offPerOp > 0 && pt.BytesPerOp > 0 {
			pt.ReductionVsOff = offPerOp / pt.BytesPerOp
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

func wanTreeLeg(o WANTreeOptions, scheme compress.Scheme) (WANTreePoint, error) {
	fabA, err := transport.Listen(transport.Config{Listen: "127.0.0.1:0", Compress: scheme})
	if err != nil {
		return WANTreePoint{}, err
	}
	defer fabA.Close()
	fabB, err := transport.Listen(transport.Config{Listen: "127.0.0.1:0", Compress: scheme})
	if err != nil {
		return WANTreePoint{}, err
	}
	defer fabB.Close()

	counter := newDedupCounter(nil)
	cluster := eunomia.NewCluster(1, eunomia.Config{
		Partitions:     o.Partitions,
		StableInterval: time.Millisecond,
		MessageCost:    o.EunomiaMsgCost,
	}, func(_ types.ReplicaID, ops []*types.Update) { counter.consume(ops) })
	defer cluster.Stop()
	root := fabric.EunomiaAddr(0, 0)
	fabric.ServeReplica(fabB, root, cluster.Replica(0))

	// The replica is the only endpoint on fabB; everything else — the
	// aggregators and the partition clients feeding them — lives on
	// fabA, so fabA's transmit counters see exactly the aggregated
	// MultiBatchMsg stream (intra-endpoint sends short-circuit).
	fabA.AddRoute(root, fabB.Addr().String())
	fabB.AddDCRoute(0, fabA.Addr().String())

	nAggs := (o.Partitions + o.FanIn - 1) / o.FanIn
	aggs := make([]*fabric.Aggregator, nAggs)
	for i := range aggs {
		aggs[i] = fabric.NewAggregator(fabric.AggregatorConfig{
			Fabric:        fabA,
			Local:         fabric.Addr{DC: 0, Name: fmt.Sprintf("wan-agg-%d", i)},
			Parents:       []fabric.Addr{root},
			FlushInterval: o.BatchInterval,
			Level:         1,
		})
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	clients := make([]*eunomia.Client, o.Partitions)
	for i := 0; i < o.Partitions; i++ {
		pid := types.PartitionID(i)
		local := fabric.PartitionAddr(0, pid)
		remotes := []fabric.Addr{aggs[i%nAggs].LocalAddr()}
		if nAggs > 1 {
			remotes = append(remotes, aggs[(i+1)%nAggs].LocalAddr())
		}
		conns := make([]eunomia.Conn, len(remotes))
		rcs := make([]*fabric.ReplicaConn, len(remotes))
		for j, r := range remotes {
			rc := fabric.NewReplicaConn(fabA, local, r, fabric.PipelinedConn, 0)
			rcs[j] = rc
			conns[j] = rc
		}
		fabA.Register(local, func(m fabric.Message) {
			for _, rc := range rcs {
				if rc.HandleMessage(m) {
					return
				}
			}
		})
		clock := hlc.NewClock(nil)
		clients[i] = eunomia.NewClient(eunomia.ClientConfig{
			Partition:      pid,
			BatchInterval:  o.BatchInterval,
			MaxPending:     o.MaxPending,
			RedundantPaths: true,
		}, conns, clock)
		wg.Add(1)
		go func(i int, clock *hlc.Clock) {
			defer wg.Done()
			producePartition(stop, clients[i], clock, types.PartitionID(i), o.PerPartitionRate)
		}(i, clock)
	}

	time.Sleep(o.Warmup)
	beforeOps := counter.total()
	before := fabA.CompressStats()
	time.Sleep(o.Duration)
	afterOps := counter.total()
	after := fabA.CompressStats()

	close(stop)
	for _, c := range clients {
		c.Close()
	}
	wg.Wait()
	for _, a := range aggs {
		a.Close()
	}

	pt := WANTreePoint{
		Scheme:    scheme,
		Ops:       afterOps - beforeOps,
		RawBytes:  after.TxRaw - before.TxRaw,
		WireBytes: after.TxWire - before.TxWire,
		Ratio:     1,
	}
	if pt.Ops > 0 {
		pt.BytesPerOp = float64(pt.WireBytes) / float64(pt.Ops)
	}
	if pt.WireBytes > 0 {
		pt.Ratio = float64(pt.RawBytes) / float64(pt.WireBytes)
	}
	return pt, nil
}
