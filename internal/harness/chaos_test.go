package harness

import (
	"encoding/json"
	"flag"
	"os"
	"testing"
	"time"
)

// One failing chaos run reproduces with the exact command its failure
// message prints: TestChaosRepro re-executes a single (mode, seed) pair.
var (
	chaosMode = flag.String("chaos-mode", "", "re-run one chaos mode (with -chaos-seed)")
	chaosSeed = flag.Int64("chaos-seed", 0, "re-run one chaos seed (with -chaos-mode)")
	chaosJSON = flag.String("chaos-json", "", "write per-seed chaos invariant results to this file")
)

func chaosTestOptions() ChaosOptions {
	return ChaosOptions{
		Horizon: 1500 * time.Millisecond,
		Writes:  25,
	}
}

func writeChaosJSON(t *testing.T, res ChaosResult) {
	t.Helper()
	if *chaosJSON == "" {
		return
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatalf("marshal chaos results: %v", err)
	}
	if err := os.WriteFile(*chaosJSON, append(data, '\n'), 0o644); err != nil {
		t.Fatalf("write %s: %v", *chaosJSON, err)
	}
}

// TestChaosMatrix is the acceptance sweep: every mode (7) under 3
// distinct randomized seeded schedules — 21 runs, each verifying the
// healed cluster's invariants. A failure names the seed, the drawn
// schedule, and the one-command repro.
func TestChaosMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is slow")
	}
	res := ChaosBench(chaosTestOptions())
	writeChaosJSON(t, res)
	for _, run := range res.Runs {
		if !run.Passed {
			t.Errorf("mode=%s seed=%d failed: %s\n  schedule: %s\n  repro: %s",
				run.Mode, run.Seed, run.Failures(), run.Schedule, run.Repro)
		}
	}
	if len(res.Runs) != len(ChaosModes)*3 {
		t.Fatalf("runs = %d, want %d", len(res.Runs), len(ChaosModes)*3)
	}
	seeds := map[int64]bool{}
	for _, run := range res.Runs {
		seeds[run.Seed] = true
	}
	if len(seeds) != len(res.Runs) {
		t.Fatalf("seeds not distinct: %d unique over %d runs", len(seeds), len(res.Runs))
	}
}

// TestChaosRepro re-runs exactly one (mode, seed) pair — the
// reproduction entry point printed by a failing matrix run.
func TestChaosRepro(t *testing.T) {
	if *chaosMode == "" {
		t.Skip("pass -chaos-mode and -chaos-seed to reproduce one run")
	}
	o := chaosTestOptions()
	run := ChaosRunOne(*chaosMode, *chaosSeed, o)
	t.Logf("mode=%s seed=%d schedule: %s", run.Mode, run.Seed, run.Schedule)
	if !run.Passed {
		t.Fatalf("invariants failed: %s", run.Failures())
	}
}
