package harness

// LoadBench drives a deployment the way external clients do: through a
// geostore.Frontend over the fabric, under the open-loop generator
// (workload.RunOpen). Unlike the closed-loop figure harnesses, its latency
// percentiles are coordinated-omission-safe — measured from each
// operation's scheduled arrival instant — so a stall shows up in the tail
// instead of silently thinning the offered load. CI archives its
// p50/p99/p999 via BenchmarkOpenLoopLoad.

import (
	"context"
	"time"

	"eunomia/internal/geostore"
	"eunomia/internal/simnet"
	"eunomia/internal/types"
	"eunomia/internal/workload"
)

// LoadBenchOptions parameterises one open-loop front-door run.
type LoadBenchOptions struct {
	// DCs and Partitions shape the deployment (default 2 and 4).
	DCs        int
	Partitions int
	// Rate is the offered load in ops/sec (default 2000).
	Rate float64
	// Duration and Warmup bound the measured window (default 600ms/200ms).
	Duration time.Duration
	Warmup   time.Duration
	// ReadPct selects the operation mix (default 90).
	ReadPct int
	// PowerLaw selects the zipf key distribution instead of uniform.
	PowerLaw bool
	// Keys is the key-space size (default 10_000).
	Keys uint64
	// ValueBytes sizes each value (default 100, the paper's §7 size).
	ValueBytes int
	// Workers is the service pool draining the schedule (default 64).
	Workers int
	// Poisson selects exponential inter-arrivals instead of the fixed
	// schedule.
	Poisson bool
	// RTTScale scales the paper's WAN RTTs (default 0.01: the front-door
	// path under test is intra-datacenter).
	RTTScale float64
}

func (o *LoadBenchOptions) fill() {
	if o.DCs <= 0 {
		o.DCs = 2
	}
	if o.Partitions <= 0 {
		o.Partitions = 4
	}
	if o.Rate <= 0 {
		o.Rate = 2000
	}
	if o.Duration <= 0 {
		o.Duration = 600 * time.Millisecond
	}
	if o.Warmup <= 0 {
		o.Warmup = 200 * time.Millisecond
	}
	if o.ReadPct <= 0 {
		o.ReadPct = 90
	}
	if o.Keys == 0 {
		o.Keys = 10_000
	}
	if o.ValueBytes <= 0 {
		o.ValueBytes = 100
	}
	if o.Workers <= 0 {
		o.Workers = 64
	}
	if o.RTTScale <= 0 {
		o.RTTScale = 0.01
	}
}

// LoadBenchResult reports the open-loop run's headline quantities.
type LoadBenchResult struct {
	Offered   int64
	Completed int64
	Errors    int64
	// Backlog is scheduled-but-unfinished work at drain expiry; nonzero
	// means the offered rate exceeded capacity and the percentiles are a
	// lower bound.
	Backlog    int64
	Throughput float64

	// Coordinated-omission-safe percentiles: scheduled arrival to
	// completion.
	P50, P99, P999 time.Duration
	// Service-time percentiles (dispatch to completion), for the gap
	// between the two views.
	ServiceP50, ServiceP99 time.Duration

	// Waits counts frontend visibility waits taken (reads gated on
	// remote history).
	Waits int64
}

// frontendClient adapts a geostore.Frontend to workload.Client, carrying
// the session token across operations exactly as an HTTP client carries
// the X-Causal-Session header.
type frontendClient struct {
	fe    *geostore.Frontend
	token string
}

func (c *frontendClient) Read(key types.Key) (types.Value, error) {
	res, err := c.fe.Get(c.token, key)
	if err != nil {
		return nil, err
	}
	c.token = res.Token
	return res.Value, nil
}

func (c *frontendClient) Update(key types.Key, value types.Value) error {
	res, err := c.fe.Put(c.token, key, value)
	if err != nil {
		return err
	}
	c.token = res.Token
	return nil
}

// LoadBench boots a deployment, aims the open-loop generator at dc0's
// front door, and reports coordinated-omission-safe latency percentiles.
func LoadBench(o LoadBenchOptions) (LoadBenchResult, error) {
	o.fill()
	store := geostore.NewStore(geostore.Config{
		DCs:        o.DCs,
		Partitions: o.Partitions,
		Delay:      simnet.LatencyMatrix(simnet.PaperRTTs(o.RTTScale), 0),
	})
	defer store.Close()
	fe := store.Frontend(0)

	var keys workload.KeyDist = workload.Uniform{N: o.Keys}
	if o.PowerLaw {
		keys = workload.NewPowerLaw(o.Keys)
	}
	arrival := workload.ArrivalFixed
	if o.Poisson {
		arrival = workload.ArrivalPoisson
	}
	res := workload.RunOpen(context.Background(), workload.OpenConfig{
		Rate:      o.Rate,
		Duration:  o.Duration,
		Warmup:    o.Warmup,
		Mix:       workload.Mix{ReadPct: o.ReadPct},
		Keys:      keys,
		ValueSize: o.ValueBytes,
		Workers:   o.Workers,
		Arrival:   arrival,
	}, func(int) workload.Client { return &frontendClient{fe: fe} })

	return LoadBenchResult{
		Offered:    res.Offered,
		Completed:  res.Completed,
		Errors:     res.Errors,
		Backlog:    res.Backlog,
		Throughput: res.Throughput(),
		P50:        res.P50(),
		P99:        res.P99(),
		P999:       res.P999(),
		ServiceP50: time.Duration(res.ServiceLat.Percentile(50)),
		ServiceP99: time.Duration(res.ServiceLat.Percentile(99)),
		Waits:      fe.Waits.Load(),
	}, nil
}
