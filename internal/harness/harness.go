// Package harness contains the experiment drivers that regenerate every
// figure of the paper's evaluation (§7). Each FigN function runs the
// corresponding experiment against the in-process deployment and returns
// a typed result; cmd/eunomia-bench renders them as tables, and the
// module-level benchmarks in bench_test.go wrap them for `go test -bench`.
//
// Durations are scaled down from the paper's six-minute runs to seconds by
// default — the simulated fabric reaches steady state in tens of
// milliseconds — and every driver accepts explicit durations for longer,
// paper-faithful runs.
package harness

import (
	"context"
	"runtime"
	"sync"
	"time"

	"eunomia/internal/eventual"
	"eunomia/internal/geostore"
	"eunomia/internal/globalstab"
	"eunomia/internal/metrics"
	"eunomia/internal/sequencer"
	"eunomia/internal/simnet"
	"eunomia/internal/types"
	"eunomia/internal/workload"
)

// SystemKind names a system under test.
type SystemKind string

// The systems evaluated in §7.
const (
	Eventual   SystemKind = "Eventual"
	EunomiaKV  SystemKind = "EunomiaKV"
	GentleRain SystemKind = "GentleRain"
	Cure       SystemKind = "Cure"
	SSeq       SystemKind = "S-Seq"
	ASeq       SystemKind = "A-Seq"
)

// Options are the common experiment knobs.
type Options struct {
	// Duration is the measured window per data point (default 2s).
	Duration time.Duration
	// Warmup precedes each measured window (default 500ms).
	Warmup time.Duration
	// WorkersPerDC is the closed-loop client count per datacenter
	// (default 8).
	WorkersPerDC int
	// DCs and Partitions shape the deployment (defaults 3 and 8).
	DCs        int
	Partitions int
	// RTTScale scales the paper's 80/80/160ms WAN matrix (default 1.0).
	RTTScale float64
	// Seed makes workloads reproducible (default 42).
	Seed int64
	// ThinkTime inserts a fixed pause between a client's operations,
	// standing in for the per-operation service time of the paper's
	// Riak deployment (~hundreds of microseconds). Figure 1 sets it so
	// that the sequencer's synchronous hop is measured against a
	// realistic base operation cost rather than an in-process method
	// call. Zero (the default) means eager clients.
	ThinkTime time.Duration
}

func (o *Options) fill() {
	if o.Duration <= 0 {
		o.Duration = 2 * time.Second
	}
	if o.Warmup <= 0 {
		o.Warmup = 500 * time.Millisecond
	}
	if o.WorkersPerDC <= 0 {
		o.WorkersPerDC = 8
	}
	if o.DCs <= 0 {
		o.DCs = 3
	}
	if o.Partitions <= 0 {
		o.Partitions = 8
	}
	if o.RTTScale == 0 {
		o.RTTScale = 1
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
}

func (o Options) delay() simnet.DelayFunc {
	return simnet.LatencyMatrix(simnet.PaperRTTs(o.RTTScale), 0)
}

// VisMatrix aggregates remote-update visibility latencies per
// (origin, destination) datacenter pair.
type VisMatrix struct {
	m int
	h []*metrics.Histogram // index origin*m+dest
}

// NewVisMatrix returns a matrix for m datacenters.
func NewVisMatrix(m int) *VisMatrix {
	v := &VisMatrix{m: m, h: make([]*metrics.Histogram, m*m)}
	for i := range v.h {
		v.h[i] = metrics.NewHistogram()
	}
	return v
}

// Record adds one visibility sample (nanoseconds).
func (v *VisMatrix) Record(origin, dest types.DCID, latency time.Duration) {
	v.h[int(origin)*v.m+int(dest)].RecordDuration(latency)
}

// Hist returns the histogram for updates originating at origin observed
// at dest.
func (v *VisMatrix) Hist(origin, dest types.DCID) *metrics.Histogram {
	return v.h[int(origin)*v.m+int(dest)]
}

// All returns a merged histogram over every remote pair.
func (v *VisMatrix) All() *metrics.Histogram {
	out := metrics.NewHistogram()
	for o := 0; o < v.m; o++ {
		for d := 0; d < v.m; d++ {
			if o != d {
				out.Merge(v.h[o*v.m+d])
			}
		}
	}
	return out
}

// system bundles a running store with its client factory and teardown.
type system struct {
	kind    SystemKind
	factory workload.ClientFactory
	close   func()
	vis     *VisMatrix
}

// buildOpts tweaks baseline construction per experiment.
type buildOpts struct {
	stabInterval   time.Duration // GentleRain/Cure stabilization sweep (Fig. 1)
	hbInterval     time.Duration
	sequencerDelay time.Duration
	chainReplicas  int
	eunomiaCfg     func(*geostore.Config)
}

// buildSystem constructs one system under test with visibility recording.
func buildSystem(kind SystemKind, o Options, b buildOpts) *system {
	vis := NewVisMatrix(o.DCs)
	sys := &system{kind: kind, vis: vis}
	record := func(dest types.DCID, u *types.Update, arrived time.Time) {
		vis.Record(u.Origin, dest, time.Since(arrived))
	}
	switch kind {
	case Eventual:
		st := eventual.NewStore(eventual.Config{
			DCs: o.DCs, Partitions: o.Partitions, Delay: o.delay(), OnVisible: record,
		})
		sys.factory = func(w int) workload.Client { return st.NewClient(types.DCID(w % o.DCs)) }
		sys.close = st.Close
	case EunomiaKV:
		cfg := geostore.Config{
			DCs: o.DCs, Partitions: o.Partitions, Delay: o.delay(), OnVisible: record,
		}
		if b.eunomiaCfg != nil {
			b.eunomiaCfg(&cfg)
		}
		st := geostore.NewStore(cfg)
		sys.factory = func(w int) workload.Client { return st.NewClient(types.DCID(w % o.DCs)) }
		sys.close = st.Close
	case GentleRain, Cure:
		mode := globalstab.GentleRain
		if kind == Cure {
			mode = globalstab.Cure
		}
		st := globalstab.NewStore(globalstab.Config{
			Mode: mode, DCs: o.DCs, Partitions: o.Partitions, Delay: o.delay(),
			StableInterval:    b.stabInterval,
			HeartbeatInterval: b.hbInterval,
			OnVisible:         record,
		})
		sys.factory = func(w int) workload.Client { return st.NewClient(types.DCID(w % o.DCs)) }
		sys.close = st.Close
	case SSeq, ASeq:
		mode := sequencer.SSeq
		if kind == ASeq {
			mode = sequencer.ASeq
		}
		st := sequencer.NewStore(sequencer.StoreConfig{
			Mode: mode, DCs: o.DCs, Partitions: o.Partitions, Delay: o.delay(),
			SequencerDelay: b.sequencerDelay,
			ChainReplicas:  b.chainReplicas,
			OnVisible:      record,
		})
		sys.factory = func(w int) workload.Client { return st.NewClient(types.DCID(w % o.DCs)) }
		sys.close = st.Close
	default:
		panic("harness: unknown system " + string(kind))
	}
	return sys
}

// settle reclaims the previous run's heap so garbage from earlier systems
// (each deployment populates up to 100k keys × M datacenters) does not tax
// the next measurement's GC. Multi-system sweeps call it between runs.
func settle() {
	runtime.GC()
}

// runWorkload drives a system with the standard closed-loop driver.
func runWorkload(o Options, sys *system, mix workload.Mix, keys workload.KeyDist) workload.Result {
	return workload.Run(context.Background(), workload.Config{
		Workers:   o.WorkersPerDC * o.DCs,
		Duration:  o.Duration,
		Warmup:    o.Warmup,
		Mix:       mix,
		Keys:      keys,
		Seed:      o.Seed,
		ThinkTime: o.ThinkTime,
	}, sys.factory)
}

// dedupCounter counts shipped operations exactly once per partition
// watermark, so duplicate shipping during Eunomia leader failover does not
// inflate throughput (Figures 2-4 count stabilized operations).
type dedupCounter struct {
	mu    sync.Mutex
	last  map[types.PartitionID]uint64 // per-partition max Seq counted
	count int64
	ts    *metrics.TimeSeries // optional per-bucket series
}

func newDedupCounter(series *metrics.TimeSeries) *dedupCounter {
	return &dedupCounter{last: make(map[types.PartitionID]uint64), ts: series}
}

func (d *dedupCounter) consume(ops []*types.Update) {
	now := time.Now()
	d.mu.Lock()
	for _, u := range ops {
		if u.Seq <= d.last[u.Partition] {
			continue
		}
		d.last[u.Partition] = u.Seq
		d.count++
		if d.ts != nil {
			d.ts.RecordAt(now)
		}
	}
	d.mu.Unlock()
}

func (d *dedupCounter) total() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.count
}
