package harness

// RecoveryBench quantifies what the durability subsystem buys a crashed
// partition-role process: rejoining from its write-ahead logs (replay +
// release-stream resume at the durable watermark) versus the only
// alternative a volatile deployment has — a full resync, i.e. replicating
// the whole dataset from the origin datacenter again.

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"eunomia/internal/fabric"
	"eunomia/internal/geostore"
	"eunomia/internal/simnet"
	"eunomia/internal/types"
)

// RecoveryBenchOptions parameterises the restart comparison.
type RecoveryBenchOptions struct {
	// Updates is the dataset size replicated before the crash
	// (default 2000).
	Updates int
	// ValueBytes sizes each value (default 1024): the payload volume a
	// resync re-ships over the WAN and a rejoin replays from local disk.
	ValueBytes int
	// Partitions per datacenter (default 4).
	Partitions int
	// LinkDelay is the simulated one-way delay on every fabric link
	// (default 1ms) — what a resync pays per window of re-replication
	// and a rejoin mostly avoids.
	LinkDelay time.Duration
}

func (o *RecoveryBenchOptions) fill() {
	if o.Updates <= 0 {
		o.Updates = 2000
	}
	if o.ValueBytes <= 0 {
		o.ValueBytes = 1024
	}
	if o.Partitions <= 0 {
		o.Partitions = 4
	}
	if o.LinkDelay <= 0 {
		o.LinkDelay = time.Millisecond
	}
}

// RecoveryBenchResult reports how long a crashed partition-role node
// takes to be fully caught up again under each strategy.
type RecoveryBenchResult struct {
	// RejoinSecs: restart with the same data dir — WAL replay plus
	// stream resume until a post-crash probe update is visible.
	RejoinSecs float64
	// ResyncSecs: restart volatile — the origin re-replicates the whole
	// dataset and the probe, paying the WAN for every update again.
	ResyncSecs float64
	// Speedup is ResyncSecs / RejoinSecs.
	Speedup float64
}

// RecoveryBench replicates a dataset into a split-role datacenter, kills
// the partition-role node, and measures time-to-caught-up for a durable
// rejoin versus a full re-replication.
func RecoveryBench(o RecoveryBenchOptions) (RecoveryBenchResult, error) {
	rejoin, err := recoveryLeg(o, true)
	if err != nil {
		return RecoveryBenchResult{}, fmt.Errorf("rejoin leg: %w", err)
	}
	resync, err := recoveryLeg(o, false)
	if err != nil {
		return RecoveryBenchResult{}, fmt.Errorf("resync leg: %w", err)
	}
	return RecoveryBenchResult{
		RejoinSecs: rejoin.Seconds(),
		ResyncSecs: resync.Seconds(),
		Speedup:    resync.Seconds() / rejoin.Seconds(),
	}, nil
}

func recoveryLeg(o RecoveryBenchOptions, durable bool) (time.Duration, error) {
	o.fill()
	delay := o.LinkDelay
	net := simnet.New(func(from, to fabric.Addr) time.Duration { return delay })
	defer net.Close()

	var visible atomic.Int64
	waitVisible := func(target int64, timeout time.Duration) error {
		deadline := time.Now().Add(timeout)
		for visible.Load() < target {
			if time.Now().After(deadline) {
				return fmt.Errorf("only %d/%d updates visible", visible.Load(), target)
			}
			time.Sleep(2 * time.Millisecond)
		}
		return nil
	}
	destCfg := geostore.Config{
		DCs: 2, Partitions: o.Partitions,
		OnVisible: func(dest types.DCID, u *types.Update, arrived time.Time) {
			if dest == 0 {
				visible.Add(1)
			}
		},
	}

	dir, err := os.MkdirTemp("", "eunomia-recovery-bench")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	dataDir := ""
	if durable {
		dataDir = dir
	}

	parts, err := geostore.OpenNode(geostore.NodeConfig{
		Config: destCfg, DC: 0, Roles: geostore.RolePartitions | geostore.RoleEunomia,
		Fabric: net, DataDir: dataDir,
	})
	if err != nil {
		return 0, err
	}
	recv, err := geostore.OpenNode(geostore.NodeConfig{
		Config: destCfg, DC: 0, Roles: geostore.RoleReceiver, Fabric: net, DataDir: dataDir,
	})
	if err != nil {
		return 0, err
	}
	origin, err := geostore.OpenNode(geostore.NodeConfig{
		Config: geostore.Config{DCs: 2, Partitions: o.Partitions}, DC: 1,
		Roles: geostore.RoleAll, Fabric: net,
	})
	if err != nil {
		return 0, err
	}
	closeNode := func(n *geostore.Node) { n.CloseIngress(); n.CloseServices() }
	defer closeNode(origin)
	// The resync leg replaces recv; close whichever is current.
	defer func() { closeNode(recv) }()

	// Replicate the dataset, then crash the partition-role node.
	c := origin.NewClient()
	value := make([]byte, o.ValueBytes)
	write := func(prefix string, n int) error {
		for i := 0; i < n; i++ {
			if err := c.Update(types.Key(fmt.Sprintf("%s%d", prefix, i)), value); err != nil {
				return err
			}
		}
		return nil
	}
	if err := write("base", o.Updates); err != nil {
		return 0, err
	}
	if err := waitVisible(int64(o.Updates), 120*time.Second); err != nil {
		return 0, err
	}
	closeNode(parts) // the crash

	start := time.Now()
	restarted, err := geostore.OpenNode(geostore.NodeConfig{
		Config: destCfg, DC: 0, Roles: geostore.RolePartitions | geostore.RoleEunomia,
		Fabric: net, DataDir: dataDir,
	})
	if err != nil {
		return 0, err
	}
	defer closeNode(restarted)

	if !durable {
		// Full resync: the volatile restart lost everything and wedged
		// the stream; tear the receiver down too (its window prefix is
		// useless now) and re-replicate the dataset from the origin.
		closeNode(recv)
		recv, err = geostore.OpenNode(geostore.NodeConfig{
			Config: destCfg, DC: 0, Roles: geostore.RoleReceiver, Fabric: net,
		})
		if err != nil {
			return 0, err
		}
		visible.Store(0)
		if err := write("base", o.Updates); err != nil {
			return 0, err
		}
	}

	// Caught up = the dataset is present (rejoin: recovered + resumed;
	// resync: re-replicated) and a fresh probe flows end to end.
	probeTarget := visible.Load() + 1
	if !durable {
		probeTarget = int64(o.Updates) + 1
	}
	if err := write("probe", 1); err != nil {
		return 0, err
	}
	if err := waitVisible(probeTarget, 120*time.Second); err != nil {
		return 0, err
	}
	if durable {
		// The recovered store must actually hold the dataset, not just
		// pass a probe through.
		probe := restarted.NewClient()
		v, _ := probe.Read(types.Key("base0"))
		if len(v) != o.ValueBytes {
			return 0, fmt.Errorf("rejoined node lost base0")
		}
	}
	return time.Since(start), nil
}
