package harness

import (
	"sync"
	"time"

	"eunomia/internal/eunomia"
	"eunomia/internal/geostore"
	"eunomia/internal/hlc"
	"eunomia/internal/types"
	"eunomia/internal/workload"
)

// TreeAblationResult compares the red-black and AVL pending sets at the
// saturating partition count (§6 reports the red-black tree won).
type TreeAblationResult struct {
	RedBlack float64 // ops/s
	AVL      float64
}

// AblationTree measures both pending-set implementations under Figure 2
// saturation load.
func AblationTree(o ServiceOptions, partitions int) TreeAblationResult {
	o.fill()
	if partitions <= 0 {
		partitions = 60
	}
	return TreeAblationResult{
		RedBlack: eunomiaSaturation(o, partitions, 1, false, eunomia.RedBlack),
		AVL:      eunomiaSaturation(o, partitions, 1, false, eunomia.AVL),
	}
}

// BatchingPoint is one batching-interval measurement.
type BatchingPoint struct {
	Interval   time.Duration
	Throughput float64
}

// AblationBatching sweeps the partition→Eunomia batching interval. The
// paper (§7.1) notes Eunomia's throughput "can be further stretched by
// increasing the batching time (while slightly increasing the remote
// update visibility latency)" — unlike sequencers, whose batching would
// block clients.
func AblationBatching(o ServiceOptions, partitions int, intervals []time.Duration) []BatchingPoint {
	o.fill()
	if partitions <= 0 {
		partitions = 60
	}
	if len(intervals) == 0 {
		intervals = []time.Duration{
			500 * time.Microsecond, time.Millisecond, 2 * time.Millisecond,
			5 * time.Millisecond, 10 * time.Millisecond,
		}
	}
	var out []BatchingPoint
	for _, iv := range intervals {
		opts := o
		opts.BatchInterval = iv
		out = append(out, BatchingPoint{
			Interval:   iv,
			Throughput: eunomiaSaturation(opts, partitions, 1, false, eunomia.RedBlack),
		})
	}
	return out
}

// TreeFanInResult compares direct all-to-one partition→Eunomia
// communication against a §5 propagation tree of aggregators.
type TreeFanInResult struct {
	DirectThroughput float64
	TreeThroughput   float64
	// DirectBatches / TreeBatches are messages received by the Eunomia
	// replica per second — the quantity the tree exists to reduce.
	DirectBatches float64
	TreeBatches   float64
}

// AblationPropagationTree runs the saturation load with partitions feeding
// the replica directly, then through fanIn-way aggregators.
func AblationPropagationTree(o ServiceOptions, partitions, fanIn int) TreeFanInResult {
	o.fill()
	if partitions <= 0 {
		partitions = 60
	}
	if fanIn <= 0 {
		fanIn = 15
	}
	var res TreeFanInResult
	res.DirectThroughput, res.DirectBatches = eunomiaSaturationTree(o, partitions, 0)
	res.TreeThroughput, res.TreeBatches = eunomiaSaturationTree(o, partitions, fanIn)
	return res
}

// eunomiaSaturationTree mirrors eunomiaSaturation with an optional
// aggregator layer (fanIn <= 0 means direct connection), returning
// throughput and replica message rate.
func eunomiaSaturationTree(o ServiceOptions, p, fanIn int) (thr, batchRate float64) {
	counter := newDedupCounter(nil)
	cluster := eunomia.NewCluster(1, eunomia.Config{
		Partitions:     p,
		StableInterval: time.Millisecond,
		MessageCost:    o.EunomiaMsgCost,
	}, func(_ types.ReplicaID, ops []*types.Update) { counter.consume(ops) })
	defer cluster.Stop()

	conns := eunomia.ClusterConns(cluster)
	var aggs []*eunomia.Aggregator
	connFor := func(i int) []eunomia.Conn { return conns }
	if fanIn > 0 {
		n := (p + fanIn - 1) / fanIn
		aggs = make([]*eunomia.Aggregator, n)
		for i := range aggs {
			aggs[i] = eunomia.NewAggregator(conns, o.BatchInterval)
		}
		connFor = func(i int) []eunomia.Conn { return []eunomia.Conn{aggs[i/fanIn]} }
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	clients := make([]*eunomia.Client, p)
	for i := 0; i < p; i++ {
		clock := hlc.NewClock(nil)
		clients[i] = eunomia.NewClient(eunomia.ClientConfig{
			Partition:     types.PartitionID(i),
			BatchInterval: o.BatchInterval,
			MaxPending:    o.MaxPending,
		}, connFor(i), clock)
		wg.Add(1)
		go func(i int, clock *hlc.Clock) {
			defer wg.Done()
			producePartition(stop, clients[i], clock, types.PartitionID(i), o.PerPartitionRate)
		}(i, clock)
	}

	time.Sleep(o.Warmup)
	beforeOps := counter.total()
	beforeBatches := cluster.Replica(0).Stats().Batches
	time.Sleep(o.Duration)
	afterOps := counter.total()
	afterBatches := cluster.Replica(0).Stats().Batches
	close(stop)
	for _, c := range clients {
		c.Close()
	}
	wg.Wait()
	for _, a := range aggs {
		a.Close()
	}
	secs := o.Duration.Seconds()
	return float64(afterOps-beforeOps) / secs, float64(afterBatches-beforeBatches) / secs
}

// MetaAblationResult compares vector against scalar client metadata in the
// full geo store (§4's discussion of the metadata tradeoff).
type MetaAblationResult struct {
	// VisP90 per metadata mode, for updates dc0→dc1 — the pair where
	// vectors should win (the scalar forces a wait on the farthest DC).
	VectorVisP90 time.Duration
	ScalarVisP90 time.Duration
	VectorThr    float64
	ScalarThr    float64
}

// AblationScalarVsVector runs EunomiaKV in both metadata modes.
func AblationScalarVsVector(o Options) MetaAblationResult {
	o.fill()
	run := func(scalar bool) (time.Duration, float64) {
		sys := buildSystem(EunomiaKV, o, buildOpts{eunomiaCfg: func(c *geostore.Config) {
			c.ScalarMeta = scalar
		}})
		defer sys.close()
		r := runWorkload(o, sys, workload.Mix{ReadPct: 90}, workload.Uniform{N: workload.DefaultKeys})
		return time.Duration(sys.vis.Hist(types.DCID(0), types.DCID(1)).Percentile(90)), r.Throughput()
	}
	var res MetaAblationResult
	res.VectorVisP90, res.VectorThr = run(false)
	res.ScalarVisP90, res.ScalarThr = run(true)
	return res
}

// SeparationAblationResult compares §5 data/metadata separation on vs off.
type SeparationAblationResult struct {
	SeparatedThr float64
	CombinedThr  float64
	SeparatedP90 time.Duration
	CombinedP90  time.Duration
}

// AblationDataSeparation runs EunomiaKV with payloads shipped
// partition-to-partition (the prototype's mode) and with payloads carried
// through Eunomia.
func AblationDataSeparation(o Options) SeparationAblationResult {
	o.fill()
	run := func(noSep bool) (float64, time.Duration) {
		sys := buildSystem(EunomiaKV, o, buildOpts{eunomiaCfg: func(c *geostore.Config) {
			c.NoSeparation = noSep
		}})
		defer sys.close()
		r := runWorkload(o, sys, workload.Mix{ReadPct: 75}, workload.Uniform{N: workload.DefaultKeys})
		return r.Throughput(), time.Duration(sys.vis.Hist(types.DCID(0), types.DCID(1)).Percentile(90))
	}
	var res SeparationAblationResult
	res.SeparatedThr, res.SeparatedP90 = run(false)
	res.CombinedThr, res.CombinedP90 = run(true)
	return res
}
