package harness

import (
	"time"

	"eunomia/internal/eunomia"
	"eunomia/internal/geostore"
	"eunomia/internal/types"
	"eunomia/internal/workload"
)

// TreeAblationResult compares the red-black and AVL pending sets at the
// saturating partition count (§6 reports the red-black tree won).
type TreeAblationResult struct {
	RedBlack float64 // ops/s
	AVL      float64
}

// AblationTree measures both pending-set implementations under Figure 2
// saturation load.
func AblationTree(o ServiceOptions, partitions int) TreeAblationResult {
	o.fill()
	if partitions <= 0 {
		partitions = 60
	}
	return TreeAblationResult{
		RedBlack: eunomiaSaturation(o, partitions, 1, false, eunomia.RedBlack),
		AVL:      eunomiaSaturation(o, partitions, 1, false, eunomia.AVL),
	}
}

// BatchingPoint is one batching-interval measurement.
type BatchingPoint struct {
	Interval   time.Duration
	Throughput float64
}

// AblationBatching sweeps the partition→Eunomia batching interval. The
// paper (§7.1) notes Eunomia's throughput "can be further stretched by
// increasing the batching time (while slightly increasing the remote
// update visibility latency)" — unlike sequencers, whose batching would
// block clients.
func AblationBatching(o ServiceOptions, partitions int, intervals []time.Duration) []BatchingPoint {
	o.fill()
	if partitions <= 0 {
		partitions = 60
	}
	if len(intervals) == 0 {
		intervals = []time.Duration{
			500 * time.Microsecond, time.Millisecond, 2 * time.Millisecond,
			5 * time.Millisecond, 10 * time.Millisecond,
		}
	}
	var out []BatchingPoint
	for _, iv := range intervals {
		opts := o
		opts.BatchInterval = iv
		out = append(out, BatchingPoint{
			Interval:   iv,
			Throughput: eunomiaSaturation(opts, partitions, 1, false, eunomia.RedBlack),
		})
	}
	return out
}

// TreeFanInResult compares direct all-to-one partition→Eunomia
// communication against a §5 propagation tree of aggregators.
type TreeFanInResult struct {
	DirectThroughput float64
	TreeThroughput   float64
	// DirectBatches / TreeBatches are messages received by the Eunomia
	// replica per second — the quantity the tree exists to reduce.
	DirectBatches float64
	TreeBatches   float64
}

// AblationPropagationTree runs the saturation load with partitions feeding
// the replica directly, then through a one-level tree of fan-in
// aggregators — the real fabric deployment (fabric.Aggregator over
// MultiBatchMsg frames), not an in-process shortcut. AggregatorBench is
// the deeper-tree generalization.
func AblationPropagationTree(o ServiceOptions, partitions, fanIn int) TreeFanInResult {
	o.fill()
	if partitions <= 0 {
		partitions = 60
	}
	if fanIn <= 0 {
		fanIn = 15
	}
	var res TreeFanInResult
	flat, err := aggregatorTreeLeg(o, partitions, fanIn, 0)
	if err != nil {
		// Only reachable through an invalid shape, which the defaults
		// above rule out; a zero-valued result would just fail callers
		// with a confusing "no fan-in gain: 0 vs 0" instead.
		panic("harness: " + err.Error())
	}
	tree, err := aggregatorTreeLeg(o, partitions, fanIn, 1)
	if err != nil {
		panic("harness: " + err.Error())
	}
	res.DirectThroughput, res.DirectBatches = flat.Throughput, flat.IngressPerSec
	res.TreeThroughput, res.TreeBatches = tree.Throughput, tree.IngressPerSec
	return res
}

// MetaAblationResult compares vector against scalar client metadata in the
// full geo store (§4's discussion of the metadata tradeoff).
type MetaAblationResult struct {
	// VisP90 per metadata mode, for updates dc0→dc1 — the pair where
	// vectors should win (the scalar forces a wait on the farthest DC).
	VectorVisP90 time.Duration
	ScalarVisP90 time.Duration
	VectorThr    float64
	ScalarThr    float64
}

// AblationScalarVsVector runs EunomiaKV in both metadata modes.
func AblationScalarVsVector(o Options) MetaAblationResult {
	o.fill()
	run := func(scalar bool) (time.Duration, float64) {
		sys := buildSystem(EunomiaKV, o, buildOpts{eunomiaCfg: func(c *geostore.Config) {
			c.ScalarMeta = scalar
		}})
		defer sys.close()
		r := runWorkload(o, sys, workload.Mix{ReadPct: 90}, workload.Uniform{N: workload.DefaultKeys})
		return time.Duration(sys.vis.Hist(types.DCID(0), types.DCID(1)).Percentile(90)), r.Throughput()
	}
	var res MetaAblationResult
	res.VectorVisP90, res.VectorThr = run(false)
	res.ScalarVisP90, res.ScalarThr = run(true)
	return res
}

// SeparationAblationResult compares §5 data/metadata separation on vs off.
type SeparationAblationResult struct {
	SeparatedThr float64
	CombinedThr  float64
	SeparatedP90 time.Duration
	CombinedP90  time.Duration
}

// AblationDataSeparation runs EunomiaKV with payloads shipped
// partition-to-partition (the prototype's mode) and with payloads carried
// through Eunomia.
func AblationDataSeparation(o Options) SeparationAblationResult {
	o.fill()
	run := func(noSep bool) (float64, time.Duration) {
		sys := buildSystem(EunomiaKV, o, buildOpts{eunomiaCfg: func(c *geostore.Config) {
			c.NoSeparation = noSep
		}})
		defer sys.close()
		r := runWorkload(o, sys, workload.Mix{ReadPct: 75}, workload.Uniform{N: workload.DefaultKeys})
		return r.Throughput(), time.Duration(sys.vis.Hist(types.DCID(0), types.DCID(1)).Percentile(90))
	}
	var res SeparationAblationResult
	res.SeparatedThr, res.SeparatedP90 = run(false)
	res.CombinedThr, res.CombinedP90 = run(true)
	return res
}
