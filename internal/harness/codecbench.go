package harness

// Codec micro-benchmark: the wire codec against the gob ablation on the
// exact message shapes the hot fabric edges carry — metadata batches
// (BatchMsg), windowed releases (ReleaseMsg), and receiver shipping
// (ShipMsg). The gob leg mirrors the transport's ablation faithfully: one
// persistent encoder/decoder pair per stream, so its per-connection type
// descriptors are amortized exactly as on a long-lived socket.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"runtime"
	"time"

	"eunomia/internal/fabric"
	"eunomia/internal/geostore"
	"eunomia/internal/hlc"
	"eunomia/internal/types"
	"eunomia/internal/vclock"
	"eunomia/internal/wire"
)

// CodecBenchOptions parameterises the codec comparison.
type CodecBenchOptions struct {
	// Iters is the encode+decode round trips measured per message type
	// (default 20000).
	Iters int
	// BatchOps is how many updates a BatchMsg/ShipMsg carries
	// (default 8, a typical 1ms batch).
	BatchOps int
	// PayloadBytes sizes each update's value (default 100, the paper's
	// object size).
	PayloadBytes int
}

func (o *CodecBenchOptions) fill() {
	if o.Iters <= 0 {
		o.Iters = 20000
	}
	if o.BatchOps <= 0 {
		o.BatchOps = 8
	}
	if o.PayloadBytes <= 0 {
		o.PayloadBytes = 100
	}
}

// CodecPoint reports one message type's comparison: encode+decode round
// trips per second, steady-state encoded size, and allocations per round
// trip under each codec.
type CodecPoint struct {
	Message    string
	WirePerSec float64
	GobPerSec  float64
	// Speedup is WirePerSec / GobPerSec.
	Speedup    float64
	WireBytes  int
	GobBytes   int
	WireAllocs float64
	GobAllocs  float64
}

// CodecBenchResult reports every message type's point.
type CodecBenchResult struct {
	Points []CodecPoint
}

// CodecBench measures the wire codec against the gob ablation for each
// hot-path message type. The workload is encode+decode of the same value
// repeatedly — the steady state of a long-lived connection.
func CodecBench(o CodecBenchOptions) (CodecBenchResult, error) {
	o.fill()
	update := func(seq int) *types.Update {
		return &types.Update{
			Key:       types.Key(fmt.Sprintf("bench-key-%d", seq)),
			Value:     bytes.Repeat([]byte{0xab}, o.PayloadBytes),
			Origin:    1,
			Partition: 3,
			Seq:       uint64(seq),
			TS:        hlc.Timestamp(80e12)<<16 + hlc.Timestamp(seq),
			VTS:       vclock.V{hlc.Timestamp(79e12) << 16, hlc.Timestamp(80e12)<<16 + hlc.Timestamp(seq), 0},
			CreatedAt: 1753900000000000000 + int64(seq),
		}
	}
	batch := make([]*types.Update, o.BatchOps)
	for i := range batch {
		batch[i] = update(i + 1)
	}
	msgs := []struct {
		name    string
		payload any
	}{
		{"BatchMsg", fabric.BatchMsg{ID: 42, Partition: 3, Ops: batch}},
		{"ReleaseMsg", geostore.ReleaseMsg{Epoch: 7, Seq: 99, U: update(1), ArrivedUnixNano: 1753900000000000000}},
		{"ShipMsg", geostore.ShipMsg{Origin: 1, Ops: batch}},
	}

	var res CodecBenchResult
	for _, m := range msgs {
		wirePerSec, wireBytes, wireAllocs, err := wireLeg(m.payload, o.Iters)
		if err != nil {
			return res, fmt.Errorf("%s wire leg: %w", m.name, err)
		}
		gobPerSec, gobBytes, gobAllocs, err := gobLeg(m.payload, o.Iters)
		if err != nil {
			return res, fmt.Errorf("%s gob leg: %w", m.name, err)
		}
		res.Points = append(res.Points, CodecPoint{
			Message:    m.name,
			WirePerSec: wirePerSec,
			GobPerSec:  gobPerSec,
			Speedup:    wirePerSec / gobPerSec,
			WireBytes:  wireBytes,
			GobBytes:   gobBytes,
			WireAllocs: wireAllocs,
			GobAllocs:  gobAllocs,
		})
	}
	return res, nil
}

// wireLeg measures encode+decode round trips through the wire codec,
// reusing one buffer the way the transport's frame writer does.
func wireLeg(payload any, iters int) (perSec float64, size int, allocsPerOp float64, err error) {
	buf := wire.GetBuf()
	defer func() { wire.PutBuf(buf) }()
	// Warm: size probe and registry check.
	buf, err = wire.AppendPayload(buf[:0], payload)
	if err != nil {
		return 0, 0, 0, err
	}
	size = len(buf)

	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		buf, err = wire.AppendPayload(buf[:0], payload)
		if err != nil {
			return 0, 0, 0, err
		}
		d := wire.NewDec(buf)
		if _, err = wire.ReadPayload(&d); err != nil {
			return 0, 0, 0, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	return float64(iters) / elapsed.Seconds(), size,
		float64(ms1.Mallocs-ms0.Mallocs) / float64(iters), nil
}

// gobBox carries the payload as an interface, the way the transport's
// gob frame does — the ablation pays the same reflection the old frame
// path paid.
type gobBox struct {
	Payload any
}

// gobLeg measures encode+decode round trips through one persistent gob
// stream (type descriptors amortized, as on a long-lived connection).
func gobLeg(payload any, iters int) (perSec float64, size int, allocsPerOp float64, err error) {
	var stream bytes.Buffer
	enc := gob.NewEncoder(&stream)
	dec := gob.NewDecoder(&stream)
	// Warm the stream: the first message carries the type descriptors.
	if err = enc.Encode(&gobBox{Payload: payload}); err != nil {
		return 0, 0, 0, err
	}
	var out gobBox
	if err = dec.Decode(&out); err != nil {
		return 0, 0, 0, err
	}
	// Steady-state size probe.
	mark := stream.Len()
	if err = enc.Encode(&gobBox{Payload: payload}); err != nil {
		return 0, 0, 0, err
	}
	size = stream.Len() - mark
	out = gobBox{}
	if err = dec.Decode(&out); err != nil {
		return 0, 0, 0, err
	}

	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err = enc.Encode(&gobBox{Payload: payload}); err != nil {
			return 0, 0, 0, err
		}
		out = gobBox{}
		if err = dec.Decode(&out); err != nil {
			return 0, 0, 0, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	return float64(iters) / elapsed.Seconds(), size,
		float64(ms1.Mallocs-ms0.Mallocs) / float64(iters), nil
}
