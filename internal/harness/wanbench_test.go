package harness

import (
	"testing"
	"time"

	"eunomia/internal/compress"
	"eunomia/internal/workload"
)

// tinyWANOptions keeps the emulated-WAN cells CI-sized: a mild topology
// (low enough latency that a 300ms window sees remote visibility) and
// two datacenters' worth of every system.
func tinyWANOptions() WANBenchOptions {
	return WANBenchOptions{
		Duration:     300 * time.Millisecond,
		Warmup:       100 * time.Millisecond,
		DCs:          3,
		Partitions:   2,
		WorkersPerDC: 2,
		Topology:     "dc0-dc1:5ms±1ms,0.1%,50Mbps;*:10ms±2ms",
		Mix:          workload.Mix{ReadPct: 50},
	}
}

// TestWANBenchEverySystem boots each system as three TCP processes
// behind the shaper with skewed clocks, drives it, and checks that ops
// complete, bytes cross the wire, and remote visibility is observed.
func TestWANBenchEverySystem(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process-shaped deployments are slow")
	}
	o := tinyWANOptions()
	o.Schemes = []compress.Scheme{compress.Zstd}
	o.fill()
	for _, kind := range o.Systems {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			cell, err := wanBenchCell(o, kind, compress.Zstd)
			if err != nil {
				t.Fatal(err)
			}
			if cell.Ops == 0 {
				t.Fatalf("%s: no operations completed", kind)
			}
			if cell.WireBytes <= 0 {
				t.Fatalf("%s: no bytes crossed the wire (raw=%d wire=%d)", kind, cell.RawBytes, cell.WireBytes)
			}
			if cell.VisSamples == 0 {
				t.Fatalf("%s: no remote visibility recorded", kind)
			}
			// Visibility counts from arrival at the destination, so the
			// eventual and sequencer baselines legitimately sit near
			// zero; only the stabilizing systems owe a waiting period.
			switch kind {
			case EunomiaKV, GentleRain, Cure:
				if cell.VisP50 < time.Millisecond {
					t.Fatalf("%s: visibility p50 %v, want a stabilization wait", kind, cell.VisP50)
				}
			}
			t.Logf("%s/zstd: ops=%d bytes/op=%.0f ratio=%.2f visP50=%v visP90=%v",
				kind, cell.Ops, cell.BytesPerOp, cell.Ratio, cell.VisP50, cell.VisP90)
		})
	}
}

// TestWANBenchCompressionShrinksWire pins the matrix's core claim on one
// system: under the identical workload and topology, zstd moves fewer
// bytes per operation than the uncompressed wire.
func TestWANBenchCompressionShrinksWire(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process-shaped deployments are slow")
	}
	o := tinyWANOptions()
	o.Systems = []SystemKind{EunomiaKV}
	o.Schemes = []compress.Scheme{compress.Off, compress.Zstd}
	// Eager clients on uncapped links: paced CI-scale load ships frames
	// below the compression threshold, and this test is about bytes, not
	// visibility, so saturating batches is the point.
	o.ThinkTime = -1
	o.Topology = "dc0-dc1:5ms±1ms;*:10ms±2ms"
	res, err := WANBench(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(res.Cells))
	}
	off, zstd := res.Cells[0], res.Cells[1]
	if off.Scheme != compress.Off || zstd.Scheme != compress.Zstd {
		t.Fatalf("cell order: %v, %v", off.Scheme, zstd.Scheme)
	}
	if off.Ops == 0 || zstd.Ops == 0 {
		t.Fatalf("no ops: off=%d zstd=%d", off.Ops, zstd.Ops)
	}
	if zstd.BytesPerOp >= off.BytesPerOp {
		t.Fatalf("zstd %.0f bytes/op, uncompressed %.0f — compression did not shrink the wire",
			zstd.BytesPerOp, off.BytesPerOp)
	}
	if zstd.Ratio <= 1.1 {
		t.Fatalf("zstd compression ratio %.2f, want > 1.1", zstd.Ratio)
	}
	t.Logf("bytes/op off=%.0f zstd=%.0f (ratio %.2f)", off.BytesPerOp, zstd.BytesPerOp, zstd.Ratio)
}

// TestWANTreeBytesReduction is the acceptance measurement: on the
// MultiBatchMsg-heavy aggregator-tree hop, zstd must at least halve
// bytes-on-wire versus the uncompressed codec.
func TestWANTreeBytesReduction(t *testing.T) {
	o := WANTreeOptions{
		ServiceOptions: ServiceOptions{
			Duration: 300 * time.Millisecond,
			Warmup:   150 * time.Millisecond,
		},
		Partitions: 8,
		Schemes:    []compress.Scheme{compress.Off, compress.Zstd},
	}
	res, err := WANTreeBytes(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(res.Points))
	}
	off, zstd := res.Points[0], res.Points[1]
	if off.Ops == 0 || zstd.Ops == 0 {
		t.Fatalf("no ordered ops: off=%d zstd=%d", off.Ops, zstd.Ops)
	}
	if off.WireBytes == 0 || zstd.WireBytes == 0 {
		t.Fatalf("no wire traffic: off=%d zstd=%d", off.WireBytes, zstd.WireBytes)
	}
	if zstd.ReductionVsOff < 2 {
		t.Fatalf("zstd reduces aggregator-tree bytes-on-wire by %.2fx, want >= 2x (off %.0f B/op, zstd %.0f B/op)",
			zstd.ReductionVsOff, off.BytesPerOp, zstd.BytesPerOp)
	}
	t.Logf("aggregator-tree bytes/op: off=%.0f zstd=%.0f, reduction %.1fx (ratio %.1f)",
		off.BytesPerOp, zstd.BytesPerOp, zstd.ReductionVsOff, zstd.Ratio)
}
