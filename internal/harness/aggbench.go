package harness

// AggregatorBench measures the §5 propagation tree as it actually deploys
// on the fabric (fabric.Aggregator serving MultiBatchMsg frames): the
// orderer-ingress message rate per ordered operation across tree depths —
// flat all-to-one, one aggregator level, two levels — plus each tree's
// fan-in ratio and flush latency. It is the quantified version of the
// paper's scalability argument: past ~64 partitions the replica's message
// rate, not its op rate, is what stops scaling, and intermediate fan-in
// restores it.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"eunomia/internal/eunomia"
	"eunomia/internal/fabric"
	"eunomia/internal/hlc"
	"eunomia/internal/metrics"
	"eunomia/internal/simnet"
	"eunomia/internal/types"
)

// AggregatorBenchOptions parameterises the tree comparison.
type AggregatorBenchOptions struct {
	ServiceOptions
	// Partitions is the datacenter width (default 32).
	Partitions int
	// FanIn is the per-level fan-in factor: each level has
	// ceil(previous/FanIn) aggregators (default 4).
	FanIn int
	// Depths lists the tree depths to measure (default 0, 1, 2; 0 = flat).
	Depths []int
}

func (o *AggregatorBenchOptions) fill() {
	o.ServiceOptions.fill()
	if o.Partitions <= 0 {
		o.Partitions = 32
	}
	if o.FanIn <= 0 {
		o.FanIn = 4
	}
	if len(o.Depths) == 0 {
		o.Depths = []int{0, 1, 2}
	}
}

// AggregatorTreePoint is one topology's measurement.
type AggregatorTreePoint struct {
	Depth int
	// Throughput is ordered (stabilized) operations per second.
	Throughput float64
	// IngressPerSec is fabric frames received by the replica per second;
	// IngressPerOp normalizes it by ordered operations — the quantity the
	// tree exists to reduce.
	IngressPerSec float64
	IngressPerOp  float64
	// ReductionVsFlat is flat IngressPerOp over this topology's (1 for
	// the flat run itself); a d-level tree should reach roughly
	// FanIn^d.
	ReductionVsFlat float64
	// FanInRatio is BatchesIn/BatchesOut summed over the level-1
	// aggregators (0 for the flat topology).
	FanInRatio float64
	// Flush latency percentiles over every aggregator's merge-and-forward
	// pass (0 for the flat topology).
	FlushP50, FlushP99 time.Duration
}

// AggregatorBenchResult reports every requested depth.
type AggregatorBenchResult struct {
	Points []AggregatorTreePoint
}

// AggregatorBench runs each requested depth on a zero-delay simnet and
// reports ingress reduction relative to the flat topology.
func AggregatorBench(o AggregatorBenchOptions) (AggregatorBenchResult, error) {
	o.fill()
	var res AggregatorBenchResult
	var flatPerOp float64
	for _, depth := range o.Depths {
		pt, err := aggregatorTreeLeg(o.ServiceOptions, o.Partitions, o.FanIn, depth)
		if err != nil {
			return res, err
		}
		if depth == 0 {
			flatPerOp = pt.IngressPerOp
		}
		if flatPerOp > 0 && pt.IngressPerOp > 0 {
			pt.ReductionVsFlat = flatPerOp / pt.IngressPerOp
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// ingressCountingFabric counts frames delivered to one endpoint — the
// replica's true ingress message rate, independent of how the replica's
// own counters attribute batches versus heartbeats.
type ingressCountingFabric struct {
	fabric.Fabric
	at fabric.Addr
	n  atomic.Int64
}

func (c *ingressCountingFabric) Register(a fabric.Addr, h fabric.Handler) {
	if a == c.at {
		inner := h
		h = func(m fabric.Message) {
			c.n.Add(1)
			inner(m)
		}
	}
	c.Fabric.Register(a, h)
}

// aggregatorTreeLeg drives one topology: partitions → depth levels of
// fabric aggregators → one Eunomia replica, all over a zero-delay simnet,
// under the rate-paced saturation load the service benchmarks use.
func aggregatorTreeLeg(o ServiceOptions, partitions, fanIn, depth int) (AggregatorTreePoint, error) {
	if depth < 0 || fanIn < 1 {
		return AggregatorTreePoint{}, fmt.Errorf("harness: bad tree shape depth=%d fanIn=%d", depth, fanIn)
	}
	net := simnet.New(func(from, to fabric.Addr) time.Duration { return 0 })
	defer net.Close()

	counter := newDedupCounter(nil)
	cluster := eunomia.NewCluster(1, eunomia.Config{
		Partitions:     partitions,
		StableInterval: time.Millisecond,
		MessageCost:    o.EunomiaMsgCost,
	}, func(_ types.ReplicaID, ops []*types.Update) { counter.consume(ops) })
	defer cluster.Stop()
	root := fabric.EunomiaAddr(0, 0)
	ingress := &ingressCountingFabric{Fabric: net, at: root}
	fabric.ServeReplica(ingress, root, cluster.Replica(0))

	// Build the tree from the root level down so every parent endpoint
	// exists before its children start flushing at it. Level k (1-based,
	// levels[k-1]) has ceil(previous/fanIn) nodes; every non-root level's
	// nodes dual-home at a pair of parents, the same redundant-path
	// pattern partitions use toward level 1.
	sizes := make([]int, depth)
	prev := partitions
	for k := 0; k < depth; k++ {
		sizes[k] = (prev + fanIn - 1) / fanIn
		prev = sizes[k]
	}
	levels := make([][]*fabric.Aggregator, depth)
	for k := depth - 1; k >= 0; k-- {
		levels[k] = make([]*fabric.Aggregator, sizes[k])
		for i := range levels[k] {
			var parents []fabric.Addr
			redundant := false
			if k == depth-1 {
				parents = []fabric.Addr{root}
			} else {
				up := levels[k+1]
				parents = append(parents, up[i%len(up)].LocalAddr())
				if len(up) > 1 {
					parents = append(parents, up[(i+1)%len(up)].LocalAddr())
				}
				redundant = true
			}
			levels[k][i] = fabric.NewAggregator(fabric.AggregatorConfig{
				Fabric:           net,
				Local:            fabric.Addr{DC: 0, Name: fmt.Sprintf("bench-agg-l%d-%d", k+1, i)},
				Parents:          parents,
				RedundantParents: redundant,
				FlushInterval:    o.BatchInterval,
				Level:            k + 1,
			})
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	clients := make([]*eunomia.Client, partitions)
	for i := 0; i < partitions; i++ {
		pid := types.PartitionID(i)
		local := fabric.PartitionAddr(0, pid)
		var remotes []fabric.Addr
		if depth == 0 {
			remotes = []fabric.Addr{root}
		} else {
			leaves := levels[0]
			remotes = append(remotes, leaves[i%len(leaves)].LocalAddr())
			if len(leaves) > 1 {
				remotes = append(remotes, leaves[(i+1)%len(leaves)].LocalAddr())
			}
		}
		conns := make([]eunomia.Conn, len(remotes))
		rcs := make([]*fabric.ReplicaConn, len(remotes))
		for j, r := range remotes {
			rc := fabric.NewReplicaConn(net, local, r, fabric.PipelinedConn, 0)
			rcs[j] = rc
			conns[j] = rc
		}
		net.Register(local, func(m fabric.Message) {
			for _, rc := range rcs {
				if rc.HandleMessage(m) {
					return
				}
			}
		})
		clock := hlc.NewClock(nil)
		clients[i] = eunomia.NewClient(eunomia.ClientConfig{
			Partition:      pid,
			BatchInterval:  o.BatchInterval,
			MaxPending:     o.MaxPending,
			RedundantPaths: depth > 0,
		}, conns, clock)
		wg.Add(1)
		go func(i int, clock *hlc.Clock) {
			defer wg.Done()
			producePartition(stop, clients[i], clock, types.PartitionID(i), o.PerPartitionRate)
		}(i, clock)
	}

	time.Sleep(o.Warmup)
	beforeOps := counter.total()
	beforeMsgs := ingress.n.Load()
	time.Sleep(o.Duration)
	afterOps := counter.total()
	afterMsgs := ingress.n.Load()

	close(stop)
	for _, c := range clients {
		c.Close()
	}
	wg.Wait()
	for k := 0; k < depth; k++ { // children before parents: final flushes drain upward
		for _, a := range levels[k] {
			a.Close()
		}
	}

	secs := o.Duration.Seconds()
	pt := AggregatorTreePoint{
		Depth:         depth,
		Throughput:    float64(afterOps-beforeOps) / secs,
		IngressPerSec: float64(afterMsgs-beforeMsgs) / secs,
	}
	if ops := afterOps - beforeOps; ops > 0 {
		pt.IngressPerOp = float64(afterMsgs-beforeMsgs) / float64(ops)
	}
	if depth > 0 {
		var in, out int64
		flush := metrics.NewHistogram()
		for _, a := range levels[0] {
			in += a.BatchesIn.Load()
			out += a.BatchesOut.Load()
		}
		for k := 0; k < depth; k++ {
			for _, a := range levels[k] {
				flush.Merge(a.FlushLatency)
			}
		}
		if out > 0 {
			pt.FanInRatio = float64(in) / float64(out)
		}
		pt.FlushP50 = time.Duration(flush.Percentile(50))
		pt.FlushP99 = time.Duration(flush.Percentile(99))
	}
	return pt, nil
}
