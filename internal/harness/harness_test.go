package harness

import (
	"math"
	"testing"
	"time"

	"eunomia/internal/types"
	"eunomia/internal/workload"
)

// The harness tests run each experiment driver at miniature scale: they
// validate plumbing (systems build, workloads drive them, metrics come
// back sane), not the paper's numbers — those need full-length runs via
// cmd/eunomia-bench.

func tinyOptions() Options {
	return Options{
		Duration:     200 * time.Millisecond,
		Warmup:       100 * time.Millisecond,
		WorkersPerDC: 2,
		Partitions:   2,
		RTTScale:     0.05,
	}
}

func tinyService() ServiceOptions {
	return ServiceOptions{
		Duration: 200 * time.Millisecond,
		Warmup:   100 * time.Millisecond,
	}
}

func TestBuildEverySystem(t *testing.T) {
	o := tinyOptions()
	o.fill()
	for _, kind := range []SystemKind{Eventual, EunomiaKV, GentleRain, Cure, SSeq, ASeq} {
		t.Run(string(kind), func(t *testing.T) {
			sys := buildSystem(kind, o, buildOpts{})
			defer sys.close()
			r := runWorkload(o, sys, workload.Mix{ReadPct: 75}, workload.Uniform{N: 1000})
			if r.Ops == 0 {
				t.Fatalf("%s: no operations completed", kind)
			}
			if r.Errors != 0 {
				t.Fatalf("%s: %d client errors", kind, r.Errors)
			}
		})
	}
}

func TestVisMatrix(t *testing.T) {
	v := NewVisMatrix(3)
	v.Record(0, 1, 5*time.Millisecond)
	v.Record(0, 1, 7*time.Millisecond)
	v.Record(2, 1, time.Millisecond)
	if v.Hist(0, 1).Count() != 2 {
		t.Fatal("Hist routing wrong")
	}
	if v.All().Count() != 3 {
		t.Fatal("All() merge wrong")
	}
}

func TestDedupCounter(t *testing.T) {
	d := newDedupCounter(nil)
	ops := []*types.Update{
		{Partition: 0, Seq: 1}, {Partition: 0, Seq: 2}, {Partition: 1, Seq: 1},
	}
	d.consume(ops)
	d.consume(ops) // duplicate shipment
	if d.total() != 3 {
		t.Fatalf("dedup total = %d, want 3", d.total())
	}
	d.consume([]*types.Update{{Partition: 0, Seq: 3}})
	if d.total() != 4 {
		t.Fatalf("dedup total = %d, want 4", d.total())
	}
}

func TestFig1Tiny(t *testing.T) {
	res := Fig1(tinyOptions(), []time.Duration{5 * time.Millisecond})
	if res.Baseline <= 0 {
		t.Fatal("no baseline throughput")
	}
	// 2 sequencer points + 2 stabilization systems × 1 interval.
	if len(res.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Throughput <= 0 {
			t.Fatalf("%s: zero throughput", p.System)
		}
	}
}

func TestFig2Tiny(t *testing.T) {
	res := Fig2(tinyService(), []int{4, 8})
	if len(res.Points) != 4 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.Ratio <= 1 {
		t.Fatalf("Eunomia did not out-scale the sequencer: ratio %.2f", res.Ratio)
	}
}

func TestFig3Tiny(t *testing.T) {
	res := Fig3(tinyService(), 8)
	if len(res.Points) != 6 {
		t.Fatalf("points = %d, want 6", len(res.Points))
	}
	if res.Points[0].Config != "Eunomia Non-FT" || res.Points[0].Normalized != 1 {
		t.Fatalf("baseline row wrong: %+v", res.Points[0])
	}
	for _, p := range res.Points {
		if p.Throughput <= 0 {
			t.Fatalf("%s: zero throughput", p.Config)
		}
	}
}

func TestFig4Tiny(t *testing.T) {
	res := Fig4(Fig4Options{
		Total:      2 * time.Second,
		Crash1:     700 * time.Millisecond,
		Crash2:     1400 * time.Millisecond,
		Bucket:     200 * time.Millisecond,
		Partitions: 4,
	})
	if len(res.Series) != 4 {
		t.Fatalf("series = %d", len(res.Series))
	}
	// 1-FT must flatline after the first crash.
	oneFT := res.Series[1]
	if oneFT.Config != "Eunomia 1-FT" {
		t.Fatalf("series order: %s", oneFT.Config)
	}
	last := oneFT.Normalized[len(oneFT.Normalized)-1]
	if last != 0 {
		t.Fatalf("1-FT still shipping after its only replica crashed: %f", last)
	}
	// 3-FT must survive both crashes.
	threeFT := res.Series[3]
	if threeFT.Normalized[len(threeFT.Normalized)-1] <= 0 {
		t.Fatal("3-FT did not survive two crashes")
	}
}

func TestFig6Tiny(t *testing.T) {
	res := Fig6(tinyOptions())
	if len(res.Curves) != 6 { // 3 systems × 2 pairs
		t.Fatalf("curves = %d", len(res.Curves))
	}
	for _, c := range res.Curves {
		if c.Count == 0 {
			t.Fatalf("%s %d→%d: no visibility samples", c.System, c.Origin, c.Dest)
		}
		if c.P90 < c.P50 {
			t.Fatalf("%s: percentile inversion", c.System)
		}
	}
	// The headline ordering on the near pair: EunomiaKV below GentleRain.
	var eu, gr time.Duration
	for _, c := range res.Curves {
		if c.Origin == 0 && c.Dest == 1 {
			switch c.System {
			case EunomiaKV:
				eu = c.P90
			case GentleRain:
				gr = c.P90
			}
		}
	}
	if eu >= gr {
		t.Fatalf("EunomiaKV p90 (%v) not below GentleRain (%v) on dc0→dc1", eu, gr)
	}
}

func TestFig7Tiny(t *testing.T) {
	res := Fig7(Fig7Options{
		Options:   tinyOptions(),
		Phase:     500 * time.Millisecond,
		Bucket:    250 * time.Millisecond,
		Intervals: []time.Duration{100 * time.Millisecond},
	})
	if len(res.Series) != 1 {
		t.Fatalf("series = %d", len(res.Series))
	}
	any := false
	for _, v := range res.Series[0].VisibilityMs {
		if !math.IsNaN(v) && v > 0 {
			any = true
		}
	}
	if !any {
		t.Fatal("no visibility samples in the straggler series")
	}
}

func TestAblationsTiny(t *testing.T) {
	tree := AblationTree(tinyService(), 8)
	if tree.RedBlack <= 0 || tree.AVL <= 0 {
		t.Fatalf("tree ablation: %+v", tree)
	}
	pts := AblationBatching(tinyService(), 4, []time.Duration{time.Millisecond, 2 * time.Millisecond})
	if len(pts) != 2 || pts[0].Throughput <= 0 {
		t.Fatalf("batching ablation: %+v", pts)
	}
	meta := AblationScalarVsVector(tinyOptions())
	if meta.VectorThr <= 0 || meta.ScalarThr <= 0 {
		t.Fatalf("metadata ablation: %+v", meta)
	}
	sep := AblationDataSeparation(tinyOptions())
	if sep.SeparatedThr <= 0 || sep.CombinedThr <= 0 {
		t.Fatalf("separation ablation: %+v", sep)
	}
}

func TestAblationPropagationTreeTiny(t *testing.T) {
	res := AblationPropagationTree(tinyService(), 8, 4)
	if res.DirectThroughput <= 0 || res.TreeThroughput <= 0 {
		t.Fatalf("tree ablation produced no throughput: %+v", res)
	}
	if res.TreeBatches >= res.DirectBatches {
		t.Fatalf("propagation tree did not reduce replica messages: direct %.0f/s vs tree %.0f/s",
			res.DirectBatches, res.TreeBatches)
	}
}

// TestAggregatorBenchReducesIngressByFanIn is the acceptance check behind
// BenchmarkAggregatorTree: a one-level tree of ceil(P/FanIn) aggregators
// must cut the orderer's ingress messages per ordered operation by at
// least the topology's fan-in factor (partitions over fan-in set size),
// with a little slack for scheduler jitter at tiny durations.
func TestAggregatorBenchReducesIngressByFanIn(t *testing.T) {
	o := AggregatorBenchOptions{
		ServiceOptions: ServiceOptions{
			Duration:         300 * time.Millisecond,
			Warmup:           150 * time.Millisecond,
			PerPartitionRate: 8000, // >= one op per flush tick: every flush carries data
		},
		Partitions: 12,
		FanIn:      3, // 12 partitions over 4 aggregators: factor 3
		Depths:     []int{0, 1},
	}
	res, err := AggregatorBench(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points: %+v", res.Points)
	}
	flat, tree := res.Points[0], res.Points[1]
	if flat.IngressPerOp <= 0 || tree.IngressPerOp <= 0 {
		t.Fatalf("no ingress measured: flat %+v tree %+v", flat, tree)
	}
	factor := float64(o.Partitions) / float64((o.Partitions+o.FanIn-1)/o.FanIn)
	if tree.ReductionVsFlat < factor*0.8 {
		t.Fatalf("tree reduced orderer ingress by %.2fx, want >= ~%.1fx (flat %.4f msgs/op, tree %.4f msgs/op)",
			tree.ReductionVsFlat, factor, flat.IngressPerOp, tree.IngressPerOp)
	}
	if tree.FanInRatio <= 1 {
		t.Fatalf("fan-in ratio %.2f, want > 1", tree.FanInRatio)
	}
	if tree.FlushP99 <= 0 {
		t.Fatal("flush latency histogram empty")
	}
}
