package harness

import (
	"sync"
	"sync/atomic"
	"time"

	"eunomia/internal/eunomia"
	"eunomia/internal/hlc"
	"eunomia/internal/metrics"
	"eunomia/internal/sequencer"
	"eunomia/internal/types"
)

// ServiceOptions parameterise the service-saturation experiments (Figures
// 2, 3 and 4), which — as in §7.1 — connect load generators directly to
// the ordering service, bypassing the data store, so the service itself is
// the bottleneck. Each generator goroutine emulates one datacenter
// partition issuing operations eagerly.
type ServiceOptions struct {
	// Duration is the measured window per data point (default 1s).
	Duration time.Duration
	// Warmup precedes measurement (default 250ms).
	Warmup time.Duration
	// BatchInterval is the partition→Eunomia propagation period
	// (default 1ms, as in §7.1).
	BatchInterval time.Duration
	// MaxPending is the per-partition backpressure bound (default 1024).
	// Eager producers keep the buffer pinned at this bound, so it sets
	// the burst granularity of the pipeline; it is kept small enough
	// that many stabilization rounds fit in every measurement window.
	MaxPending int
	// SequencerMsgCost is the emulated per-request processing cost
	// charged to sequencer services (default 5µs — the order of the
	// receive-parse-reply handling a networked sequencer performs per request).
	SequencerMsgCost time.Duration
	// EunomiaMsgCost is the emulated per-batch processing cost charged
	// to Eunomia replicas (default 2µs — one streamed message receive;
	// batching amortizes it across the operations in the batch).
	EunomiaMsgCost time.Duration
	// PerPartitionRate caps each emulated partition's offered load in
	// ops/s (default 33000). In the paper each partition stream comes
	// from a real machine with finite capacity, which is why Figure 2's
	// throughput climbs with the partition count until the service
	// saturates; an unbounded in-process producer would saturate the
	// service with a single stream and hide that shape. Zero or
	// negative means eager (unbounded) producers.
	PerPartitionRate int
}

func (o *ServiceOptions) fill() {
	if o.Duration <= 0 {
		o.Duration = time.Second
	}
	if o.Warmup <= 0 {
		o.Warmup = 250 * time.Millisecond
	}
	if o.BatchInterval <= 0 {
		o.BatchInterval = time.Millisecond
	}
	if o.MaxPending <= 0 {
		o.MaxPending = 1024
	}
	if o.SequencerMsgCost <= 0 {
		o.SequencerMsgCost = 5 * time.Microsecond
	}
	if o.EunomiaMsgCost <= 0 {
		o.EunomiaMsgCost = 2 * time.Microsecond
	}
	if o.PerPartitionRate == 0 {
		o.PerPartitionRate = 33000
	}
}

// Fig2Point is one (service, partition-count) measurement.
type Fig2Point struct {
	Service    string
	Partitions int
	Throughput float64 // ops/s sustained through the service
}

// Fig2Result reproduces Figure 2: maximum throughput of Eunomia versus a
// traditional sequencer while varying the number of partitions that drive
// the service. The paper reports Eunomia sustaining ~7.7× the sequencer's
// rate, with throughput flat in the partition count.
type Fig2Result struct {
	Partitions []int
	Points     []Fig2Point
	// Ratio is max(Eunomia)/max(Sequencer), the headline number.
	Ratio float64
}

// DefaultFig2Partitions mirrors the paper's sweep.
var DefaultFig2Partitions = []int{15, 30, 45, 60, 75}

// Fig2 runs the saturation sweep.
func Fig2(o ServiceOptions, partitions []int) Fig2Result {
	o.fill()
	if len(partitions) == 0 {
		partitions = DefaultFig2Partitions
	}
	res := Fig2Result{Partitions: partitions}
	var maxEu, maxSeq float64
	for _, p := range partitions {
		eu := eunomiaSaturation(o, p, 1, false, eunomia.RedBlack)
		if eu > maxEu {
			maxEu = eu
		}
		res.Points = append(res.Points, Fig2Point{Service: "Eunomia", Partitions: p, Throughput: eu})
	}
	for _, p := range partitions {
		sq := sequencerSaturation(o, p, 0)
		if sq > maxSeq {
			maxSeq = sq
		}
		res.Points = append(res.Points, Fig2Point{Service: "Sequencer", Partitions: p, Throughput: sq})
	}
	if maxSeq > 0 {
		res.Ratio = maxEu / maxSeq
	}
	return res
}

// eunomiaSaturation drives an Eunomia replica set with p eager partition
// emulators and returns the stabilized-operation throughput. replicas
// selects the fault-tolerance factor; fireAndForget selects the Algorithm
// 3 (non-FT) propagation path.
func eunomiaSaturation(o ServiceOptions, p, replicas int, fireAndForget bool, tree eunomia.TreeKind) float64 {
	o.fill()
	counter := newDedupCounter(nil)
	cluster := eunomia.NewCluster(replicas, eunomia.Config{
		Partitions:     p,
		StableInterval: time.Millisecond,
		Tree:           tree,
		MessageCost:    o.EunomiaMsgCost,
	}, func(_ types.ReplicaID, ops []*types.Update) { counter.consume(ops) })
	defer cluster.Stop()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	clients := make([]*eunomia.Client, p)
	for i := 0; i < p; i++ {
		clock := hlc.NewClock(nil)
		clients[i] = eunomia.NewClient(eunomia.ClientConfig{
			Partition:     types.PartitionID(i),
			BatchInterval: o.BatchInterval,
			MaxPending:    o.MaxPending,
			FireAndForget: fireAndForget,
		}, eunomia.ClusterConns(cluster), clock)
		wg.Add(1)
		go func(i int, clock *hlc.Clock) {
			defer wg.Done()
			producePartition(stop, clients[i], clock, types.PartitionID(i), o.PerPartitionRate)
		}(i, clock)
	}

	time.Sleep(o.Warmup)
	before := counter.total()
	time.Sleep(o.Duration)
	after := counter.total()
	close(stop)
	// Close clients before joining producers: Close is what wakes a
	// producer parked in Add's backpressure wait.
	for _, c := range clients {
		c.Close()
	}
	wg.Wait()
	return float64(after-before) / o.Duration.Seconds()
}

// producePartition emulates one partition stream: at rate ops/s (in 1ms
// bursts) when rate > 0, or eagerly otherwise.
func producePartition(stop <-chan struct{}, client *eunomia.Client, clock *hlc.Clock, p types.PartitionID, rate int) {
	var seq uint64
	emit := func() {
		seq++
		client.Add(&types.Update{Partition: p, Seq: seq, TS: clock.Tick(0)})
	}
	if rate <= 0 {
		for {
			select {
			case <-stop:
				return
			default:
			}
			emit()
		}
	}
	perTick := rate / 1000
	if perTick < 1 {
		perTick = 1
	}
	ticker := time.NewTicker(time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			for j := 0; j < perTick; j++ {
				emit()
			}
		}
	}
}

// sequencerSaturation drives a sequencer with p eager clients performing
// the synchronous per-operation round trip, and returns the completed
// operation rate. chain > 1 selects the chain-replicated variant.
func sequencerSaturation(o ServiceOptions, p, chain int) float64 {
	o.fill()
	var svc sequencer.Service
	if chain > 1 {
		ch := sequencer.NewChain(chain)
		ch.MessageCost = o.SequencerMsgCost
		svc = ch
	} else {
		single := sequencer.NewSingle()
		single.MessageCost = o.SequencerMsgCost
		svc = single
	}
	defer svc.Stop()

	var count metrics.Counter
	var measuring atomic.Bool
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := svc.Next(); err != nil {
					return
				}
				if measuring.Load() {
					count.Inc()
				}
			}
		}()
	}

	time.Sleep(o.Warmup)
	measuring.Store(true)
	time.Sleep(o.Duration)
	measuring.Store(false)
	close(stop)
	total := count.Load()
	svc.Stop()
	wg.Wait()
	return float64(total) / o.Duration.Seconds()
}
