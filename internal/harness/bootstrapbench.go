package harness

// BootstrapBench quantifies what snapshot shipping buys a partition-role
// node that must (re)build its dataset: pulling a compressed, pinned
// snapshot from a live peer (chunked over the fabric, WAL suffix
// replayed on top) versus the two alternatives — a full resync, i.e. the
// origin datacenter re-replicating every update over the WAN, and a
// local replay, i.e. recovering from the node's own surviving data dir.
// Local replay is the cheapest when the disk survived the crash (the
// RecoveryBench story); snapshot shipping is for the case it did not —
// a new replica, a wiped machine, a rebuilding datacenter.

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"eunomia/internal/fabric"
	"eunomia/internal/geostore"
	"eunomia/internal/simnet"
	"eunomia/internal/types"
)

// BootstrapBenchOptions parameterises the bootstrap comparison.
type BootstrapBenchOptions struct {
	// Updates is the dataset size seeded at the donor before the joiner
	// exists (default 2000).
	Updates int
	// ValueBytes sizes each value (default 1024): the volume a resync
	// re-ships update by update and a snapshot ships compressed in
	// 256 KiB chunks.
	ValueBytes int
	// Partitions per datacenter (default 4).
	Partitions int
	// LinkDelay is the simulated one-way delay on every fabric link
	// (default 1ms) — a resync pays it per replication window, a
	// snapshot ship per chunk round trip.
	LinkDelay time.Duration
	// StoreBackend is the joiner's version-store backend ("mem" or
	// "disk", default "mem").
	StoreBackend string
}

func (o *BootstrapBenchOptions) fill() {
	if o.Updates <= 0 {
		o.Updates = 2000
	}
	if o.ValueBytes <= 0 {
		o.ValueBytes = 1024
	}
	if o.Partitions <= 0 {
		o.Partitions = 4
	}
	if o.LinkDelay <= 0 {
		o.LinkDelay = time.Millisecond
	}
	if o.StoreBackend == "" {
		o.StoreBackend = "mem"
	}
}

// BootstrapBenchResult reports time-to-dataset-present for each
// strategy, plus the snapshot transfer's size accounting.
type BootstrapBenchResult struct {
	// ShipSecs: a fresh joiner pulls a pinned snapshot from the donor
	// at startup and is queryable when OpenNode returns.
	ShipSecs float64
	// ResyncSecs: a fresh joiner catches up by having the origin
	// re-replicate the whole dataset through the normal write path.
	ResyncSecs float64
	// ReplaySecs: the joiner's data dir survived; restart and recover
	// locally with no network at all.
	ReplaySecs float64
	// ShipVsResync is ResyncSecs / ShipSecs — the acceptance ratio.
	ShipVsResync float64
	// ShipBytes / ShipChunks: compressed bytes and chunks transferred
	// by the snapshot-ship leg.
	ShipBytes  int64
	ShipChunks int64
}

// BootstrapBench seeds a donor datacenter with a dataset, then brings a
// second datacenter's partition-role node up to date three ways and
// times each: snapshot ship, full resync, local replay.
func BootstrapBench(o BootstrapBenchOptions) (BootstrapBenchResult, error) {
	o.fill()
	var res BootstrapBenchResult

	ship, bytes, chunks, err := bootstrapShipLeg(o)
	if err != nil {
		return res, fmt.Errorf("snapshot-ship leg: %w", err)
	}
	resync, err := bootstrapResyncLeg(o)
	if err != nil {
		return res, fmt.Errorf("full-resync leg: %w", err)
	}
	replay, err := bootstrapReplayLeg(o)
	if err != nil {
		return res, fmt.Errorf("local-replay leg: %w", err)
	}
	return BootstrapBenchResult{
		ShipSecs:     ship.Seconds(),
		ResyncSecs:   resync.Seconds(),
		ReplaySecs:   replay.Seconds(),
		ShipVsResync: resync.Seconds() / ship.Seconds(),
		ShipBytes:    bytes,
		ShipChunks:   chunks,
	}, nil
}

// bootstrapUniverse is the shared two-datacenter setup: a simnet with
// the configured link delay and a donor at dc0 (RoleAll) seeded with the
// dataset while dc1 does not exist yet.
func bootstrapUniverse(o BootstrapBenchOptions, cfg geostore.Config) (*simnet.Network, *geostore.Node, error) {
	delay := o.LinkDelay
	net := simnet.New(func(from, to fabric.Addr) time.Duration { return delay })
	donor, err := geostore.OpenNode(geostore.NodeConfig{
		Config: cfg, DC: 0, Roles: geostore.RoleAll, Fabric: net,
	})
	if err != nil {
		net.Close()
		return nil, nil, err
	}
	if err := bootstrapSeed(donor, o); err != nil {
		closeBootNode(donor)
		net.Close()
		return nil, nil, err
	}
	// Let the donor's payload batchers flush the seed's shipping backlog
	// before any joiner exists. The shipped copies fall on the floor (dc1
	// is unregistered), exactly as they would for a datacenter that went
	// absent long before a replacement bootstraps. Without this settle, a
	// joiner opening milliseconds after the last write absorbs the whole
	// backlog inline on the same FIFO links the snapshot chunks ride, and
	// the ship leg times bench-artifact backlog delivery instead of the
	// transfer. One dropped message per partition marks the batchers
	// drained; the extra sleep covers stragglers on coarse timers.
	deadline := time.Now().Add(5 * time.Second)
	for net.Dropped.Load() < int64(cfg.Partitions) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	return net, donor, nil
}

func bootstrapSeed(donor *geostore.Node, o BootstrapBenchOptions) error {
	c := donor.NewClient()
	value := make([]byte, o.ValueBytes)
	for i := 0; i < o.Updates; i++ {
		if err := c.Update(types.Key(fmt.Sprintf("base%d", i)), value); err != nil {
			return err
		}
	}
	return nil
}

func closeBootNode(n *geostore.Node) { n.CloseIngress(); n.CloseServices() }

// bootstrapShipLeg: the joiner opens with -bootstrap-from dc0 and an
// empty slate; OpenNode returns once every hosted partition has
// installed its snapshot, so the timed region is exactly the transfer
// plus install.
func bootstrapShipLeg(o BootstrapBenchOptions) (time.Duration, int64, int64, error) {
	cfg := geostore.Config{DCs: 2, Partitions: o.Partitions}
	net, donor, err := bootstrapUniverse(o, cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	defer net.Close()
	defer closeBootNode(donor)

	dir, err := os.MkdirTemp("", "eunomia-bootstrap-bench")
	if err != nil {
		return 0, 0, 0, err
	}
	defer os.RemoveAll(dir)

	start := time.Now()
	joiner, err := geostore.OpenNode(geostore.NodeConfig{
		Config: cfg, DC: 1, Roles: geostore.RoleAll, Fabric: net,
		DataDir: dir, StoreBackend: o.StoreBackend,
		BootstrapFrom: []types.DCID{0},
	})
	if err != nil {
		return 0, 0, 0, err
	}
	defer closeBootNode(joiner)
	elapsed := time.Since(start)

	if err := bootstrapProbe(joiner, o); err != nil {
		return 0, 0, 0, err
	}
	bytes, chunks, _ := joiner.BootstrapStats()
	return elapsed, bytes, chunks, nil
}

// bootstrapResyncLeg: the joiner opens empty and the origin re-drives
// every update through the normal write path — the only catch-up a
// deployment without snapshot shipping has for a from-scratch replica.
// The timed region spans the joiner's open through the last update
// becoming visible at dc1. The joiner runs the same backend and
// durability configuration as the snapshot-ship leg, so the comparison
// is between transfer strategies, not between durable and volatile.
func bootstrapResyncLeg(o BootstrapBenchOptions) (time.Duration, error) {
	var visible atomic.Int64
	cfg := geostore.Config{
		DCs: 2, Partitions: o.Partitions,
		OnVisible: func(dest types.DCID, u *types.Update, arrived time.Time) {
			if dest == 1 {
				visible.Add(1)
			}
		},
	}
	net, donor, err := bootstrapUniverse(o, cfg)
	if err != nil {
		return 0, err
	}
	defer net.Close()
	defer closeBootNode(donor)

	dir, err := os.MkdirTemp("", "eunomia-bootstrap-bench")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)

	start := time.Now()
	joiner, err := geostore.OpenNode(geostore.NodeConfig{
		Config: cfg, DC: 1, Roles: geostore.RoleAll, Fabric: net,
		DataDir: dir, StoreBackend: o.StoreBackend,
	})
	if err != nil {
		return 0, err
	}
	defer closeBootNode(joiner)

	if err := bootstrapSeed(donor, o); err != nil { // the re-replication
		return 0, err
	}
	deadline := time.Now().Add(300 * time.Second)
	for visible.Load() < int64(o.Updates) {
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("only %d/%d updates visible at the joiner", visible.Load(), o.Updates)
		}
		time.Sleep(2 * time.Millisecond)
	}
	elapsed := time.Since(start)
	return elapsed, bootstrapProbe(joiner, o)
}

// bootstrapReplayLeg: the joiner already held the dataset durably (it
// replicated it before a clean shutdown); the timed region is the
// restart — WAL/segment recovery with no network involved.
func bootstrapReplayLeg(o BootstrapBenchOptions) (time.Duration, error) {
	var visible atomic.Int64
	cfg := geostore.Config{
		DCs: 2, Partitions: o.Partitions,
		OnVisible: func(dest types.DCID, u *types.Update, arrived time.Time) {
			if dest == 1 {
				visible.Add(1)
			}
		},
	}
	delay := o.LinkDelay
	net := simnet.New(func(from, to fabric.Addr) time.Duration { return delay })
	defer net.Close()
	dir, err := os.MkdirTemp("", "eunomia-bootstrap-bench")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)

	joinerCfg := geostore.NodeConfig{
		Config: cfg, DC: 1, Roles: geostore.RoleAll, Fabric: net,
		DataDir: dir, StoreBackend: o.StoreBackend,
	}
	joiner, err := geostore.OpenNode(joinerCfg)
	if err != nil {
		return 0, err
	}
	donor, err := geostore.OpenNode(geostore.NodeConfig{
		Config: cfg, DC: 0, Roles: geostore.RoleAll, Fabric: net,
	})
	if err != nil {
		closeBootNode(joiner)
		return 0, err
	}
	defer closeBootNode(donor)
	if err := bootstrapSeed(donor, o); err != nil {
		closeBootNode(joiner)
		return 0, err
	}
	deadline := time.Now().Add(300 * time.Second)
	for visible.Load() < int64(o.Updates) {
		if time.Now().After(deadline) {
			closeBootNode(joiner)
			return 0, fmt.Errorf("only %d/%d updates replicated before shutdown", visible.Load(), o.Updates)
		}
		time.Sleep(2 * time.Millisecond)
	}
	closeBootNode(joiner) // clean shutdown; the data dir survives

	start := time.Now()
	restarted, err := geostore.OpenNode(joinerCfg)
	if err != nil {
		return 0, err
	}
	defer closeBootNode(restarted)
	elapsed := time.Since(start)
	return elapsed, bootstrapProbe(restarted, o)
}

// bootstrapProbe checks the strategy actually produced the dataset:
// first, middle, and last key readable at the joiner with full-size
// values.
func bootstrapProbe(n *geostore.Node, o BootstrapBenchOptions) error {
	c := n.NewClient()
	for _, i := range []int{0, o.Updates / 2, o.Updates - 1} {
		k := types.Key(fmt.Sprintf("base%d", i))
		v, _ := c.Read(k)
		if len(v) != o.ValueBytes {
			return fmt.Errorf("joiner missing %q (got %d bytes, want %d)", k, len(v), o.ValueBytes)
		}
	}
	return nil
}
