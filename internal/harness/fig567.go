package harness

import (
	"context"
	"time"

	"eunomia/internal/geostore"
	"eunomia/internal/metrics"
	"eunomia/internal/types"
	"eunomia/internal/workload"
)

// Fig5Cell is one (system, workload) throughput measurement.
type Fig5Cell struct {
	System     SystemKind
	Mix        workload.Mix
	Dist       string // "uniform" or "powerlaw"
	Throughput float64
	// VsEventual is Throughput normalized against the eventual baseline
	// for the same workload.
	VsEventual float64
}

// Fig5Result reproduces Figure 5: geo-replicated throughput of Eventual,
// EunomiaKV, GentleRain and Cure across read:write ratios and key
// distributions. The paper's headline: EunomiaKV averages within ~4.7% of
// eventual consistency while GentleRain and Cure trail it.
type Fig5Result struct {
	Cells []Fig5Cell
}

// Fig5 runs the full grid: 4 mixes × 2 distributions × 4 systems.
func Fig5(o Options, mixes []workload.Mix, dists []workload.KeyDist) Fig5Result {
	o.fill()
	if len(mixes) == 0 {
		mixes = workload.StandardMixes
	}
	if len(dists) == 0 {
		dists = []workload.KeyDist{
			workload.Uniform{N: workload.DefaultKeys},
			workload.NewPowerLaw(workload.DefaultKeys),
		}
	}
	// EunomiaKV runs with data/metadata separation off here: separation
	// exists to spare the real Eunomia service from handling payload
	// bytes (§5), but in a single-process deployment payloads are
	// pointers, so the split buys nothing and only adds per-update
	// bookkeeping. AblationDataSeparation measures the toggle itself.
	inProc := func(c *geostore.Config) { c.NoSeparation = true }

	var res Fig5Result
	for _, dist := range dists {
		for _, mix := range mixes {
			var baseline float64
			for _, kind := range []SystemKind{Eventual, EunomiaKV, GentleRain, Cure} {
				sys := buildSystem(kind, o, buildOpts{eunomiaCfg: inProc})
				r := runWorkload(o, sys, mix, dist)
				sys.close()
				settle()
				cell := Fig5Cell{
					System:     kind,
					Mix:        mix,
					Dist:       dist.Name(),
					Throughput: r.Throughput(),
				}
				if kind == Eventual {
					baseline = cell.Throughput
					cell.VsEventual = 1
				} else if baseline > 0 {
					cell.VsEventual = cell.Throughput / baseline
				}
				res.Cells = append(res.Cells, cell)
			}
		}
	}
	return res
}

// Fig6Curve is one system's visibility CDF for one datacenter pair.
type Fig6Curve struct {
	System SystemKind
	Origin types.DCID
	Dest   types.DCID
	CDF    []metrics.CDFPoint
	P50    time.Duration
	P90    time.Duration
	P95    time.Duration
	P99    time.Duration
	Count  int64
}

// Fig6Result reproduces Figure 6: CDFs of remote update visibility
// latency with network travel factored out, for dc0→dc1 (80ms RTT pair)
// and dc1→dc2 (160ms RTT pair). Expected shape: EunomiaKV near-zero extra
// delay (bounded by batching + stabilization), Cure bounded by its false
// sharing of the stabilization cut, GentleRain worst on the left pair
// because its scalar waits on the farthest datacenter.
type Fig6Result struct {
	Curves []Fig6Curve
}

// Fig6 measures EunomiaKV, GentleRain and Cure under the 90:10 uniform
// workload and extracts both datacenter pairs' CDFs.
//
// Visibility is a latency metric: the run must not saturate the host, or
// queueing delay swamps the protocol-inherent delay under study. A default
// think time keeps the offered load moderate, mirroring the paper's
// deployment where client machines — not the datacenter — were the
// bottleneck in this experiment.
func Fig6(o Options) Fig6Result {
	o.fill()
	if o.ThinkTime <= 0 {
		o.ThinkTime = time.Millisecond
	}
	mix := workload.Mix{ReadPct: 90}
	keys := workload.Uniform{N: workload.DefaultKeys}
	pairs := [][2]types.DCID{{0, 1}, {1, 2}}

	var res Fig6Result
	for _, kind := range []SystemKind{EunomiaKV, GentleRain, Cure} {
		sys := buildSystem(kind, o, buildOpts{})
		runWorkload(o, sys, mix, keys)
		for _, pair := range pairs {
			h := sys.vis.Hist(pair[0], pair[1])
			res.Curves = append(res.Curves, Fig6Curve{
				System: kind,
				Origin: pair[0],
				Dest:   pair[1],
				CDF:    h.CDF(),
				P50:    time.Duration(h.Percentile(50)),
				P90:    time.Duration(h.Percentile(90)),
				P95:    time.Duration(h.Percentile(95)),
				P99:    time.Duration(h.Percentile(99)),
				Count:  h.Count(),
			})
		}
		sys.close()
	}
	return res
}

// Fig7Options shape the straggler experiment.
type Fig7Options struct {
	Options
	// Phase is the length of each act (healthy, straggling, healed);
	// default 4s.
	Phase time.Duration
	// Bucket is the time-series resolution; default 500ms.
	Bucket time.Duration
	// Intervals are the straggler communication intervals to test;
	// default 10ms, 100ms, 1s as in the paper.
	Intervals []time.Duration
}

func (o *Fig7Options) fill() {
	o.Options.fill()
	if o.ThinkTime <= 0 {
		o.ThinkTime = time.Millisecond // latency experiment: stay unsaturated
	}
	if o.Phase <= 0 {
		o.Phase = 4 * time.Second
	}
	if o.Bucket <= 0 {
		o.Bucket = 500 * time.Millisecond
	}
	if len(o.Intervals) == 0 {
		o.Intervals = []time.Duration{10 * time.Millisecond, 100 * time.Millisecond, time.Second}
	}
}

// Fig7Series is the visibility-over-time trace for one straggle interval.
type Fig7Series struct {
	Interval time.Duration
	// VisibilityMs is the mean remote update visibility latency (ms) of
	// dc2-origin updates measured at dc1, per bucket.
	VisibilityMs []float64
}

// Fig7Result reproduces Figure 7: a partition of dc2 communicates with its
// local Eunomia only every Interval during the middle act; the visibility
// of updates originating at dc2's healthy partitions, observed at dc1,
// degrades proportionally to the straggle interval and recovers after the
// partition heals.
type Fig7Result struct {
	Options Fig7Options
	Series  []Fig7Series
}

// Fig7 runs one EunomiaKV deployment per straggle interval.
func Fig7(o Fig7Options) Fig7Result {
	o.fill()
	res := Fig7Result{Options: o}
	for _, interval := range o.Intervals {
		res.Series = append(res.Series, Fig7Series{
			Interval:     interval,
			VisibilityMs: fig7Run(o, interval),
		})
	}
	return res
}

func fig7Run(o Fig7Options, straggle time.Duration) []float64 {
	const stragglerDC, observerDC = 2, 1
	series := metrics.NewGaugeSeries(o.Bucket)
	st := geostore.NewStore(geostore.Config{
		DCs:        o.DCs,
		Partitions: o.Partitions,
		Delay:      o.delay(),
		OnVisible: func(dest types.DCID, u *types.Update, arrived time.Time) {
			if dest == observerDC && u.Origin == stragglerDC {
				series.Record(float64(time.Since(arrived).Milliseconds()))
			}
		},
	})
	defer st.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan workload.Result, 1)
	go func() {
		done <- workload.Run(ctx, workload.Config{
			Workers:   o.WorkersPerDC * o.DCs,
			Duration:  3 * o.Phase,
			Warmup:    0,
			Mix:       workload.Mix{ReadPct: 90},
			Keys:      workload.Uniform{N: workload.DefaultKeys},
			Seed:      o.Seed,
			ThinkTime: o.ThinkTime,
		}, func(w int) workload.Client { return st.NewClient(types.DCID(w % o.DCs)) })
	}()

	// Act 1: healthy. Act 2: partition 0 of dc2 straggles. Act 3: healed.
	time.Sleep(o.Phase)
	st.SetPartitionInterval(stragglerDC, 0, straggle)
	time.Sleep(o.Phase)
	st.SetPartitionInterval(stragglerDC, 0, time.Millisecond)
	time.Sleep(o.Phase)
	cancel()
	<-done
	return series.Averages()
}
