package harness

// Fabric-level benchmarks: the transport experiments behind the
// deployment figures. PipelineBench quantifies what the pipelined,
// windowed-acknowledgement wire protocol buys over the original
// one-request-one-response protocol on a real TCP link; ReleaseBench
// quantifies what the windowed receiver→partition release stream buys
// over the original one-blocking-round-trip-per-update release in a
// split-role datacenter.

import (
	"fmt"
	"sync/atomic"
	"time"

	"eunomia/internal/fabric"
	"eunomia/internal/geostore"
	"eunomia/internal/simnet"
	"eunomia/internal/transport"
	"eunomia/internal/types"
	"eunomia/internal/wire"
)

// benchPing is the unit message both transport legs ship.
type benchPing struct {
	Seq  uint64
	Data []byte
}

// benchPong acknowledges one ping in the request/response leg.
type benchPong struct {
	Seq uint64
}

// WireTag implements wire.Marshaler.
func (m benchPing) WireTag() wire.Tag { return wire.TagBenchPing }

// AppendWire implements wire.Marshaler.
func (m benchPing) AppendWire(b []byte) []byte {
	b = wire.AppendUvarint(b, m.Seq)
	return wire.AppendBytes(b, m.Data)
}

// WireTag implements wire.Marshaler.
func (m benchPong) WireTag() wire.Tag { return wire.TagBenchPong }

// AppendWire implements wire.Marshaler.
func (m benchPong) AppendWire(b []byte) []byte {
	return wire.AppendUvarint(b, m.Seq)
}

func init() {
	fabric.RegisterPayload(benchPing{})
	fabric.RegisterPayload(benchPong{})
	wire.Register(wire.TagBenchPing, func(d *wire.Dec) any {
		return benchPing{Seq: d.Uvarint(), Data: d.Bytes()}
	})
	wire.Register(wire.TagBenchPong, func(d *wire.Dec) any {
		return benchPong{Seq: d.Uvarint()}
	})
}

// PipelineBenchOptions parameterises the TCP protocol comparison.
type PipelineBenchOptions struct {
	// Messages is the pipelined leg's message count (default 2000). The
	// request/response leg uses Messages/10 (min 200): it is RTT-bound
	// and throughput is reported per second either way.
	Messages int
	// PayloadBytes sizes each message's body (default 128).
	PayloadBytes int
	// Codec selects the frame codec both endpoints run
	// (default fabric.CodecWire; fabric.CodecGob is the ablation).
	Codec fabric.Codec
}

func (o *PipelineBenchOptions) fill() {
	if o.Messages <= 0 {
		o.Messages = 2000
	}
	if o.PayloadBytes <= 0 {
		o.PayloadBytes = 128
	}
}

// PipelineBenchResult reports both protocols' throughput over one real
// TCP connection on loopback.
type PipelineBenchResult struct {
	PipelinedPerSec       float64
	RequestResponsePerSec float64
	// Speedup is PipelinedPerSec / RequestResponsePerSec.
	Speedup float64
}

// PipelineBench measures the pipelined wire protocol against an emulated
// request/response protocol (send one message, wait for the peer's
// application-level reply before the next) between two TCP fabric
// endpoints on loopback.
func PipelineBench(o PipelineBenchOptions) (PipelineBenchResult, error) {
	o.fill()
	sender, err := transport.Listen(transport.Config{Listen: "127.0.0.1:0", Codec: o.Codec})
	if err != nil {
		return PipelineBenchResult{}, err
	}
	defer sender.Close()
	sink, err := transport.Listen(transport.Config{Listen: "127.0.0.1:0", Codec: o.Codec})
	if err != nil {
		return PipelineBenchResult{}, err
	}
	defer sink.Close()

	srcAddr := fabric.Addr{DC: 0, Name: "bench-src"}
	pipeAddr := fabric.Addr{DC: 0, Name: "bench-sink-pipe"}
	rrAddr := fabric.Addr{DC: 0, Name: "bench-sink-rr"}
	sinkHost := sink.Addr().String()
	sender.AddRoute(pipeAddr, sinkHost)
	sender.AddRoute(rrAddr, sinkHost)

	// Pipelined sink: count arrivals, signal at each target.
	var got atomic.Uint64
	target := make(chan uint64, 4)
	pipeDone := make(chan struct{}, 4)
	sink.Register(pipeAddr, func(m fabric.Message) {
		n := got.Add(1)
		select {
		case want := <-target:
			if n < want {
				target <- want
				return
			}
			pipeDone <- struct{}{}
		default:
		}
	})
	// Request/response sink: one reply per ping.
	sink.Register(rrAddr, func(m fabric.Message) {
		ping, ok := m.Payload.(benchPing)
		if !ok {
			return
		}
		sink.Send(rrAddr, m.From, benchPong{Seq: ping.Seq})
	})
	pongs := make(chan uint64, 16)
	sender.Register(srcAddr, func(m fabric.Message) {
		if pong, ok := m.Payload.(benchPong); ok {
			pongs <- pong.Seq
		}
	})

	payload := make([]byte, o.PayloadBytes)
	deadline := time.After(60 * time.Second)

	// Warm both paths first: dial, hello exchange, gob type descriptors.
	target <- 1
	sender.Send(srcAddr, pipeAddr, benchPing{Data: payload})
	select {
	case <-pipeDone:
	case <-deadline:
		return PipelineBenchResult{}, fmt.Errorf("pipeline warmup stalled")
	}
	sender.Send(srcAddr, rrAddr, benchPing{Data: payload})
	select {
	case <-pongs:
	case <-deadline:
		return PipelineBenchResult{}, fmt.Errorf("request/response warmup stalled")
	}

	// Pipelined leg: stream every message, wait for the last delivery.
	base := got.Load()
	target <- base + uint64(o.Messages)
	start := time.Now()
	for i := 0; i < o.Messages; i++ {
		sender.Send(srcAddr, pipeAddr, benchPing{Seq: uint64(i), Data: payload})
	}
	select {
	case <-pipeDone:
	case <-deadline:
		return PipelineBenchResult{}, fmt.Errorf("pipelined leg stalled")
	}
	pipedPerSec := float64(o.Messages) / time.Since(start).Seconds()

	// Request/response leg: one in flight at a time.
	rrN := o.Messages / 10
	if rrN < 200 {
		rrN = 200
	}
	start = time.Now()
	for i := 0; i < rrN; i++ {
		sender.Send(srcAddr, rrAddr, benchPing{Seq: uint64(i), Data: payload})
		select {
		case <-pongs:
		case <-deadline:
			return PipelineBenchResult{}, fmt.Errorf("request/response leg stalled at %d", i)
		}
	}
	rrPerSec := float64(rrN) / time.Since(start).Seconds()

	return PipelineBenchResult{
		PipelinedPerSec:       pipedPerSec,
		RequestResponsePerSec: rrPerSec,
		Speedup:               pipedPerSec / rrPerSec,
	}, nil
}

// ReleaseBenchOptions parameterises the split-role release comparison.
type ReleaseBenchOptions struct {
	// Updates is how many remote updates each leg replicates
	// (default 200).
	Updates int
	// LinkDelay is the simulated one-way delay on every fabric link
	// (default 1ms) — the RTT floor the blocking protocol pays per
	// update.
	LinkDelay time.Duration
	// Window bounds the windowed leg's in-flight releases (default 256).
	Window int
	// Partitions per datacenter (default 4).
	Partitions int
}

func (o *ReleaseBenchOptions) fill() {
	if o.Updates <= 0 {
		o.Updates = 200
	}
	if o.LinkDelay <= 0 {
		o.LinkDelay = time.Millisecond
	}
	if o.Partitions <= 0 {
		o.Partitions = 4
	}
}

// ReleaseBenchResult reports remote apply throughput at a split-role
// datacenter under both release protocols.
type ReleaseBenchResult struct {
	WindowedPerSec float64
	BlockingPerSec float64
	// Speedup is WindowedPerSec / BlockingPerSec.
	Speedup float64
}

// ReleaseBench builds a two-datacenter deployment whose destination
// datacenter is split by role — receiver in one fabric process, partition
// group in another, every link carrying LinkDelay — and measures how fast
// updates originated at the other datacenter become visible, once with
// the windowed release stream and once with the original blocking
// round-trip release.
func ReleaseBench(o ReleaseBenchOptions) (ReleaseBenchResult, error) {
	o.fill()
	windowed, err := releaseLeg(o, false)
	if err != nil {
		return ReleaseBenchResult{}, fmt.Errorf("windowed leg: %w", err)
	}
	blocking, err := releaseLeg(o, true)
	if err != nil {
		return ReleaseBenchResult{}, fmt.Errorf("blocking leg: %w", err)
	}
	return ReleaseBenchResult{
		WindowedPerSec: windowed,
		BlockingPerSec: blocking,
		Speedup:        windowed / blocking,
	}, nil
}

func releaseLeg(o ReleaseBenchOptions, blocking bool) (float64, error) {
	delay := o.LinkDelay
	net := simnet.New(func(from, to fabric.Addr) time.Duration { return delay })

	var applied atomic.Int64
	done := make(chan struct{}, 1)
	destCfg := geostore.Config{
		DCs:        2,
		Partitions: o.Partitions,
		OnVisible: func(dest types.DCID, u *types.Update, arrived time.Time) {
			if dest == 0 && int(applied.Add(1)) == o.Updates {
				done <- struct{}{}
			}
		},
	}
	originCfg := geostore.Config{DCs: 2, Partitions: o.Partitions}

	parts := geostore.NewNode(geostore.NodeConfig{
		Config: destCfg, DC: 0, Roles: geostore.RolePartitions | geostore.RoleEunomia, Fabric: net,
	})
	recv := geostore.NewNode(geostore.NodeConfig{
		Config: destCfg, DC: 0, Roles: geostore.RoleReceiver, Fabric: net,
		ReleaseWindow: o.Window, BlockingRelease: blocking,
	})
	origin := geostore.NewNode(geostore.NodeConfig{
		Config: originCfg, DC: 1, Roles: geostore.RoleAll, Fabric: net,
	})
	nodes := []*geostore.Node{parts, recv, origin}
	defer func() {
		for _, n := range nodes {
			n.CloseIngress()
		}
		for _, n := range nodes {
			n.CloseServices()
		}
		net.Close()
	}()

	c := origin.NewClient()
	start := time.Now()
	for i := 0; i < o.Updates; i++ {
		if err := c.Update(types.Key(fmt.Sprintf("bench%d", i)), []byte("v")); err != nil {
			return 0, err
		}
	}
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		return 0, fmt.Errorf("only %d/%d updates visible", applied.Load(), o.Updates)
	}
	return float64(o.Updates) / time.Since(start).Seconds(), nil
}
