// Package clock provides the physical time sources the protocols read.
//
// The paper assumes partition clocks are loosely synchronized by NTP and
// explicitly claims correctness under arbitrary skew (only performance
// degrades, §3.2). To test that claim we cannot use the host clock alone:
// this package offers sources with injectable constant offset, linear
// drift, and full manual control, all implementing hlc.PhysSource.
package clock

import (
	"sync"
	"sync/atomic"
	"time"
)

// epochUnixMicro mirrors hlc.Epoch; duplicated here (it is a constant
// moment) to keep this package free of dependencies.
var epochUnixMicro = time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC).UnixMicro()

// Source supplies physical time in microseconds since the HLC epoch.
// It matches hlc.PhysSource.
type Source interface {
	NowMicros() int64
}

// System reads the host clock. It is the default source in every
// deployment.
type System struct{}

// NowMicros implements Source.
func (System) NowMicros() int64 { return time.Now().UnixMicro() - epochUnixMicro }

// Monotonic wraps a Source and guarantees non-decreasing readings, the
// assumption Algorithm 2 makes of Clock_n. The host clock already behaves
// this way in practice; Monotonic makes the property explicit when wrapping
// skewed or manual sources in tests.
type Monotonic struct {
	Base Source

	mu   sync.Mutex
	last int64
}

// NewMonotonic returns a monotonic view of base.
func NewMonotonic(base Source) *Monotonic { return &Monotonic{Base: base} }

// NowMicros implements Source.
func (m *Monotonic) NowMicros() int64 {
	now := m.Base.NowMicros()
	m.mu.Lock()
	defer m.mu.Unlock()
	if now < m.last {
		return m.last
	}
	m.last = now
	return now
}

// Skewed perturbs a base source by a constant offset plus linear drift,
// modelling an imperfectly NTP-disciplined clock. A drift of d PPM gains
// d microseconds per second of base time.
type Skewed struct {
	Base        Source
	OffsetMicro int64   // constant offset, may be negative
	DriftPPM    float64 // parts-per-million drift rate

	initOnce sync.Once
	start    int64
}

// NewSkewed returns a source running offset microseconds apart from base
// and drifting by driftPPM.
func NewSkewed(base Source, offset time.Duration, driftPPM float64) *Skewed {
	return &Skewed{Base: base, OffsetMicro: offset.Microseconds(), DriftPPM: driftPPM}
}

// NowMicros implements Source.
func (s *Skewed) NowMicros() int64 {
	now := s.Base.NowMicros()
	s.initOnce.Do(func() { s.start = now })
	elapsed := now - s.start
	drift := int64(float64(elapsed) * s.DriftPPM / 1e6)
	return now + s.OffsetMicro + drift
}

// SpinFor busy-waits for approximately d, consuming CPU. The benchmark
// harness uses it to charge emulated per-message processing cost to
// service goroutines (the syscall/parse/reply work a real networked
// sequencer performs per request), which time.Sleep cannot model: sleeping
// yields the CPU, but message handling does not.
func SpinFor(d time.Duration) {
	if d <= 0 {
		return
	}
	start := time.Now()
	for time.Since(start) < d {
	}
}

// Manual is a fully test-controlled source. The zero value reads 0.
type Manual struct {
	now atomic.Int64
}

// NewManual returns a manual source starting at start microseconds.
func NewManual(start int64) *Manual {
	m := &Manual{}
	m.now.Store(start)
	return m
}

// NowMicros implements Source.
func (m *Manual) NowMicros() int64 { return m.now.Load() }

// Set moves the clock to the absolute reading t (microseconds).
func (m *Manual) Set(t int64) { m.now.Store(t) }

// Advance moves the clock forward by d and returns the new reading.
func (m *Manual) Advance(d time.Duration) int64 {
	return m.now.Add(d.Microseconds())
}
