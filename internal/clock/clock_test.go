package clock

import (
	"testing"
	"time"
)

func TestSystemAdvances(t *testing.T) {
	var s System
	a := s.NowMicros()
	time.Sleep(2 * time.Millisecond)
	b := s.NowMicros()
	if b <= a {
		t.Fatalf("system clock did not advance: %d then %d", a, b)
	}
}

func TestManual(t *testing.T) {
	m := NewManual(100)
	if m.NowMicros() != 100 {
		t.Fatal("NewManual start ignored")
	}
	m.Advance(3 * time.Millisecond)
	if m.NowMicros() != 3100 {
		t.Fatalf("Advance: got %d, want 3100", m.NowMicros())
	}
	m.Set(50)
	if m.NowMicros() != 50 {
		t.Fatal("Set ignored")
	}
}

func TestSkewedOffset(t *testing.T) {
	base := NewManual(10_000)
	s := NewSkewed(base, 500*time.Microsecond, 0)
	if got := s.NowMicros(); got != 10_500 {
		t.Fatalf("offset: got %d, want 10500", got)
	}
	s2 := NewSkewed(base, -2*time.Millisecond, 0)
	if got := s2.NowMicros(); got != 8_000 {
		t.Fatalf("negative offset: got %d, want 8000", got)
	}
}

func TestSkewedDrift(t *testing.T) {
	base := NewManual(0)
	s := NewSkewed(base, 0, 100) // 100 PPM
	if got := s.NowMicros(); got != 0 {
		t.Fatalf("drift at t0: got %d, want 0", got)
	}
	base.Set(10_000_000) // 10 seconds of base time
	got := s.NowMicros()
	want := int64(10_000_000 + 1000) // 100µs gained per second × 10s
	if got != want {
		t.Fatalf("drift after 10s: got %d, want %d", got, want)
	}
}

func TestMonotonicClampsBackwardSteps(t *testing.T) {
	base := NewManual(1000)
	m := NewMonotonic(base)
	if m.NowMicros() != 1000 {
		t.Fatal("first read wrong")
	}
	base.Set(500) // clock steps backward (e.g. NTP correction)
	if got := m.NowMicros(); got != 1000 {
		t.Fatalf("monotonic read went backward: %d", got)
	}
	base.Set(1500)
	if got := m.NowMicros(); got != 1500 {
		t.Fatalf("monotonic did not resume: %d", got)
	}
}

func TestSpinForApproximatesDuration(t *testing.T) {
	start := time.Now()
	SpinFor(2 * time.Millisecond)
	elapsed := time.Since(start)
	if elapsed < 2*time.Millisecond {
		t.Fatalf("SpinFor returned early: %v", elapsed)
	}
	SpinFor(0)  // must not hang
	SpinFor(-1) // must not hang
}
