package rbtree_test

import (
	"math/rand"
	"testing"

	"eunomia/internal/hlc"
	"eunomia/internal/ordered"
	"eunomia/internal/ordered/orderedtest"
	"eunomia/internal/rbtree"
)

func TestConformance(t *testing.T) {
	orderedtest.Run(t, func() ordered.Set[int] { return rbtree.New[int]() })
}

func key(ts uint64, p int32, seq uint64) ordered.Key {
	return ordered.Key{TS: hlc.Timestamp(ts), Partition: p, Seq: seq}
}

// TestInvariantsUnderChurn validates the red-black properties (root black,
// no red-red edges, equal black heights, BST order) after every batch of
// mutations.
func TestInvariantsUnderChurn(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	tr := rbtree.New[int]()
	live := map[ordered.Key]bool{}
	for round := 0; round < 100; round++ {
		for i := 0; i < 50; i++ {
			k := key(uint64(r.Intn(500)), int32(r.Intn(3)), uint64(r.Intn(20)))
			switch r.Intn(3) {
			case 0, 1:
				tr.Insert(k, i)
				live[k] = true
			case 2:
				got := tr.Delete(k)
				want := live[k]
				if got != want {
					t.Fatalf("Delete(%v) = %v, want %v", k, got, want)
				}
				delete(live, k)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if tr.Len() != len(live) {
			t.Fatalf("round %d: Len %d, want %d", round, tr.Len(), len(live))
		}
	}
}

func TestDeleteMissing(t *testing.T) {
	tr := rbtree.New[int]()
	tr.Insert(key(1, 0, 0), 1)
	if tr.Delete(key(2, 0, 0)) {
		t.Fatal("Delete of absent key returned true")
	}
	if tr.Len() != 1 {
		t.Fatal("Delete of absent key changed Len")
	}
}

func TestInvariantsAfterExtract(t *testing.T) {
	tr := rbtree.New[int]()
	for i := 0; i < 1000; i++ {
		tr.Insert(key(uint64(i), 0, uint64(i)), i)
	}
	for max := 100; max <= 1000; max += 100 {
		tr.ExtractUpTo(hlc.Timestamp(max))
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("after ExtractUpTo(%d): %v", max, err)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after extracting everything", tr.Len())
	}
}

func BenchmarkInsert(b *testing.B) {
	tr := rbtree.New[int]()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Insert(key(uint64(i), 0, uint64(i)), i)
	}
}

// BenchmarkInsertExtract replays the Eunomia stabilization pattern: insert
// a window of operations, then extract the stable prefix in order.
func BenchmarkInsertExtract(b *testing.B) {
	tr := rbtree.New[int]()
	const window = 1024
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Insert(key(uint64(i), int32(i%8), uint64(i)), i)
		if i%window == window-1 {
			tr.ExtractUpTo(hlc.Timestamp(i - window/2))
		}
	}
}
