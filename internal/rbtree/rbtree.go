// Package rbtree implements the red-black tree backing the Eunomia
// service's pending-operation set.
//
// The paper (§6) singles this structure out: Eunomia stores every not-yet-
// stable update and periodically traverses the stable prefix in timestamp
// order, so it needs logarithmic insert/delete and cheap in-order prefix
// extraction. This is a classical CLRS red-black tree with a shared nil
// sentinel, specialised to ordered.Key keys and generic values.
package rbtree

import (
	"eunomia/internal/hlc"
	"eunomia/internal/ordered"
)

type color bool

const (
	red   color = false
	black color = true
)

type node[V any] struct {
	key                 ordered.Key
	val                 V
	left, right, parent *node[V]
	color               color
}

// Tree is a red-black tree keyed by ordered.Key. The zero value is not
// usable; construct with New. Tree implements ordered.Set[V].
type Tree[V any] struct {
	root *node[V]
	nil_ *node[V] // shared sentinel; always black
	size int
}

// New returns an empty tree.
func New[V any]() *Tree[V] {
	sentinel := &node[V]{color: black}
	sentinel.left, sentinel.right, sentinel.parent = sentinel, sentinel, sentinel
	return &Tree[V]{root: sentinel, nil_: sentinel}
}

// Len returns the number of entries.
func (t *Tree[V]) Len() int { return t.size }

// Insert adds (k, v), replacing the value if k is already present.
// It returns true for a fresh insert, false for a replacement.
func (t *Tree[V]) Insert(k ordered.Key, v V) bool {
	y := t.nil_
	x := t.root
	for x != t.nil_ {
		y = x
		switch c := k.Compare(x.key); {
		case c < 0:
			x = x.left
		case c > 0:
			x = x.right
		default:
			x.val = v
			return false
		}
	}
	z := &node[V]{key: k, val: v, left: t.nil_, right: t.nil_, parent: y, color: red}
	switch {
	case y == t.nil_:
		t.root = z
	case k.Less(y.key):
		y.left = z
	default:
		y.right = z
	}
	t.size++
	t.insertFixup(z)
	return true
}

func (t *Tree[V]) insertFixup(z *node[V]) {
	for z.parent.color == red {
		if z.parent == z.parent.parent.left {
			y := z.parent.parent.right
			if y.color == red {
				z.parent.color = black
				y.color = black
				z.parent.parent.color = red
				z = z.parent.parent
			} else {
				if z == z.parent.right {
					z = z.parent
					t.rotateLeft(z)
				}
				z.parent.color = black
				z.parent.parent.color = red
				t.rotateRight(z.parent.parent)
			}
		} else {
			y := z.parent.parent.left
			if y.color == red {
				z.parent.color = black
				y.color = black
				z.parent.parent.color = red
				z = z.parent.parent
			} else {
				if z == z.parent.left {
					z = z.parent
					t.rotateRight(z)
				}
				z.parent.color = black
				z.parent.parent.color = red
				t.rotateLeft(z.parent.parent)
			}
		}
	}
	t.root.color = black
}

func (t *Tree[V]) rotateLeft(x *node[V]) {
	y := x.right
	x.right = y.left
	if y.left != t.nil_ {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == t.nil_:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
}

func (t *Tree[V]) rotateRight(x *node[V]) {
	y := x.left
	x.left = y.right
	if y.right != t.nil_ {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == t.nil_:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
}

func (t *Tree[V]) minimum(x *node[V]) *node[V] {
	for x.left != t.nil_ {
		x = x.left
	}
	return x
}

// Min returns the smallest entry without removing it.
func (t *Tree[V]) Min() (ordered.Key, V, bool) {
	if t.root == t.nil_ {
		var zero V
		return ordered.Key{}, zero, false
	}
	n := t.minimum(t.root)
	return n.key, n.val, true
}

func (t *Tree[V]) transplant(u, v *node[V]) {
	switch {
	case u.parent == t.nil_:
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	v.parent = u.parent
}

func (t *Tree[V]) delete(z *node[V]) {
	y := z
	yOrig := y.color
	var x *node[V]
	switch {
	case z.left == t.nil_:
		x = z.right
		t.transplant(z, z.right)
	case z.right == t.nil_:
		x = z.left
		t.transplant(z, z.left)
	default:
		y = t.minimum(z.right)
		yOrig = y.color
		x = y.right
		if y.parent == z {
			x.parent = y
		} else {
			t.transplant(y, y.right)
			y.right = z.right
			y.right.parent = y
		}
		t.transplant(z, y)
		y.left = z.left
		y.left.parent = y
		y.color = z.color
	}
	if yOrig == black {
		t.deleteFixup(x)
	}
	t.size--
}

func (t *Tree[V]) deleteFixup(x *node[V]) {
	for x != t.root && x.color == black {
		if x == x.parent.left {
			w := x.parent.right
			if w.color == red {
				w.color = black
				x.parent.color = red
				t.rotateLeft(x.parent)
				w = x.parent.right
			}
			if w.left.color == black && w.right.color == black {
				w.color = red
				x = x.parent
			} else {
				if w.right.color == black {
					w.left.color = black
					w.color = red
					t.rotateRight(w)
					w = x.parent.right
				}
				w.color = x.parent.color
				x.parent.color = black
				w.right.color = black
				t.rotateLeft(x.parent)
				x = t.root
			}
		} else {
			w := x.parent.left
			if w.color == red {
				w.color = black
				x.parent.color = red
				t.rotateRight(x.parent)
				w = x.parent.left
			}
			if w.right.color == black && w.left.color == black {
				w.color = red
				x = x.parent
			} else {
				if w.left.color == black {
					w.right.color = black
					w.color = red
					t.rotateLeft(w)
					w = x.parent.left
				}
				w.color = x.parent.color
				x.parent.color = black
				w.left.color = black
				t.rotateRight(x.parent)
				x = t.root
			}
		}
	}
	x.color = black
}

// Delete removes k, returning whether it was present.
func (t *Tree[V]) Delete(k ordered.Key) bool {
	x := t.root
	for x != t.nil_ {
		switch c := k.Compare(x.key); {
		case c < 0:
			x = x.left
		case c > 0:
			x = x.right
		default:
			t.delete(x)
			return true
		}
	}
	return false
}

// ExtractUpTo removes and returns, in ascending order, every entry with
// key.TS <= max. This is the stabilization step: a linear in-order walk of
// the stable prefix followed by its removal.
func (t *Tree[V]) ExtractUpTo(max hlc.Timestamp) []V {
	var out []V
	for t.root != t.nil_ {
		n := t.minimum(t.root)
		if n.key.TS > max {
			break
		}
		out = append(out, n.val)
		t.delete(n)
	}
	return out
}

// Ascend visits entries in ascending key order until fn returns false.
func (t *Tree[V]) Ascend(fn func(ordered.Key, V) bool) {
	t.ascend(t.root, fn)
}

func (t *Tree[V]) ascend(n *node[V], fn func(ordered.Key, V) bool) bool {
	if n == t.nil_ {
		return true
	}
	if !t.ascend(n.left, fn) {
		return false
	}
	if !fn(n.key, n.val) {
		return false
	}
	return t.ascend(n.right, fn)
}

// checkInvariants validates the red-black properties; exported to the test
// file through export_test.go.
func (t *Tree[V]) checkInvariants() error {
	if t.root.color != black {
		return errRootNotBlack
	}
	_, err := t.check(t.root)
	return err
}

var (
	errRootNotBlack = errorString("rbtree: root is not black")
	errRedRed       = errorString("rbtree: red node has red child")
	errBlackHeight  = errorString("rbtree: unequal black heights")
	errOrder        = errorString("rbtree: keys out of order")
)

type errorString string

func (e errorString) Error() string { return string(e) }

func (t *Tree[V]) check(n *node[V]) (blackHeight int, err error) {
	if n == t.nil_ {
		return 1, nil
	}
	if n.color == red && (n.left.color == red || n.right.color == red) {
		return 0, errRedRed
	}
	if n.left != t.nil_ && !n.left.key.Less(n.key) {
		return 0, errOrder
	}
	if n.right != t.nil_ && !n.key.Less(n.right.key) {
		return 0, errOrder
	}
	lh, err := t.check(n.left)
	if err != nil {
		return 0, err
	}
	rh, err := t.check(n.right)
	if err != nil {
		return 0, err
	}
	if lh != rh {
		return 0, errBlackHeight
	}
	if n.color == black {
		lh++
	}
	return lh, nil
}
