package rbtree

// CheckInvariants exposes the red-black structural validation to tests.
func (t *Tree[V]) CheckInvariants() error { return t.checkInvariants() }
