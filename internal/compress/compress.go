// Package compress provides the per-frame compression schemes the
// transport negotiates on wire-codec connections (-compress off|snappy|zstd).
//
// Both codecs are append-style ([]byte in, []byte out, caller-owned
// buffers) with pooled encoder/decoder state, so the transport's
// steady-state flush path stays allocation-free.
//
//   - Snappy is a from-scratch implementation of the snappy block format
//     (uvarint decoded length, then literal/copy elements): byte-compatible
//     with every other snappy implementation, tuned for speed over ratio.
//   - Zstd is the slot for a real zstd codec. The build environment
//     vendors no third-party compression library, so the slot is currently
//     backed by the standard library's DEFLATE (compress/flate at
//     BestSpeed) behind a distinct wire scheme byte: peers negotiate
//     "zstd" as a unit, and a real zstd implementation can replace the
//     backing without touching the negotiation. It compresses harder than
//     snappy and costs more CPU — exactly the trade the flag exists to
//     expose — but the frames are DEFLATE streams, not zstd frames.
//     OPERATIONS.md documents this loudly.
package compress

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Scheme identifies one negotiated compression scheme.
type Scheme uint8

const (
	// Off ships frames uncompressed (the default).
	Off Scheme = iota
	// Snappy is the snappy block format: cheap CPU, moderate ratio.
	Snappy
	// Zstd is the heavy-ratio slot (currently DEFLATE-backed, see the
	// package comment).
	Zstd
)

// Parse maps the -compress flag values to a Scheme.
func Parse(s string) (Scheme, error) {
	switch s {
	case "off", "":
		return Off, nil
	case "snappy":
		return Snappy, nil
	case "zstd":
		return Zstd, nil
	}
	return Off, fmt.Errorf("compress: unknown scheme %q (want off, snappy, or zstd)", s)
}

func (s Scheme) String() string {
	switch s {
	case Off:
		return "off"
	case Snappy:
		return "snappy"
	case Zstd:
		return "zstd"
	}
	return fmt.Sprintf("scheme(%d)", uint8(s))
}

// maxDecodedLen bounds the decoded length a compressed input may claim.
// Inputs come off real sockets; without the cap a hostile five-byte
// preamble could demand a multi-gigabyte allocation.
const maxDecodedLen = 1 << 30

// Compress appends the compressed form of src to dst and returns the
// extended slice. Off is not a valid argument: callers gate the
// uncompressed path themselves (the transport ships raw frames without a
// scheme preamble when compression is off or unprofitable).
func Compress(s Scheme, dst, src []byte) []byte {
	switch s {
	case Snappy:
		return snappyCompress(dst, src)
	case Zstd:
		return flateCompress(dst, src)
	}
	panic("compress: Compress called with scheme " + s.String())
}

// Decompress appends the decompressed form of src to dst. Corrupt or
// truncated input errors (never panics); the transport treats any error
// as a torn connection.
func Decompress(s Scheme, dst, src []byte) ([]byte, error) {
	switch s {
	case Snappy:
		return snappyDecompress(dst, src)
	case Zstd:
		return flateDecompress(dst, src)
	}
	return nil, fmt.Errorf("compress: Decompress called with scheme %s", s)
}

// grow extends b by n bytes (reusing capacity when it can) and returns
// the extended slice.
func grow(b []byte, n int) []byte {
	if cap(b)-len(b) >= n {
		return b[:len(b)+n]
	}
	nb := make([]byte, len(b)+n)
	copy(nb, b)
	return nb
}

// The DEFLATE-backed "zstd" slot. Framing: uvarint decoded length, then
// one DEFLATE stream. The explicit length lets the decoder allocate
// exactly once and reject dishonest streams.

// flateLevel trades ratio for CPU; BestSpeed still roughly halves the
// transport's batched metadata frames and keeps the flush path off the
// profile.
const flateLevel = flate.BestSpeed

type flateEncState struct {
	w  *flate.Writer
	aw appendWriter
}

// appendWriter adapts an append buffer to io.Writer for the flate writer.
type appendWriter struct{ b []byte }

func (a *appendWriter) Write(p []byte) (int, error) {
	a.b = append(a.b, p...)
	return len(p), nil
}

var flateEncPool = sync.Pool{New: func() any {
	st := &flateEncState{}
	w, err := flate.NewWriter(&st.aw, flateLevel)
	if err != nil {
		panic(err) // flateLevel is a valid constant level
	}
	st.w = w
	return st
}}

func flateCompress(dst, src []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(src)))
	st := flateEncPool.Get().(*flateEncState)
	st.aw.b = dst
	st.w.Reset(&st.aw)
	// Writes to an appendWriter cannot fail.
	_, _ = st.w.Write(src)
	_ = st.w.Close()
	dst = st.aw.b
	st.aw.b = nil
	flateEncPool.Put(st)
	return dst
}

type flateDecState struct {
	br bytes.Reader
	r  io.ReadCloser // *flate.decompressor, reused via flate.Resetter
}

var flateDecPool = sync.Pool{New: func() any {
	st := &flateDecState{}
	st.r = flate.NewReader(&st.br)
	return st
}}

func flateDecompress(dst, src []byte) ([]byte, error) {
	dLen, n, err := decodedLen(src)
	if err != nil {
		return nil, err
	}
	st := flateDecPool.Get().(*flateDecState)
	defer flateDecPool.Put(st)
	st.br.Reset(src[n:])
	if err := st.r.(flate.Resetter).Reset(&st.br, nil); err != nil {
		return nil, err
	}
	base := len(dst)
	dst = grow(dst, dLen)
	if _, err := io.ReadFull(st.r, dst[base:]); err != nil {
		return nil, fmt.Errorf("compress: flate: %w", err)
	}
	// The stream must end exactly at the declared length.
	var tail [1]byte
	if m, _ := st.r.Read(tail[:]); m != 0 {
		return nil, fmt.Errorf("compress: flate: stream longer than declared length %d", dLen)
	}
	return dst, nil
}

// decodedLen parses the uvarint decoded-length preamble both codecs
// share and applies the hostile-input cap.
func decodedLen(src []byte) (dLen, consumed int, err error) {
	v, n := binary.Uvarint(src)
	if n <= 0 {
		return 0, 0, fmt.Errorf("compress: bad decoded-length preamble")
	}
	if v > maxDecodedLen {
		return 0, 0, fmt.Errorf("compress: declared length %d exceeds cap %d", v, maxDecodedLen)
	}
	return int(v), n, nil
}
