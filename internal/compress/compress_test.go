package compress

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// corpus spans the shapes the transport ships: empty, tiny, highly
// repetitive (batched metadata), structured text, incompressible noise,
// and inputs crossing the 64 KiB snappy block boundary.
func corpus() map[string][]byte {
	rng := rand.New(rand.NewSource(7))
	noise := make([]byte, 8192)
	rng.Read(noise)
	big := make([]byte, 200_000)
	for i := range big {
		big[i] = byte(i / 512) // long runs crossing block boundaries
	}
	bigNoise := make([]byte, 150_000)
	rng.Read(bigNoise)
	var batch strings.Builder
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&batch, "partition=%d seq=%d ts=1700000%d key=user-%d;", i%8, i, i, i%100)
	}
	return map[string][]byte{
		"empty":      {},
		"one":        {42},
		"tiny":       []byte("hello"),
		"runs":       bytes.Repeat([]byte("abcd"), 4096),
		"batch":      []byte(batch.String()),
		"noise":      noise,
		"bigRuns":    big,
		"bigNoise":   bigNoise,
		"nearBlock":  bytes.Repeat([]byte{9}, snapBlockSize-1),
		"exactBlock": bytes.Repeat([]byte{9}, snapBlockSize),
		"overBlock":  bytes.Repeat([]byte("xyz"), snapBlockSize/2),
	}
}

func TestRoundTrip(t *testing.T) {
	for _, scheme := range []Scheme{Snappy, Zstd} {
		for name, src := range corpus() {
			t.Run(fmt.Sprintf("%s/%s", scheme, name), func(t *testing.T) {
				comp := Compress(scheme, nil, src)
				got, err := Decompress(scheme, nil, comp)
				if err != nil {
					t.Fatalf("decompress: %v", err)
				}
				if !bytes.Equal(got, src) {
					t.Fatalf("round trip mismatch: got %d bytes, want %d", len(got), len(src))
				}
			})
		}
	}
}

// TestRoundTripAppends verifies the append contract: both directions
// extend non-empty destination slices without clobbering the prefix.
func TestRoundTripAppends(t *testing.T) {
	src := bytes.Repeat([]byte("payload"), 1000)
	for _, scheme := range []Scheme{Snappy, Zstd} {
		prefix := []byte("prefix")
		comp := Compress(scheme, prefix, src)
		if !bytes.HasPrefix(comp, prefix) {
			t.Fatalf("%v: compress clobbered dst prefix", scheme)
		}
		dPrefix := []byte("other")
		got, err := Decompress(scheme, dPrefix, comp[len(prefix):])
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if !bytes.HasPrefix(got, dPrefix) || !bytes.Equal(got[len(dPrefix):], src) {
			t.Fatalf("%v: decompress append mismatch", scheme)
		}
	}
}

// TestCompressesBatchedMetadata pins the property the transport feature
// exists for: self-similar batched frames shrink substantially.
func TestCompressesBatchedMetadata(t *testing.T) {
	src := corpus()["batch"]
	for _, scheme := range []Scheme{Snappy, Zstd} {
		comp := Compress(scheme, nil, src)
		if ratio := float64(len(src)) / float64(len(comp)); ratio < 2 {
			t.Errorf("%v: batched metadata ratio %.2f, want >= 2 (in=%d out=%d)",
				scheme, ratio, len(src), len(comp))
		}
	}
}

func TestDecompressRejectsCorruptInput(t *testing.T) {
	valid := map[Scheme][]byte{
		Snappy: Compress(Snappy, nil, bytes.Repeat([]byte("abcdefgh"), 512)),
		Zstd:   Compress(Zstd, nil, bytes.Repeat([]byte("abcdefgh"), 512)),
	}
	for scheme, comp := range valid {
		cases := map[string][]byte{
			"empty":         {},
			"truncatedHalf": comp[:len(comp)/2],
			"truncatedTail": comp[:len(comp)-1],
			"hugePreamble":  {0xff, 0xff, 0xff, 0xff, 0xff, 0x0f},
			"badPreamble":   {0x80},
		}
		// Flip bytes through the body; every corruption must error or
		// round-trip to something — never panic or over-read.
		for i := 0; i < len(comp); i += 7 {
			mut := append([]byte(nil), comp...)
			mut[i] ^= 0x5b
			cases[fmt.Sprintf("flip%d", i)] = mut
		}
		for name, in := range cases {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%v/%s: panic: %v", scheme, name, r)
					}
				}()
				_, _ = Decompress(scheme, nil, in)
			}()
		}
		// The specific failures that must be detected, not absorbed:
		for _, name := range []string{"empty", "truncatedHalf", "hugePreamble"} {
			if _, err := Decompress(scheme, nil, cases[name]); err == nil {
				t.Errorf("%v/%s: want error, got nil", scheme, name)
			}
		}
	}
}

// TestDeclaredLengthMismatch covers dishonest preambles: a stream whose
// declared decoded length disagrees with its content must error.
func TestDeclaredLengthMismatch(t *testing.T) {
	for _, scheme := range []Scheme{Snappy, Zstd} {
		comp := Compress(scheme, nil, []byte("0123456789abcdef0123456789abcdef"))
		// Shrink the declared length (single-byte uvarint on this input).
		short := append([]byte(nil), comp...)
		short[0] = 8
		if _, err := Decompress(scheme, nil, short); err == nil {
			t.Errorf("%v: shrunk declared length accepted", scheme)
		}
		long := append([]byte(nil), comp...)
		long[0] = 127
		if _, err := Decompress(scheme, nil, long); err == nil {
			t.Errorf("%v: inflated declared length accepted", scheme)
		}
	}
}

// TestSteadyStateAllocs pins the pooled hot path: compressing and
// decompressing into reused buffers must not allocate once warm.
func TestSteadyStateAllocs(t *testing.T) {
	src := bytes.Repeat([]byte("steady-state payload over the wire;"), 400)
	for _, scheme := range []Scheme{Snappy, Zstd} {
		comp := Compress(scheme, nil, src)
		dec, err := Decompress(scheme, nil, comp)
		if err != nil {
			t.Fatal(err)
		}
		cBuf := make([]byte, 0, cap(comp)*2)
		dBuf := make([]byte, 0, cap(dec)*2)
		allocs := testing.AllocsPerRun(50, func() {
			cBuf = Compress(scheme, cBuf[:0], src)
			var err error
			dBuf, err = Decompress(scheme, dBuf[:0], cBuf)
			if err != nil {
				t.Fatal(err)
			}
		})
		// One alloc of slack for pool churn under the race detector.
		if allocs > 1 {
			t.Errorf("%v: %.1f allocs per warm round trip, want <= 1", scheme, allocs)
		}
	}
}

func FuzzSnappyDecompress(f *testing.F) {
	for _, src := range corpus() {
		if len(src) < 100_000 {
			f.Add(Compress(Snappy, nil, src))
		}
	}
	f.Add([]byte{0x04, 0x0c, 'a', 'b', 'c', 'd'})
	f.Add([]byte{0x08, 0x0c, 'a', 'b', 'c', 'd', 0x01, 0x04})
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := Decompress(Snappy, nil, data)
		if err == nil {
			// Anything accepted must re-compress and round-trip.
			back, err2 := Decompress(Snappy, nil, Compress(Snappy, nil, out))
			if err2 != nil || !bytes.Equal(back, out) {
				t.Fatalf("accepted input does not round trip (err=%v)", err2)
			}
		}
	})
}

func FuzzFlateDecompress(f *testing.F) {
	for _, src := range corpus() {
		if len(src) < 100_000 {
			f.Add(Compress(Zstd, nil, src))
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = Decompress(Zstd, nil, data)
	})
}

func FuzzSnappyRoundTrip(f *testing.F) {
	f.Add([]byte("abab"), 3)
	f.Add([]byte{}, 1)
	f.Fuzz(func(t *testing.T, data []byte, repeat int) {
		if repeat < 1 || repeat > 64 || len(data) > 1<<16 {
			return
		}
		src := bytes.Repeat(data, repeat)
		got, err := Decompress(Snappy, nil, Compress(Snappy, nil, src))
		if err != nil {
			t.Fatalf("own output rejected: %v", err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("round trip mismatch: %d in, %d out", len(src), len(got))
		}
	})
}
