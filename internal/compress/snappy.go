package compress

// A from-scratch snappy block format codec (the format every snappy
// implementation speaks: uvarint decoded length, then a sequence of
// literal and copy elements). The encoder is a greedy single-pass
// matcher over 64 KiB windows with a pooled 16 K-entry hash table — the
// standard snappy trade of speed over ratio. The decoder handles the
// full format (all four tags, all literal-length extensions) and
// bounds-checks every element: corrupt input errors, never panics, and
// never reads or writes out of range.

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Element tags (low two bits of the tag byte).
const (
	snapTagLiteral = 0x00
	snapTagCopy1   = 0x01
	snapTagCopy2   = 0x02
	snapTagCopy4   = 0x03
)

// snapBlockSize is the window the encoder matches within; offsets never
// exceed it, so every copy fits the 2-byte-offset element.
const snapBlockSize = 65536

const snapTableBits = 14

type snapTable [1 << snapTableBits]uint16

var snapTablePool = sync.Pool{New: func() any { return new(snapTable) }}

func snapHash(u uint32) uint32 { return (u * 0x1e35a7bd) >> (32 - snapTableBits) }

func snapLoad32(b []byte, i int) uint32 {
	return uint32(b[i]) | uint32(b[i+1])<<8 | uint32(b[i+2])<<16 | uint32(b[i+3])<<24
}

func snappyCompress(dst, src []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(src)))
	for len(src) > 0 {
		block := src
		if len(block) > snapBlockSize {
			block = block[:snapBlockSize]
		}
		src = src[len(block):]
		dst = snapEncodeBlock(dst, block)
	}
	return dst
}

func snapEncodeBlock(dst, src []byte) []byte {
	// Blocks too short to hold a profitable match ship as one literal.
	if len(src) < 16 {
		return snapEmitLiteral(dst, src)
	}
	table := snapTablePool.Get().(*snapTable)
	clear(table[:])
	defer snapTablePool.Put(table)

	lit := 0 // src[lit:s] is the pending literal run
	s := 0
	sLimit := len(src) - 4
	skip := 32 // grows while no matches are found: incompressible input scans fast
	for s <= sLimit {
		h := snapHash(snapLoad32(src, s))
		cand := int(table[h])
		table[h] = uint16(s)
		// cand < s distinguishes a real earlier position from the table's
		// zero value; position 0 is then validated (or refuted) by the
		// 4-byte comparison like any other candidate.
		if cand >= s || snapLoad32(src, cand) != snapLoad32(src, s) {
			s += skip >> 5
			skip++
			continue
		}
		if lit < s {
			dst = snapEmitLiteral(dst, src[lit:s])
		}
		length := 4
		for s+length < len(src) && src[cand+length] == src[s+length] {
			length++
		}
		dst = snapEmitCopy(dst, s-cand, length)
		s += length
		lit = s
		skip = 32
	}
	if lit < len(src) {
		dst = snapEmitLiteral(dst, src[lit:])
	}
	return dst
}

func snapEmitLiteral(dst, lit []byte) []byte {
	if len(lit) == 0 {
		return dst
	}
	n := len(lit) - 1
	switch {
	case n < 60:
		dst = append(dst, byte(n)<<2|snapTagLiteral)
	case n < 1<<8:
		dst = append(dst, 60<<2|snapTagLiteral, byte(n))
	case n < 1<<16:
		dst = append(dst, 61<<2|snapTagLiteral, byte(n), byte(n>>8))
	default: // block size caps literals well below the 3- and 4-byte forms
		dst = append(dst, 62<<2|snapTagLiteral, byte(n), byte(n>>8), byte(n>>16))
	}
	return append(dst, lit...)
}

// snapEmitCopy emits a copy of length >= 4 from offset (1..65535) back,
// chopped into spec-sized elements. Short close copies use the 2-byte
// copy-1 element; everything else the 3-byte copy-2.
func snapEmitCopy(dst []byte, offset, length int) []byte {
	for length > 64 {
		dst = append(dst, 63<<2|snapTagCopy2, byte(offset), byte(offset>>8))
		length -= 64
	}
	if length >= 4 && length < 12 && offset < 2048 {
		return append(dst,
			byte(offset>>8)<<5|byte(length-4)<<2|snapTagCopy1,
			byte(offset))
	}
	return append(dst, byte(length-1)<<2|snapTagCopy2, byte(offset), byte(offset>>8))
}

var errSnapCorrupt = fmt.Errorf("compress: corrupt snappy input")

func snappyDecompress(dst, src []byte) ([]byte, error) {
	dLen, n, err := decodedLen(src)
	if err != nil {
		return nil, err
	}
	src = src[n:]
	base := len(dst)
	dst = grow(dst, dLen)
	d := base
	end := base + dLen
	s := 0
	for s < len(src) {
		tag := src[s]
		var length, offset int
		switch tag & 3 {
		case snapTagLiteral:
			x := int(tag >> 2)
			s++
			switch {
			case x < 60:
				length = x + 1
			case x == 60:
				if s+1 > len(src) {
					return nil, errSnapCorrupt
				}
				length = int(src[s]) + 1
				s++
			case x == 61:
				if s+2 > len(src) {
					return nil, errSnapCorrupt
				}
				length = int(src[s]) | int(src[s+1])<<8
				length++
				s += 2
			case x == 62:
				if s+3 > len(src) {
					return nil, errSnapCorrupt
				}
				length = int(src[s]) | int(src[s+1])<<8 | int(src[s+2])<<16
				length++
				s += 3
			default: // x == 63
				if s+4 > len(src) {
					return nil, errSnapCorrupt
				}
				v := int64(src[s]) | int64(src[s+1])<<8 | int64(src[s+2])<<16 | int64(src[s+3])<<24
				if v+1 > maxDecodedLen {
					return nil, errSnapCorrupt
				}
				length = int(v) + 1
				s += 4
			}
			if length > len(src)-s || length > end-d {
				return nil, errSnapCorrupt
			}
			copy(dst[d:], src[s:s+length])
			d += length
			s += length
			continue
		case snapTagCopy1:
			if s+2 > len(src) {
				return nil, errSnapCorrupt
			}
			length = 4 + int(tag>>2)&0x7
			offset = int(tag&0xe0)<<3 | int(src[s+1])
			s += 2
		case snapTagCopy2:
			if s+3 > len(src) {
				return nil, errSnapCorrupt
			}
			length = 1 + int(tag>>2)
			offset = int(src[s+1]) | int(src[s+2])<<8
			s += 3
		default: // snapTagCopy4
			if s+5 > len(src) {
				return nil, errSnapCorrupt
			}
			length = 1 + int(tag>>2)
			off := int64(src[s+1]) | int64(src[s+2])<<8 | int64(src[s+3])<<16 | int64(src[s+4])<<24
			if off > int64(maxDecodedLen) {
				return nil, errSnapCorrupt
			}
			offset = int(off)
			s += 5
		}
		// Copies may only reference output produced by this call (d-base
		// bytes so far) and must fit the declared length.
		if offset <= 0 || offset > d-base || length > end-d {
			return nil, errSnapCorrupt
		}
		// Byte-at-a-time preserves the run-length semantics of
		// overlapping copies (offset < length).
		for i := 0; i < length; i++ {
			dst[d] = dst[d-offset]
			d++
		}
	}
	if d != end {
		return nil, fmt.Errorf("compress: snappy input decoded to %d bytes, declared %d", d-base, dLen)
	}
	return dst, nil
}
