package geostore

// Snapshot shipping: a bootstrapping partition-role process (or a whole
// rebuilding datacenter) pulls a consistent snapshot of each of its
// partitions from a live peer datacenter instead of replaying history,
// then rejoins the release stream, whose per-origin watermarks the
// snapshot installed — so the PR 3 rejoin handshake resumes with bounded
// retransmits rather than a dataset-linear resync.
//
// The exchange is pull-based and resumable at chunk granularity:
//
//	joiner                                donor (sibling partition)
//	  SnapshotRequest{ID, Chunk:0}    ->    first sight of this pull ID:
//	                                        pin a consistent capture at
//	                                        the current watermark vector,
//	                                        split into compressed,
//	                                        checksummed chunks
//	  <- SnapshotChunk{ID, 0, Chunks, ...}
//	  SnapshotRequest{ID, Chunk:1}    ->    serve from the pin
//	  <- SnapshotChunk{ID, 1, ...}
//	  ... lost replies retry the same chunk; delivered chunks are never
//	  refetched ...
//
// A donor that crashes loses its pins: the joiner's re-request times out
// (or draws an Err reply from a restarted donor) and it falls back to
// the next configured donor, re-pinning there. Chunks are independently
// decodable (whole records only), so the joiner streams them into the
// store as they arrive and never materializes the full snapshot.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"log"
	"sync"
	"time"

	"eunomia/internal/compress"
	"eunomia/internal/fabric"
	"eunomia/internal/partition"
	"eunomia/internal/types"
	"eunomia/internal/wire"
)

// SnapshotRequestMsg asks a donor datacenter's sibling partition for one
// chunk of a pinned snapshot. The joiner chooses ID (unique per pull
// attempt): the first request carrying a new ID pins a fresh capture,
// and every later request with that ID — retransmits included — resumes
// the same pin, so a lost reply never re-captures the partition.
type SnapshotRequestMsg struct {
	From      types.DCID // requesting datacenter, for reply routing
	Partition types.PartitionID
	ID        uint64
	Chunk     uint32
}

// SnapshotChunkMsg is one chunk of a pinned snapshot: a compressed run
// of whole wal-encoded records, checksummed end to end (CRC over the
// uncompressed bytes, so corruption anywhere between the donor's capture
// and the joiner's decompress is caught). Err reports a donor-side
// failure — an unknown pin after a donor restart, or a capture error —
// and tells the joiner to fail over.
type SnapshotChunkMsg struct {
	Partition types.PartitionID
	ID        uint64
	Chunk     uint32
	Chunks    uint32
	Scheme    uint8  // compress.Scheme the Data is packed with
	CRC       uint32 // CRC32C of the uncompressed chunk
	Data      []byte
	Err       string
}

// snapChunkSize is the uncompressed chunk payload target. Chunks carry
// whole records only, so a record larger than the target travels alone
// in an oversized chunk. A variable so tests can shrink it to force
// multi-chunk transfers at test scale.
var snapChunkSize = 256 << 10

// snapReleaseChunk is the sentinel Chunk value in a SnapshotRequestMsg
// that tells the donor the pull completed and the pin's chunk memory can
// be freed. Best-effort: a lost release falls through to the idle TTL.
const snapReleaseChunk = ^uint32(0)

// snapPinIdleTTL bounds how long a pin whose joiner went silent (died
// mid-pull, release message lost) keeps its chunks resident: pins idle
// past the TTL are swept when the donor next handles a snapshot request.
// A variable so tests can shrink it.
var snapPinIdleTTL = time.Minute

var snapCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// snapPin is a donor-side pinned snapshot: the consistent capture of one
// partition, chunked and compressed once, served from memory until the
// joiner's release (or the idle TTL, or a re-pin) frees it. The pin is
// published in the pin map *before* its capture runs, so a retransmitted
// chunk-0 request with the same ID waits on ready instead of racing a
// second capture of the same ID — all chunks of one pull ID are served
// from exactly one consistent capture. served counts serves per chunk —
// the resume tests read it to prove delivered chunks are never
// refetched.
type snapPin struct {
	id     uint64
	scheme compress.Scheme
	ready  chan struct{} // closed once the capture below is populated
	err    error         // capture failure, set before ready closes

	// The fields below are written only before ready closes (capture) or
	// under bootState.mu after it (release); readers hold bootState.mu
	// after waiting on ready.
	chunks    [][]byte
	crcs      []uint32
	served    []int
	released  bool
	lastServe time.Time
}

// captured reports whether the pin's capture has finished (successfully
// or not) without blocking.
func (p *snapPin) captured() bool {
	select {
	case <-p.ready:
		return true
	default:
		return false
	}
}

type snapPinKey struct {
	from types.DCID
	pid  types.PartitionID
}

// bootState is the node's snapshot-shipping state: donor-side pins and
// the joiner-side reply channel, plus the ship counters behind
// eunomia_snapshot_ship_{bytes,chunks,seconds}.
type bootState struct {
	mu   sync.Mutex
	pins map[snapPinKey]*snapPin

	waitMu sync.Mutex
	wait   map[types.PartitionID]chan SnapshotChunkMsg

	bytes  int64 // compressed chunk bytes received (joiner side)
	chunks int64
	nanos  int64
}

// BootstrapStats reports the node's snapshot-ship counters: compressed
// bytes and chunks pulled, and the wall-clock seconds bootstraps took.
func (n *Node) BootstrapStats() (bytes, chunks int64, seconds float64) {
	n.boot.mu.Lock()
	defer n.boot.mu.Unlock()
	return n.boot.bytes, n.boot.chunks, float64(n.boot.nanos) / 1e9
}

// serveSnapshotRequest handles one chunk request on the donor side. It
// runs off the fabric delivery goroutine: pinning captures the whole
// partition under its durability lock and must not stall payload
// ingestion on the endpoint.
func (n *Node) serveSnapshotRequest(local fabric.Addr, part *partition.Partition, req SnapshotRequestMsg) {
	if req.Chunk == snapReleaseChunk {
		n.releaseSnapshotPin(req)
		return
	}
	reply := fabric.PartitionAddr(req.From, req.Partition)
	pin, err := n.snapshotPin(part, req)
	if err != nil {
		n.fab.Send(local, reply, SnapshotChunkMsg{Partition: req.Partition, ID: req.ID, Err: err.Error()})
		return
	}
	// Read the chunk under the lock: a concurrent release (stale
	// retransmit after the joiner finished) frees pin.chunks in place.
	n.boot.mu.Lock()
	if pin.released || int(req.Chunk) >= len(pin.chunks) {
		nchunks := len(pin.chunks)
		n.boot.mu.Unlock()
		n.fab.Send(local, reply, SnapshotChunkMsg{Partition: req.Partition, ID: pin.id,
			Err: fmt.Sprintf("chunk %d out of range (%d chunks)", req.Chunk, nchunks)})
		return
	}
	pin.served[req.Chunk]++
	pin.lastServe = time.Now()
	msg := SnapshotChunkMsg{
		Partition: req.Partition,
		ID:        pin.id,
		Chunk:     req.Chunk,
		Chunks:    uint32(len(pin.chunks)),
		Scheme:    uint8(pin.scheme),
		CRC:       pin.crcs[req.Chunk],
		Data:      pin.chunks[req.Chunk],
	}
	n.boot.mu.Unlock()
	n.fab.Send(local, reply, msg)
}

// releaseSnapshotPin frees a completed pull's pin memory. The map entry
// (id, serve counters) stays until a re-pin or the idle sweep replaces
// it, so late retransmits draw a deterministic error instead of pinning
// a fresh capture.
func (n *Node) releaseSnapshotPin(req SnapshotRequestMsg) {
	key := snapPinKey{from: req.From, pid: req.Partition}
	n.boot.mu.Lock()
	defer n.boot.mu.Unlock()
	if cur := n.boot.pins[key]; cur != nil && cur.id == req.ID && cur.captured() {
		cur.released = true
		cur.chunks, cur.crcs = nil, nil
	}
}

// snapshotPin returns the pin a request addresses, capturing a fresh one
// the first time its ID is seen. The pin is published (capture still in
// progress) before the partition is captured, so retransmits of chunk 0
// that arrive while a slow capture runs wait for it rather than each
// queuing another whole-partition capture behind the durability lock —
// and every chunk of one pull ID is served from exactly one capture. A
// later request whose chunk 0 already shipped under a different ID
// starts over cleanly: the old pin (stale capture, or a predecessor
// process's) is simply replaced.
func (n *Node) snapshotPin(part *partition.Partition, req SnapshotRequestMsg) (*snapPin, error) {
	key := snapPinKey{from: req.From, pid: req.Partition}
	n.boot.mu.Lock()
	if n.boot.pins == nil {
		n.boot.pins = make(map[snapPinKey]*snapPin)
	}
	// Sweep other requesters' pins whose joiner went silent without a
	// release, so abandoned pulls don't hold chunk memory forever.
	for k, p := range n.boot.pins {
		if k != key && p.captured() && time.Since(p.lastServe) > snapPinIdleTTL {
			delete(n.boot.pins, k)
		}
	}
	if cur := n.boot.pins[key]; cur != nil && cur.id == req.ID {
		n.boot.mu.Unlock()
		<-cur.ready // an in-flight capture publishes before it runs; wait it out
		return cur, cur.err
	}
	if req.Chunk != 0 {
		// Resuming a pin this donor no longer holds (restart, or a newer
		// pull replaced it): the joiner must start a new pull, not splice
		// chunks from two different captures.
		n.boot.mu.Unlock()
		return nil, fmt.Errorf("unknown snapshot pin %d for partition %d", req.ID, req.Partition)
	}
	pin := &snapPin{id: req.ID, scheme: n.snapCompress, ready: make(chan struct{}), lastServe: time.Now()}
	n.boot.pins[key] = pin // a re-pin replaces the previous capture
	n.boot.mu.Unlock()

	var cur []byte
	flush := func() {
		if len(cur) == 0 {
			return
		}
		pin.crcs = append(pin.crcs, crc32.Checksum(cur, snapCastagnoli))
		pin.chunks = append(pin.chunks, compress.Compress(pin.scheme, nil, cur))
		cur = nil
	}
	err := part.CaptureSnapshot(func(rec []byte) error {
		cur = binary.AppendUvarint(cur, uint64(len(rec)))
		cur = append(cur, rec...)
		if len(cur) >= snapChunkSize {
			flush()
		}
		return nil
	})
	if err != nil {
		n.boot.mu.Lock()
		if n.boot.pins[key] == pin {
			delete(n.boot.pins, key)
		}
		n.boot.mu.Unlock()
		pin.err = fmt.Errorf("capturing snapshot: %w", err)
		close(pin.ready) // waiters see err, later same-ID requests re-capture
		return nil, pin.err
	}
	flush()
	if len(pin.chunks) == 0 {
		// An empty partition still ships its marks record, so this is
		// unreachable; guard anyway so Chunks is never zero on the wire.
		pin.crcs = append(pin.crcs, crc32.Checksum(nil, snapCastagnoli))
		pin.chunks = append(pin.chunks, compress.Compress(pin.scheme, nil, nil))
	}
	pin.served = make([]int, len(pin.chunks))
	close(pin.ready)
	return pin, nil
}

// deliverBootstrapChunk routes a donor's reply to the pull loop waiting
// on this partition. Replies arriving with no puller (stale retransmits
// after a completed pull) are dropped.
func (n *Node) deliverBootstrapChunk(pid types.PartitionID, msg SnapshotChunkMsg) {
	n.boot.waitMu.Lock()
	ch := n.boot.wait[pid]
	n.boot.waitMu.Unlock()
	if ch == nil {
		return
	}
	select {
	case ch <- msg:
	default: // puller is behind; it re-requests, drop rather than block delivery
	}
}

// bootstrapPartitions pulls a snapshot of every hosted partition from
// the configured donor datacenters, in partition order, failing over
// donors per partition. Called from OpenNode after the partitions (and
// their fabric endpoints) are live and recovered, before the node
// reports itself open.
func (n *Node) bootstrapPartitions(nc NodeConfig) error {
	// A fabric that holds inbound delivery until the process declares
	// itself ready (transport.Config.HoldDelivery) must open up now: the
	// donor's chunk replies arrive on connections the donor dials back
	// into this process, and the caller won't declare readiness until
	// OpenNode — which this pull is blocking — returns. Opening early is
	// safe here: every endpoint the pull needs (the partitions, built
	// just above) is registered, and the streams that target endpoints
	// still missing (receiver, frontend) all retransmit at the protocol
	// level until acknowledged there.
	if r, ok := n.fab.(interface{ Ready() }); ok {
		r.Ready()
	}
	start := time.Now()
	for pid := range n.parts {
		if err := n.bootstrapPartition(types.PartitionID(pid), nc); err != nil {
			return err
		}
	}
	n.boot.mu.Lock()
	n.boot.nanos += time.Since(start).Nanoseconds()
	n.boot.mu.Unlock()
	log.Printf("geostore dc%d: bootstrap complete: %d partitions from dc%v in %v",
		n.id, len(n.parts), nc.BootstrapFrom, time.Since(start).Round(time.Millisecond))
	return nil
}

func (n *Node) bootstrapPartition(pid types.PartitionID, nc NodeConfig) error {
	var lastErr error
	for _, donor := range nc.BootstrapFrom {
		if donor == n.id || int(donor) < 0 || int(donor) >= n.cfg.DCs {
			return fmt.Errorf("geostore: invalid bootstrap donor dc%d", donor)
		}
		err := n.pullSnapshot(pid, donor, nc)
		if err == nil {
			return nil
		}
		lastErr = err
		log.Printf("geostore dc%d: bootstrap of partition %d from dc%d failed (%v); trying next donor", n.id, pid, donor, err)
	}
	return fmt.Errorf("geostore: bootstrap of partition %d failed against every donor: %w", pid, lastErr)
}

// pullSnapshot pulls one partition's snapshot from one donor, streaming
// chunks into the store and committing watermarks + a forced WAL
// snapshot at the end. Lost requests or replies retry the same chunk
// (the transfer resumes at chunk granularity within one pin); chunks
// that fail checksum or decompression are rejected loudly and re-pulled;
// a donor error reply or retry exhaustion fails the donor.
func (n *Node) pullSnapshot(pid types.PartitionID, donor types.DCID, nc NodeConfig) error {
	local := fabric.PartitionAddr(n.id, pid)
	donorAddr := fabric.PartitionAddr(donor, pid)

	ch := make(chan SnapshotChunkMsg, 4)
	n.boot.waitMu.Lock()
	if n.boot.wait == nil {
		n.boot.wait = make(map[types.PartitionID]chan SnapshotChunkMsg)
	}
	n.boot.wait[pid] = ch
	n.boot.waitMu.Unlock()
	defer func() {
		n.boot.waitMu.Lock()
		delete(n.boot.wait, pid)
		n.boot.waitMu.Unlock()
	}()

	timeout := nc.BootstrapChunkTimeout
	if timeout <= 0 {
		timeout = time.Second
	}
	attempts := nc.BootstrapChunkAttempts
	if attempts <= 0 {
		attempts = 20
	}

	in := n.parts[pid].BeginInstall()
	// The pull id: unique per attempt (wall-clock nanoseconds cannot
	// collide with a predecessor process's pull), so donor-side pinning
	// is idempotent across retransmits and a fresh attempt — this one, or
	// a successor process's — captures anew instead of resuming a stale
	// pin.
	id := uint64(time.Now().UnixNano())
	var (
		total   uint32
		chunk   uint32
		bytes   int64
		chunks  int64
		corrupt int
	)
	for {
		req := SnapshotRequestMsg{From: n.id, Partition: pid, ID: id, Chunk: chunk}
		msg, err := n.snapshotRoundTrip(local, donorAddr, req, ch, timeout, attempts)
		if err != nil {
			return err
		}
		if msg.Err != "" {
			return fmt.Errorf("donor dc%d: %s", donor, msg.Err)
		}
		raw, decErr := compress.Decompress(compress.Scheme(msg.Scheme), nil, msg.Data)
		if decErr != nil {
			log.Printf("geostore dc%d: REJECTING snapshot chunk %d/%d of partition %d from dc%d: undecodable (%v); re-pulling the chunk",
				n.id, msg.Chunk, msg.Chunks, pid, donor, decErr)
			if corrupt++; corrupt >= 3 {
				return fmt.Errorf("donor dc%d served %d corrupt chunks, giving up on it", donor, corrupt)
			}
			continue // retry the same chunk
		}
		if sum := crc32.Checksum(raw, snapCastagnoli); sum != msg.CRC {
			log.Printf("geostore dc%d: REJECTING snapshot chunk %d/%d of partition %d from dc%d: checksum mismatch (got %08x, want %08x); re-pulling the chunk",
				n.id, msg.Chunk, msg.Chunks, pid, donor, sum, msg.CRC)
			if corrupt++; corrupt >= 3 {
				return fmt.Errorf("donor dc%d served %d corrupt chunks, giving up on it", donor, corrupt)
			}
			continue
		}
		if err := installChunk(in, raw); err != nil {
			return fmt.Errorf("installing snapshot chunk %d from dc%d: %w", msg.Chunk, donor, err)
		}
		bytes += int64(len(msg.Data))
		chunks++
		if chunk == 0 {
			total = msg.Chunks
		}
		chunk++
		if chunk >= total {
			break
		}
	}
	if err := in.Commit(); err != nil {
		return fmt.Errorf("committing shipped snapshot: %w", err)
	}
	// Best-effort release: the donor frees the pin's chunk memory now
	// rather than holding a compressed copy of the partition until the
	// idle TTL. No reply is expected; a lost release costs only the TTL.
	n.fab.Send(local, donorAddr, SnapshotRequestMsg{From: n.id, Partition: pid, ID: id, Chunk: snapReleaseChunk})
	n.boot.mu.Lock()
	n.boot.bytes += bytes
	n.boot.chunks += chunks
	n.boot.mu.Unlock()
	return nil
}

// snapshotRoundTrip sends one chunk request and waits for its reply,
// retrying on timeout. Stale replies (an earlier chunk's retransmit, or
// a previous pin's id) are discarded without consuming an attempt's
// clock.
func (n *Node) snapshotRoundTrip(local, donorAddr fabric.Addr, req SnapshotRequestMsg, ch chan SnapshotChunkMsg, timeout time.Duration, attempts int) (SnapshotChunkMsg, error) {
	for a := 0; a < attempts; a++ {
		n.fab.Send(local, donorAddr, req)
		deadline := time.NewTimer(timeout)
	wait:
		for {
			select {
			case msg := <-ch:
				if msg.ID != req.ID {
					// A previous pin's id — a late chunk, or an error from a
					// donor answering an abandoned pull. Either way it says
					// nothing about this pull; never let it fail this donor.
					continue
				}
				if msg.Err != "" {
					deadline.Stop()
					return msg, nil
				}
				if msg.Chunk != req.Chunk {
					continue // stale retransmit of an earlier request
				}
				deadline.Stop()
				return msg, nil
			case <-deadline.C:
				break wait
			}
		}
	}
	return SnapshotChunkMsg{}, fmt.Errorf("no reply for snapshot chunk %d after %d attempts (donor down or unreachable)", req.Chunk, attempts)
}

// installChunk feeds one decompressed chunk's records to the installer.
// Chunks carry whole records, so each decodes independently.
func installChunk(in *partition.SnapshotInstall, raw []byte) error {
	for len(raw) > 0 {
		rlen, k := binary.Uvarint(raw)
		if k <= 0 || rlen > uint64(len(raw)-k) {
			return fmt.Errorf("corrupt record framing in snapshot chunk")
		}
		if err := in.Record(raw[k : k+int(rlen)]); err != nil {
			return err
		}
		raw = raw[k+int(rlen):]
	}
	return nil
}

// WireTag implements wire.Marshaler.
func (m SnapshotRequestMsg) WireTag() wire.Tag { return wire.TagSnapshotRequest }

// AppendWire implements wire.Marshaler.
func (m SnapshotRequestMsg) AppendWire(b []byte) []byte {
	b = wire.AppendUvarint(b, uint64(m.From))
	b = wire.AppendUvarint(b, uint64(m.Partition))
	b = wire.AppendUvarint(b, m.ID)
	return wire.AppendUvarint(b, uint64(m.Chunk))
}

// WireTag implements wire.Marshaler.
func (m SnapshotChunkMsg) WireTag() wire.Tag { return wire.TagSnapshotChunk }

// AppendWire implements wire.Marshaler.
func (m SnapshotChunkMsg) AppendWire(b []byte) []byte {
	b = wire.AppendUvarint(b, uint64(m.Partition))
	b = wire.AppendUvarint(b, m.ID)
	b = wire.AppendUvarint(b, uint64(m.Chunk))
	b = wire.AppendUvarint(b, uint64(m.Chunks))
	b = append(b, m.Scheme)
	b = wire.AppendUint64(b, uint64(m.CRC))
	b = wire.AppendBytes(b, m.Data)
	return wire.AppendString(b, m.Err)
}

func init() {
	wire.Register(wire.TagSnapshotRequest, func(d *wire.Dec) any {
		return SnapshotRequestMsg{
			From:      types.DCID(d.Uvarint()),
			Partition: types.PartitionID(d.Uvarint()),
			ID:        d.Uvarint(),
			Chunk:     uint32(d.Uvarint()),
		}
	})
	wire.Register(wire.TagSnapshotChunk, func(d *wire.Dec) any {
		return SnapshotChunkMsg{
			Partition: types.PartitionID(d.Uvarint()),
			ID:        d.Uvarint(),
			Chunk:     uint32(d.Uvarint()),
			Chunks:    uint32(d.Uvarint()),
			Scheme:    d.Byte(),
			CRC:       uint32(d.Uint64()),
			Data:      d.Bytes(),
			Err:       d.String(),
		}
	})
}

var (
	_ wire.Marshaler = SnapshotRequestMsg{}
	_ wire.Marshaler = SnapshotChunkMsg{}
)
