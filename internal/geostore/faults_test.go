package geostore

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"eunomia/internal/simnet"
	"eunomia/internal/types"
)

// TestDuplicatedMetadataStreamTolerated duplicates every WAN message from
// dc0's Eunomia to dc1's receiver — modelling at-least-once delivery and
// overlapping leader streams — and verifies each update is applied exactly
// once and causal order is preserved.
func TestDuplicatedMetadataStreamTolerated(t *testing.T) {
	var mu sync.Mutex
	applied := map[types.UpdateID]int{}
	s := fastStore(func(c *Config) {
		c.OnVisible = func(dest types.DCID, u *types.Update, _ time.Time) {
			if dest != 1 {
				return
			}
			mu.Lock()
			applied[u.ID()]++
			mu.Unlock()
		}
	})
	defer s.Close()

	// Two extra copies of every metadata message into dc1's receiver.
	s.Network().SetDuplicate(simnet.EunomiaAddr(0, 0), simnet.ReceiverAddr(1), 2)

	c0 := s.NewClient(0)
	const n = 60
	for i := 0; i < n; i++ {
		if err := c0.Update(types.Key(fmt.Sprintf("dup%d", i)), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(applied) == n
	})
	mu.Lock()
	defer mu.Unlock()
	for id, count := range applied {
		if count != 1 {
			t.Fatalf("update %v applied %d times", id, count)
		}
	}
	if s.Receiver(1).DupDropped.Load() == 0 {
		t.Fatal("duplicates were injected but none were dropped")
	}
}

// TestDuplicatedPayloadStreamTolerated duplicates the partition-to-sibling
// payload channel; the payload buffer must deduplicate.
func TestDuplicatedPayloadStreamTolerated(t *testing.T) {
	s := fastStore()
	defer s.Close()
	for p := types.PartitionID(0); p < 4; p++ {
		s.Network().SetDuplicate(simnet.PartitionAddr(0, p), simnet.PartitionAddr(1, p), 1)
	}
	c0 := s.NewClient(0)
	c1 := s.NewClient(1)
	for i := 0; i < 40; i++ {
		c0.Update(types.Key(fmt.Sprintf("pay%d", i)), []byte{byte(i)})
	}
	waitFor(t, 5*time.Second, func() bool {
		v, _ := c1.Read("pay39")
		return v != nil
	})
	if err := s.WaitQuiescent(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// No leaked duplicate payload buffers.
	for p := types.PartitionID(0); p < 4; p++ {
		if got := s.Partition(1, p).PendingPayloads(); got != 0 {
			t.Fatalf("partition %d leaked %d payloads", p, got)
		}
	}
}

// TestWANPartitionHeals cuts dc0→dc1 metadata traffic entirely, then
// restores it; the FIFO resend-free stream must resume without loss
// because Eunomia ships from its ordered set and the receiver's queue is
// only gated, never skipped.
func TestWANPartitionHeals(t *testing.T) {
	s := fastStore()
	defer s.Close()
	net := s.Network()

	c0, c1 := s.NewClient(0), s.NewClient(1)
	c0.Update("before", []byte("1"))
	waitFor(t, 2*time.Second, func() bool { v, _ := c1.Read("before"); return v != nil })

	// Cut both metadata and payload ingress into dc1 from dc0.
	net.SetDrop(simnet.EunomiaAddr(0, 0), simnet.ReceiverAddr(1), true)
	for p := types.PartitionID(0); p < 4; p++ {
		net.SetDrop(simnet.PartitionAddr(0, p), simnet.PartitionAddr(1, p), true)
	}
	c0.Update("during", []byte("2"))
	time.Sleep(100 * time.Millisecond)
	if v, _ := c1.Read("during"); v != nil {
		t.Fatal("update crossed a partitioned link")
	}

	// Heal. The drop simulates loss, so earlier messages are gone; but
	// dc2 still has everything, and later dc0 updates carry later
	// timestamps on the same FIFO stream. The receiver's gap means
	// 'during' can only reach dc1 via... nothing — this documents that
	// WAN loss needs the transport to be reliable (TCP in the paper).
	// What must NOT happen is causal disorder or a wedged receiver for
	// *other* origins.
	net.SetDrop(simnet.EunomiaAddr(0, 0), simnet.ReceiverAddr(1), false)
	for p := types.PartitionID(0); p < 4; p++ {
		net.SetDrop(simnet.PartitionAddr(0, p), simnet.PartitionAddr(1, p), false)
	}

	// dc2-origin traffic keeps flowing into dc1 regardless.
	c2 := s.NewClient(2)
	c2.Update("fromdc2", []byte("3"))
	waitFor(t, 3*time.Second, func() bool { v, _ := c1.Read("fromdc2"); return v != nil })
}

// TestEunomiaCrashUnderLoadConverges crashes dc0's Eunomia leader in the
// middle of a concurrent write storm (3 replicas) and checks full
// convergence afterwards.
func TestEunomiaCrashUnderLoadConverges(t *testing.T) {
	s := fastStore(func(c *Config) { c.Replicas = 3 })
	defer s.Close()

	var wg sync.WaitGroup
	for dc := 0; dc < 3; dc++ {
		wg.Add(1)
		go func(dc int) {
			defer wg.Done()
			c := s.NewClient(types.DCID(dc))
			for i := 0; i < 150; i++ {
				c.Update(types.Key(fmt.Sprintf("storm%d", i%30)), []byte(fmt.Sprintf("dc%d-%d", dc, i)))
				if i == 50 && dc == 0 {
					s.CrashEunomiaReplica(0, 0)
				}
				time.Sleep(500 * time.Microsecond)
			}
		}(dc)
	}
	wg.Wait()
	if err := s.WaitQuiescent(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if err := s.Convergent(); err != nil {
		t.Fatal(err)
	}
}
