package geostore

// Deployment-level propagation-tree tests: a datacenter whose partitions
// stream metadata through fabric aggregators (Config.Aggregators) must
// behave exactly like the flat topology — causal order, convergence,
// quiescence — and survive the crash of a single aggregator.

import (
	"fmt"
	"testing"
	"time"

	"eunomia/internal/fabric"
	"eunomia/internal/simnet"
	"eunomia/internal/types"
)

// TestAggregatorTreeCausalOrder runs the causal litmus through a
// two-aggregator tree in every datacenter: Alice posts at dc0, Bob reads
// at dc1 and replies; no datacenter may expose the reply without the
// post. Then the deployment must drain and converge.
func TestAggregatorTreeCausalOrder(t *testing.T) {
	s := NewStore(Config{DCs: 3, Partitions: 8, Aggregators: 2, Delay: fastDelay()})
	defer s.Close()

	alice := s.NewClient(0)
	if err := alice.Update("post", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	bob := s.NewClient(1)
	waitFor(t, 5*time.Second, func() bool {
		v, _ := bob.Read("post")
		return string(v) == "hello"
	})
	if err := bob.Update("reply", []byte("hi alice")); err != nil {
		t.Fatal(err)
	}
	carol := s.NewClient(2)
	waitFor(t, 5*time.Second, func() bool {
		v, _ := carol.Read("reply")
		return string(v) == "hi alice"
	})
	if v, _ := carol.Read("post"); string(v) != "hello" {
		t.Fatalf("causality violated through the tree: reply visible, post = %q", v)
	}

	// The tree must not strand anything: metadata batches drain through
	// the aggregators and every datacenter converges.
	if err := s.WaitQuiescent(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := s.Convergent(); err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 3; m++ {
		aggs := s.Node(types.DCID(m)).Aggregators()
		if len(aggs) != 2 {
			t.Fatalf("dc%d hosts %d aggregators, want 2", m, len(aggs))
		}
		var out int64
		for _, a := range aggs {
			out += a.BatchesOut.Load()
		}
		if out == 0 {
			t.Fatalf("dc%d's tree forwarded nothing — the flat path must not have been used", m)
		}
	}
}

// TestAggregatorNodeCrashFailover splits dc0 into a partitions+services
// process and two single-aggregator processes (the multi-process tree),
// crashes one aggregator node mid-stream, and verifies replication to dc1
// continues through the surviving path and both datacenters converge.
func TestAggregatorNodeCrashFailover(t *testing.T) {
	net := simnet.New(func(from, to fabric.Addr) time.Duration { return 0 })
	cfg := Config{DCs: 2, Partitions: 4, Aggregators: 2, Delay: func(from, to fabric.Addr) time.Duration { return 0 }}

	// dc0: everything except the aggregators in one node; each aggregator
	// in its own node, as separate processes would host them.
	main0 := NewNode(NodeConfig{Config: cfg, DC: 0, Roles: RoleAll &^ RoleAggregator, Fabric: net, Pipelined: true})
	aggA := NewNode(NodeConfig{Config: cfg, DC: 0, Roles: RoleAggregator, Fabric: net, Pipelined: true, AggIndexes: []int{0}})
	aggB := NewNode(NodeConfig{Config: cfg, DC: 0, Roles: RoleAggregator, Fabric: net, Pipelined: true, AggIndexes: []int{1}})
	dc1 := NewNode(NodeConfig{Config: cfg, DC: 1, Roles: RoleAll, Fabric: net, Pipelined: true})
	nodes := []*Node{main0, aggB, dc1} // aggA is crashed mid-test
	defer func() {
		for _, n := range nodes {
			n.CloseIngress()
		}
		for _, n := range nodes {
			n.CloseServices()
		}
		net.Close()
	}()

	c := main0.NewClient()
	reader := dc1.NewClient()
	write := func(i int) {
		if err := c.Update(types.Key(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		write(i)
	}
	waitFor(t, 10*time.Second, func() bool {
		v, _ := reader.Read("k39")
		return string(v) == "v39"
	})

	// Crash one aggregator process mid-deployment and keep writing: the
	// surviving path must carry the rest of the stream.
	aggA.CloseIngress()
	aggA.CloseServices()
	for i := 40; i < 120; i++ {
		write(i)
	}
	waitFor(t, 20*time.Second, func() bool {
		v, _ := reader.Read("k119")
		return string(v) == "v119"
	})
	for i := 0; i < 120; i++ {
		v, _ := reader.Read(types.Key(fmt.Sprintf("k%d", i)))
		if string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%d lost through the aggregator crash: %q", i, v)
		}
	}
}
