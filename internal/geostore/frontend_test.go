package geostore

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"eunomia/internal/hlc"
	"eunomia/internal/simnet"
	"eunomia/internal/types"
	"eunomia/internal/vclock"
)

// frontStore builds a small two-DC deployment with a fast simulated WAN.
func frontStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore(Config{
		DCs:        2,
		Partitions: 2,
		Delay:      simnet.LatencyMatrix(simnet.PaperRTTs(0.01), 0),
	})
	t.Cleanup(s.Close)
	return s
}

func TestFrontendReadYourWrite(t *testing.T) {
	s := frontStore(t)
	fe := s.Frontend(0)

	put, err := fe.Put("", "alpha", types.Value("one"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := fe.Get(put.Token, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Found || string(got.Value) != "one" {
		t.Fatalf("read back found=%v value=%q", got.Found, got.Value)
	}

	miss, err := fe.Get(got.Token, "never-written")
	if err != nil {
		t.Fatal(err)
	}
	if miss.Found {
		t.Fatal("read of a never-written key reported Found")
	}
}

func TestFrontendRejectsBadToken(t *testing.T) {
	s := frontStore(t)
	fe := s.Frontend(0)
	if _, err := fe.Get("cs1:v:zz,1", "k"); !errors.Is(err, ErrBadToken) {
		t.Fatalf("bad token error = %v", err)
	}
	if _, err := fe.Put("cs1:s:1", "k", types.Value("v")); !errors.Is(err, ErrBadToken) {
		t.Fatalf("scalar token at vector frontend = %v", err)
	}
}

// TestFrontendSessionMigration is the §4 migration guarantee end to end:
// a client writes at dc0's front door, carries its token to dc1's, and
// must read its own write there — the dc1 frontend blocks the read until
// the write (and everything before it) is applied at dc1.
func TestFrontendSessionMigration(t *testing.T) {
	s := frontStore(t)
	fe0, fe1 := s.Frontend(0), s.Frontend(1)

	token := ""
	for i := 0; i < 20; i++ {
		key := types.Key(fmt.Sprintf("migrate%d", i))
		want := fmt.Sprintf("value%d", i)
		put, err := fe0.Put(token, key, types.Value(want))
		if err != nil {
			t.Fatal(err)
		}
		got, err := fe1.Get(put.Token, key)
		if err != nil {
			t.Fatalf("migrated read %d: %v", i, err)
		}
		if !got.Found || string(got.Value) != want {
			t.Fatalf("migrated read %d: found=%v value=%q, want %q", i, got.Found, got.Value, want)
		}
		// Keep migrating back and forth on one session.
		back, err := fe0.Get(got.Token, key)
		if err != nil {
			t.Fatal(err)
		}
		token = back.Token
	}
	if fe1.Waits.Load() == 0 {
		t.Fatal("dc1 frontend never took a visibility wait; migration reads were not gated")
	}
}

// TestFrontendVisibilityTimeout hands a frontend a token claiming a remote
// fact from the future; the read must fail with ErrVisibilityTimeout
// rather than return stale data.
func TestFrontendVisibilityTimeout(t *testing.T) {
	s := frontStore(t)
	// A standalone front door on the same fabric, as a split-role process
	// would run it, with a tight wait budget.
	fe := NewFrontend(FrontendConfig{
		Fabric:      s.Network(),
		DC:          1,
		DCs:         2,
		Partitions:  2,
		Index:       1,
		WaitTimeout: 50 * time.Millisecond,
	})
	defer fe.Close()

	future := vclock.New(2)
	future.Set(0, hlc.FromTime(time.Now().Add(time.Hour)))
	sessTok := "cs1:v:" + fmt.Sprintf("%x,%x", uint64(future.Get(0)), uint64(future.Get(1)))

	if _, err := fe.Get(sessTok, "k"); !errors.Is(err, ErrVisibilityTimeout) {
		t.Fatalf("future-dep read error = %v, want ErrVisibilityTimeout", err)
	}
	if fe.WaitTimeouts.Load() == 0 {
		t.Fatal("wait timeout not counted")
	}
}

// TestFrontendCausalChainAcrossClients checks the transitive guarantee:
// client B reads A's write at dc1 (adopting its dependencies), writes a
// reaction at dc1, and client C must observe the reaction only at-or-after
// A's original write when reading through a dc0 front door with B's token.
func TestFrontendCausalChainAcrossClients(t *testing.T) {
	s := frontStore(t)
	fe0, fe1 := s.Frontend(0), s.Frontend(1)

	putA, err := fe0.Put("", "post", types.Value("original"))
	if err != nil {
		t.Fatal(err)
	}
	// B at dc1: read the post (gated on visibility), then reply.
	readB, err := fe1.Get(putA.Token, "post")
	if err != nil {
		t.Fatal(err)
	}
	if string(readB.Value) != "original" {
		t.Fatalf("B read %q", readB.Value)
	}
	putB, err := fe1.Put(readB.Token, "reply", types.Value("reaction"))
	if err != nil {
		t.Fatal(err)
	}
	// C carries B's token to dc0: the reply must be there, and so must
	// the post it depends on.
	readC, err := fe0.Get(putB.Token, "reply")
	if err != nil {
		t.Fatal(err)
	}
	if !readC.Found || string(readC.Value) != "reaction" {
		t.Fatalf("C read reply found=%v value=%q", readC.Found, readC.Value)
	}
	post, err := fe0.Get(readC.Token, "post")
	if err != nil {
		t.Fatal(err)
	}
	if !post.Found || string(post.Value) != "original" {
		t.Fatalf("C read post found=%v value=%q", post.Found, post.Value)
	}
}

// TestFrontendScalarAblation runs the migration loop under scalar tokens.
func TestFrontendScalarAblation(t *testing.T) {
	s := NewStore(Config{
		DCs:        2,
		Partitions: 2,
		ScalarMeta: true,
		Delay:      simnet.LatencyMatrix(simnet.PaperRTTs(0.01), 0),
	})
	defer s.Close()
	fe0, fe1 := s.Frontend(0), s.Frontend(1)

	put, err := fe0.Put("", "scalar-key", types.Value("sv"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := fe1.Get(put.Token, "scalar-key")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Found || string(got.Value) != "sv" {
		t.Fatalf("scalar migrated read found=%v value=%q", got.Found, got.Value)
	}
}
