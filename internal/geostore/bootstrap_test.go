package geostore

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"eunomia/internal/fabric"
	"eunomia/internal/faults"
	"eunomia/internal/simnet"
	"eunomia/internal/types"
)

// smallSnapChunks shrinks the chunk target so test-scale datasets ship in
// many chunks, restoring the original on cleanup.
func smallSnapChunks(t *testing.T, size int) {
	t.Helper()
	old := snapChunkSize
	snapChunkSize = size
	t.Cleanup(func() { snapChunkSize = old })
}

// newDonorNode builds one full datacenter node seeded with n local keys
// (bootkey0..n-1). With DCs > the deployed node count the payload batches
// it ships to absent siblings evaporate at unregistered addresses, which
// is exactly a joiner's view of a cluster it has not joined yet.
func newDonorNode(t *testing.T, net *simnet.Network, cfg Config, dc types.DCID, keys int) *Node {
	t.Helper()
	donor := NewNode(NodeConfig{Config: cfg, DC: dc, Roles: RoleAll, Fabric: net})
	t.Cleanup(func() { donor.CloseIngress(); donor.CloseServices() })
	w := donor.NewClient()
	for i := 0; i < keys; i++ {
		if err := w.Update(bootKey(i), []byte(fmt.Sprintf("payload%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	return donor
}

func bootKey(i int) types.Key { return types.Key(fmt.Sprintf("bootkey%d", i)) }

// checkBootKeys asserts every seeded key is readable at the node — with
// no waiting: shipped snapshots install synchronously inside OpenNode, so
// a successful open means the data is already there.
func checkBootKeys(t *testing.T, n *Node, keys int) {
	t.Helper()
	r := n.NewClient()
	for i := 0; i < keys; i++ {
		v, err := r.Read(bootKey(i))
		if err != nil || string(v) != fmt.Sprintf("payload%d", i) {
			t.Fatalf("bootstrapped node missing %s: %q, %v", bootKey(i), v, err)
		}
	}
}

// TestBootstrapSnapshotShip is the happy path end to end through
// OpenNode: a joining partition-role process pulls pinned, chunked,
// compressed snapshots from a live peer and serves the full dataset the
// moment it opens, without replaying any update history.
func TestBootstrapSnapshotShip(t *testing.T) {
	smallSnapChunks(t, 2048)
	cfg := Config{DCs: 2, Partitions: 2, Delay: func(from, to fabric.Addr) time.Duration { return 0 }}
	net := simnet.New(nil)
	t.Cleanup(net.Close)
	const keys = 300
	newDonorNode(t, net, cfg, 0, keys)

	joiner, err := OpenNode(NodeConfig{
		Config: cfg, DC: 1, Roles: RolePartitions | RoleEunomia, Fabric: net,
		BootstrapFrom: []types.DCID{0},
	})
	if err != nil {
		t.Fatalf("bootstrap open: %v", err)
	}
	t.Cleanup(func() { joiner.CloseIngress(); joiner.CloseServices() })

	checkBootKeys(t, joiner, keys)
	bytes, chunks, seconds := joiner.BootstrapStats()
	if bytes == 0 || chunks < 4 || seconds <= 0 {
		t.Fatalf("ship counters: bytes=%d chunks=%d seconds=%v (want a multi-chunk compressed transfer)", bytes, chunks, seconds)
	}
}

// interceptChunks re-registers the joiner's partition endpoint with fn in
// front of the node's chunk delivery: fn sees every SnapshotChunkMsg
// (with its donor address) and decides whether/what to deliver. It
// returns the per-chunk delivery counts for resume assertions.
func interceptChunks(joiner *Node, net *simnet.Network, pid types.PartitionID,
	fn func(from fabric.Addr, msg SnapshotChunkMsg, seen int) (SnapshotChunkMsg, bool)) func(uint32) int {
	var mu sync.Mutex
	seen := map[uint32]int{}
	net.Register(fabric.PartitionAddr(joiner.DC(), pid), func(msg fabric.Message) {
		v, ok := msg.Payload.(SnapshotChunkMsg)
		if !ok {
			return
		}
		mu.Lock()
		seen[v.Chunk]++
		k := seen[v.Chunk]
		mu.Unlock()
		if out, deliver := fn(msg.From, v, k); deliver {
			joiner.deliverBootstrapChunk(pid, out)
		}
	})
	return func(c uint32) int {
		mu.Lock()
		defer mu.Unlock()
		return seen[c]
	}
}

// TestBootstrapTornTransferResumesAtChunkGranularity loses the first copy
// of every chunk in flight and checks the transfer resumes exactly where
// it tore: each chunk crosses the wire twice — a delivered chunk is never
// refetched after a later one arrives.
func TestBootstrapTornTransferResumesAtChunkGranularity(t *testing.T) {
	smallSnapChunks(t, 1024)
	cfg := Config{DCs: 2, Partitions: 1, Delay: func(from, to fabric.Addr) time.Duration { return 0 }}
	net := simnet.New(nil)
	t.Cleanup(net.Close)
	const keys = 200
	donor := newDonorNode(t, net, cfg, 0, keys)

	// Short AckTimeout: the hijacked partition endpoint drops replica
	// acks, so the final metadata flush at close would otherwise stall a
	// full default timeout.
	joiner, err := OpenNode(NodeConfig{Config: cfg, DC: 1, Roles: RolePartitions | RoleEunomia, Fabric: net, AckTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { joiner.CloseIngress(); joiner.CloseServices() })
	interceptChunks(joiner, net, 0, func(from fabric.Addr, msg SnapshotChunkMsg, seen int) (SnapshotChunkMsg, bool) {
		return msg, seen > 1 // the first copy of every chunk is torn away
	})

	if err := joiner.pullSnapshot(0, 0, NodeConfig{
		BootstrapChunkTimeout:  30 * time.Millisecond,
		BootstrapChunkAttempts: 20,
	}); err != nil {
		t.Fatalf("pull with torn transfers: %v", err)
	}
	checkBootKeys(t, joiner, keys)

	// The donor's pin records how often each chunk was served: exactly
	// twice (the torn copy and its retry) proves chunk-granular resume —
	// a transfer restarting from zero would serve early chunks more.
	donor.boot.mu.Lock()
	pin := donor.boot.pins[snapPinKey{from: 1, pid: 0}]
	donor.boot.mu.Unlock()
	if pin == nil || len(pin.served) < 4 {
		t.Fatalf("want a multi-chunk pin on the donor, got %+v", pin)
	}
	for c, n := range pin.served {
		if n != 2 {
			t.Fatalf("chunk %d served %d times, want exactly 2 (torn copy + resume)", c, n)
		}
	}
}

// TestBootstrapChecksumMismatchRejected corrupts one chunk in flight: the
// joiner must reject it loudly (never installing its records) and re-pull
// until a clean copy arrives.
func TestBootstrapChecksumMismatchRejected(t *testing.T) {
	smallSnapChunks(t, 1024)
	cfg := Config{DCs: 2, Partitions: 1, Delay: func(from, to fabric.Addr) time.Duration { return 0 }}
	net := simnet.New(nil)
	t.Cleanup(net.Close)
	const keys = 200
	newDonorNode(t, net, cfg, 0, keys)

	// Short AckTimeout: the hijacked partition endpoint drops replica
	// acks, so the final metadata flush at close would otherwise stall a
	// full default timeout.
	joiner, err := OpenNode(NodeConfig{Config: cfg, DC: 1, Roles: RolePartitions | RoleEunomia, Fabric: net, AckTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { joiner.CloseIngress(); joiner.CloseServices() })
	seen := interceptChunks(joiner, net, 0, func(from fabric.Addr, msg SnapshotChunkMsg, k int) (SnapshotChunkMsg, bool) {
		if msg.Chunk == 1 && k == 1 {
			// Bit rot in flight: data no longer matches the checksum.
			msg.Data = append([]byte(nil), msg.Data...)
			msg.Data[len(msg.Data)/2] ^= 0x40
		}
		return msg, true
	})

	if err := joiner.pullSnapshot(0, 0, NodeConfig{
		BootstrapChunkTimeout:  30 * time.Millisecond,
		BootstrapChunkAttempts: 20,
	}); err != nil {
		t.Fatalf("pull with a corrupt chunk: %v", err)
	}
	if n := seen(1); n < 2 {
		t.Fatalf("corrupt chunk delivered %d times, want a rejection and a re-pull", n)
	}
	checkBootKeys(t, joiner, keys)
}

// TestBootstrapPersistentlyCorruptDonorFails pins the corrupt-retry
// bound: a donor whose chunks never verify is abandoned with an error
// instead of being re-pulled forever.
func TestBootstrapPersistentlyCorruptDonorFails(t *testing.T) {
	smallSnapChunks(t, 1024)
	cfg := Config{DCs: 2, Partitions: 1, Delay: func(from, to fabric.Addr) time.Duration { return 0 }}
	net := simnet.New(nil)
	t.Cleanup(net.Close)
	newDonorNode(t, net, cfg, 0, 50)

	// Short AckTimeout: the hijacked partition endpoint drops replica
	// acks, so the final metadata flush at close would otherwise stall a
	// full default timeout.
	joiner, err := OpenNode(NodeConfig{Config: cfg, DC: 1, Roles: RolePartitions | RoleEunomia, Fabric: net, AckTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { joiner.CloseIngress(); joiner.CloseServices() })
	interceptChunks(joiner, net, 0, func(from fabric.Addr, msg SnapshotChunkMsg, k int) (SnapshotChunkMsg, bool) {
		msg.CRC ^= 0xdeadbeef // every copy of every chunk fails verification
		return msg, true
	})

	err = joiner.pullSnapshot(0, 0, NodeConfig{
		BootstrapChunkTimeout:  30 * time.Millisecond,
		BootstrapChunkAttempts: 20,
	})
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("want a corrupt-donor failure, got %v", err)
	}
}

// TestBootstrapDonorCrashFailsOverToNextPeer kills the preferred donor
// mid-ship (after one chunk) and checks the joiner exhausts its retries,
// moves to the next configured donor, and re-pins there from chunk 0.
func TestBootstrapDonorCrashFailsOverToNextPeer(t *testing.T) {
	smallSnapChunks(t, 1024)
	cfg := Config{DCs: 3, Partitions: 1, Delay: func(from, to fabric.Addr) time.Duration { return 0 }}
	net := simnet.New(nil)
	t.Cleanup(net.Close)
	const keys = 200
	// Two donors with identical data: dc0 seeds, dc1 receives the
	// replicated copy over the normal release path.
	donor0 := newDonorNode(t, net, cfg, 0, keys)
	donor1 := NewNode(NodeConfig{Config: cfg, DC: 1, Roles: RoleAll, Fabric: net})
	t.Cleanup(func() { donor1.CloseIngress(); donor1.CloseServices() })
	_ = donor0
	r1 := donor1.NewClient()
	waitUntil(t, 20*time.Second, "replication to the second donor", func() bool {
		v, _ := r1.Read(bootKey(keys - 1))
		return string(v) == fmt.Sprintf("payload%d", keys-1)
	})

	joiner, err := OpenNode(NodeConfig{Config: cfg, DC: 2, Roles: RolePartitions | RoleEunomia, Fabric: net, AckTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { joiner.CloseIngress(); joiner.CloseServices() })
	var crashOnce sync.Once
	interceptChunks(joiner, net, 0, func(from fabric.Addr, msg SnapshotChunkMsg, k int) (SnapshotChunkMsg, bool) {
		if from.DC == 1 {
			if msg.Chunk == 0 {
				return msg, true // the crash lands one chunk into the ship
			}
			// The donor process dies: its pins are gone and its endpoint
			// goes silent, so later requests time out at the joiner.
			crashOnce.Do(func() {
				donor1.CloseIngress()
				donor1.CloseServices()
				net.Unregister(fabric.PartitionAddr(1, 0))
			})
			return msg, false
		}
		return msg, true
	})

	nc := NodeConfig{
		Config:                 cfg,
		BootstrapFrom:          []types.DCID{1, 0}, // prefer the donor that will crash
		BootstrapChunkTimeout:  30 * time.Millisecond,
		BootstrapChunkAttempts: 3,
	}
	if err := joiner.bootstrapPartition(0, nc); err != nil {
		t.Fatalf("bootstrap with a crashing donor: %v", err)
	}
	checkBootKeys(t, joiner, keys)
}

// TestBootstrapConcurrentChunk0RequestsShareOneCapture hammers a donor
// with concurrent chunk-0 requests carrying one pull ID — the retransmit
// storm a slow capture draws — and checks they all resolve to the same
// pin: one capture, not one per retransmit, so the joiner can never
// splice chunks from two different consistent captures under one ID.
func TestBootstrapConcurrentChunk0RequestsShareOneCapture(t *testing.T) {
	cfg := Config{DCs: 2, Partitions: 1, Delay: func(from, to fabric.Addr) time.Duration { return 0 }}
	net := simnet.New(nil)
	t.Cleanup(net.Close)
	donor := newDonorNode(t, net, cfg, 0, 100)

	req := SnapshotRequestMsg{From: 1, Partition: 0, ID: 42, Chunk: 0}
	const racers = 8
	pins := make([]*snapPin, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pin, err := donor.snapshotPin(donor.parts[0], req)
			if err != nil {
				t.Errorf("racer %d: %v", i, err)
				return
			}
			pins[i] = pin
		}(i)
	}
	wg.Wait()
	if pins[0] == nil {
		t.Fatal("no pin captured")
	}
	for i := 1; i < racers; i++ {
		if pins[i] != pins[0] {
			t.Fatalf("racer %d pinned a second capture for the same pull ID", i)
		}
	}
}

// TestBootstrapReleaseFreesDonorPin checks the joiner's post-pull release
// reaches the donor and frees the pin's chunk memory — a donor must not
// hold a compressed copy of the partition for every bootstrap it ever
// served.
func TestBootstrapReleaseFreesDonorPin(t *testing.T) {
	smallSnapChunks(t, 2048)
	cfg := Config{DCs: 2, Partitions: 1, Delay: func(from, to fabric.Addr) time.Duration { return 0 }}
	net := simnet.New(nil)
	t.Cleanup(net.Close)
	const keys = 300
	donor := newDonorNode(t, net, cfg, 0, keys)

	joiner, err := OpenNode(NodeConfig{
		Config: cfg, DC: 1, Roles: RolePartitions | RoleEunomia, Fabric: net,
		BootstrapFrom: []types.DCID{0},
	})
	if err != nil {
		t.Fatalf("bootstrap open: %v", err)
	}
	t.Cleanup(func() { joiner.CloseIngress(); joiner.CloseServices() })
	checkBootKeys(t, joiner, keys)

	// The release travels after the pull completes; the pin entry (serve
	// counters) survives, but its chunk memory must go.
	waitUntil(t, 5*time.Second, "donor pin release", func() bool {
		donor.boot.mu.Lock()
		defer donor.boot.mu.Unlock()
		pin := donor.boot.pins[snapPinKey{from: 1, pid: 0}]
		return pin != nil && pin.released && pin.chunks == nil
	})
}

// TestBootstrapIdlePinSwept covers the release-less path: a joiner that
// pins a capture and dies never sends a release, so the next snapshot
// request past the idle TTL sweeps the abandoned pin's memory.
func TestBootstrapIdlePinSwept(t *testing.T) {
	old := snapPinIdleTTL
	snapPinIdleTTL = 10 * time.Millisecond
	t.Cleanup(func() { snapPinIdleTTL = old })
	cfg := Config{DCs: 4, Partitions: 1, Delay: func(from, to fabric.Addr) time.Duration { return 0 }}
	net := simnet.New(nil)
	t.Cleanup(net.Close)
	donor := newDonorNode(t, net, cfg, 0, 50)

	if _, err := donor.snapshotPin(donor.parts[0], SnapshotRequestMsg{From: 1, Partition: 0, ID: 7, Chunk: 0}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(3 * snapPinIdleTTL) // the joiner goes silent
	if _, err := donor.snapshotPin(donor.parts[0], SnapshotRequestMsg{From: 2, Partition: 0, ID: 8, Chunk: 0}); err != nil {
		t.Fatal(err)
	}
	donor.boot.mu.Lock()
	_, stale := donor.boot.pins[snapPinKey{from: 1, pid: 0}]
	_, fresh := donor.boot.pins[snapPinKey{from: 2, pid: 0}]
	donor.boot.mu.Unlock()
	if stale {
		t.Fatal("abandoned pin survived the idle TTL sweep")
	}
	if !fresh {
		t.Fatal("the sweeping request's own pin is missing")
	}
}

// TestBootstrapStaleErrorReplyIgnored poisons the joiner's reply stream
// with donor errors carrying a stale pull ID — what a restarted donor
// answering an abandoned pull's retransmit sends — before every real
// chunk. Errors from a pull this one never made must not fail the
// current donor.
func TestBootstrapStaleErrorReplyIgnored(t *testing.T) {
	smallSnapChunks(t, 1024)
	cfg := Config{DCs: 2, Partitions: 1, Delay: func(from, to fabric.Addr) time.Duration { return 0 }}
	net := simnet.New(nil)
	t.Cleanup(net.Close)
	const keys = 200
	newDonorNode(t, net, cfg, 0, keys)

	// Short AckTimeout: the hijacked partition endpoint drops replica
	// acks, so the final metadata flush at close would otherwise stall a
	// full default timeout.
	joiner, err := OpenNode(NodeConfig{Config: cfg, DC: 1, Roles: RolePartitions | RoleEunomia, Fabric: net, AckTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { joiner.CloseIngress(); joiner.CloseServices() })
	interceptChunks(joiner, net, 0, func(from fabric.Addr, msg SnapshotChunkMsg, k int) (SnapshotChunkMsg, bool) {
		joiner.deliverBootstrapChunk(0, SnapshotChunkMsg{
			Partition: 0, ID: msg.ID ^ 0xdeadbeef,
			Err: "unknown snapshot pin 12345 for partition 0",
		})
		return msg, true
	})

	if err := joiner.pullSnapshot(0, 0, NodeConfig{
		BootstrapChunkTimeout:  30 * time.Millisecond,
		BootstrapChunkAttempts: 20,
	}); err != nil {
		t.Fatalf("pull with stale error replies interleaved: %v", err)
	}
	checkBootKeys(t, joiner, keys)
}

// TestBootstrapSurvivesChaosLinkCut drives the bootstrap through an
// internal/faults schedule that partitions the joiner from its donor
// mid-transfer and heals later: the chunk retry loop must ride out the
// outage and complete the install once the link returns.
func TestBootstrapSurvivesChaosLinkCut(t *testing.T) {
	smallSnapChunks(t, 1024)
	cfg := Config{DCs: 2, Partitions: 2, Delay: func(from, to fabric.Addr) time.Duration { return 0 }}
	net := simnet.New(nil)
	t.Cleanup(net.Close)
	const keys = 300
	newDonorNode(t, net, cfg, 0, keys)

	sched, err := faults.ParseSchedule("t=5ms:partition dc1<-dc0", "t=250ms:heal")
	if err != nil {
		t.Fatal(err)
	}
	// Actuate the schedule on the snapshot-ship edges: dc1<-dc0 silences
	// the donors' replies into the joiner's partition endpoints.
	var wg sync.WaitGroup
	start := time.Now()
	for _, e := range sched.Events {
		e := e
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(time.Until(start.Add(e.At)))
			for p := 0; p < cfg.Partitions; p++ {
				from := fabric.PartitionAddr(0, types.PartitionID(p))
				to := fabric.PartitionAddr(1, types.PartitionID(p))
				net.SetDrop(from, to, e.Kind == faults.KindPartition)
			}
		}()
	}

	joiner, err := OpenNode(NodeConfig{
		Config: cfg, DC: 1, Roles: RolePartitions | RoleEunomia, Fabric: net,
		BootstrapFrom:          []types.DCID{0},
		BootstrapChunkTimeout:  30 * time.Millisecond,
		BootstrapChunkAttempts: 40,
	})
	if err != nil {
		t.Fatalf("bootstrap through the link cut: %v", err)
	}
	t.Cleanup(func() { joiner.CloseIngress(); joiner.CloseServices() })
	wg.Wait()
	checkBootKeys(t, joiner, keys)
}
