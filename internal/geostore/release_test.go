package geostore

import (
	"fmt"
	"testing"
	"time"

	"eunomia/internal/fabric"
	"eunomia/internal/simnet"
	"eunomia/internal/types"
)

// splitDC builds a two-datacenter deployment on one zero-delay simnet with
// dc0 split by role — partitions+Eunomia in one node, the receiver in
// another — so every dc0 release crosses the fabric through the windowed
// stream. dc1 is a full node that originates traffic.
type splitDC struct {
	net      *simnet.Network
	parts    *Node // dc0 partitions + Eunomia
	recv     *Node // dc0 receiver
	origin   *Node // dc1, all roles
	shutdown bool
}

func newSplitDC(t *testing.T, window int) *splitDC {
	t.Helper()
	cfg := Config{DCs: 2, Partitions: 2, Delay: func(from, to fabric.Addr) time.Duration { return 0 }}
	net := simnet.New(nil)
	s := &splitDC{
		net:    net,
		parts:  NewNode(NodeConfig{Config: cfg, DC: 0, Roles: RolePartitions | RoleEunomia, Fabric: net}),
		recv:   NewNode(NodeConfig{Config: cfg, DC: 0, Roles: RoleReceiver, Fabric: net, ReleaseWindow: window}),
		origin: NewNode(NodeConfig{Config: cfg, DC: 1, Roles: RoleAll, Fabric: net}),
	}
	t.Cleanup(s.close)
	return s
}

func (s *splitDC) close() {
	if s.shutdown {
		return
	}
	s.shutdown = true
	for _, n := range []*Node{s.parts, s.recv, s.origin} {
		n.CloseIngress()
	}
	for _, n := range []*Node{s.parts, s.recv, s.origin} {
		n.CloseServices()
	}
	s.net.Close()
}

func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// writePairs issues n causally chained data/flag pairs at dc1 (keys
// namespaced by prefix) and returns a checker that verifies, at dc0, both
// visibility and the causal invariant (a visible flag implies its visible
// data).
func writePairs(t *testing.T, s *splitDC, prefix string, n int) func() {
	t.Helper()
	w := s.origin.NewClient()
	for i := 0; i < n; i++ {
		if err := w.Update(types.Key(fmt.Sprintf("%sdata%d", prefix, i)), []byte(fmt.Sprintf("payload%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := w.Update(types.Key(fmt.Sprintf("%sflag%d", prefix, i)), []byte("set")); err != nil {
			t.Fatal(err)
		}
	}
	return func() {
		t.Helper()
		r := s.parts.NewClient()
		for i := 0; i < n; i++ {
			flag := types.Key(fmt.Sprintf("%sflag%d", prefix, i))
			data := types.Key(fmt.Sprintf("%sdata%d", prefix, i))
			waitUntil(t, 20*time.Second, string(flag), func() bool {
				v, _ := r.Read(flag)
				if string(v) != "set" {
					return false
				}
				d, _ := r.Read(data)
				if string(d) != fmt.Sprintf("payload%d", i) {
					t.Fatalf("pair %d: flag visible without data (windowed release broke causal order)", i)
				}
				return true
			})
		}
	}
}

func (s *splitDC) remoteApplied() int64 {
	var total int64
	for _, p := range s.parts.parts {
		total += p.RemoteApplied.Load()
	}
	return total
}

// TestWindowedReleaseDuplicateDedup delivers every release (and every
// acknowledgement) in triplicate and checks each update is applied exactly
// once, in causal order.
func TestWindowedReleaseDuplicateDedup(t *testing.T) {
	s := newSplitDC(t, 0)
	s.net.SetDuplicate(fabric.ReceiverAddr(0), fabric.ApplierAddr(0), 2)
	s.net.SetDuplicate(fabric.ApplierAddr(0), fabric.ReceiverAddr(0), 2)

	const pairs = 25
	check := writePairs(t, s, "", pairs)
	check()

	if got := s.remoteApplied(); got != 2*pairs {
		t.Fatalf("dc0 applied %d remote updates, want exactly %d (duplicates must be dropped)", got, 2*pairs)
	}
}

// TestWindowedReleaseOutageResume cuts the release stream mid-window,
// verifies the stream stalls with in-flight releases, then heals the link
// and checks the retransmission pass delivers everything in order.
func TestWindowedReleaseOutageResume(t *testing.T) {
	s := newSplitDC(t, 0)

	// Cut receiver→applier: releases leave the window but never arrive.
	s.net.SetDrop(fabric.ReceiverAddr(0), fabric.ApplierAddr(0), true)

	const pairs = 10
	check := writePairs(t, s, "", pairs)

	waitUntil(t, 10*time.Second, "releases to enter the window", func() bool {
		return s.recv.ReleaseInflight() > 0
	})
	if got := s.remoteApplied(); got != 0 {
		t.Fatalf("dc0 applied %d updates while the release link was down", got)
	}

	s.net.SetDrop(fabric.ReceiverAddr(0), fabric.ApplierAddr(0), false)
	check()

	if s.recv.ReleaseResent() == 0 {
		t.Fatal("recovery applied updates without any retransmission — outage was not exercised")
	}
	waitUntil(t, 10*time.Second, "window to drain", func() bool {
		return s.recv.ReleaseInflight() == 0
	})
	if got := s.remoteApplied(); got != 2*pairs {
		t.Fatalf("dc0 applied %d remote updates, want exactly %d", got, 2*pairs)
	}
}

// TestWindowedReleaseReceiverRestart replaces the receiver process
// mid-run: the successor's release stream restarts at sequence 1 under a
// fresh epoch, and the applier must reset its duplicate filter for it
// instead of discarding (and fake-acking) the whole new stream.
func TestWindowedReleaseReceiverRestart(t *testing.T) {
	s := newSplitDC(t, 0)

	check := writePairs(t, s, "one-", 5)
	check()

	// "Restart" the receiver process: stop the old node and register a
	// fresh one at the same fabric addresses (a new epoch, sequences
	// from 1).
	s.recv.CloseServices()
	cfg := Config{DCs: 2, Partitions: 2, Delay: func(from, to fabric.Addr) time.Duration { return 0 }}
	s.recv = NewNode(NodeConfig{Config: cfg, DC: 0, Roles: RoleReceiver, Fabric: s.net})

	check2 := writePairs(t, s, "two-", 5)
	check2()

	waitUntil(t, 10*time.Second, "new window to drain", func() bool {
		return s.recv.ReleaseInflight() == 0
	})
}

// TestWindowedReleasePartitionRestartDetected replaces the partition
// process mid-stream: the fresh applier has none of the dead
// incarnation's sequence state, the window's pruned prefix cannot be
// rebuilt, and the stream must wedge loudly (ReleaseWedged) instead of
// retransmitting into the void forever.
func TestWindowedReleasePartitionRestartDetected(t *testing.T) {
	s := newSplitDC(t, 0)

	check := writePairs(t, s, "pre-", 5)
	check()

	// "Restart" the partition process: stop the old node, register a
	// fresh one (empty kv state, fresh applier) at the same addresses.
	s.parts.CloseIngress()
	s.parts.CloseServices()
	cfg := Config{DCs: 2, Partitions: 2, Delay: func(from, to fabric.Addr) time.Duration { return 0 }}
	s.parts = NewNode(NodeConfig{Config: cfg, DC: 0, Roles: RolePartitions | RoleEunomia, Fabric: s.net})

	// New traffic releases at sequence numbers far past what the fresh
	// applier has seen; the window must detect the unrecoverable stream.
	writePairs(t, s, "post-", 5)
	waitUntil(t, 10*time.Second, "stream to be declared unrecoverable", func() bool {
		return s.recv.ReleaseWedged()
	})
}

// TestWindowedReleaseBackpressureBound checks the release path's memory
// bound while the partition process is unreachable: the in-flight window
// stops at its limit, the receiver keeps buffering shipped metadata in its
// own queues, and everything drains after the link heals.
func TestWindowedReleaseBackpressureBound(t *testing.T) {
	const window = 8
	s := newSplitDC(t, window)
	s.net.SetDrop(fabric.ReceiverAddr(0), fabric.ApplierAddr(0), true)

	const pairs = 30 // 60 updates, far beyond the window
	check := writePairs(t, s, "", pairs)

	waitUntil(t, 10*time.Second, "window to fill to its bound", func() bool {
		return s.recv.ReleaseInflight() == window
	})
	// The remaining updates must be parked in the receiver's queues, not
	// in flight; sample for a while to catch any overshoot.
	for i := 0; i < 50; i++ {
		if got := s.recv.ReleaseInflight(); got > window {
			t.Fatalf("in-flight window grew to %d, bound is %d", got, window)
		}
		time.Sleep(2 * time.Millisecond)
	}
	waitUntil(t, 10*time.Second, "receiver to buffer the overflow", func() bool {
		return s.recv.Receiver().QueueLen(1) > 0
	})

	s.net.SetDrop(fabric.ReceiverAddr(0), fabric.ApplierAddr(0), false)
	check()
	waitUntil(t, 10*time.Second, "window to drain", func() bool {
		return s.recv.ReleaseInflight() == 0 && s.parts.ApplierPending() == 0
	})
	if got := s.remoteApplied(); got != 2*pairs {
		t.Fatalf("dc0 applied %d remote updates, want exactly %d", got, 2*pairs)
	}
}

// TestWindowedReleaseAsymmetricAckLoss partitions exactly one direction of
// the release stream — the applier's acknowledgements are dropped while
// releases keep flowing (simnet.SetDrop is inherently one-way, the same
// shape as "partition dc0<-dc1" in the faults DSL). Updates must still
// become visible in causal order, the stall must be loud (a growing
// retransmission counter and an undrained window) without wedging, the
// timeout-driven re-releases must be absorbed exactly once, and the heal
// must drain the window and carry new traffic cleanly.
func TestWindowedReleaseAsymmetricAckLoss(t *testing.T) {
	s := newSplitDC(t, 0)
	s.net.SetDrop(fabric.ApplierAddr(0), fabric.ReceiverAddr(0), true)

	const pairs = 10
	check := writePairs(t, s, "", pairs)
	// The forward direction is intact: everything applies, causally.
	check()

	// The stall is loud, not silent: with no acknowledgements the window
	// never drains and the receiver re-releases on timeout...
	waitUntil(t, 10*time.Second, "ack starvation to force retransmissions", func() bool {
		return s.recv.ReleaseResent() > 0
	})
	if got := s.recv.ReleaseInflight(); got == 0 {
		t.Fatal("window drained without a single acknowledgement")
	}
	// ...but it is a stall, not a death: nothing diagnoses a wedge, and
	// the applier absorbs every re-release (exactly-once holds mid-fault).
	if s.recv.ReleaseWedged() {
		t.Fatal("one-direction ack loss must not wedge the stream")
	}
	if got := s.remoteApplied(); got != 2*pairs {
		t.Fatalf("dc0 applied %d remote updates during ack loss, want exactly %d (re-releases leaked)", got, 2*pairs)
	}

	// Heal the one direction: pending acknowledgements drain the window.
	s.net.SetDrop(fabric.ApplierAddr(0), fabric.ReceiverAddr(0), false)
	waitUntil(t, 10*time.Second, "window to drain after heal", func() bool {
		return s.recv.ReleaseInflight() == 0
	})
	if got := s.remoteApplied(); got != 2*pairs {
		t.Fatalf("dc0 applied %d remote updates after heal, want exactly %d", got, 2*pairs)
	}

	// The healed stream carries new traffic with no residue.
	writePairs(t, s, "post-", 3)()
	waitUntil(t, 10*time.Second, "post-heal window to drain", func() bool {
		return s.recv.ReleaseInflight() == 0
	})
	if got := s.remoteApplied(); got != 2*(pairs+3) {
		t.Fatalf("dc0 applied %d remote updates post-heal, want exactly %d", got, 2*(pairs+3))
	}
}
