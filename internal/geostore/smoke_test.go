package geostore

import (
	"testing"
	"time"

	"eunomia/internal/simnet"
	"eunomia/internal/types"
)

// fastDelay is a small latency matrix so tests complete quickly while
// still exercising WAN reordering: dc0-dc1 and dc0-dc2 at 8ms RTT,
// dc1-dc2 at 16ms.
func fastDelay() simnet.DelayFunc {
	return simnet.LatencyMatrix(simnet.PaperRTTs(0.1), 0)
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	waitUntil(t, timeout, "condition", cond)
}

// TestSmokeReplication writes at dc0 and expects the value to become
// visible at dc1 and dc2.
func TestSmokeReplication(t *testing.T) {
	s := NewStore(Config{DCs: 3, Partitions: 4, Delay: fastDelay()})
	defer s.Close()

	c0 := s.NewClient(0)
	if err := c0.Update("user:alice", []byte("post-1")); err != nil {
		t.Fatal(err)
	}

	for dc := types.DCID(1); dc <= 2; dc++ {
		dc := dc
		c := s.NewClient(dc)
		waitFor(t, 2*time.Second, func() bool {
			v, _ := c.Read("user:alice")
			return string(v) == "post-1"
		})
	}
}

// TestSmokeCausalOrder is the classic litmus: Alice posts, Bob (at another
// datacenter) reads the post and replies; no datacenter may ever expose
// the reply without the post.
func TestSmokeCausalOrder(t *testing.T) {
	s := NewStore(Config{DCs: 3, Partitions: 4, Delay: fastDelay()})
	defer s.Close()

	alice := s.NewClient(0)
	if err := alice.Update("post", []byte("hello")); err != nil {
		t.Fatal(err)
	}

	bob := s.NewClient(1)
	waitFor(t, 2*time.Second, func() bool {
		v, _ := bob.Read("post")
		return string(v) == "hello"
	})
	if err := bob.Update("reply", []byte("hi alice")); err != nil {
		t.Fatal(err)
	}

	// At dc2, poll both keys; seeing the reply implies the post.
	carol := s.NewClient(2)
	waitFor(t, 3*time.Second, func() bool {
		reply, _ := carol.Read("reply")
		if string(reply) != "hi alice" {
			return false
		}
		post, _ := carol.Read("post")
		if string(post) != "hello" {
			t.Fatalf("causality violated: reply visible without post")
		}
		return true
	})
}
