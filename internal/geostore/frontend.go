package geostore

// The client front door: a fabric-attached role that serves the paper's
// client protocol (Algorithm 1 / §4) to processes that are not the store.
// A Frontend holds no causal state of its own — every fact a client has
// observed rides in its session token (session.Token) — so any frontend of
// the deployment can serve any client, and a client that migrates between
// datacenters mid-session keeps its guarantees: before reading, the
// destination frontend waits until its datacenter's receiver SiteTime
// dominates the token's remote entries (§4, client migration), which is
// exactly the condition under which everything the client has ever
// observed is applied locally.
//
// Three round trips make up the protocol, all over the fabric (so the same
// code serves an in-process simnet deployment and a TCP one):
//
//	frontend ──► partition: ClientReadMsg / ClientWriteMsg  (ring-routed)
//	frontend ──► receiver:  WaitMsg (visibility wait, reads only)
//
// Writes never wait: the update's dependency vector travels with it, and
// remote receivers enforce it before making the write visible (Algorithm
// 5). Reads wait only when the token's remote entries exceed the
// frontend's cached view of SiteTime, so a client that stays at one
// datacenter waits at most once per remote fact it learns.

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"eunomia/internal/fabric"
	"eunomia/internal/kvstore"
	"eunomia/internal/metrics"
	"eunomia/internal/session"
	"eunomia/internal/types"
	"eunomia/internal/vclock"
)

// ClientReadMsg asks the partition responsible for Key for its current
// version (Algorithm 1 READ, server side).
type ClientReadMsg struct {
	ID  uint64
	Key types.Key
}

// ClientReadAckMsg answers a read: the stored value and its vector
// timestamp, or Found=false for a key the store has never seen.
type ClientReadAckMsg struct {
	ID    uint64
	Found bool
	Value types.Value
	VTS   vclock.V
}

// ClientWriteMsg asks the responsible partition to accept an update with
// the client's dependency vector (Algorithm 1 UPDATE, server side).
type ClientWriteMsg struct {
	ID    uint64
	Key   types.Key
	Value types.Value
	Dep   vclock.V
}

// ClientWriteAckMsg returns the vector timestamp the partition assigned.
type ClientWriteAckMsg struct {
	ID  uint64
	VTS vclock.V
}

// WaitMsg asks the datacenter's receiver to block until its SiteTime
// dominates Dep's remote entries — the migration visibility wait. The
// receiver polls on its check cadence and gives up after WaitNanos.
type WaitMsg struct {
	ID        uint64
	Dep       vclock.V
	WaitNanos int64
}

// WaitAckMsg reports the wait's outcome and the receiver's current
// SiteTime, which the frontend caches to skip already-satisfied waits.
type WaitAckMsg struct {
	ID   uint64
	OK   bool
	Site vclock.V
}

func init() {
	fabric.RegisterPayload(ClientReadMsg{})
	fabric.RegisterPayload(ClientReadAckMsg{})
	fabric.RegisterPayload(ClientWriteMsg{})
	fabric.RegisterPayload(ClientWriteAckMsg{})
	fabric.RegisterPayload(WaitMsg{})
	fabric.RegisterPayload(WaitAckMsg{})
}

// Front-door error classes, for transports (HTTP) to map onto status
// codes. Token parse failures come back wrapped in ErrBadToken.
var (
	// ErrBadToken marks an unparseable or shape-mismatched session token.
	ErrBadToken = errors.New("geostore: bad session token")
	// ErrVisibilityTimeout marks a read whose causal history did not
	// become visible locally within the wait budget (origin datacenter
	// partitioned or down). The client may retry; its token is unchanged.
	ErrVisibilityTimeout = errors.New("geostore: timed out waiting for causal visibility")
	// ErrOpTimeout marks a partition round trip that never completed
	// (misrouted deployment or a down partition process).
	ErrOpTimeout = errors.New("geostore: partition round trip timed out")
	// ErrFrontendClosed marks operations issued after Close.
	ErrFrontendClosed = errors.New("geostore: frontend closed")
)

// FrontendConfig parameterises one front door.
type FrontendConfig struct {
	// Fabric carries the round trips; the frontend registers
	// fabric.FrontendAddr(DC, Index) on it.
	Fabric fabric.Fabric
	// DC is the datacenter whose partitions and receiver serve this
	// frontend's clients.
	DC types.DCID
	// DCs and Partitions describe the deployment shape (every process
	// must agree, like Config.Partitions).
	DCs        int
	Partitions int
	// Index distinguishes multiple frontends within one datacenter.
	Index int
	// Scalar issues scalar session tokens (the §4 metadata ablation)
	// instead of vectors.
	Scalar bool
	// WaitTimeout bounds the migration visibility wait. Default 30s.
	WaitTimeout time.Duration
	// OpTimeout bounds partition round trips. Default 10s.
	OpTimeout time.Duration
}

// Frontend serves causal get/put to clients, identified across requests
// only by their session tokens. Safe for concurrent use.
type Frontend struct {
	fab   fabric.Fabric
	local fabric.Addr
	dc    types.DCID
	dcs   int
	ring  kvstore.Ring
	mode  session.Mode

	waitTimeout time.Duration
	opTimeout   time.Duration

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan any
	closed  bool
	quit    chan struct{}

	// site caches the receiver's last reported SiteTime; waits whose
	// dependencies it already covers are skipped locally.
	siteMu sync.Mutex
	site   vclock.V

	// Operation metrics, exported on -metrics-addr by cmd/eunomia-server.
	Gets, Puts, OpErrors    metrics.Counter
	Waits, WaitTimeouts     metrics.Counter
	GetLat, PutLat, WaitLat *metrics.Histogram
}

// NewFrontend builds a front door and registers its ack endpoint on the
// fabric.
func NewFrontend(fc FrontendConfig) *Frontend {
	if fc.DCs <= 0 {
		fc.DCs = 1
	}
	if fc.Partitions <= 0 {
		fc.Partitions = 1
	}
	if fc.WaitTimeout <= 0 {
		fc.WaitTimeout = 30 * time.Second
	}
	if fc.OpTimeout <= 0 {
		fc.OpTimeout = 10 * time.Second
	}
	mode := session.Vector
	if fc.Scalar {
		mode = session.Scalar
	}
	f := &Frontend{
		fab:         fc.Fabric,
		local:       fabric.FrontendAddr(fc.DC, fc.Index),
		dc:          fc.DC,
		dcs:         fc.DCs,
		ring:        kvstore.NewRing(fc.Partitions),
		mode:        mode,
		waitTimeout: fc.WaitTimeout,
		opTimeout:   fc.OpTimeout,
		pending:     make(map[uint64]chan any),
		quit:        make(chan struct{}),
		site:        vclock.New(fc.DCs),
		GetLat:      metrics.NewHistogram(),
		PutLat:      metrics.NewHistogram(),
		WaitLat:     metrics.NewHistogram(),
	}
	f.fab.Register(f.local, f.handle)
	return f
}

// Addr returns the frontend's fabric endpoint.
func (f *Frontend) Addr() fabric.Addr { return f.local }

// Mode returns the session mode the frontend issues tokens in.
func (f *Frontend) Mode() session.Mode { return f.mode }

// Close unregisters the frontend and fails in-flight operations.
func (f *Frontend) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	close(f.quit)
	f.mu.Unlock()
	f.fab.Unregister(f.local)
}

// handle routes acknowledgements back to their waiting round trips.
func (f *Frontend) handle(msg fabric.Message) {
	var id uint64
	switch v := msg.Payload.(type) {
	case ClientReadAckMsg:
		id = v.ID
	case ClientWriteAckMsg:
		id = v.ID
	case WaitAckMsg:
		id = v.ID
	default:
		return
	}
	f.mu.Lock()
	ch := f.pending[id]
	delete(f.pending, id)
	f.mu.Unlock()
	if ch != nil {
		ch <- msg.Payload
	}
}

// roundTrip sends one request built from a fresh ID and waits for its ack.
func (f *Frontend) roundTrip(to fabric.Addr, build func(id uint64) any, timeout time.Duration) (any, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, ErrFrontendClosed
	}
	f.nextID++
	id := f.nextID
	ch := make(chan any, 1)
	f.pending[id] = ch
	f.mu.Unlock()

	f.fab.Send(f.local, to, build(id))

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case p := <-ch:
		return p, nil
	case <-f.quit:
		return nil, ErrFrontendClosed
	case <-timer.C:
		f.mu.Lock()
		delete(f.pending, id)
		f.mu.Unlock()
		return nil, ErrOpTimeout
	}
}

// GetResult is one read's outcome. Token carries the advanced session.
type GetResult struct {
	Value types.Value
	Found bool
	Token string
}

// PutResult is one write's outcome. Token carries the advanced session.
type PutResult struct {
	Token string
}

// Get serves Algorithm 1 READ for the session token: wait until the
// token's causal history is visible locally, read the owning partition,
// fold the version's vector into the session.
func (f *Frontend) Get(token string, key types.Key) (GetResult, error) {
	sess, err := session.Parse(token, f.mode, f.dcs)
	if err != nil {
		return GetResult{}, fmt.Errorf("%w: %v", ErrBadToken, err)
	}
	start := time.Now()
	if err := f.waitVisible(sess.Dep()); err != nil {
		f.OpErrors.Inc()
		return GetResult{}, err
	}
	pid := f.ring.Responsible(key)
	p, err := f.roundTrip(fabric.PartitionAddr(f.dc, pid), func(id uint64) any {
		return ClientReadMsg{ID: id, Key: key}
	}, f.opTimeout)
	if err != nil {
		f.OpErrors.Inc()
		return GetResult{}, err
	}
	ack, ok := p.(ClientReadAckMsg)
	if !ok {
		f.OpErrors.Inc()
		return GetResult{}, fmt.Errorf("geostore: frontend read got %T", p)
	}
	if ack.Found {
		sess.ObserveRead(ack.VTS)
	}
	f.Gets.Inc()
	f.GetLat.RecordDuration(time.Since(start))
	return GetResult{Value: ack.Value, Found: ack.Found, Token: sess.Token()}, nil
}

// Put serves Algorithm 1 UPDATE for the session token: ship the value and
// the session's dependency vector to the owning partition and install the
// returned vector timestamp.
func (f *Frontend) Put(token string, key types.Key, value types.Value) (PutResult, error) {
	sess, err := session.Parse(token, f.mode, f.dcs)
	if err != nil {
		return PutResult{}, fmt.Errorf("%w: %v", ErrBadToken, err)
	}
	start := time.Now()
	pid := f.ring.Responsible(key)
	p, err := f.roundTrip(fabric.PartitionAddr(f.dc, pid), func(id uint64) any {
		return ClientWriteMsg{ID: id, Key: key, Value: value, Dep: sess.Dep()}
	}, f.opTimeout)
	if err != nil {
		f.OpErrors.Inc()
		return PutResult{}, err
	}
	ack, ok := p.(ClientWriteAckMsg)
	if !ok {
		f.OpErrors.Inc()
		return PutResult{}, fmt.Errorf("geostore: frontend write got %T", p)
	}
	sess.ObserveUpdate(ack.VTS)
	f.Puts.Inc()
	f.PutLat.RecordDuration(time.Since(start))
	return PutResult{Token: sess.Token()}, nil
}

// waitVisible blocks until the local receiver's SiteTime dominates dep's
// remote entries. The local entry is trivially satisfied (local updates
// are visible at acceptance), and a single-datacenter deployment has no
// remote entries at all, so both skip the round trip — as does any wait
// the cached SiteTime already covers.
func (f *Frontend) waitVisible(dep vclock.V) error {
	if f.dcs <= 1 {
		return nil
	}
	need := false
	f.siteMu.Lock()
	for k := 0; k < f.dcs; k++ {
		if types.DCID(k) == f.dc {
			continue
		}
		if dep.Get(k) > f.site.Get(k) {
			need = true
			break
		}
	}
	f.siteMu.Unlock()
	if !need {
		return nil
	}
	f.Waits.Inc()
	start := time.Now()
	p, err := f.roundTrip(fabric.ReceiverAddr(f.dc), func(id uint64) any {
		return WaitMsg{ID: id, Dep: dep.Clone(), WaitNanos: int64(f.waitTimeout)}
	}, f.waitTimeout+f.opTimeout)
	if err != nil {
		f.WaitTimeouts.Inc()
		if errors.Is(err, ErrFrontendClosed) {
			return err
		}
		return ErrVisibilityTimeout
	}
	ack, ok := p.(WaitAckMsg)
	if !ok {
		return fmt.Errorf("geostore: frontend wait got %T", p)
	}
	f.siteMu.Lock()
	f.site.Merge(ack.Site)
	f.siteMu.Unlock()
	f.WaitLat.RecordDuration(time.Since(start))
	if !ack.OK {
		f.WaitTimeouts.Inc()
		return ErrVisibilityTimeout
	}
	return nil
}
