package geostore

// Payload healing for colocated durable nodes (the ROADMAP follow-up to
// PR 3's pull/skip machinery, which only the split-role applier had).
//
// A colocated node (receiver and partitions in one process) releases
// updates by direct call, so a payload pruned at the origin — the shipper
// drops its buffered copy once the transport acknowledges delivery — and
// lost to a crash here (received after the last WAL flush) would park the
// receiver's release pass forever: the payload is nowhere, and nothing
// re-ships it. The split-role applier heals this with PayloadPullMsg /
// PayloadSupersededMsg; payloadHealer gives the colocated direct-apply
// path the same protocol.
//
// The same crash-evidence gate applies (see applier.pullBefore): only
// updates whose metadata arrived before this durable incarnation finished
// recovering may have lost their payload to the dead predecessor. Anything
// released later is ordinary replication lag and parks untouched — pulling
// it could transiently hide a slow update the moment its origin overwrites
// it.

import (
	"sync"
	"sync/atomic"
	"time"

	"eunomia/internal/fabric"
	"eunomia/internal/types"
)

// payloadHealer wraps a colocated durable node's direct release path with
// origin pulls for crash-suspect updates parked on a missing payload.
type payloadHealer struct {
	n *Node
	// pullBefore gates pulls to crash evidence: only updates whose
	// metadata arrived before this instant (recovery end plus slack for
	// metadata in flight at the crash) may have lost their payload to the
	// dead predecessor. Atomic because arm() stamps it from the opening
	// goroutine while the recovered receiver's flush loop may already be
	// calling apply; until armed it is zero, which suspects nothing.
	pullBefore atomic.Int64

	mu sync.Mutex
	// skips holds updates the origin reported superseded: their payloads
	// died with the crashed predecessor and cannot be re-shipped; the
	// superseding version follows in the release order with its own
	// payload.
	skips map[types.UpdateID]bool
	// lastPull rate-limits the pull per parked update to the release
	// retransmission cadence.
	lastPull map[types.UpdateID]time.Time
}

func newPayloadHealer(n *Node) *payloadHealer {
	return &payloadHealer{
		n:        n,
		skips:    make(map[types.UpdateID]bool),
		lastPull: make(map[types.UpdateID]time.Time),
	}
}

// arm sets the crash-evidence gate once recovery has finished. It must
// run after receiver replay, not at construction: replay re-stamps every
// recovered entry with the replay-time instant, so a gate stamped before
// a slow (>1s) replay would classify recovered crash suspects as live
// replication lag and never pull them.
func (h *payloadHealer) arm() {
	h.pullBefore.Store(time.Now().Add(time.Second).UnixNano())
}

// apply implements receiver.ApplyFunc over the colocated partition group,
// healing crash-suspect parks by pulling the payload from the origin (or
// skipping the update when the origin reports it superseded).
func (h *payloadHealer) apply(u *types.Update, metaArrived time.Time) bool {
	n := h.n
	pid := n.ring.Responsible(u.Key)
	part := n.parts[pid]
	if part.ApplyRemote(u, metaArrived) {
		h.forget(u.ID())
		return true
	}
	if metaArrived.UnixNano() >= h.pullBefore.Load() {
		return false // live replication lag; the payload is still coming
	}
	id := u.ID()
	h.mu.Lock()
	if h.skips[id] {
		delete(h.skips, id)
		delete(h.lastPull, id)
		h.mu.Unlock()
		// The origin no longer stores this version: advance the applied
		// watermark past it without storing. The superseding version is
		// ordered after it and carries its own payload.
		part.SkipRemote(u)
		return true
	}
	now := time.Now()
	last, seen := h.lastPull[id]
	if !seen {
		// First park: start the clock, pull only after a full
		// retransmission interval — replication may still deliver.
		h.lastPull[id] = now
		h.mu.Unlock()
		return false
	}
	if now.Sub(last) < releaseResendAfter {
		h.mu.Unlock()
		return false
	}
	h.lastPull[id] = now
	h.mu.Unlock()
	n.fab.Send(fabric.ApplierAddr(n.id), fabric.PartitionAddr(u.Origin, pid),
		PayloadPullMsg{Dest: n.id, U: u})
	return false
}

// forget drops an update's healing state once it resolves.
func (h *payloadHealer) forget(id types.UpdateID) {
	h.mu.Lock()
	delete(h.skips, id)
	delete(h.lastPull, id)
	h.mu.Unlock()
}

// handle is the fabric handler for the colocated node's applier address:
// the origin's superseded verdicts land here (re-shipped payloads go to
// the partition address like any payload batch). A verdict for an update
// no longer tracked is stale — the payload arrived and applied while the
// verdict was in flight — and recording it would leak a skips entry
// nothing ever consumes.
func (h *payloadHealer) handle(msg fabric.Message) {
	sup, ok := msg.Payload.(PayloadSupersededMsg)
	if !ok {
		return
	}
	h.mu.Lock()
	if _, tracked := h.lastPull[sup.ID]; tracked {
		h.skips[sup.ID] = true
	}
	h.mu.Unlock()
}
